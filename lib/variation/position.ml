type t = { label : string; origin_x_mm : float; origin_y_mm : float }

let chip_mm = 14.0

let at_xy ?label ~x_frac ~y_frac () =
  let label =
    (* %.6g keeps enough digits that distinct grid fractions map to
       distinct labels — positions are memoized by label downstream. *)
    match label with
    | Some l -> l
    | None -> Printf.sprintf "xy-%.6g-%.6g" x_frac y_frac
  in
  { label; origin_x_mm = x_frac *. chip_mm; origin_y_mm = y_frac *. chip_mm }

let at_fraction ?label frac =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "diag-%.2f" frac
  in
  { label; origin_x_mm = frac *. chip_mm; origin_y_mm = frac *. chip_mm }

let x_frac t = t.origin_x_mm /. chip_mm
let y_frac t = t.origin_y_mm /. chip_mm

let point_a = at_fraction ~label:"A" 0.0
let point_b = at_fraction ~label:"B" 0.25
let point_c = at_fraction ~label:"C" 0.55
let point_d = at_fraction ~label:"D" 0.80
let named = [ point_a; point_b; point_c; point_d ]

let to_field t ~x_um ~y_um =
  (t.origin_x_mm +. (x_um /. 1000.0), t.origin_y_mm +. (y_um /. 1000.0))
