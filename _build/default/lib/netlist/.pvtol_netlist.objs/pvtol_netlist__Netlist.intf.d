lib/netlist/netlist.mli: Format Pvtol_stdcell Stage
