open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Fit = Pvtol_util.Fit
module Pool = Pvtol_util.Pool
module Metrics = Pvtol_util.Metrics

let m_samples = Metrics.counter "mc_samples_total"
let m_mc_chunks = Metrics.counter "mc_chunks_total"

type config = { samples : int; seed : int }

let default_config = { samples = 400; seed = 2024 }

type stage_stats = {
  stage : Stage.t;
  samples : float array;
  summary : Stats.summary;
  fit : Fit.normal;
  gof : Fit.gof;
}

type result = {
  position : Position.t;
  stages : stage_stats list;
  worst_samples : float array;
  endpoint_critical_count : (Netlist.cell_id, int) Hashtbl.t;
}

(* Samples per chunk.  Fixed — never derived from the domain count — so
   chunk boundaries, and therefore every RNG draw, are identical no
   matter how many domains execute the fan-out. *)
let chunk_size = 32

(* The RNG state a serial run would hold when it reaches sample [s0].
   One SplitMix64 draw per Box-Muller uniform lets us jump there in
   O(1): [gaussians] normal deviates consume [2 * ceil (gaussians / 2)]
   raw draws, and an odd count leaves the pair's second half cached.
   (Box-Muller's u1 = 0 rejection re-draw has probability 2^-53 per
   pair; we ignore it, as does every practical SplitMix64 jump.)  This
   makes the chunked engine bit-identical to the legacy serial loop,
   independent of both chunk size and domain count. *)
let rng_at_sample ~seed ~gaussians =
  let g = Srng.create seed in
  if gaussians land 1 = 0 then Srng.jump g gaussians
  else begin
    Srng.jump g (gaussians - 1);
    (* Draw the pair straddling the chunk boundary; its first half was
       consumed by the previous chunk, its second is left cached. *)
    ignore (Srng.gaussian g)
  end;
  g

type scratch = {
  ws : Sta.workspace;
  lgates : float array;
  delays : float array;
}

let run ?(config = default_config) ?vdd ?pool ~sampler ~sta ~placement ~position
    () =
  let nl = Sta.netlist sta in
  let vdd =
    match vdd with
    | Some f -> f
    | None ->
      let low = nl.Netlist.lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
      fun _ -> low
  in
  let n = Netlist.cell_count nl in
  let systematic = Sampler.systematic_lgates sampler placement position in
  let base = Sta.nominal_delays sta in
  (* Endpoint sets are precomputed once: the per-sample loop must not
     re-filter the flop array (satellite of the parallel rewrite). *)
  let active_stages =
    List.filter_map
      (fun s ->
        let eps = Sta.stage_endpoint_ids sta s in
        if Array.length eps > 0 then Some (s, eps, Array.make config.samples 0.0)
        else None)
      Stage.all
  in
  let worst_samples = Array.make config.samples 0.0 in
  let chunks = (config.samples + chunk_size - 1) / chunk_size in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let init ~worker:_ =
    { ws = Sta.workspace sta; lgates = Array.make n 0.0; delays = Array.make n 0.0 }
  in
  (* Each chunk owns a disjoint slice of every sample array, so workers
     write without synchronisation; the per-chunk criticality counts
     are returned and merged in chunk order below. *)
  let run_chunk st c =
    let s0 = c * chunk_size in
    let s1 = min config.samples (s0 + chunk_size) in
    Metrics.incr m_mc_chunks;
    Metrics.add m_samples (s1 - s0);
    let rng = rng_at_sample ~seed:config.seed ~gaussians:(s0 * n) in
    let crit = Array.make n 0 in
    for k = s0 to s1 - 1 do
      Sampler.sample_lgates sampler ~systematic rng st.lgates;
      Sampler.scale_delays sampler ~base ~lgates:st.lgates ~vdd ~out:st.delays;
      Sta.analyze_into sta st.ws ~delays:st.delays;
      worst_samples.(k) <- Sta.ws_worst st.ws;
      List.iter
        (fun (s, eps, arr) ->
          match Sta.ws_stage_delay st.ws s with
          | None -> ()
          | Some stage_worst ->
            arr.(k) <- stage_worst;
            (* Endpoint criticality: flops within 2% of their stage's
               worst. *)
            Array.iter
              (fun cid ->
                if Sta.ws_endpoint_delay st.ws cid >= 0.98 *. stage_worst then
                  crit.(cid) <- crit.(cid) + 1)
              eps)
        active_stages
    done;
    crit
  in
  let crit_chunks = Pool.parallel_chunks pool ~chunks ~init ~f:run_chunk in
  let critical_count = Hashtbl.create 256 in
  Array.iter
    (fun crit ->
      Array.iteri
        (fun cid c ->
          if c > 0 then
            Hashtbl.replace critical_count cid
              (c + Option.value (Hashtbl.find_opt critical_count cid) ~default:0))
        crit)
    crit_chunks;
  let stages =
    List.map
      (fun (stage, _, samples) ->
        let fit, gof = Fit.fit_and_test samples in
        { stage; samples; summary = Stats.summarize samples; fit; gof })
      active_stages
  in
  { position; stages; worst_samples; endpoint_critical_count = critical_count }

let stage_stats r s =
  List.find_opt (fun ss -> Stage.equal ss.stage s) r.stages

let three_sigma_delay ss = Stats.three_sigma ss.summary
