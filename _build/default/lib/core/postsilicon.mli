(** Post-silicon compensation, evaluated over a chip population.

    The paper's deployment story (§1, §3): after fabrication, Razor
    timing sensors detect which violation scenario a die exhibits and
    the matching number of voltage islands is raised.  This module
    plays that story out across a population of simulated dies — each
    with its own position on the exposure field and its own random
    per-gate Lgate draw — and reports the timing yield and power of

    - no compensation (everything at 1.0V),
    - traditional chip-wide adaptation (1.2V whenever anything fails),
    - the paper's island scheme (raise exactly the detected scenario's
      islands).

    This is an extension beyond the paper's exhibits: it validates the
    closed detect-and-compensate loop the methodology is designed for. *)

type chip = {
  diagonal_frac : float;    (** die position on the chip diagonal *)
  violating : int;          (** stages actually failing at 1.0V *)
  detected : int;           (** scenario the sensors report *)
  raised : int;             (** islands the controller raises *)
  meets_uncompensated : bool;
  meets_compensated : bool;
  meets_chip_wide : bool;
}

type study = {
  chips : chip list;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  (* Mean total power over the population, each chip at its own
     compensation level, vs every failing chip at chip-wide 1.2V. *)
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
}

val run :
  ?n_chips:int ->
  ?seed:int ->
  Flow.t ->
  Flow.variant ->
  study
(** Default: 40 chips, seed 7.  Each chip's die position is uniform on
    the chip diagonal; detection uses the per-die STA (ideal sensors on
    every flop — the paper's Razor subset detects the same scenario by
    construction since it monitors every path that can become
    critical). *)

val pp : Format.formatter -> study -> unit
