lib/timing/paths.ml: Array Hashtbl List Netlist Option Pvtol_netlist Pvtol_stdcell Sta Stage
