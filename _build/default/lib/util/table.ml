type align = Left | Right

type row = Cells of string list | Sep

type t = { header : string list; mutable rows : row list }

let create ~header = { header; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_sep t = t.rows <- Sep :: t.rows

let fcell ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
let pcell ?(decimals = 2) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)

let render ?aligns t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let aligns =
    match aligns with
    | Some a ->
      assert (List.length a = ncols);
      Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let note_width cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  note_width t.header;
  List.iter (function Cells c -> note_width c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    if n <= 0 then c
    else
      match aligns.(i) with
      | Left -> c ^ String.make n ' '
      | Right -> String.make n ' ' ^ c
  in
  let hline () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        if i < ncols - 1 then Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "| ";
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i c);
        Buffer.add_char buf ' ')
      (List.mapi (fun i c -> if i < ncols then c else c) cells);
    Buffer.add_char buf '\n'
  in
  emit t.header;
  hline ();
  List.iter (function Cells c -> emit c | Sep -> hline ()) rows;
  Buffer.contents buf

let print ?aligns t = print_string (render ?aligns t)

let bar_chart ?(width = 46) ?(unit_label = "") entries =
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-300 entries
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (label, v) ->
      let n = int_of_float (Float.round (v /. peak *. float_of_int width)) in
      let n = max 0 (min width n) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s%s %.3f%s\n" label_w label
           (String.make n '#')
           (String.make (width - n) ' ')
           v unit_label))
    entries;
  Buffer.contents buf
