examples/design_files.ml: Array Float Format List Pvtol_core Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_timing Pvtol_variation Pvtol_vex String
