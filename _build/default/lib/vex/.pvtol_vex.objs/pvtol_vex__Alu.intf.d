lib/vex/alu.mli: Comparator Gen
