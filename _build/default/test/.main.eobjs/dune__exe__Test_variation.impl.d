test/test_variation.ml: Alcotest Array Float Lazy List Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util Pvtol_variation Pvtol_vex String
