open Pvtol_netlist
module Geom = Pvtol_util.Geom
module Density = Pvtol_place.Density
module Placement = Pvtol_place.Placement

type direction = Horizontal | Vertical | Quadrant

type t = {
  index : int;
  region : Geom.rect;
  cells : Netlist.cell_id array;
}

type partition = {
  direction : direction;
  side : Density.side;
  islands : t array;
  core : Geom.rect;
}

let direction_name = function
  | Horizontal -> "horizontal"
  | Vertical -> "vertical"
  | Quadrant -> "quadrant"

let slice_region ~core direction side ~cut =
  match (direction, side) with
  | Vertical, Density.Left ->
    Geom.rect ~llx:core.Geom.llx ~lly:core.Geom.lly ~urx:cut ~ury:core.Geom.ury
  | Vertical, Density.Right ->
    Geom.rect ~llx:cut ~lly:core.Geom.lly ~urx:core.Geom.urx ~ury:core.Geom.ury
  | Horizontal, Density.Bottom ->
    Geom.rect ~llx:core.Geom.llx ~lly:core.Geom.lly ~urx:core.Geom.urx ~ury:cut
  | Horizontal, Density.Top ->
    Geom.rect ~llx:core.Geom.llx ~lly:cut ~urx:core.Geom.urx ~ury:core.Geom.ury
  | Vertical, (Density.Bottom | Density.Top)
  | Horizontal, (Density.Left | Density.Right) ->
    invalid_arg "Island.slice_region: side incompatible with direction"
  | Quadrant, _ ->
    invalid_arg "Island.slice_region: use region_of_fraction for Quadrant"

let region_of_fraction ~core direction side ~t =
  assert (t >= 0.0 && t <= 1.0);
  let w = Geom.width core and h = Geom.height core in
  match direction with
  | Vertical ->
    let cut =
      match side with
      | Density.Left -> core.Geom.llx +. (t *. w)
      | Density.Right -> core.Geom.urx -. (t *. w)
      | _ -> invalid_arg "Island.region_of_fraction: side/direction"
    in
    slice_region ~core direction side ~cut
  | Horizontal ->
    let cut =
      match side with
      | Density.Bottom -> core.Geom.lly +. (t *. h)
      | Density.Top -> core.Geom.ury -. (t *. h)
      | _ -> invalid_arg "Island.region_of_fraction: side/direction"
    in
    slice_region ~core direction side ~cut
  | Quadrant ->
    (* The fraction applies to both axes so the covered AREA is t^2 at
       t; sqrt makes the growth linear in area like the slab cases. *)
    let s = sqrt t in
    let dw = s *. w and dh = s *. h in
    (match side with
    | Density.Left ->
      Geom.rect ~llx:core.Geom.llx ~lly:core.Geom.lly
        ~urx:(core.Geom.llx +. dw) ~ury:(core.Geom.lly +. dh)
    | Density.Right ->
      Geom.rect ~llx:(core.Geom.urx -. dw) ~lly:(core.Geom.ury -. dh)
        ~urx:core.Geom.urx ~ury:core.Geom.ury
    | Density.Bottom ->
      Geom.rect ~llx:(core.Geom.urx -. dw) ~lly:core.Geom.lly
        ~urx:core.Geom.urx ~ury:(core.Geom.lly +. dh)
    | Density.Top ->
      Geom.rect ~llx:core.Geom.llx ~lly:(core.Geom.ury -. dh)
        ~urx:(core.Geom.llx +. dw) ~ury:core.Geom.ury)

let cells_in (p : Placement.t) region =
  let acc = ref [] in
  let n = Array.length p.Placement.xs in
  for i = n - 1 downto 0 do
    if Geom.contains region (Geom.point p.Placement.xs.(i) p.Placement.ys.(i))
    then acc := i :: !acc
  done;
  Array.of_list !acc

let domain_of_point partition pt =
  let n = Array.length partition.islands in
  let rec find k =
    if k >= n then n + 1
    else if Geom.contains partition.islands.(k).region pt then k + 1
    else find (k + 1)
  in
  find 0

let domains partition (p : Placement.t) =
  Array.init (Array.length p.Placement.xs) (fun i ->
      domain_of_point partition
        (Geom.point p.Placement.xs.(i) p.Placement.ys.(i)))

let vdd_assignment partition ~domains ~raised ~lib cid =
  let process = lib.Pvtol_stdcell.Cell.process in
  ignore partition;
  if domains.(cid) <= raised then process.Pvtol_stdcell.Process.vdd_high
  else process.Pvtol_stdcell.Process.vdd_low

let area_fraction partition k =
  assert (k >= 1 && k <= Array.length partition.islands);
  Geom.area partition.islands.(k - 1).region /. Geom.area partition.core
