exception Parse_error of string

let to_string (lib : Cell.library) =
  let b = Buffer.create 4096 in
  let p = lib.process in
  Buffer.add_string b (Printf.sprintf "library (%s) {\n" lib.name);
  let attr name v = Buffer.add_string b (Printf.sprintf "  %s : %.9g;\n" name v) in
  attr "l_nominal_nm" p.Process.l_nominal_nm;
  attr "vdd_low" p.Process.vdd_low;
  attr "vdd_high" p.Process.vdd_high;
  attr "vth0" p.Process.vth0;
  attr "alpha" p.Process.alpha;
  attr "alpha_dibl" p.Process.alpha_dibl;
  attr "subthreshold_swing" p.Process.subthreshold_swing;
  attr "wire_cap_per_um" lib.wire_cap_per_um;
  attr "wire_delay_per_um" lib.wire_delay_per_um;
  attr "clk_to_q" lib.clk_to_q;
  attr "setup" lib.setup;
  List.iter
    (fun (c : Cell.t) ->
      Buffer.add_string b (Printf.sprintf "  cell (%s) {\n" (Cell.cell_name c));
      let cattr name v =
        Buffer.add_string b (Printf.sprintf "    %s : %.9g;\n" name v)
      in
      cattr "area" c.area;
      cattr "input_cap" c.input_cap;
      cattr "intrinsic_delay" c.d0;
      cattr "drive_res" c.drive_res;
      cattr "internal_energy" c.e_internal;
      cattr "leakage" c.leak;
      Buffer.add_string b "  }\n")
    lib.cells;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_file path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string lib))

(* --- Parsing --- *)

type token = Ident of string | Num of float | Lbrace | Rbrace | Lparen | Rparen | Colon | Semi

let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '{' then begin toks := (Lbrace, !line) :: !toks; incr i end
    else if c = '}' then begin toks := (Rbrace, !line) :: !toks; incr i end
    else if c = '(' then begin toks := (Lparen, !line) :: !toks; incr i end
    else if c = ')' then begin toks := (Rparen, !line) :: !toks; incr i end
    else if c = ':' then begin toks := (Colon, !line) :: !toks; incr i end
    else if c = ';' then begin toks := (Semi, !line) :: !toks; incr i end
    else begin
      let start = !i in
      let is_word c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
      in
      while !i < n && is_word src.[!i] do incr i done;
      if !i = start then fail (Printf.sprintf "unexpected character %C" c);
      let word = String.sub src start (!i - start) in
      match float_of_string_opt word with
      | Some v -> toks := (Num v, !line) :: !toks
      | None -> toks := (Ident word, !line) :: !toks
    end
  done;
  List.rev !toks

let of_string src =
  let toks = ref (tokenize src) in
  let fail msg line = raise (Parse_error (Printf.sprintf "line %d: %s" line msg)) in
  let next () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
      toks := rest;
      t
  in
  let expect tok what =
    let t, line = next () in
    if t <> tok then fail (Printf.sprintf "expected %s" what) line
  in
  let ident what =
    match next () with
    | Ident s, _ -> s
    | _, line -> fail (Printf.sprintf "expected %s" what) line
  in
  let number what =
    match next () with
    | Num v, _ -> v
    | _, line -> fail (Printf.sprintf "expected number for %s" what) line
  in
  let lib_attrs = Hashtbl.create 16 in
  let cells = ref [] in
  let parse_cell name =
    expect Lbrace "'{'";
    let attrs = Hashtbl.create 8 in
    let rec loop () =
      match next () with
      | Rbrace, _ -> ()
      | Ident key, _ ->
        expect Colon "':'";
        let v = number key in
        expect Semi "';'";
        Hashtbl.replace attrs key v;
        loop ()
      | _, line -> fail "expected attribute or '}'" line
    in
    loop ();
    let get key =
      match Hashtbl.find_opt attrs key with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "cell %s: missing %s" name key))
    in
    let kind_str, drive_str =
      match String.rindex_opt name '_' with
      | Some i ->
        (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
      | None -> raise (Parse_error (Printf.sprintf "bad cell name %s" name))
    in
    let kind =
      match Kind.of_name kind_str with
      | Some k -> k
      | None -> raise (Parse_error (Printf.sprintf "unknown cell kind %s" kind_str))
    in
    let drive =
      match Cell.drive_of_name drive_str with
      | Some d -> d
      | None -> raise (Parse_error (Printf.sprintf "unknown drive %s" drive_str))
    in
    cells :=
      {
        Cell.kind;
        drive;
        area = get "area";
        input_cap = get "input_cap";
        d0 = get "intrinsic_delay";
        drive_res = get "drive_res";
        e_internal = get "internal_energy";
        leak = get "leakage";
      }
      :: !cells
  in
  expect (Ident "library") "'library'";
  expect Lparen "'('";
  let lib_name = ident "library name" in
  expect Rparen "')'";
  expect Lbrace "'{'";
  let rec body () =
    match next () with
    | Rbrace, _ -> ()
    | Ident "cell", _ ->
      expect Lparen "'('";
      let name = ident "cell name" in
      expect Rparen "')'";
      parse_cell name;
      body ()
    | Ident key, _ ->
      expect Colon "':'";
      let v = number key in
      expect Semi "';'";
      Hashtbl.replace lib_attrs key v;
      body ()
    | _, line -> fail "expected attribute, cell or '}'" line
  in
  body ();
  let get key =
    match Hashtbl.find_opt lib_attrs key with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing library attribute %s" key))
  in
  {
    Cell.name = lib_name;
    process =
      {
        Process.l_nominal_nm = get "l_nominal_nm";
        vdd_low = get "vdd_low";
        vdd_high = get "vdd_high";
        vth0 = get "vth0";
        alpha = get "alpha";
        alpha_dibl = get "alpha_dibl";
        subthreshold_swing = get "subthreshold_swing";
      };
    cells = List.rev !cells;
    wire_cap_per_um = get "wire_cap_per_um";
    wire_delay_per_um = get "wire_delay_per_um";
    clk_to_q = get "clk_to_q";
    setup = get "setup";
  }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
