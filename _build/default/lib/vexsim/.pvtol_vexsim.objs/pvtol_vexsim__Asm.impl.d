lib/vexsim/asm.ml: Array Buffer Hashtbl Isa List Printf String
