exception Error of string

let fail line fmt =
  Printf.ksprintf (fun m -> raise (Error (Printf.sprintf "line %d: %s" line m))) fmt

let strip_comment line =
  let cut =
    match String.index_opt line '#' with
    | Some i -> i
    | None -> String.length line
  in
  let cut =
    (* ';;' introduces a comment; a single ';' separates slots. *)
    let rec find i =
      if i + 1 >= cut then cut
      else if line.[i] = ';' && line.[i + 1] = ';' then i
      else find (i + 1)
    in
    find 0
  in
  String.sub line 0 cut

let split_char c s = String.split_on_char c s |> List.map String.trim

let parse_reg lnum tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some r when r >= 0 && r < Isa.n_regs -> r
    | _ -> fail lnum "bad register %S" tok
  else fail lnum "expected register, got %S" tok

let parse_imm lnum tok =
  match int_of_string_opt tok with
  | Some v when v >= -128 && v <= 255 -> v land 0xff
  | Some _ -> fail lnum "immediate %S out of 8-bit range" tok
  | None -> fail lnum "bad immediate %S" tok

(* 'imm(rN)' displacement operand. *)
let parse_disp lnum tok =
  match String.index_opt tok '(' with
  | Some i when String.length tok > i + 2 && tok.[String.length tok - 1] = ')' ->
    let imm = parse_imm lnum (String.sub tok 0 i) in
    let reg = parse_reg lnum (String.sub tok (i + 1) (String.length tok - i - 2)) in
    (imm, reg)
  | _ -> fail lnum "expected displacement imm(rN), got %S" tok

let parse_op lnum labels text =
  let text = String.trim text in
  if text = "" then Isa.nop
  else begin
    let mnemonic, rest =
      match String.index_opt text ' ' with
      | Some i ->
        ( String.sub text 0 i,
          String.sub text (i + 1) (String.length text - i - 1) )
      | None -> (text, "")
    in
    let opcode =
      match Isa.opcode_of_name (String.lowercase_ascii mnemonic) with
      | Some o -> o
      | None -> fail lnum "unknown mnemonic %S" mnemonic
    in
    let args = if String.trim rest = "" then [] else split_char ',' rest in
    let reg = parse_reg lnum in
    match (opcode, args) with
    | Isa.Nop, [] -> Isa.nop
    | (Isa.Add | Isa.Sub | Isa.And | Isa.Or | Isa.Xor | Isa.Shl | Isa.Shr
      | Isa.Mul | Isa.Cmplt | Isa.Cmpeq), [ rd; rs1; rs2 ] ->
      { Isa.opcode; rd = reg rd; rs1 = reg rs1; rs2 = reg rs2; imm = 0 }
    | Isa.Movi, [ rd; imm ] ->
      { Isa.opcode; rd = reg rd; rs1 = 0; rs2 = 0; imm = parse_imm lnum imm }
    | Isa.Ld, [ rd; disp ] ->
      let imm, rs1 = parse_disp lnum disp in
      { Isa.opcode; rd = reg rd; rs1; rs2 = 0; imm }
    | Isa.St, [ rs2; disp ] ->
      let imm, rs1 = parse_disp lnum disp in
      { Isa.opcode; rd = 0; rs1; rs2 = reg rs2; imm }
    | (Isa.Brz | Isa.Brnz), [ rs1; label ] ->
      let target =
        match Hashtbl.find_opt labels label with
        | Some t -> t
        | None -> fail lnum "undefined label %S" label
      in
      if target > 255 then fail lnum "branch target %d out of range" target;
      { Isa.opcode; rd = 0; rs1 = reg rs1; rs2 = 0; imm = target }
    | _ ->
      fail lnum "wrong operands for %s (%d given)" (Isa.opcode_name opcode)
        (List.length args)
  end

(* First pass: strip labels, record their bundle index. *)
let first_pass src =
  let labels = Hashtbl.create 16 in
  let bundles = ref [] in
  let bundle_index = ref 0 in
  List.iteri
    (fun i raw ->
      let lnum = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        let line =
          match String.index_opt line ':' with
          | Some ci ->
            let label = String.trim (String.sub line 0 ci) in
            if label = "" || String.contains label ' ' then
              fail lnum "malformed label";
            Hashtbl.replace labels label !bundle_index;
            String.trim (String.sub line (ci + 1) (String.length line - ci - 1))
          | None -> line
        in
        if line <> "" then begin
          bundles := (lnum, line) :: !bundles;
          incr bundle_index
        end
      end)
    (String.split_on_char '\n' src);
  (labels, List.rev !bundles)

let assemble src =
  let labels, lines = first_pass src in
  let parse_bundle (lnum, line) =
    let parts = split_char ';' line in
    if List.length parts > Isa.slots then
      fail lnum "more than %d slots" Isa.slots;
    let ops = Array.make Isa.slots Isa.nop in
    List.iteri (fun i part -> ops.(i) <- parse_op lnum labels part) parts;
    (* Branches are only decoded from slot 0 (the branch unit sits in
       the decode stage next to slot 0's decoder). *)
    Array.iteri
      (fun i op ->
        if i > 0 && Isa.is_branch op.Isa.opcode then
          fail lnum "branch must be in slot 0")
      ops;
    ops
  in
  Array.of_list (List.map parse_bundle lines)

let disassemble program =
  let op_text (o : Isa.op) =
    let n = Isa.opcode_name o.Isa.opcode in
    match o.Isa.opcode with
    | Isa.Nop -> "nop"
    | Isa.Movi -> Printf.sprintf "%s r%d, %d" n o.Isa.rd o.Isa.imm
    | Isa.Ld -> Printf.sprintf "%s r%d, %d(r%d)" n o.Isa.rd o.Isa.imm o.Isa.rs1
    | Isa.St -> Printf.sprintf "%s r%d, %d(r%d)" n o.Isa.rs2 o.Isa.imm o.Isa.rs1
    | Isa.Brz | Isa.Brnz -> Printf.sprintf "%s r%d, L%d" n o.Isa.rs1 o.Isa.imm
    | _ -> Printf.sprintf "%s r%d, r%d, r%d" n o.Isa.rd o.Isa.rs1 o.Isa.rs2
  in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i bundle ->
      Buffer.add_string buf (Printf.sprintf "L%d: " i);
      Buffer.add_string buf
        (String.concat " ; " (Array.to_list (Array.map op_text bundle)));
      Buffer.add_char buf '\n')
    program;
  Buffer.contents buf
