lib/timing/sta.mli: Netlist Pvtol_netlist Pvtol_place Stage
