open Pvtol_netlist

type site = {
  endpoint : Netlist.cell_id;
  stage : Stage.t;
  criticality : float;
}

type plan = {
  sites : site list;
  per_stage : (Stage.t * int) list;
  area_overhead : float;
  area_overhead_frac : float;
}

(* Extra area of a Razor flop over a plain flop: shadow latch,
   metastability detector and restore mux. *)
let razor_area_factor = 0.7

let select ?(min_criticality = 0.01) (mc : Monte_carlo.result) nl =
  let total_samples =
    match mc.Monte_carlo.stages with
    | s :: _ -> Array.length s.Monte_carlo.samples
    | [] -> 1
  in
  let stage_of = Hashtbl.create 16 in
  List.iter
    (fun (ss : Monte_carlo.stage_stats) ->
      Hashtbl.replace stage_of ss.Monte_carlo.stage ())
    mc.Monte_carlo.stages;
  let sites =
    Hashtbl.fold
      (fun cid count acc ->
        let crit = float_of_int count /. float_of_int total_samples in
        if crit >= min_criticality then
          let cell = nl.Netlist.cells.(cid) in
          (* capture stage is recorded via the MC run's stage set; find
             it from the unit tag used by the design's classifier. *)
          let stage =
            match cell.Netlist.unit_name with
            | "pipe_fe_dc" | "fetch" -> Stage.Fetch
            | "pipe_dc_ex" -> Stage.Decode
            | "pipe_ex_wb" -> Stage.Execute
            | _ -> Stage.Writeback
          in
          { endpoint = cid; stage; criticality = crit } :: acc
        else acc)
      mc.Monte_carlo.endpoint_critical_count []
    |> List.sort (fun a b -> compare b.criticality a.criticality)
  in
  let per_stage =
    List.filter_map
      (fun s ->
        let n = List.length (List.filter (fun site -> Stage.equal site.stage s) sites) in
        if n > 0 then Some (s, n) else None)
      Stage.all
  in
  let area_overhead =
    List.fold_left
      (fun acc site ->
        acc
        +. razor_area_factor
           *. nl.Netlist.cells.(site.endpoint).Netlist.cell.Pvtol_stdcell.Cell.area)
      0.0 sites
  in
  {
    sites;
    per_stage;
    area_overhead;
    area_overhead_frac = area_overhead /. Netlist.area nl;
  }

let pp fmt plan =
  Format.fprintf fmt "razor sensor plan: %d sites, %.0f um^2 (%.3f%% of core)@."
    (List.length plan.sites) plan.area_overhead
    (100.0 *. plan.area_overhead_frac);
  List.iter
    (fun (s, n) -> Format.fprintf fmt "  %-12s %d monitored flops@." (Stage.name s) n)
    plan.per_stage
