(** Clock-skew pipeline retiming bound (the ReCycle-style alternative
    of the paper's §1 / reference [1]).

    With per-stage clock-skew adjustment, a slow stage can borrow time
    from faster neighbours, but every feedback loop still bounds the
    cycle time by its average stage delay — and a single-stage loop
    (the execute stage's forwarding path) gets no borrowing at all.
    The paper's argument is that under large spatially-correlated
    systematic variation all stages slow down together, so there is
    nothing to borrow; this module lets the experiments quantify that
    claim on the reproduced design. *)

open Pvtol_netlist

val loops : Stage.t list list
(** The VEX design's stage-level feedback loops: the execute forwarding
    self-loop, the writeback -> decode -> execute register-file loop,
    and the fetch <-> decode branch loop. *)

type result = {
  t_unretimed : float;  (** max stage delay *)
  t_retimed : float;    (** best cycle time with optimal skews *)
  gain : float;         (** 1 - t_retimed / t_unretimed *)
  binding_loop : Stage.t list;
}

val bound : delay_of:(Stage.t -> float option) -> result
(** Optimal-skew cycle time: [max] over loops of the loop's average
    stage delay (stages without a measured delay are skipped). *)
