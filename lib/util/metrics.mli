(** Process-wide metrics registry: named counters, gauges and
    histograms over lock-free per-domain shards.

    The registry is built for instrumenting hot paths (a Monte-Carlo
    sample, an STA pass, a pool chunk): when metrics are {e disabled}
    (the default) every update is a single [bool ref] read and
    allocates nothing, so instrumentation can stay in the inner loops
    permanently.  When enabled, counter and histogram updates write to
    a {e per-domain shard} — a plain mutable record reached through
    [Domain.DLS], so the hot path takes no lock and issues no atomic
    read-modify-write.  Shards are merged at read time, sorted by the
    id of the domain that created them; integer counts merge by exact
    commutative addition, so deterministic workloads produce
    bit-identical counter values for every [PVTOL_DOMAINS] setting.

    Enable with {!set_enabled} (the CLI does this for
    [--metrics-out]) or by setting the [PVTOL_METRICS=1] environment
    variable before start-up.

    Metric names must match [[a-zA-Z_][a-zA-Z0-9_]*] (the Prometheus
    charset).  Registering the same name twice returns the existing
    metric; registering it as a different kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Flip metric collection globally.  Call before spawning domains
    that should be observed; updates made while disabled are lost. *)

val enabled : unit -> bool

(** {1 Registration (cold path, idempotent per name)} *)

val counter : string -> counter
(** Monotonically increasing integer count. *)

val gauge : string -> gauge
(** A single float value, last write wins. *)

val histogram : ?buckets:float array -> string -> histogram
(** Distribution over fixed bucket upper bounds (strictly increasing;
    an implicit [+inf] overflow bucket is appended).  Default buckets
    are exponential seconds from 10us to 10s. *)

val default_buckets : float array

(** {1 Updates (hot path; no-ops that allocate nothing when disabled)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reads (merge shards deterministically)} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts; the last entry is the [+inf]
    overflow bucket, so the length is [Array.length buckets + 1]. *)

(** {1 Snapshot and export} *)

type histo_value = {
  buckets : float array;  (** upper bounds, without the +inf bucket *)
  counts : int array;     (** per-bucket counts, +inf last *)
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of float | Histogram of histo_value

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot

val to_json : snapshot -> string
(** [{"counters": {..}, "gauges": {..}, "histograms": {..}}]; histogram
    buckets carry non-cumulative counts and a ["+Inf"] overflow. *)

val to_value : snapshot -> Json.t
(** The {!to_json} payload as a {!Json} tree, for embedding inside a
    larger document (the run ledger). *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format; histogram buckets are
    cumulative with the standard [le] label. *)

val summary_line : snapshot -> string
(** One line of the nonzero counters, name-sorted — the footer exhibits
    print when metrics are on. *)

val write : file:string -> unit
(** Snapshot the registry and write it to [file]: Prometheus text if
    the name ends in [.prom] or [.txt], JSON otherwise. *)

val reset : unit -> unit
(** Zero every shard of every registered metric (tests and benchmark
    reruns; concurrent updates during a reset may survive it). *)
