(** Razor-style timing-sensor site selection (paper §4.4).

    After manufacturing, the occurring violation scenario must be
    detected on-line.  The paper observes that only the flip-flops fed
    by paths that *can become critical under variation* need delayed
    shadow sampling — for its execute stage at point A, 12 such paths.
    This module derives those sites from the Monte-Carlo endpoint
    criticality counts and quantifies the sensor overhead. *)

open Pvtol_netlist

type site = {
  endpoint : Netlist.cell_id;
  stage : Stage.t;
  criticality : float;
      (** fraction of Monte-Carlo samples in which this flop's path was
          within 2% of the stage's worst delay *)
}

type plan = {
  sites : site list;              (** all selected sites, all stages *)
  per_stage : (Stage.t * int) list;
  area_overhead : float;
      (** extra area, um^2, assuming a Razor flop costs an extra 70% of
          a standard flop (shadow latch + comparator + mux) *)
  area_overhead_frac : float;     (** relative to total design area *)
}

val select :
  ?min_criticality:float -> Monte_carlo.result -> Pvtol_netlist.Netlist.t -> plan
(** Flops whose criticality exceeds [min_criticality] (default 0.01 =
    critical in at least 1% of samples). *)

val pp : Format.formatter -> plan -> unit
