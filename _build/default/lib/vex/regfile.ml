open Gen

type config = {
  n_regs : int;
  width : int;
  n_read : int;
  n_write : int;
  addr_bits : int;
  sel_fanout : int;
}

let default_config =
  { n_regs = 64; width = 32; n_read = 8; n_write = 4; addr_bits = 6; sel_fanout = 64 }

type ports = {
  read_addr : bus array;
  read_data : bus array;
  write_addr : bus array;
  write_data : bus array;
  write_en : net array;
}

(* 2^k : 1 mux tree over the register outputs, one level per address bit.
   Address-bit fanout is large by design (see interface). *)
let read_port t cfg ~addr ~q =
  let sel_fans =
    Array.init cfg.addr_bits (fun k ->
        (* Level k has n_regs / 2^(k+1) muxes per bit. *)
        let muxes_at_level = cfg.n_regs lsr (k + 1) in
        fanout_tree t ~fanout:cfg.sel_fanout addr.(k) (muxes_at_level * cfg.width))
  in
  Array.init cfg.width (fun i ->
      let values = ref (Array.init cfg.n_regs (fun r -> q.(r).(i))) in
      for k = 0 to cfg.addr_bits - 1 do
        let n = Array.length !values / 2 in
        values :=
          Array.init n (fun j ->
              let sel = sel_fans.(k).((j * cfg.width) + i) in
              mux2 t !values.(2 * j) !values.((2 * j) + 1) ~sel)
      done;
      (!values).(0))

let build t cfg ~read_addr ~write_addr ~write_data ~write_en =
  assert (1 lsl cfg.addr_bits = cfg.n_regs);
  assert (Array.length read_addr = cfg.n_read);
  assert (Array.length write_addr = cfg.n_write);
  assert (Array.length write_data = cfg.n_write);
  assert (Array.length write_en = cfg.n_write);
  (* Flops first (deferred D) so the hold muxes can consume Q. *)
  let q = Array.make_matrix cfg.n_regs cfg.width 0 in
  let patch = Array.make_matrix cfg.n_regs cfg.width (fun _ -> ()) in
  for r = 0 to cfg.n_regs - 1 do
    for i = 0 to cfg.width - 1 do
      let qn, p = dff_deferred t in
      q.(r).(i) <- qn;
      patch.(r).(i) <- p
    done
  done;
  (* Write-port decode: per register, per port, a full address match,
     then a priority chain resolving multi-port conflicts (the highest
     port index wins, as when several slots target the same register). *)
  let match_ = Array.make_matrix cfg.n_regs cfg.n_write write_en.(0) in
  for r = 0 to cfg.n_regs - 1 do
    let raw =
      Array.init cfg.n_write (fun p ->
          let hit = Comparator.equal_const t write_addr.(p) r in
          and2 t hit write_en.(p))
    in
    let kill = ref (tie0 t) in
    for p = cfg.n_write - 1 downto 0 do
      match_.(r).(p) <- and2 t raw.(p) (inv t !kill);
      kill := or2 t !kill raw.(p)
    done
  done;
  (* Write data distribution with shallow, high-fanout buffer trees. *)
  let wdata_fan =
    Array.map
      (fun data ->
        Array.map
          (fun bit -> fanout_tree t ~fanout:cfg.sel_fanout bit cfg.n_regs)
          data)
      write_data
  in
  for r = 0 to cfg.n_regs - 1 do
    let we = or_tree t (Array.to_list match_.(r)) in
    let we_fan = fanout_tree t ~fanout:cfg.sel_fanout we cfg.width in
    let sel_fans =
      Array.map (fun m -> fanout_tree t ~fanout:cfg.sel_fanout m cfg.width) match_.(r)
    in
    for i = 0 to cfg.width - 1 do
      let data = ref wdata_fan.(0).(i).(r) in
      for p = 1 to cfg.n_write - 1 do
        data := mux2 t !data wdata_fan.(p).(i).(r) ~sel:sel_fans.(p).(i)
      done;
      let d = mux2 t q.(r).(i) !data ~sel:we_fan.(i) in
      patch.(r).(i) d
    done
  done;
  let read_data =
    Array.map (fun addr -> read_port t cfg ~addr ~q) read_addr
  in
  { read_addr; read_data; write_addr; write_data; write_en }
