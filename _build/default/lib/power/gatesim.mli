(** Gate-level logic simulation for switching-activity extraction —
    the ModelSim back-annotation step of the paper's power flow.

    The netlist is evaluated cycle by cycle: primary inputs are driven
    by a stimulus, combinational cells evaluate in levelized order
    using the exact boolean semantics of their {!Pvtol_stdcell.Kind},
    and flip-flops update on the (implicit) clock edge.  Output-net
    toggles are counted per cell. *)

open Pvtol_netlist

type stimulus = cycle:int -> input_index:int -> bool
(** Value of the i-th primary input (in [Netlist.inputs] order) at a
    cycle. *)

type activity = {
  cycles : int;
  toggles : int array;     (** per cell, output toggles over the run *)
  rates : float array;     (** toggles / cycle per cell *)
}

val run : ?cycles:int -> Netlist.t -> stimulus -> activity
(** Simulate (default 512 cycles).  Deterministic for a deterministic
    stimulus. *)

val random_stimulus : seed:int -> stimulus
(** Uniform random bits (per cycle and input, reproducible). *)

val trace_stimulus :
  Netlist.t -> instr_prefix:string -> words:Int32.t array list ->
  fallback:stimulus -> stimulus * int
(** Drive the inputs named [instr_prefix][k] from a per-cycle word
    trace (an ISS instruction stream); every other input falls back to
    [fallback].  Returns the stimulus and the trace length in cycles;
    the trace repeats if the simulation runs longer. *)

val mean_rate : activity -> float
