test/test_properties.ml: Array Float List Netlist Printf Pvtol_core Pvtol_netlist Pvtol_place Pvtol_power Pvtol_stdcell Pvtol_timing Pvtol_util QCheck QCheck_alcotest Simtool Stage
