lib/stdcell/kind.mli: Format
