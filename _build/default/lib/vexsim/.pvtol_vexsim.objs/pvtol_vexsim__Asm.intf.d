lib/vexsim/asm.mli: Isa
