open Pvtol_netlist
module Geom = Pvtol_util.Geom
module Density = Pvtol_place.Density
module Placement = Pvtol_place.Placement
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position

type target = {
  scenario_index : int;
  position : Position.t;
}

type outcome = {
  partition : Island.partition;
  cuts : float array;
  checks : int;
}

exception Infeasible of string

let corner_scale ~sampler ~systematic ~corner_kappa ~vdd cid =
  let lgate_nm =
    systematic.(cid) +. (corner_kappa *. sampler.Sampler.sigma_rnd_nm)
  in
  Sampler.delay_scale sampler ~lgate_nm ~vdd:(vdd cid)

(* Stages whose violations the methodology compensates (fetch excluded,
   as in the paper). *)
let checked_stages = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let pick_side direction density =
  (* Restrict the density choice to the sides compatible with the
     slicing orientation. *)
  let third = density.Density.nx / 3 in
  let sum pred =
    let acc = ref 0.0 in
    for iy = 0 to density.Density.ny - 1 do
      for ix = 0 to density.Density.nx - 1 do
        if pred ix iy then
          acc := !acc +. density.Density.occupied.((iy * density.Density.nx) + ix)
      done
    done;
    !acc
  in
  match direction with
  | Island.Vertical ->
    let left = sum (fun ix _ -> ix < third) in
    let right = sum (fun ix _ -> ix >= density.Density.nx - third) in
    if left >= right then Density.Left else Density.Right
  | Island.Horizontal ->
    let bottom = sum (fun _ iy -> iy < third) in
    let top = sum (fun _ iy -> iy >= density.Density.ny - third) in
    if bottom >= top then Density.Bottom else Density.Top
  | Island.Quadrant ->
    (* Pick the densest corner quarter; Island's corner encoding. *)
    let nx = density.Density.nx and ny = density.Density.ny in
    let half_x = nx / 2 and half_y = ny / 2 in
    let corners =
      [
        (Density.Left, sum (fun ix iy -> ix < half_x && iy < half_y));
        (Density.Right, sum (fun ix iy -> ix >= half_x && iy >= half_y));
        (Density.Bottom, sum (fun ix iy -> ix >= half_x && iy < half_y));
        (Density.Top, sum (fun ix iy -> ix < half_x && iy >= half_y));
      ]
    in
    fst
      (List.fold_left
         (fun (bs, bv) (s, v) -> if v > bv then (s, v) else (bs, bv))
         (Density.Left, neg_infinity) corners)

let generate ?(corner_kappa = 0.35) ?(tolerance_um = 2.0) ~direction ?side ~sta
    ~placement ~sampler ~clock ~targets () =
  let nl = Sta.netlist sta in
  let lib = nl.Netlist.lib in
  let vdd_low = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
  let vdd_high = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_high in
  let core = placement.Placement.floorplan.Pvtol_place.Floorplan.core in
  let side =
    match side with
    | Some s -> s
    | None -> pick_side direction (Density.compute placement)
  in
  (* Growth parameterised by the fraction t of the core consumed from
     the chosen side or corner. *)
  let region_of_t t = Island.region_of_fraction ~core direction side ~t in
  let cut_of_t t =
    (* Representative cut coordinate, for reporting. *)
    let r = region_of_t t in
    match (direction, side) with
    | Island.Vertical, Density.Left -> r.Geom.urx
    | Island.Vertical, Density.Right -> r.Geom.llx
    | Island.Horizontal, Density.Bottom -> r.Geom.ury
    | Island.Horizontal, Density.Top -> r.Geom.lly
    | Island.Quadrant, _ -> Geom.width r
    | _ -> assert false
  in
  let base = Sta.nominal_delays sta in
  let delays = Array.make (Array.length base) 0.0 in
  let checks = ref 0 in
  let meets ~systematic t =
    incr checks;
    let region = region_of_t t in
    let inside cid =
      Geom.contains region
        (Geom.point placement.Placement.xs.(cid) placement.Placement.ys.(cid))
    in
    let vdd cid = if inside cid then vdd_high else vdd_low in
    for i = 0 to Array.length base - 1 do
      delays.(i) <-
        base.(i) *. corner_scale ~sampler ~systematic ~corner_kappa ~vdd i
    done;
    let r = Sta.analyze sta ~delays in
    List.for_all
      (fun s ->
        match Sta.stage_delay r s with
        | Some d -> d <= clock +. 1e-9
        | None -> true)
      checked_stages
  in
  let extent = match direction with
    | Island.Vertical | Island.Quadrant -> Geom.width core
    | Island.Horizontal -> Geom.height core
  in
  let tol_t = tolerance_um /. extent in
  let grow ~systematic t_prev =
    if meets ~systematic t_prev then t_prev
    else if not (meets ~systematic 1.0) then raise Exit
    else begin
      (* Binary search for the minimal compensating fraction. *)
      let lo = ref t_prev and hi = ref 1.0 in
      while !hi -. !lo > tol_t do
        let mid = (!lo +. !hi) /. 2.0 in
        if meets ~systematic mid then hi := mid else lo := mid
      done;
      !hi
    end
  in
  let islands = ref [] in
  let cuts = ref [] in
  let t_prev = ref 0.0 in
  List.iteri
    (fun i target ->
      assert (target.scenario_index = i + 1);
      let systematic = Sampler.systematic_lgates sampler placement target.position in
      let t =
        try grow ~systematic !t_prev
        with Exit ->
          raise
            (Infeasible
               (Printf.sprintf
                  "scenario %d at position %s not compensable even chip-wide"
                  target.scenario_index target.position.Position.label))
      in
      t_prev := t;
      let region = region_of_t t in
      cuts := cut_of_t t :: !cuts;
      islands :=
        {
          Island.index = target.scenario_index;
          region;
          cells = Island.cells_in placement region;
        }
        :: !islands)
    targets;
  {
    partition =
      {
        Island.direction;
        side;
        islands = Array.of_list (List.rev !islands);
        core;
      };
    cuts = Array.of_list (List.rev !cuts);
    checks = !checks;
  }
