(** Post-silicon compensation, evaluated over a chip population.

    The paper's deployment story (§1, §3): after fabrication, Razor
    timing sensors detect which violation scenario a die exhibits and
    the matching number of voltage islands is raised.  This module
    plays that story out across a population of simulated dies — each
    with its own position on the exposure field and its own random
    per-gate Lgate draw — and reports the timing yield and power of

    - no compensation (everything at 1.0V),
    - traditional chip-wide adaptation (1.2V whenever anything fails),
    - the paper's island scheme (raise exactly the detected scenario's
      islands).

    The detect-and-compensate loop for ONE die is exposed as a reusable
    {!kernel} + {!simulate_die} pair so population drivers — the
    diagonal {!run} study below, and the wafer-scale 2D sweep of
    {!Wafer} — share the exact same per-die physics.  A kernel is
    immutable once built; each concurrent caller brings its own
    {!scratch}, so dies can be simulated from pool workers in
    parallel.

    Since the strategy refactor the kernel is itself a thin shell over
    {!Compensation}: detection and both compensation schemes are the
    [Vi] and [Chipwide] strategies of that interface, applied in
    sequence — which is how they stay bit-identical to the
    {!Compare.run} columns racing them against the post-silicon
    rivals (clock-skew tuning, tunable buffers).

    This is an extension beyond the paper's exhibits: it validates the
    closed detect-and-compensate loop the methodology is designed for. *)

type chip = {
  diagonal_frac : float;    (** die position on the chip diagonal *)
  violating : int;          (** stages actually failing at 1.0V *)
  detected : int;           (** scenario the sensors report *)
  raised : int;             (** islands the controller raises *)
  meets_uncompensated : bool;
  meets_compensated : bool;
  meets_chip_wide : bool;
}

type study = {
  chips : chip list;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  (* Mean total power over the population, each chip at its own
     compensation level, vs every failing chip at chip-wide 1.2V. *)
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
}

(** {2 Single-die kernel} *)

type kernel
(** Everything position- and die-independent, precomputed once: the
    STA, the nominal delays, the island→cell domain map, the clock and
    the power table per compensation level.  Immutable; safe to share
    across domains. *)

type scratch
(** Per-caller mutable state (STA workspace, Lgate and delay buffers).
    One per concurrent simulator; reused across dies without
    allocation. *)

type die = {
  die_violating : int;          (** stages actually failing at 1.0V *)
  die_detected : int;           (** scenario the sensors report *)
  die_raised : int;             (** islands the controller raises *)
  die_meets_uncompensated : bool;
  die_meets_compensated : bool;
  die_meets_chip_wide : bool;
  die_worst_low_ns : float;
      (** worst analyzed-stage delay at the low supply — the die's
          pre-compensation critical path *)
}

val kernel :
  ?engine:Pvtol_ssta.Monte_carlo.engine -> Flow.t -> Flow.variant -> kernel
(** Forces the flow stages it reads (netlist, placement, STA, sampler,
    clock, the variant's power configurations); afterwards
    {!simulate_die} touches no stage graph and no shared mutable
    state.

    [engine] (default {!Pvtol_ssta.Monte_carlo.engine_of_env}) selects
    the STA strategy of the settle loop: [Golden] runs a full forward
    pass per supply configuration, [Batched] re-propagates
    incrementally from the previous configuration's arrivals
    ({!Pvtol_timing.Sta.analyze_incremental_into}, exact — die results
    are bit-identical either way). *)

val scratch : kernel -> scratch
val n_islands : kernel -> int
val clock : kernel -> float

val systematic : kernel -> Pvtol_variation.Position.t -> float array
(** Per-cell systematic Lgate at a die position (any position — not
    just the A-D diagonal).  Deterministic; compute once per position
    and share across the dies simulated there. *)

val simulate_die :
  kernel -> scratch -> systematic:float array -> Pvtol_util.Srng.t -> die
(** One die: draw its random Lgate realisation from [rng] (exactly one
    {!Pvtol_variation.Sampler.sample_lgates} call), detect the failing
    stages at the low supply, raise islands until timing is met
    (closed-loop settle), and evaluate the chip-wide alternative.
    Consumes RNG draws only for the Lgate sampling, so callers control
    the stream layout. *)

val power_islands_mw : kernel -> raised:int -> float
(** Total chip power with islands [1..raised] at the high supply. *)

val power_chip_wide_mw : kernel -> float
val power_baseline_mw : kernel -> float

val die_power_islands_mw : kernel -> die -> float
(** Power of the die under the island scheme (its own raised level). *)

val die_power_chip_wide_mw : kernel -> die -> float
(** Power under chip-wide adaptation: baseline if the die passes
    uncompensated, everything at 1.2V otherwise. *)

(** {2 Population study along the chip diagonal} *)

val run :
  ?n_chips:int ->
  ?seed:int ->
  Flow.t ->
  Flow.variant ->
  study
(** Default: 40 chips, seed 7.  Each chip's die position is uniform on
    the chip diagonal; detection uses the per-die STA (ideal sensors on
    every flop — the paper's Razor subset detects the same scenario by
    construction since it monitors every path that can become
    critical).  Implemented on {!simulate_die}; bit-identical to the
    original dedicated loop. *)

val pp : Format.formatter -> study -> unit
