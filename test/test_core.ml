(* Tests for the paper's core contribution: islands, greedy slicing,
   level-shifter insertion, and the end-to-end flow. *)

module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Level_shifter = Pvtol_core.Level_shifter
module Experiments = Pvtol_core.Experiments
module Sg = Pvtol_core.Stage
module Trace = Pvtol_util.Trace
module Power = Pvtol_power.Power
module Sta = Pvtol_timing.Sta
module Position = Pvtol_variation.Position
module Sampler = Pvtol_variation.Sampler
module Geom = Pvtol_util.Geom
module Netlist = Pvtol_netlist.Netlist
module Stage = Pvtol_netlist.Stage
module Density = Pvtol_place.Density

(* One quick flow + vertical variant shared by the whole suite. *)
let env =
  lazy
    (let t = Flow.prepare ~config:Flow.quick_config () in
     (t, Flow.variant t Island.Vertical))

(* --- island geometry --- *)

let test_slice_region_sides () =
  let core = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:100.0 ~ury:50.0 in
  let r = Island.slice_region ~core Island.Vertical Density.Left ~cut:30.0 in
  Alcotest.(check bool) "left slab" true (r.Geom.llx = 0.0 && r.Geom.urx = 30.0);
  let r = Island.slice_region ~core Island.Vertical Density.Right ~cut:70.0 in
  Alcotest.(check bool) "right slab" true (r.Geom.llx = 70.0 && r.Geom.urx = 100.0);
  let r = Island.slice_region ~core Island.Horizontal Density.Top ~cut:20.0 in
  Alcotest.(check bool) "top slab" true (r.Geom.lly = 20.0 && r.Geom.ury = 50.0);
  try
    ignore (Island.slice_region ~core Island.Vertical Density.Top ~cut:20.0);
    Alcotest.fail "incompatible side should be rejected"
  with Invalid_argument _ -> ()

let test_islands_nested () =
  let _, v = Lazy.force env in
  let part = v.Flow.slicing.Slicing.partition in
  let islands = part.Island.islands in
  for k = 0 to Array.length islands - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "VI%d inside VI%d" (k + 1) (k + 2))
      true
      (Geom.subsumes islands.(k + 1).Island.region islands.(k).Island.region);
    Alcotest.(check bool) "cell sets nested too" true
      (Array.length islands.(k).Island.cells
      <= Array.length islands.(k + 1).Island.cells)
  done;
  Alcotest.(check int) "three islands" 3 (Array.length islands)

let test_domains_consistent () =
  let t, v = Lazy.force env in
  let part = v.Flow.slicing.Slicing.partition in
  let placement = Flow.placement t in
  let domains = Island.domains part placement in
  Array.iteri
    (fun cid d ->
      let pt =
        Geom.point placement.Pvtol_place.Placement.xs.(cid)
          placement.Pvtol_place.Placement.ys.(cid)
      in
      (* Domain d means: inside islands d, d+1, ... and outside d-1. *)
      Alcotest.(check int) "domain matches geometry" (Island.domain_of_point part pt) d)
    domains;
  (* Island-1 cells are exactly the domain-1 cells. *)
  let in_island_1 = part.Island.islands.(0).Island.cells in
  Array.iter
    (fun cid -> Alcotest.(check int) "island-1 cell domain" 1 domains.(cid))
    in_island_1

let test_vdd_assignment_monotone () =
  let t, v = Lazy.force env in
  let part = v.Flow.slicing.Slicing.partition in
  let domains = Island.domains part (Flow.placement t) in
  let lib = (Flow.netlist t).Netlist.lib in
  let n = Netlist.cell_count (Flow.netlist t) in
  for raised = 0 to 2 do
    let count v_of =
      let c = ref 0 in
      for cid = 0 to n - 1 do
        if v_of cid > 1.1 then incr c
      done;
      !c
    in
    let now = count (Island.vdd_assignment part ~domains ~raised ~lib) in
    let next = count (Island.vdd_assignment part ~domains ~raised:(raised + 1) ~lib) in
    Alcotest.(check bool) "raising more islands raises more cells" true (next >= now)
  done;
  (* raised = 0 means everything low. *)
  let all_low =
    Array.for_all
      (fun cid -> Island.vdd_assignment part ~domains ~raised:0 ~lib cid < 1.1)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check bool) "raised 0 all low" true all_low

(* --- slicing --- *)

let test_slicing_compensates_at_corner () =
  let t, v = Lazy.force env in
  let part = v.Flow.slicing.Slicing.partition in
  let domains = Island.domains part (Flow.placement t) in
  let lib = (Flow.netlist t).Netlist.lib in
  (* Re-run the deterministic corner check the generator used for the
     most severe scenario: all stages must meet the clock. *)
  let systematic =
    Sampler.systematic_lgates (Flow.sampler t) (Flow.placement t)
      Position.point_a
  in
  let vdd = Island.vdd_assignment part ~domains ~raised:3 ~lib in
  let base = Sta.nominal_delays (Flow.sta t) in
  let delays =
    Array.mapi
      (fun i b ->
        b
        *. Slicing.corner_scale ~sampler:(Flow.sampler t) ~systematic
             ~corner_kappa:(Flow.config t).Flow.corner_kappa ~vdd i)
      base
  in
  let r = Sta.analyze (Flow.sta t) ~delays in
  List.iter
    (fun s ->
      match Sta.stage_delay r s with
      | Some d ->
        Alcotest.(check bool)
          (Printf.sprintf "%s compensated at corner A" (Stage.name s))
          true
          (d <= Flow.clock t +. 1e-9)
      | None -> ())
    [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let test_slicing_infeasible () =
  let t, _ = Lazy.force env in
  (* An impossible clock cannot be compensated even chip-wide. *)
  try
    ignore
      (Slicing.generate ~direction:Island.Vertical ~sta:(Flow.sta t)
         ~placement:(Flow.placement t) ~sampler:(Flow.sampler t)
         ~clock:(Flow.clock t /. 2.0)
         ~targets:[ { Slicing.scenario_index = 1; position = Position.point_a } ]
         ());
    Alcotest.fail "expected Infeasible"
  with Slicing.Infeasible _ -> ()

(* --- level shifters --- *)

let test_ls_netlist_valid () =
  let _, v = Lazy.force env in
  match Netlist.check v.Flow.shifted.Level_shifter.netlist with
  | Ok () -> ()
  | Error es -> Alcotest.failf "shifted netlist invalid: %s" (List.hd es)

let test_ls_covers_all_crossings () =
  let _, v = Lazy.force env in
  let shifted = v.Flow.shifted in
  (* After insertion there must be no remaining low->high crossing whose
     driver is not itself a level shifter. *)
  let nl = shifted.Level_shifter.netlist in
  let domains = shifted.Level_shifter.domains in
  let violations = ref 0 in
  Array.iter
    (fun (net : Netlist.net) ->
      match net.Netlist.driver with
      | None -> ()
      | Some d ->
        let is_ls =
          nl.Netlist.cells.(d).Netlist.cell.Pvtol_stdcell.Cell.kind
          = Pvtol_stdcell.Kind.Ls
        in
        if not is_ls then
          Array.iter
            (fun (cid, _) ->
              (* A sink that is itself a level shifter is the inserted
                 boundary element, not a violation. *)
              let sink_is_ls =
                nl.Netlist.cells.(cid).Netlist.cell.Pvtol_stdcell.Cell.kind
                = Pvtol_stdcell.Kind.Ls
              in
              if (not sink_is_ls) && domains.(cid) < domains.(d) then
                incr violations)
            net.Netlist.sinks)
    nl.Netlist.nets;
  Alcotest.(check int) "no unshifted crossings remain" 0 !violations

let test_ls_count_consistent () =
  let t, v = Lazy.force env in
  let shifted = v.Flow.shifted in
  let expected =
    Level_shifter.count_crossings v.Flow.slicing.Slicing.partition
      (Flow.placement t) (Flow.netlist t)
  in
  Alcotest.(check int) "count matches analysis" expected
    shifted.Level_shifter.count;
  Alcotest.(check int) "ids appended at the end"
    (Netlist.cell_count (Flow.netlist t))
    shifted.Level_shifter.first_ls;
  Alcotest.(check int) "netlist grew by count"
    (Netlist.cell_count (Flow.netlist t) + shifted.Level_shifter.count)
    (Netlist.cell_count shifted.Level_shifter.netlist)

let test_ls_area_positive () =
  let _, v = Lazy.force env in
  Alcotest.(check bool) "ls area fraction sane" true
    (v.Flow.shifted.Level_shifter.ls_area_frac > 0.0
    && v.Flow.shifted.Level_shifter.ls_area_frac < 1.0)

(* --- flow & power --- *)

let test_flow_scenarios_ladder () =
  let t, _ = Lazy.force env in
  let indexes =
    List.map (fun (sc : Pvtol_ssta.Scenario.t) -> sc.Pvtol_ssta.Scenario.index)
      (Flow.scenarios t)
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ladder relaxes along diagonal" true (non_increasing indexes);
  Alcotest.(check bool) "something violates at A" true (List.hd indexes > 0)

let test_power_orderings () =
  let t, _ = Lazy.force env in
  let total cfg pos = Power.total_mw (Flow.power_at t ~position:pos cfg).Power.total in
  let low = total Flow.Baseline_low Position.point_a in
  let high = total Flow.Chip_wide_high Position.point_a in
  Alcotest.(check bool) "chip-wide high > baseline" true (high > low);
  (* More islands raised costs more power at the same position. *)
  let p1 = total (Flow.Islands (Island.Vertical, 1)) Position.point_a in
  let p2 = total (Flow.Islands (Island.Vertical, 2)) Position.point_a in
  let p3 = total (Flow.Islands (Island.Vertical, 3)) Position.point_a in
  Alcotest.(check bool) "monotone in raised islands" true (p1 <= p2 && p2 <= p3)

let test_vdd_assignment_via_shifted () =
  let _, v = Lazy.force env in
  let shifted = v.Flow.shifted in
  let n = Netlist.cell_count shifted.Level_shifter.netlist in
  (* With everything raised, every cell inside VI3 runs high. *)
  let domains = shifted.Level_shifter.domains in
  for cid = 0 to n - 1 do
    let vdd = Level_shifter.vdd_assignment shifted ~raised:3 cid in
    if domains.(cid) <= 3 then
      Alcotest.(check bool) "inside raised" true (vdd > 1.1)
    else Alcotest.(check bool) "outside low" true (vdd < 1.1)
  done

let test_degradation_bounded () =
  let _, v = Lazy.force env in
  Alcotest.(check bool) "post-LS degradation within 20%" true
    (v.Flow.degradation < 0.20)

(* --- stage graph: every stage at most once per handle --- *)

let test_stage_fires_once () =
  let t, _ = Lazy.force env in
  (* The shared env has already rendered nothing; force a spread of
     exhibits that used to recompute work, then check the trace. *)
  ignore (Experiments.table1_breakdown t);
  ignore (Experiments.scenarios_summary t);
  ignore (Experiments.fig5_total_power t);
  ignore (Experiments.fig6_leakage t);
  let dups = Trace.duplicates (Flow.trace t) in
  Alcotest.(check (list string)) "no stage computed twice" [] dups;
  (* Core stages are all present (they were needed by the exhibits). *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " appears in trace")
        true
        (Trace.find (Flow.trace t) name <> None))
    [ "design"; "placement"; "sizing"; "sta"; "timing"; "scenarios" ]

let test_no_recompute_downstream () =
  let t, _ = Lazy.force env in
  (* After a full pass over the usual exhibits, requesting a downstream
     artifact again must recompute zero stages. *)
  ignore (Experiments.fig5_total_power t);
  ignore (Flow.scenarios t);
  let before = List.length (Trace.spans (Flow.trace t)) in
  ignore (Experiments.fig6_leakage t);
  ignore (Experiments.energy_note t);
  ignore (Flow.mc t Position.point_a);
  ignore (Flow.nominal t);
  let after = List.length (Trace.spans (Flow.trace t)) in
  Alcotest.(check int) "zero stages recomputed" before after

(* --- experiments rendering --- *)

let test_experiments_render () =
  let t, _ = Lazy.force env in
  (* The context IS the flow handle: everything memoized inside it. *)
  let ctx = t in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length text > 80))
    [
      ("fig2", Experiments.fig2_lgate_map ());
      ("table1", Experiments.table1_breakdown t);
      ("fig3", Experiments.fig3_distributions t);
      ("scenarios", Experiments.scenarios_summary t);
      ("razor", Experiments.razor_sites t);
      ("fig4", Experiments.fig4_islands ctx);
      ("table2", Experiments.table2_level_shifters ctx);
      ("fig5", Experiments.fig5_total_power ctx);
      ("fig6", Experiments.fig6_leakage ctx);
      ("energy", Experiments.energy_note ctx);
    ]

let suite =
  ( "core",
    [
      Alcotest.test_case "slice region sides" `Quick test_slice_region_sides;
      Alcotest.test_case "islands nested" `Quick test_islands_nested;
      Alcotest.test_case "domains consistent" `Quick test_domains_consistent;
      Alcotest.test_case "vdd assignment monotone" `Quick test_vdd_assignment_monotone;
      Alcotest.test_case "slicing compensates corner" `Quick
        test_slicing_compensates_at_corner;
      Alcotest.test_case "slicing infeasible" `Quick test_slicing_infeasible;
      Alcotest.test_case "ls netlist valid" `Quick test_ls_netlist_valid;
      Alcotest.test_case "ls covers crossings" `Quick test_ls_covers_all_crossings;
      Alcotest.test_case "ls count consistent" `Quick test_ls_count_consistent;
      Alcotest.test_case "ls area positive" `Quick test_ls_area_positive;
      Alcotest.test_case "flow scenario ladder" `Quick test_flow_scenarios_ladder;
      Alcotest.test_case "power orderings" `Quick test_power_orderings;
      Alcotest.test_case "vdd via shifted design" `Quick test_vdd_assignment_via_shifted;
      Alcotest.test_case "degradation bounded" `Quick test_degradation_bounded;
      Alcotest.test_case "stage fires at most once" `Quick test_stage_fires_once;
      Alcotest.test_case "no downstream recompute" `Quick test_no_recompute_downstream;
      Alcotest.test_case "experiments render" `Quick test_experiments_render;
    ] )
