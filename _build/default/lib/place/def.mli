(** DEF-subset writer/parser for placement interchange.

    The paper's flow obtains coarse placement "through the def file"
    emitted by Physical Compiler; this module provides the same
    interchange point: a placement can be dumped to DEF, inspected or
    transformed externally, and read back against the same netlist.
    Coordinates are written in DEF distance units (1000 per micron). *)

val to_string : Placement.t -> string
val write_file : string -> Placement.t -> unit

exception Parse_error of string

val of_string : Pvtol_netlist.Netlist.t -> string -> Placement.t
(** Rebuild a placement from DEF text; every component must name a cell
    of the given netlist, and the floorplan is reconstructed from the
    DIEAREA/ROW statements. *)

val read_file : Pvtol_netlist.Netlist.t -> string -> Placement.t
