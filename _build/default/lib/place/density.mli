(** Cell-density map over the core area.

    Used by the global placer's spreading step and by the
    voltage-island generator, which (per the paper, §4.5) assesses
    "the most promising side of the processor core floorplan (upper,
    lower, left or right) to start selecting candidate cells for
    high-Vdd" based on cell-density considerations. *)

type t = {
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  occupied : float array;  (** row-major [ny * nx], um^2 of cells *)
}

val compute : ?nx:int -> ?ny:int -> Placement.t -> t
(** Default grid 32 x 32. *)

val bin_area : t -> float
val density : t -> int -> int -> float
(** Occupied fraction of bin (ix, iy). *)

type side = Left | Right | Bottom | Top

val densest_side : t -> side
(** Side whose near-edge third of the core holds the most cell area —
    the starting side for greedy voltage-island slicing. *)

val side_name : side -> string
