(** Process / technology parameters and the analytic device models of
    the paper's §4.1:

    - Orshansky alpha-power delay law (Eq. 3):
      [D ~ Lgate^1.5 * Vdd / (Vdd - Vth)^alpha]
    - DIBL threshold-voltage model (Eq. 4):
      [Vth_eff = Vth0 - Vdd * exp (-alpha_dibl * Leff)]

    All delay and leakage figures of the cell library are expressed as
    *scale factors* relative to the nominal corner (Lgate = l_nominal,
    Vdd = vdd_low), so a single characterisation serves every
    (Lgate, Vdd) operating point. *)

type t = {
  l_nominal_nm : float;  (** Nominal effective gate length, 65 nm. *)
  vdd_low : float;       (** Nominal supply, 1.0 V. *)
  vdd_high : float;      (** Boosted supply, 1.2 V. *)
  vth0 : float;
      (** Long-channel threshold voltage.  The paper's Eq. 4 quotes
          0.22 V; the default library uses 0.32 V, typical of the
          *low-power* (high-Vth) 65nm flavour the paper's STM library
          is ("our technology libraries are optimized for low power"),
          which is also what makes the 1.0 -> 1.2 V boost worth ~19%
          delay rather than ~12%. *)
  alpha : float;         (** Velocity-saturation exponent, 1.3. *)
  alpha_dibl : float;    (** DIBL coefficient, 1/nm (see note below). *)
  subthreshold_swing : float;
      (** Effective exponential slope n*vT (V) for the leakage model. *)
}

val default : t
(** 65nm low-power corner used throughout the reproduction.  The paper
    quotes alpha_dibl = 0.15/nm, which makes the DIBL term numerically
    negligible (~60 uV) at Leff = 65 nm; [default] uses 0.08/nm so that
    Lgate visibly couples into Vth and leakage, matching the paper's
    stated intent ("an increase of Lgate causes an increase of Vth,
    with further delay and leakage power implications"). *)

val paper_literal : t
(** Same corner with alpha_dibl = 0.15/nm exactly as printed. *)

val vth_eff : t -> vdd:float -> lgate_nm:float -> float
(** Eq. 4. *)

val delay_scale : t -> vdd:float -> lgate_nm:float -> float
(** Eq. 3, normalized to 1.0 at (vdd_low, l_nominal_nm).  Values < 1
    mean the cell got faster (e.g. under vdd_high). *)

val leakage_scale : t -> vdd:float -> lgate_nm:float -> float
(** Subthreshold-leakage *power* scale relative to the nominal corner:
    [I0 * exp((Vth_nom - Vth)/swing) * (Vdd/vdd_low)^2].  The quadratic
    Vdd term folds the current increase and the P = I*Vdd product. *)

val speedup_high_vdd : t -> float
(** Convenience: delay ratio low-Vdd/high-Vdd at nominal Lgate — the
    per-cell performance boost bought by raising an island to 1.2V. *)

(** {2 Adaptive body bias (the alternative of the paper's §1)}

    Forward body bias lowers the effective threshold by
    [body_factor * vbb], speeding the gate up at an exponential leakage
    cost — the comparison (after the paper's reference [13]) that
    motivates choosing supply adaptation: "AVS has a much milder impact
    on leakage and is a more power-efficient and thermally compatible
    solution than ABB". *)

val body_factor : float
(** Vth shift per volt of forward body bias (~0.12 V/V at 65nm). *)

val abb_delay_scale : t -> vbb:float -> lgate_nm:float -> float
(** Delay multiplier at nominal supply with forward body bias [vbb]
    (positive = forward). *)

val abb_leakage_scale : t -> vbb:float -> lgate_nm:float -> float
(** Leakage-power multiplier for the same bias. *)

val abb_for_speedup : t -> speedup:float -> float
(** Forward bias needed to match a target delay-ratio speed-up at the
    nominal corner (bisection; raises [Invalid_argument] if even 1V of
    forward bias is not enough). *)
