test/test_timing.ml: Alcotest Array Float Lazy List Netlist Printf Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_timing Pvtol_vex QCheck QCheck_alcotest Stage
