(** Logic-based voltage assignment — the baseline the paper argues
    against.

    §3: "logic-based voltage assignment heavily constrains the
    placement, and hence might jeopardize design predictability by
    giving rise to unexpected large wirelengths and delay penalties";
    §4.5: grouping "cells that are logically inter-related (e.g., they
    belong to the same functional unit) but are placed far apart in the
    input placement [causes] large wirelength and delay penalties".

    This module implements that alternative — nested high-Vdd sets
    selected by *functional unit* in decreasing timing criticality,
    exactly like the sub-unit selection of the paper's reference [12] —
    so the ablation harness can quantify the comparison on the same
    design: level-shifter demand and the spatial fragmentation that
    would have to be paid for in power-grid routing. *)

open Pvtol_netlist

type t = {
  domains : int array;
      (** per-cell domain, 1-based; [n_scenarios + 1] = never raised.
          Same semantics as placement-derived island domains. *)
  units_per_scenario : string list array;
      (** functional units newly raised at each scenario index *)
  checks : int;
}

exception Infeasible of string

val generate :
  ?corner_kappa:float ->
  sta:Pvtol_timing.Sta.t ->
  placement:Pvtol_place.Placement.t ->
  sampler:Pvtol_variation.Sampler.t ->
  clock:float ->
  targets:Slicing.target list ->
  unit ->
  t
(** Greedy unit selection: units are ranked by the worst corner arrival
    time of their cells' output nets, and added to the raised set until
    each scenario's corner STA meets the clock (same acceptance
    criterion as the placement-aware generator). *)

val count_crossings : Netlist.t -> domains:int array -> int
(** Level shifters the assignment would require: one per (net, group of
    sinks raised strictly earlier than the driver), counting
    pad-driven nets as never-raised, as in {!Level_shifter}. *)

val fragmentation :
  Pvtol_place.Placement.t -> domains:int array -> raised:int -> int
(** Number of 8-connected components of the high-Vdd region on a
    density grid when [raised] domains are up — the count of physically
    disjoint power-domain patches a supply network would have to reach
    (1 for the paper's slab islands). *)
