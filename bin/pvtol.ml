(* pvtol — command-line driver for the process-variation-tolerant
   voltage-island design flow.  One subcommand per paper exhibit, plus
   the full flow, design-file dumps and kernel information. *)

module Experiments = Pvtol_core.Experiments
module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Wafer = Pvtol_core.Wafer
module Compare = Pvtol_core.Compare
module Compensation = Pvtol_core.Compensation
module Trace = Pvtol_util.Trace
module Metrics = Pvtol_util.Metrics
module Json = Pvtol_util.Json
module Runinfo = Pvtol_util.Runinfo
module Bench_compare = Pvtol_util.Bench_compare
module Vex_core = Pvtol_vex.Vex_core
module Netlist = Pvtol_netlist.Netlist
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common options                                                       *)

let quick =
  let doc = "Use the scaled-down design and sample counts (fast)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let samples =
  let doc = "Monte-Carlo sample count (default from the configuration)." in
  Arg.(value & opt (some int) None & info [ "samples" ] ~doc)

let seed =
  let doc = "Random seed for the Monte-Carlo and stimulus streams." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc)

let trace_flag =
  let doc =
    "Report the stage graph after the run: every pipeline stage that \
     was computed, its wall-clock time, heap allocation and \
     dependencies (to stderr), and write the same spans as \
     $(b,trace.json)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_out =
  let doc = "File the JSON trace is written to when $(b,--trace) is set." in
  Arg.(value & opt string "trace.json" & info [ "trace-out" ] ~doc ~docv:"FILE")

let metrics_out =
  let doc =
    "Enable the metrics registry and write a snapshot to $(docv) after \
     the run (Prometheus text if the name ends in .prom or .txt, JSON \
     otherwise).  Also prints a one-line summary of the non-zero \
     counters to stderr."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let trace_chrome =
  let doc =
    "Write the stage trace as Chrome trace-event JSON to $(docv) (load \
     in chrome://tracing or Perfetto; one track per domain)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-chrome" ] ~doc ~docv:"FILE")

let run_ledger =
  let doc =
    "Write a run ledger to $(docv) after the run: version and git \
     revision, argv and configuration, wall/CPU time, GC totals, \
     per-stage time/allocation attribution, pool queue-wait totals and \
     an MD5 digest of every emitted report.  Render it with \
     $(b,pvtol report FILE).  Implies metrics collection."
  in
  Arg.(
    value & opt (some string) None & info [ "run-ledger" ] ~doc ~docv:"FILE")

let config_of ~quick ~samples ~seed =
  let base = if quick then Flow.quick_config else Flow.default_config in
  let base =
    match samples with Some s -> { base with Flow.mc_samples = s } | None -> base
  in
  match seed with Some s -> { base with Flow.mc_seed = s } | None -> base

(* Run [f] on a fresh flow handle; with [--trace], print the span
   report and write the JSON artifact afterwards (also when a stage
   fails, so the trace shows how far the run got).  [--metrics-out],
   [--trace-chrome] and [--run-ledger] write their artifacts on the
   same always-also-on-failure basis.  [f] receives the run-ledger
   collector so subcommands can digest the reports they emit. *)
let with_flow ~quick ~samples ~seed ~trace ~trace_out ~metrics_out
    ~trace_chrome ~run_ledger f =
  if metrics_out <> None || run_ledger <> None then Metrics.set_enabled true;
  let ledger = Runinfo.create () in
  let config = config_of ~quick ~samples ~seed in
  Runinfo.add_config ledger "quick" (Json.Bool quick);
  Runinfo.add_config ledger "mc_samples" (Json.Int config.Flow.mc_samples);
  Runinfo.add_config ledger "mc_seed" (Json.Int config.Flow.mc_seed);
  List.iter
    (fun var ->
      Runinfo.add_config ledger var
        (match Sys.getenv_opt var with
        | Some v -> Json.Str v
        | None -> Json.Null))
    [ "PVTOL_DOMAINS"; "PVTOL_MC_ENGINE" ];
  let t = Flow.prepare ~config () in
  let emit () =
    if trace then begin
      Format.eprintf "%a@?" Trace.pp (Flow.trace t);
      Trace.write_json (Flow.trace t) trace_out;
      Format.eprintf "trace written to %s@." trace_out
    end;
    (match trace_chrome with
    | None -> ()
    | Some file ->
      Trace.write_chrome_json (Flow.trace t) file;
      Format.eprintf "chrome trace written to %s@." file);
    (match metrics_out with
    | None -> ()
    | Some file ->
      Metrics.write ~file;
      Format.eprintf "%s@.metrics written to %s@."
        (Metrics.summary_line (Metrics.snapshot ()))
        file);
    match run_ledger with
    | None -> ()
    | Some file ->
      Runinfo.write ~trace:(Flow.trace t) ~metrics:(Metrics.snapshot ()) ledger
        ~file;
      Format.eprintf "run ledger written to %s@." file
  in
  match f ~ledger t with
  | () -> emit ()
  | exception exn ->
    emit ();
    raise exn

(* Print a rendered report and record its digest in the run ledger, so
   two runs can be compared result-first. *)
let emit_report ledger ~name content =
  Runinfo.add_artifact ledger ~name:("stdout:" ^ name) content;
  print_string content

(* Write a JSON report string to [file] and digest it. *)
let write_report ledger ~file content =
  let oc = open_out file in
  output_string oc content;
  close_out oc;
  Runinfo.add_artifact ledger ~name:file content

(* ------------------------------------------------------------------ *)
(* Exhibit subcommands                                                  *)

let exhibit_cmd name doc render =
  let run quick samples seed trace trace_out metrics_out trace_chrome
      run_ledger =
    with_flow ~quick ~samples ~seed ~trace ~trace_out ~metrics_out
      ~trace_chrome ~run_ledger (fun ~ledger t ->
        emit_report ledger ~name (render t))
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ quick $ samples $ seed $ trace_flag $ trace_out
      $ metrics_out $ trace_chrome $ run_ledger)

let fig2_cmd =
  let run () = print_string (Experiments.fig2_lgate_map ()) in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Systematic Lgate map over the chip (Fig. 2).")
    Term.(const run $ const ())

let cmds_exhibits =
  [
    fig2_cmd;
    exhibit_cmd "table1" "Area/power breakdown of the VEX design (Table 1)."
      Experiments.table1_breakdown;
    exhibit_cmd "fig3"
      "Per-stage critical-path slack distributions at point A (Fig. 3)."
      Experiments.fig3_distributions;
    exhibit_cmd "scenarios"
      "Timing-violation scenarios along the chip diagonal (section 4.4)."
      Experiments.scenarios_summary;
    exhibit_cmd "razor" "Razor sensing-site selection (section 4.4)."
      Experiments.razor_sites;
    exhibit_cmd "fig4" "Voltage-island generation, both slicings (Fig. 4)."
      Experiments.fig4_islands;
    exhibit_cmd "table2" "Level-shifter overhead (Table 2)."
      Experiments.table2_level_shifters;
    exhibit_cmd "fig5" "Total power per violation scenario (Fig. 5)."
      Experiments.fig5_total_power;
    exhibit_cmd "fig6" "Leakage power per violation scenario (Fig. 6)."
      Experiments.fig6_leakage;
    exhibit_cmd "energy" "Energy ratios including the VI slowdown (section 5)."
      Experiments.energy_note;
    exhibit_cmd "validate"
      "Monte-Carlo check that every scenario is compensated."
      Experiments.compensation_check;
    exhibit_cmd "ablation"
      "Cell-grouping strategy ablation (placement-aware vs logic-based)."
      Experiments.grouping_ablation;
    exhibit_cmd "clocktree"
      "Clock-tree synthesis and the ideal-clock assumption check."
      Experiments.clock_tree_note;
    exhibit_cmd "crosscheck"
      "Analytic (Clark) SSTA vs Monte-Carlo cross-validation."
      Experiments.ssta_crosscheck;
    exhibit_cmd "alternatives"
      "Compensation alternatives of section 1 (guard-band, retiming, AVS, ABB, islands)."
      Experiments.alternatives_comparison;
    exhibit_cmd "routing"
      "Global routing: estimate vs routed wirelength and congestion."
      Experiments.routing_note;
    exhibit_cmd "powergrid"
      "IR-drop feasibility of each grouping strategy's supply network."
      Experiments.power_integrity;
    exhibit_cmd "workloads"
      "Workload sensitivity of the power comparison (5 verified benchmarks)."
      Experiments.workload_sensitivity;
    exhibit_cmd "postsilicon"
      "Detect-and-compensate study over a sampled chip population."
      Experiments.postsilicon_study;
    exhibit_cmd "all" "Every table and figure, in paper order."
      Experiments.all;
  ]

(* ------------------------------------------------------------------ *)
(* Wafer sweep                                                          *)

let grid_conv =
  let parse s =
    match String.index_opt s 'x' with
    | Some i ->
      (try
         let nx = int_of_string (String.sub s 0 i) in
         let ny = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
         if nx > 0 && ny > 0 then Ok (nx, ny)
         else Error (`Msg "grid dimensions must be positive")
       with _ -> Error (`Msg (Printf.sprintf "bad grid %S, expected NxM" s)))
    | None -> Error (`Msg (Printf.sprintf "bad grid %S, expected NxM" s))
  in
  let print fmt (nx, ny) = Format.fprintf fmt "%dx%d" nx ny in
  Arg.conv (parse, print)

let wafer_cmd =
  let grid =
    let doc = "Die-position grid over the chip, columns x rows." in
    Arg.(value & opt grid_conv (8, 8) & info [ "grid" ] ~doc ~docv:"NxM")
  in
  let dies =
    let doc = "Dies simulated per grid cell (per exposure field)." in
    Arg.(value & opt int 12 & info [ "dies" ] ~doc ~docv:"N")
  in
  let fields =
    let doc =
      "Exposure-field replicas of the grid (same systematic map, fresh \
       random draws)."
    in
    Arg.(value & opt int 1 & info [ "fields" ] ~doc ~docv:"N")
  in
  let wafer_seed =
    let doc = "Seed of the per-die random Lgate draws." in
    Arg.(value & opt int 7 & info [ "wafer-seed" ] ~doc ~docv:"SEED")
  in
  let direction =
    let doc = "Island slicing deployed on every die: $(docv)." in
    Arg.(
      value
      & opt
          (enum
             [ ("vertical", Island.Vertical); ("horizontal", Island.Horizontal);
               ("quadrant", Island.Quadrant) ])
          Island.Vertical
      & info [ "direction" ] ~doc ~docv:"vertical|horizontal|quadrant")
  in
  let json_file =
    let doc = "Also write the whole sweep (wafer + per-cell) as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let progress =
    let doc =
      "Stream per-cell progress and an ETA to stderr while the sweep \
       runs (no effect when the sweep is already memoized)."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let sampler =
    let doc =
      "Switch from the fixed-budget census sweep to the adaptive \
       estimator with this sampling method: $(b,mc) (i.i.d. positions), \
       $(b,lhs) (Latin-hypercube strata) or $(b,is) (importance \
       sampling toward the rare-scenario boundary).  $(b,--dies) then \
       sets the dies per stratum per round and $(b,--grid)/$(b,--fields) \
       are ignored."
    in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("mc", Pvtol_ssta.Smart_sampling.Mc);
                  ("is", Pvtol_ssta.Smart_sampling.Is);
                  ("lhs", Pvtol_ssta.Smart_sampling.Lhs) ]))
          None
      & info [ "sampler" ] ~doc ~docv:"mc|is|lhs")
  in
  let ci_target =
    let doc =
      "Stop sampling when the watched metric's CI half-width reaches \
       $(docv) (absolute, e.g. 0.001 = +-0.1%)."
    in
    Arg.(value & opt float 0.001 & info [ "ci-target" ] ~doc ~docv:"EPS")
  in
  let ci_metric =
    let doc =
      "Metric the stopping rule watches: $(b,yield) (uncompensated \
       timing yield) or $(b,rare) (the rare-scenario probability)."
    in
    Arg.(
      value
      & opt (enum [ ("yield", Wafer.Ci_yield); ("rare", Wafer.Ci_rare) ])
          Wafer.Ci_yield
      & info [ "ci-metric" ] ~doc ~docv:"yield|rare")
  in
  let rare_scenario =
    let doc =
      "The rare scenario: a die with at least $(docv) islands violating \
       before compensation."
    in
    Arg.(value & opt int 2 & info [ "rare-scenario" ] ~doc ~docv:"M")
  in
  let strata =
    let doc = "Position strata per axis for the $(b,is)/$(b,lhs) samplers." in
    Arg.(value & opt int 4 & info [ "strata" ] ~doc ~docv:"S")
  in
  let rounds =
    let doc = "Maximum sampling rounds before giving up on the CI target." in
    Arg.(value & opt int 64 & info [ "rounds" ] ~doc ~docv:"N")
  in
  let run quick samples seed trace trace_out metrics_out trace_chrome
      run_ledger (nx, ny) dies_per_cell fields wafer_seed direction json_file
      progress sampler ci_target ci_metric rare_scenario strata rounds =
    with_flow ~quick ~samples ~seed ~trace ~trace_out ~metrics_out
      ~trace_chrome ~run_ledger (fun ~ledger t ->
        Runinfo.add_config ledger "sampler"
          (match sampler with
          | Some Pvtol_ssta.Smart_sampling.Mc -> Json.Str "mc"
          | Some Pvtol_ssta.Smart_sampling.Is -> Json.Str "is"
          | Some Pvtol_ssta.Smart_sampling.Lhs -> Json.Str "lhs"
          | None -> Json.Null);
        match sampler with
        | Some s_method ->
          let scfg =
            {
              Wafer.s_method;
              s_strata = strata;
              s_dies_per_round = dies_per_cell;
              s_max_rounds = rounds;
              s_ci_target = ci_target;
              s_ci_metric = ci_metric;
              s_rare = rare_scenario;
              s_confidence = 0.95;
              s_seed = wafer_seed;
              s_direction = direction;
            }
          in
          let on_round =
            if not progress then None
            else
              Some
                (fun ~round ~max_rounds ~ci_halfwidth ->
                  Printf.eprintf "\rsampling: round %d/%d, CI half-width %.5f%s"
                    round max_rounds ci_halfwidth
                    (if
                       round = max_rounds
                       || ci_halfwidth <= scfg.Wafer.s_ci_target
                     then "\n"
                     else "");
                  flush stderr)
          in
          let r = Wafer.estimate ?on_round t scfg in
          emit_report ledger ~name:"sampling"
            (Format.asprintf "%a@." Wafer.pp_sampling r);
          (match json_file with
          | None -> ()
          | Some file ->
            write_report ledger ~file (Wafer.sampling_to_json r);
            Printf.printf "\nsampling report written to %s\n" file)
        | None ->
        let cfg =
          { Wafer.nx; ny; dies_per_cell; fields; seed = wafer_seed; direction }
        in
        (* Cells complete on pool workers; one mutex keeps the \r
           status line whole.  ETA extrapolates the mean cell time. *)
        let on_cell =
          if not progress then None
          else begin
            let mu = Mutex.create () in
            let t0 = Unix.gettimeofday () in
            Some
              (fun ~completed ~total ->
                Mutex.lock mu;
                let dt = Unix.gettimeofday () -. t0 in
                let eta =
                  dt /. float_of_int completed
                  *. float_of_int (total - completed)
                in
                Printf.eprintf "\rwafer: %d/%d cells (%.0f%%), %.1fs, ETA %.1fs%s"
                  completed total
                  (100.0 *. float_of_int completed /. float_of_int total)
                  dt eta
                  (if completed = total then "\n" else "");
                flush stderr;
                Mutex.unlock mu)
          end
        in
        let s = Wafer.sweep ?on_cell t cfg in
        emit_report ledger ~name:"wafer"
          (Format.asprintf "%a@.%s\n%s\n%s" Wafer.pp s
             (Wafer.render_map s Wafer.Yield_uncompensated)
             (Wafer.render_map s Wafer.Yield_compensated)
             (Wafer.render_map s Wafer.Mean_raised));
        match json_file with
        | None -> ()
        | Some file ->
          write_report ledger ~file (Wafer.to_json s);
          Printf.printf "\nwafer sweep written to %s\n" file)
  in
  Cmd.v
    (Cmd.info "wafer"
       ~doc:
         "Wafer-scale yield sweep: run the post-silicon \
          detect-and-compensate loop for a population of dies at every \
          point of a 2D grid over the exposure field, and report \
          per-cell and wafer-level yield, compensation and power with \
          streaming statistics.")
    Term.(
      const run $ quick $ samples $ seed $ trace_flag $ trace_out
      $ metrics_out $ trace_chrome $ run_ledger $ grid $ dies $ fields
      $ wafer_seed $ direction $ json_file $ progress $ sampler $ ci_target
      $ ci_metric $ rare_scenario $ strata $ rounds)

(* ------------------------------------------------------------------ *)
(* Strategy comparison                                                  *)

let strategies_conv =
  let parse s =
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
        match Compensation.choice_of_name (String.trim n) with
        | Some c when not (List.mem c acc) -> go (c :: acc) rest
        | Some _ -> Error (`Msg (Printf.sprintf "duplicate strategy %S" n))
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown strategy %S (expected vi, chipwide, skew or \
                   buffers)"
                  n)))
    in
    if s = "" then Error (`Msg "empty strategy list") else go [] names
  in
  let print fmt cs =
    Format.pp_print_string fmt (Compensation.choices_label cs)
  in
  Arg.conv (parse, print)

let compare_cmd =
  let strategies =
    let doc =
      "Comma-separated compensation strategies to evaluate: any of \
       $(b,vi) (the paper's voltage islands), $(b,chipwide) (full-chip \
       1.2V adaptation), $(b,skew) (post-silicon clock-skew tuning) and \
       $(b,buffers) (tunable delay-trim buffers)."
    in
    Arg.(
      value
      & opt strategies_conv Compensation.all_choices
      & info [ "strategies" ] ~doc ~docv:"LIST")
  in
  let grid =
    let doc = "Die-position grid over the chip, columns x rows." in
    Arg.(value & opt grid_conv (8, 8) & info [ "grid" ] ~doc ~docv:"NxM")
  in
  let dies =
    let doc = "Dies simulated per grid cell (per exposure field)." in
    Arg.(value & opt int 12 & info [ "dies" ] ~doc ~docv:"N")
  in
  let fields =
    let doc =
      "Exposure-field replicas of the grid (same systematic map, fresh \
       random draws)."
    in
    Arg.(value & opt int 1 & info [ "fields" ] ~doc ~docv:"N")
  in
  let compare_seed =
    let doc = "Seed of the per-die random Lgate draws." in
    Arg.(value & opt int 7 & info [ "compare-seed" ] ~doc ~docv:"SEED")
  in
  let direction =
    let doc = "Island slicing the vi strategy deploys: $(docv)." in
    Arg.(
      value
      & opt
          (enum
             [ ("vertical", Island.Vertical); ("horizontal", Island.Horizontal);
               ("quadrant", Island.Quadrant) ])
          Island.Vertical
      & info [ "direction" ] ~doc ~docv:"vertical|horizontal|quadrant")
  in
  let json_file =
    let doc = "Also write the comparison report as JSON." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let run quick samples seed trace trace_out metrics_out trace_chrome
      run_ledger strategies (nx, ny) dies_per_cell fields compare_seed
      direction json_file =
    with_flow ~quick ~samples ~seed ~trace ~trace_out ~metrics_out
      ~trace_chrome ~run_ledger (fun ~ledger t ->
        let cfg =
          {
            Compare.nx;
            ny;
            dies_per_cell;
            fields;
            seed = compare_seed;
            direction;
            choices = strategies;
          }
        in
        let r = Compare.compare t cfg in
        emit_report ledger ~name:"compare" (Compare.render r);
        match json_file with
        | None -> ()
        | Some file ->
          write_report ledger ~file (Compare.to_json r);
          Printf.printf "\ncomparison written to %s\n" file)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compensation-strategy shoot-out: evaluate voltage islands, \
          chip-wide adaptation, clock-skew tuning and tunable buffers \
          on the same wafer die population (shared per-die detect pass \
          and Lgate realisations) and report yield, mean power and area \
          overhead per strategy.")
    Term.(
      const run $ quick $ samples $ seed $ trace_flag $ trace_out
      $ metrics_out $ trace_chrome $ run_ledger $ strategies $ grid $ dies
      $ fields $ compare_seed $ direction $ json_file)

(* ------------------------------------------------------------------ *)
(* Design-file dumps                                                    *)

let outdir =
  let doc = "Directory to write design files into." in
  Arg.(value & opt string "." & info [ "o"; "outdir" ] ~doc)

let dump_cmd =
  let run quick outdir trace trace_out metrics_out trace_chrome run_ledger =
    with_flow ~quick ~samples:None ~seed:None ~trace ~trace_out ~metrics_out
      ~trace_chrome ~run_ledger (fun ~ledger:_ t ->
        let nl = Flow.netlist t in
        let path name = Filename.concat outdir name in
        Pvtol_stdcell.Liberty.write_file (path "pvtol65lp.lib") nl.Netlist.lib;
        Pvtol_place.Def.write_file (path "vex.def") (Flow.placement t);
        let delays = Pvtol_timing.Sta.nominal_delays (Flow.sta t) in
        Pvtol_timing.Sdf.write_file (path "vex.sdf") nl ~delays;
        Pvtol_netlist.Verilog.write_file (path "vex.v") nl;
        Pvtol_timing.Spef.write_file (path "vex.spef") nl
          (Pvtol_timing.Spef.extract (Flow.placement t));
        Printf.printf
          "wrote %s, %s, %s, %s and %s\n(design: %d cells, clock %.3f ns)\n"
          (path "pvtol65lp.lib") (path "vex.def") (path "vex.sdf") (path "vex.v")
          (path "vex.spef")
          (Netlist.cell_count nl) (Flow.clock t))
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Run the front-end flow and write the Liberty library, DEF \
          placement, SDF delays, structural Verilog and SPEF parasitics \
          of the prepared design.")
    Term.(
      const run $ quick $ outdir $ trace_flag $ trace_out $ metrics_out
      $ trace_chrome $ run_ledger)

let summary_run quick trace trace_out metrics_out trace_chrome run_ledger =
  with_flow ~quick ~samples:None ~seed:None ~trace ~trace_out ~metrics_out
    ~trace_chrome ~run_ledger (fun ~ledger t ->
      emit_report ledger ~name:"summary"
        (Format.asprintf "%a%s%a"
           Netlist.pp_summary (Flow.netlist t)
           (Printf.sprintf "clock: %.3f ns (%.1f MHz)\n" (Flow.clock t)
              (1000.0 /. Flow.clock t))
           (Format.pp_print_list ~pp_sep:(fun _ () -> ())
              Pvtol_ssta.Scenario.pp)
           (Flow.scenarios t)))

let summary_cmd =
  Cmd.v
    (Cmd.info "summary" ~doc:"Prepared-design summary and scenario ladder.")
    Term.(
      const summary_run $ quick $ trace_flag $ trace_out $ metrics_out
      $ trace_chrome $ run_ledger)

(* ------------------------------------------------------------------ *)
(* Run-ledger report and the perf-regression observatory               *)

let report_cmd =
  let file =
    let doc = "Run-ledger JSON file written by $(b,--run-ledger)." in
    Arg.(required & pos 0 (some file) None & info [] ~doc ~docv:"LEDGER")
  in
  let run file =
    match Json.read_file file with
    | Error e ->
      Printf.eprintf "pvtol report: %s\n" e;
      exit 1
    | Ok j -> (
      match Runinfo.render j with
      | Ok md -> print_string md
      | Error e ->
        Printf.eprintf "pvtol report: %s: %s\n" file e;
        exit 1)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a run ledger (written by $(b,--run-ledger)) as a \
          human-readable markdown report: run header, configuration, \
          per-stage attribution, pool totals, metric highlights and \
          artifact digests.")
    Term.(const run $ file)

let bench_compare_cmd =
  let base =
    let doc = "Baseline $(b,BENCH_ssta.json)." in
    Arg.(required & pos 0 (some file) None & info [] ~doc ~docv:"BASE")
  in
  let next =
    let doc = "Candidate $(b,BENCH_ssta.json) to compare against BASE." in
    Arg.(required & pos 1 (some file) None & info [] ~doc ~docv:"NEW")
  in
  let threshold =
    let doc =
      "Relative regression threshold in percent: a kernel only flags \
       when its delta exceeds both $(docv) and the combined CI \
       half-widths of the two runs."
    in
    Arg.(
      value
      & opt float Bench_compare.default_threshold_pct
      & info [ "threshold" ] ~doc ~docv:"PCT")
  in
  let out =
    let doc = "Also write the markdown comparison table to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let run base next threshold out =
    let read name file =
      match Json.read_file file with
      | Ok j -> j
      | Error e ->
        Printf.eprintf "pvtol bench compare: %s file: %s\n" name e;
        exit 2
    in
    let base_j = read "base" base and next_j = read "new" next in
    match
      Bench_compare.compare ~threshold_pct:threshold ~base:base_j ~next:next_j
        ()
    with
    | Error e ->
      Printf.eprintf "pvtol bench compare: %s\n" e;
      exit 2
    | Ok report ->
      let md = Bench_compare.render report in
      print_string md;
      (match out with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        output_string oc md;
        close_out oc);
      if Bench_compare.regressions report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two bench reports kernel by kernel: a kernel is \
          $(b,regressed)/$(b,improved) only when the delta clears both \
          the CI half-widths and $(b,--threshold); exits nonzero when \
          any kernel regressed significantly.")
    Term.(const run $ base $ next $ threshold $ out)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Perf-regression observatory over the statistical bench \
          reports ($(b,BENCH_ssta.json)).")
    [ bench_compare_cmd ]

let main =
  let doc =
    "process-variation tolerant pipeline design through placement-aware \
     multiple voltage islands (DATE 2008 reproduction)"
  in
  (* Bare [pvtol] (no subcommand) runs the summary, so
     [pvtol --quick --trace] reports the prepared design plus its stage
     trace. *)
  Cmd.group
    ~default:
      Term.(
        const summary_run $ quick $ trace_flag $ trace_out $ metrics_out
        $ trace_chrome $ run_ledger)
    (Cmd.info "pvtol" ~version:(Runinfo.version_string ()) ~doc)
    (cmds_exhibits
    @ [ wafer_cmd; compare_cmd; dump_cmd; summary_cmd; report_cmd; bench_cmd ])

let () = exit (Cmd.eval main)
