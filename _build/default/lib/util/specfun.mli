(** Special functions used by the statistical machinery.

    Accuracy targets are those of the classical Numerical-Recipes-style
    expansions (relative error well under 1e-7 over the ranges exercised
    by the SSTA engine), which is far tighter than the Monte Carlo noise
    floor of any experiment in the paper. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function. *)

val normal_cdf : mu:float -> sigma:float -> float -> float
(** CDF of the normal distribution with mean [mu] and std [sigma]. *)

val normal_quantile : mu:float -> sigma:float -> float -> float
(** Inverse CDF (Acklam's rational approximation, |rel err| < 1.15e-9). *)

val ln_gamma : float -> float
(** Natural log of the Gamma function (Lanczos). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x). *)

val gamma_q : float -> float -> float
(** [gamma_q a x] = 1 - P(a, x). *)

val chi2_cdf : dof:int -> float -> float
(** CDF of the chi-square distribution with [dof] degrees of freedom. *)

val chi2_critical : dof:int -> alpha:float -> float
(** [chi2_critical ~dof ~alpha] is the upper-[alpha] critical value:
    the x such that 1 - CDF(x) = alpha.  Used for goodness-of-fit
    acceptance at the paper's 95% confidence level. *)
