lib/ssta/analytic.ml: Array Float Hashtbl List Netlist Option Pvtol_netlist Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation Stage
