lib/place/router.mli: Netlist Placement Pvtol_netlist
