(** Minimal ASCII table renderer for the experiment harness output.
    Every table/figure of the paper is printed through this module so
    the bench output is uniform and diffable. *)

type align = Left | Right

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val add_sep : t -> unit
(** Insert a horizontal separator between row groups. *)

val render : ?aligns:align list -> t -> string
(** Render with one alignment per column (default: first column left,
    the rest right). *)

val print : ?aligns:align list -> t -> unit

val fcell : ?decimals:int -> float -> string
(** Float cell formatting helper, fixed [decimals] (default 3). *)

val pcell : ?decimals:int -> float -> string
(** Percent cell: [pcell 0.0835 = "8.35%"] with default 2 decimals. *)

val bar_chart :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** Horizontal ASCII bar chart (the harness's stand-in for the paper's
    bar figures): one labelled bar per entry, scaled to the maximum
    value.  [width] is the longest bar in characters (default 46). *)
