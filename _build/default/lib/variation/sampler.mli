(** Per-gate variability injection (paper §4.1 and §4.3).

    For each cell, effective gate length is the sum of the systematic
    field polynomial at the cell's placed location and an i.i.d.
    Gaussian random component (Eq. 2); the Orshansky alpha-power model
    plus the DIBL Vth dependence convert Lgate and the cell's supply
    voltage into a delay scale factor (Eqs. 3-4), which multiplies the
    nominal SDF delays — the exact mechanism of the paper's SDF
    rewriting flow. *)

type t = {
  field : Field.t;
  process : Pvtol_stdcell.Process.t;
  sigma_rnd_nm : float;  (** random component sigma, nm *)
}

val create :
  ?field:Field.t ->
  ?process:Pvtol_stdcell.Process.t ->
  ?three_sigma_rnd_frac:float ->
  unit ->
  t
(** Defaults: the calibrated 65nm field, default process, random
    3-sigma of 6.5% of nominal Lgate. *)

val systematic_lgates :
  t -> Pvtol_place.Placement.t -> Position.t -> float array
(** Per-cell systematic Lgate (nm) at a die position — the
    deterministic part, computed once per position. *)

val sample_lgates :
  t -> systematic:float array -> Pvtol_util.Srng.t -> float array -> unit
(** Fill the output array with systematic + fresh random draws. *)

val delay_scale :
  t -> lgate_nm:float -> vdd:float -> float
(** Delay multiplier relative to the nominal corner. *)

val scale_delays :
  t ->
  base:float array ->
  lgates:float array ->
  vdd:(int -> float) ->
  out:float array ->
  unit
(** [out.(i) <- base.(i) * delay_scale lgates.(i) (vdd i)] for all
    cells — the per-sample inner loop of the Monte Carlo engine. *)
