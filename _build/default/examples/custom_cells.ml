(* Custom library exploration: serialize the default 65nm-class library
   to its Liberty-style text form, re-parse it with modified process
   parameters, and compare the device-model consequences — how much
   performance a 1.0 -> 1.2V (or 1.3V) boost buys, and what the
   paper's Lgate variation does to delay and leakage.

     dune exec examples/custom_cells.exe *)

module Cell = Pvtol_stdcell.Cell
module Process = Pvtol_stdcell.Process
module Liberty = Pvtol_stdcell.Liberty

let describe name (p : Process.t) =
  Format.printf "%s (Vth0 = %.2f V, Vdd %g -> %g V):@." name p.Process.vth0
    p.Process.vdd_low p.Process.vdd_high;
  Format.printf "  high-Vdd speed-up: %.1f%%@."
    (100.0 *. (Process.speedup_high_vdd p -. 1.0));
  let slow = p.Process.l_nominal_nm *. 1.055 in
  Format.printf "  delay at +5.5%% Lgate (slow corner): %+.1f%%@."
    (100.0
    *. (Process.delay_scale p ~vdd:p.Process.vdd_low ~lgate_nm:slow -. 1.0));
  Format.printf "  leakage at high Vdd: x%.2f@.@."
    (Process.leakage_scale p ~vdd:p.Process.vdd_high
       ~lgate_nm:p.Process.l_nominal_nm)

let () =
  let lib = Cell.default_library in
  describe "Default library" lib.Cell.process;

  (* Round-trip through the Liberty text form. *)
  let text = Liberty.to_string lib in
  Format.printf "Liberty dump: %d bytes, %d cells@.@." (String.length text)
    (List.length lib.Cell.cells);
  let lib2 = Liberty.of_string text in
  assert (List.length lib2.Cell.cells = List.length lib.Cell.cells);

  (* A hypothetical library with a stronger boost rail. *)
  let boosted = { lib.Cell.process with Process.vdd_high = 1.3 } in
  describe "1.3V boost rail" boosted;

  (* The paper's literal Eq. 4 coefficients (alpha_dibl = 0.15/nm),
     under which the DIBL term is numerically negligible. *)
  describe "Paper-literal DIBL" Process.paper_literal;

  (* Per-cell characterisation at the two supplies. *)
  let nand = Cell.find lib Pvtol_stdcell.Kind.Nand2 Cell.X1 in
  Format.printf "NAND2_X1 driving 10 fF:@.";
  List.iter
    (fun vdd ->
      Format.printf "  Vdd %.1f V: delay %.1f ps, leakage %.2f nW@." vdd
        (1000.0
        *. Cell.delay lib nand ~vdd ~lgate_nm:lib.Cell.process.Process.l_nominal_nm
             ~load_ff:10.0)
        (Cell.leakage_nw lib nand ~vdd
           ~lgate_nm:lib.Cell.process.Process.l_nominal_nm))
    [ 1.0; 1.2 ]
