lib/timing/sta.ml: Array Float Hashtbl List Netlist Pvtol_netlist Pvtol_place Pvtol_stdcell Queue Stage
