(* Tests for the placement substrate: floorplan, placer, legalizer,
   density map, DEF interchange, incremental insertion. *)

open Pvtol_place
module Netlist = Pvtol_netlist.Netlist
module Geom = Pvtol_util.Geom
module Cell = Pvtol_stdcell.Cell

let small_design () =
  (Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config).Pvtol_vex.Vex_core.netlist

let placed =
  lazy
    (let nl = small_design () in
     let fp = Floorplan.create ~cell_area:(Netlist.area nl) () in
     (nl, fp, Placer.place nl fp))

(* --- floorplan --- *)

let test_floorplan_sizing () =
  let fp = Floorplan.create ~cell_area:7000.0 ~utilization:0.7 () in
  let cap = Geom.area fp.Floorplan.core in
  Alcotest.(check bool) "capacity fits area/util" true (cap >= 10000.0);
  Alcotest.(check bool) "not oversized" true (cap < 11500.0);
  Alcotest.(check int) "row count consistent" fp.Floorplan.n_rows
    (int_of_float (Float.round (Geom.height fp.Floorplan.core /. fp.Floorplan.row_height)))

let test_floorplan_rows () =
  let fp = Floorplan.create ~cell_area:5000.0 () in
  Alcotest.(check int) "row_of_y inverse of row_y" 5
    (Floorplan.row_of_y fp (Floorplan.row_y fp 5 +. 0.1));
  Alcotest.(check int) "clamped below" 0 (Floorplan.row_of_y fp (-10.0));
  Alcotest.(check int) "clamped above" (fp.Floorplan.n_rows - 1)
    (Floorplan.row_of_y fp 1e9)

(* --- placer + legalizer --- *)

let test_placement_legal () =
  let _, _, p = Lazy.force placed in
  match Legalize.check p with
  | Ok () -> ()
  | Error es ->
    Alcotest.failf "%d legality errors, first: %s" (List.length es) (List.hd es)

let test_placement_beats_random () =
  let nl, fp, p = Lazy.force placed in
  let random = Placer.global_only ~iterations:0 nl fp in
  Alcotest.(check bool) "placer beats scatter by 2x" true
    (Placement.total_hpwl p *. 2.0 < Placement.total_hpwl random)

let test_placement_deterministic () =
  let nl, fp, p = Lazy.force placed in
  let p2 = Placer.place nl fp in
  Alcotest.(check bool) "same coordinates" true
    (p.Placement.xs = p2.Placement.xs && p.Placement.ys = p2.Placement.ys)

let test_padding_reserves_space () =
  let nl, fp, _ = Lazy.force placed in
  let p = Placer.place ~padding:0.3 nl fp in
  (match Legalize.check p with
  | Ok () -> ()
  | Error es -> Alcotest.failf "padded placement illegal: %s" (List.hd es));
  ()

(* --- hpwl / wire length --- *)

let test_hpwl_small_case () =
  let nl, fp, p = Lazy.force placed in
  ignore fp;
  (* Construct expected HPWL for one net by hand. *)
  let net =
    Array.to_seq nl.Netlist.nets
    |> Seq.find (fun (n : Netlist.net) ->
           n.Netlist.driver <> None && Array.length n.Netlist.sinks >= 2)
    |> Option.get
  in
  let pts =
    (Option.get net.Netlist.driver
    :: (Array.to_list net.Netlist.sinks |> List.map fst))
    |> List.map (fun cid -> (p.Placement.xs.(cid), p.Placement.ys.(cid)))
  in
  let xs = List.map fst pts and ys = List.map snd pts in
  let expected =
    List.fold_left Float.max neg_infinity xs
    -. List.fold_left Float.min infinity xs
    +. List.fold_left Float.max neg_infinity ys
    -. List.fold_left Float.min infinity ys
  in
  let got = Placement.hpwl p net.Netlist.net_id in
  Alcotest.(check bool) "hpwl matches bbox half-perimeter" true
    (Float.abs (expected -. got) < 1e-9)

let test_wire_length_correction () =
  let nl, _, p = Lazy.force placed in
  Array.iter
    (fun (n : Netlist.net) ->
      let h = Placement.hpwl p n.Netlist.net_id in
      let w = Placement.wire_length p n.Netlist.net_id in
      if Array.length n.Netlist.sinks <= 1 then
        Alcotest.(check bool) "no correction for fanout 1" true
          (Float.abs (w -. h) < 1e-9)
      else
        Alcotest.(check bool) "corrected length >= hpwl" true (w >= h -. 1e-9))
    nl.Netlist.nets

(* --- density --- *)

let test_density_conserves_area () =
  let nl, _, p = Lazy.force placed in
  let d = Density.compute p in
  let total = Array.fold_left ( +. ) 0.0 d.Density.occupied in
  Alcotest.(check bool) "bins hold total area" true
    (Float.abs (total -. Netlist.area nl) < 1e-6)

let test_densest_side_synthetic () =
  (* All cells crowded on the left third must report Left. *)
  let nl, fp, p = Lazy.force placed in
  ignore nl;
  let q = Placement.copy p in
  Array.iteri
    (fun i _ -> q.Placement.xs.(i) <- 0.05 *. Geom.width fp.Floorplan.core)
    q.Placement.xs;
  Alcotest.(check string) "left detected" "left"
    (Density.side_name (Density.densest_side (Density.compute q)))

(* --- DEF --- *)

let test_def_roundtrip () =
  let nl, _, p = Lazy.force placed in
  let text = Def.to_string p in
  let p2 = Def.of_string nl text in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i x ->
      max_err := Float.max !max_err (Float.abs (x -. p2.Placement.xs.(i)));
      max_err := Float.max !max_err (Float.abs (p.Placement.ys.(i) -. p2.Placement.ys.(i))))
    p.Placement.xs;
  Alcotest.(check bool) "coordinates survive to DEF precision" true (!max_err <= 0.001);
  Alcotest.(check int) "row count survives" p.Placement.floorplan.Floorplan.n_rows
    p2.Placement.floorplan.Floorplan.n_rows

let test_def_errors () =
  let nl, _, _ = Lazy.force placed in
  (try
     ignore (Def.of_string nl "VERSION 5.8 ;\n");
     Alcotest.fail "missing DIEAREA should fail"
   with Def.Parse_error _ -> ());
  try
    ignore
      (Def.of_string nl
         "DIEAREA ( 0 0 ) ( 1000 1000 ) ;\nROWDEFS 10 1800 200 ;\n- ghost INV_X1 + PLACED ( 1 1 ) N ;\n");
    Alcotest.fail "unknown component should fail"
  with Def.Parse_error _ -> ()

(* --- incremental insertion --- *)

let test_incremental_insert () =
  let nl, _, p = Lazy.force placed in
  (* Append 50 level shifters to the netlist via the production surgery
     path: reuse Level_shifter on a tiny single-island partition. *)
  let core = p.Placement.floorplan.Floorplan.core in
  let region =
    Geom.rect ~llx:core.Geom.llx ~lly:core.Geom.lly
      ~urx:(core.Geom.llx +. (Geom.width core /. 2.0))
      ~ury:core.Geom.ury
  in
  let partition =
    {
      Pvtol_core.Island.direction = Pvtol_core.Island.Vertical;
      side = Density.Left;
      islands =
        [|
          {
            Pvtol_core.Island.index = 1;
            region;
            cells = Pvtol_core.Island.cells_in p region;
          };
        |];
      core;
    }
  in
  let shifted = Pvtol_core.Level_shifter.insert partition p nl in
  let np = shifted.Pvtol_core.Level_shifter.placement in
  (match Legalize.check np with
  | Ok () -> ()
  | Error es -> Alcotest.failf "post-insert illegal: %s" (List.hd es));
  (* Original cells kept their exact coordinates. *)
  let moved = ref 0 in
  for i = 0 to Netlist.cell_count nl - 1 do
    if
      Float.abs (np.Placement.xs.(i) -. p.Placement.xs.(i)) > 1e-9
      || Float.abs (np.Placement.ys.(i) -. p.Placement.ys.(i)) > 1e-9
    then incr moved
  done;
  Alcotest.(check int) "ECO insertion moves no original cell" 0 !moved;
  Alcotest.(check bool) "some shifters inserted" true
    (shifted.Pvtol_core.Level_shifter.count > 0)

(* --- global router --- *)

let test_router_basics () =
  let nl, _, p = Lazy.force placed in
  let r = Router.route p in
  (* Every live multi-gcell net got a route at least as long as a step;
     totals are consistent. *)
  let sum = Array.fold_left ( +. ) 0.0 r.Router.routed_um in
  Alcotest.(check bool) "total = sum of nets" true
    (Float.abs (sum -. r.Router.total_um) < 1e-6);
  Alcotest.(check bool) "routed >= hpwl total" true
    (r.Router.total_um >= r.Router.total_hpwl_um *. 0.99);
  Alcotest.(check bool) "utilization stats sane" true
    (r.Router.max_utilization >= r.Router.mean_utilization
    && r.Router.mean_utilization >= 0.0);
  Array.iter
    (fun (net : Netlist.net) ->
      let um = Router.wire_length r net.Netlist.net_id in
      Alcotest.(check bool) "nonnegative length" true (um >= 0.0))
    nl.Netlist.nets

let test_router_deterministic () =
  let _, _, p = Lazy.force placed in
  let a = Router.route p and b = Router.route p in
  Alcotest.(check bool) "same routes" true (a.Router.routed_um = b.Router.routed_um)

let test_router_reroute_reduces_overflow () =
  let _, _, p = Lazy.force placed in
  let cfg0 = { Router.default_config with Router.reroute_passes = 0 } in
  let cfg2 = { Router.default_config with Router.reroute_passes = 3 } in
  let r0 = Router.route ~config:cfg0 p in
  let r2 = Router.route ~config:cfg2 p in
  Alcotest.(check bool) "reroute does not worsen overflow" true
    (r2.Router.overflowed_edges <= r0.Router.overflowed_edges)

let test_router_capacity_override () =
  let _, _, p = Lazy.force placed in
  let tight = Router.route ~config:{ Router.default_config with Router.tracks_per_edge = 2 } p in
  let loose = Router.route ~config:{ Router.default_config with Router.tracks_per_edge = 10_000 } p in
  Alcotest.(check int) "huge capacity: no overflow" 0 loose.Router.overflowed_edges;
  Alcotest.(check bool) "tight capacity overflows more" true
    (tight.Router.overflowed_edges >= loose.Router.overflowed_edges)

let test_cell_width () =
  let nl, fp, _ = Lazy.force placed in
  let c = nl.Netlist.cells.(0) in
  let w = Placement.cell_width c fp in
  Alcotest.(check bool) "width x height = area" true
    (Float.abs ((w *. fp.Floorplan.row_height) -. c.Netlist.cell.Cell.area) < 1e-9)

let suite =
  ( "place",
    [
      Alcotest.test_case "floorplan sizing" `Quick test_floorplan_sizing;
      Alcotest.test_case "floorplan rows" `Quick test_floorplan_rows;
      Alcotest.test_case "placement legal" `Quick test_placement_legal;
      Alcotest.test_case "placement beats random" `Quick test_placement_beats_random;
      Alcotest.test_case "placement deterministic" `Quick test_placement_deterministic;
      Alcotest.test_case "padding legal" `Quick test_padding_reserves_space;
      Alcotest.test_case "hpwl small case" `Quick test_hpwl_small_case;
      Alcotest.test_case "wire length correction" `Quick test_wire_length_correction;
      Alcotest.test_case "density conserves area" `Quick test_density_conserves_area;
      Alcotest.test_case "densest side synthetic" `Quick test_densest_side_synthetic;
      Alcotest.test_case "def roundtrip" `Quick test_def_roundtrip;
      Alcotest.test_case "def errors" `Quick test_def_errors;
      Alcotest.test_case "incremental insert" `Quick test_incremental_insert;
      Alcotest.test_case "router basics" `Quick test_router_basics;
      Alcotest.test_case "router deterministic" `Quick test_router_deterministic;
      Alcotest.test_case "router reroute" `Quick test_router_reroute_reduces_overflow;
      Alcotest.test_case "router capacity" `Quick test_router_capacity_override;
      Alcotest.test_case "cell width" `Quick test_cell_width;
    ] )
