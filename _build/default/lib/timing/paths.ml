open Pvtol_netlist
module Kind = Pvtol_stdcell.Kind

type hop = { cell : Netlist.cell_id; arrival_out : float }

type path = {
  endpoint : Netlist.cell_id;
  delay : float;
  hops : hop list;
}

let is_seq (nl : Netlist.t) cid =
  Kind.is_sequential nl.Netlist.cells.(cid).Netlist.cell.Pvtol_stdcell.Cell.kind

let trace t ~delays (r : Sta.result) endpoint =
  let nl = Sta.netlist t in
  (* Walk backwards: at each cell pick the fanin pin whose arrival
     (including wire) dominates. *)
  let rec walk cid acc =
    let c = nl.Netlist.cells.(cid) in
    let acc = { cell = cid; arrival_out = r.Sta.arrival.(c.Netlist.fanout) } :: acc in
    if is_seq nl cid then acc
    else begin
      let best = ref None and best_a = ref neg_infinity in
      Array.iter
        (fun nid ->
          let a = r.Sta.arrival.(nid) in
          if a > !best_a then begin
            best_a := a;
            best := nl.Netlist.nets.(nid).Netlist.driver
          end)
        c.Netlist.fanins;
      match !best with
      | Some prev -> walk prev acc
      | None -> acc (* reached a primary input *)
    end
  in
  let c = nl.Netlist.cells.(endpoint) in
  let d_net = c.Netlist.fanins.(0) in
  let start =
    match nl.Netlist.nets.(d_net).Netlist.driver with
    | Some prev -> walk prev []
    | None -> []
  in
  ignore delays;
  { endpoint; delay = r.Sta.endpoint_delay.(endpoint); hops = start }

let critical t ~delays (r : Sta.result) =
  if r.Sta.worst_endpoint < 0 then None
  else Some (trace t ~delays r r.Sta.worst_endpoint)

let worst_endpoints ?stage t (r : Sta.result) ~k =
  let eps =
    match stage with
    | Some s -> Sta.endpoints_of_stage t s
    | None ->
      List.concat_map (fun s -> Sta.endpoints_of_stage t s) Stage.all
  in
  let scored = List.map (fun cid -> (cid, r.Sta.endpoint_delay.(cid))) eps in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  List.filteri (fun i _ -> i < k) sorted

let stage_share t path =
  let nl = Sta.netlist t in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun { cell; _ } ->
      let u = nl.Netlist.cells.(cell).Netlist.unit_name in
      Hashtbl.replace tbl u (1 + Option.value (Hashtbl.find_opt tbl u) ~default:0))
    path.hops;
  Hashtbl.fold (fun u n acc -> (u, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
