lib/ssta/analytic.mli: Netlist Pvtol_netlist Pvtol_timing Pvtol_variation Stage
