lib/vexsim/sim.ml: Array Int32 Isa List
