module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  (* Chan et al. pairwise update.  Only reads the source, only writes
     [into]; merging a fixed sequence of accumulators in a fixed order
     is therefore bit-deterministic. *)
  let merge ~into src =
    if into == src then
      invalid_arg "Stream_stats.Welford.merge: accumulator merged into itself";
    if src.n > 0 then begin
      if into.n = 0 then begin
        into.n <- src.n;
        into.mean <- src.mean;
        into.m2 <- src.m2;
        into.min <- src.min;
        into.max <- src.max
      end
      else begin
        let na = float_of_int into.n and nb = float_of_int src.n in
        let n = na +. nb in
        let delta = src.mean -. into.mean in
        into.mean <- into.mean +. (delta *. nb /. n);
        into.m2 <- into.m2 +. src.m2 +. (delta *. delta *. na *. nb /. n);
        into.n <- into.n + src.n;
        if src.min < into.min then into.min <- src.min;
        if src.max > into.max then into.max <- src.max
      end
    end

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let ci_halfwidth ?(confidence = 0.95) t =
    if not (confidence > 0.0 && confidence < 1.0) then
      invalid_arg
        "Stream_stats.Welford.ci_halfwidth: confidence must be in (0, 1)";
    if t.n < 2 then infinity
    else
      let zc =
        Specfun.normal_quantile ~mu:0.0 ~sigma:1.0 ((1.0 +. confidence) /. 2.0)
      in
      zc *. sqrt (variance t /. float_of_int t.n)

  let summary t =
    if t.n = 0 then invalid_arg "Stream_stats.Welford.summary: empty";
    {
      Stats.n = t.n;
      mean = t.mean;
      stddev = stddev t;
      min = t.min;
      max = t.max;
    }
end

module P2 = struct
  (* Jain & Chlamtac, "The P^2 algorithm for dynamic calculation of
     quantiles and histograms without storing observations", CACM 1985.
     Five markers: min, p/2, p, (1+p)/2, max. *)
  type t = {
    p : float;
    q : float array;      (* marker heights *)
    pos : float array;    (* actual marker positions (1-based counts) *)
    want : float array;   (* desired marker positions *)
    incr : float array;   (* desired-position increment per observation *)
    mutable n : int;
  }

  let create p =
    if not (p > 0.0 && p < 1.0) then
      invalid_arg "Stream_stats.P2.create: p must be in (0, 1)";
    {
      p;
      q = Array.make 5 0.0;
      pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      want = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
      incr = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
      n = 0;
    }

  let count t = t.n

  (* Piecewise-parabolic marker adjustment; falls back to linear when
     the parabola would cross a neighbour. *)
  let adjust t i d =
    let q = t.q and pos = t.pos in
    let np = pos.(i) +. d in
    let parabolic =
      q.(i)
      +. d
         /. (pos.(i + 1) -. pos.(i - 1))
         *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i))
              /. (pos.(i + 1) -. pos.(i)))
            +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1))
               /. (pos.(i) -. pos.(i - 1))))
    in
    if q.(i - 1) < parabolic && parabolic < q.(i + 1) then q.(i) <- parabolic
    else begin
      let j = if d > 0.0 then i + 1 else i - 1 in
      q.(i) <- q.(i) +. (d *. (q.(j) -. q.(i)) /. (pos.(j) -. pos.(i)))
    end;
    pos.(i) <- np

  let add t x =
    t.n <- t.n + 1;
    if t.n <= 5 then begin
      (* Bootstrap: store and keep the first five observations sorted
         in the marker heights. *)
      t.q.(t.n - 1) <- x;
      let sub = Array.sub t.q 0 t.n in
      Array.sort compare sub;
      Array.blit sub 0 t.q 0 t.n
    end
    else begin
      let q = t.q and pos = t.pos in
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          q.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= q.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        pos.(i) <- pos.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.want.(i) <- t.want.(i) +. t.incr.(i)
      done;
      for i = 1 to 3 do
        let d = t.want.(i) -. pos.(i) in
        if
          (d >= 1.0 && pos.(i + 1) -. pos.(i) > 1.0)
          || (d <= -1.0 && pos.(i - 1) -. pos.(i) < -1.0)
        then adjust t i (if d >= 1.0 then 1.0 else -1.0)
      done
    end

  let estimate t =
    if t.n = 0 then invalid_arg "Stream_stats.P2.estimate: empty";
    if t.n <= 5 then begin
      (* Exact: interpolate order statistics like Stats.quantile. *)
      let sorted = Array.sub t.q 0 t.n in
      Array.sort compare sorted;
      let pos = t.p *. float_of_int (t.n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (t.n - 1) in
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
    else t.q.(2)
end

module Counter = struct
  type t = int array

  let create n =
    if n <= 0 then invalid_arg "Stream_stats.Counter.create: empty range";
    Array.make n 0

  let clamp t v = Stdlib.min (Array.length t - 1) (Stdlib.max 0 v)
  let add t v = t.(clamp t v) <- t.(clamp t v) + 1
  let get t v = t.(v)
  let total t = Array.fold_left ( + ) 0 t
  let to_array t = Array.copy t

  let merge ~into src =
    if Array.length into <> Array.length src then
      invalid_arg "Stream_stats.Counter.merge: range mismatch";
    Array.iteri (fun i v -> into.(i) <- into.(i) + v) src
end
