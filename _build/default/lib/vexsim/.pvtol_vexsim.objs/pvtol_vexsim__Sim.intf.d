lib/vexsim/sim.mli: Int32 Isa
