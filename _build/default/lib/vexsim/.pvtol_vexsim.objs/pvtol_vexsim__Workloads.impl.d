lib/vexsim/workloads.ml: Array Asm Fir Int32 Pvtol_util Sim String
