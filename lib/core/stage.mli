(** Lazy, memoized, traced stage graph.

    The methodology flow (paper Fig. 1) is an explicit pipeline:
    netlist generation, placement, STA, per-position Monte-Carlo SSTA,
    scenario classification, island slicing, level-shifter insertion,
    power.  This module gives each step a {e named, typed node} with
    explicit dependencies.  A node computes at most once per graph
    (thread-safe: a second domain forcing the same node blocks until
    the first stores the result); {e keyed} nodes memoize one instance
    per key (e.g. the Monte-Carlo stage per die position) and may be
    forced concurrently from pool workers for distinct keys.

    Every computation is recorded as a {!Pvtol_util.Trace} span (name,
    declared dependencies, wall clock, heap allocation), so [--trace]
    can show exactly where a run spent its time and that nothing ran
    twice.

    Stage boundaries are also error boundaries: an exception escaping a
    node's compute function is converted into {!Stage_error} carrying
    the failing stage's name and the chain of nodes that forced it —
    so a Liberty parse error or an infeasible slicing reports {e which}
    pipeline step failed instead of an anonymous exception surfacing
    from the middle of an experiment harness.  The error is memoized
    like a value: re-forcing a failed node re-raises the original
    error. *)

type error = {
  stage : string;       (** name of the node whose compute raised *)
  chain : string list;  (** forcing chain, outermost first, ending at [stage] *)
  message : string;     (** printed form of the underlying exception *)
}

exception Stage_error of error

val error_message : error -> string

(** {2 Graphs} *)

type graph

val create : ?trace:Pvtol_util.Trace.t -> unit -> graph
(** A fresh graph with its own (or the supplied) trace. *)

val trace : graph -> Pvtol_util.Trace.t

(** {2 Nodes} *)

type 'a node

val node : graph -> name:string -> ?deps:string list -> (unit -> 'a) -> 'a node
(** Declare a node.  [deps] names the upstream stages (recorded in the
    trace span; purely declarative — the compute function pulls its
    inputs by calling {!get} on the upstream nodes it captured).  Node
    names must be unique per graph ([Invalid_argument] otherwise). *)

val name : 'a node -> string

val get : 'a node -> 'a
(** Force the node: compute on first use, memoized thereafter.
    Raises {!Stage_error} if this node (or a dependency) failed. *)

val result : 'a node -> ('a, error) result
(** Like {!get} but returns the stage error instead of raising. *)

val peek : 'a node -> 'a option
(** The memoized value if the node has already completed; never
    computes. *)

(** {2 Keyed nodes} *)

type ('k, 'a) keyed

val keyed :
  graph ->
  name:string ->
  ?deps:('k -> string list) ->
  key_label:('k -> string) ->
  ('k -> 'a) ->
  ('k, 'a) keyed
(** A family of memoized instances, one per key; [key_label] must be
    injective on the keys used.  The trace span for key [k] is named
    ["name[label k]"]. *)

val get_keyed : ('k, 'a) keyed -> 'k -> 'a
val result_keyed : ('k, 'a) keyed -> 'k -> ('a, error) result

val computed_keys : ('k, 'a) keyed -> string list
(** Labels of the instances computed so far (sorted). *)
