(* Tests for the gate-level activity simulator and the power engine. *)

open Pvtol_netlist
module Builder = Netlist.Builder
module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell
module Gatesim = Pvtol_power.Gatesim
module Power = Pvtol_power.Power

let lib = Cell.default_library
let stage = Stage.Execute

(* inverter chain: input -> inv -> inv -> out *)
let inv_chain () =
  let b = Builder.create lib in
  let a = Builder.input b "a" in
  let n1 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| a |] in
  let n2 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| n1 |] in
  Builder.output b n2 "out";
  Builder.freeze b

let test_gatesim_alternating_input () =
  let nl = inv_chain () in
  let act =
    Gatesim.run ~cycles:16 nl (fun ~cycle ~input_index:_ -> cycle mod 2 = 1)
  in
  (* Every cell toggles on all but possibly the first cycle. *)
  Array.iter
    (fun t -> Alcotest.(check bool) "toggles nearly every cycle" true (t >= 15))
    act.Gatesim.toggles

let test_gatesim_constant_input_settles () =
  let nl = inv_chain () in
  let const ~cycle:_ ~input_index:_ = true in
  let a8 = Gatesim.run ~cycles:8 nl const in
  let a16 = Gatesim.run ~cycles:16 nl const in
  (* After settling, no further toggles accumulate. *)
  Alcotest.(check bool) "settled" true (a8.Gatesim.toggles = a16.Gatesim.toggles)

let test_gatesim_dff_divider () =
  (* A toggle flop (q -> inv -> d) divides the clock by two. *)
  let b = Builder.create lib in
  let stub = Builder.placeholder b "d" in
  let q = Builder.add b ~stage ~unit_name:"u" Kind.Dff [| stub |] in
  let nq = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| q |] in
  (match Builder.driver_of b q with
  | Some cell -> Builder.rewire b ~cell ~pin:0 nq
  | None -> assert false);
  Builder.output b q "q";
  let nl = Builder.freeze b in
  let act = Gatesim.run ~cycles:32 nl (fun ~cycle:_ ~input_index:_ -> false) in
  (* Both the flop and the inverter toggle every cycle. *)
  Array.iter
    (fun t -> Alcotest.(check bool) "divider toggles" true (t >= 31))
    act.Gatesim.toggles

let test_gatesim_deterministic_stimulus () =
  let nl = inv_chain () in
  let a = Gatesim.run ~cycles:32 nl (Gatesim.random_stimulus ~seed:7) in
  let b = Gatesim.run ~cycles:32 nl (Gatesim.random_stimulus ~seed:7) in
  Alcotest.(check bool) "same seed same toggles" true
    (a.Gatesim.toggles = b.Gatesim.toggles)

let small =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     let p = Pvtol_place.Placer.place nl fp in
     let act = Gatesim.run ~cycles:64 nl (Gatesim.random_stimulus ~seed:3) in
     (nl, p, act))

let test_trace_stimulus_mapping () =
  let nl, _, _ = Lazy.force small in
  let fir = Pvtol_vexsim.Fir.run ~taps:4 ~samples:8 () in
  let stim, n =
    Gatesim.trace_stimulus nl ~instr_prefix:"instr"
      ~words:fir.Pvtol_vexsim.Fir.trace
      ~fallback:(Gatesim.random_stimulus ~seed:1)
  in
  Alcotest.(check int) "trace length" fir.Pvtol_vexsim.Fir.stats.Pvtol_vexsim.Sim.cycles n;
  (* Find the instr[0] input and check it reflects the first word's LSB. *)
  let idx = ref (-1) in
  Array.iteri
    (fun i nid ->
      if nl.Netlist.nets.(nid).Netlist.net_name = "instr[0]" then idx := i)
    nl.Netlist.inputs;
  Alcotest.(check bool) "instr[0] found" true (!idx >= 0);
  let w0 = (List.hd fir.Pvtol_vexsim.Fir.trace).(0) in
  Alcotest.(check bool) "bit mapping" true
    (stim ~cycle:0 ~input_index:!idx = (Int32.logand w0 1l = 1l))

let analyze ?(vdd = fun _ -> 1.0) () =
  let nl, p, act = Lazy.force small in
  Power.analyze ~vdd ~activity:act
    ~wire_length:(fun nid -> Pvtol_place.Placement.wire_length p nid)
    ~clock_ns:3.0 nl

let test_power_positive_and_consistent () =
  let r = analyze () in
  Alcotest.(check bool) "positive total" true (Power.total_mw r.Power.total > 0.0);
  (* Stage breakdown sums to total. *)
  let stage_sum =
    List.fold_left (fun acc (_, b) -> acc +. Power.total_mw b) 0.0 r.Power.by_stage
  in
  Alcotest.(check bool) "stages sum to total" true
    (Float.abs (stage_sum -. Power.total_mw r.Power.total) < 1e-9);
  (* Per-cell sums to total too. *)
  let cell_sum = Power.sum_cells r (fun _ -> true) in
  Alcotest.(check bool) "cells sum to total" true
    (Float.abs (Power.total_mw cell_sum -. Power.total_mw r.Power.total) < 1e-9)

let test_power_vdd_monotone () =
  let low = analyze () in
  let high = analyze ~vdd:(fun _ -> 1.2) () in
  Alcotest.(check bool) "1.2V costs more" true
    (Power.total_mw high.Power.total > Power.total_mw low.Power.total);
  Alcotest.(check bool) "leakage rises too" true
    (high.Power.total.Power.leakage_mw > low.Power.total.Power.leakage_mw);
  (* Switching scales between 1x and the full quadratic factor (wire
     load is vdd-independent in the energy model only via 0.5CV^2,
     internal scales quadratically). *)
  let ratio =
    high.Power.total.Power.switching_mw /. low.Power.total.Power.switching_mw
  in
  Alcotest.(check bool) "switching ratio ~ vdd^2" true (ratio > 1.3 && ratio < 1.5)

let test_power_partial_vdd_between () =
  let nl, _, _ = Lazy.force small in
  let n = Netlist.cell_count nl in
  let low = Power.total_mw (analyze ()).Power.total in
  let high = Power.total_mw (analyze ~vdd:(fun _ -> 1.2) ()).Power.total in
  let mixed =
    Power.total_mw (analyze ~vdd:(fun cid -> if cid < n / 2 then 1.2 else 1.0) ()).Power.total
  in
  Alcotest.(check bool) "mixed supply in between" true (mixed > low && mixed < high)

let test_power_frequency_scaling () =
  let nl, p, act = Lazy.force small in
  let wire nid = Pvtol_place.Placement.wire_length p nid in
  let at clk =
    Power.analyze ~vdd:(fun _ -> 1.0) ~activity:act ~wire_length:wire
      ~clock_ns:clk nl
  in
  let f1 = at 2.0 and f2 = at 4.0 in
  (* Dynamic power halves with the frequency; leakage does not change. *)
  Alcotest.(check bool) "switching scales with f" true
    (Float.abs ((f1.Power.total.Power.switching_mw /. 2.0)
               -. f2.Power.total.Power.switching_mw) < 1e-9);
  Alcotest.(check bool) "leakage frequency independent" true
    (Float.abs (f1.Power.total.Power.leakage_mw -. f2.Power.total.Power.leakage_mw) < 1e-12)

let test_power_lgate_leakage () =
  let nl, p, act = Lazy.force small in
  let wire nid = Pvtol_place.Placement.wire_length p nid in
  let at lg =
    (Power.analyze ~lgate_nm:(fun _ -> lg) ~vdd:(fun _ -> 1.0) ~activity:act
       ~wire_length:wire ~clock_ns:3.0 nl).Power.total.Power.leakage_mw
  in
  Alcotest.(check bool) "short channel leaks more" true (at 61.0 > at 65.0)

let suite =
  ( "power",
    [
      Alcotest.test_case "gatesim alternating" `Quick test_gatesim_alternating_input;
      Alcotest.test_case "gatesim settles" `Quick test_gatesim_constant_input_settles;
      Alcotest.test_case "gatesim dff divider" `Quick test_gatesim_dff_divider;
      Alcotest.test_case "gatesim deterministic" `Quick test_gatesim_deterministic_stimulus;
      Alcotest.test_case "trace stimulus mapping" `Quick test_trace_stimulus_mapping;
      Alcotest.test_case "power consistency" `Quick test_power_positive_and_consistent;
      Alcotest.test_case "power vdd monotone" `Quick test_power_vdd_monotone;
      Alcotest.test_case "power partial vdd" `Quick test_power_partial_vdd_between;
      Alcotest.test_case "power frequency scaling" `Quick test_power_frequency_scaling;
      Alcotest.test_case "power lgate leakage" `Quick test_power_lgate_leakage;
    ] )
