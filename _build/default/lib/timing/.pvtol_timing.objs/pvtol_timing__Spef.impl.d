lib/timing/spef.ml: Array Buffer Fun List Netlist Printf Pvtol_netlist Pvtol_place Pvtol_stdcell Sta String
