(** Power-supply-network (IR-drop) feasibility of a voltage domain.

    The paper motivates its slab-shaped islands by power-network
    synthesizability ("the simplest ones that facilitate the synthesis
    of power supply networks with minimum impact").  This module makes
    that concern measurable: a domain's supply is modelled as a
    resistive strap grid over the bins its cells occupy, fed from pad
    bins on the core boundary, with each bin drawing its cells' current;
    the resulting nodal equations are relaxed to give the static IR-drop
    map.

    Domains that do not reach the boundary anywhere — e.g. scattered
    logic-based selections — show up as unreachable bins: patches a
    real supply network could only feed with dedicated routing. *)

type result = {
  max_drop_mv : float;      (** over reachable bins *)
  mean_drop_mv : float;
  supplied_bins : int;
  pad_bins : int;
  unreachable_bins : int;   (** domain bins with no strap path to a pad *)
  iterations : int;
}

val analyze :
  ?grid:int ->
  ?strap_resistance:float ->
  placement:Pvtol_place.Placement.t ->
  member:(Pvtol_netlist.Netlist.cell_id -> bool) ->
  current_ma:(Pvtol_netlist.Netlist.cell_id -> float) ->
  vdd:float ->
  unit ->
  result
(** [member] selects the domain's cells; [current_ma] each cell's draw.
    Defaults: 24x24 bin grid, 2 ohm per strap segment.  Deterministic
    Gauss-Seidel relaxation to 1 uV residual (bounded iterations). *)
