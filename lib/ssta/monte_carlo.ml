open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Fit = Pvtol_util.Fit
module Pool = Pvtol_util.Pool
module Metrics = Pvtol_util.Metrics
module Log = Pvtol_util.Log

let m_samples = Metrics.counter "mc_samples_total"
let m_mc_chunks = Metrics.counter "mc_chunks_total"
let m_batches = Metrics.counter "mc_batches_total"

type config = { samples : int; seed : int }

let default_config = { samples = 400; seed = 2024 }

type engine = Golden | Batched

let engine_warn = Log.once ()

let engine_of_env () =
  match Sys.getenv_opt "PVTOL_MC_ENGINE" with
  | None | Some "" | Some "batched" -> Batched
  | Some "golden" -> Golden
  | Some other ->
    Log.warn_once engine_warn
      "PVTOL_MC_ENGINE=%S is not a known engine (golden|batched); using batched"
      other;
    Batched

type stage_stats = {
  stage : Stage.t;
  samples : float array;
  summary : Stats.summary;
  fit : Fit.normal;
  gof : Fit.gof;
}

type result = {
  position : Position.t;
  stages : stage_stats list;
  worst_samples : float array;
  endpoint_critical_count : (Netlist.cell_id, int) Hashtbl.t;
}

(* Samples per chunk.  Fixed — never derived from the domain count — so
   chunk boundaries, and therefore every RNG draw, are identical no
   matter how many domains execute the fan-out. *)
let chunk_size = 32

(* Boost-style hash combine, clamped non-negative for Srng.create. *)
let mix h k = (h lxor (k + 0x9e3779b9 + (h lsl 6) + (h lsr 2))) land max_int
let substream_seed seed keys = List.fold_left mix seed keys

(* The RNG state a serial run would hold when it reaches sample [s0].
   One SplitMix64 draw per Box-Muller uniform lets us jump there in
   O(1): [gaussians] normal deviates consume [2 * ceil (gaussians / 2)]
   raw draws, and an odd count leaves the pair's second half cached.
   (Box-Muller's u1 = 0 rejection re-draw has probability 2^-53 per
   pair; we ignore it, as does every practical SplitMix64 jump.)  This
   makes the chunked engine bit-identical to the legacy serial loop,
   independent of both chunk size and domain count. *)
let rng_at_sample ~seed ~gaussians =
  let g = Srng.create seed in
  if gaussians land 1 = 0 then Srng.jump g gaussians
  else begin
    Srng.jump g (gaussians - 1);
    (* Draw the pair straddling the chunk boundary; its first half was
       consumed by the previous chunk, its second is left cached. *)
    ignore (Srng.gaussian g)
  end;
  g

type scratch = {
  ws : Sta.workspace;
  lgates : float array;
  delays : float array;
}

(* Batched-engine per-worker scratch: the SoA block plus one
   sample-major gaussian buffer sized for a full chunk. *)
type bscratch = {
  bw : Sta.batch_workspace;
  gauss : float array;
}

let run ?(config = default_config) ?(engine = engine_of_env ()) ?vdd ?pool
    ~sampler ~sta ~placement ~position () =
  let nl = Sta.netlist sta in
  let vdd =
    match vdd with
    | Some f -> f
    | None ->
      let low = nl.Netlist.lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
      fun _ -> low
  in
  let n = Netlist.cell_count nl in
  let systematic = Sampler.systematic_lgates sampler placement position in
  let base = Sta.nominal_delays sta in
  (* Endpoint sets are precomputed once: the per-sample loop must not
     re-filter the flop array (satellite of the parallel rewrite). *)
  let active_stages =
    List.filter_map
      (fun s ->
        let eps = Sta.stage_endpoint_ids sta s in
        if Array.length eps > 0 then Some (s, eps, Array.make config.samples 0.0)
        else None)
      Stage.all
  in
  let worst_samples = Array.make config.samples 0.0 in
  let chunks = (config.samples + chunk_size - 1) / chunk_size in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  (* Each chunk owns a disjoint slice of every sample array, so workers
     write without synchronisation; the per-chunk criticality counts
     are returned and merged in chunk order below. *)
  let crit_chunks =
    match engine with
    | Golden ->
      let init ~worker:_ =
        {
          ws = Sta.workspace sta;
          lgates = Array.make n 0.0;
          delays = Array.make n 0.0;
        }
      in
      let run_chunk st c =
        let s0 = c * chunk_size in
        let s1 = min config.samples (s0 + chunk_size) in
        Metrics.incr m_mc_chunks;
        Metrics.add m_samples (s1 - s0);
        let rng = rng_at_sample ~seed:config.seed ~gaussians:(s0 * n) in
        let crit = Array.make n 0 in
        for k = s0 to s1 - 1 do
          Sampler.sample_lgates sampler ~systematic rng st.lgates;
          Sampler.scale_delays sampler ~base ~lgates:st.lgates ~vdd
            ~out:st.delays;
          Sta.analyze_into sta st.ws ~delays:st.delays;
          worst_samples.(k) <- Sta.ws_worst st.ws;
          List.iter
            (fun (s, eps, arr) ->
              match Sta.ws_stage_delay st.ws s with
              | None -> ()
              | Some stage_worst ->
                arr.(k) <- stage_worst;
                (* Endpoint criticality: flops within 2% of their
                   stage's worst. *)
                Array.iter
                  (fun cid ->
                    if Sta.ws_endpoint_delay st.ws cid >= 0.98 *. stage_worst
                    then crit.(cid) <- crit.(cid) + 1)
                  eps)
            active_stages
        done;
        crit
      in
      Pool.parallel_chunks pool ~chunks ~init ~f:run_chunk
    | Batched ->
      (* Per-die scale state (polynomial fits) is immutable after
         construction; workers share it read-only. *)
      let batch = Sampler.batch sampler ~base ~systematic ~vdd in
      let init ~worker:_ =
        {
          bw = Sta.batch_workspace ~lanes:chunk_size sta;
          gauss = Array.make (chunk_size * n) 0.0;
        }
      in
      let run_chunk st c =
        let s0 = c * chunk_size in
        let s1 = min config.samples (s0 + chunk_size) in
        let kb = s1 - s0 in
        Metrics.incr m_mc_chunks;
        Metrics.incr m_batches;
        Metrics.add m_samples kb;
        (* The gaussian stream is drawn in exactly the golden order —
           sample-major, cells in id order — so the chunk consumes the
           same [kb * n] draws from the same serial stream position. *)
        let rng = rng_at_sample ~seed:config.seed ~gaussians:(s0 * n) in
        Srng.fill_gaussians rng st.gauss ~pos:0 ~len:(kb * n);
        Sampler.scale_delays_batch batch ~gauss:st.gauss ~samples:kb
          ~stride:(Sta.batch_stride st.bw) ~out:(Sta.batch_delays st.bw);
        Sta.analyze_batch_into sta st.bw ~lanes:kb;
        let crit = Array.make n 0 in
        for lane = 0 to kb - 1 do
          let k = s0 + lane in
          worst_samples.(k) <- Sta.bw_worst st.bw lane;
          List.iter
            (fun (s, eps, arr) ->
              match Sta.bw_stage_delay st.bw s lane with
              | None -> ()
              | Some stage_worst ->
                arr.(k) <- stage_worst;
                Array.iter
                  (fun cid ->
                    if
                      Sta.bw_endpoint_delay sta st.bw cid lane
                      >= 0.98 *. stage_worst
                    then crit.(cid) <- crit.(cid) + 1)
                  eps)
            active_stages
        done;
        crit
      in
      Pool.parallel_chunks pool ~chunks ~init ~f:run_chunk
  in
  let critical_count = Hashtbl.create 256 in
  Array.iter
    (fun crit ->
      Array.iteri
        (fun cid c ->
          if c > 0 then
            Hashtbl.replace critical_count cid
              (c + Option.value (Hashtbl.find_opt critical_count cid) ~default:0))
        crit)
    crit_chunks;
  let stages =
    List.map
      (fun (stage, _, samples) ->
        let fit, gof = Fit.fit_and_test samples in
        { stage; samples; summary = Stats.summarize samples; fit; gof })
      active_stages
  in
  { position; stages; worst_samples; endpoint_critical_count = critical_count }

let stage_stats r s =
  List.find_opt (fun ss -> Stage.equal ss.stage s) r.stages

let three_sigma_delay ss = Stats.three_sigma ss.summary
