module Process = Pvtol_stdcell.Process
module Placement = Pvtol_place.Placement
module Srng = Pvtol_util.Srng

type t = {
  field : Field.t;
  process : Process.t;
  sigma_rnd_nm : float;
}

let create ?field ?(process = Process.default) ?(three_sigma_rnd_frac = 0.065)
    () =
  let field =
    match field with
    | Some f -> f
    | None ->
      Field.create ~l_nominal_nm:process.Process.l_nominal_nm
        ~max_dev_frac:0.055 ()
  in
  {
    field;
    process;
    sigma_rnd_nm = three_sigma_rnd_frac /. 3.0 *. process.Process.l_nominal_nm;
  }

let systematic_lgates t (p : Placement.t) pos =
  Array.mapi
    (fun i _ ->
      let x_mm, y_mm =
        Position.to_field pos ~x_um:p.Placement.xs.(i) ~y_um:p.Placement.ys.(i)
      in
      Field.systematic_nm t.field ~x_mm ~y_mm)
    p.Placement.xs

let sample_lgates t ~systematic rng out =
  assert (Array.length out = Array.length systematic);
  for i = 0 to Array.length out - 1 do
    out.(i) <- systematic.(i) +. (t.sigma_rnd_nm *. Srng.gaussian rng)
  done

let delay_scale t ~lgate_nm ~vdd = Process.delay_scale t.process ~vdd ~lgate_nm

let scale_delays t ~base ~lgates ~vdd ~out =
  let n = Array.length base in
  assert (Array.length lgates = n && Array.length out = n);
  for i = 0 to n - 1 do
    out.(i) <- base.(i) *. delay_scale t ~lgate_nm:lgates.(i) ~vdd:(vdd i)
  done
