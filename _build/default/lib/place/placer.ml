open Pvtol_netlist
module Geom = Pvtol_util.Geom
module Srng = Pvtol_util.Srng

let spread_step (p : Placement.t) =
  let fp = p.Placement.floorplan in
  let core = fp.Floorplan.core in
  let d = Density.compute ~nx:32 ~ny:32 p in
  let target = fp.Floorplan.utilization *. Density.bin_area d in
  let nx = d.Density.nx and ny = d.Density.ny in
  let occ ix iy =
    if ix < 0 || iy < 0 || ix >= nx || iy >= ny then infinity
    else d.Density.occupied.((iy * nx) + ix)
  in
  let n = Array.length p.Placement.xs in
  for i = 0 to n - 1 do
    let ix =
      max 0 (min (nx - 1) (int_of_float ((p.Placement.xs.(i) -. core.Geom.llx) /. d.Density.bin_w)))
    and iy =
      max 0 (min (ny - 1) (int_of_float ((p.Placement.ys.(i) -. core.Geom.lly) /. d.Density.bin_h)))
    in
    let here = occ ix iy in
    if here > target then begin
      (* Push along the discrete density gradient, proportional to
         overflow, capped at one bin pitch. *)
      let gx = occ (ix - 1) iy -. occ (ix + 1) iy in
      let gy = occ ix (iy - 1) -. occ ix (iy + 1) in
      let norm = Float.hypot gx gy in
      if norm > 0.0 && Float.is_finite norm then begin
        let strength = Float.min 1.0 ((here -. target) /. target) in
        p.Placement.xs.(i) <-
          p.Placement.xs.(i) +. (gx /. norm *. strength *. d.Density.bin_w);
        p.Placement.ys.(i) <-
          p.Placement.ys.(i) +. (gy /. norm *. strength *. d.Density.bin_h)
      end
    end;
    (* Clamp into the core with a small margin. *)
    let m = 0.1 in
    p.Placement.xs.(i) <-
      Float.max (core.Geom.llx +. m) (Float.min (core.Geom.urx -. m) p.Placement.xs.(i));
    p.Placement.ys.(i) <-
      Float.max (core.Geom.lly +. m) (Float.min (core.Geom.ury -. m) p.Placement.ys.(i))
  done

let attraction_step (p : Placement.t) ~damping =
  let nl = p.Placement.netlist in
  let ncells = Netlist.cell_count nl in
  let sum_x = Array.make ncells 0.0 in
  let sum_y = Array.make ncells 0.0 in
  let cnt = Array.make ncells 0 in
  (* Star model: every pin of a net is attracted to the net's centroid. *)
  Array.iter
    (fun (net : Netlist.net) ->
      let cx = ref 0.0 and cy = ref 0.0 and k = ref 0 in
      let visit cid =
        cx := !cx +. p.Placement.xs.(cid);
        cy := !cy +. p.Placement.ys.(cid);
        incr k
      in
      (match net.Netlist.driver with Some d -> visit d | None -> ());
      Array.iter (fun (cid, _) -> visit cid) net.Netlist.sinks;
      if !k >= 2 then begin
        let cx = !cx /. float_of_int !k and cy = !cy /. float_of_int !k in
        let record cid =
          sum_x.(cid) <- sum_x.(cid) +. cx;
          sum_y.(cid) <- sum_y.(cid) +. cy;
          cnt.(cid) <- cnt.(cid) + 1
        in
        (match net.Netlist.driver with Some d -> record d | None -> ());
        Array.iter (fun (cid, _) -> record cid) net.Netlist.sinks
      end)
    nl.Netlist.nets;
  for i = 0 to ncells - 1 do
    if cnt.(i) > 0 then begin
      let tx = sum_x.(i) /. float_of_int cnt.(i) in
      let ty = sum_y.(i) /. float_of_int cnt.(i) in
      p.Placement.xs.(i) <- (damping *. tx) +. ((1.0 -. damping) *. p.Placement.xs.(i));
      p.Placement.ys.(i) <- (damping *. ty) +. ((1.0 -. damping) *. p.Placement.ys.(i))
    end
  done

(* Initial placement: recursive area bisection over functional-unit
   groups (a treemap), then random scatter within each group's tile.
   Connectivity is mostly intra-unit, so this starts the force-directed
   refinement close to a good basin; the attraction iterations then
   interleave cells near unit boundaries. *)
let init_by_unit (p : Placement.t) rng =
  let nl = p.Placement.netlist in
  let core = p.Placement.floorplan.Floorplan.core in
  let groups = Hashtbl.create 64 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let key = c.Netlist.unit_name in
      let cells, area =
        Option.value (Hashtbl.find_opt groups key) ~default:([], 0.0)
      in
      Hashtbl.replace groups key
        (c.Netlist.id :: cells, area +. c.Netlist.cell.Pvtol_stdcell.Cell.area))
    nl.Netlist.cells;
  let glist =
    Hashtbl.fold (fun k (cells, area) acc -> (k, cells, area) :: acc) groups []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let scatter (rect : Geom.rect) cells =
    List.iter
      (fun i ->
        p.Placement.xs.(i) <- rect.Geom.llx +. Srng.float rng (Geom.width rect);
        p.Placement.ys.(i) <- rect.Geom.lly +. Srng.float rng (Geom.height rect))
      cells
  in
  let rec split rect = function
    | [] -> ()
    | [ (_, cells, _) ] -> scatter rect cells
    | gs ->
      let total = List.fold_left (fun acc (_, _, a) -> acc +. a) 0.0 gs in
      (* Greedy half-split by area. *)
      let rec take acc_area acc = function
        | [] -> (List.rev acc, [])
        | ((_, _, a) as g) :: rest ->
          if acc_area +. a > total /. 2.0 && acc <> [] then (List.rev acc, g :: rest)
          else take (acc_area +. a) (g :: acc) rest
      in
      let first, second = take 0.0 [] gs in
      let frac =
        List.fold_left (fun acc (_, _, a) -> acc +. a) 0.0 first /. total
      in
      let r1, r2 =
        if Geom.width rect >= Geom.height rect then begin
          let xm = rect.Geom.llx +. (frac *. Geom.width rect) in
          ( Geom.rect ~llx:rect.Geom.llx ~lly:rect.Geom.lly ~urx:xm ~ury:rect.Geom.ury,
            Geom.rect ~llx:xm ~lly:rect.Geom.lly ~urx:rect.Geom.urx ~ury:rect.Geom.ury )
        end
        else begin
          let ym = rect.Geom.lly +. (frac *. Geom.height rect) in
          ( Geom.rect ~llx:rect.Geom.llx ~lly:rect.Geom.lly ~urx:rect.Geom.urx ~ury:ym,
            Geom.rect ~llx:rect.Geom.llx ~lly:ym ~urx:rect.Geom.urx ~ury:rect.Geom.ury )
        end
      in
      split r1 first;
      split r2 second
  in
  split core glist

let global_only ?(iterations = 48) ?(seed = 1) ?(damping = 0.6) nl fp =
  let p = Placement.create nl fp in
  let rng = Srng.create seed in
  init_by_unit p rng;
  for _ = 1 to iterations do
    attraction_step p ~damping;
    spread_step p
  done;
  p

let place ?iterations ?seed ?damping ?padding nl fp =
  let p = global_only ?iterations ?seed ?damping nl fp in
  Legalize.run ?padding p;
  p
