(** Row legalization: snap cells into non-overlapping row/site
    positions with minimal displacement from the global placement
    (an abacus-style per-row packing with row-overflow balancing). *)

val run : ?padding:float -> Placement.t -> unit
(** Legalize in place.  [padding] (default 0) inflates every footprint
    by that fraction during packing, leaving distributed whitespace
    between cells — the ECO-space reservation that keeps later
    incremental insertions (level shifters) local.  Postconditions
    (checked by tests): every cell lies on a row center, within the
    core; per-row footprints do not overlap; per-row total width fits
    the row capacity. *)

val check : Placement.t -> (unit, string list) result
(** Verify the legality postconditions. *)

val pack_one_row : Placement.t -> float array -> int -> int list -> unit
(** [pack_one_row p widths row cells] re-packs one row's cells (given
    per-cell footprint widths) with the minimal-displacement abacus
    pass, using their current x as the desired position.  Exposed for
    the incremental (ECO) inserter. *)
