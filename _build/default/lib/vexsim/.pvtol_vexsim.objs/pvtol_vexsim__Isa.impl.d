lib/vexsim/isa.ml: Array Int32 List String
