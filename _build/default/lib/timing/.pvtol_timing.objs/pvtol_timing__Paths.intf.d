lib/timing/paths.mli: Netlist Pvtol_netlist Sta Stage
