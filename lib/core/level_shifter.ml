open Pvtol_netlist
module Geom = Pvtol_util.Geom
module Placement = Pvtol_place.Placement
module Incremental = Pvtol_place.Incremental
module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind
module Metrics = Pvtol_util.Metrics

let m_shifters = Metrics.counter "level_shifters_inserted_total"

type t = {
  netlist : Netlist.t;
  placement : Placement.t;
  partition : Island.partition;
  domains : int array;
  first_ls : Netlist.cell_id;
  count : int;
  per_domain : (int * int) list;
  ls_area : float;
  ls_area_frac : float;
  displacement : Incremental.stats;
}

(* Crossing analysis: for each net, group sinks by domain and keep the
   groups whose domain is raised strictly earlier than the driver's.
   Primary-input nets come from off-core pads that are never raised, so
   their driver domain is "outside". *)
let crossings partition placement (nl : Netlist.t) =
  let cell_domains = Island.domains partition placement in
  let outside = Array.length partition.Island.islands + 1 in
  let result = ref [] in
  Array.iter
    (fun (net : Netlist.net) ->
      let driver_domain =
        match net.Netlist.driver with
        | Some d -> cell_domains.(d)
        | None ->
          (* Primary inputs come from full-swing pads; no shifting. *)
          0
      in
      ignore outside;
      if driver_domain > 1 then begin
        (* All sinks in strictly earlier domains share one shifter: the
           islands are nested and raised in index order, so a shifter
           supplied by the earliest (lowest-index) sink domain has its
           high rail up whenever any served sink's domain is up. *)
        let sinks = ref [] in
        let min_domain = ref max_int in
        Array.iter
          (fun (cid, pin) ->
            let dd = cell_domains.(cid) in
            if dd < driver_domain then begin
              sinks := (cid, pin) :: !sinks;
              if dd < !min_domain then min_domain := dd
            end)
          net.Netlist.sinks;
        if !sinks <> [] then
          result := (net.Netlist.net_id, !min_domain, !sinks) :: !result
      end)
    nl.Netlist.nets;
  (cell_domains, List.rev !result)

let count_crossings partition placement nl =
  let _, cs = crossings partition placement nl in
  List.length cs

let insert partition placement (nl : Netlist.t) =
  let pre_domains, cs = crossings partition placement nl in
  let n_old_cells = Netlist.cell_count nl in
  let n_old_nets = Netlist.net_count nl in
  (* Shifter drive strength follows the fanout it re-drives, as a
     buffer would be sized. *)
  let ls_template fanout =
    let drive =
      if fanout <= 4 then Cell_lib.X1
      else if fanout <= 12 then Cell_lib.X2
      else Cell_lib.X4
    in
    Cell_lib.find nl.Netlist.lib Kind.Ls drive
  in
  let n_ls = List.length cs in
  Metrics.add m_shifters n_ls;
  (* Mutable copies for surgery. *)
  let cells =
    Array.init (n_old_cells + n_ls) (fun i ->
        if i < n_old_cells then
          let c = nl.Netlist.cells.(i) in
          { c with fanins = Array.copy c.Netlist.fanins }
        else nl.Netlist.cells.(0) (* placeholder, overwritten below *))
  in
  let net_sinks =
    Array.init (n_old_nets + n_ls) (fun i ->
        if i < n_old_nets then
          ref (Array.to_list nl.Netlist.nets.(i).Netlist.sinks)
        else ref [])
  in
  let ls_positions = Array.make n_ls (Geom.point 0.0 0.0) in
  List.iteri
    (fun k (net_id, _domain, sinks) ->
      let ls_id = n_old_cells + k in
      let ls_net = n_old_nets + k in
      (* The shifter takes over the listed sinks. *)
      let in_group (cid, pin) = List.mem (cid, pin) sinks in
      net_sinks.(net_id) :=
        (ls_id, 0) :: List.filter (fun s -> not (in_group s)) !(net_sinks.(net_id));
      net_sinks.(ls_net) := sinks;
      List.iter
        (fun (cid, pin) -> cells.(cid).Netlist.fanins.(pin) <- ls_net)
        sinks;
      (* Tag the shifter with the stage of the logic it feeds. *)
      let rep = fst (List.hd sinks) in
      cells.(ls_id) <-
        {
          Netlist.id = ls_id;
          name = Printf.sprintf "ls%d" k;
          cell = ls_template (List.length sinks);
          stage = nl.Netlist.cells.(rep).Netlist.stage;
          unit_name = "level_shifter";
          fanins = [| net_id |];
          fanout = ls_net;
        };
      (* Target position: the sink nearest the driver among those in
         the shifter's own (earliest-raised) domain — the point where
         the net first enters that domain, which is where a boundary
         level shifter physically belongs.  Targets inherit the sinks'
         spread, so thousands of shifters do not contend for the same
         whitespace (a group centroid would pile them all onto one
         spot). *)
      let dxy =
        match nl.Netlist.nets.(net_id).Netlist.driver with
        | Some d -> Geom.point placement.Placement.xs.(d) placement.Placement.ys.(d)
        | None -> Geom.point 0.0 0.0
      in
      let in_home (cid, _) = pre_domains.(cid) = _domain in
      let candidates =
        match List.filter in_home sinks with [] -> sinks | l -> l
      in
      let pick, _ =
        List.fold_left
          (fun ((_, best) as acc) (cid, _) ->
            let dist =
              Geom.dist dxy
                (Geom.point placement.Placement.xs.(cid) placement.Placement.ys.(cid))
            in
            if dist < best then (cid, dist) else acc)
          (fst (List.hd candidates), infinity)
          candidates
      in
      ls_positions.(k) <-
        Geom.point placement.Placement.xs.(pick) placement.Placement.ys.(pick))
    cs;
  let nets =
    Array.init (n_old_nets + n_ls) (fun i ->
        if i < n_old_nets then
          {
            nl.Netlist.nets.(i) with
            Netlist.sinks = Array.of_list !(net_sinks.(i));
          }
        else
          {
            Netlist.net_id = i;
            net_name = Printf.sprintf "ls%d_o" (i - n_old_nets);
            driver = Some (n_old_cells + i - n_old_nets);
            sinks = Array.of_list !(net_sinks.(i));
            is_output = false;
          })
  in
  let netlist =
    { nl with Netlist.cells; nets }
  in
  (match Netlist.check netlist with
  | Ok () -> ()
  | Error (e :: _) -> failwith ("level-shifter insertion broke the netlist: " ^ e)
  | Error [] -> assert false);
  let new_placement, displacement =
    Incremental.insert placement netlist ~desired:(fun cid ->
        ls_positions.(cid - n_old_cells))
  in
  let domains = Island.domains partition new_placement in
  let per_domain =
    let tbl = Hashtbl.create 8 in
    for k = 0 to n_ls - 1 do
      let d = domains.(n_old_cells + k) in
      Hashtbl.replace tbl d (1 + Option.value (Hashtbl.find_opt tbl d) ~default:0)
    done;
    Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl []
    |> List.sort compare
  in
  let ls_area = ref 0.0 in
  for k = 0 to n_ls - 1 do
    ls_area := !ls_area +. cells.(n_old_cells + k).Netlist.cell.Cell_lib.area
  done;
  let ls_area = !ls_area in
  {
    netlist;
    placement = new_placement;
    partition;
    domains;
    first_ls = n_old_cells;
    count = n_ls;
    per_domain;
    ls_area;
    ls_area_frac = ls_area /. Netlist.area nl;
    displacement;
  }

let vdd_assignment t ~raised cid =
  let lib = t.netlist.Netlist.lib in
  Island.vdd_assignment t.partition ~domains:t.domains ~raised
    ~lib cid
