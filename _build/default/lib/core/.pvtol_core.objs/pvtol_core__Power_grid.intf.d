lib/core/power_grid.mli: Pvtol_netlist Pvtol_place
