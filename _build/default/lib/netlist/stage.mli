(** Pipeline-stage tags.

    Every cell of the design belongs to one of the six architectural
    groups of the paper's Table 1; the SSTA engine reports per-stage
    critical-path distributions over the four *timing* stages
    ({!timing_stages}), with register file accesses folded into the
    stages that exercise them (as in the paper, where the fully
    synthesized register file is read in decode and written in
    write-back). *)

type t = Fetch | Decode | Execute | Writeback | Pipe_regs | Reg_file

val all : t list

val timing_stages : t list
(** The stages whose critical paths Fig. 3 reports: decode, execute,
    write-back (plus fetch, which the paper excludes for lack of a
    memory model — we keep it in the list and exclude it in reports). *)

val name : t -> string
val of_name : string -> t option
val index : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
