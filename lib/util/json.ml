type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                              *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
    invalid_arg
      (Printf.sprintf "Json.to_string: non-finite number (%h) in document" f)
  | _ ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file file v =
  let text = to_string v in
  let oc = open_out file in
  output_string oc text;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let hi = try hex4 () with _ -> fail "bad \\u escape" in
           let cp =
             (* A high surrogate must pair with a following \uDC00-DFFF
                low surrogate to form one code point. *)
             if hi >= 0xD800 && hi <= 0xDBFF then
               if
                 !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = try hex4 () with _ -> fail "bad \\u escape" in
                 if lo < 0xDC00 || lo > 0xDFFF then fail "bad surrogate pair";
                 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else fail "lone high surrogate"
             else hi
           in
           utf8_of_code buf cp
         | _ -> fail "bad escape character");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_floaty =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if is_floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let read_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
