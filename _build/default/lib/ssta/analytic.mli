(** First-order analytic SSTA (the PERT-like single-traversal approach
    of the paper's §2 references [15, 16]), used to cross-check the
    Monte-Carlo engine.

    Every arrival time is carried as a Gaussian (mean, variance).
    Through a cell, the systematic part of the delay shifts the mean
    and the i.i.d. random Lgate component adds variance (first-order
    sensitivity of the Orshansky model); at multi-input joins the MAX
    of two Gaussians is approximated by a Gaussian using Clark's
    moment-matching formulas.

    Independence of path random variables is assumed (no spatial
    correlation of the random component — true in the paper's model —
    and reconvergent-path correlation ignored, the standard first-order
    simplification).  The Monte-Carlo comparison experiment quantifies
    the resulting error. *)

open Pvtol_netlist

type gaussian = { mean : float; var : float }

val clark_max : gaussian -> gaussian -> gaussian
(** Moment-matched Gaussian approximation of max(X, Y) for independent
    X, Y (Clark 1961, first two moments). *)

type result = {
  stage_delay : (Stage.t * gaussian) list;
      (** worst-endpoint delay distribution per capture stage *)
  worst : gaussian;
}

val analyze :
  sta:Pvtol_timing.Sta.t ->
  sampler:Pvtol_variation.Sampler.t ->
  systematic:float array ->
  ?vdd:(Netlist.cell_id -> float) ->
  unit ->
  result
(** Single-traversal statistical analysis at a die position (the
    systematic per-cell Lgate array comes from
    {!Pvtol_variation.Sampler.systematic_lgates}). *)

val three_sigma : gaussian -> float
