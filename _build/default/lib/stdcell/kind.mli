(** Logical cell kinds of the 65nm-class standard-cell library.

    Every kind carries an exact boolean semantics ({!eval}) so that
    generated datapath blocks (adders, shifters, multipliers) can be
    verified functionally against integer arithmetic, and so that the
    power engine can propagate switching activity through real logic. *)

type t =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21  (** !(a*b + c) *)
  | Oai21  (** !((a+b) * c) *)
  | Mux2   (** inputs a, b, sel: sel ? b : a *)
  | Dff    (** D flip-flop; input d, output q *)
  | Ls     (** level shifter low-Vdd -> high-Vdd; logically a buffer *)
  | Tiehi
  | Tielo

val all : t list

val arity : t -> int
(** Number of logic inputs (0 for tie cells, 1 for Dff's D pin). *)

val is_sequential : t -> bool
val is_level_shifter : t -> bool

val eval : t -> bool array -> bool
(** Combinational evaluation.  For [Dff] this evaluates the D pin
    transparently (the sequential behaviour lives in the simulator).
    Raises [Invalid_argument] on arity mismatch. *)

val name : t -> string
val of_name : string -> t option

val pp : Format.formatter -> t -> unit
