type t = {
  domains : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;  (* bumped per job; workers run each gen once *)
  mutable active : int;      (* workers still inside the current job *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

(* True while the current domain is executing a pool task: a nested
   parallel_chunks must not block on the pool it is already servicing. *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let domains t = t.domains

(* Telemetry: job/chunk counts are deterministic for a given workload;
   the wait/latency histograms are wall-clock and only sampled when
   metrics are enabled (gettimeofday stays off the disabled path). *)
let m_jobs = Metrics.counter "pool_jobs_total"
let m_chunks = Metrics.counter "pool_chunks_total"
let m_job_s = Metrics.histogram "pool_job_seconds"
let m_queue_wait_s = Metrics.histogram "pool_queue_wait_seconds"

(* A bad PVTOL_DOMAINS is a user mistake worth one loud warning, not a
   silent fall-through to the hardware default.  The latch is an
   Atomic (inside Log.once): two domains parsing PVTOL_DOMAINS
   concurrently still emit exactly one warning. *)
let env_warned = Log.once ()

let warn_env s reason =
  Log.warn_once env_warned
    "ignoring PVTOL_DOMAINS=%S (%s); using %d domains" s reason
    (max 1 (Domain.recommended_domain_count ()))

let env_domain_count () =
  match Sys.getenv_opt "PVTOL_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n 64)
    | Some n ->
      warn_env s
        (Printf.sprintf "must be a positive domain count, got %d" n);
      None
    | None ->
      warn_env s "not an integer";
      None)

let default_domain_count () =
  match env_domain_count () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let rec worker_loop t last_gen =
  let wait_t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  Mutex.lock t.lock;
  while (not t.stopped) && t.generation = last_gen do
    Condition.wait t.work_ready t.lock
  done;
  if t.stopped then Mutex.unlock t.lock
  else begin
    let gen = t.generation in
    let job = t.job in
    Mutex.unlock t.lock;
    if Metrics.enabled () then
      Metrics.observe m_queue_wait_s (Unix.gettimeofday () -. wait_t0);
    (match job with
    | Some f -> ( try f () with _ -> () (* jobs capture their own errors *))
    | None -> ());
    Mutex.lock t.lock;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock;
    worker_loop t gen
  end

let create ?domains () =
  let n =
    match domains with
    | None -> default_domain_count ()
    | Some n when n >= 1 -> min n 64
    | Some n -> invalid_arg (Printf.sprintf "Pool.create: domains = %d" n)
  in
  let t =
    {
      domains = n;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      active = 0;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let shared_pool = ref None

let shared () =
  match !shared_pool with
  | Some p when not p.stopped -> p
  | _ ->
    let p = create () in
    shared_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

(* Run [job] on every participating domain (workers + caller) and wait
   for all of them to leave it. *)
let run_job t job =
  Metrics.incr m_jobs;
  let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  Mutex.lock t.lock;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  t.active <- Array.length t.workers;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  (try job () with _ -> ());
  Mutex.lock t.lock;
  while t.active > 0 do
    Condition.wait t.work_done t.lock
  done;
  t.job <- None;
  Mutex.unlock t.lock;
  if Metrics.enabled () then
    Metrics.observe m_job_s (Unix.gettimeofday () -. t0)

(* Chunk counting lives in both execution paths so pool_chunks_total is
   the same for every domain count (the serial path serves 1-domain
   pools and nested fan-outs). *)
let serial_chunks ~chunks ~init ~f =
  let state = init ~worker:0 in
  Array.init chunks (fun c ->
      Metrics.incr m_chunks;
      f state c)

let parallel_chunks (type s a) t ~chunks ~(init : worker:int -> s)
    ~(f : s -> int -> a) : a array =
  if chunks < 0 then invalid_arg "Pool.parallel_chunks: negative chunks";
  if chunks = 0 then [||]
  else if
    Domain.DLS.get inside_task || t.stopped || t.domains = 1
    || Array.length t.workers = 0 || chunks = 1
  then serial_chunks ~chunks ~init ~f
  else begin
    let results : a option array = Array.make chunks None in
    let errors : exn option array = Array.make chunks None in
    let init_error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker_ids = Atomic.make 0 in
    let body () =
      Domain.DLS.set inside_task true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside_task false)
        (fun () ->
          let w = Atomic.fetch_and_add worker_ids 1 in
          match init ~worker:w with
          | exception e ->
            (* Remember one init failure; other domains drain the chunks. *)
            ignore (Atomic.compare_and_set init_error None (Some e))
          | state ->
            let continue = ref true in
            while !continue do
              let c = Atomic.fetch_and_add next 1 in
              if c >= chunks then continue := false
              else begin
                Metrics.incr m_chunks;
                match f state c with
                | v -> results.(c) <- Some v
                | exception e -> errors.(c) <- Some e
              end
            done)
    in
    run_job t body;
    (* Deterministic error reporting: lowest failing chunk wins. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some v -> v
        | None -> (
          (* Only possible if every domain's [init] raised. *)
          match Atomic.get init_error with
          | Some e -> raise e
          | None -> failwith "Pool.parallel_chunks: chunk not executed"))
      results
  end

let map t ~f arr =
  parallel_chunks t ~chunks:(Array.length arr)
    ~init:(fun ~worker:_ -> ())
    ~f:(fun () i -> f arr.(i))
