type opcode =
  | Nop
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Mul
  | Cmplt
  | Cmpeq
  | Movi
  | Ld
  | St
  | Brz
  | Brnz

type op = { opcode : opcode; rd : int; rs1 : int; rs2 : int; imm : int }
type bundle = op array

let slots = 4
let n_regs = 64

let nop = { opcode = Nop; rd = 0; rs1 = 0; rs2 = 0; imm = 0 }

let all_opcodes =
  [ Nop; Add; Sub; And; Or; Xor; Shl; Shr; Mul; Cmplt; Cmpeq; Movi; Ld; St; Brz; Brnz ]

let opcode_number op =
  let rec idx i = function
    | [] -> assert false
    | o :: rest -> if o = op then i else idx (i + 1) rest
  in
  idx 0 all_opcodes

let opcode_of_number n = List.nth_opt all_opcodes n

let opcode_name = function
  | Nop -> "nop"
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mul -> "mul"
  | Cmplt -> "cmplt"
  | Cmpeq -> "cmpeq"
  | Movi -> "movi"
  | Ld -> "ld"
  | St -> "st"
  | Brz -> "brz"
  | Brnz -> "brnz"

let opcode_of_name s =
  List.find_opt (fun o -> String.equal (opcode_name o) s) all_opcodes

let encode_op { opcode; rd; rs1; rs2; imm } =
  let ( |<< ) v n = Int32.shift_left (Int32.of_int (v land 0x3f)) n in
  let imm8 = Int32.shift_left (Int32.of_int (imm land 0xff)) 18 in
  Int32.logor (rs1 |<< 0)
    (Int32.logor (rs2 |<< 6)
       (Int32.logor (rd |<< 12)
          (Int32.logor imm8 (opcode_number opcode |<< 26))))

let decode_op w =
  let bits lo len = Int32.to_int (Int32.shift_right_logical w lo) land ((1 lsl len) - 1) in
  let opcode =
    match opcode_of_number (bits 26 6) with Some o -> o | None -> Nop
  in
  { opcode; rs1 = bits 0 6; rs2 = bits 6 6; rd = bits 12 6; imm = bits 18 8 }

let encode_bundle b =
  assert (Array.length b = slots);
  Array.map encode_op b

let uses_mem = function Ld | St -> true | _ -> false
let is_branch = function Brz | Brnz -> true | _ -> false

let writes_reg = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Mul | Cmplt | Cmpeq | Movi | Ld -> true
  | Nop | St | Brz | Brnz -> false
