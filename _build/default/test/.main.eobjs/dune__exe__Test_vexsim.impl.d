test/test_vexsim.ml: Alcotest Array List Option Printf Pvtol_vexsim QCheck QCheck_alcotest
