(** Global routing over a grid of gcells.

    Each net is decomposed into two-pin segments by a nearest-neighbour
    spanning tree over its pins and routed with L-shapes (both bends
    tried, the less congested chosen); a rip-up-and-reroute pass then
    re-routes the segments crossing overflowed edges with a
    congestion-aware cost.  The result gives per-net routed wirelength
    (replacing the HPWL/Steiner estimate) and a congestion map — which
    is what the paper's flow gets from Physical Compiler's global
    router, and what lets the experiments check that level-shifter
    insertion does not wreck routability. *)

open Pvtol_netlist

type config = {
  grid : int;                (** gcells per axis (default 32) *)
  tracks_per_edge : int;     (** capacity of each gcell boundary;
                                 0 = derive from the gcell pitch at a
                                 0.4 um track pitch across three layers
                                 per direction (the default) *)
  reroute_passes : int;      (** rip-up iterations (default 2) *)
}

val default_config : config

type result = {
  config : config;
  routed_um : float array;     (** per net: routed length (um), 0 for
                                   dead or single-pin nets *)
  total_um : float;
  total_hpwl_um : float;       (** for the detour ratio *)
  overflowed_edges : int;      (** edges above capacity after reroute *)
  max_utilization : float;     (** worst edge usage / capacity *)
  mean_utilization : float;    (** over used edges *)
}

val route : ?config:config -> Placement.t -> result

val wire_length : result -> Netlist.net_id -> float
(** Routed length of a net, suitable for [Sta.build]'s [wire_length]
    (falls back to nothing: single-pin nets are 0). *)
