lib/vexsim/isa.mli:
