(* Stage-graph implementation of the end-to-end methodology flow.  The
   [Sg] alias must be taken before [open Pvtol_netlist], which shadows
   the sibling [Stage] (the stage-graph combinators) with the pipeline
   stage enum. *)
module Sg = Stage
module Trace = Pvtol_util.Trace
module Pool = Pvtol_util.Pool
module Metrics = Pvtol_util.Metrics
module Log = Pvtol_util.Log
open Pvtol_netlist
module Vex_core = Pvtol_vex.Vex_core
module Floorplan = Pvtol_place.Floorplan
module Placer = Pvtol_place.Placer
module Placement = Pvtol_place.Placement
module Sta = Pvtol_timing.Sta
module Sizing = Pvtol_timing.Sizing
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module MC = Pvtol_ssta.Monte_carlo
module Scenario = Pvtol_ssta.Scenario
module Gatesim = Pvtol_power.Gatesim
module Power = Pvtol_power.Power
module Fir = Pvtol_vexsim.Fir

type config = {
  vex : Vex_core.config;
  place_seed : int;
  place_iterations : int;
  utilization : float;
      (** Initial row utilization.  Chosen below the paper's quoted
          ~70% so that, after area recovery *adds back* the
          level-shifter area (26-31% of the core, Table 2), the final
          utilization lands near 70% and incremental placement stays
          local. *)
  mc_samples : int;
  mc_seed : int;
  gatesim_cycles : int;
  fir_taps : int;
  fir_samples : int;
  corner_kappa : float;
}

let default_config =
  {
    vex = Vex_core.default_config;
    place_seed = 1;
    place_iterations = 48;
    utilization = 0.48;
    mc_samples = 400;
    mc_seed = 2024;
    gatesim_cycles = 512;
    fir_taps = 16;
    fir_samples = 64;
    corner_kappa = 0.35;
  }

let quick_config =
  {
    default_config with
    vex = Vex_core.small_config;
    place_iterations = 24;
    mc_samples = 120;
    gatesim_cycles = 128;
    fir_taps = 8;
    fir_samples = 16;
  }

type variant = {
  direction : Island.direction;
  slicing : Slicing.outcome;
  shifted : Level_shifter.t;
  sta_shifted : Sta.t;
  post_ls_worst : float;
  degradation : float;
  activity_shifted : Gatesim.activity;
}

type supply_config =
  | Baseline_low
  | Chip_wide_high
  | Islands of Island.direction * int

let supply_label = function
  | Baseline_low -> "low"
  | Chip_wide_high -> "high"
  | Islands (dir, raised) ->
    Printf.sprintf "islands-%s-%d" (Island.direction_name dir) raised

type t = {
  config : config;
  graph : Sg.graph;
  design_n : Vex_core.t Sg.node;
  placement0_n : Placement.t Sg.node;
  sizing_n : Sizing.report Sg.node;
  netlist_n : Netlist.t Sg.node;
  placement_n : Placement.t Sg.node;
  sta_n : Sta.t Sg.node;
  nominal_n : Sta.result Sg.node;
  clock_n : float Sg.node;
  sampler_n : Sampler.t Sg.node;
  fir_n : Fir.result Sg.node;
  activity_n : Gatesim.activity Sg.node;
  mc_k : (Position.t, MC.result) Sg.keyed;
  scenarios_n : Scenario.t list Sg.node;
  islands_k : (Island.direction, Slicing.outcome) Sg.keyed;
  variant_k : (Island.direction, variant) Sg.keyed;
  logic_grouping_n : (Logic_grouping.t, string) result Sg.node;
  power_k : (supply_config * Position.t, Power.report) Sg.keyed;
}

(* Targets for island growth, least severe first: island 1 compensates
   the single-stage scenario at C, island 2 the two-stage scenario at
   B, island 3 the full corner A. *)
let growth_targets =
  [
    { Slicing.scenario_index = 1; position = Position.point_c };
    { Slicing.scenario_index = 2; position = Position.point_b };
    { Slicing.scenario_index = 3; position = Position.point_a };
  ]

let m_prepares = Metrics.counter "flow_prepares_total"

let prepare ?(config = default_config) () =
  Metrics.incr m_prepares;
  Log.debug "flow: preparing stage graph (mc_samples=%d, place_seed=%d)"
    config.mc_samples config.place_seed;
  let g = Sg.create () in
  let design_n =
    Sg.node g ~name:"design" (fun () -> Vex_core.build config.vex)
  in
  let placement0_n =
    Sg.node g ~name:"placement" ~deps:[ "design" ] (fun () ->
        let design = Sg.get design_n in
        let nl0 = design.Vex_core.netlist in
        let fp =
          Floorplan.create ~utilization:config.utilization
            ~cell_area:(Netlist.area nl0) ()
        in
        Placer.place ~iterations:config.place_iterations
          ~seed:config.place_seed nl0 fp)
  in
  (* Wire-length estimates and the capture-stage map are shared by every
     timing stage; both resolve their stage-graph inputs lazily. *)
  let wire nid = Placement.wire_length (Sg.get placement0_n) nid in
  let capture cell = (Sg.get design_n).Vex_core.capture_stage cell in
  let sizing_n =
    Sg.node g ~name:"sizing" ~deps:[ "design"; "placement" ] (fun () ->
        let nl0 = (Sg.get design_n).Vex_core.netlist in
        let sta0 = Sta.build nl0 ~wire_length:wire ~capture in
        let r0 = Sta.analyze sta0 ~delays:(Sta.nominal_delays sta0) in
        let initial_clock =
          match Sta.stage_delay r0 Stage.Execute with
          | Some d -> d
          | None -> r0.Sta.worst
        in
        Sizing.fit ~clock:initial_clock ~frac:Sizing.balanced_fracs
          ~wire_length:wire ~capture nl0)
  in
  let netlist_n =
    Sg.node g ~name:"netlist" ~deps:[ "sizing" ] (fun () ->
        (Sg.get sizing_n).Sizing.netlist)
  in
  let placement_n =
    Sg.node g ~name:"placed" ~deps:[ "placement"; "netlist" ] (fun () ->
        { (Sg.get placement0_n) with Placement.netlist = Sg.get netlist_n })
  in
  let sta_n =
    Sg.node g ~name:"sta" ~deps:[ "netlist"; "placement"; "design" ] (fun () ->
        Sta.build (Sg.get netlist_n) ~wire_length:wire ~capture)
  in
  let nominal_n =
    Sg.node g ~name:"timing" ~deps:[ "sta" ] (fun () ->
        let sta = Sg.get sta_n in
        Sta.analyze sta ~delays:(Sta.nominal_delays sta))
  in
  (* The nominal clock is set by the execute-stage critical path, which
     determines fmax (256 MHz in the paper's testbed). *)
  let clock_n =
    Sg.node g ~name:"clock" ~deps:[ "timing" ] (fun () ->
        let r = Sg.get nominal_n in
        match Sta.stage_delay r Stage.Execute with
        | Some d -> d
        | None -> r.Sta.worst)
  in
  let sampler_n = Sg.node g ~name:"sampler" (fun () -> Sampler.create ()) in
  let fir_n =
    Sg.node g ~name:"fir" (fun () ->
        Fir.run ~taps:config.fir_taps ~samples:config.fir_samples ())
  in
  let activity_n =
    Sg.node g ~name:"activity" ~deps:[ "netlist"; "fir" ] (fun () ->
        let netlist = Sg.get netlist_n in
        let stim, _ =
          Gatesim.trace_stimulus netlist ~instr_prefix:"instr"
            ~words:(Sg.get fir_n).Fir.trace
            ~fallback:(Gatesim.random_stimulus ~seed:(config.mc_seed + 1))
        in
        Gatesim.run ~cycles:config.gatesim_cycles netlist stim)
  in
  let mc_k =
    Sg.keyed g ~name:"mc"
      ~deps:(fun _ -> [ "sta"; "placed"; "sampler" ])
      ~key_label:(fun (p : Position.t) -> p.Position.label)
      (fun position ->
        MC.run
          ~config:{ MC.samples = config.mc_samples; seed = config.mc_seed }
          ~sampler:(Sg.get sampler_n) ~sta:(Sg.get sta_n)
          ~placement:(Sg.get placement_n) ~position ())
  in
  (* All four die positions as parallel tasks; each task's own MC
     fan-out then runs serially inside its worker (the pool's nested-use
     guard), so this trades chunk-level for position-level parallelism
     with bit-identical results.  Already-memoized positions return
     instantly inside their task. *)
  let mc_all () =
    Pool.map (Pool.shared ())
      ~f:(fun p -> (p, Sg.get_keyed mc_k p))
      (Array.of_list Position.named)
    |> Array.to_list
  in
  let scenarios_n =
    Sg.node g ~name:"scenarios" ~deps:[ "clock"; "mc" ] (fun () ->
        let clock = Sg.get clock_n in
        List.map (fun (_, r) -> Scenario.classify ~clock r) (mc_all ()))
  in
  let islands_k =
    Sg.keyed g ~name:"islands"
      ~deps:(fun _ -> [ "sta"; "placed"; "sampler"; "clock" ])
      ~key_label:Island.direction_name
      (fun direction ->
        Slicing.generate ~corner_kappa:config.corner_kappa ~direction
          ~sta:(Sg.get sta_n) ~placement:(Sg.get placement_n)
          ~sampler:(Sg.get sampler_n) ~clock:(Sg.get clock_n)
          ~targets:growth_targets ())
  in
  let variant_k =
    Sg.keyed g ~name:"shifters"
      ~deps:(fun d ->
        [ "islands[" ^ Island.direction_name d ^ "]"; "netlist"; "placed";
          "clock"; "fir" ])
      ~key_label:Island.direction_name
      (fun direction ->
        let slicing = Sg.get_keyed islands_k direction in
        let netlist = Sg.get netlist_n in
        let placement = Sg.get placement_n in
        let clock = Sg.get clock_n in
        let shifted =
          Level_shifter.insert slicing.Slicing.partition placement netlist
        in
        let wire nid =
          Placement.wire_length shifted.Level_shifter.placement nid
        in
        (* Fig. 1's final step: incremental placement (done inside the
           insertion) and timing closure — upsizing recovers the paths
           that shifter insertion and cell displacement stretched.
           Residual violation shows up as the paper's post-insertion
           performance degradation (8% vertical / 15% horizontal in
           their testbed). *)
        let closure =
          Sizing.close_timing ~frac:Sizing.balanced_fracs
            ~clock:(clock *. 1.08) ~wire_length:wire ~capture
            shifted.Level_shifter.netlist
        in
        let shifted =
          { shifted with Level_shifter.netlist = closure.Sizing.netlist }
        in
        let shifted =
          {
            shifted with
            Level_shifter.placement =
              {
                shifted.Level_shifter.placement with
                Placement.netlist = shifted.Level_shifter.netlist;
              };
          }
        in
        let sta_shifted =
          Sta.build shifted.Level_shifter.netlist ~wire_length:wire ~capture
        in
        let r =
          Sta.analyze sta_shifted ~delays:(Sta.nominal_delays sta_shifted)
        in
        let stim, _ =
          Gatesim.trace_stimulus shifted.Level_shifter.netlist
            ~instr_prefix:"instr" ~words:(Sg.get fir_n).Fir.trace
            ~fallback:(Gatesim.random_stimulus ~seed:(config.mc_seed + 1))
        in
        let activity_shifted =
          Gatesim.run ~cycles:config.gatesim_cycles
            shifted.Level_shifter.netlist stim
        in
        {
          direction;
          slicing;
          shifted;
          sta_shifted;
          post_ls_worst = r.Sta.worst;
          degradation = (r.Sta.worst -. clock) /. clock;
          activity_shifted;
        })
  in
  let logic_grouping_n =
    Sg.node g ~name:"logic_grouping"
      ~deps:[ "sta"; "placed"; "sampler"; "clock" ] (fun () ->
        try
          Ok
            (Logic_grouping.generate ~corner_kappa:config.corner_kappa
               ~sta:(Sg.get sta_n) ~placement:(Sg.get placement_n)
               ~sampler:(Sg.get sampler_n) ~clock:(Sg.get clock_n)
               ~targets:growth_targets ())
        with Logic_grouping.Infeasible m -> Error m)
  in
  let power_k =
    Sg.keyed g ~name:"power"
      ~deps:(fun (cfg, _) ->
        match cfg with
        | Baseline_low | Chip_wide_high ->
          [ "netlist"; "placed"; "sampler"; "activity"; "clock" ]
        | Islands (dir, _) ->
          [ "shifters[" ^ Island.direction_name dir ^ "]"; "sampler"; "clock" ])
      ~key_label:(fun (cfg, (pos : Position.t)) ->
        supply_label cfg ^ "@" ^ pos.Position.label)
      (fun (cfg, position) ->
        let netlist = Sg.get netlist_n in
        let clock = Sg.get clock_n in
        let sampler = Sg.get sampler_n in
        let process = netlist.Netlist.lib.Pvtol_stdcell.Cell.process in
        let low = process.Pvtol_stdcell.Process.vdd_low in
        let high = process.Pvtol_stdcell.Process.vdd_high in
        match cfg with
        | Baseline_low | Chip_wide_high ->
          let v = match cfg with Baseline_low -> low | _ -> high in
          let placement = Sg.get placement_n in
          let systematic =
            Sampler.systematic_lgates sampler placement position
          in
          Power.analyze
            ~lgate_nm:(fun i -> systematic.(i))
            ~vdd:(fun _ -> v)
            ~activity:(Sg.get activity_n)
            ~wire_length:(fun nid -> Placement.wire_length placement nid)
            ~clock_ns:clock netlist
        | Islands (dir, raised) ->
          let v = Sg.get_keyed variant_k dir in
          let shifted = v.shifted in
          let systematic =
            Sampler.systematic_lgates sampler
              shifted.Level_shifter.placement position
          in
          Power.analyze
            ~lgate_nm:(fun i -> systematic.(i))
            ~vdd:(fun cid -> Level_shifter.vdd_assignment shifted ~raised cid)
            ~activity:v.activity_shifted
            ~wire_length:(fun nid ->
              Placement.wire_length shifted.Level_shifter.placement nid)
            ~clock_ns:clock shifted.Level_shifter.netlist)
  in
  {
    config;
    graph = g;
    design_n;
    placement0_n;
    sizing_n;
    netlist_n;
    placement_n;
    sta_n;
    nominal_n;
    clock_n;
    sampler_n;
    fir_n;
    activity_n;
    mc_k;
    scenarios_n;
    islands_k;
    variant_k;
    logic_grouping_n;
    power_k;
  }

(* ------------------------------------------------------------------ *)
(* Accessors: force the stage (memoized) and return its value.         *)

let config t = t.config
let graph t = t.graph
let trace t = Sg.trace t.graph
let design t = Sg.get t.design_n
let netlist t = Sg.get t.netlist_n
let placement t = Sg.get t.placement_n
let sta t = Sg.get t.sta_n
let nominal t = Sg.get t.nominal_n
let clock t = Sg.get t.clock_n
let sizing t = Sg.get t.sizing_n
let sampler t = Sg.get t.sampler_n
let fir t = Sg.get t.fir_n
let activity t = Sg.get t.activity_n
let mc t position = Sg.get_keyed t.mc_k position

let mc_all t =
  Pool.map (Pool.shared ())
    ~f:(fun p -> (p, Sg.get_keyed t.mc_k p))
    (Array.of_list Position.named)
  |> Array.to_list

let scenarios t = Sg.get t.scenarios_n
let islands t direction = Sg.get_keyed t.islands_k direction
let variant t direction = Sg.get_keyed t.variant_k direction
let logic_grouping t = Sg.get t.logic_grouping_n

let power_at t ?(position = Position.point_a) cfg =
  Sg.get_keyed t.power_k (cfg, position)
