(* Tests for the STA engine, path extraction, SDF interchange and the
   sizing passes. *)

open Pvtol_netlist
module Builder = Netlist.Builder
module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell
module Sta = Pvtol_timing.Sta
module Paths = Pvtol_timing.Paths
module Sdf = Pvtol_timing.Sdf
module Sizing = Pvtol_timing.Sizing

let lib = Cell.default_library
let stage = Stage.Execute
let no_wire _ = 0.0
let capture_all (c : Netlist.cell) =
  if Kind.is_sequential c.Netlist.cell.Cell.kind then Some Stage.Execute else None

(* A hand-built chain: DFF -> inv -> inv -> inv -> DFF. *)
let chain_netlist n_invs =
  let b = Builder.create ~design_name:"chain" lib in
  let stub = Builder.placeholder b "d0" in
  let q = Builder.add b ~stage ~unit_name:"launch" Kind.Dff [| stub |] in
  let rec invs net k =
    if k = 0 then net
    else invs (Builder.add b ~stage ~unit_name:"chain" Kind.Inv [| net |]) (k - 1)
  in
  let last = invs q n_invs in
  let q2 = Builder.add b ~stage ~unit_name:"capture" Kind.Dff [| last |] in
  (* Tie the launch flop's D to the capture flop's Q to close the loop. *)
  (match Builder.driver_of b q with
  | Some cell -> Builder.rewire b ~cell ~pin:0 q2
  | None -> assert false);
  Builder.freeze b

let test_sta_chain_arithmetic () =
  let nl = chain_netlist 3 in
  let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  (* Expected: clk->q of launch + 3 inverter delays + setup; compute the
     same quantity from the per-cell delays. *)
  let launch = nl.Netlist.cells.(0) in
  let expected =
    delays.(launch.Netlist.id)
    +. delays.(1) +. delays.(2) +. delays.(3)
    +. lib.Cell.setup
  in
  Alcotest.(check bool) "worst = chain sum" true
    (Float.abs (r.Sta.worst -. expected) < 1e-9);
  (* Only one capture stage. *)
  Alcotest.(check int) "one stage entry" 1 (List.length r.Sta.stage_worst)

let test_sta_uses_max_path () =
  (* Two parallel paths of different depth into the same flop. *)
  let b = Builder.create lib in
  let stub = Builder.placeholder b "d" in
  let q = Builder.add b ~stage ~unit_name:"l" Kind.Dff [| stub |] in
  let short = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| q |] in
  let deep1 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| q |] in
  let deep2 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| deep1 |] in
  let deep3 = Builder.add b ~stage ~unit_name:"u" Kind.Inv [| deep2 |] in
  let join = Builder.add b ~stage ~unit_name:"u" Kind.Nand2 [| short; deep3 |] in
  let q2 = Builder.add b ~stage ~unit_name:"c" Kind.Dff [| join |] in
  (match Builder.driver_of b q with
  | Some cell -> Builder.rewire b ~cell ~pin:0 q2
  | None -> assert false);
  let nl = Builder.freeze b in
  let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  (* Trace must follow the deep branch: 1 launch + 3 inv + nand + capture. *)
  match Paths.critical sta ~delays r with
  | Some path ->
    Alcotest.(check int) "deep path hop count" 5 (List.length path.Paths.hops);
    (* Hop arrivals are non-decreasing. *)
    let rec monotone = function
      | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "arrivals non-decreasing" true
          (a.Paths.arrival_out <= b.Paths.arrival_out +. 1e-12);
        monotone rest
      | _ -> ()
    in
    monotone path.Paths.hops
  | None -> Alcotest.fail "critical path expected"

let test_delay_monotonicity =
  QCheck.Test.make ~name:"increasing any cell delay never reduces worst"
    ~count:50 (QCheck.int_bound 1000)
    (fun cell_pick ->
      let nl = chain_netlist 5 in
      let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
      let delays = Sta.nominal_delays sta in
      let r0 = Sta.analyze sta ~delays in
      let i = cell_pick mod Netlist.cell_count nl in
      delays.(i) <- delays.(i) +. 0.5;
      let r1 = Sta.analyze sta ~delays in
      r1.Sta.worst >= r0.Sta.worst -. 1e-12)

let small_sta =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     let p = Pvtol_place.Placer.place nl fp in
     let wire nid = Pvtol_place.Placement.wire_length p nid in
     (v, nl, wire, Sta.build nl ~wire_length:wire ~capture:v.Pvtol_vex.Vex_core.capture_stage))

let test_required_consistency () =
  let _, _, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  let clock = r.Sta.worst in
  let req = Sta.required sta ~delays ~clock in
  (* At the clock = worst delay, every net slack is >= 0 and the worst
     endpoint's D-net slack is ~0. *)
  let min_slack = ref infinity in
  Array.iteri
    (fun nid a ->
      if Float.is_finite req.(nid) then begin
        let s = req.(nid) -. a in
        if s < !min_slack then min_slack := s
      end)
    r.Sta.arrival;
  Alcotest.(check bool) "no negative slack at clock=worst" true (!min_slack >= -1e-9);
  Alcotest.(check bool) "critical net slack ~ 0" true (!min_slack < 1e-6)

let test_stage_worst_bounds_global () =
  let _, _, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  let max_stage =
    List.fold_left (fun acc (_, d, _) -> Float.max acc d) 0.0 r.Sta.stage_worst
  in
  Alcotest.(check bool) "max over stages = global worst" true
    (Float.abs (max_stage -. r.Sta.worst) < 1e-9)

let test_vdd_scaling_speeds_up () =
  let _, nl, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r0 = Sta.analyze sta ~delays in
  let p = nl.Netlist.lib.Cell.process in
  let s =
    Pvtol_stdcell.Process.delay_scale p ~vdd:p.Pvtol_stdcell.Process.vdd_high
      ~lgate_nm:p.Pvtol_stdcell.Process.l_nominal_nm
  in
  let fast = Sta.scaled_delays sta ~scale:(fun _ -> s) in
  let r1 = Sta.analyze sta ~delays:fast in
  Alcotest.(check bool) "high vdd strictly faster" true (r1.Sta.worst < r0.Sta.worst)

(* --- SDF --- *)

let test_sdf_roundtrip () =
  let _, nl, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let text = Sdf.to_string nl ~delays in
  let back = Sdf.of_string nl text in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i d -> max_err := Float.max !max_err (Float.abs (d -. back.(i))))
    delays;
  Alcotest.(check bool) "delays survive (ps precision)" true (!max_err < 1e-5)

let test_sdf_rewrite () =
  let nl = chain_netlist 2 in
  let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
  let delays = Sta.nominal_delays sta in
  let text = Sdf.to_string nl ~delays in
  let doubled = Sdf.rewrite nl text ~f:(fun _ d -> d *. 2.0) in
  let back = Sdf.of_string nl doubled in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool) "doubled" true (Float.abs (back.(i) -. (2.0 *. d)) < 1e-5))
    delays

let test_sdf_errors () =
  let nl = chain_netlist 1 in
  (try
     ignore (Sdf.of_string nl "(DELAYFILE)");
     Alcotest.fail "missing delays should fail"
   with Sdf.Parse_error _ -> ());
  try
    ignore
      (Sdf.of_string nl
         "(CELL (CELLTYPE \"INV_X1\") (INSTANCE nosuch) (DELAY (ABSOLUTE (IOPATH i o (0.1)))))");
    Alcotest.fail "unknown instance should fail"
  with Sdf.Parse_error _ -> ()

(* --- sizing --- *)

let test_recover_reduces_area_meets_clock () =
  let v, nl, wire, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  let clock = r.Sta.worst *. 1.02 in
  let rep =
    Sizing.recover ~clock ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage nl
  in
  Alcotest.(check bool) "area reduced" true
    (rep.Sizing.area_after < rep.Sizing.area_before);
  let sta2 =
    Sta.build rep.Sizing.netlist ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage
  in
  let r2 = Sta.analyze sta2 ~delays:(Sta.nominal_delays sta2) in
  Alcotest.(check bool) "clock still met" true (r2.Sta.worst <= clock +. 1e-9)

let test_fit_meets_stage_budgets () =
  let v, nl, wire, sta = Lazy.force small_sta in
  let r = Sta.analyze sta ~delays:(Sta.nominal_delays sta) in
  let clock =
    match Sta.stage_delay r Stage.Execute with Some d -> d | None -> r.Sta.worst
  in
  let rep =
    Sizing.fit ~clock ~frac:Sizing.balanced_fracs ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage nl
  in
  let sta2 =
    Sta.build rep.Sizing.netlist ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage
  in
  let r2 = Sta.analyze sta2 ~delays:(Sta.nominal_delays sta2) in
  List.iter
    (fun (s, d, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within budget" (Stage.name s))
        true
        (d <= (clock *. Sizing.balanced_fracs s) +. 1e-9))
    r2.Sta.stage_worst

let test_close_timing_fixes_violation () =
  let v, nl, wire, sta = Lazy.force small_sta in
  let r = Sta.analyze sta ~delays:(Sta.nominal_delays sta) in
  (* Downsize everything to X0, then ask closure to recover a clock the
     original netlist met. *)
  let slow =
    Netlist.remap_cells nl (fun c ->
        Cell.find lib c.Netlist.cell.Cell.kind Cell.X0)
  in
  let clock = r.Sta.worst *. 1.05 in
  let rep =
    Sizing.close_timing ~clock ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage slow
  in
  let sta2 =
    Sta.build rep.Sizing.netlist ~wire_length:wire
      ~capture:v.Pvtol_vex.Vex_core.capture_stage
  in
  let r2 = Sta.analyze sta2 ~delays:(Sta.nominal_delays sta2) in
  Alcotest.(check bool) "violation repaired" true (r2.Sta.worst <= clock +. 1e-9)

let test_worst_endpoints_sorted () =
  let _, _, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  let eps = Paths.worst_endpoints sta r ~k:10 in
  Alcotest.(check int) "k endpoints" 10 (List.length eps);
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted slowest first" true (sorted eps);
  Alcotest.(check bool) "head is the worst" true
    (Float.abs (snd (List.hd eps) -. r.Sta.worst) < 1e-9)

(* --- clock tree + skew-aware STA --- *)

let test_uniform_skew_is_invisible () =
  let _, _, _, sta = Lazy.force small_sta in
  let delays = Sta.nominal_delays sta in
  let r0 = Sta.analyze sta ~delays in
  let r1 = Sta.analyze ~skew:(fun _ -> 0.3) sta ~delays in
  (* Shifting every clock edge equally changes no reg-to-reg path. *)
  Alcotest.(check bool) "uniform skew cancels" true
    (Float.abs (r0.Sta.worst -. r1.Sta.worst) < 1e-9)

let test_capture_skew_relaxes_endpoint () =
  (* Long chain so the chain path dominates even after relaxation (the
     skewed flop's own launch path through the feedback also grows by
     the same amount). *)
  let nl = chain_netlist 12 in
  let capture_id = Netlist.cell_count nl - 1 in
  let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
  let delays = Sta.nominal_delays sta in
  let r0 = Sta.analyze sta ~delays in
  let skew cid = if cid = capture_id then 0.05 else 0.0 in
  let r1 = Sta.analyze ~skew sta ~delays in
  Alcotest.(check bool) "late capture relaxes" true
    (Float.abs (r1.Sta.worst -. (r0.Sta.worst -. 0.05)) < 1e-9)

let test_clock_tree () =
  let module CT = Pvtol_timing.Clock_tree in
  let _, _, _, sta = Lazy.force small_sta in
  let v, _, _, _ = Lazy.force small_sta in
  ignore v;
  let flops = Sta.flop_ids sta in
  let p =
    (* Rebuild the placement used by small_sta. *)
    let _, nl, _, _ = Lazy.force small_sta in
    let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
    Pvtol_place.Placer.place nl fp
  in
  let ct = CT.synthesize p ~flops in
  Alcotest.(check int) "every flop served" (Array.length flops)
    (List.length ct.CT.insertion_delay);
  Alcotest.(check bool) "has buffers" true (ct.CT.n_buffers > 0);
  Alcotest.(check bool) "positive wirelength" true (ct.CT.wirelength > 0.0);
  Alcotest.(check bool) "skew nonnegative" true (ct.CT.skew >= 0.0);
  List.iter
    (fun (_, d) -> Alcotest.(check bool) "insertion delay positive" true (d > 0.0))
    ct.CT.insertion_delay;
  (* skew_of is normalized to min 0. *)
  let f = CT.skew_of ct in
  let mn =
    Array.fold_left (fun a cid -> Float.min a (f cid)) infinity flops
  in
  Alcotest.(check bool) "normalized offsets" true (Float.abs mn < 1e-12);
  (* Deterministic. *)
  let ct2 = CT.synthesize p ~flops in
  Alcotest.(check bool) "deterministic" true
    (ct.CT.skew = ct2.CT.skew && ct.CT.n_buffers = ct2.CT.n_buffers);
  (* The skew is small relative to the cycle: the ideal-clock
     assumption of the main flow holds. *)
  let r = Sta.analyze sta ~delays:(Sta.nominal_delays sta) in
  Alcotest.(check bool) "skew below 10% of clock" true
    (ct.CT.skew < 0.1 *. r.Sta.worst)

let test_wireload_model () =
  let nl = chain_netlist 1 in
  let n0 = Sta.wireload_model nl 0 in
  Alcotest.(check bool) "wireload positive" true (n0 > 0.0)

let qcheck = QCheck_alcotest.to_alcotest

let test_analyze_into_matches_analyze () =
  (* analyze_into on a reused workspace must be bit-identical to the
     allocating analyze, across successive delay vectors. *)
  let nl = chain_netlist 4 in
  let sta = Sta.build nl ~wire_length:(fun _ -> 7.5) ~capture:capture_all in
  let ws = Sta.workspace sta in
  List.iter
    (fun scale ->
      let delays = Sta.scaled_delays sta ~scale:(fun _ -> scale) in
      let r = Sta.analyze sta ~delays in
      Sta.analyze_into sta ws ~delays;
      Alcotest.(check bool) "worst equal" true (Sta.ws_worst ws = r.Sta.worst);
      Alcotest.(check int) "worst endpoint equal" r.Sta.worst_endpoint
        (Sta.ws_worst_endpoint ws);
      List.iter
        (fun (s, d, _) ->
          Alcotest.(check bool)
            (Stage.name s ^ " stage delay equal")
            true
            (Sta.ws_stage_delay ws s = Some d))
        r.Sta.stage_worst;
      Array.iter
        (fun cid ->
          Alcotest.(check bool) "endpoint delay equal" true
            (Sta.ws_endpoint_delay ws cid = r.Sta.endpoint_delay.(cid)))
        (Sta.flop_ids sta))
    [ 1.0; 1.3; 0.8 ]

(* A more interesting graph than the chain for the batch/incremental
   equivalence tests: the small VEX core, with reconvergence and
   several capture stages. *)
let vex_sta =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     (nl, Sta.build nl ~wire_length:(fun _ -> 5.0)
            ~capture:v.Pvtol_vex.Vex_core.capture_stage))

let all_stages = [ Stage.Fetch; Stage.Decode; Stage.Execute; Stage.Writeback ]

(* Deterministic per-(cell, lane) delay wiggle. *)
let wiggled base i lane =
  base.(i) *. (1.0 +. (0.1 *. sin (float_of_int ((i * 7) + (lane * 131)))))

let check_ws_matches_lane label sta ws bw lane =
  Alcotest.(check bool)
    (label ^ ": worst") true
    (Sta.ws_worst ws = Sta.bw_worst bw lane);
  Alcotest.(check int)
    (label ^ ": worst endpoint")
    (Sta.ws_worst_endpoint ws)
    (Sta.bw_worst_endpoint bw lane);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (label ^ ": " ^ Stage.name s ^ " delay")
        true
        (Sta.ws_stage_delay ws s = Sta.bw_stage_delay bw s lane))
    all_stages;
  Array.iter
    (fun cid ->
      if Sta.ws_endpoint_delay ws cid <> Sta.bw_endpoint_delay sta bw cid lane
      then Alcotest.failf "%s: endpoint %d differs" label cid)
    (Sta.flop_ids sta)

let test_analyze_batch_matches_scalar () =
  (* Every lane of a batched pass must be bit-identical to a scalar
     [analyze_into] of that lane's delay column — including a partial
     batch ([lanes] below the stride) and a skewed clock. *)
  let _, sta = Lazy.force vex_sta in
  let base = Sta.nominal_delays sta in
  let n = Array.length base in
  let bw = Sta.batch_workspace ~lanes:8 sta in
  let stride = Sta.batch_stride bw in
  let block = Sta.batch_delays bw in
  let ws = Sta.workspace sta in
  let scalar = Array.make n 0.0 in
  let skews =
    [ ("no skew", None); ("skewed", Some (fun cid -> 0.01 *. float_of_int (cid mod 5))) ]
  in
  List.iter
    (fun (sname, skew) ->
      let lanes = 5 in
      for i = 0 to n - 1 do
        for k = 0 to lanes - 1 do
          block.((i * stride) + k) <- wiggled base i k
        done
      done;
      (match skew with
      | None -> Sta.analyze_batch_into sta bw ~lanes
      | Some sk -> Sta.analyze_batch_into ~skew:sk sta bw ~lanes);
      for k = 0 to lanes - 1 do
        for i = 0 to n - 1 do
          scalar.(i) <- wiggled base i k
        done;
        (match skew with
        | None -> Sta.analyze_into sta ws ~delays:scalar
        | Some sk -> Sta.analyze_into ~skew:sk sta ws ~delays:scalar);
        check_ws_matches_lane
          (Printf.sprintf "%s lane %d" sname k)
          sta ws bw k
      done)
    skews

let test_analyze_incremental_matches_full () =
  (* The default-bound incremental pass must stay bit-identical to a
     full pass across a settle-loop-like sequence of delay vectors:
     first call (cold), a sparse island raise, a single-cell change, an
     identical re-analysis, a whole-netlist change (fallback), and a
     post-invalidate call. *)
  let _, sta = Lazy.force vex_sta in
  let base = Sta.nominal_delays sta in
  let n = Array.length base in
  let iw = Sta.inc_workspace sta in
  let ws_full = Sta.workspace sta in
  let delays = Array.make n 0.0 in
  let apply label f =
    f ();
    Sta.analyze_incremental_into sta iw ~delays;
    Sta.analyze_into sta ws_full ~delays;
    let ws = Sta.inc_ws iw in
    Alcotest.(check bool) (label ^ ": worst") true
      (Sta.ws_worst ws = Sta.ws_worst ws_full);
    Alcotest.(check int) (label ^ ": worst endpoint")
      (Sta.ws_worst_endpoint ws_full)
      (Sta.ws_worst_endpoint ws);
    List.iter
      (fun s ->
        Alcotest.(check bool) (label ^ ": " ^ Stage.name s) true
          (Sta.ws_stage_delay ws s = Sta.ws_stage_delay ws_full s))
      all_stages;
    Array.iter
      (fun cid ->
        if Sta.ws_endpoint_delay ws cid <> Sta.ws_endpoint_delay ws_full cid
        then Alcotest.failf "%s: endpoint %d differs" label cid)
      (Sta.flop_ids sta)
  in
  apply "cold start" (fun () -> Array.blit base 0 delays 0 n);
  apply "island raise" (fun () ->
      for i = 0 to n - 1 do
        delays.(i) <- (if i mod 3 = 0 then 0.8 *. base.(i) else base.(i))
      done);
  apply "single cell" (fun () -> delays.(n / 2) <- delays.(n / 2) *. 1.5);
  apply "identical re-analysis" (fun () -> ());
  apply "whole netlist (fallback)" (fun () ->
      for i = 0 to n - 1 do
        delays.(i) <- base.(i) *. 1.07
      done);
  Sta.inc_invalidate iw;
  apply "after invalidate" (fun () -> ())

let test_analyze_incremental_bound () =
  (* A positive [bound] leaves sub-bound delay moves un-propagated: the
     cached results must then match the PREVIOUS vector's full pass,
     not the new one's. *)
  let _, sta = Lazy.force vex_sta in
  let base = Sta.nominal_delays sta in
  let iw = Sta.inc_workspace sta in
  Sta.analyze_incremental_into sta iw ~delays:base;
  let worst0 = Sta.ws_worst (Sta.inc_ws iw) in
  let nudged = Array.map (fun d -> d +. 1e-6) base in
  Sta.analyze_incremental_into ~bound:1e-3 sta iw ~delays:nudged;
  Alcotest.(check bool) "sub-bound moves are skipped" true
    (Sta.ws_worst (Sta.inc_ws iw) = worst0);
  (* The same nudge with the exact default bound propagates. *)
  Sta.analyze_incremental_into sta iw ~delays:nudged;
  let ws_full = Sta.workspace sta in
  Sta.analyze_into sta ws_full ~delays:nudged;
  Alcotest.(check bool) "exact pass catches up" true
    (Sta.ws_worst (Sta.inc_ws iw) = Sta.ws_worst ws_full);
  Alcotest.(check bool) "nudge was visible" true
    (Sta.ws_worst ws_full <> worst0)

let test_stage_endpoint_ids () =
  let nl = chain_netlist 2 in
  let sta = Sta.build nl ~wire_length:no_wire ~capture:capture_all in
  let ids = Sta.stage_endpoint_ids sta Stage.Execute in
  Alcotest.(check (list int))
    "array matches list" (Sta.endpoints_of_stage sta Stage.Execute)
    (Array.to_list ids);
  Alcotest.(check (list int)) "no decode endpoints" []
    (Sta.endpoints_of_stage sta Stage.Decode)

let suite =
  ( "timing",
    [
      Alcotest.test_case "sta chain arithmetic" `Quick test_sta_chain_arithmetic;
      Alcotest.test_case "sta max path" `Quick test_sta_uses_max_path;
      Alcotest.test_case "analyze_into matches analyze" `Quick
        test_analyze_into_matches_analyze;
      Alcotest.test_case "batch lanes match scalar" `Quick
        test_analyze_batch_matches_scalar;
      Alcotest.test_case "incremental matches full" `Quick
        test_analyze_incremental_matches_full;
      Alcotest.test_case "incremental bound semantics" `Quick
        test_analyze_incremental_bound;
      Alcotest.test_case "stage endpoint ids" `Quick test_stage_endpoint_ids;
      qcheck test_delay_monotonicity;
      Alcotest.test_case "required consistency" `Quick test_required_consistency;
      Alcotest.test_case "stage worst bounds global" `Quick test_stage_worst_bounds_global;
      Alcotest.test_case "vdd scaling speeds up" `Quick test_vdd_scaling_speeds_up;
      Alcotest.test_case "sdf roundtrip" `Quick test_sdf_roundtrip;
      Alcotest.test_case "sdf rewrite" `Quick test_sdf_rewrite;
      Alcotest.test_case "sdf errors" `Quick test_sdf_errors;
      Alcotest.test_case "recover reduces area" `Quick test_recover_reduces_area_meets_clock;
      Alcotest.test_case "fit meets stage budgets" `Quick test_fit_meets_stage_budgets;
      Alcotest.test_case "close_timing repairs" `Quick test_close_timing_fixes_violation;
      Alcotest.test_case "worst endpoints sorted" `Quick test_worst_endpoints_sorted;
      Alcotest.test_case "uniform skew invisible" `Quick test_uniform_skew_is_invisible;
      Alcotest.test_case "capture skew relaxes" `Quick test_capture_skew_relaxes_endpoint;
      Alcotest.test_case "clock tree" `Quick test_clock_tree;
      Alcotest.test_case "wireload model" `Quick test_wireload_model;
    ] )
