(** Forwarding (bypass) network.  The paper's VEX instantiates two
    forwarding units handling read-after-write hazards; each gives
    every execute-slot operand a late mux between the register-file
    value and results forwarded from the EX/WB boundary registers. *)

open Gen

val operand :
  t -> rf_value:bus -> fwd_ex:bus -> fwd_wb:bus -> sel_ex:net -> sel_wb:net -> bus
(** Two-level bypass mux: WB forward first, then the (later-arriving)
    EX forward closest to the consumer. *)
