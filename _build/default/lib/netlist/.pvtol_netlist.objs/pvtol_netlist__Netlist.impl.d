lib/netlist/netlist.ml: Array Format Hashtbl List Printf Pvtol_stdcell Queue Stage String
