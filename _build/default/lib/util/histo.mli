(** Fixed-range histograms, used for the Fig. 3 density plots and as the
    binning backend for the chi-square goodness-of-fit test. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] makes an empty histogram over [lo, hi).
    Samples outside the range are clamped into the edge bins. *)

val of_samples : ?bins:int -> float array -> t
(** Histogram spanning the sample range, with [bins] buckets
    (default: Sturges' rule). *)

val add : t -> float -> unit
val bins : t -> int
val count : t -> int
val bin_count : t -> int -> int
val bin_center : t -> int -> float
val bin_width : t -> float

val density : t -> int -> float
(** Empirical probability density of a bin (count / (n * width)). *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one bin per line. *)
