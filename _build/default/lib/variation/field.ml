type t = {
  a : float;
  b : float;
  c : float;
  d : float;
  e : float;
  intercept : float;
  field_mm : float;
  l_nominal_nm : float;
}

let raw_eval (a, b, c, d, e) x y =
  (a *. x *. x) +. (b *. y *. y) +. (c *. x) +. (d *. y) +. (e *. x *. y)

(* Raw polynomial shape (before calibration): a shallow bowl falling
   along the +x+y diagonal, so the lower-left corner prints the longest
   (slowest) transistors.  Magnitudes are per-mm of a 28mm field. *)
let default_shape = (-4.0e-4, -3.2e-4, -9.0e-3, -1.1e-2, -4.5e-4)

let create ?(field_mm = 28.0) ?(calibrate_mm = 14.0) ?(shape = default_shape)
    ~l_nominal_nm ~max_dev_frac () =
  (* Sample the raw shape over the calibration region, centre it, then
     scale its extremum to the deviation target. *)
  let n = 64 in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to n do
    for j = 0 to n do
      let x = float_of_int i *. calibrate_mm /. float_of_int n in
      let y = float_of_int j *. calibrate_mm /. float_of_int n in
      let v = raw_eval shape x y in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done
  done;
  let mid = (!lo +. !hi) /. 2.0 in
  let half_range = (!hi -. !lo) /. 2.0 in
  assert (half_range > 0.0);
  let scale = max_dev_frac *. l_nominal_nm /. half_range in
  let a, b, c, d, e = shape in
  {
    a = a *. scale;
    b = b *. scale;
    c = c *. scale;
    d = d *. scale;
    e = e *. scale;
    intercept = l_nominal_nm -. (mid *. scale);
    field_mm;
    l_nominal_nm;
  }

let default = create ~l_nominal_nm:65.0 ~max_dev_frac:0.055 ()

let systematic_nm t ~x_mm ~y_mm =
  let clamp v = Float.max 0.0 (Float.min t.field_mm v) in
  let x = clamp x_mm and y = clamp y_mm in
  (t.a *. x *. x) +. (t.b *. y *. y) +. (t.c *. x) +. (t.d *. y)
  +. (t.e *. x *. y) +. t.intercept

let deviation_frac t ~x_mm ~y_mm =
  (systematic_nm t ~x_mm ~y_mm -. t.l_nominal_nm) /. t.l_nominal_nm

let extremes t =
  let n = 64 in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to n do
    for j = 0 to n do
      let x = float_of_int i *. t.field_mm /. float_of_int n in
      let y = float_of_int j *. t.field_mm /. float_of_int n in
      let v = systematic_nm t ~x_mm:x ~y_mm:y in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done
  done;
  (!lo, !hi)

let render_map ?(cells = 14) t ~chip_mm =
  let buf = Buffer.create 1024 in
  let lo, hi = extremes t in
  let glyphs = " .:-=+*#%@" in
  Buffer.add_string buf
    (Printf.sprintf
       "Systematic Lgate map, %.0fx%.0fmm chip at field origin (nominal %.1fnm)\n"
       chip_mm chip_mm t.l_nominal_nm);
  for j = cells - 1 downto 0 do
    for i = 0 to cells - 1 do
      let x = (float_of_int i +. 0.5) *. chip_mm /. float_of_int cells in
      let y = (float_of_int j +. 0.5) *. chip_mm /. float_of_int cells in
      let v = systematic_nm t ~x_mm:x ~y_mm:y in
      let g =
        int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int (String.length glyphs - 1))
      in
      let g = max 0 (min (String.length glyphs - 1) g) in
      Buffer.add_char buf glyphs.[g];
      Buffer.add_char buf glyphs.[g]
    done;
    let y = (float_of_int j +. 0.5) *. chip_mm /. float_of_int cells in
    Buffer.add_string buf
      (Printf.sprintf "  y=%4.1fmm  Lg(diag)=%.2fnm\n" y
         (systematic_nm t ~x_mm:y ~y_mm:y))
  done;
  Buffer.add_string buf
    (Printf.sprintf "range over field: %.2f .. %.2f nm (%+.1f%% .. %+.1f%%)\n" lo hi
       (100.0 *. (lo -. t.l_nominal_nm) /. t.l_nominal_nm)
       (100.0 *. (hi -. t.l_nominal_nm) /. t.l_nominal_nm));
  Buffer.contents buf
