(* Tests for the lazy memoized stage graph (Pvtol_core.Stage) and its
   trace (Pvtol_util.Trace). *)

module Sg = Pvtol_core.Stage
module Trace = Pvtol_util.Trace

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- memoization --- *)

let test_node_runs_once () =
  let g = Sg.create () in
  let runs = ref 0 in
  let n =
    Sg.node g ~name:"a" (fun () ->
        incr runs;
        42)
  in
  Alcotest.(check (option int)) "not computed yet" None (Sg.peek n);
  Alcotest.(check int) "value" 42 (Sg.get n);
  Alcotest.(check int) "again" 42 (Sg.get n);
  Alcotest.(check int) "computed once" 1 !runs;
  Alcotest.(check (option int)) "peek sees it" (Some 42) (Sg.peek n);
  Alcotest.(check int) "one span" 1 (Trace.count (Sg.trace g) "a")

let test_dependent_nodes_share () =
  let g = Sg.create () in
  let runs = ref 0 in
  let base =
    Sg.node g ~name:"base" (fun () ->
        incr runs;
        10)
  in
  let left = Sg.node g ~name:"left" ~deps:[ "base" ] (fun () -> Sg.get base + 1) in
  let right = Sg.node g ~name:"right" ~deps:[ "base" ] (fun () -> Sg.get base + 2) in
  Alcotest.(check int) "left" 11 (Sg.get left);
  Alcotest.(check int) "right" 12 (Sg.get right);
  Alcotest.(check int) "diamond base computed once" 1 !runs

let test_duplicate_name_rejected () =
  let g = Sg.create () in
  let _ = Sg.node g ~name:"x" (fun () -> 0) in
  match Sg.node g ~name:"x" (fun () -> 1) with
  | _ -> Alcotest.fail "duplicate node name must be rejected"
  | exception Invalid_argument _ -> ()

(* --- keyed nodes --- *)

let test_keyed_isolation () =
  let g = Sg.create () in
  let runs = Hashtbl.create 4 in
  let k =
    Sg.keyed g ~name:"mc" ~key_label:string_of_int (fun key ->
        Hashtbl.replace runs key (1 + Option.value ~default:0 (Hashtbl.find_opt runs key));
        key * key)
  in
  Alcotest.(check int) "key 2" 4 (Sg.get_keyed k 2);
  Alcotest.(check int) "key 3" 9 (Sg.get_keyed k 3);
  Alcotest.(check int) "key 2 again" 4 (Sg.get_keyed k 2);
  Alcotest.(check int) "key 2 ran once" 1 (Hashtbl.find runs 2);
  Alcotest.(check int) "key 3 ran once" 1 (Hashtbl.find runs 3);
  Alcotest.(check (list string)) "computed keys" [ "2"; "3" ] (Sg.computed_keys k);
  Alcotest.(check int) "span per key" 1 (Trace.count (Sg.trace g) "mc[2]")

(* --- tracing --- *)

let test_trace_dependency_order () =
  let g = Sg.create () in
  let a = Sg.node g ~name:"a" (fun () -> 1) in
  let b = Sg.node g ~name:"b" ~deps:[ "a" ] (fun () -> Sg.get a + 1) in
  let c = Sg.node g ~name:"c" ~deps:[ "b" ] (fun () -> Sg.get b + 1) in
  Alcotest.(check int) "c" 3 (Sg.get c);
  let names = List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans (Sg.trace g)) in
  (* Completion order: upstream finishes before what forced it. *)
  Alcotest.(check (list string)) "completion order" [ "a"; "b"; "c" ] names;
  (match Trace.find (Sg.trace g) "c" with
  | Some s ->
    Alcotest.(check (list string)) "declared deps recorded" [ "b" ] s.Trace.deps;
    Alcotest.(check bool) "ok" true s.Trace.ok;
    Alcotest.(check bool) "duration sane" true (s.Trace.dur_s >= 0.0)
  | None -> Alcotest.fail "span c missing");
  Alcotest.(check (list string)) "no duplicates" [] (Trace.duplicates (Sg.trace g))

let test_trace_json () =
  let g = Sg.create () in
  let a = Sg.node g ~name:"stage one" ~deps:[ "up" ] (fun () -> ()) in
  Sg.get a;
  let json = Trace.to_json (Sg.trace g) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" needle)
        true
        (contains ~sub:needle json))
    [ "\"stage one\""; "\"up\""; "\"dur_s\""; "\"ok\"" ]

(* --- error boundaries --- *)

let test_error_names_failing_stage () =
  let g = Sg.create () in
  let runs = ref 0 in
  let bad =
    Sg.node g ~name:"parse" (fun () ->
        incr runs;
        failwith "bad liberty file")
  in
  let mid = Sg.node g ~name:"mid" ~deps:[ "parse" ] (fun () -> Sg.get bad + 1) in
  let top = Sg.node g ~name:"top" ~deps:[ "mid" ] (fun () -> Sg.get mid + 1) in
  (match Sg.result top with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
    Alcotest.(check string) "failing stage named" "parse" e.Sg.stage;
    Alcotest.(check (list string)) "forcing chain outermost first"
      [ "top"; "mid"; "parse" ] e.Sg.chain;
    Alcotest.(check bool) "message kept" true
      (contains ~sub:"bad liberty file" e.Sg.message));
  (* The error is memoized: re-forcing re-raises without recomputing. *)
  (match Sg.result bad with
  | Ok _ -> Alcotest.fail "expected memoized failure"
  | Error e -> Alcotest.(check string) "same stage" "parse" e.Sg.stage);
  Alcotest.(check int) "failed stage ran once" 1 !runs;
  (* The failed span is recorded with ok = false. *)
  match Trace.find (Sg.trace g) "parse" with
  | Some s -> Alcotest.(check bool) "span not ok" false s.Trace.ok
  | None -> Alcotest.fail "failed span missing from trace"

let test_cycle_detected () =
  let g = Sg.create () in
  let rec cell = lazy (Sg.node g ~name:"loop" (fun () -> Sg.get (Lazy.force cell))) in
  match Sg.result (Lazy.force cell) with
  | Ok _ -> Alcotest.fail "cycle must not terminate normally"
  | Error e ->
    Alcotest.(check string) "cycle attributed" "loop" e.Sg.stage;
    Alcotest.(check bool) "says cycle" true
      (contains ~sub:"cycle" e.Sg.message)

(* --- concurrency --- *)

let test_concurrent_force_computes_once () =
  let g = Sg.create () in
  let runs = Atomic.make 0 in
  let n =
    Sg.node g ~name:"slow" (fun () ->
        Atomic.incr runs;
        (* Give the other domains time to pile onto the same cell. *)
        Unix.sleepf 0.02;
        99)
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn (fun () -> Sg.get n)) in
  let results = Array.map Domain.join domains in
  Array.iter (fun v -> Alcotest.(check int) "same value" 99 v) results;
  Alcotest.(check int) "computed once under contention" 1 (Atomic.get runs);
  Alcotest.(check int) "one span" 1 (Trace.count (Sg.trace g) "slow")

let suite =
  ( "stage",
    [
      Alcotest.test_case "node runs once" `Quick test_node_runs_once;
      Alcotest.test_case "diamond shares base" `Quick test_dependent_nodes_share;
      Alcotest.test_case "duplicate name rejected" `Quick test_duplicate_name_rejected;
      Alcotest.test_case "keyed isolation" `Quick test_keyed_isolation;
      Alcotest.test_case "trace dependency order" `Quick test_trace_dependency_order;
      Alcotest.test_case "trace json" `Quick test_trace_json;
      Alcotest.test_case "error names failing stage" `Quick test_error_names_failing_stage;
      Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
      Alcotest.test_case "concurrent force" `Quick test_concurrent_force_computes_once;
    ] )
