lib/variation/sampler.ml: Array Field Position Pvtol_place Pvtol_stdcell Pvtol_util
