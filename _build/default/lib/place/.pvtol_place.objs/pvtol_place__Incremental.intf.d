lib/place/incremental.mli: Netlist Placement Pvtol_netlist Pvtol_util
