test/test_core.ml: Alcotest Array Lazy List Printf Pvtol_core Pvtol_netlist Pvtol_place Pvtol_power Pvtol_ssta Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation String
