(* Telemetry layer: the metrics registry (shard merging, histograms,
   the disabled fast path), the leveled logger (filtering, sinks, the
   warn-once latch under a domain race) and the Chrome trace export. *)

module Metrics = Pvtol_util.Metrics
module Log = Pvtol_util.Log
module Trace = Pvtol_util.Trace
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng

(* Every test that enables metrics must restore the disabled default,
   also on failure: later tests assert the zero-cost path. *)
let with_metrics_enabled f =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)

let test_counter_basics () =
  let c = Metrics.counter "test_basics_counter" in
  let before = Metrics.counter_value c in
  with_metrics_enabled (fun () ->
      Metrics.incr c;
      Metrics.add c 41);
  Alcotest.(check int) "counter sums" 42 (Metrics.counter_value c - before);
  (* Disabled updates are dropped, not queued. *)
  Metrics.incr c;
  Alcotest.(check int) "disabled update dropped" 42
    (Metrics.counter_value c - before)

let test_registration () =
  let c = Metrics.counter "test_reregistered" in
  let c' = Metrics.counter "test_reregistered" in
  with_metrics_enabled (fun () ->
      Metrics.incr c;
      Metrics.incr c');
  Alcotest.(check int) "same name, same metric" 2 (Metrics.counter_value c);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Metrics: \"test_reregistered\" already registered as another kind")
    (fun () -> ignore (Metrics.gauge "test_reregistered"));
  Alcotest.check_raises "bad name rejected"
    (Invalid_argument "Metrics: bad metric name \"bad name\"") (fun () ->
      ignore (Metrics.counter "bad name"))

let test_gauge () =
  let g = Metrics.gauge "test_gauge" in
  with_metrics_enabled (fun () ->
      Metrics.set g 1.5;
      Metrics.set g 2.5);
  Alcotest.(check (float 0.0)) "last write wins" 2.5 (Metrics.gauge_value g)

let test_histogram_exact_counts () =
  let h = Metrics.histogram "test_histo_exact" ~buckets:[| 1.0; 2.0; 5.0 |] in
  with_metrics_enabled (fun () ->
      List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 10.0 ]);
  (* le semantics: a value equal to a bound lands in that bucket. *)
  Alcotest.(check (array int))
    "bucket counts" [| 2; 2; 0; 1 |] (Metrics.histogram_counts h);
  Alcotest.(check int) "total count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Metrics.histogram_sum h)

(* The shared test pool: worker domains (and their DLS shards) persist
   across the QCheck iterations, which is exactly the production
   shape. *)
let test_pool = lazy (Pool.create ~domains:4 ())

let prop_shard_merge_serial_reference =
  QCheck.Test.make
    ~name:"sharded counter merge equals the serial sum" ~count:25
    QCheck.(pair (int_bound 100_000) (int_range 1 50))
    (fun (seed, chunks) ->
      let c = Metrics.counter "test_merge_counter" in
      let rng = Srng.create seed in
      let adds = Array.init chunks (fun _ -> Srng.int rng 100) in
      let before = Metrics.counter_value c in
      with_metrics_enabled (fun () ->
          ignore
            (Pool.parallel_chunks (Lazy.force test_pool) ~chunks
               ~init:(fun ~worker:_ -> ())
               ~f:(fun () i -> Metrics.add c adds.(i))));
      Metrics.counter_value c - before = Array.fold_left ( + ) 0 adds)

let test_deterministic_across_domain_counts () =
  let c = Metrics.counter "test_domain_invariant" in
  let h = Metrics.histogram "test_domain_invariant_h" ~buckets:[| 10.0 |] in
  let run domains =
    let pool = Pool.create ~domains () in
    let before = Metrics.counter_value c in
    let hcount = Metrics.histogram_count h in
    with_metrics_enabled (fun () ->
        ignore
          (Pool.parallel_chunks pool ~chunks:64
             ~init:(fun ~worker:_ -> ())
             ~f:(fun () i ->
               Metrics.add c i;
               Metrics.observe h (float_of_int (i mod 16)))));
    Pool.shutdown pool;
    (Metrics.counter_value c - before, Metrics.histogram_count h - hcount)
  in
  let r1 = run 1 in
  Alcotest.(check (pair int int)) "2 domains = 1 domain" r1 (run 2);
  Alcotest.(check (pair int int)) "4 domains = 1 domain" r1 (run 4)

let test_disabled_path_allocates_nothing () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test_noalloc_counter" in
  let h = Metrics.histogram "test_noalloc_histo" in
  let n = 100_000 in
  let minor_delta f =
    let a = (Gc.quick_stat ()).Gc.minor_words in
    f ();
    (Gc.quick_stat ()).Gc.minor_words -. a
  in
  (* The empty loop is the baseline: both deltas carry the same
     quick_stat bookkeeping, so equal deltas mean the updates
     themselves allocated zero words. *)
  let base =
    minor_delta (fun () ->
        for _ = 1 to n do
          ignore (Sys.opaque_identity ())
        done)
  in
  let updates =
    minor_delta (fun () ->
        for i = 1 to n do
          Metrics.incr c;
          Metrics.add c 2;
          Metrics.observe h (float_of_int i)
        done)
  in
  Alcotest.(check (float 0.0)) "disabled updates allocate zero words" base
    updates

(* The compensation-strategy counters from [Pvtol_core.Compensation]:
   registered under their catalogue names (re-registration is
   idempotent, so grabbing handles here observes the library's own),
   bumped consistently with a strategy-comparison report when enabled,
   and dropped without allocating when disabled. *)
let test_compensation_counters () =
  let module Compare = Pvtol_core.Compare in
  let applied =
    List.map
      (fun name -> (name, Metrics.counter ("compensation_" ^ name ^ "_applied_total")))
      [ "vi"; "chipwide"; "skew"; "buffers" ]
  in
  let skew_flops = Metrics.counter "skew_tuned_flops_total" in
  let buffers_inserted = Metrics.counter "buffers_inserted_total" in
  let t, v = Lazy.force Test_extensions.env in
  let cfg =
    { Compare.default_config with Compare.nx = 2; ny = 2; dies_per_cell = 3 }
  in
  let snapshot () =
    ( List.map (fun (n, c) -> (n, Metrics.counter_value c)) applied,
      Metrics.counter_value skew_flops,
      Metrics.counter_value buffers_inserted )
  in
  let before, sf0, bi0 = snapshot () in
  let r = with_metrics_enabled (fun () -> Compare.run t v cfg) in
  let result name =
    List.find (fun s -> s.Compare.name = name) r.Compare.results
  in
  (* Applied counters tick at most once per die, only when the strategy
     actually turned its knob; chip-wide's knob is 0/1 so its applied
     count equals its knob total exactly. *)
  List.iter
    (fun (name, c) ->
      let delta = Metrics.counter_value c - List.assoc name before in
      if delta < 0 || delta > r.Compare.dies then
        Alcotest.failf "%s applied %d times over %d dies" name delta
          r.Compare.dies;
      if delta > (result name).Compare.knob_total then
        Alcotest.failf "%s applied %d times but knob total is %d" name delta
          (result name).Compare.knob_total)
    applied;
  Alcotest.(check int)
    "chipwide applied count = failing dies"
    (result "chipwide").Compare.knob_total
    (Metrics.counter_value (List.assoc "chipwide" applied)
    - List.assoc "chipwide" before);
  Alcotest.(check int)
    "skew_tuned_flops_total tracks the knob total"
    (result "skew").Compare.knob_total
    (Metrics.counter_value skew_flops - sf0);
  Alcotest.(check int)
    "buffers_inserted_total tracks the knob total"
    (result "buffers").Compare.knob_total
    (Metrics.counter_value buffers_inserted - bi0);
  (* Disabled (the ambient default): the same sweep leaves every
     counter untouched, and raw updates on these handles ride the
     zero-allocation fast path like any other counter. *)
  let enabled = snapshot () in
  ignore (Compare.run t v cfg);
  Alcotest.(check bool) "disabled sweep leaves counters untouched" true
    (snapshot () = enabled);
  let n = 100_000 in
  let minor_delta f =
    let a = (Gc.quick_stat ()).Gc.minor_words in
    f ();
    (Gc.quick_stat ()).Gc.minor_words -. a
  in
  let base =
    minor_delta (fun () ->
        for _ = 1 to n do
          ignore (Sys.opaque_identity ())
        done)
  in
  let updates =
    minor_delta (fun () ->
        for _ = 1 to n do
          Metrics.incr skew_flops;
          Metrics.add buffers_inserted 3
        done)
  in
  Alcotest.(check (float 0.0))
    "disabled compensation updates allocate zero words" base updates

let test_exports () =
  let c = Metrics.counter "test_export_counter" in
  let h = Metrics.histogram "test_export_histo" ~buckets:[| 1.0; 2.0 |] in
  with_metrics_enabled (fun () ->
      Metrics.incr c;
      Metrics.observe h 0.5;
      Metrics.observe h 1.5;
      Metrics.observe h 9.0);
  let snap = Metrics.snapshot () in
  let json = Metrics.to_json snap in
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has counter" true
    (has "\"test_export_counter\"" json);
  Alcotest.(check bool) "json has +Inf bucket" true (has "\"+Inf\"" json);
  let prom = Metrics.to_prometheus snap in
  Alcotest.(check bool) "prom has TYPE line" true
    (has "# TYPE test_export_counter counter" prom);
  (* Cumulative le buckets: 1 at le=1, 2 at le=2, 3 at +Inf. *)
  Alcotest.(check bool) "prom buckets cumulative" true
    (has "test_export_histo_bucket{le=\"+Inf\"} 3" prom);
  Alcotest.(check bool) "summary has nonzero counter" true
    (has "test_export_counter=1" (Metrics.summary_line snap))

(* ------------------------------------------------------------------ *)
(* Logger                                                               *)

(* Capture through a custom sink; always restore the default. *)
let with_captured_log f =
  let captured = ref [] in
  Log.set_sink (fun level msg -> captured := (level, msg) :: !captured);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink Log.default_sink;
      Log.set_level Log.Warn)
    (fun () -> f ());
  List.rev !captured

let test_log_levels () =
  let captured =
    with_captured_log (fun () ->
        Log.set_level Log.Warn;
        Log.err "e %d" 1;
        Log.warn "w";
        Log.info "i";
        Log.debug "d";
        Log.set_level Log.Debug;
        Log.debug "d2")
  in
  Alcotest.(check (list string))
    "threshold filters" [ "e 1"; "w"; "d2" ]
    (List.map snd captured);
  Alcotest.(check bool) "levels recorded" true
    (List.map fst captured = [ Log.Error; Log.Warn; Log.Debug ])

let test_log_level_of_string () =
  Alcotest.(check bool) "parses names" true
    (Log.level_of_string "WARN" = Some Log.Warn
    && Log.level_of_string "debug" = Some Log.Debug
    && Log.level_of_string "nonsense" = None)

let test_warn_once_race () =
  let captured =
    with_captured_log (fun () ->
        Log.set_level Log.Warn;
        let once = Log.once () in
        let domains =
          Array.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for i = 1 to 100 do
                    Log.warn_once once "latch %d.%d" d i
                  done))
        in
        Array.iter Domain.join domains)
  in
  Alcotest.(check int) "exactly one warning across domains" 1
    (List.length captured)

(* ------------------------------------------------------------------ *)
(* Trace export                                                         *)

let make_trace () =
  let tr = Trace.create () in
  Trace.span tr ~name:"outer" (fun () ->
      Trace.span tr ~name:"inner" ~deps:[ "outer" ] (fun () -> ()));
  Trace.span tr ~name:"late" (fun () -> ());
  tr

let test_sort_by_start () =
  let tr = make_trace () in
  let sorted = Trace.sort_by_start tr in
  Alcotest.(check (list string))
    "chronological order"
    [ "outer"; "inner"; "late" ]
    (List.map (fun s -> s.Trace.name) sorted);
  let starts = List.map (fun s -> s.Trace.start_s) sorted in
  Alcotest.(check bool) "starts non-decreasing" true
    (List.sort compare starts = starts)

let count_occurrences needle hay =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_trace_json_domain () =
  let tr = make_trace () in
  let json = Trace.to_json tr in
  Alcotest.(check int) "every span has a domain field" 3
    (count_occurrences "\"domain\":" json);
  List.iter
    (fun s -> Alcotest.(check int) "single-domain trace" 0 s.Trace.domain)
    (Trace.spans tr)

let test_chrome_export () =
  let tr = make_trace () in
  let json = Trace.to_chrome_json tr in
  (* A JSON array of one X event per span plus metadata events. *)
  Alcotest.(check bool) "array payload" true
    (String.length json > 2 && json.[0] = '[');
  Alcotest.(check int) "one complete event per span" 3
    (count_occurrences "\"ph\": \"X\"" json);
  Alcotest.(check int) "process + domain metadata" 2
    (count_occurrences "\"ph\": \"M\"" json);
  Alcotest.(check int) "all events carry a pid" 5
    (count_occurrences "\"pid\": 1" json);
  (* Chrome ts/dur are microseconds: the inner span's dur must not
     exceed the outer's (it nests inside). *)
  let outer = Option.get (Trace.find tr "outer") in
  let inner = Option.get (Trace.find tr "inner") in
  Alcotest.(check bool) "nesting preserved" true
    (inner.Trace.dur_s <= outer.Trace.dur_s
    && inner.Trace.start_s >= outer.Trace.start_s)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "registration rules" `Quick test_registration;
      Alcotest.test_case "gauge" `Quick test_gauge;
      Alcotest.test_case "histogram exact counts" `Quick
        test_histogram_exact_counts;
      qcheck prop_shard_merge_serial_reference;
      Alcotest.test_case "counts invariant in domain count" `Quick
        test_deterministic_across_domain_counts;
      Alcotest.test_case "disabled path allocates nothing" `Quick
        test_disabled_path_allocates_nothing;
      Alcotest.test_case "compensation counters" `Quick
        test_compensation_counters;
      Alcotest.test_case "json/prometheus/summary exports" `Quick test_exports;
      Alcotest.test_case "log level filtering" `Quick test_log_levels;
      Alcotest.test_case "log level parsing" `Quick test_log_level_of_string;
      Alcotest.test_case "warn_once fires once under a race" `Quick
        test_warn_once_race;
      Alcotest.test_case "trace sort_by_start" `Quick test_sort_by_start;
      Alcotest.test_case "trace json carries domains" `Quick
        test_trace_json_domain;
      Alcotest.test_case "chrome trace export" `Quick test_chrome_export;
    ] )
