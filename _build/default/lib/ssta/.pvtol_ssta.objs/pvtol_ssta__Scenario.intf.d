lib/ssta/scenario.mli: Format Monte_carlo Pvtol_netlist Pvtol_variation Stage
