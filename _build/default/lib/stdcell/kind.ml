type t =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2
  | Dff
  | Ls
  | Tiehi
  | Tielo

let all =
  [ Inv; Buf; Nand2; Nand3; Nor2; Nor3; And2; Or2; Xor2; Xnor2; Aoi21; Oai21;
    Mux2; Dff; Ls; Tiehi; Tielo ]

let arity = function
  | Inv | Buf | Dff | Ls -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | Aoi21 | Oai21 | Mux2 -> 3
  | Tiehi | Tielo -> 0

let is_sequential = function Dff -> true | _ -> false
let is_level_shifter = function Ls -> true | _ -> false

let eval k ins =
  if Array.length ins <> arity k then
    invalid_arg "Kind.eval: arity mismatch";
  match k with
  | Inv -> not ins.(0)
  | Buf | Dff | Ls -> ins.(0)
  | Nand2 -> not (ins.(0) && ins.(1))
  | Nand3 -> not (ins.(0) && ins.(1) && ins.(2))
  | Nor2 -> not (ins.(0) || ins.(1))
  | Nor3 -> not (ins.(0) || ins.(1) || ins.(2))
  | And2 -> ins.(0) && ins.(1)
  | Or2 -> ins.(0) || ins.(1)
  | Xor2 -> ins.(0) <> ins.(1)
  | Xnor2 -> ins.(0) = ins.(1)
  | Aoi21 -> not ((ins.(0) && ins.(1)) || ins.(2))
  | Oai21 -> not ((ins.(0) || ins.(1)) && ins.(2))
  | Mux2 -> if ins.(2) then ins.(1) else ins.(0)
  | Tiehi -> true
  | Tielo -> false

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Ls -> "LS"
  | Tiehi -> "TIEHI"
  | Tielo -> "TIELO"

let of_name s =
  let rec find = function
    | [] -> None
    | k :: rest -> if String.equal (name k) s then Some k else find rest
  in
  find all

let pp fmt k = Format.pp_print_string fmt (name k)
