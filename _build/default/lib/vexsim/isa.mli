(** VEX-like VLIW instruction set: 4 issue slots per bundle, 64 GPRs,
    the operation mix of the paper's execute slot (ALU with in-series
    shifter, compare, address/memory, multiplier) plus branches in
    slot 0 (the branch unit lives in decode).

    The binary encoding matches the field layout the gate-level core
    generator decodes: within a slot's 32-bit word (LSB first),
    bits 0-5 rs1, 6-11 rs2, 12-17 rd, 18-25 imm8, 26-31 opcode. *)

type opcode =
  | Nop
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Mul
  | Cmplt  (** rd <- (rs1 < rs2), signed *)
  | Cmpeq
  | Movi   (** rd <- imm *)
  | Ld     (** rd <- mem[rs1 + imm] *)
  | St     (** mem[rs1 + imm] <- rs2 *)
  | Brz    (** branch to imm-indexed bundle if rs1 = 0; slot 0 only *)
  | Brnz

type op = {
  opcode : opcode;
  rd : int;
  rs1 : int;
  rs2 : int;
  imm : int;  (** 8-bit, sign-extended where used *)
}

type bundle = op array
(** Exactly [slots] operations. *)

val slots : int
val n_regs : int

val nop : op

val opcode_number : opcode -> int
val opcode_of_number : int -> opcode option
val opcode_name : opcode -> string
val opcode_of_name : string -> opcode option

val encode_op : op -> int32
(** 32-bit slot word. *)

val decode_op : int32 -> op
(** Inverse of {!encode_op} (unknown opcodes decode as [Nop]). *)

val encode_bundle : bundle -> int32 array

val uses_mem : opcode -> bool
val is_branch : opcode -> bool
val writes_reg : opcode -> bool
