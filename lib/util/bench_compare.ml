type est = { ns : float; ci : float; n : int }
type verdict = Regressed | Improved | Unchanged | Base_only | New_only

type line = {
  name : string;
  base : est option;
  next : est option;
  delta_pct : float option;
  verdict : verdict;
}

type report = { threshold_pct : float; lines : line list }

let default_threshold_pct = 2.0

let est_of_json = function
  | Json.Obj _ as o -> (
    match Option.bind (Json.member "ns" o) Json.to_float with
    | None -> None
    | Some ns ->
      let ci =
        Option.value ~default:0.0
          (Option.bind (Json.member "ci" o) Json.to_float)
      in
      let n =
        Option.value ~default:1
          (Option.bind (Json.member "n" o) Json.to_int)
      in
      Some { ns; ci; n })
  | Json.Int i -> Some { ns = float_of_int i; ci = 0.0; n = 1 }
  | Json.Float f -> Some { ns = f; ci = 0.0; n = 1 }
  | _ -> None

let kernels_of_json j =
  match
    Option.bind (Json.member "kernels" j) Json.to_obj
  with
  | Some fields ->
    Ok (List.filter_map (fun (k, v) -> Option.map (fun e -> (k, e)) (est_of_json v)) fields)
  | None -> (
    (* Schema-1 fallback: a flat name -> ns map with no uncertainty. *)
    match Option.bind (Json.member "kernels_ns_per_run" j) Json.to_obj with
    | Some fields ->
      Ok
        (List.filter_map
           (fun (k, v) -> Option.map (fun e -> (k, e)) (est_of_json v))
           fields)
    | None -> Error "no \"kernels\" or \"kernels_ns_per_run\" section")

let classify ~threshold_pct base next =
  let delta = next.ns -. base.ns in
  let pct = if base.ns > 0.0 then 100.0 *. delta /. base.ns else 0.0 in
  let noise = base.ci +. next.ci in
  let verdict =
    if delta > noise && pct > threshold_pct then Regressed
    else if -.delta > noise && -.pct > threshold_pct then Improved
    else Unchanged
  in
  (pct, verdict)

let compare ?(threshold_pct = default_threshold_pct) ~base ~next () =
  match (kernels_of_json base, kernels_of_json next) with
  | Error e, _ -> Error ("base file: " ^ e)
  | _, Error e -> Error ("new file: " ^ e)
  | Ok base_k, Ok next_k ->
    let names =
      List.sort_uniq String.compare (List.map fst base_k @ List.map fst next_k)
    in
    let lines =
      List.map
        (fun name ->
          let b = List.assoc_opt name base_k in
          let nx = List.assoc_opt name next_k in
          match (b, nx) with
          | Some b, Some nx ->
            let pct, verdict = classify ~threshold_pct b nx in
            { name; base = Some b; next = Some nx;
              delta_pct = Some pct; verdict }
          | Some _, None ->
            { name; base = b; next = None; delta_pct = None;
              verdict = Base_only }
          | None, Some _ ->
            { name; base = None; next = nx; delta_pct = None;
              verdict = New_only }
          | None, None -> assert false)
        names
    in
    Ok { threshold_pct; lines }

let regressions r =
  List.filter_map
    (fun l -> if l.verdict = Regressed then Some l.name else None)
    r.lines

let verdict_label = function
  | Regressed -> "**REGRESSED**"
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Base_only -> "base only"
  | New_only -> "new only"

let pp_est = function
  | None -> "-"
  | Some e ->
    if e.ci > 0.0 then Printf.sprintf "%.0f ± %.0f (n=%d)" e.ns e.ci e.n
    else Printf.sprintf "%.0f" e.ns

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Bench comparison (threshold ±%.1f%%, CI-gated)\n\n" r.threshold_pct;
  add "| kernel | base ns | new ns | Δ%% | noise ns | verdict |\n";
  add "|---|---:|---:|---:|---:|---|\n";
  List.iter
    (fun l ->
      let noise =
        match (l.base, l.next) with
        | Some b, Some n -> Printf.sprintf "%.0f" (b.ci +. n.ci)
        | _ -> "-"
      in
      add "| %s | %s | %s | %s | %s | %s |\n" l.name (pp_est l.base)
        (pp_est l.next)
        (match l.delta_pct with
        | Some p -> Printf.sprintf "%+.1f" p
        | None -> "-")
        noise (verdict_label l.verdict))
    r.lines;
  let count v = List.length (List.filter (fun l -> l.verdict = v) r.lines) in
  let one_sided = count Base_only + count New_only in
  add "\n%d regressed, %d improved, %d unchanged%s.\n" (count Regressed)
    (count Improved) (count Unchanged)
    (if one_sided > 0 then
       Printf.sprintf ", %d present on one side only" one_sided
     else "");
  Buffer.contents buf
