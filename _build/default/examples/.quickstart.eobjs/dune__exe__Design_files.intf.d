examples/design_files.mli:
