(** Timing-violation scenarios (paper §4.4).

    A stage violates at a die position when the 3-sigma point of its
    Monte-Carlo worst-delay distribution exceeds the nominal clock
    period.  Scenarios are indexed by the number of violating stages:
    at point A all of execute/decode/write-back violate (scenario 3),
    at B two, at C one, from D on none.  Each scenario is compensated
    by raising one more voltage island, so the scenario index is
    exactly the number of islands driven at high Vdd. *)

open Pvtol_netlist

type stage_slack = {
  stage : Stage.t;
  three_sigma : float;   (** 3-sigma worst delay at this position *)
  slack : float;         (** clock - three_sigma; negative = violation *)
  violates : bool;
}

type t = {
  position : Pvtol_variation.Position.t;
  clock : float;
  stage_slacks : stage_slack list;  (** decode/execute/write-back *)
  violating : Stage.t list;          (** ordered worst-first *)
  index : int;                        (** number of violating stages *)
}

val classify : clock:float -> Monte_carlo.result -> t
(** Classify one position's Monte-Carlo result.  Fetch is excluded, as
    in the paper (no memory model behind it). *)

val ladder :
  run:(Pvtol_variation.Position.t -> Monte_carlo.result) ->
  clock:float ->
  positions:Pvtol_variation.Position.t list ->
  t list
(** Classify a list of die positions (typically A, B, C, D). *)

val worst_violation : t -> float
(** Largest 3-sigma delay among violating stages (equals the boost the
    compensation must deliver); 0.0 when nothing violates. *)

val pp : Format.formatter -> t -> unit
