lib/ssta/monte_carlo.mli: Hashtbl Netlist Pvtol_netlist Pvtol_place Pvtol_timing Pvtol_util Pvtol_variation Stage
