lib/netlist/verilog.ml: Array Buffer Fun Hashtbl List Netlist Printf Pvtol_stdcell Stage String
