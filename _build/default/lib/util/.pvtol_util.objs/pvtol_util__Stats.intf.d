lib/util/stats.mli:
