(** Structural-Verilog writer/parser (gate-level subset).

    The paper's flow hands netlists between tools as structural Verilog
    (Physical Compiler output); this module provides the same
    interchange point.  The emitted subset is one module with [input],
    [output] and [wire] declarations and one instance per cell:

    {v
    module vex (instr_0, ..., imem_addr_0, ...);
      input instr_0;
      output imem_addr_0;
      wire n42;
      NAND2_X1 u7 (.o(n42), .i0(instr_0), .i1(n13));  // EX slot0
    endmodule
    v}

    Net and port names are sanitized ([\[\]] become [_]); the pipeline
    stage and unit tags ride in a trailing comment so a round trip
    preserves them. *)

val to_string : Netlist.t -> string
val write_file : string -> Netlist.t -> unit

exception Parse_error of string

val of_string : Pvtol_stdcell.Cell.library -> string -> Netlist.t
(** Rebuild a netlist from the emitted subset.  Cell types must exist
    in the given library; sequential feedback loops are supported.
    Raises {!Parse_error} with a line number on malformed input. *)

val read_file : Pvtol_stdcell.Cell.library -> string -> Netlist.t
