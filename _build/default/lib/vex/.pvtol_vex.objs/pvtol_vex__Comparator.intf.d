lib/vex/comparator.mli: Gen
