open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Placement = Pvtol_place.Placement

type t = {
  insertion_delay : (Netlist.cell_id * float) list;
  offsets : float array;
  skew : float;
  n_buffers : int;
  wirelength : float;
  levels : int;
}

let synthesize ?(max_leaves = 16) (p : Placement.t) ~flops =
  let nl = p.Placement.netlist in
  let lib = nl.Netlist.lib in
  let buf = Cell_lib.find lib Pvtol_stdcell.Kind.Buf Cell_lib.X4 in
  let clk_pin_cap = 1.4 in
  let n_buffers = ref 0 in
  let wirelength = ref 0.0 in
  let max_levels = ref 0 in
  let delays = ref [] in
  let xs = p.Placement.xs and ys = p.Placement.ys in
  let centroid ids =
    let n = float_of_int (Array.length ids) in
    let cx = Array.fold_left (fun a i -> a +. xs.(i)) 0.0 ids /. n in
    let cy = Array.fold_left (fun a i -> a +. ys.(i)) 0.0 ids /. n in
    (cx, cy)
  in
  (* Build top-down; [acc] is the insertion delay accumulated above the
     current node (whose driver buffer sits at (px, py)). *)
  let rec build ids (px, py) acc level =
    if level > !max_levels then max_levels := level;
    let cx, cy = centroid ids in
    let wire = Float.abs (cx -. px) +. Float.abs (cy -. py) in
    wirelength := !wirelength +. wire;
    if Array.length ids <= max_leaves then begin
      (* Leaf buffer drives the flops' clock pins directly. *)
      incr n_buffers;
      let load =
        (float_of_int (Array.length ids) *. clk_pin_cap)
        +. (lib.Cell_lib.wire_cap_per_um
           *. Array.fold_left
                (fun a i -> a +. Float.abs (xs.(i) -. cx) +. Float.abs (ys.(i) -. cy))
                0.0 ids)
      in
      let d_buf = buf.Cell_lib.d0 +. (buf.Cell_lib.drive_res *. load) in
      Array.iter
        (fun i ->
          let leaf_wire = Float.abs (xs.(i) -. cx) +. Float.abs (ys.(i) -. cy) in
          wirelength := !wirelength +. leaf_wire;
          let d =
            acc
            +. (lib.Cell_lib.wire_delay_per_um *. wire)
            +. d_buf
            +. (lib.Cell_lib.wire_delay_per_um *. leaf_wire)
          in
          delays := (i, d) :: !delays)
        ids
    end
    else begin
      (* Split on the longer bounding-box axis at the median. *)
      let by_x =
        let lo = Array.fold_left (fun a i -> Float.min a xs.(i)) infinity ids in
        let hi = Array.fold_left (fun a i -> Float.max a xs.(i)) neg_infinity ids in
        let lo_y = Array.fold_left (fun a i -> Float.min a ys.(i)) infinity ids in
        let hi_y = Array.fold_left (fun a i -> Float.max a ys.(i)) neg_infinity ids in
        hi -. lo >= hi_y -. lo_y
      in
      let sorted = Array.copy ids in
      Array.sort
        (fun a b -> compare (if by_x then xs.(a) else ys.(a)) (if by_x then xs.(b) else ys.(b)))
        sorted;
      let mid = Array.length sorted / 2 in
      let left = Array.sub sorted 0 mid in
      let right = Array.sub sorted mid (Array.length sorted - mid) in
      incr n_buffers;
      (* This node's buffer drives two child buffers plus the branch
         wires. *)
      let lx, ly = centroid left and rx, ry = centroid right in
      let branch_wire =
        Float.abs (lx -. cx) +. Float.abs (ly -. cy)
        +. Float.abs (rx -. cx) +. Float.abs (ry -. cy)
      in
      let load =
        (2.0 *. buf.Cell_lib.input_cap)
        +. (lib.Cell_lib.wire_cap_per_um *. branch_wire)
      in
      let d_buf = buf.Cell_lib.d0 +. (buf.Cell_lib.drive_res *. load) in
      let acc' = acc +. (lib.Cell_lib.wire_delay_per_um *. wire) +. d_buf in
      build left (cx, cy) acc' (level + 1);
      build right (cx, cy) acc' (level + 1)
    end
  in
  assert (Array.length flops > 0);
  let root = centroid flops in
  build flops root 0.0 1;
  let delays = List.rev !delays in
  let lo = List.fold_left (fun a (_, d) -> Float.min a d) infinity delays in
  let hi = List.fold_left (fun a (_, d) -> Float.max a d) neg_infinity delays in
  (* Dense per-cell offset map, normalized to the earliest leaf, built
     once here: skew lookups in per-die settle loops are O(1) array
     reads instead of an assoc-list scan (or a per-call hashtable
     rebuild) over every flop. *)
  let offsets = Array.make (Netlist.cell_count nl) 0.0 in
  List.iter (fun (i, d) -> offsets.(i) <- d -. lo) delays;
  {
    insertion_delay = delays;
    offsets;
    skew = hi -. lo;
    n_buffers = !n_buffers;
    wirelength = !wirelength;
    levels = !max_levels;
  }

let skew_of t =
  let offsets = t.offsets in
  let n = Array.length offsets in
  fun cid -> if cid >= 0 && cid < n then offsets.(cid) else 0.0
