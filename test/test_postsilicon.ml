(* Unit tests for the single-die detect-and-compensate kernel
   ([Postsilicon.kernel] / [simulate_die]) and the wafer-scale sweep
   built on it ([Wafer]).  The study numbers of [Postsilicon.run] are
   pinned bit-exactly: the kernel refactor and the wafer engine must
   never change the physics of the original diagonal exhibit. *)

module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Postsilicon = Pvtol_core.Postsilicon
module Wafer = Pvtol_core.Wafer
module Position = Pvtol_variation.Position
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats

let env = Test_extensions.env

let check_bits what expected got =
  if expected <> got then
    Alcotest.failf "%s: expected %h, got %h" what expected got

(* --- golden pin of the diagonal study (quick config, vertical) --- *)

(* Captured from the pre-kernel-refactor implementation; [run] must
   reproduce it bit-for-bit. *)
let golden_chips =
  (* (violating, detected, raised) per chip, in sample order *)
  [ (0, 0, 0); (1, 1, 2); (0, 0, 0); (0, 0, 0); (1, 1, 2); (0, 0, 0);
    (2, 2, 3); (1, 1, 2); (0, 0, 0); (0, 0, 0); (1, 1, 1); (1, 1, 2) ]

let test_run_golden () =
  let t, v = Lazy.force env in
  let s = Postsilicon.run ~n_chips:12 ~seed:3 t v in
  check_bits "yield uncompensated" 0x1p-1 s.Postsilicon.yield_uncompensated;
  check_bits "yield compensated" 0x1p+0 s.Postsilicon.yield_compensated;
  check_bits "yield chip-wide" 0x1p+0 s.Postsilicon.yield_chip_wide;
  check_bits "mean raised" 0x1p+0 s.Postsilicon.mean_raised;
  check_bits "mean islands power" 0x1.630982023ad44p+2
    s.Postsilicon.mean_power_islands_mw;
  check_bits "mean chip-wide power" 0x1.1de9363ad5505p+2
    s.Postsilicon.mean_power_chip_wide_mw;
  Alcotest.(check (list (triple int int int)))
    "per-chip (violating, detected, raised)" golden_chips
    (List.map
       (fun (c : Postsilicon.chip) ->
         (c.Postsilicon.violating, c.Postsilicon.detected, c.Postsilicon.raised))
       s.Postsilicon.chips);
  (* The die positions come from the same RNG stream as the Lgate
     draws: pin two of them so the draw protocol can never drift. *)
  let fracs =
    List.map (fun (c : Postsilicon.chip) -> c.Postsilicon.diagonal_frac)
      s.Postsilicon.chips
  in
  check_bits "chip 0 position" 0x1.a1770cd55c65p-1 (List.nth fracs 0);
  check_bits "chip 6 position" 0x1.0dd2ba46af79p-3 (List.nth fracs 6)

(* --- kernel invariants over a simulated population --- *)

(* Simulate a small population at several positions (both diagonal and
   off-diagonal) through the kernel directly. *)
let simulate_population () =
  let t, v = Lazy.force env in
  let k = Postsilicon.kernel t v in
  let sc = Postsilicon.scratch k in
  let positions =
    [ Position.point_a; Position.point_b; Position.point_d;
      Position.at_xy ~x_frac:0.1 ~y_frac:0.9 ();
      Position.at_xy ~x_frac:0.9 ~y_frac:0.1 () ]
  in
  ( k,
    List.concat_map
      (fun pos ->
        let systematic = Postsilicon.systematic k pos in
        let rng = Srng.create 11 in
        List.init 6 (fun _ -> Postsilicon.simulate_die k sc ~systematic rng))
      positions )

let test_detection_equals_violation () =
  (* Ideal sensors: the reported scenario is the actual number of
     failing stages (the paper's Razor subset monitors every path that
     can become critical, so it detects the same scenario). *)
  let _, dies = simulate_population () in
  List.iter
    (fun (d : Postsilicon.die) ->
      Alcotest.(check int) "detected = violating" d.Postsilicon.die_violating
        d.Postsilicon.die_detected)
    dies

let test_raised_monotonicity () =
  let k, dies = simulate_population () in
  let n = Postsilicon.n_islands k in
  List.iter
    (fun (d : Postsilicon.die) ->
      (* The closed loop starts at the detected scenario and only ever
         escalates, never past the island count. *)
      Alcotest.(check bool) "raised >= min detected n" true
        (d.Postsilicon.die_raised >= min d.Postsilicon.die_detected n);
      Alcotest.(check bool) "raised <= n_islands" true
        (d.Postsilicon.die_raised <= n);
      if d.Postsilicon.die_meets_uncompensated then begin
        Alcotest.(check int) "passing die raises nothing" 0
          d.Postsilicon.die_raised;
        Alcotest.(check bool) "passing die is compensated" true
          d.Postsilicon.die_meets_compensated
      end)
    dies;
  (* More islands raised can only add power. *)
  let rec mono r =
    r >= n
    || (Postsilicon.power_islands_mw k ~raised:r
        <= Postsilicon.power_islands_mw k ~raised:(r + 1)
       && mono (r + 1))
  in
  Alcotest.(check bool) "power monotone in raised islands" true (mono 0);
  Alcotest.(check bool) "baseline is the 0-raised power" true
    (Postsilicon.power_baseline_mw k
    <= Postsilicon.power_islands_mw k ~raised:0 +. 1e-9)

let test_chip_wide_subsumes_islands () =
  (* Chip-wide adaptation raises every cell the islands scheme raises
     (and more): any die the islands fix, 1.2V-everywhere fixes too. *)
  let _, dies = simulate_population () in
  List.iter
    (fun (d : Postsilicon.die) ->
      if d.Postsilicon.die_meets_compensated then
        Alcotest.(check bool) "compensated => chip-wide meets" true
          d.Postsilicon.die_meets_chip_wide)
    dies

let test_kernel_protocol_matches_run () =
  (* Replaying [run]'s RNG protocol (one uniform for the die position,
     then the die simulation) through the public kernel API reproduces
     the study chip-for-chip. *)
  let t, v = Lazy.force env in
  let s = Postsilicon.run ~n_chips:8 ~seed:5 t v in
  let k = Postsilicon.kernel t v in
  let sc = Postsilicon.scratch k in
  let rng = Srng.create 5 in
  List.iter
    (fun (c : Postsilicon.chip) ->
      let frac = Srng.uniform rng in
      let systematic = Postsilicon.systematic k (Position.at_fraction frac) in
      let d = Postsilicon.simulate_die k sc ~systematic rng in
      check_bits "die position" c.Postsilicon.diagonal_frac frac;
      Alcotest.(check (triple int int int))
        "die record matches study chip"
        (c.Postsilicon.violating, c.Postsilicon.detected, c.Postsilicon.raised)
        (d.Postsilicon.die_violating, d.Postsilicon.die_detected,
         d.Postsilicon.die_raised);
      Alcotest.(check (triple bool bool bool))
        "die verdicts match study chip"
        (c.Postsilicon.meets_uncompensated, c.Postsilicon.meets_compensated,
         c.Postsilicon.meets_chip_wide)
        (d.Postsilicon.die_meets_uncompensated,
         d.Postsilicon.die_meets_compensated,
         d.Postsilicon.die_meets_chip_wide))
    s.Postsilicon.chips

let test_diagonal_position_equivalence () =
  (* [at_xy f f] is the same physical die position as [at_fraction f]:
     identical RNG stream => bit-identical die. *)
  let t, v = Lazy.force env in
  let k = Postsilicon.kernel t v in
  let sc = Postsilicon.scratch k in
  List.iter
    (fun f ->
      let sys_diag = Postsilicon.systematic k (Position.at_fraction f) in
      let sys_xy =
        Postsilicon.systematic k (Position.at_xy ~x_frac:f ~y_frac:f ())
      in
      Alcotest.(check bool) "identical systematic arrays" true
        (sys_diag = sys_xy);
      let d1 = Postsilicon.simulate_die k sc ~systematic:sys_diag (Srng.create 21) in
      let d2 = Postsilicon.simulate_die k sc ~systematic:sys_xy (Srng.create 21) in
      Alcotest.(check bool) "identical dies" true (d1 = d2))
    [ 0.0; 0.3; 1.0 ]

(* --- wafer sweep --- *)

let wafer_cfg =
  { Wafer.default_config with Wafer.nx = 3; ny = 2; dies_per_cell = 5 }

let test_wafer_cell_independence () =
  (* Any cell can be recomputed from (seed, field, ix, iy) alone,
     without running the sweep: the per-cell stream never depends on
     the rest of the grid. *)
  let t, v = Lazy.force env in
  let s = Wafer.sweep t wafer_cfg in
  let k = Postsilicon.kernel t v in
  let sc = Postsilicon.scratch k in
  let ix = 2 and iy = 1 in
  let cell = s.Wafer.cells.((iy * wafer_cfg.Wafer.nx) + ix) in
  let systematic =
    Postsilicon.systematic k (Wafer.cell_position wafer_cfg ~ix ~iy)
  in
  let rng = Srng.create (Wafer.cell_seed wafer_cfg ~field:0 ~ix ~iy) in
  let raised = ref 0 and unc = ref 0 in
  for _ = 1 to wafer_cfg.Wafer.dies_per_cell do
    let d = Postsilicon.simulate_die k sc ~systematic rng in
    raised := !raised + d.Postsilicon.die_raised;
    if d.Postsilicon.die_meets_uncompensated then incr unc
  done;
  Alcotest.(check int) "cell die count" wafer_cfg.Wafer.dies_per_cell
    cell.Wafer.dies;
  check_bits "cell uncompensated yield"
    (float_of_int !unc /. float_of_int wafer_cfg.Wafer.dies_per_cell)
    cell.Wafer.yield_uncompensated;
  check_bits "cell mean raised"
    (float_of_int !raised /. float_of_int wafer_cfg.Wafer.dies_per_cell)
    cell.Wafer.mean_raised

let test_wafer_domain_invariance () =
  (* Bit-identical sweeps for every pool size (the CI runs the whole
     suite under PVTOL_DOMAINS=2 as well). *)
  let t, v = Lazy.force env in
  let run_with domains =
    let p = Pool.create ~domains () in
    let s = Wafer.run ~pool:p t v wafer_cfg in
    Pool.shutdown p;
    s
  in
  let s1 = run_with 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep identical with %d domains" domains)
        true
        (run_with domains = s1))
    [ 2; 4 ]

let test_wafer_aggregates_consistent () =
  let t, _ = Lazy.force env in
  let s = Wafer.sweep t wafer_cfg in
  let cells = Array.to_list s.Wafer.cells in
  Alcotest.(check int) "total dies"
    (wafer_cfg.Wafer.nx * wafer_cfg.Wafer.ny * wafer_cfg.Wafer.dies_per_cell)
    s.Wafer.dies;
  (* Wafer yields are the die-weighted means of the cell yields. *)
  let weighted f =
    List.fold_left
      (fun acc (c : Wafer.cell) -> acc +. (f c *. float_of_int c.Wafer.dies))
      0.0 cells
    /. float_of_int s.Wafer.dies
  in
  let close what a b =
    if Float.abs (a -. b) > 1e-12 then Alcotest.failf "%s: %g <> %g" what a b
  in
  close "uncompensated yield"
    (weighted (fun c -> c.Wafer.yield_uncompensated))
    s.Wafer.yield_uncompensated;
  close "compensated yield"
    (weighted (fun c -> c.Wafer.yield_compensated))
    s.Wafer.yield_compensated;
  close "mean raised" (weighted (fun c -> c.Wafer.mean_raised)) s.Wafer.mean_raised;
  (* Scenario counts add up; the delay extrema are the cell extrema. *)
  Alcotest.(check int) "scenario counts total" s.Wafer.dies
    (Array.fold_left ( + ) 0 s.Wafer.scenario_counts);
  let min_d =
    List.fold_left (fun acc (c : Wafer.cell) -> Float.min acc c.Wafer.delay.Stats.min)
      infinity cells
  in
  check_bits "delay min" min_d s.Wafer.delay.Stats.min;
  List.iter
    (fun (c : Wafer.cell) ->
      Alcotest.(check bool) "p50 <= p90" true
        (c.Wafer.delay_p50_ns <= c.Wafer.delay_p90_ns +. 1e-12);
      Alcotest.(check bool) "yield ordering" true
        (c.Wafer.yield_compensated >= c.Wafer.yield_uncompensated))
    cells

let test_wafer_memoized () =
  let t, _ = Lazy.force env in
  let s1 = Wafer.sweep t wafer_cfg in
  let s2 = Wafer.sweep t wafer_cfg in
  Alcotest.(check bool) "same sweep value (memoized stage)" true (s1 == s2)

let test_wafer_flat_memory () =
  (* Streaming statistics: the retained sweep grows with the grid, not
     with the die population. *)
  let t, v = Lazy.force env in
  let sweep_words dies_per_cell =
    let cfg = { wafer_cfg with Wafer.dies_per_cell } in
    Obj.reachable_words (Obj.repr (Wafer.run t v cfg))
  in
  Alcotest.(check int) "10x dies, same retained size" (sweep_words 4)
    (sweep_words 40)

let test_wafer_validation () =
  let t, v = Lazy.force env in
  let expect_invalid what cfg =
    try
      ignore (Wafer.run t v cfg);
      Alcotest.failf "%s: expected Invalid_argument" what
    with Invalid_argument _ -> ()
  in
  expect_invalid "empty grid" { wafer_cfg with Wafer.nx = 0 };
  expect_invalid "no dies" { wafer_cfg with Wafer.dies_per_cell = 0 };
  expect_invalid "direction mismatch"
    { wafer_cfg with Wafer.direction = Island.Horizontal }

let suite =
  ( "postsilicon",
    [
      Alcotest.test_case "diagonal study golden" `Quick test_run_golden;
      Alcotest.test_case "detection = violation" `Quick
        test_detection_equals_violation;
      Alcotest.test_case "raised monotonicity" `Quick test_raised_monotonicity;
      Alcotest.test_case "chip-wide subsumes islands" `Quick
        test_chip_wide_subsumes_islands;
      Alcotest.test_case "kernel protocol = run" `Quick
        test_kernel_protocol_matches_run;
      Alcotest.test_case "diagonal position equivalence" `Quick
        test_diagonal_position_equivalence;
      Alcotest.test_case "wafer cell independence" `Quick
        test_wafer_cell_independence;
      Alcotest.test_case "wafer domain invariance" `Quick
        test_wafer_domain_invariance;
      Alcotest.test_case "wafer aggregates consistent" `Quick
        test_wafer_aggregates_consistent;
      Alcotest.test_case "wafer sweep memoized" `Quick test_wafer_memoized;
      Alcotest.test_case "wafer flat memory" `Quick test_wafer_flat_memory;
      Alcotest.test_case "wafer validation" `Quick test_wafer_validation;
    ] )
