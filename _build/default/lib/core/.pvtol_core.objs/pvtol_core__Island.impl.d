lib/core/island.ml: Array Netlist Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util
