examples/fir_power.ml: Array Format List Printf Pvtol_netlist Pvtol_place Pvtol_power Pvtol_timing Pvtol_vex Pvtol_vexsim String
