open Pvtol_netlist
open Gen

type config = {
  seed : int;
  n_slots : int;
  width : int;
  mult_width : int;
  instr_bits_per_slot : int;
  decode_gates_per_slot : int;
  decode_depth : int;
  branch_gates : int;
  regfile : Regfile.config;
}

let default_config =
  {
    seed = 42;
    n_slots = 4;
    width = 32;
    mult_width = 24;
    instr_bits_per_slot = 32;
    decode_gates_per_slot = 3200;
    decode_depth = 33;
    branch_gates = 420;
    regfile = Regfile.default_config;
  }

let small_config =
  {
    seed = 7;
    n_slots = 2;
    width = 16;
    mult_width = 8;
    instr_bits_per_slot = 32;
    decode_gates_per_slot = 240;
    decode_depth = 8;
    branch_gates = 80;
    regfile =
      {
        Regfile.n_regs = 16;
        width = 16;
        n_read = 4;
        n_write = 2;
        addr_bits = 4;
        sel_fanout = 16;
      };
  }

type t = {
  netlist : Netlist.t;
  config : config;
  capture_stage : Netlist.cell -> Stage.t option;
}

(* Instruction-slot field boundaries (LSB-first within a slot's word):
   [0..5] rs1, [6..11] rs2, [12..17] rd, [18..25] imm, [26..31] opcode
   extras feeding the decode cloud. *)
let rs1_field cfg si = Array.sub si 0 cfg.regfile.Regfile.addr_bits
let rs2_field cfg si = Array.sub si 6 cfg.regfile.Regfile.addr_bits
let rd_field cfg si = Array.sub si 12 cfg.regfile.Regfile.addr_bits
let imm_field _cfg si = Array.sub si 18 8

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let zero_extend t bus width =
  if Array.length bus >= width then Array.sub bus 0 width
  else begin
    let z = tie0 t in
    Array.init width (fun i -> if i < Array.length bus then bus.(i) else z)
  end

(* Control-register layout within each slot's registered control word. *)
let ctrl_use_sub = 0
let ctrl_logic0 = 1
let ctrl_logic1 = 2
let ctrl_shift_dir = 3
let ctrl_shift_en = 4
let ctrl_res_mul = 5    (* result select: multiplier *)
let ctrl_res_addr = 6   (* result select: address unit *)
let ctrl_is_load = 7
let ctrl_wen = 8
let n_ctrl = 24

let build cfg =
  let lib = Pvtol_stdcell.Cell.default_library in
  let g = create ~design_name:"vex" ~seed:cfg.seed lib in
  let w = cfg.width in
  let abits = cfg.regfile.Regfile.addr_bits in

  (* ------------------------------------------------------------------ *)
  (* Fetch: PC register, incrementer, branch redirect mux.               *)
  let gf = within g ~stage:Stage.Fetch ~unit_name:"fetch" () in
  let pc_q = Array.make w 0 and pc_patch = Array.make w (fun _ -> ()) in
  for i = 0 to w - 1 do
    let q, p = dff_deferred gf in
    pc_q.(i) <- q;
    pc_patch.(i) <- p
  done;
  let pc_plus = Adder.incrementer gf pc_q in
  let instr = inputs gf "instr" (cfg.n_slots * cfg.instr_bits_per_slot) in

  (* Fetch/decode boundary registers. *)
  let gp_fd = within g ~stage:Stage.Pipe_regs ~unit_name:"pipe_fe_dc" () in
  let instr_dc = reg_bus gp_fd instr in
  let pc_dc = reg_bus gp_fd pc_q in
  let slot_instr s =
    Array.sub instr_dc (s * cfg.instr_bits_per_slot) cfg.instr_bits_per_slot
  in

  (* ------------------------------------------------------------------ *)
  (* Decode: control clouds, branch unit, hazard detection, RF read.     *)
  let slot_ctrl =
    Array.init cfg.n_slots (fun s ->
        let gd =
          within g ~stage:Stage.Decode ~unit_name:(Printf.sprintf "dec%d" s) ()
        in
        Logic_cloud.build gd
          {
            Logic_cloud.n_gates = cfg.decode_gates_per_slot;
            depth = cfg.decode_depth;
            n_outputs = n_ctrl;
          }
          (slot_instr s))
  in
  let gb = within g ~stage:Stage.Decode ~unit_name:"branch" () in
  let branch_ctrl =
    Logic_cloud.build gb
      { Logic_cloud.n_gates = cfg.branch_gates; depth = 8; n_outputs = 3 }
      (slot_instr 0)
  in
  let offset = zero_extend gb (imm_field cfg (slot_instr 0)) w in
  let branch_target, _ = Adder.carry_select gb pc_dc offset in
  let branch_taken = branch_ctrl.(0) in
  let taken_fan = fanout_tree gb branch_taken w in
  for i = 0 to w - 1 do
    pc_patch.(i) (mux2 gf pc_plus.(i) branch_target.(i) ~sel:taken_fan.(i))
  done;

  (* Register file.  Write-side nets do not exist yet (they come out of
     write-back); placeholders are merged once the loop closes. *)
  let grf = within g ~stage:Stage.Reg_file ~unit_name:"regfile" () in
  let read_addr =
    Array.init (cfg.n_slots * 2) (fun p ->
        let si = slot_instr (p / 2) in
        if p mod 2 = 0 then rs1_field cfg si else rs2_field cfg si)
  in
  let stub name len =
    Array.init len (fun i ->
        Netlist.Builder.placeholder (builder g) (Printf.sprintf "%s[%d]" name i))
  in
  let wa_stub = Array.init cfg.n_slots (fun s -> stub (Printf.sprintf "wa%d" s) abits) in
  let wd_stub = Array.init cfg.n_slots (fun s -> stub (Printf.sprintf "wd%d" s) w) in
  let we_stub = stub "we" cfg.n_slots in
  let rf =
    Regfile.build grf cfg.regfile ~read_addr ~write_addr:wa_stub
      ~write_data:wd_stub ~write_en:we_stub
  in

  (* DC/EX destination registers, needed by hazard detection. *)
  let gp_dx = within g ~stage:Stage.Pipe_regs ~unit_name:"pipe_dc_ex" () in
  let rd_ex =
    Array.init cfg.n_slots (fun s -> reg_bus gp_dx (rd_field cfg (slot_instr s)))
  in

  (* Hazard detection: per slot and source operand, match against every
     in-flight EX destination. *)
  let ghz = within g ~stage:Stage.Decode ~unit_name:"hazard" () in
  let match_bus src =
    Array.map
      (fun dst -> and_tree ghz (Array.to_list (Array.map2 (xnor2 ghz) src dst)))
      rd_ex
  in
  let fwd_sel_dc =
    Array.init cfg.n_slots (fun s ->
        let si = slot_instr s in
        (match_bus (rs1_field cfg si), match_bus (rs2_field cfg si)))
  in

  (* Remaining DC/EX boundary registers. *)
  let op_a =
    Array.init cfg.n_slots (fun s -> reg_bus gp_dx rf.Regfile.read_data.(2 * s))
  in
  let op_b =
    Array.init cfg.n_slots (fun s -> reg_bus gp_dx rf.Regfile.read_data.((2 * s) + 1))
  in
  let ctrl_ex = Array.init cfg.n_slots (fun s -> reg_bus gp_dx slot_ctrl.(s)) in
  let imm_ex =
    Array.init cfg.n_slots (fun s -> reg_bus gp_dx (imm_field cfg (slot_instr s)))
  in
  (* Architectural state carried down the pipe (PC chain and the full
     instruction word, as LISATek-generated cores do). *)
  let pc_ex = reg_bus gp_dx pc_dc in
  let _instr_ex = Array.init cfg.n_slots (fun s -> reg_bus gp_dx (slot_instr s)) in
  let fwd_ex_sel =
    Array.init cfg.n_slots (fun s ->
        let m1, m2 = fwd_sel_dc.(s) in
        (reg_bus gp_dx m1, reg_bus gp_dx m2))
  in

  (* EX/WB boundary registers exist before the execute logic so the
     forwarding network can consume last cycle's results. *)
  let gp_xw = within g ~stage:Stage.Pipe_regs ~unit_name:"pipe_ex_wb" () in
  let defer_bus n =
    let q = Array.make n 0 and patch = Array.make n (fun _ -> ()) in
    for i = 0 to n - 1 do
      let qi, p = dff_deferred gp_xw in
      q.(i) <- qi;
      patch.(i) <- p
    done;
    (q, patch)
  in
  let res_wb = Array.init cfg.n_slots (fun _ -> defer_bus w) in
  let rd_wb = Array.init cfg.n_slots (fun s -> reg_bus gp_xw rd_ex.(s)) in
  let ctrl_wb = Array.init cfg.n_slots (fun s -> reg_bus gp_xw ctrl_ex.(s)) in
  let _pc_wb = reg_bus gp_xw pc_ex in

  (* ------------------------------------------------------------------ *)
  (* Write-back: result/load select, then register-file write ports.     *)
  let gwb = within g ~stage:Stage.Writeback ~unit_name:"wb" () in
  let load_data = inputs gwb "dmem_rdata" (cfg.n_slots * w) in
  let wb_result =
    Array.init cfg.n_slots (fun s ->
        let ld = Array.sub load_data (s * w) w in
        let is_load_fan = fanout_tree gwb ctrl_wb.(s).(ctrl_is_load) w in
        Array.mapi (fun i r -> mux2 gwb r ld.(i) ~sel:is_load_fan.(i)) (fst res_wb.(s)))
  in
  (* Retire crossbar: each register-file write port arbitrates among the
     slot results (slot compaction, as in LISATek-generated retire
     logic).  Port selects come from a small write-back control cloud.
     Architecturally this is write-port logic, so its cells are
     accounted to the register file (as in Table 1, where write-back
     proper is only 0.04% of area). *)
  let gwb = within gwb ~stage:Stage.Reg_file ~unit_name:"regfile_wport" () in
  let retire_ctrl_in =
    Array.concat (Array.to_list (Array.map (fun c -> Array.sub c 0 12) ctrl_wb))
  in
  let retire_sel =
    Logic_cloud.build gwb
      { Logic_cloud.n_gates = 400; depth = 7; n_outputs = 2 * cfg.n_slots }
      retire_ctrl_in
  in
  let port_mux data_of p =
    (* Two select bits steer a 4:1 mux over the slots, per port. *)
    let width = Array.length (data_of 0) in
    let s0 = fanout_tree gwb retire_sel.(2 * p) width in
    let s1 = fanout_tree gwb retire_sel.((2 * p) + 1) width in
    Array.init width (fun i ->
        let a =
          mux2 gwb (data_of p).(i)
            (data_of ((p + 1) mod cfg.n_slots)).(i)
            ~sel:s0.(i)
        in
        let c =
          mux2 gwb
            (data_of ((p + 2) mod cfg.n_slots)).(i)
            (data_of ((p + 3) mod cfg.n_slots)).(i)
            ~sel:s0.(i)
        in
        mux2 gwb a c ~sel:s1.(i))
  in
  let port_data = Array.init cfg.n_slots (fun p -> port_mux (fun s -> wb_result.(s)) p) in
  let port_addr = Array.init cfg.n_slots (fun p -> port_mux (fun s -> rd_wb.(s)) p) in
  let port_we =
    Array.init cfg.n_slots (fun p ->
        let wen s = ctrl_wb.(s).(ctrl_wen) in
        let w0 = mux2 gwb (wen p) (wen ((p + 1) mod cfg.n_slots)) ~sel:retire_sel.(2 * p) in
        let w1 =
          mux2 gwb (wen ((p + 2) mod cfg.n_slots)) (wen ((p + 3) mod cfg.n_slots))
            ~sel:retire_sel.(2 * p)
        in
        mux2 gwb w0 w1 ~sel:retire_sel.((2 * p) + 1))
  in
  (* Close the register-file write loop. *)
  let b = builder g in
  for s = 0 to cfg.n_slots - 1 do
    Array.iteri (fun i p -> Netlist.Builder.merge b ~placeholder:p port_addr.(s).(i)) wa_stub.(s);
    Array.iteri (fun i p -> Netlist.Builder.merge b ~placeholder:p port_data.(s).(i)) wd_stub.(s);
    Netlist.Builder.merge b ~placeholder:we_stub.(s) port_we.(s)
  done;

  (* ------------------------------------------------------------------ *)
  (* Execute: forwarding, per-slot ALU+shifter / compare / address unit / *)
  (* multiplier, result selection.                                        *)
  let slot_results =
    Array.init cfg.n_slots (fun s ->
        let fwd_unit = s / ((cfg.n_slots + 1) / 2) in
        let gfw =
          within g ~stage:Stage.Execute ~unit_name:(Printf.sprintf "fwd%d" fwd_unit) ()
        in
        let forward operand sel_bits =
          (* Priority mux across the EX destinations, then WB results. *)
          let v = ref operand in
          Array.iteri
            (fun src sel ->
              let sel_fan = fanout_tree gfw sel w in
              v :=
                Array.mapi
                  (fun i x -> mux2 gfw x wb_result.(src).(i) ~sel:sel_fan.(i))
                  !v)
            sel_bits;
          !v
        in
        let sel_a, sel_b = fwd_ex_sel.(s) in
        let a = forward op_a.(s) sel_a in
        let bop = forward op_b.(s) sel_b in
        let gx = within g ~stage:Stage.Execute ~unit_name:(Printf.sprintf "slot%d" s) () in
        let ctrl = ctrl_ex.(s) in
        let op =
          {
            Alu.use_sub = ctrl.(ctrl_use_sub);
            logic_sel = [| ctrl.(ctrl_logic0); ctrl.(ctrl_logic1) |];
            shift_dir = ctrl.(ctrl_shift_dir);
            shift_amount = Array.sub bop 0 (log2 w);
            shift_enable = ctrl.(ctrl_shift_en);
          }
        in
        let alu_res, flags = Alu.alu_with_shifter gx ~op ~a ~b:bop in
        let addr_res, _ =
          Adder.carry_select gx a (zero_extend gx imm_ex.(s) w)
        in
        let mult_res =
          Multiplier.truncated gx ~width:w
            (Array.sub a 0 cfg.mult_width)
            (Array.sub bop 0 cfg.mult_width)
        in
        let mul_fan = fanout_tree gx ctrl.(ctrl_res_mul) w in
        let addr_fan = fanout_tree gx ctrl.(ctrl_res_addr) w in
        let res =
          Array.init w (fun i ->
              let r = mux2 gx alu_res.(i) mult_res.(i) ~sel:mul_fan.(i) in
              mux2 gx r addr_res.(i) ~sel:addr_fan.(i))
        in
        (res, flags, addr_res))
  in
  (* Connect execute results into the EX/WB registers. *)
  Array.iteri
    (fun s (res, _flags, _) ->
      Array.iteri (fun i p -> p res.(i)) (snd res_wb.(s)))
    slot_results;

  (* Primary outputs: PC (instruction address), per-slot memory address
     and store data, branch flag visibility. *)
  outputs gf "imem_addr" pc_q;
  Array.iteri
    (fun s (_, flags, addr_res) ->
      let gx = within g ~stage:Stage.Execute ~unit_name:(Printf.sprintf "slot%d" s) () in
      outputs gx (Printf.sprintf "dmem_addr%d" s) addr_res;
      outputs gx (Printf.sprintf "dmem_wdata%d" s) op_b.(s);
      outputs gx
        (Printf.sprintf "flags%d" s)
        [| flags.Comparator.zero; flags.Comparator.negative;
           flags.Comparator.equal; flags.Comparator.less_than |])
    slot_results;

  let netlist = Netlist.Builder.freeze b in
  let capture_stage (c : Netlist.cell) =
    if not (Pvtol_stdcell.Kind.is_sequential c.Netlist.cell.Pvtol_stdcell.Cell.kind) then None
    else
      match c.Netlist.unit_name with
      | "fetch" | "pipe_fe_dc" -> Some Stage.Fetch
      | "pipe_dc_ex" -> Some Stage.Decode
      | "pipe_ex_wb" -> Some Stage.Execute
      | "regfile" -> Some Stage.Writeback
      | _ -> None
  in
  { netlist; config = cfg; capture_stage }
