lib/variation/position.mli:
