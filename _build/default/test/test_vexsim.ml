(* Tests for the VLIW ISA, assembler and instruction-set simulator. *)

module Isa = Pvtol_vexsim.Isa
module Asm = Pvtol_vexsim.Asm
module Sim = Pvtol_vexsim.Sim
module Fir = Pvtol_vexsim.Fir

(* --- encoding --- *)

let op_gen =
  QCheck.Gen.(
    let* opn = int_bound 15 in
    let opcode = Option.get (Isa.opcode_of_number opn) in
    let* rd = int_bound 63 in
    let* rs1 = int_bound 63 in
    let* rs2 = int_bound 63 in
    let* imm = int_bound 255 in
    return { Isa.opcode; rd; rs1; rs2; imm })

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"op encode/decode roundtrip" ~count:500
    (QCheck.make op_gen)
    (fun op -> Isa.decode_op (Isa.encode_op op) = op)

let test_opcode_names () =
  for n = 0 to 15 do
    match Isa.opcode_of_number n with
    | Some op ->
      Alcotest.(check bool) "name roundtrip" true
        (Isa.opcode_of_name (Isa.opcode_name op) = Some op);
      Alcotest.(check int) "number roundtrip" n (Isa.opcode_number op)
    | None -> Alcotest.failf "opcode %d missing" n
  done

(* --- assembler --- *)

let test_asm_basic () =
  let prog = Asm.assemble "add r1, r2, r3 ; movi r4, -5 ; ld r6, 3(r7) ; nop" in
  Alcotest.(check int) "one bundle" 1 (Array.length prog);
  let b = prog.(0) in
  Alcotest.(check bool) "slot0 add" true
    (b.(0) = { Isa.opcode = Isa.Add; rd = 1; rs1 = 2; rs2 = 3; imm = 0 });
  Alcotest.(check bool) "slot1 movi sign" true
    (b.(1).Isa.opcode = Isa.Movi && b.(1).Isa.imm = 0xfb);
  Alcotest.(check bool) "slot2 ld disp" true
    (b.(2) = { Isa.opcode = Isa.Ld; rd = 6; rs1 = 7; rs2 = 0; imm = 3 });
  Alcotest.(check bool) "slot3 filled with nop" true (b.(3) = Isa.nop)

let test_asm_labels_and_comments () =
  let prog =
    Asm.assemble
      "# a comment line\n\
       start: movi r1, 2 ;; trailing comment\n\
       loop: sub r1, r1, r2\n\
       brnz r1, loop\n"
  in
  Alcotest.(check int) "three bundles" 3 (Array.length prog);
  Alcotest.(check int) "branch targets bundle 1" 1 prog.(2).(0).Isa.imm

let test_asm_errors () =
  let expect_error src =
    try
      ignore (Asm.assemble src);
      Alcotest.failf "expected assembly error for %S" src
    with Asm.Error _ -> ()
  in
  expect_error "add r1, r2";
  expect_error "add r99, r1, r2";
  expect_error "frob r1, r2, r3";
  expect_error "brnz r1, nowhere";
  expect_error "nop ; brnz r1, somewhere\nsomewhere: nop";
  expect_error "nop ; nop ; nop ; nop ; nop"

let test_disassemble_roundtrip () =
  let src = Fir.program ~taps:8 ~samples:16 in
  let prog = Asm.assemble src in
  let prog2 = Asm.assemble (Asm.disassemble prog) in
  Alcotest.(check bool) "disassemble/assemble fixpoint" true (prog = prog2)

(* --- simulator semantics --- *)

let run_prog ?setup src =
  let t = Sim.create (Asm.assemble src) in
  (match setup with Some f -> f t | None -> ());
  let stats = Sim.run t in
  (t, stats)

let test_sim_arith () =
  let t, _ =
    run_prog
      "movi r1, 7 ; movi r2, 3 ; nop ; nop\n\
       add r3, r1, r2 ; sub r4, r1, r2 ; and r5, r1, r2 ; or r6, r1, r2\n\
       xor r7, r1, r2 ; mul r8, r1, r2 ; cmplt r9, r2, r1 ; cmpeq r10, r1, r1"
  in
  List.iter
    (fun (r, v) -> Alcotest.(check int) (Printf.sprintf "r%d" r) v (Sim.get_reg t r))
    [ (3, 10); (4, 4); (5, 3); (6, 7); (7, 4); (8, 21); (9, 1); (10, 1) ]

let test_sim_vliw_read_before_write () =
  (* Both slots read the OLD r1 even though slot 0 writes it. *)
  let t, _ =
    run_prog ~setup:(fun t -> Sim.set_reg t 1 5)
      "movi r2, 9 ; add r1, r1, r1 ; nop ; nop\n\
       add r1, r1, r2 ; add r3, r1, r1 ; nop ; nop"
  in
  Alcotest.(check int) "slot1 read old r1 in bundle 2" 20 (Sim.get_reg t 3);
  Alcotest.(check int) "r1 = old r1 + r2" 19 (Sim.get_reg t 1)

let test_sim_memory () =
  let t, stats =
    run_prog
      "movi r1, 40 ; movi r2, 17 ; nop ; nop\n\
       st r2, 2(r1) ; nop ; nop ; nop\n\
       ld r3, 2(r1) ; nop ; nop ; nop"
  in
  Alcotest.(check int) "load after store" 17 (Sim.get_reg t 3);
  Alcotest.(check int) "mem value" 17 (Sim.load t 42);
  Alcotest.(check int) "mem ops counted" 2 stats.Sim.mem_ops

let test_sim_branch () =
  let _, stats =
    run_prog
      "movi r1, 3 ; movi r2, 1 ; nop ; nop\n\
       loop: sub r1, r1, r2\n\
       brnz r1, loop"
  in
  Alcotest.(check int) "branch taken twice" 2 stats.Sim.branches_taken;
  (* 1 init + 3 iterations x 2 bundles. *)
  Alcotest.(check int) "cycle count" 7 stats.Sim.cycles

let test_sim_wrap32 () =
  let t, _ =
    run_prog
      "movi r1, -1 ; movi r2, 1 ; nop ; nop\n\
       shl r3, r2, r1 ; add r4, r1, r2 ; nop ; nop"
  in
  (* r1 = 0xFFFFFFFF; shl by r1 land 31 = 31. *)
  Alcotest.(check int) "shl wraps" 0x80000000 (Sim.get_reg t 3);
  Alcotest.(check int) "add wraps to 0" 0 (Sim.get_reg t 4)

let test_sim_max_cycles () =
  let t = Sim.create (Asm.assemble "loop: movi r1, 1\nbrnz r1, loop") in
  let stats = Sim.run ~max_cycles:50 t in
  Alcotest.(check int) "bounded" 50 stats.Sim.cycles

let test_trace_matches_cycles () =
  let t = Sim.create (Asm.assemble "movi r1, 1 ; nop ; nop ; nop\nnop") in
  let stats = Sim.run t in
  Alcotest.(check int) "trace length = cycles" stats.Sim.cycles
    (List.length (Sim.trace t))

(* --- FIR benchmark --- *)

let test_fir_correct () =
  let r = Fir.run () in
  Alcotest.(check bool) "FIR matches reference convolution" true (Fir.check r);
  Alcotest.(check bool) "uses the multiplier" true (r.Fir.stats.Sim.mul_ops > 0);
  Alcotest.(check bool) "uses memory" true (r.Fir.stats.Sim.mem_ops > 0)

let test_fir_sizes () =
  List.iter
    (fun (taps, samples) ->
      let r = Fir.run ~taps ~samples ~seed:9 () in
      Alcotest.(check bool)
        (Printf.sprintf "FIR %dx%d" taps samples)
        true (Fir.check r))
    [ (4, 8); (8, 32); (24, 100) ]

let test_workloads_correct () =
  List.iter
    (fun (w : Pvtol_vexsim.Workloads.t) ->
      Alcotest.(check bool) (w.Pvtol_vexsim.Workloads.name ^ " correct") true
        w.Pvtol_vexsim.Workloads.correct;
      Alcotest.(check bool) "ran some cycles" true
        (w.Pvtol_vexsim.Workloads.stats.Sim.cycles > 50);
      Alcotest.(check int) "trace covers the run"
        w.Pvtol_vexsim.Workloads.stats.Sim.cycles
        (List.length w.Pvtol_vexsim.Workloads.trace))
    (Pvtol_vexsim.Workloads.all ())

let test_workload_mix_profiles () =
  let find name =
    List.find
      (fun (w : Pvtol_vexsim.Workloads.t) -> w.Pvtol_vexsim.Workloads.name = name)
      (Pvtol_vexsim.Workloads.all ())
  in
  (* The suite spans distinct unit mixes by design. *)
  Alcotest.(check bool) "memcpy has no multiplies" true
    ((find "memcpy").stats.Sim.mul_ops = 0);
  Alcotest.(check bool) "vector-max has no multiplies" true
    ((find "vector-max").stats.Sim.mul_ops = 0);
  Alcotest.(check bool) "iir is multiplier-heavy" true
    ((find "iir-biquad").stats.Sim.mul_ops > 100);
  Alcotest.(check bool) "vector-max branches a lot" true
    ((find "vector-max").stats.Sim.branches_taken > 50)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "vexsim",
    [
      qcheck prop_encode_roundtrip;
      Alcotest.test_case "opcode names" `Quick test_opcode_names;
      Alcotest.test_case "asm basic" `Quick test_asm_basic;
      Alcotest.test_case "asm labels/comments" `Quick test_asm_labels_and_comments;
      Alcotest.test_case "asm errors" `Quick test_asm_errors;
      Alcotest.test_case "disassemble roundtrip" `Quick test_disassemble_roundtrip;
      Alcotest.test_case "sim arithmetic" `Quick test_sim_arith;
      Alcotest.test_case "sim read-before-write" `Quick test_sim_vliw_read_before_write;
      Alcotest.test_case "sim memory" `Quick test_sim_memory;
      Alcotest.test_case "sim branch" `Quick test_sim_branch;
      Alcotest.test_case "sim 32-bit wrap" `Quick test_sim_wrap32;
      Alcotest.test_case "sim max cycles" `Quick test_sim_max_cycles;
      Alcotest.test_case "trace length" `Quick test_trace_matches_cycles;
      Alcotest.test_case "fir correct" `Quick test_fir_correct;
      Alcotest.test_case "fir sizes" `Quick test_fir_sizes;
      Alcotest.test_case "workloads correct" `Quick test_workloads_correct;
      Alcotest.test_case "workload mix profiles" `Quick test_workload_mix_profiles;
    ] )
