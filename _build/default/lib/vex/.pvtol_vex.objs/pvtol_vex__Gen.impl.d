lib/vex/gen.ml: Array List Netlist Option Printf Pvtol_netlist Pvtol_stdcell Pvtol_util Stage
