lib/vex/regfile.mli: Gen
