lib/ssta/scenario.ml: Float Format List Monte_carlo Pvtol_netlist Pvtol_variation Stage String
