lib/netlist/verilog.mli: Netlist Pvtol_stdcell
