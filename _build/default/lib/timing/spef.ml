open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Placement = Pvtol_place.Placement

type net_parasitics = {
  cap_ff : float;
  wire_delay : float;
}

exception Parse_error of string

let extract (p : Placement.t) =
  let nl = p.Placement.netlist in
  let lib = nl.Netlist.lib in
  Array.map
    (fun (net : Netlist.net) ->
      let dead = net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 in
      if dead then { cap_ff = 0.0; wire_delay = 0.0 }
      else begin
        let length = Placement.wire_length p net.Netlist.net_id in
        {
          cap_ff = lib.Cell_lib.wire_cap_per_um *. length;
          wire_delay = lib.Cell_lib.wire_delay_per_um *. (length /. 2.0);
        }
      end)
    nl.Netlist.nets

let to_string (nl : Netlist.t) parasitics =
  assert (Array.length parasitics = Netlist.net_count nl);
  let b = Buffer.create (Netlist.net_count nl * 32) in
  Buffer.add_string b "*SPEF \"pvtol-lumped\"\n";
  Buffer.add_string b (Printf.sprintf "*DESIGN %s\n" nl.Netlist.design_name);
  Buffer.add_string b (Printf.sprintf "*NETS %d\n" (Netlist.net_count nl));
  Array.iteri
    (fun i (np : net_parasitics) ->
      Buffer.add_string b
        (Printf.sprintf "*D_NET %d %.6f %.9f\n" i np.cap_ff np.wire_delay))
    parasitics;
  Buffer.add_string b "*END\n";
  Buffer.contents b

let write_file path nl parasitics =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl parasitics))

let of_string (nl : Netlist.t) src =
  let n = Netlist.net_count nl in
  let out = Array.make n None in
  String.split_on_char '\n' src
  |> List.iteri (fun lnum line ->
         let line = String.trim line in
         if String.length line > 7 && String.sub line 0 7 = "*D_NET " then begin
           match
             String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
           with
           | [ _; id; cap; wd ] -> begin
             match
               (int_of_string_opt id, float_of_string_opt cap, float_of_string_opt wd)
             with
             | Some id, Some cap_ff, Some wire_delay when id >= 0 && id < n ->
               out.(id) <- Some { cap_ff; wire_delay }
             | _ ->
               raise
                 (Parse_error (Printf.sprintf "line %d: malformed D_NET" (lnum + 1)))
           end
           | _ ->
             raise (Parse_error (Printf.sprintf "line %d: malformed D_NET" (lnum + 1)))
         end);
  Array.mapi
    (fun i v ->
      match v with
      | Some np -> np
      | None ->
        let dead =
          nl.Netlist.nets.(i).Netlist.driver = None
          && Array.length nl.Netlist.nets.(i).Netlist.sinks = 0
        in
        if dead then { cap_ff = 0.0; wire_delay = 0.0 }
        else raise (Parse_error (Printf.sprintf "net %d missing parasitics" i)))
    out

let read_file nl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string nl (really_input_string ic (in_channel_length ic)))

let annotate (nl : Netlist.t) parasitics ~capture =
  assert (Array.length parasitics = Netlist.net_count nl);
  let lib = nl.Netlist.lib in
  (* Sta.build consumes a length estimate; inverting the capacitance
     reproduces both the load and (for extract-produced parasitics) the
     per-pin wire delay exactly. *)
  let wire_length nid = parasitics.(nid).cap_ff /. lib.Cell_lib.wire_cap_per_um in
  Sta.build nl ~wire_length ~capture
