(** Run ledger: a self-describing record of one tool invocation.

    The paper's claims are quantitative, so every run should leave
    behind what was run (version, git revision, argv), under which
    knobs (seed, [PVTOL_DOMAINS], [PVTOL_MC_ENGINE], …), what it cost
    (wall/CPU time, GC totals, per-stage time/allocation/GC-collection
    attribution from the {!Trace}, pool queue-wait totals from the
    {!Metrics} histograms) and what it produced (an MD5 digest per
    emitted report, so two runs can be compared result-first).

    A collector is created at the start of the run (it snapshots the
    wall clock, CPU times and GC counters), accumulates config entries
    and artifact digests while the run executes, and is written as a
    JSON ledger at the end ([pvtol … --run-ledger run.json]).  The
    ledger is rendered human-readable by {!render}
    ([pvtol report run.json]). *)

type t
(** A mutable collector.  Thread-safe: artifacts and config entries may
    be added from pool workers. *)

val schema : int
(** Version of the ledger JSON layout (the ["schema"] field). *)

val version : string
(** The tool version baked into the build. *)

val git_describe : unit -> string option
(** [git describe --always --dirty] of the working directory, when it
    is a git checkout and the [git] binary is available; [None]
    otherwise (never raises). *)

val version_string : unit -> string
(** ["<version> (git <describe>)"], or just the version when no git
    metadata is available — the [--version] string. *)

val create : ?argv:string list -> unit -> t
(** Start a collector.  [argv] defaults to the live [Sys.argv]. *)

val add_config : t -> string -> Json.t -> unit
(** Record one configuration entry (seed, domain count, engine, …).
    Later entries with the same key override earlier ones. *)

val add_artifact : t -> name:string -> string -> unit
(** Record an emitted report: its [name] (a file name, or a
    [stdout:<exhibit>] pseudo-name) plus the MD5 digest and byte count
    of its full content. *)

val digest_hex : string -> string
(** MD5 of a content string, lowercase hex — the digest {!add_artifact}
    stores. *)

val to_json : ?trace:Trace.t -> ?metrics:Metrics.snapshot -> t -> Json.t
(** Close the ledger: wall/CPU/GC deltas are taken now.  [trace]
    contributes the per-stage attribution table; [metrics] the embedded
    snapshot and the pool queue-wait/job totals.  The collector stays
    usable (a later [to_json] re-reads the clocks). *)

val write :
  ?trace:Trace.t -> ?metrics:Metrics.snapshot -> t -> file:string -> unit

val render : Json.t -> (string, string) result
(** Render a parsed ledger as a markdown report: run header, config
    table, per-stage table (duration, self time, allocation, GC
    collections, domain), pool attribution, top metrics counters and
    the artifact digests.  [Error] when the value is not a ledger. *)
