(** Die position of the processor core on the exposure field.

    The paper studies how violations relax as the core moves from the
    chip's lower-left corner (point A, worst systematic corner of
    Fig. 2) toward the upper-right along the diagonal (points B, C, D).
    A position maps core-local placement coordinates (um) to field
    coordinates (mm). *)

type t = {
  label : string;
  origin_x_mm : float;  (** field coordinate of the core's (0,0) *)
  origin_y_mm : float;
}

val chip_mm : float
(** Chip edge length within the exposure field (14 mm, Fig. 2). *)

val at_fraction : ?label:string -> float -> t
(** Core origin at the given fraction of the chip diagonal
    (0 = lower-left corner, 1 = upper-right corner). *)

val point_a : t
val point_b : t
val point_c : t
val point_d : t
(** The paper's four named positions: A at the corner (0.0), and B, C,
    D at increasing diagonal fractions (0.25, 0.55, 0.80) where the
    violation scenarios relax one stage at a time. *)

val named : t list

val to_field : t -> x_um:float -> y_um:float -> float * float
(** Field coordinates (mm) of a core-local placement point. *)
