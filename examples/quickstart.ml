(* Quickstart: run the whole methodology end to end on the scaled-down
   core and print what each step produced.

     dune exec examples/quickstart.exe

   Steps (paper Fig. 1): generate + place + size the design, inject
   process variation via Monte-Carlo SSTA, classify the violation
   scenarios along the chip diagonal, grow nested voltage islands by
   vertical slicing, insert level shifters, and compare total power
   against chip-wide supply adaptation. *)

module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Level_shifter = Pvtol_core.Level_shifter
module Power = Pvtol_power.Power
module Scenario = Pvtol_ssta.Scenario
module Netlist = Pvtol_netlist.Netlist

let () =
  (* 1. Front half of the flow: design, placement, timing closure,
        switching activity, Monte-Carlo SSTA (memoized per position). *)
  let t = Flow.prepare ~config:Flow.quick_config () in
  Format.printf "Design: %a" Netlist.pp_summary (Flow.netlist t);
  Format.printf "Nominal clock: %.3f ns (%.1f MHz)@.@." (Flow.clock t)
    (1000.0 /. (Flow.clock t));

  (* 2. Violation scenarios at the named die positions A-D. *)
  List.iter (fun sc -> Format.printf "%a" Scenario.pp sc) (Flow.scenarios t);

  (* 3. Back half: islands + level shifters for one slicing direction. *)
  let v = Flow.variant t Island.Vertical in
  let part = v.Flow.slicing.Slicing.partition in
  Format.printf "@.Voltage islands (vertical slicing):@.";
  Array.iter
    (fun (isl : Island.t) ->
      Format.printf "  VI%d covers %.0f%% of the core (%d cells)@."
        isl.Island.index
        (100.0 *. Island.area_fraction part isl.Island.index)
        (Array.length isl.Island.cells))
    part.Island.islands;
  Format.printf "  level shifters inserted: %d (%.1f%% of core area)@."
    v.Flow.shifted.Level_shifter.count
    (100.0 *. v.Flow.shifted.Level_shifter.ls_area_frac);
  Format.printf "  post-insertion performance degradation: %.1f%%@.@."
    (100.0 *. v.Flow.degradation);

  (* 4. Power: chip-wide adaptation vs the island configurations. *)
  let chip =
    Power.total_mw (Flow.power_at t Flow.Chip_wide_high).Power.total
  in
  Format.printf "Chip-wide 1.2V power: %.2f mW@." chip;
  List.iter
    (fun (raised, pos) ->
      let p =
        Power.total_mw
          (Flow.power_at t ~position:pos (Flow.Islands (Island.Vertical, raised))).Power.total
      in
      Format.printf "  %d island(s) raised at %s: %.2f mW (%+.1f%% vs chip-wide)@."
        raised pos.Pvtol_variation.Position.label p
        (100.0 *. (p /. chip -. 1.0)))
    [
      (3, Pvtol_variation.Position.point_a);
      (2, Pvtol_variation.Position.point_b);
      (1, Pvtol_variation.Position.point_c);
    ]
