(** Generator for the paper's target design: a 4-stage, 4-issue
    clustered VLIW (VEX) core — fetch, decode (with branch unit),
    execute (4 slots, each with ALU + in-series shifter, compare unit,
    address unit and parallel multiplier; 2 forwarding units), and
    write-back into a fully synthesized multi-port register file.

    Memories (instruction and data) are modelled behaviourally as
    primary inputs/outputs, exactly as in the paper ("all memory
    devices were modelled at behavioral level with single cycle access
    time"). *)

open Pvtol_netlist

type config = {
  seed : int;
  n_slots : int;
  width : int;
  mult_width : int;        (** multiplier operand width *)
  instr_bits_per_slot : int;
  decode_gates_per_slot : int;
  decode_depth : int;
  branch_gates : int;
  regfile : Regfile.config;
}

val default_config : config
(** The paper's configuration: 4 slots, 32-bit datapath, 64x32 8R/4W
    register file, 128-bit instruction word. *)

val small_config : config
(** A scaled-down core (2 slots, 16-bit datapath, 16x16 register file)
    for fast tests and examples. *)

type t = {
  netlist : Netlist.t;
  config : config;
  capture_stage : Netlist.cell -> Stage.t option;
      (** For a sequential cell, the pipeline stage whose combinational
          paths it captures (the classification Fig. 3 reports by):
          PC/FE-DC flops capture fetch, DC-EX flops capture decode,
          EX-WB flops capture execute, register-file flops capture
          write-back. *)
}

val build : config -> t
(** Deterministic for a given config (including seed). *)
