lib/core/postsilicon.ml: Array Flow Format Island List Netlist Pvtol_netlist Pvtol_place Pvtol_power Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation Slicing Stage
