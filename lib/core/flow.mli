(** End-to-end methodology flow (paper Fig. 1) as a lazy stage graph.

    [prepare] is cheap: it only declares the {!Stage} nodes — target
    design generation, placement, timing closure with area recovery,
    FIR switching activity, Monte-Carlo SSTA per die position,
    violation-scenario classification, island slicing, level-shifter
    insertion and power analysis.  Each accessor forces exactly the
    stages it needs, computed at most once per flow handle (keyed
    stages — [mc], [islands], [variant], [power_at] — at most once per
    key), so a CLI exhibit, a benchmark, or a test pays only for what
    it reads.

    Every stage run is recorded in the flow's {!Pvtol_util.Trace}
    (span name, dependencies, wall clock, allocation) and failures
    surface as {!Stage.Stage_error} naming the failing stage and its
    forcing chain. *)

module Sg := Stage

open Pvtol_netlist
module Position := Pvtol_variation.Position

type config = {
  vex : Pvtol_vex.Vex_core.config;
  place_seed : int;
  place_iterations : int;
  utilization : float;
      (** Initial row utilization; below the paper's ~70% so the final
          design (after level-shifter insertion, +26-31% area) lands
          near 70% and incremental placement stays local. *)
  mc_samples : int;
  mc_seed : int;
  gatesim_cycles : int;
  fir_taps : int;
  fir_samples : int;
  corner_kappa : float;
}

val default_config : config
(** The paper's design point: full-size VEX, 400 MC samples, 512
    activity cycles, 16-tap/64-sample FIR. *)

val quick_config : config
(** Scaled-down core and sample counts for tests and examples. *)

type t
(** A flow handle: the stage graph plus its memo.  Values are computed
    on first access and shared by every later accessor call. *)

val prepare : ?config:config -> unit -> t
(** Declare the stage graph.  No stage is computed until accessed. *)

(** {2 Front-half stages} *)

val config : t -> config
val design : t -> Pvtol_vex.Vex_core.t
val netlist : t -> Netlist.t
(** The sized netlist. *)

val placement : t -> Pvtol_place.Placement.t
val sta : t -> Pvtol_timing.Sta.t
val nominal : t -> Pvtol_timing.Sta.result
(** Nominal-corner STA result of the sized design (the report behind
    [clock]). *)

val clock : t -> float
(** Nominal period, ns (execute-stage critical path). *)

val sizing : t -> Pvtol_timing.Sizing.report
val sampler : t -> Pvtol_variation.Sampler.t
val fir : t -> Pvtol_vexsim.Fir.result
val activity : t -> Pvtol_power.Gatesim.activity

val mc : t -> Position.t -> Pvtol_ssta.Monte_carlo.result
(** Monte-Carlo SSTA at a die position; memoized per position label. *)

val mc_all : t -> (Position.t * Pvtol_ssta.Monte_carlo.result) list
(** All named positions; uncached ones are evaluated as parallel tasks
    on the shared domain pool (bit-identical to serial evaluation). *)

val scenarios : t -> Pvtol_ssta.Scenario.t list
(** Violation scenarios at A, B, C, D. *)

(** {2 Back-half stages (per slicing direction)} *)

type variant = {
  direction : Island.direction;
  slicing : Slicing.outcome;
  shifted : Level_shifter.t;
  sta_shifted : Pvtol_timing.Sta.t;
  post_ls_worst : float;        (** nominal worst delay after insertion *)
  degradation : float;          (** (post_ls_worst - clock) / clock *)
  activity_shifted : Pvtol_power.Gatesim.activity;
}

val islands : t -> Island.direction -> Slicing.outcome
(** Voltage-island generation for one direction; memoized. *)

val variant : t -> Island.direction -> variant
(** Level-shifter insertion, incremental placement and timing closure
    on the islands of one direction; memoized per direction. *)

val logic_grouping : t -> (Logic_grouping.t, string) result
(** The §3 logic-based baseline on the same design; [Error] carries the
    infeasibility message.  Memoized so the ablation and power-grid
    exhibits share one run. *)

(** {2 Power} *)

type supply_config =
  | Baseline_low      (** everything at 1.0V — the pre-compensation design *)
  | Chip_wide_high    (** traditional full-chip adaptation: all at 1.2V *)
  | Islands of Island.direction * int
      (** level-shifted design of that slicing with islands [1..k] raised *)

val power_at :
  t -> ?position:Position.t -> supply_config -> Pvtol_power.Power.report
(** Power at a die position (leakage sees the systematic Lgate map
    there; default position A).  All configurations are evaluated at
    the same frequency (the nominal fmax), as in §5.  Memoized per
    (configuration, position). *)

val supply_label : supply_config -> string
(** Stable short label ("low", "high", "islands-vertical-3"), used as
    the power stage's trace key. *)

(** {2 Introspection} *)

val graph : t -> Sg.graph
val trace : t -> Pvtol_util.Trace.t
(** The span trace of every stage computed so far on this handle. *)

val growth_targets : Slicing.target list
(** The scenario ladder the islands compensate: island 1 for the
    single-stage scenario at C, island 2 for B, island 3 for A. *)
