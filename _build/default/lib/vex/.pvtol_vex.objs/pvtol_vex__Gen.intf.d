lib/vex/gen.mli: Netlist Pvtol_netlist Pvtol_stdcell Pvtol_util Stage
