(** Incremental (ECO) placement for post-processing insertions — the
    methodology's level-shifter step: "we envision incremental
    placement only for level shifter insertion".

    Existing cells never move: each new cell is dropped into the
    nearest free row gap that fits it, searching outward from its
    preferred row.  This keeps the performance-optimized placement
    untouched, which is the whole point of the paper's
    minimum-perturbation island style. *)

open Pvtol_netlist

type stats = {
  inserted : int;
  moved : int;                 (** pre-existing cells displaced: always 0 *)
  mean_displacement : float;   (** new cells' distance from their target, um *)
  max_displacement : float;
}

val insert :
  Placement.t ->
  Netlist.t ->
  desired:(Netlist.cell_id -> Pvtol_util.Geom.point) ->
  Placement.t * stats
(** [insert old_placement new_netlist ~desired] places [new_netlist],
    whose cells [0 .. n_old-1] must correspond one-to-one to the cells
    of [old_placement.netlist] (topology may differ), and whose extra
    cells get their target position from [desired].  Returns a fresh
    legal placement and insertion statistics.

    Raises [Failure] if some new cell fits in no row (the floorplan is
    effectively full). *)
