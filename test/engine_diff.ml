(* Reusable differential harness for the two Monte-Carlo engines.

   Any MC-consuming path — [Monte_carlo.run], the [Postsilicon] die
   kernel, a [Wafer] cell — can be run under both engines and diffed
   here.  Comparison contract:

   - The batched engine replaces the per-(cell, sample) transcendental
     delay scale with a polynomial whose documented relative error is
     <= 1e-12 ({!Pvtol_variation.Sampler.batch}); the forward STA pass
     adds and maxes those delays without amplifying relative error, so
     Monte-Carlo worst-slack samples must agree within {!rel_bound} —
     orders looser than observed (~1e-14), tight enough that any real
     regression (a swapped lane, a stale arrival, a misordered draw)
     trips it at once.
   - The incremental STA used by the post-silicon settle loop is exact
     (bound 0.), so die records and wafer cells must match bit for
     bit, and integer outputs (criticality counts, scenario verdicts)
     must be equal everywhere. *)

module MC = Pvtol_ssta.Monte_carlo

let rel_bound = 1e-9

(* Run [f] with [PVTOL_MC_ENGINE] set to [name] — exercises the same
   environment plumbing users rely on; restored afterwards.  (An unset
   variable is restored as [""], which selects the same default.) *)
let with_engine_env name f =
  let old = Sys.getenv_opt "PVTOL_MC_ENGINE" in
  Unix.putenv "PVTOL_MC_ENGINE" name;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PVTOL_MC_ENGINE" (Option.value old ~default:""))
    f

(* Apply [f] to both engines: [(golden, batched)]. *)
let both f = (f MC.Golden, f MC.Batched)

let check_floats ~label ?(rel = rel_bound) golden batched =
  if Array.length golden <> Array.length batched then
    Alcotest.failf "%s: length %d vs %d" label (Array.length golden)
      (Array.length batched);
  Array.iteri
    (fun i g ->
      let b = batched.(i) in
      let ok =
        g = b
        || Float.is_finite g && Float.is_finite b
           && Float.abs (b -. g)
              <= rel *. Float.max (Float.abs g) (Float.abs b)
      in
      if not ok then
        Alcotest.failf "%s: sample %d differs beyond %g rel (golden %h, batched %h)"
          label i rel g b)
    golden

let sorted_crit (r : MC.result) =
  Hashtbl.fold (fun cid n acc -> (cid, n) :: acc) r.MC.endpoint_critical_count []
  |> List.sort compare

(* Full Monte-Carlo result diff: worst-slack and per-stage sample
   arrays within [rel], criticality tables equal. *)
let check_mc ~label ?rel (golden : MC.result) (batched : MC.result) =
  check_floats ~label:(label ^ ": worst_samples") ?rel golden.MC.worst_samples
    batched.MC.worst_samples;
  List.iter2
    (fun (g : MC.stage_stats) (b : MC.stage_stats) ->
      if not (Pvtol_netlist.Stage.equal g.MC.stage b.MC.stage) then
        Alcotest.failf "%s: stage list mismatch" label;
      check_floats
        ~label:
          (Printf.sprintf "%s: %s samples" label
             (Pvtol_netlist.Stage.name g.MC.stage))
        ?rel g.MC.samples b.MC.samples)
    golden.MC.stages batched.MC.stages;
  if sorted_crit golden <> sorted_crit batched then
    Alcotest.failf "%s: criticality tables differ" label
