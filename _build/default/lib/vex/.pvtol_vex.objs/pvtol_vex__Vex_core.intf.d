lib/vex/vex_core.mli: Netlist Pvtol_netlist Regfile Stage
