examples/custom_cells.ml: Format List Pvtol_stdcell String
