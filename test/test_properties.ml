(* Cross-module property tests over randomly generated netlists and
   placements: the invariants here must hold for ANY design the
   builders can produce, not just the VEX core. *)

open Pvtol_netlist
module Builder = Netlist.Builder
module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell
module Sta = Pvtol_timing.Sta
module Srng = Pvtol_util.Srng

let lib = Cell.default_library

(* Random levelized DAG with flops sprinkled in, closed into a legal
   sequential design.  Deterministic in the seed. *)
let random_netlist seed =
  let rng = Srng.create seed in
  let b = Builder.create ~design_name:"rand" lib in
  let n_inputs = 2 + Srng.int rng 6 in
  let inputs = Array.init n_inputs (fun i -> Builder.input b (Printf.sprintf "i%d" i)) in
  let pool = ref (Array.to_list inputs) in
  let pool_arr () = Array.of_list !pool in
  let kinds =
    [| Kind.Inv; Kind.Buf; Kind.Nand2; Kind.Nor2; Kind.Xor2; Kind.And2;
       Kind.Or2; Kind.Aoi21; Kind.Mux2 |]
  in
  let n_cells = 20 + Srng.int rng 120 in
  let stage_of k =
    match k mod 4 with
    | 0 -> Stage.Decode
    | 1 -> Stage.Execute
    | 2 -> Stage.Writeback
    | _ -> Stage.Fetch
  in
  for k = 0 to n_cells - 1 do
    let arr = pool_arr () in
    let pick () = arr.(Srng.int rng (Array.length arr)) in
    let out =
      if Srng.int rng 8 = 0 then
        (* A flop launching from a random existing net. *)
        Builder.add b ~stage:(stage_of k) ~unit_name:"u" Kind.Dff [| pick () |]
      else begin
        let kind = kinds.(Srng.int rng (Array.length kinds)) in
        let fanins = Array.init (Kind.arity kind) (fun _ -> pick ()) in
        Builder.add b ~stage:(stage_of k) ~unit_name:"u" kind fanins
      end
    in
    pool := out :: !pool
  done;
  (* Terminate every dangling net into an output-reduction tree so the
     netlist has a primary output. *)
  let arr = pool_arr () in
  let rec reduce = function
    | [ x ] -> x
    | x :: y :: rest ->
      reduce (Builder.add b ~stage:Stage.Execute ~unit_name:"u" Kind.Xor2 [| x; y |] :: rest)
    | [] -> assert false
  in
  let out = reduce (Array.to_list arr) in
  Builder.output b out "out";
  Builder.freeze b

let capture_all (c : Netlist.cell) =
  if Kind.is_sequential c.Netlist.cell.Cell.kind then Some c.Netlist.stage
  else None

let prop_random_netlist_invariants =
  QCheck.Test.make ~name:"random netlists satisfy structural invariants"
    ~count:60 (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      match Netlist.check nl with Ok () -> true | Error _ -> false)

let prop_verilog_roundtrip_random =
  QCheck.Test.make ~name:"verilog round-trips random netlists" ~count:30
    (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      let nl2 = Pvtol_netlist.Verilog.of_string lib (Pvtol_netlist.Verilog.to_string nl) in
      Netlist.cell_count nl = Netlist.cell_count nl2
      && (match Netlist.check nl2 with Ok () -> true | Error _ -> false))

let prop_sta_scaling_linear =
  QCheck.Test.make ~name:"uniform delay scaling scales arrival linearly"
    ~count:30 (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      let sta = Sta.build nl ~wire_length:(fun _ -> 0.0) ~capture:capture_all in
      let delays = Sta.nominal_delays sta in
      let r1 = Sta.analyze sta ~delays in
      let doubled = Array.map (fun d -> d *. 2.0) delays in
      let r2 = Sta.analyze sta ~delays:doubled in
      (* With zero wire and zero setup the scaling would be exactly 2x;
         setup is additive, so subtract it from both sides. *)
      let s = lib.Cell.setup in
      r1.Sta.worst_endpoint = -1
      || Float.abs (r2.Sta.worst -. s -. (2.0 *. (r1.Sta.worst -. s))) < 1e-9)

let prop_sdf_roundtrip_random =
  QCheck.Test.make ~name:"sdf round-trips random netlists" ~count:30
    (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      let sta = Sta.build nl ~wire_length:(fun _ -> 2.0) ~capture:capture_all in
      let delays = Sta.nominal_delays sta in
      let back = Pvtol_timing.Sdf.of_string nl (Pvtol_timing.Sdf.to_string nl ~delays) in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-5) delays back)

let prop_gatesim_matches_simtool =
  (* The production activity simulator and the test-oracle simulator
     must agree on toggle counts for any design and stimulus. *)
  QCheck.Test.make ~name:"gatesim agrees with the reference simulator" ~count:15
    (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      let cycles = 24 in
      let stim = Pvtol_power.Gatesim.random_stimulus ~seed:(seed + 1) in
      let act = Pvtol_power.Gatesim.run ~cycles nl stim in
      (* Reference: Simtool with the same stimulus and clocking order. *)
      let sim = Simtool.create nl in
      let toggles = Array.make (Netlist.cell_count nl) 0 in
      let prev = Array.make (Netlist.net_count nl) false in
      for cycle = 0 to cycles - 1 do
        Array.iteri
          (fun idx nid ->
            Simtool.set_input sim nid (stim ~cycle ~input_index:idx))
          nl.Netlist.inputs;
        Simtool.eval_comb sim;
        Array.iter
          (fun (c : Netlist.cell) ->
            if Netlist.is_comb c then begin
              let v = Simtool.read sim c.Netlist.fanout in
              if v <> prev.(c.Netlist.fanout) then
                toggles.(c.Netlist.id) <- toggles.(c.Netlist.id) + 1;
              prev.(c.Netlist.fanout) <- v
            end)
          nl.Netlist.cells;
        Simtool.clock_edge sim;
        Array.iter
          (fun (c : Netlist.cell) ->
            if not (Netlist.is_comb c) then begin
              let v = Simtool.read sim c.Netlist.fanout in
              if v <> prev.(c.Netlist.fanout) then
                toggles.(c.Netlist.id) <- toggles.(c.Netlist.id) + 1;
              prev.(c.Netlist.fanout) <- v
            end)
          nl.Netlist.cells
      done;
      act.Pvtol_power.Gatesim.toggles = toggles)

let prop_spef_roundtrip =
  QCheck.Test.make ~name:"spef extract/annotate reproduces the placed STA"
    ~count:10 (QCheck.int_bound 100_000)
    (fun seed ->
      let nl = random_netlist seed in
      let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
      let p = Pvtol_place.Placer.place ~iterations:6 nl fp in
      let parasitics = Pvtol_timing.Spef.extract p in
      let text = Pvtol_timing.Spef.to_string nl parasitics in
      let back = Pvtol_timing.Spef.of_string nl text in
      let sta_direct = Sta.of_placement p ~capture:capture_all in
      let sta_annot = Pvtol_timing.Spef.annotate nl back ~capture:capture_all in
      let r1 = Sta.analyze sta_direct ~delays:(Sta.nominal_delays sta_direct) in
      let r2 = Sta.analyze sta_annot ~delays:(Sta.nominal_delays sta_annot) in
      Float.abs (r1.Sta.worst -. r2.Sta.worst) < 1e-6)

let prop_liberty_roundtrip_fuzzed =
  (* Random re-characterisations of the library survive the Liberty
     text round trip exactly (9 significant digits). *)
  QCheck.Test.make ~name:"liberty round-trips fuzzed characterisations"
    ~count:25 (QCheck.int_bound 100_000)
    (fun seed ->
      let rng = Srng.create seed in
      let fuzz v = v *. (0.5 +. Srng.uniform rng) in
      let lib0 = Cell.default_library in
      let lib =
        {
          lib0 with
          Cell.cells =
            List.map
              (fun (c : Cell.t) ->
                {
                  c with
                  Cell.area = fuzz c.Cell.area;
                  input_cap = fuzz c.Cell.input_cap;
                  d0 = fuzz c.Cell.d0;
                  drive_res = fuzz c.Cell.drive_res;
                  e_internal = fuzz c.Cell.e_internal;
                  leak = fuzz c.Cell.leak;
                })
              lib0.Cell.cells;
          wire_cap_per_um = fuzz lib0.Cell.wire_cap_per_um;
        }
      in
      let lib2 = Pvtol_stdcell.Liberty.of_string (Pvtol_stdcell.Liberty.to_string lib) in
      List.for_all2
        (fun (a : Cell.t) (b : Cell.t) ->
          (* %.9g keeps 9 significant digits -> <= 5e-9 relative error. *)
          let eq x y = Float.abs (x -. y) <= 1e-7 *. Float.max 1.0 (Float.abs x) in
          eq a.Cell.area b.Cell.area && eq a.Cell.input_cap b.Cell.input_cap
          && eq a.Cell.d0 b.Cell.d0 && eq a.Cell.drive_res b.Cell.drive_res
          && eq a.Cell.e_internal b.Cell.e_internal && eq a.Cell.leak b.Cell.leak)
        lib.Cell.cells lib2.Cell.cells)

let prop_island_domains_partition =
  QCheck.Test.make ~name:"island domains partition every placed point"
    ~count:100
    QCheck.(triple (float_range 0.1 0.9) (float_range 0.1 0.9) (float_range 0.1 0.9))
    (fun (t1, t2, t3) ->
      let module Island = Pvtol_core.Island in
      let module Geom = Pvtol_util.Geom in
      let core = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:100.0 ~ury:100.0 in
      let ts = List.sort compare [ t1; t2; t3 ] in
      let islands =
        List.mapi
          (fun i t ->
            {
              Island.index = i + 1;
              region = Island.region_of_fraction ~core Island.Vertical
                  Pvtol_place.Density.Left ~t;
              cells = [||];
            })
          ts
        |> Array.of_list
      in
      let part =
        { Island.direction = Island.Vertical; side = Pvtol_place.Density.Left;
          islands; core }
      in
      (* Sample points: the domain is the index of the innermost island
         containing the point, consistent with region membership. *)
      let ok = ref true in
      for ix = 0 to 19 do
        for iy = 0 to 19 do
          let pt = Geom.point (float_of_int ix *. 5.0 +. 1.0) (float_of_int iy *. 5.0 +. 1.0) in
          let d = Island.domain_of_point part pt in
          let member k = Geom.contains islands.(k).Island.region pt in
          let expected =
            if member 0 then 1 else if member 1 then 2 else if member 2 then 3 else 4
          in
          if d <> expected then ok := false
        done
      done;
      !ok)

(* --- streaming statistics vs the exact array-based reference --- *)

let samples_gen =
  (* Non-empty float arrays over a few orders of magnitude, including
     negative values and repeats. *)
  QCheck.(
    array_of_size Gen.(1 -- 200)
      (oneof [ float_range (-5.0) 5.0; float_range 100.0 1000.0 ]))

let prop_welford_matches_summarize =
  QCheck.Test.make ~name:"welford matches the exact summary" ~count:200
    samples_gen
    (fun xs ->
      let module W = Pvtol_util.Stream_stats.Welford in
      let w = W.create () in
      Array.iter (W.add w) xs;
      let s = Pvtol_util.Stats.summarize xs
      and ws = W.summary w in
      let eq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a) in
      ws.Pvtol_util.Stats.n = s.Pvtol_util.Stats.n
      && eq s.Pvtol_util.Stats.mean ws.Pvtol_util.Stats.mean
      && eq s.Pvtol_util.Stats.stddev ws.Pvtol_util.Stats.stddev
      && s.Pvtol_util.Stats.min = ws.Pvtol_util.Stats.min
      && s.Pvtol_util.Stats.max = ws.Pvtol_util.Stats.max)

let prop_welford_merge =
  QCheck.Test.make ~name:"welford split+merge equals one stream" ~count:200
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let module W = Pvtol_util.Stream_stats.Welford in
      let wa = W.create () and wb = W.create () and whole = W.create () in
      Array.iter (W.add wa) xs;
      Array.iter (W.add wb) ys;
      Array.iter (W.add whole) xs;
      Array.iter (W.add whole) ys;
      W.merge ~into:wa wb;
      let eq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a) in
      W.count wa = W.count whole
      && eq (W.mean whole) (W.mean wa)
      && eq (W.variance whole) (W.variance wa)
      && W.min wa = W.min whole
      && W.max wa = W.max whole)

let prop_welford_merge_adversarial =
  (* Pairwise merge vs the serial stream under adversarial orderings:
     segments of wildly different sizes (including empty and singleton
     ones) and magnitudes, folded in a shuffled order and also as a
     balanced tree.  Both must agree with one serial pass. *)
  QCheck.Test.make ~name:"welford merge survives adversarial orderings"
    ~count:200
    QCheck.(
      pair (int_bound 100_000)
        (small_list
           (oneof
              [ array_of_size Gen.(0 -- 3) (float_range (-1e6) 1e6);
                array_of_size Gen.(0 -- 40) (float_range (-1e-6) 1e-6);
                array_of_size Gen.(1 -- 40) (float_range 100.0 1000.0) ])))
    (fun (seed, segments) ->
      let module W = Pvtol_util.Stream_stats.Welford in
      let segments = Array.of_list segments in
      let whole = W.create () in
      Array.iter (fun seg -> Array.iter (W.add whole) seg) segments;
      let acc_of seg =
        let w = W.create () in
        Array.iter (W.add w) seg;
        w
      in
      let eq a b =
        (a = b)
        || Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)
      in
      let agrees w =
        W.count w = W.count whole
        && eq (W.mean whole) (W.mean w)
        && eq (W.variance whole) (W.variance w)
        && (W.count w = 0 || (W.min w = W.min whole && W.max w = W.max whole))
      in
      (* Shuffled fold order. *)
      let order = Array.init (Array.length segments) Fun.id in
      Srng.shuffle (Srng.create seed) order;
      let folded = W.create () in
      Array.iter (fun i -> W.merge ~into:folded (acc_of segments.(i))) order;
      (* Balanced pairwise tree, original order. *)
      let rec tree lo hi =
        if lo >= hi then W.create ()
        else if hi - lo = 1 then acc_of segments.(lo)
        else begin
          let mid = (lo + hi) / 2 in
          let l = tree lo mid in
          W.merge ~into:l (tree mid hi);
          l
        end
      in
      agrees folded && agrees (tree 0 (Array.length segments)))

let prop_p2_exact_small =
  QCheck.Test.make ~name:"p2 is exact for five or fewer samples" ~count:200
    QCheck.(pair (array_of_size Gen.(1 -- 5) (float_range (-10.0) 10.0))
              (float_range 0.05 0.95))
    (fun (xs, p) ->
      let module P2 = Pvtol_util.Stream_stats.P2 in
      let q = P2.create p in
      Array.iter (P2.add q) xs;
      Float.abs (P2.estimate q -. Pvtol_util.Stats.quantile xs p) <= 1e-12)

let prop_p2_estimates_quantile =
  (* The marker estimate is approximate: on 50..400 well-behaved
     samples it stays within 15% of the sample range of the exact
     order-statistic quantile (the observed worst case is far below
     this; the bound documents the estimator's contract, not its
     typical accuracy). *)
  QCheck.Test.make ~name:"p2 tracks the exact quantile" ~count:100
    QCheck.(triple (int_bound 100_000)
              (int_range 50 400)
              (oneofl [ 0.25; 0.5; 0.75; 0.9 ]))
    (fun (seed, n, p) ->
      let module P2 = Pvtol_util.Stream_stats.P2 in
      let rng = Srng.create seed in
      let xs =
        Array.init n (fun _ ->
            (* Sum of three uniforms: smooth, unimodal. *)
            Srng.uniform rng +. Srng.uniform rng +. Srng.uniform rng)
      in
      let q = P2.create p in
      Array.iter (P2.add q) xs;
      let exact = Pvtol_util.Stats.quantile xs p in
      let range =
        Array.fold_left Float.max neg_infinity xs
        -. Array.fold_left Float.min infinity xs
      in
      Float.abs (P2.estimate q -. exact) <= 0.15 *. range)

let prop_counter_merge =
  QCheck.Test.make ~name:"counter merge equals concatenated counts" ~count:200
    QCheck.(pair (list (int_range (-2) 8)) (list (int_range (-2) 8)))
    (fun (xs, ys) ->
      let module C = Pvtol_util.Stream_stats.Counter in
      let range = 6 in
      let ca = C.create range and cb = C.create range and whole = C.create range in
      List.iter (C.add ca) xs;
      List.iter (C.add cb) ys;
      List.iter (C.add whole) xs;
      List.iter (C.add whole) ys;
      C.merge ~into:ca cb;
      C.to_array ca = C.to_array whole
      && C.total ca = List.length xs + List.length ys)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "properties",
    [
      qcheck prop_random_netlist_invariants;
      qcheck prop_verilog_roundtrip_random;
      qcheck prop_sta_scaling_linear;
      qcheck prop_sdf_roundtrip_random;
      qcheck prop_gatesim_matches_simtool;
      qcheck prop_spef_roundtrip;
      qcheck prop_liberty_roundtrip_fuzzed;
      qcheck prop_island_domains_partition;
      qcheck prop_welford_matches_summarize;
      qcheck prop_welford_merge;
      qcheck prop_welford_merge_adversarial;
      qcheck prop_p2_exact_small;
      qcheck prop_p2_estimates_quantile;
      qcheck prop_counter_merge;
    ] )
