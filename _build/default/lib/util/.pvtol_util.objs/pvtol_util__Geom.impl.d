lib/util/geom.ml: Float
