(* Tests for the pluggable compensation-strategy interface
   ([Compensation]) and the strategy comparison harness ([Compare]).

   The load-bearing guarantee is differential: the refactored
   voltage-island and chip-wide strategies must reproduce the
   pre-refactor physics bit-for-bit — [Compare] on the same grid as a
   [Wafer] sweep must return identical yields and mean powers, on top
   of the golden study pins of [Test_postsilicon]. *)

module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Compensation = Pvtol_core.Compensation
module Compare = Pvtol_core.Compare
module Postsilicon = Pvtol_core.Postsilicon
module Wafer = Pvtol_core.Wafer
module Position = Pvtol_variation.Position
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng

let env = Test_extensions.env

let check_bits what expected got =
  if expected <> got then
    Alcotest.failf "%s: expected %h, got %h" what expected got

(* Same grid geometry as the wafer tests, so the memoized sweep is
   shared and the comparison is apples-to-apples. *)
let geometry = (3, 2, 5, 1, 7)

let compare_cfg choices =
  let nx, ny, dies_per_cell, fields, seed = geometry in
  { Compare.nx; ny; dies_per_cell; fields; seed;
    direction = Island.Vertical; choices }

let wafer_cfg =
  let nx, ny, dies_per_cell, fields, seed = geometry in
  { Wafer.nx; ny; dies_per_cell; fields; seed; direction = Island.Vertical }

let result_of r name =
  match
    List.find_opt (fun (s : Compare.strategy_result) -> s.Compare.name = name)
      r.Compare.results
  with
  | Some s -> s
  | None -> Alcotest.failf "strategy %s missing from report" name

(* --- differential: Compare reproduces the Wafer sweep bit-for-bit --- *)

let test_compare_matches_wafer () =
  let t, _ = Lazy.force env in
  let r = Compare.compare t (compare_cfg [ Compensation.Vi; Compensation.Chipwide ]) in
  let w = Wafer.sweep t wafer_cfg in
  Alcotest.(check int) "same die population" w.Wafer.dies r.Compare.dies;
  check_bits "uncompensated yield" w.Wafer.yield_uncompensated
    r.Compare.yield_uncompensated;
  let vi = result_of r "vi" and cw = result_of r "chipwide" in
  check_bits "vi yield = wafer compensated yield" w.Wafer.yield_compensated
    vi.Compare.yield;
  check_bits "chipwide yield = wafer chip-wide yield" w.Wafer.yield_chip_wide
    cw.Compare.yield;
  (* Mean powers go through the same per-cell Welford + row-major merge
     as the wafer sweep, over the same per-die values: bit-identical. *)
  check_bits "vi mean power = wafer islands power"
    w.Wafer.mean_power_islands_mw vi.Compare.mean_power_mw;
  check_bits "chipwide mean power = wafer chip-wide power"
    w.Wafer.mean_power_chip_wide_mw cw.Compare.mean_power_mw;
  check_bits "vi mean knob = wafer mean raised" w.Wafer.mean_raised
    vi.Compare.mean_knob

let test_compare_matches_wafer_domains () =
  (* Same differential at 1, 2 and 4 domains: both sweeps are ordered
     row-major reductions, so every pool size gives the same report. *)
  let t, v = Lazy.force env in
  let with_pool domains f =
    let p = Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)
  in
  let r1 =
    with_pool 1 (fun p ->
        Compare.run ~pool:p t v
          (compare_cfg [ Compensation.Vi; Compensation.Chipwide ]))
  in
  let w = Wafer.sweep t wafer_cfg in
  check_bits "1-domain vi yield" w.Wafer.yield_compensated
    (result_of r1 "vi").Compare.yield;
  List.iter
    (fun domains ->
      let r =
        with_pool domains (fun p -> Compare.run ~pool:p t v (compare_cfg Compensation.all_choices))
      in
      let r' =
        with_pool 1 (fun p -> Compare.run ~pool:p t v (compare_cfg Compensation.all_choices))
      in
      Alcotest.(check bool)
        (Printf.sprintf "full report identical with %d domains" domains)
        true (r = r'))
    [ 2; 4 ]

let test_strategy_isolation () =
  (* Strategies consume no RNG and share no mutable state: a strategy's
     column is identical whether it runs alone, with every rival, or in
     any order. *)
  let t, v = Lazy.force env in
  let full = Compare.run t v (compare_cfg Compensation.all_choices) in
  let reversed =
    Compare.run t v
      (compare_cfg
         [ Compensation.Buffers; Compensation.Skew; Compensation.Chipwide;
           Compensation.Vi ])
  in
  let alone c = Compare.run t v (compare_cfg [ c ]) in
  List.iter
    (fun choice ->
      let name = Compensation.choice_name choice in
      let f = result_of full name in
      Alcotest.(check bool)
        (name ^ ": same result reversed")
        true
        (result_of reversed name = f);
      Alcotest.(check bool)
        (name ^ ": same result alone")
        true
        (result_of (alone choice) name = f))
    Compensation.all_choices

(* --- strategy properties on a simulated population --- *)

let population () =
  let t, v = Lazy.force env in
  let ctx = Compensation.context t in
  let sc = Compensation.scratch ctx in
  let strategies =
    List.map (fun c -> Compensation.build t ctx v c) Compensation.all_choices
  in
  let applies =
    List.map (fun (s : Compensation.strategy) ->
        (s, s.Compensation.fresh_apply ()))
      strategies
  in
  let dies = ref [] in
  List.iter
    (fun pos ->
      let systematic = Compensation.systematic ctx pos in
      let rng = Srng.create 11 in
      for _ = 1 to 6 do
        let d = Compensation.detect ctx sc ~systematic rng in
        let outcomes =
          List.map (fun (s, apply) -> (s, apply sc d)) applies
        in
        dies := (d, outcomes) :: !dies
      done)
    [ Position.point_a; Position.point_b; Position.point_d;
      Position.at_xy ~x_frac:0.1 ~y_frac:0.9 () ];
  (ctx, List.rev !dies)

let test_passing_dies_touch_nothing () =
  (* Every strategy's knob count is 0 on a passing die — in particular
     skew tuning never worsens a die that already meets timing. *)
  let ctx, dies = population () in
  let baseline = Compensation.power_baseline_mw ctx in
  let some_passed = ref false in
  List.iter
    (fun ((d : Compensation.detect), outcomes) ->
      if d.Compensation.violating = 0 then begin
        some_passed := true;
        List.iter
          (fun ((s : Compensation.strategy), (o : Compensation.outcome)) ->
            Alcotest.(check int)
              (s.Compensation.name ^ ": knob 0 on passing die")
              0 o.Compensation.knob;
            Alcotest.(check bool)
              (s.Compensation.name ^ ": passing die still meets")
              true o.Compensation.meets;
            check_bits
              (s.Compensation.name ^ ": passing die area")
              0.0 o.Compensation.area_um2;
            if s.Compensation.name <> "vi" then
              check_bits
                (s.Compensation.name ^ ": passing die power is baseline")
                baseline o.Compensation.power_mw)
          outcomes
      end)
    dies;
  Alcotest.(check bool) "population exercises passing dies" true !some_passed

let test_knob_bounds_and_meets () =
  let _, dies = population () in
  let some_failed = ref false in
  List.iter
    (fun ((d : Compensation.detect), outcomes) ->
      if d.Compensation.violating > 0 then some_failed := true;
      List.iter
        (fun ((s : Compensation.strategy), (o : Compensation.outcome)) ->
          Alcotest.(check bool)
            (s.Compensation.name ^ ": knob within bounds")
            true
            (o.Compensation.knob >= 0
            && o.Compensation.knob <= s.Compensation.max_knob);
          if d.Compensation.violating > 0 && o.Compensation.meets then
            Alcotest.(check bool)
              (s.Compensation.name ^ ": fixing a failing die uses the knob")
              true
              (o.Compensation.knob > 0))
        outcomes)
    dies;
  Alcotest.(check bool) "population exercises failing dies" true !some_failed

let test_cost_monotone_in_knob () =
  (* Skew and buffer costs are knob-linear by construction: power and
     area never decrease as more elements are exercised. *)
  let _, dies = population () in
  List.iter
    (fun name ->
      let outcomes =
        List.map
          (fun (_, os) ->
            snd
              (List.find
                 (fun ((s : Compensation.strategy), _) ->
                   s.Compensation.name = name)
                 os))
          dies
      in
      let sorted =
        List.sort
          (fun (a : Compensation.outcome) b ->
            Stdlib.compare a.Compensation.knob b.Compensation.knob)
          outcomes
      in
      ignore
        (List.fold_left
           (fun ((pk, pp, pa) as prev) (o : Compensation.outcome) ->
             if o.Compensation.knob = pk then begin
               check_bits (name ^ ": equal knob, equal power") pp
                 o.Compensation.power_mw;
               check_bits (name ^ ": equal knob, equal area") pa
                 o.Compensation.area_um2;
               prev
             end
             else begin
               Alcotest.(check bool)
                 (name ^ ": power monotone in knob")
                 true
                 (o.Compensation.power_mw >= pp);
               Alcotest.(check bool)
                 (name ^ ": area monotone in knob")
                 true
                 (o.Compensation.area_um2 >= pa);
               (o.Compensation.knob, o.Compensation.power_mw,
                o.Compensation.area_um2)
             end)
           (0, (List.hd sorted).Compensation.power_mw,
            (List.hd sorted).Compensation.area_um2)
           sorted))
    [ "skew"; "buffers" ]

let test_vi_strategy_matches_postsilicon () =
  (* The island strategy IS the Postsilicon settle loop: replay the
     same dies through both APIs and diff the records bit-for-bit. *)
  let t, v = Lazy.force env in
  let ctx = Compensation.context t in
  let sc = Compensation.scratch ctx in
  let vi = Compensation.voltage_islands t ctx v in
  let cw = Compensation.chip_wide ctx in
  let vi_apply = vi.Compensation.fresh_apply () in
  let cw_apply = cw.Compensation.fresh_apply () in
  let k = Postsilicon.kernel t v in
  let ksc = Postsilicon.scratch k in
  List.iter
    (fun pos ->
      let systematic = Compensation.systematic ctx pos in
      let rng_a = Srng.create 19 and rng_b = Srng.create 19 in
      for _ = 1 to 5 do
        let d = Compensation.detect ctx sc ~systematic rng_a in
        let ovi = vi_apply sc d in
        let ocw = cw_apply sc d in
        let die = Postsilicon.simulate_die k ksc ~systematic rng_b in
        Alcotest.(check (triple int int bool))
          "violating / raised / meets"
          (die.Postsilicon.die_violating, die.Postsilicon.die_raised,
           die.Postsilicon.die_meets_compensated)
          (d.Compensation.violating, ovi.Compensation.knob,
           ovi.Compensation.meets);
        Alcotest.(check bool)
          "chip-wide verdict" die.Postsilicon.die_meets_chip_wide
          ocw.Compensation.meets;
        check_bits "worst low delay" die.Postsilicon.die_worst_low_ns
          d.Compensation.worst_low_ns;
        check_bits "vi die power" (Postsilicon.die_power_islands_mw k die)
          ovi.Compensation.power_mw;
        check_bits "chip-wide die power"
          (Postsilicon.die_power_chip_wide_mw k die)
          ocw.Compensation.power_mw
      done)
    [ Position.point_a; Position.point_c ]

(* --- harness behaviour --- *)

let test_compare_memoized () =
  let t, _ = Lazy.force env in
  let cfg = compare_cfg Compensation.all_choices in
  let r1 = Compare.compare t cfg in
  let r2 = Compare.compare t cfg in
  Alcotest.(check bool) "same report value (memoized stage)" true (r1 == r2);
  (* A different strategy list is a different stage key. *)
  let r3 = Compare.compare t (compare_cfg [ Compensation.Vi ]) in
  Alcotest.(check bool) "different key, different report" true (r3 != r1)

let test_compare_validation () =
  let t, v = Lazy.force env in
  let expect_invalid what cfg =
    try
      ignore (Compare.run t v cfg);
      Alcotest.failf "%s: expected Invalid_argument" what
    with Invalid_argument _ -> ()
  in
  expect_invalid "empty grid"
    { (compare_cfg Compensation.all_choices) with Compare.nx = 0 };
  expect_invalid "no strategies" (compare_cfg []);
  expect_invalid "duplicate strategy"
    (compare_cfg [ Compensation.Vi; Compensation.Vi ]);
  expect_invalid "direction mismatch"
    { (compare_cfg Compensation.all_choices) with
      Compare.direction = Island.Horizontal }

let test_choice_names_roundtrip () =
  List.iter
    (fun c ->
      match Compensation.choice_of_name (Compensation.choice_name c) with
      | Some c' -> Alcotest.(check bool) "roundtrip" true (c = c')
      | None -> Alcotest.fail "choice name does not parse back")
    Compensation.all_choices;
  Alcotest.(check bool) "unknown name rejected" true
    (Compensation.choice_of_name "razor" = None);
  Alcotest.(check string) "label order" "vi,chipwide,skew,buffers"
    (Compensation.choices_label Compensation.all_choices)

let test_report_shapes () =
  let t, _ = Lazy.force env in
  let r = Compare.compare t (compare_cfg Compensation.all_choices) in
  Alcotest.(check int) "one result per strategy" 4 (List.length r.Compare.results);
  let vi = result_of r "vi" in
  Alcotest.(check bool) "vi never hurts yield" true
    (vi.Compare.yield >= r.Compare.yield_uncompensated);
  List.iter
    (fun (s : Compare.strategy_result) ->
      Alcotest.(check bool) (s.Compare.name ^ ": yield in [unc, 1]") true
        (s.Compare.yield >= r.Compare.yield_uncompensated -. 1e-12
        && s.Compare.yield <= 1.0 +. 1e-12);
      Alcotest.(check bool) (s.Compare.name ^ ": power above baseline") true
        (s.Compare.mean_power_mw >= r.Compare.power_baseline_mw -. 1e-9))
    r.Compare.results;
  (* Render and JSON both mention every strategy once. *)
  let rendered = Compare.render r and json = Compare.to_json r in
  let count_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  in
  List.iter
    (fun (s : Compare.strategy_result) ->
      Alcotest.(check bool) (s.Compare.name ^ " rendered") true
        (count_sub rendered s.Compare.title = 1);
      Alcotest.(check int)
        (s.Compare.name ^ " in json")
        1
        (count_sub json (Printf.sprintf "\"name\": \"%s\"" s.Compare.name)))
    r.Compare.results

let suite =
  ( "compensation",
    [
      Alcotest.test_case "compare = wafer sweep (vi, chipwide)" `Quick
        test_compare_matches_wafer;
      Alcotest.test_case "compare domain invariance (1/2/4)" `Quick
        test_compare_matches_wafer_domains;
      Alcotest.test_case "strategy isolation (order, subset)" `Quick
        test_strategy_isolation;
      Alcotest.test_case "passing dies: knob 0 everywhere" `Quick
        test_passing_dies_touch_nothing;
      Alcotest.test_case "knob bounds and meets" `Quick
        test_knob_bounds_and_meets;
      Alcotest.test_case "skew/buffer cost monotone in knob" `Quick
        test_cost_monotone_in_knob;
      Alcotest.test_case "vi strategy = postsilicon kernel" `Quick
        test_vi_strategy_matches_postsilicon;
      Alcotest.test_case "compare memoized per key" `Quick
        test_compare_memoized;
      Alcotest.test_case "compare validation" `Quick test_compare_validation;
      Alcotest.test_case "choice names roundtrip" `Quick
        test_choice_names_roundtrip;
      Alcotest.test_case "report shapes (render, json)" `Quick
        test_report_shapes;
    ] )
