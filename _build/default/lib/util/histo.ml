type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  assert (hi > lo && bins > 0);
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts
let count t = t.total
let bin_width t = (t.hi -. t.lo) /. float_of_int (bins t)

let add t x =
  let b = int_of_float ((x -. t.lo) /. bin_width t) in
  let b = max 0 (min (bins t - 1) b) in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let of_samples ?bins:nbins xs =
  let n = Array.length xs in
  assert (n > 0);
  let nbins =
    match nbins with
    | Some b -> b
    | None -> max 1 (1 + int_of_float (Float.log2 (float_of_int n)))
  in
  let lo = Array.fold_left min infinity xs in
  let hi = Array.fold_left max neg_infinity xs in
  let hi = if hi > lo then hi else lo +. 1e-9 in
  (* Tiny headroom so the max sample falls in the last bin, not past it. *)
  let t = create ~lo ~hi:(hi +. ((hi -. lo) *. 1e-9)) ~bins:nbins in
  Array.iter (add t) xs;
  t

let bin_count t i = t.counts.(i)

let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let density t i =
  if t.total = 0 then 0.0
  else float_of_int t.counts.(i) /. (float_of_int t.total *. bin_width t)

let render ?(width = 50) t =
  let peak = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 1024 in
  for i = 0 to bins t - 1 do
    let bar = t.counts.(i) * width / peak in
    Buffer.add_string buf (Printf.sprintf "%+9.4f | %s %d\n" (bin_center t i) (String.make bar '#') t.counts.(i))
  done;
  Buffer.contents buf
