open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Clock_tree = Pvtol_timing.Clock_tree
module Paths = Pvtol_timing.Paths
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Placement = Pvtol_place.Placement
module Cell = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind
module Process = Pvtol_stdcell.Process
module Metrics = Pvtol_util.Metrics
module Monte_carlo = Pvtol_ssta.Monte_carlo

let m_vi_applied = Metrics.counter "compensation_vi_applied_total"
let m_chipwide_applied = Metrics.counter "compensation_chipwide_applied_total"
let m_skew_applied = Metrics.counter "compensation_skew_applied_total"
let m_buffers_applied = Metrics.counter "compensation_buffers_applied_total"
let m_skew_flops = Metrics.counter "skew_tuned_flops_total"
let m_buffers_inserted = Metrics.counter "buffers_inserted_total"

let analyzed = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

(* ------------------------------------------------------------------ *)
(* Shared per-die physics                                               *)

type ctx = {
  sampler : Sampler.t;
  placement : Placement.t;
  sta : Sta.t;
  clock : float;
  low : float;
  high : float;
  base : float array;
  n_cells : int;
  engine : Monte_carlo.engine;
  power_chip_wide : float;
  power_baseline : float;
}

type scratch = {
  ws : Sta.workspace;
  inc : Sta.inc_workspace;  (* [ws] is its inner workspace *)
  lgates : float array;
  delays : float array;
}

type detect = {
  violating : int;
  worst_low_ns : float;
}

type outcome = {
  meets : bool;
  knob : int;
  power_mw : float;
  area_um2 : float;
}

let context ?(engine = Monte_carlo.engine_of_env ()) (t : Flow.t) =
  let nl = Flow.netlist t in
  let lib = nl.Netlist.lib in
  let low = lib.Cell.process.Process.vdd_low in
  let high = lib.Cell.process.Process.vdd_high in
  let sta = Flow.sta t in
  let power_chip_wide =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Chip_wide_high).Power.total
  in
  let power_baseline =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Baseline_low).Power.total
  in
  {
    sampler = Flow.sampler t;
    placement = Flow.placement t;
    sta;
    clock = Flow.clock t;
    low;
    high;
    base = Sta.nominal_delays sta;
    n_cells = Netlist.cell_count nl;
    engine;
    power_chip_wide;
    power_baseline;
  }

let scratch c =
  let inc = Sta.inc_workspace c.sta in
  {
    ws = Sta.inc_ws inc;
    inc;
    lgates = Array.make c.n_cells 0.0;
    delays = Array.make c.n_cells 0.0;
  }

let clock c = c.clock
let power_baseline_mw c = c.power_baseline
let power_chip_wide_mw c = c.power_chip_wide

let systematic c position =
  Sampler.systematic_lgates c.sampler c.placement position

(* Re-time the shared scratch's current Lgate realisation under a
   per-cell supply map.  This is THE analysis step of the pre-refactor
   settle loop, verbatim: the incremental pass is bit-identical to the
   full one (bound 0.), so both engines produce the same die verdicts;
   the supply reconfigurations are where the cached arrivals pay off. *)
let analyze_shared c sc ~vdd =
  Sampler.scale_delays c.sampler ~base:c.base ~lgates:sc.lgates ~vdd
    ~out:sc.delays;
  match c.engine with
  | Monte_carlo.Golden -> Sta.analyze_into c.sta sc.ws ~delays:sc.delays
  | Monte_carlo.Batched ->
    Sta.analyze_incremental_into c.sta sc.inc ~delays:sc.delays

let count_violating ws clock =
  List.length
    (List.filter
       (fun s ->
         match Sta.ws_stage_delay ws s with
         | Some d -> d > clock +. 1e-12
         | None -> false)
       analyzed)

let detect c sc ~systematic rng =
  (* One random Lgate realisation for this die; every strategy below
     re-times the same realisation.  The single [sample_lgates] call is
     the die's only RNG consumption, so per-die streams are identical
     for every strategy subset a caller evaluates. *)
  Sampler.sample_lgates c.sampler ~systematic rng sc.lgates;
  analyze_shared c sc ~vdd:(fun _ -> c.low);
  let violating = count_violating sc.ws c.clock in
  let worst_low =
    List.fold_left
      (fun acc s ->
        match Sta.ws_stage_delay sc.ws s with
        | Some d -> Float.max acc d
        | None -> acc)
      0.0 analyzed
  in
  { violating; worst_low_ns = worst_low }

(* ------------------------------------------------------------------ *)
(* The strategy interface                                               *)

type strategy = {
  name : string;
  title : string;
  knob_units : string;
  static_area_um2 : float;
  max_knob : int;
  fresh_apply : unit -> scratch -> detect -> outcome;
}

(* Per-element cost of a post-silicon knob built from a library buffer:
   leakage at the low supply and nominal Lgate, plus switching at
   [toggle_rate] output toggles per cycle into a like-sized load.
   fJ/toggle x toggles/cycle / ns = uW; x1e-3 -> mW; nW x1e-6 -> mW. *)
let element_power_mw lib (cell : Cell.t) ~clock ~toggle_rate =
  let process = lib.Cell.process in
  let vdd = process.Process.vdd_low in
  let lgate_nm = process.Process.l_nominal_nm in
  let sw_fj =
    Cell.switching_energy_fj lib cell ~vdd ~load_ff:cell.Cell.input_cap
  in
  (sw_fj *. toggle_rate /. clock *. 1e-3)
  +. (Cell.leakage_nw lib cell ~vdd ~lgate_nm *. 1e-6)

(* ------------------------------------------------------------------ *)
(* Strategy 1: the paper's voltage islands                              *)

let voltage_islands (t : Flow.t) c (v : Flow.variant) =
  let part = v.Flow.slicing.Slicing.partition in
  let domains = Island.domains part c.placement in
  let n_islands = Array.length part.Island.islands in
  (* Power per compensation level, computed once (chip leakage varies
     with position but the dominant switching term does not). *)
  let power_of_raised =
    Array.init (n_islands + 1) (fun raised ->
        Power.total_mw
          (Flow.power_at t ~position:Position.point_b
             (Flow.Islands (v.Flow.direction, raised)))
            .Power.total)
  in
  let ls_area = v.Flow.shifted.Level_shifter.ls_area in
  {
    name = "vi";
    title = "voltage islands";
    knob_units = "islands";
    static_area_um2 = ls_area;
    max_knob = n_islands;
    fresh_apply =
      (fun () sc (d : detect) ->
        (* The sensors report the scenario; the controller raises that
           many islands, then — because Razor keeps monitoring in situ —
           keeps raising one more while violations persist (closed-loop
           post-silicon testing).  Verbatim the pre-refactor loop. *)
        let meets_with raised =
          if raised = 0 then d.violating = 0
          else begin
            analyze_shared c sc ~vdd:(fun cid ->
                if domains.(cid) <= raised then c.high else c.low);
            count_violating sc.ws c.clock = 0
          end
        in
        let rec settle r =
          if r >= n_islands then (n_islands, meets_with n_islands)
          else if meets_with r then (r, true)
          else settle (r + 1)
        in
        let raised, meets = settle (min d.violating n_islands) in
        if raised > 0 then Metrics.incr m_vi_applied;
        {
          meets;
          knob = raised;
          power_mw = power_of_raised.(raised);
          area_um2 = (if raised > 0 then ls_area else 0.0);
        });
  }

(* ------------------------------------------------------------------ *)
(* Strategy 2: traditional chip-wide adaptation                         *)

let chip_wide c =
  {
    name = "chipwide";
    title = "chip-wide 1.2V";
    knob_units = "raises";
    static_area_um2 = 0.0;
    max_knob = 1;
    fresh_apply =
      (fun () sc (d : detect) ->
        if d.violating = 0 then
          (* Raising the supply only speeds cells up, so a die passing
             at 1.0V passes at 1.2V; skip the analysis and leave it at
             the low supply. *)
          { meets = true; knob = 0; power_mw = c.power_baseline;
            area_um2 = 0.0 }
        else begin
          analyze_shared c sc ~vdd:(fun _ -> c.high);
          let meets = count_violating sc.ws c.clock = 0 in
          Metrics.incr m_chipwide_applied;
          { meets; knob = 1; power_mw = c.power_chip_wide; area_um2 = 0.0 }
        end);
  }

(* ------------------------------------------------------------------ *)
(* Strategy 3: post-silicon clock-skew tuning                           *)

let skew_tuning ?(range_frac = 0.10) ?(steps = 4) c =
  let nl = Sta.netlist c.sta in
  let lib = nl.Netlist.lib in
  let flops = Sta.flop_ids c.sta in
  (* The tuning elements live in a real clock tree: synthesize it over
     the placed flops and use its insertion-delay offsets as the
     baseline skew every die starts from. *)
  let tree = Clock_tree.synthesize c.placement ~flops in
  let offs = tree.Clock_tree.offsets in
  let stage_caps =
    List.map (fun s -> (s, Sta.stage_endpoint_ids c.sta s)) analyzed
  in
  let all_caps = Array.concat (List.map snd stage_caps) in
  let n_elements = Array.length all_caps in
  let element = Cell.find lib Kind.Buf Cell.X1 in
  (* Tuning elements sit on the clock: one output toggle per cycle. *)
  let unit_power = element_power_mw lib element ~clock:c.clock ~toggle_rate:1.0 in
  let unit_area = element.Cell.area in
  let max_tune = range_frac *. c.clock in
  let step = max_tune /. float_of_int steps in
  let max_iters = steps * List.length analyzed in
  {
    name = "skew";
    title = "clock-skew tuning";
    knob_units = "flops";
    static_area_um2 = float_of_int n_elements *. unit_area;
    max_knob = n_elements;
    fresh_apply =
      (fun () ->
        (* Private workspace: the shared scratch's incremental STA
           caches arrivals under an ideal clock, and a changed skew
           function is invisible to its delay-seeded worklist — so the
           skew settle runs full passes on its own buffers, leaving the
           shared state bit-exact for whatever strategy runs next. *)
        let ws = Sta.workspace c.sta in
        let delays = Array.make c.n_cells 0.0 in
        let tune = Array.make c.n_cells 0.0 in
        let skew cid = offs.(cid) +. tune.(cid) in
        fun sc (d : detect) ->
          if d.violating = 0 then
            { meets = true; knob = 0; power_mw = c.power_baseline;
              area_um2 = 0.0 }
          else begin
            Array.iter (fun cid -> tune.(cid) <- 0.0) all_caps;
            (* The die stays at the low supply; re-derive its delay
               vector from the shared Lgate realisation (the shared
               [sc.delays] may hold another strategy's last config). *)
            Sampler.scale_delays c.sampler ~base:c.base ~lgates:sc.lgates
              ~vdd:(fun _ -> c.low) ~out:delays;
            let failing s =
              match Sta.ws_stage_delay ws s with
              | Some dd -> dd > c.clock +. 1e-12
              | None -> false
            in
            (* Like the island controller's settle: while an analyzed
               stage fails, delay its capture flops one step — relaxing
               that stage's endpoints while loading the next stage's
               launches (the borrowing physics of Sta's skew handling)
               — and re-verify.  Stops on success, knob saturation, or
               the iteration cap (one downstream ripple per step). *)
            let rec settle iters =
              Sta.analyze_into ~skew c.sta ws ~delays;
              let bad = List.filter (fun (s, _) -> failing s) stage_caps in
              if bad = [] then true
              else if iters <= 0 then false
              else begin
                let moved = ref false in
                List.iter
                  (fun (_, caps) ->
                    Array.iter
                      (fun cid ->
                        if tune.(cid) +. step <= max_tune +. 1e-12 then begin
                          tune.(cid) <- tune.(cid) +. step;
                          moved := true
                        end)
                      caps)
                  bad;
                if !moved then settle (iters - 1) else false
              end
            in
            let meets = settle max_iters in
            let knob =
              Array.fold_left
                (fun acc cid -> if tune.(cid) > 0.0 then acc + 1 else acc)
                0 all_caps
            in
            if knob > 0 then Metrics.incr m_skew_applied;
            Metrics.add m_skew_flops knob;
            {
              meets;
              knob;
              power_mw = c.power_baseline +. (float_of_int knob *. unit_power);
              area_um2 = float_of_int knob *. unit_area;
            }
          end);
  }

(* ------------------------------------------------------------------ *)
(* Strategy 4: post-silicon tunable buffers                             *)

let tunable_buffers ?(sites_per_stage = 8) ?(max_per_site = 4)
    ?(trim_frac = 0.02) c =
  let nl = Sta.netlist c.sta in
  let lib = nl.Netlist.lib in
  (* Design-time site selection on the worst NOMINAL low-supply paths:
     the library is characterised at (vdd_low, nominal Lgate), so the
     STA's base delay vector IS the nominal low-supply corner. *)
  let nominal = Sta.analyze c.sta ~delays:c.base in
  let sites =
    List.concat_map
      (fun s ->
        List.map fst
          (Paths.worst_endpoints ~stage:s c.sta nominal ~k:sites_per_stage))
      analyzed
  in
  let site_cap = Array.make c.n_cells 0 in
  List.iter (fun cid -> site_cap.(cid) <- max_per_site) sites;
  let n_sites = List.length sites in
  let stage_caps =
    List.map (fun s -> (s, Sta.stage_endpoint_ids c.sta s)) analyzed
  in
  let buffer = Cell.find lib Kind.Buf Cell.X4 in
  (* Data-path buffers: toggle at a typical signal activity. *)
  let unit_power = element_power_mw lib buffer ~clock:c.clock ~toggle_rate:0.2 in
  let unit_area = buffer.Cell.area in
  let trim = trim_frac *. c.clock in
  let max_knob = n_sites * max_per_site in
  {
    name = "buffers";
    title = "tunable buffers";
    knob_units = "buffers";
    static_area_um2 = float_of_int max_knob *. unit_area;
    max_knob;
    fresh_apply =
      (fun () ->
        let ws = Sta.workspace c.sta in
        let delays = Array.make c.n_cells 0.0 in
        let trims = Array.make c.n_cells 0 in
        fun sc (d : detect) ->
          if d.violating = 0 then
            { meets = true; knob = 0; power_mw = c.power_baseline;
              area_um2 = 0.0 }
          else begin
            List.iter (fun cid -> trims.(cid) <- 0) sites;
            Sampler.scale_delays c.sampler ~base:c.base ~lgates:sc.lgates
              ~vdd:(fun _ -> c.low) ~out:delays;
            (* One STA pass for this die's endpoint arrivals; each trim
               stage then shaves [trim] ns off its endpoint's path, so
               the greedy loop below is pure arithmetic: enable one trim
               at a time on the binding endpoint of a failing stage
               until every stage meets or the binding endpoint is out of
               (configured or remaining) trims. *)
            Sta.analyze_into c.sta ws ~delays;
            let eff cid =
              Sta.ws_endpoint_delay ws cid
              -. (float_of_int trims.(cid) *. trim)
            in
            let binding caps =
              Array.fold_left
                (fun (wc, wd) cid ->
                  let dd = eff cid in
                  if dd > wd then (cid, dd) else (wc, wd))
                (-1, neg_infinity) caps
            in
            let rec settle () =
              let bad =
                List.filter
                  (fun (_, caps) -> snd (binding caps) > c.clock +. 1e-12)
                  stage_caps
              in
              match bad with
              | [] -> true
              | (_, caps) :: _ ->
                let cid, _ = binding caps in
                if cid >= 0 && trims.(cid) < site_cap.(cid) then begin
                  trims.(cid) <- trims.(cid) + 1;
                  settle ()
                end
                else false (* binding endpoint is not a tunable site *)
            in
            let meets = settle () in
            let knob = List.fold_left (fun a cid -> a + trims.(cid)) 0 sites in
            if knob > 0 then Metrics.incr m_buffers_applied;
            Metrics.add m_buffers_inserted knob;
            {
              meets;
              knob;
              power_mw = c.power_baseline +. (float_of_int knob *. unit_power);
              area_um2 = float_of_int knob *. unit_area;
            }
          end);
  }

(* ------------------------------------------------------------------ *)
(* Strategy selection                                                   *)

type choice = Vi | Chipwide | Skew | Buffers

let all_choices = [ Vi; Chipwide; Skew; Buffers ]

let choice_name = function
  | Vi -> "vi"
  | Chipwide -> "chipwide"
  | Skew -> "skew"
  | Buffers -> "buffers"

let choice_of_name = function
  | "vi" -> Some Vi
  | "chipwide" -> Some Chipwide
  | "skew" -> Some Skew
  | "buffers" -> Some Buffers
  | _ -> None

let choices_label cs = String.concat "," (List.map choice_name cs)

let build t c v = function
  | Vi -> voltage_islands t c v
  | Chipwide -> chip_wide c
  | Skew -> skew_tuning c
  | Buffers -> tunable_buffers c
