(* Statistical test harness for the variance-reduced yield estimators:
   likelihood-ratio exactness on a synthetic mixture, LHS quota
   accounting, stopping-rule behaviour, cross-domain / cross-engine
   bit-identity of sampling reports — and, behind PVTOL_SLOW_TESTS=1,
   the differential oracle against long brute-force runs and the
   analytic SSTA model at the paper's die positions. *)

module Smart_sampling = Pvtol_ssta.Smart_sampling
module Analytic = Pvtol_ssta.Analytic
module Flow = Pvtol_core.Flow
module Wafer = Pvtol_core.Wafer
module Position = Pvtol_variation.Position
module Specfun = Pvtol_util.Specfun
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng
module Stage = Pvtol_netlist.Stage

let flow = lazy (Flow.prepare ~config:Flow.quick_config ())

let with_pool ~domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Likelihood-ratio weights on a synthetic mixture                      *)

(* A small hand-built mixture over R^6 with overlapping supports, so
   the Gram matrix has off-diagonal terms.  Sampling from the mixture
   exactly as the production driver does (pick a component, add its
   mean shift to a fresh standard-normal draw) and weighting with the
   raw draw must integrate to 1 — the balance heuristic is unbiased for
   the constant integrand — and must reproduce a known tail
   probability for a tilted integrand. *)
let synthetic_model ~alpha =
  let t1 =
    {
      Smart_sampling.cells = [| 0; 1; 2 |];
      dir = Array.make 3 (1.0 /. sqrt 3.0);
      theta = 1.5;
    }
  in
  let t2 =
    {
      Smart_sampling.cells = [| 2; 3 |];
      dir = [| 0.6; 0.8 |];
      theta = 2.5;
    }
  in
  let t3 =
    { Smart_sampling.cells = [| 5 |]; dir = [| 1.0 |]; theta = 0.8 }
  in
  Smart_sampling.make ~alpha [| t1; t2; t3 |]

let test_weights_integrate_to_one () =
  let alpha = 0.3 in
  let model = synthetic_model ~alpha in
  Alcotest.(check int) "components" 3 (Smart_sampling.n_components model);
  let dim = 6 in
  let rng = Srng.create 2718 in
  let z = Array.make dim 0.0 in
  let draws = 40_000 in
  let sum_w = ref 0.0 and sum_w2 = ref 0.0 in
  let sum_f = ref 0.0 and sum_f2 = ref 0.0 in
  (* Tail integrand along component 1's direction: under the nominal
     measure its projection is standard normal. *)
  let u1 = 1.0 /. sqrt 3.0 in
  let tail_cut = 2.0 in
  let max_w = ref 0.0 in
  for _ = 1 to draws do
    let comp = Smart_sampling.pick model rng in
    for i = 0 to dim - 1 do
      z.(i) <- Srng.gaussian rng
    done;
    let w = Smart_sampling.weight model ~comp ~z in
    if w > !max_w then max_w := w;
    (* The realised total draw adds the picked component's shift. *)
    let shift k =
      match Smart_sampling.shift model ~comp with
      | Either.Right () -> 0.0
      | Either.Left t ->
        let s = ref 0.0 in
        Array.iteri
          (fun j c -> if c = k then s := !s +. (t.Smart_sampling.theta *. t.Smart_sampling.dir.(j)))
          t.Smart_sampling.cells;
        !s
    in
    let proj1 = u1 *. ((z.(0) +. shift 0) +. (z.(1) +. shift 1) +. (z.(2) +. shift 2)) in
    let f = if proj1 > tail_cut then w else 0.0 in
    sum_w := !sum_w +. w;
    sum_w2 := !sum_w2 +. (w *. w);
    sum_f := !sum_f +. f;
    sum_f2 := !sum_f2 +. (f *. f)
  done;
  let n = float_of_int draws in
  let mean_w = !sum_w /. n in
  let se_w = sqrt (((!sum_w2 /. n) -. (mean_w *. mean_w)) /. n) in
  Alcotest.(check bool)
    (Printf.sprintf "E[w] = 1 within 4 se (got %.4f +- %.4f)" mean_w se_w)
    true
    (Float.abs (mean_w -. 1.0) <= 4.0 *. se_w);
  Alcotest.(check bool) "weights bounded by 1/alpha" true
    (!max_w <= (1.0 /. alpha) +. 1e-12);
  (* E_q[w 1{<u1, z_total> > cut}] = P(N(0,1) > cut). *)
  let mean_f = !sum_f /. n in
  let se_f = sqrt (((!sum_f2 /. n) -. (mean_f *. mean_f)) /. n) in
  let exact = 1.0 -. Specfun.normal_cdf ~mu:0.0 ~sigma:1.0 tail_cut in
  Alcotest.(check bool)
    (Printf.sprintf "tail probability %.5f vs exact %.5f" mean_f exact)
    true
    (Float.abs (mean_f -. exact) <= 5.0 *. se_f)

let test_plain_model () =
  Alcotest.(check int) "no components" 0
    (Smart_sampling.n_components Smart_sampling.plain);
  let z = Array.init 4 (fun i -> float_of_int i) in
  Alcotest.(check (float 0.0)) "unit weight" 1.0
    (Smart_sampling.weight Smart_sampling.plain ~comp:(-1) ~z);
  (* pick consumes exactly one uniform also on the plain model, so the
     per-die stream layout never depends on the site's mixture. *)
  let r1 = Srng.create 5 and r2 = Srng.create 5 in
  Alcotest.(check int) "plain picks defensive" (-1)
    (Smart_sampling.pick Smart_sampling.plain r1);
  ignore (Srng.uniform r2);
  Alcotest.(check (float 0.0)) "exactly one uniform consumed"
    (Srng.uniform r2) (Srng.uniform r1);
  match Smart_sampling.shift Smart_sampling.plain ~comp:(-1) with
  | Either.Right () -> ()
  | Either.Left _ -> Alcotest.fail "defensive pick must not shift"

let test_make_validation () =
  Alcotest.check_raises "alpha 0 rejected"
    (Invalid_argument "Smart_sampling.make: alpha must be in (0, 1]")
    (fun () -> ignore (Smart_sampling.make ~alpha:0.0 [||]));
  Alcotest.(check int) "empty tilts collapse to plain" 0
    (Smart_sampling.n_components (Smart_sampling.make [||]))

(* ------------------------------------------------------------------ *)
(* Latin-hypercube quotas                                               *)

let test_lhs_permutations () =
  List.iter
    (fun n ->
      let rng = Srng.create (100 + n) in
      let px, py = Smart_sampling.lhs_permutations rng n in
      let is_perm a =
        let seen = Array.make n false in
        Array.iter (fun i -> seen.(i) <- true) a;
        Array.for_all Fun.id seen
      in
      Alcotest.(check bool)
        (Printf.sprintf "x axis is a permutation of 0..%d" (n - 1))
        true (is_perm px);
      Alcotest.(check bool)
        (Printf.sprintf "y axis is a permutation of 0..%d" (n - 1))
        true (is_perm py);
      (* Determinism: the same seed replays the same plan. *)
      let px', py' =
        Smart_sampling.lhs_permutations (Srng.create (100 + n)) n
      in
      Alcotest.(check bool) "deterministic" true (px = px' && py = py'))
    [ 1; 2; 7; 16 ];
  Alcotest.check_raises "empty round rejected"
    (Invalid_argument "Smart_sampling.lhs_permutations: empty round")
    (fun () -> ignore (Smart_sampling.lhs_permutations (Srng.create 1) 0))

let test_lhs_strata_quota () =
  (* Every stratum receives exactly its quota of dies per round. *)
  let t = Lazy.force flow in
  with_pool ~domains:2 (fun pool ->
      let cfg =
        {
          Wafer.default_sampling_config with
          Wafer.s_method = Smart_sampling.Lhs;
          s_strata = 2;
          s_dies_per_round = 5;
          s_max_rounds = 2;
          s_ci_target = 1e-12;
        }
      in
      let r = Wafer.estimate_run ~pool t cfg in
      Alcotest.(check int) "strata" 4 (Array.length r.Wafer.sr_groups);
      Array.iter
        (fun g ->
          Alcotest.(check int) "quota per stratum" 10 g.Wafer.sg_dies)
        r.Wafer.sr_groups;
      Alcotest.(check int) "total dies" 40 r.Wafer.sr_dies)

(* ------------------------------------------------------------------ *)
(* Stopping rule                                                        *)

let test_stopping_rule () =
  let t = Lazy.force flow in
  with_pool ~domains:2 (fun pool ->
      let base =
        {
          Wafer.default_sampling_config with
          Wafer.s_strata = 2;
          s_dies_per_round = 4;
          s_max_rounds = 3;
        }
      in
      (* Unreachable target: the rule must not fire early, and the CI
         must still be above the target when the budget runs out. *)
      let r =
        Wafer.estimate_run ~pool t { base with Wafer.s_ci_target = 1e-12 }
      in
      Alcotest.(check bool) "impossible target does not converge" false
        r.Wafer.sr_converged;
      Alcotest.(check int) "budget exhausted" 3 r.Wafer.sr_rounds;
      Alcotest.(check bool) "half-width above target" true
        (r.Wafer.sr_ci_halfwidth > 1e-12);
      (* Trivial target: one round suffices, and convergence implies
         the half-width really is at or below the target. *)
      let r = Wafer.estimate_run ~pool t { base with Wafer.s_ci_target = 1.0 } in
      Alcotest.(check bool) "trivial target converges" true
        r.Wafer.sr_converged;
      Alcotest.(check int) "after one round" 1 r.Wafer.sr_rounds;
      Alcotest.(check bool) "half-width at or below target" true
        (r.Wafer.sr_ci_halfwidth <= 1.0);
      (* One die per stratum: no variance estimate exists, the CI is
         infinite, and the rule cannot fire no matter the target. *)
      let r =
        Wafer.estimate_run ~pool t
          {
            base with
            Wafer.s_dies_per_round = 1;
            s_max_rounds = 1;
            s_ci_target = 1.0;
          }
      in
      Alcotest.(check bool) "n<2 never converges" false r.Wafer.sr_converged;
      Alcotest.(check bool) "n<2 half-width is infinite" true
        (r.Wafer.sr_ci_halfwidth = infinity))

(* ------------------------------------------------------------------ *)
(* Bit-identity across domains and engines                              *)

let sampling_cfg method_ =
  {
    Wafer.default_sampling_config with
    Wafer.s_method = method_;
    s_strata = 2;
    s_dies_per_round = 4;
    s_max_rounds = 2;
    s_ci_target = 1e-12;
    s_ci_metric = Wafer.Ci_rare;
  }

let test_domain_invariance () =
  let t = Lazy.force flow in
  List.iter
    (fun method_ ->
      let cfg = sampling_cfg method_ in
      let reports =
        List.map
          (fun domains ->
            with_pool ~domains (fun pool ->
                Wafer.sampling_to_json (Wafer.estimate_run ~pool t cfg)))
          [ 1; 2; 4 ]
      in
      match reports with
      | [ r1; r2; r4 ] ->
        let name = Smart_sampling.method_name method_ in
        Alcotest.(check string) (name ^ ": 1 vs 2 domains") r1 r2;
        Alcotest.(check string) (name ^ ": 1 vs 4 domains") r1 r4
      | _ -> assert false)
    [ Smart_sampling.Mc; Smart_sampling.Is; Smart_sampling.Lhs ]

let test_engine_invariance () =
  (* The die kernel under both engines differs only in STA strategy
     (the incremental pass is exact), so sampling reports must be bit
     identical.  Fresh flows per engine: the kernel bakes the engine in
     at creation. *)
  let report engine_name =
    Engine_diff.with_engine_env engine_name (fun () ->
        let t = Flow.prepare ~config:Flow.quick_config () in
        with_pool ~domains:2 (fun pool ->
            Wafer.sampling_to_json
              (Wafer.estimate_run ~pool t
                 (sampling_cfg Smart_sampling.Is))))
  in
  Alcotest.(check string) "is report: golden vs batched" (report "golden")
    (report "batched")

(* ------------------------------------------------------------------ *)
(* Stage-graph exposure                                                 *)

let test_keyed_stage_memoized () =
  let t = Lazy.force flow in
  let cfg = sampling_cfg Smart_sampling.Mc in
  let r1 = Wafer.estimate t cfg in
  let r2 = Wafer.estimate t cfg in
  Alcotest.(check bool) "same config memoized" true (r1 == r2);
  Alcotest.(check string) "stage key label"
    "mc-2x2-d4-r2-ci1e-12-rare-m2-c0.95-s7-vertical"
    (Wafer.sampling_config_label cfg)

(* ------------------------------------------------------------------ *)
(* Slow differential oracle (PVTOL_SLOW_TESTS=1)                        *)

let slow_enabled = Sys.getenv_opt "PVTOL_SLOW_TESTS" = Some "1"

let z95 = Specfun.normal_quantile ~mu:0.0 ~sigma:1.0 0.975

(* Per-die variance of the designated estimator, recovered from the
   report's CI: hw = z * sqrt (var / n)  =>  var = n * (hw / z)^2. *)
let per_die_variance (r : Wafer.sampling_report) =
  let hw = r.Wafer.sr_rare.Wafer.hw in
  if hw = infinity then infinity
  else float_of_int r.Wafer.sr_dies *. (hw /. z95) *. (hw /. z95)

(* Fixed-site configs run the 4x4 stratum grid as 16 parallel
   substreams of the same position; total dies = 16 * dies * rounds.
   The unreachable CI target plus the positive-variance rule means the
   full budget always runs. *)
let site_cfg method_ ~dies ~rounds ~seed =
  {
    Wafer.default_sampling_config with
    Wafer.s_method = method_;
    s_strata = 4;
    s_dies_per_round = dies;
    s_max_rounds = rounds;
    s_ci_target = 1e-12;
    s_ci_metric = Wafer.Ci_rare;
    s_seed = seed;
  }

let test_differential_oracle () =
  let t = Lazy.force flow in
  let pool = Pool.shared () in
  List.iter
    (fun (name, position) ->
      (* 400 importance-sampled dies vs a 50x longer brute-force run. *)
      let is_r =
        Wafer.estimate_at ~pool t ~position
          (site_cfg Smart_sampling.Is ~dies:25 ~rounds:1 ~seed:101)
      in
      let mc_r =
        Wafer.estimate_at ~pool t ~position
          (site_cfg Smart_sampling.Mc ~dies:25 ~rounds:50 ~seed:202)
      in
      Alcotest.(check int) "is dies" 400 is_r.Wafer.sr_dies;
      Alcotest.(check int) "mc dies" 20_000 mc_r.Wafer.sr_dies;
      let p_is = is_r.Wafer.sr_rare.Wafer.mid
      and p_mc = mc_r.Wafer.sr_rare.Wafer.mid in
      let hw_is = is_r.Wafer.sr_rare.Wafer.hw
      and hw_mc = mc_r.Wafer.sr_rare.Wafer.hw in
      let tol = 3.0 *. sqrt ((hw_is *. hw_is) +. (hw_mc *. hw_mc)) in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s: IS %.5f +- %.5f vs brute force %.5f +- %.5f (tol %.5f)" name
           p_is hw_is p_mc hw_mc tol)
        true
        (Float.abs (p_is -. p_mc) <= tol))
    [ ("A", Position.point_a); ("B", Position.point_b);
      ("C", Position.point_c); ("D", Position.point_d) ]

let test_variance_reduction_factor () =
  (* On the rare scenario at B the IS estimator must beat brute force
     by at least 5x in per-die variance (the acceptance criterion the
     bench section pins).  Deterministic: fixed seeds, fixed budgets. *)
  let t = Lazy.force flow in
  let pool = Pool.shared () in
  let is_r =
    Wafer.estimate_at ~pool t ~position:Position.point_b
      (site_cfg Smart_sampling.Is ~dies:25 ~rounds:15 ~seed:303)
  in
  let mc_r =
    Wafer.estimate_at ~pool t ~position:Position.point_b
      (site_cfg Smart_sampling.Mc ~dies:25 ~rounds:50 ~seed:202)
  in
  let p = mc_r.Wafer.sr_rare.Wafer.mid in
  let var_mc = p *. (1.0 -. p) in
  let var_is = per_die_variance is_r in
  let vrf = var_mc /. var_is in
  Alcotest.(check bool)
    (Printf.sprintf "VRF %.1f >= 5 (var %.2e -> %.2e)" vrf var_mc var_is)
    true (vrf >= 5.0);
  Alcotest.(check bool) "weights stay calibrated" true
    (Float.abs
       ((Array.fold_left
           (fun a g -> a +. g.Wafer.sg_mean_weight)
           0.0 is_r.Wafer.sr_groups
        /. float_of_int (Array.length is_r.Wafer.sr_groups))
       -. 1.0)
    <= 0.25)

let test_analytic_crosscheck () =
  (* The first-order analytic model gives an independent reference for
     the rare-scenario probability at B: per-stage violation tails from
     the Clark-propagated Gaussians, combined under stage independence.
     The analytic model's documented bias (first-order propagation, no
     reconvergence, no max-correlation) compounds fast in a tail
     probability — measured it sits ~6x below the simulated value at B
     — so this is an order-of-magnitude sanity band (factor of 10 both
     ways), not a tight tolerance; the brute-force diff above is the
     sharp check. *)
  let t = Lazy.force flow in
  let pool = Pool.shared () in
  let sta = Flow.sta t and sampler = Flow.sampler t in
  let clock = Flow.clock t in
  let systematic =
    Pvtol_variation.Sampler.systematic_lgates sampler (Flow.placement t)
      Position.point_b
  in
  let res = Analytic.analyze ~sta ~sampler ~systematic () in
  let tails =
    List.filter_map
      (fun stage ->
        List.assoc_opt stage res.Analytic.stage_delay
        |> Option.map (fun g ->
               1.0
               -. Specfun.normal_cdf ~mu:g.Analytic.mean
                    ~sigma:(sqrt g.Analytic.var) clock))
      Pvtol_core.Compensation.analyzed
  in
  (* P(at least 2 of the independent stages violate). *)
  let p_analytic =
    match tails with
    | [ p1; p2; p3 ] ->
      (p1 *. p2 *. (1.0 -. p3))
      +. (p1 *. (1.0 -. p2) *. p3)
      +. ((1.0 -. p1) *. p2 *. p3)
      +. (p1 *. p2 *. p3)
    | _ -> Alcotest.fail "expected three analyzed stages"
  in
  let is_r =
    Wafer.estimate_at ~pool t ~position:Position.point_b
      (site_cfg Smart_sampling.Is ~dies:25 ~rounds:15 ~seed:303)
  in
  let p_is = is_r.Wafer.sr_rare.Wafer.mid in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.5f vs IS %.5f within 10x" p_analytic p_is)
    true
    (p_analytic > 0.0 && p_is > 0.0 && p_analytic /. p_is <= 10.0
    && p_is /. p_analytic <= 10.0)

let suite =
  ( "sampling",
    [
      Alcotest.test_case "weights integrate to one" `Quick
        test_weights_integrate_to_one;
      Alcotest.test_case "plain model" `Quick test_plain_model;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "lhs permutations" `Quick test_lhs_permutations;
      Alcotest.test_case "lhs strata quota" `Quick test_lhs_strata_quota;
      Alcotest.test_case "stopping rule" `Quick test_stopping_rule;
      Alcotest.test_case "domain invariance" `Quick test_domain_invariance;
      Alcotest.test_case "engine invariance" `Quick test_engine_invariance;
      Alcotest.test_case "keyed stage memoized" `Quick
        test_keyed_stage_memoized;
    ]
    @
    if not slow_enabled then []
    else
      [
        Alcotest.test_case "differential oracle A-D" `Slow
          test_differential_oracle;
        Alcotest.test_case "variance reduction factor" `Slow
          test_variance_reduction_factor;
        Alcotest.test_case "analytic crosscheck" `Slow
          test_analytic_crosscheck;
      ] )
