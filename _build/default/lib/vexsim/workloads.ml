module Srng = Pvtol_util.Srng

type t = {
  name : string;
  source : string;
  stats : Sim.stats;
  trace : Int32.t array list;
  correct : bool;
}

let mask32 v = v land 0xFFFFFFFF

let finish ~name ~source ~sim ~stats ~correct =
  { name; source; stats; trace = Sim.trace sim; correct }

let fir ?(seed = 3) () =
  let r = Fir.run ~seed () in
  {
    name = "fir";
    source = Fir.program ~taps:16 ~samples:64;
    stats = r.Fir.stats;
    trace = r.Fir.trace;
    correct = Fir.check r;
  }

let dot_product ?(seed = 5) () =
  let n = 64 in
  let source =
    String.concat "\n"
      [
        "  movi r8, 1 ; movi r9, 9 ; movi r1, 64 ; movi r4, 0";
        "  shl r20, r8, r9 ; movi r9, 1 ; movi r2, 0 ; movi r3, 64";
        "loop: ld r10, 0(r2) ; ld r11, 0(r3) ; add r2, r2, r9 ; add r3, r3, r9";
        "  mul r12, r10, r11 ; sub r1, r1, r9 ; nop ; nop";
        "  add r4, r4, r12 ; nop ; nop ; nop";
        "  brnz r1, loop";
        "  st r4, 0(r20)";
      ]
  in
  let sim = Sim.create (Asm.assemble source) in
  let rng = Srng.create seed in
  let a = Array.init n (fun _ -> Srng.int rng 16 - 8) in
  let b = Array.init n (fun _ -> Srng.int rng 16 - 8) in
  Array.iteri (fun i v -> Sim.store sim i v) a;
  Array.iteri (fun i v -> Sim.store sim (64 + i) v) b;
  let stats = Sim.run sim in
  let expected =
    mask32 (Array.fold_left ( + ) 0 (Array.init n (fun i -> a.(i) * b.(i))))
  in
  finish ~name:"dot-product" ~source ~sim ~stats
    ~correct:(Sim.load sim 512 = expected)

let iir_biquad ?(seed = 7) () =
  let n = 48 in
  (* Integer biquad: y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2 with the
     shift registers updated per sample.  r31 stays 0. *)
  let source =
    String.concat "\n"
      [
        "  movi r8, 1 ; movi r9, 9 ; movi r1, 48 ; movi r2, 0";
        "  shl r3, r8, r9 ; movi r9, 1 ; movi r31, 0 ; movi r10, 3";
        "  movi r11, 2 ; movi r12, 1 ; movi r13, 1 ; movi r14, 2";
        "  movi r15, 0 ; movi r16, 0 ; movi r17, 0 ; movi r18, 0";
        "loop: ld r20, 0(r2) ; nop ; nop ; nop";
        "  mul r21, r20, r10 ; mul r22, r15, r11 ; mul r23, r16, r12 ; nop";
        "  mul r24, r17, r13 ; mul r25, r18, r14 ; add r21, r21, r22 ; nop";
        "  add r21, r21, r23 ; add r16, r15, r31 ; add r15, r20, r31 ; nop";
        "  sub r21, r21, r24 ; add r18, r17, r31 ; nop ; nop";
        "  sub r21, r21, r25 ; add r2, r2, r9 ; sub r1, r1, r9 ; nop";
        "  st r21, 0(r3) ; add r17, r21, r31 ; add r3, r3, r9 ; nop";
        "  brnz r1, loop";
      ]
  in
  let sim = Sim.create (Asm.assemble source) in
  let rng = Srng.create seed in
  let x = Array.init n (fun _ -> Srng.int rng 8 - 4) in
  Array.iteri (fun i v -> Sim.store sim i v) x;
  let stats = Sim.run sim in
  (* Reference with the same 32-bit wrap points as the ISS. *)
  let b0 = 3 and b1 = 2 and b2 = 1 and a1 = 1 and a2 = 2 in
  let x1 = ref 0 and x2 = ref 0 and y1 = ref 0 and y2 = ref 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    let y =
      mask32
        (mask32
           (mask32 (mask32 ((x.(i) * b0) + (!x1 * b1)) + (!x2 * b2))
           - (!y1 * a1))
        - (!y2 * a2))
    in
    x2 := !x1;
    x1 := mask32 x.(i);
    y2 := !y1;
    y1 := y;
    if Sim.load sim (512 + i) <> y then ok := false
  done;
  finish ~name:"iir-biquad" ~source ~sim ~stats ~correct:!ok

let vector_max ?(seed = 11) () =
  let n = 96 in
  let source =
    String.concat "\n"
      [
        "  movi r8, 1 ; movi r9, 9 ; movi r1, 96 ; movi r2, 0";
        "  shl r20, r8, r9 ; movi r9, 1 ; movi r31, 0 ; movi r4, 0";
        "loop: ld r10, 0(r2) ; add r2, r2, r9 ; sub r1, r1, r9 ; nop";
        "  cmplt r11, r4, r10 ; nop ; nop ; nop";
        "  brz r11, skip";
        "  add r4, r10, r31 ; nop ; nop ; nop";
        "skip: brnz r1, loop";
        "  st r4, 0(r20)";
      ]
  in
  let sim = Sim.create (Asm.assemble source) in
  let rng = Srng.create seed in
  let xs = Array.init n (fun _ -> Srng.int rng 200) in
  Array.iteri (fun i v -> Sim.store sim i v) xs;
  let stats = Sim.run sim in
  let expected = Array.fold_left max 0 xs in
  finish ~name:"vector-max" ~source ~sim ~stats
    ~correct:(Sim.load sim 512 = expected)

let memcpy ?(seed = 13) () =
  let n = 96 in
  let source =
    String.concat "\n"
      [
        "  movi r1, 96 ; movi r9, 1 ; movi r2, 0 ; movi r3, 127";
        "  add r3, r3, r9 ; nop ; nop ; nop";
        "loop: ld r10, 0(r2) ; add r2, r2, r9 ; sub r1, r1, r9 ; nop";
        "  st r10, 0(r3) ; add r3, r3, r9 ; nop ; nop";
        "  brnz r1, loop";
      ]
  in
  let sim = Sim.create (Asm.assemble source) in
  let rng = Srng.create seed in
  let xs = Array.init n (fun _ -> Srng.int rng 1000) in
  Array.iteri (fun i v -> Sim.store sim i v) xs;
  let stats = Sim.run sim in
  let ok = ref true in
  Array.iteri (fun i v -> if Sim.load sim (128 + i) <> v then ok := false) xs;
  finish ~name:"memcpy" ~source ~sim ~stats ~correct:!ok

let all ?(seed = 3) () =
  [
    fir ~seed ();
    dot_product ~seed:(seed + 1) ();
    iir_biquad ~seed:(seed + 2) ();
    vector_max ~seed:(seed + 3) ();
    memcpy ~seed:(seed + 4) ();
  ]
