(** Per-gate variability injection (paper §4.1 and §4.3).

    For each cell, effective gate length is the sum of the systematic
    field polynomial at the cell's placed location and an i.i.d.
    Gaussian random component (Eq. 2); the Orshansky alpha-power model
    plus the DIBL Vth dependence convert Lgate and the cell's supply
    voltage into a delay scale factor (Eqs. 3-4), which multiplies the
    nominal SDF delays — the exact mechanism of the paper's SDF
    rewriting flow. *)

type t = {
  field : Field.t;
  process : Pvtol_stdcell.Process.t;
  sigma_rnd_nm : float;  (** random component sigma, nm *)
}

val create :
  ?field:Field.t ->
  ?process:Pvtol_stdcell.Process.t ->
  ?three_sigma_rnd_frac:float ->
  unit ->
  t
(** Defaults: the calibrated 65nm field, default process, random
    3-sigma of 6.5% of nominal Lgate. *)

val systematic_lgates :
  t -> Pvtol_place.Placement.t -> Position.t -> float array
(** Per-cell systematic Lgate (nm) at a die position — the
    deterministic part, computed once per position. *)

val sample_lgates :
  t -> systematic:float array -> Pvtol_util.Srng.t -> float array -> unit
(** Fill the output array with systematic + fresh random draws. *)

val shifted_systematic :
  t ->
  systematic:float array ->
  cells:int array ->
  dir:float array ->
  theta:float ->
  out:float array ->
  unit
(** [out <- systematic] with [sigma_rnd * theta * dir.(k)] added at
    each [cells.(k)] — a mean shift of the random Lgate component
    expressed as a modified systematic field.  Because
    {!sample_lgates} adds the random draw on top of whatever
    systematic it is given, passing the shifted field to an unchanged
    die kernel realises the importance-sampling tilt exactly, for both
    Monte-Carlo engines, without touching their sampling loops. *)

val delay_scale :
  t -> lgate_nm:float -> vdd:float -> float
(** Delay multiplier relative to the nominal corner. *)

val scale_delays :
  t ->
  base:float array ->
  lgates:float array ->
  vdd:(int -> float) ->
  out:float array ->
  unit
(** [out.(i) <- base.(i) * delay_scale lgates.(i) (vdd i)] for all
    cells — the per-sample inner loop of the Monte Carlo engine. *)

(** {2 Batched structure-of-arrays path}

    The batched Monte-Carlo engine replaces the per-(cell, sample)
    transcendental delay-scale evaluation with a per-supply Chebyshev
    interpolant over the reachable Lgate window.  The interpolant
    matches {!delay_scale} to within [1e-12] relative (observed
    ~[3e-14]); lanes whose Lgate falls outside the fitted window —
    beyond a 10-sigma random excursion — are evaluated exactly, so the
    bound is unconditional. *)

type batch
(** Precomputed per-die scaling state: base delays, systematic Lgates,
    per-cell supply, and one fitted polynomial per distinct supply
    value.  Immutable after {!batch}; safe to share across domains. *)

val batch :
  t ->
  base:float array ->
  systematic:float array ->
  vdd:(int -> float) ->
  batch
(** [batch t ~base ~systematic ~vdd] fits the fast delay-scale
    polynomials for one die position.  Cost is O(cells + degree^2 per
    distinct supply); amortized over every sample of the run. *)

val batch_scale : batch -> int -> lgate_nm:float -> float
(** [batch_scale b i ~lgate_nm] — the scale factor the batched path
    assigns cell [i] at [lgate_nm] (polynomial inside the fitted
    window, exact {!delay_scale} outside).  Exposed for the
    differential tests. *)

val scale_delays_batch :
  batch ->
  gauss:float array ->
  samples:int ->
  stride:int ->
  out:float array ->
  unit
(** [scale_delays_batch b ~gauss ~samples ~stride ~out] scales a block
    of [samples] lanes at once.  [gauss] is sample-major — lane [k]'s
    draw for cell [i] at [gauss.(k * cells + i)], matching the order
    {!Pvtol_util.Srng.fill_gaussians} writes — and [out] is cell-major:
    lane [k]'s scaled delay for cell [i] lands at
    [out.(i * stride + k)], one contiguous row of [stride] floats per
    cell, ready for the SoA STA kernel. *)
