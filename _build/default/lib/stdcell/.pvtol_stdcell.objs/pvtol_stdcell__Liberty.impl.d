lib/stdcell/liberty.ml: Buffer Cell Fun Hashtbl Kind List Printf Process String
