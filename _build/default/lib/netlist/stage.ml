type t = Fetch | Decode | Execute | Writeback | Pipe_regs | Reg_file

let all = [ Fetch; Decode; Execute; Writeback; Pipe_regs; Reg_file ]
let timing_stages = [ Fetch; Decode; Execute; Writeback ]

let name = function
  | Fetch -> "Fetch"
  | Decode -> "Decode"
  | Execute -> "Execute"
  | Writeback -> "Write Back"
  | Pipe_regs -> "Pipe Regs"
  | Reg_file -> "Register File"

let of_name s =
  let rec find = function
    | [] -> None
    | st :: rest -> if String.equal (name st) s then Some st else find rest
  in
  find all

let index = function
  | Fetch -> 0
  | Decode -> 1
  | Execute -> 2
  | Writeback -> 3
  | Pipe_regs -> 4
  | Reg_file -> 5

let compare a b = Int.compare (index a) (index b)
let equal a b = index a = index b
let pp fmt t = Format.pp_print_string fmt (name t)
