(** Planar geometry primitives used by the floorplan, placement and
    voltage-island layers.  All coordinates are in micrometres. *)

type point = { x : float; y : float }

type rect = { llx : float; lly : float; urx : float; ury : float }
(** Axis-aligned rectangle, lower-left / upper-right corners. *)

val point : float -> float -> point

val rect : llx:float -> lly:float -> urx:float -> ury:float -> rect
(** Raises [Invalid_argument] if the corners are not ordered. *)

val width : rect -> float
val height : rect -> float
val area : rect -> float
val center : rect -> point
val contains : rect -> point -> bool
(** Closed on the lower/left edges, open on the upper/right edges, so a
    partition of a region assigns each point to exactly one part. *)

val intersects : rect -> rect -> bool
val union : rect -> rect -> rect
val inter : rect -> rect -> rect option
val expand : rect -> float -> rect
(** Grow (or shrink, if negative) each side by the given margin. *)

val subsumes : rect -> rect -> bool
(** [subsumes outer inner] is true when [inner] lies within [outer]. *)

val dist : point -> point -> float
val manhattan : point -> point -> float
