(* Tests for the process-variation model: field polynomial, positions,
   per-gate sampling. *)

module Field = Pvtol_variation.Field
module Position = Pvtol_variation.Position
module Sampler = Pvtol_variation.Sampler
module Process = Pvtol_stdcell.Process
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Netlist = Pvtol_netlist.Netlist

let field = Field.default

let test_calibration () =
  (* Over the chip-sized calibration region, |deviation| peaks at 5.5%. *)
  let worst = ref 0.0 in
  for i = 0 to 100 do
    for j = 0 to 100 do
      let x = float_of_int i *. 14.0 /. 100.0 in
      let y = float_of_int j *. 14.0 /. 100.0 in
      worst := Float.max !worst (Float.abs (Field.deviation_frac field ~x_mm:x ~y_mm:y))
    done
  done;
  Alcotest.(check bool) "max deviation ~ 5.5%" true
    (!worst > 0.054 && !worst < 0.0555)

let test_slow_corner_at_origin () =
  let at f = Field.deviation_frac field ~x_mm:(f *. 14.0) ~y_mm:(f *. 14.0) in
  Alcotest.(check bool) "origin is the slow corner" true (at 0.0 > 0.05);
  (* Deviation decreases monotonically along the diagonal. *)
  let prev = ref infinity in
  List.iter
    (fun f ->
      let d = at f in
      Alcotest.(check bool) "monotone along diagonal" true (d < !prev);
      prev := d)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]

let test_field_clamped () =
  let inside = Field.systematic_nm field ~x_mm:0.0 ~y_mm:0.0 in
  let outside = Field.systematic_nm field ~x_mm:(-5.0) ~y_mm:(-5.0) in
  Alcotest.(check bool) "clamped outside field" true
    (Float.abs (inside -. outside) < 1e-9)

let test_render_map () =
  let map = Field.render_map field ~chip_mm:14.0 in
  Alcotest.(check bool) "renders" true (String.length map > 200)

let test_positions () =
  let a = Position.point_a in
  Alcotest.(check string) "A label" "A" a.Position.label;
  let x, y = Position.to_field a ~x_um:500.0 ~y_um:250.0 in
  Alcotest.(check bool) "um to mm" true
    (Float.abs (x -. 0.5) < 1e-9 && Float.abs (y -. 0.25) < 1e-9);
  let mid = Position.at_fraction 0.5 in
  Alcotest.(check bool) "fraction position" true
    (Float.abs (mid.Position.origin_x_mm -. 7.0) < 1e-9)

let placed_small =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     Pvtol_place.Placer.place nl fp)

let test_systematic_per_position () =
  let p = Lazy.force placed_small in
  let sampler = Sampler.create () in
  let at_a = Sampler.systematic_lgates sampler p Position.point_a in
  let at_d = Sampler.systematic_lgates sampler p Position.point_d in
  (* Every cell is slower (longer Lgate) at A than at D. *)
  Array.iteri
    (fun i la ->
      Alcotest.(check bool) "A longer than D" true (la > at_d.(i)))
    at_a;
  let nominal = sampler.Sampler.process.Process.l_nominal_nm in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "A deviation within budget" true
        (l <= nominal *. 1.056 && l >= nominal))
    at_a

let test_sampling_moments () =
  let p = Lazy.force placed_small in
  let sampler = Sampler.create () in
  let systematic = Sampler.systematic_lgates sampler p Position.point_b in
  let rng = Srng.create 31 in
  let out = Array.make (Array.length systematic) 0.0 in
  let acc_err = Stats.Running.create () in
  for _ = 1 to 40 do
    Sampler.sample_lgates sampler ~systematic rng out;
    Array.iteri (fun i v -> Stats.Running.add acc_err (v -. systematic.(i))) out
  done;
  (* Residuals are ~N(0, sigma_rnd). *)
  let mean = Stats.Running.mean acc_err and sd = Stats.Running.stddev acc_err in
  Alcotest.(check bool) "random mean ~ 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "random sigma matches" true
    (Float.abs (sd -. sampler.Sampler.sigma_rnd_nm) < 0.02)

let test_delay_scale_consistency () =
  let sampler = Sampler.create () in
  let s = Sampler.delay_scale sampler ~lgate_nm:67.0 ~vdd:1.1 in
  let expected = Process.delay_scale sampler.Sampler.process ~vdd:1.1 ~lgate_nm:67.0 in
  Alcotest.(check bool) "matches process model" true (Float.abs (s -. expected) < 1e-12)

let test_scale_delays_vectorized () =
  let sampler = Sampler.create () in
  let base = [| 1.0; 2.0; 3.0 |] in
  let lgates = [| 65.0; 66.0; 64.0 |] in
  let out = Array.make 3 0.0 in
  Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> 1.0) ~out;
  Array.iteri
    (fun i b ->
      let expected = b *. Sampler.delay_scale sampler ~lgate_nm:lgates.(i) ~vdd:1.0 in
      Alcotest.(check bool) "elementwise" true (Float.abs (out.(i) -. expected) < 1e-12))
    base

let test_custom_budget () =
  let f = Field.create ~l_nominal_nm:65.0 ~max_dev_frac:0.02 () in
  let lo, hi = Field.extremes f in
  ignore lo;
  Alcotest.(check bool) "custom budget respected on chip region" true
    (hi <= 65.0 *. 1.021);
  let s = Sampler.create ~three_sigma_rnd_frac:0.03 () in
  Alcotest.(check bool) "sigma from 3-sigma budget" true
    (Float.abs (s.Sampler.sigma_rnd_nm -. (0.01 *. 65.0)) < 1e-9)

let suite =
  ( "variation",
    [
      Alcotest.test_case "field calibration" `Quick test_calibration;
      Alcotest.test_case "slow corner at origin" `Quick test_slow_corner_at_origin;
      Alcotest.test_case "field clamped" `Quick test_field_clamped;
      Alcotest.test_case "render map" `Quick test_render_map;
      Alcotest.test_case "positions" `Quick test_positions;
      Alcotest.test_case "systematic per position" `Quick test_systematic_per_position;
      Alcotest.test_case "sampling moments" `Quick test_sampling_moments;
      Alcotest.test_case "delay scale consistency" `Quick test_delay_scale_consistency;
      Alcotest.test_case "scale_delays vectorized" `Quick test_scale_delays_vectorized;
      Alcotest.test_case "custom budget" `Quick test_custom_budget;
    ] )
