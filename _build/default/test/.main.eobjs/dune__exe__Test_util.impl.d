test/test_util.ml: Alcotest Array Float List Pvtol_util QCheck QCheck_alcotest String
