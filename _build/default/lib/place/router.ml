open Pvtol_netlist
module Geom = Pvtol_util.Geom

type config = {
  grid : int;
  tracks_per_edge : int;
  reroute_passes : int;
}

let default_config = { grid = 32; tracks_per_edge = 0; reroute_passes = 2 }

type result = {
  config : config;
  routed_um : float array;
  total_um : float;
  total_hpwl_um : float;
  overflowed_edges : int;
  max_utilization : float;
  mean_utilization : float;
}

(* Edge identifiers: horizontal edge h(ix, iy) joins gcell (ix,iy) to
   (ix+1,iy); vertical edge v(ix, iy) joins (ix,iy) to (ix,iy+1). *)
type grid_state = {
  g : int;
  usage : int array;  (* h edges then v edges *)
  cap : int;
}

let h_edge gs ix iy = (iy * (gs.g - 1)) + ix
let v_edge gs ix iy = ((gs.g - 1) * gs.g) + (ix * (gs.g - 1)) + iy

(* Edges of an L path from (x1,y1) to (x2,y2), horizontal-first when
   [hfirst]. *)
let l_path gs (x1, y1) (x2, y2) ~hfirst =
  let xs lo hi = List.init (abs (hi - lo)) (fun k -> min lo hi + k) in
  let horiz y = List.map (fun x -> h_edge gs x y) (xs x1 x2) in
  let vert x = List.map (fun y -> v_edge gs x y) (xs y1 y2) in
  if hfirst then horiz y1 @ vert x2 else vert x1 @ horiz y2

let path_cost gs ~penalty edges =
  List.fold_left
    (fun acc e ->
      let u = gs.usage.(e) in
      acc +. 1.0
      +. (float_of_int u /. float_of_int gs.cap)
      +. (if u >= gs.cap then penalty else 0.0))
    0.0 edges

let claim gs edges = List.iter (fun e -> gs.usage.(e) <- gs.usage.(e) + 1) edges
let release gs edges = List.iter (fun e -> gs.usage.(e) <- gs.usage.(e) - 1) edges

let route_segment gs ~penalty a b =
  if a = b then []
  else begin
    let p1 = l_path gs a b ~hfirst:true in
    let p2 = l_path gs a b ~hfirst:false in
    let path =
      if path_cost gs ~penalty p1 <= path_cost gs ~penalty p2 then p1 else p2
    in
    claim gs path;
    path
  end

(* Nearest-neighbour spanning connection over a net's pin gcells. *)
let spanning_segments pins =
  match pins with
  | [] | [ _ ] -> []
  | first :: rest ->
    let connected = ref [ first ] in
    let remaining = ref rest in
    let segments = ref [] in
    while !remaining <> [] do
      (* Closest (connected, remaining) pair. *)
      let best = ref None in
      List.iter
        (fun p ->
          List.iter
            (fun c ->
              let (px, py) = p and (cx, cy) = c in
              let d = abs (px - cx) + abs (py - cy) in
              match !best with
              | Some (bd, _, _) when bd <= d -> ()
              | _ -> best := Some (d, c, p))
            !connected)
        !remaining;
      match !best with
      | Some (_, c, p) ->
        segments := (c, p) :: !segments;
        connected := p :: !connected;
        remaining := List.filter (fun q -> q <> p) !remaining
      | None -> assert false
    done;
    List.rev !segments

let route ?(config = default_config) (p : Placement.t) =
  let nl = p.Placement.netlist in
  let core = p.Placement.floorplan.Floorplan.core in
  let g = config.grid in
  let bw = Geom.width core /. float_of_int g in
  let bh = Geom.height core /. float_of_int g in
  let pitch = (bw +. bh) /. 2.0 in
  let cap =
    if config.tracks_per_edge > 0 then config.tracks_per_edge
    else
      (* 0.4 um track pitch, three routing layers per direction. *)
      max 8 (int_of_float (3.0 *. pitch /. 0.4))
  in
  let gs = { g; usage = Array.make (2 * (g - 1) * g) 0; cap } in
  let gcell cid =
    let ix =
      max 0 (min (g - 1) (int_of_float ((p.Placement.xs.(cid) -. core.Geom.llx) /. bw)))
    in
    let iy =
      max 0 (min (g - 1) (int_of_float ((p.Placement.ys.(cid) -. core.Geom.lly) /. bh)))
    in
    (ix, iy)
  in
  let n_nets = Netlist.net_count nl in
  let routed_um = Array.make n_nets 0.0 in
  (* Per net: its segments' edge paths (for rip-up) and endpoints. *)
  let net_paths : (int * int) list list array = Array.make n_nets [] in
  let net_segments = Array.make n_nets [] in
  let paths_edges : int list list array = Array.make n_nets [] in
  ignore net_paths;
  let total_hpwl = ref 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let nid = net.Netlist.net_id in
      let pins =
        (match net.Netlist.driver with Some d -> [ gcell d ] | None -> [])
        @ (Array.to_list net.Netlist.sinks |> List.map (fun (cid, _) -> gcell cid))
      in
      let pins = List.sort_uniq compare pins in
      if List.length pins >= 1 && (net.Netlist.driver <> None || net.Netlist.sinks <> [||])
      then total_hpwl := !total_hpwl +. Placement.hpwl p nid;
      let segments = spanning_segments pins in
      net_segments.(nid) <- segments;
      let paths =
        List.map (fun (a, b) -> route_segment gs ~penalty:2.0 a b) segments
      in
      paths_edges.(nid) <- paths)
    nl.Netlist.nets;
  (* Rip-up and reroute segments that use overflowed edges. *)
  for _ = 1 to config.reroute_passes do
    let overflowed e = gs.usage.(e) > gs.cap in
    Array.iteri
      (fun nid paths ->
        let segments = net_segments.(nid) in
        let paths' =
          List.map2
            (fun (a, b) path ->
              if List.exists overflowed path then begin
                release gs path;
                route_segment gs ~penalty:8.0 a b
              end
              else path)
            segments paths
        in
        paths_edges.(nid) <- paths')
      paths_edges
  done;
  (* Lengths and congestion statistics. *)
  let total = ref 0.0 in
  Array.iteri
    (fun nid paths ->
      let steps = List.fold_left (fun acc path -> acc + List.length path) 0 paths in
      let um =
        if steps = 0 then
          (* Single-gcell net: fall back to its local HPWL. *)
          Placement.hpwl p nid
        else float_of_int steps *. pitch
      in
      routed_um.(nid) <- um;
      total := !total +. um)
    paths_edges;
  let overflowed = ref 0 and worst = ref 0.0 in
  let used_sum = ref 0.0 and used_n = ref 0 in
  Array.iter
    (fun u ->
      if u > gs.cap then incr overflowed;
      let util = float_of_int u /. float_of_int gs.cap in
      if util > !worst then worst := util;
      if u > 0 then begin
        used_sum := !used_sum +. util;
        incr used_n
      end)
    gs.usage;
  {
    config;
    routed_um;
    total_um = !total;
    total_hpwl_um = !total_hpwl;
    overflowed_edges = !overflowed;
    max_utilization = !worst;
    mean_utilization = (if !used_n = 0 then 0.0 else !used_sum /. float_of_int !used_n);
  }

let wire_length r nid = r.routed_um.(nid)
