type stats = {
  cycles : int;
  ops_executed : int;
  slot_active : int array;
  mul_ops : int;
  mem_ops : int;
  branches_taken : int;
}

type t = {
  program : Isa.bundle array;
  regs : int array;
  mem : int array;
  mutable pc : int;
  mutable trace_rev : Int32.t array list;
}

let create ?(mem_size = 4096) program =
  {
    program;
    regs = Array.make Isa.n_regs 0;
    mem = Array.make mem_size 0;
    pc = 0;
    trace_rev = [];
  }

let mask32 v = v land 0xFFFFFFFF

let sign32 v =
  let v = mask32 v in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let set_reg t r v = t.regs.(r) <- mask32 v
let get_reg t r = t.regs.(r)

let store t addr v = t.mem.(addr mod Array.length t.mem) <- mask32 v
let load t addr = t.mem.(addr mod Array.length t.mem)

let sext8 v = if v land 0x80 <> 0 then v - 256 else v

let run ?(max_cycles = 100_000) t =
  let cycles = ref 0 in
  let ops = ref 0 in
  let slot_active = Array.make Isa.slots 0 in
  let mul_ops = ref 0 and mem_ops = ref 0 and taken = ref 0 in
  while t.pc >= 0 && t.pc < Array.length t.program && !cycles < max_cycles do
    let bundle = t.program.(t.pc) in
    t.trace_rev <- Isa.encode_bundle bundle :: t.trace_rev;
    incr cycles;
    (* Read phase: capture all operands before any write. *)
    let reads =
      Array.map
        (fun (o : Isa.op) -> (t.regs.(o.Isa.rs1), t.regs.(o.Isa.rs2)))
        bundle
    in
    let next_pc = ref (t.pc + 1) in
    Array.iteri
      (fun slot (o : Isa.op) ->
        let v1, v2 = reads.(slot) in
        let result =
          match o.Isa.opcode with
          | Isa.Nop -> None
          | Isa.Add -> Some (v1 + v2)
          | Isa.Sub -> Some (v1 - v2)
          | Isa.And -> Some (v1 land v2)
          | Isa.Or -> Some (v1 lor v2)
          | Isa.Xor -> Some (v1 lxor v2)
          | Isa.Shl -> Some (v1 lsl (v2 land 31))
          | Isa.Shr -> Some (mask32 v1 lsr (v2 land 31))
          | Isa.Mul -> Some (v1 * v2)
          | Isa.Cmplt -> Some (if sign32 v1 < sign32 v2 then 1 else 0)
          | Isa.Cmpeq -> Some (if mask32 v1 = mask32 v2 then 1 else 0)
          | Isa.Movi -> Some (sext8 o.Isa.imm)
          | Isa.Ld ->
            incr mem_ops;
            Some (load t (mask32 (v1 + sext8 o.Isa.imm)))
          | Isa.St ->
            incr mem_ops;
            store t (mask32 (v1 + sext8 o.Isa.imm)) v2;
            None
          | Isa.Brz ->
            if mask32 v1 = 0 then begin
              incr taken;
              next_pc := o.Isa.imm
            end;
            None
          | Isa.Brnz ->
            if mask32 v1 <> 0 then begin
              incr taken;
              next_pc := o.Isa.imm
            end;
            None
        in
        if o.Isa.opcode <> Isa.Nop then begin
          incr ops;
          slot_active.(slot) <- slot_active.(slot) + 1
        end;
        if o.Isa.opcode = Isa.Mul then incr mul_ops;
        match result with
        | Some v when Isa.writes_reg o.Isa.opcode -> set_reg t o.Isa.rd v
        | Some _ | None -> ())
      bundle;
    t.pc <- !next_pc
  done;
  {
    cycles = !cycles;
    ops_executed = !ops;
    slot_active;
    mul_ops = !mul_ops;
    mem_ops = !mem_ops;
    branches_taken = !taken;
  }

let trace t = List.rev t.trace_rev

let ipc stats =
  if stats.cycles = 0 then 0.0
  else float_of_int stats.ops_executed /. float_of_int stats.cycles
