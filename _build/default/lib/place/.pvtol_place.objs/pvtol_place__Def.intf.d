lib/place/def.mli: Placement Pvtol_netlist
