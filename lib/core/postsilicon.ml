open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Placement = Pvtol_place.Placement
module Srng = Pvtol_util.Srng

type chip = {
  diagonal_frac : float;
  violating : int;
  detected : int;
  raised : int;
  meets_uncompensated : bool;
  meets_compensated : bool;
  meets_chip_wide : bool;
}

type study = {
  chips : chip list;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
}

let analyzed = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let run ?(n_chips = 40) ?(seed = 7) (t : Flow.t) (v : Flow.variant) =
  let nl = Flow.netlist t in
  let lib = nl.Netlist.lib in
  let low = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
  let high = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_high in
  let part = v.Flow.slicing.Slicing.partition in
  let placement = Flow.placement t in
  let sampler = Flow.sampler t in
  let sta = Flow.sta t in
  let clock = Flow.clock t in
  let domains = Island.domains part placement in
  let n_islands = Array.length part.Island.islands in
  let rng = Srng.create seed in
  let n = Netlist.cell_count nl in
  let base = Sta.nominal_delays sta in
  let lgates = Array.make n 0.0 in
  let delays = Array.make n 0.0 in
  let sta_with vdd =
    Sampler.scale_delays sampler ~base ~lgates ~vdd ~out:delays;
    Sta.analyze sta ~delays
  in
  let violating_stages r =
    List.length
      (List.filter
         (fun s ->
           match Sta.stage_delay r s with
           | Some d -> d > clock +. 1e-12
           | None -> false)
         analyzed)
  in
  (* Power per compensation level, computed once (chip leakage varies
     with position but the dominant switching term does not). *)
  let power_of_raised =
    Array.init (n_islands + 1) (fun raised ->
        Power.total_mw
          (Flow.power_at t ~position:Position.point_b
             (Flow.Islands (v.Flow.direction, raised)))
            .Power.total)
  in
  let power_chip_wide =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Chip_wide_high).Power.total
  in
  let power_baseline =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Baseline_low).Power.total
  in
  let chips = ref [] in
  for _ = 1 to n_chips do
    let frac = Srng.uniform rng in
    let position = Position.at_fraction frac in
    let systematic = Sampler.systematic_lgates sampler placement position in
    Sampler.sample_lgates sampler ~systematic rng lgates;
    (* This die at nominal supply: which stages fail? *)
    let r_low = sta_with (fun _ -> low) in
    let violating = violating_stages r_low in
    (* The sensors report the scenario; the controller raises that many
       islands, then — because Razor keeps monitoring in situ — keeps
       raising one more while violations persist (closed-loop
       post-silicon testing). *)
    let detected = violating in
    let meets_with raised =
      if raised = 0 then violating = 0
      else begin
        let vdd cid = if domains.(cid) <= raised then high else low in
        violating_stages (sta_with vdd) = 0
      end
    in
    let rec settle k =
      if k >= n_islands then (n_islands, meets_with n_islands)
      else if meets_with k then (k, true)
      else settle (k + 1)
    in
    let raised, meets_compensated = settle (min detected n_islands) in
    let r_chip = sta_with (fun _ -> high) in
    chips :=
      {
        diagonal_frac = frac;
        violating;
        detected;
        raised;
        meets_uncompensated = violating = 0;
        meets_compensated;
        meets_chip_wide = violating_stages r_chip = 0;
      }
      :: !chips
  done;
  let chips = List.rev !chips in
  let count f = List.length (List.filter f chips) in
  let frac_of k = float_of_int k /. float_of_int n_chips in
  let mean_raised =
    float_of_int (List.fold_left (fun acc c -> acc + c.raised) 0 chips)
    /. float_of_int n_chips
  in
  (* Population power: islands scheme uses each chip's raised level;
     chip-wide adaptation raises everything on any failing die. *)
  let mean_power_islands =
    List.fold_left (fun acc c -> acc +. power_of_raised.(c.raised)) 0.0 chips
    /. float_of_int n_chips
  in
  let mean_power_chip_wide =
    List.fold_left
      (fun acc c ->
        acc +. if c.meets_uncompensated then power_baseline else power_chip_wide)
      0.0 chips
    /. float_of_int n_chips
  in
  {
    chips;
    yield_uncompensated = frac_of (count (fun c -> c.meets_uncompensated));
    yield_compensated = frac_of (count (fun c -> c.meets_compensated));
    yield_chip_wide = frac_of (count (fun c -> c.meets_chip_wide));
    mean_raised;
    mean_power_islands_mw = mean_power_islands;
    mean_power_chip_wide_mw = mean_power_chip_wide;
  }

let pp fmt s =
  Format.fprintf fmt
    "population of %d dies:@.\
    \  timing yield:  uncompensated %.0f%%   islands %.0f%%   chip-wide %.0f%%@.\
    \  mean islands raised per die: %.2f of 3@.\
    \  mean power: islands %.2f mW vs chip-wide adaptation %.2f mW (%.1f%% saved)@."
    (List.length s.chips)
    (100.0 *. s.yield_uncompensated)
    (100.0 *. s.yield_compensated)
    (100.0 *. s.yield_chip_wide)
    s.mean_raised s.mean_power_islands_mw s.mean_power_chip_wide_mw
    (100.0 *. (1.0 -. (s.mean_power_islands_mw /. s.mean_power_chip_wide_mw)))
