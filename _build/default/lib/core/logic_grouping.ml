open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Placement = Pvtol_place.Placement

type t = {
  domains : int array;
  units_per_scenario : string list array;
  checks : int;
}

exception Infeasible of string

let checked_stages = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let generate ?(corner_kappa = 0.35) ~sta ~placement ~sampler ~clock ~targets () =
  ignore placement;
  let nl = Sta.netlist sta in
  let lib = nl.Netlist.lib in
  let vdd_low = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
  let vdd_high = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_high in
  let n = Netlist.cell_count nl in
  let base = Sta.nominal_delays sta in
  let delays = Array.make n 0.0 in
  let checks = ref 0 in
  (* Unit ranking: worst nominal arrival over the unit's output nets —
     units holding late-path logic first. *)
  let nominal = Sta.analyze sta ~delays:base in
  let unit_score = Hashtbl.create 64 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let u = c.Netlist.unit_name in
      let a = nominal.Sta.arrival.(c.Netlist.fanout) in
      let cur = Option.value (Hashtbl.find_opt unit_score u) ~default:0.0 in
      if a > cur then Hashtbl.replace unit_score u a)
    nl.Netlist.cells;
  let ranked_units =
    Hashtbl.fold (fun u s acc -> (u, s) :: acc) unit_score []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map fst
  in
  let cells_of_unit = Hashtbl.create 64 in
  Array.iter
    (fun (c : Netlist.cell) ->
      Hashtbl.replace cells_of_unit c.Netlist.unit_name
        (c.Netlist.id
        :: Option.value (Hashtbl.find_opt cells_of_unit c.Netlist.unit_name)
             ~default:[]))
    nl.Netlist.cells;
  let domains = Array.make n (List.length targets + 1) in
  let raised_units = Hashtbl.create 16 in
  let meets ~systematic scenario_index =
    incr checks;
    let vdd cid = if domains.(cid) <= scenario_index then vdd_high else vdd_low in
    for i = 0 to n - 1 do
      delays.(i) <-
        base.(i)
        *. Slicing.corner_scale ~sampler ~systematic ~corner_kappa ~vdd i
    done;
    let r = Sta.analyze sta ~delays in
    List.for_all
      (fun s ->
        match Sta.stage_delay r s with
        | Some d -> d <= clock +. 1e-9
        | None -> true)
      checked_stages
  in
  let units_per_scenario = Array.make (List.length targets) [] in
  List.iteri
    (fun i (target : Slicing.target) ->
      let k = target.Slicing.scenario_index in
      assert (k = i + 1);
      let systematic =
        Sampler.systematic_lgates sampler placement target.Slicing.position
      in
      let rec add_units = function
        | [] ->
          if not (meets ~systematic k) then
            raise
              (Infeasible
                 (Printf.sprintf "scenario %d not compensable by unit selection" k))
        | u :: rest ->
          if meets ~systematic k then ()
          else begin
            if not (Hashtbl.mem raised_units u) then begin
              Hashtbl.replace raised_units u ();
              units_per_scenario.(i) <- u :: units_per_scenario.(i);
              List.iter
                (fun cid -> domains.(cid) <- k)
                (Option.value (Hashtbl.find_opt cells_of_unit u) ~default:[])
            end;
            add_units rest
          end
      in
      add_units ranked_units;
      if not (meets ~systematic k) then
        raise
          (Infeasible
             (Printf.sprintf "scenario %d not compensable by unit selection" k)))
    targets;
  { domains; units_per_scenario; checks = !checks }

let count_crossings (nl : Netlist.t) ~domains =
  let count = ref 0 in
  Array.iter
    (fun (net : Netlist.net) ->
      match net.Netlist.driver with
      | None -> ()
      | Some d ->
        let dd = domains.(d) in
        if dd > 1 then begin
          let crossing = ref false in
          Array.iter
            (fun (cid, _) -> if domains.(cid) < dd then crossing := true)
            net.Netlist.sinks;
          if !crossing then incr count
        end)
    nl.Netlist.nets;
  !count

let fragmentation (p : Placement.t) ~domains ~raised =
  let grid = 24 in
  let core = p.Placement.floorplan.Pvtol_place.Floorplan.core in
  let w = Pvtol_util.Geom.width core /. float_of_int grid in
  let h = Pvtol_util.Geom.height core /. float_of_int grid in
  let high = Array.make_matrix grid grid 0 in
  let any = Array.make_matrix grid grid 0 in
  Array.iteri
    (fun cid d ->
      let ix =
        max 0
          (min (grid - 1)
             (int_of_float ((p.Placement.xs.(cid) -. core.Pvtol_util.Geom.llx) /. w)))
      in
      let iy =
        max 0
          (min (grid - 1)
             (int_of_float ((p.Placement.ys.(cid) -. core.Pvtol_util.Geom.lly) /. h)))
      in
      any.(ix).(iy) <- any.(ix).(iy) + 1;
      if d <= raised then high.(ix).(iy) <- high.(ix).(iy) + 1)
    domains;
  (* A bin belongs to the high-Vdd region when most of its cells are
     raised; count 8-connected components over those bins. *)
  let member = Array.make_matrix grid grid false in
  for ix = 0 to grid - 1 do
    for iy = 0 to grid - 1 do
      member.(ix).(iy) <- any.(ix).(iy) > 0 && 2 * high.(ix).(iy) > any.(ix).(iy)
    done
  done;
  let seen = Array.make_matrix grid grid false in
  let components = ref 0 in
  let rec flood ix iy =
    if
      ix >= 0 && iy >= 0 && ix < grid && iy < grid
      && member.(ix).(iy)
      && not seen.(ix).(iy)
    then begin
      seen.(ix).(iy) <- true;
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          if dx <> 0 || dy <> 0 then flood (ix + dx) (iy + dy)
        done
      done
    end
  in
  for ix = 0 to grid - 1 do
    for iy = 0 to grid - 1 do
      if member.(ix).(iy) && not seen.(ix).(iy) then begin
        incr components;
        flood ix iy
      end
    done
  done;
  !components
