lib/place/floorplan.ml: Float Format Pvtol_util
