lib/util/histo.mli:
