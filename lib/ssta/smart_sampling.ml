(* Estimator mathematics for the variance-reduced yield engine: tilt
   construction from critical-path sensitivities, balance-heuristic
   mixture weights, Latin-hypercube jitter plans and stratified CI
   combination.  The die-population driver lives in
   [Pvtol_core.Wafer]; everything here is kernel-agnostic. *)

module Srng = Pvtol_util.Srng
module Welford = Pvtol_util.Stream_stats.Welford
module Specfun = Pvtol_util.Specfun
module Sta = Pvtol_timing.Sta
module Paths = Pvtol_timing.Paths
module Sampler = Pvtol_variation.Sampler

type method_ = Mc | Is | Lhs

let method_name = function Mc -> "mc" | Is -> "is" | Lhs -> "lhs"

let method_of_string = function
  | "mc" -> Some Mc
  | "is" -> Some Is
  | "lhs" -> Some Lhs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tilt components                                                      *)

type tilt = {
  cells : int array;
  dir : float array;
  theta : float;
}

(* Per-cell delay sensitivity of one traced path, as a sparse vector:
   d(path delay)/d(z_i) = base_i * d(scale)/d(Lgate) * sigma_rnd for
   each hop cell i (central difference; the scale model is smooth). *)
let path_sensitivity sampler ~base ~systematic ~vdd (p : Paths.path) =
  let sigma = sampler.Sampler.sigma_rnd_nm in
  let h_nm = 0.25 *. sigma in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (h : Paths.hop) ->
      let i = h.Paths.cell in
      if not (Hashtbl.mem tbl i) then begin
        let dscale =
          (Sampler.delay_scale sampler ~lgate_nm:(systematic.(i) +. h_nm) ~vdd
          -. Sampler.delay_scale sampler ~lgate_nm:(systematic.(i) -. h_nm)
               ~vdd)
          /. (2.0 *. h_nm)
        in
        Hashtbl.replace tbl i (base.(i) *. dscale *. sigma)
      end)
    p.Paths.hops;
  let cells = Array.of_seq (Hashtbl.to_seq_keys tbl) in
  Array.sort compare cells;
  let vals = Array.map (fun i -> Hashtbl.find tbl i) cells in
  (cells, vals)

let tilts ?(k_endpoints = 48) ?(theta_frac = 0.9) ?(theta_cap = 8.0) ~sampler
    ~sta ~base ~systematic ~vdd ~clock ~stages ~rare () =
  if rare <= 0 then invalid_arg "Smart_sampling.tilts: rare must be positive";
  let n = Array.length base in
  let delays =
    Array.init n (fun i ->
        base.(i) *. Sampler.delay_scale sampler ~lgate_nm:systematic.(i) ~vdd)
  in
  let res = Sta.analyze sta ~delays in
  let ranked =
    List.filter_map
      (fun s -> Option.map (fun d -> (s, d)) (Sta.stage_delay res s))
      stages
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if List.length ranked < rare then [||]
  else begin
    (* The event "at least [rare] stages violate" is bound by the
       rare-th slowest stage; only the stages below the clock among the
       [rare] slowest need to move, so only their endpoints seed
       components.  Stages already violating stay violating under a
       positive tilt (sensitivities are positive — longer Lgate is
       always slower). *)
    let need =
      List.filteri (fun i _ -> i < rare) ranked
      |> List.filter (fun (_, d) -> d < clock)
      |> List.map fst
    in
    let comps =
      List.concat_map
        (fun stage ->
          List.filter_map
            (fun (ep, d) ->
              let gap = clock -. d in
              let p = Paths.trace sta ~delays res ep in
              let cells, vals =
                path_sensitivity sampler ~base ~systematic ~vdd p
              in
              let norm =
                sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 vals)
              in
              if norm <= 0.0 then None
              else begin
                let theta = theta_frac *. gap /. norm in
                if theta <= 1e-9 || theta > theta_cap then None
                else
                  Some
                    {
                      cells;
                      dir = Array.map (fun x -> x /. norm) vals;
                      theta;
                    }
              end)
            (Paths.worst_endpoints ~stage sta res ~k:k_endpoints))
        need
    in
    (* Ladder rungs: the mixture's full-theta components leave a density
       "shadow" between the origin and the tilted means — a rare die
       drawn there (defensively, or off-direction) sees q(z) below the
       nominal density and carries a weight above 1, and those few draws
       dominate the estimator's variance.  Intermediate rungs at 1/2 and
       3/4 of theta for the near components fill the shadow; their
       softmax betas are naturally large (smaller theta), so the
       denominator at moderate projections rises and the heavy tail of
       the weights collapses.  Far components (theta above the rung cap)
       contribute negligible shadow mass and get no rungs. *)
    let rung_cap = 4.5 in
    let rungs =
      List.concat_map
        (fun tl ->
          if tl.theta > rung_cap then []
          else
            [
              { tl with theta = 0.5 *. tl.theta };
              { tl with theta = 0.75 *. tl.theta };
            ])
        comps
    in
    Array.of_list (comps @ rungs)
  end

(* ------------------------------------------------------------------ *)
(* Mixture model and balance-heuristic weights                          *)

type model = {
  alpha : float;
  tilts : tilt array;
  betas : float array;   (* component pick masses, sum = 1 - alpha *)
  cum : float array;     (* alpha + running beta sums, for pick *)
  gram : float array;    (* K x K direction Gram matrix, row-major *)
}

let plain =
  { alpha = 1.0; tilts = [||]; betas = [||]; cum = [||]; gram = [||] }

(* Sparse dot of two sorted sparse vectors. *)
let sparse_dot a_cells a_vals b_cells b_vals =
  let la = Array.length a_cells and lb = Array.length b_cells in
  let acc = ref 0.0 and ia = ref 0 and ib = ref 0 in
  while !ia < la && !ib < lb do
    let ca = a_cells.(!ia) and cb = b_cells.(!ib) in
    if ca = cb then begin
      acc := !acc +. (a_vals.(!ia) *. b_vals.(!ib));
      incr ia;
      incr ib
    end
    else if ca < cb then incr ia
    else incr ib
  done;
  !acc

let make ?(alpha = 0.2) tilts =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Smart_sampling.make: alpha must be in (0, 1]";
  let k = Array.length tilts in
  if k = 0 then plain
  else begin
    (* Components with nearer boundaries get more of the tilted mass:
       beta_j proportional to exp (-theta_j^2 / 2), the normal tail
       order of the event each component chases. *)
    let lw = Array.map (fun t -> -0.5 *. t.theta *. t.theta) tilts in
    let lmax = Array.fold_left Float.max neg_infinity lw in
    let raw = Array.map (fun x -> exp (x -. lmax)) lw in
    let tot = Array.fold_left ( +. ) 0.0 raw in
    let betas = Array.map (fun x -> (1.0 -. alpha) *. x /. tot) raw in
    let cum = Array.make k 0.0 in
    let acc = ref alpha in
    Array.iteri
      (fun j b ->
        acc := !acc +. b;
        cum.(j) <- !acc)
      betas;
    let gram = Array.make (k * k) 0.0 in
    for j = 0 to k - 1 do
      for c = j to k - 1 do
        let d =
          sparse_dot tilts.(j).cells tilts.(j).dir tilts.(c).cells
            tilts.(c).dir
        in
        gram.((j * k) + c) <- d;
        gram.((c * k) + j) <- d
      done
    done;
    { alpha; tilts; betas; cum; gram }
  end

let n_components m = Array.length m.tilts

let pick m rng =
  (* Always one uniform, also for [plain], so the per-die stream layout
     never depends on the site. *)
  let u = Srng.uniform rng in
  let k = Array.length m.tilts in
  if k = 0 || u < m.alpha then -1
  else begin
    let comp = ref (k - 1) in
    (try
       for j = 0 to k - 1 do
         if u < m.cum.(j) then begin
           comp := j;
           raise Exit
         end
       done
     with Exit -> ());
    !comp
  end

let weight m ~comp ~z =
  let k = Array.length m.tilts in
  if k = 0 then 1.0
  else begin
    let denom = ref m.alpha in
    for j = 0 to k - 1 do
      let t = m.tilts.(j) in
      let proj = ref 0.0 in
      for s = 0 to Array.length t.cells - 1 do
        proj := !proj +. (t.dir.(s) *. z.(t.cells.(s)))
      done;
      (* The realised shift of the chosen component, through the Gram
         matrix: <u_j, z + theta_c u_c> = <u_j, z> + theta_c G_jc. *)
      let shift =
        if comp < 0 then 0.0
        else m.tilts.(comp).theta *. m.gram.((j * k) + comp)
      in
      let pt = !proj +. shift in
      denom :=
        !denom
        +. (m.betas.(j) *. exp ((t.theta *. pt) -. (0.5 *. t.theta *. t.theta)))
    done;
    1.0 /. !denom
  end

let shift m ~comp =
  if comp < 0 then Either.Right () else Either.Left m.tilts.(comp)

(* ------------------------------------------------------------------ *)
(* Latin-hypercube jitter plans                                         *)

let lhs_permutations rng n =
  if n <= 0 then invalid_arg "Smart_sampling.lhs_permutations: empty round";
  let px = Array.init n Fun.id and py = Array.init n Fun.id in
  Srng.shuffle rng px;
  Srng.shuffle rng py;
  (px, py)

(* ------------------------------------------------------------------ *)
(* Stratified estimates                                                 *)

let combine ~confidence groups =
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Smart_sampling.combine: confidence must be in (0, 1)";
  if Array.length groups = 0 then (0.0, 0.0)
  else begin
    let est = ref 0.0 and var = ref 0.0 and starved = ref false in
    Array.iter
      (fun (pi, w) ->
        est := !est +. (pi *. Welford.mean w);
        let n = Welford.count w in
        if n < 2 then starved := true
        else
          var :=
            !var +. (pi *. pi *. Welford.variance w /. float_of_int n))
      groups;
    let hw =
      if !starved then infinity
      else
        let zc =
          Specfun.normal_quantile ~mu:0.0 ~sigma:1.0
            ((1.0 +. confidence) /. 2.0)
        in
        zc *. sqrt !var
    in
    (!est, hw)
  end

let effective_samples w =
  let n = Welford.count w in
  if n = 0 then 0.0
  else begin
    let nf = float_of_int n in
    let m = Welford.mean w in
    let m2 = Welford.variance w *. (nf -. 1.0) in
    let sum = nf *. m in
    let sum2 = m2 +. (nf *. m *. m) in
    if sum2 <= 0.0 then 0.0 else sum *. sum /. sum2
  end
