type span = {
  name : string;
  deps : string list;
  start_s : float;
  dur_s : float;
  self_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  ok : bool;
  domain : int;
}

type t = {
  created : float;
  lock : Mutex.t;
  mutable spans : span list;  (* reverse completion order *)
}

let now () = Unix.gettimeofday ()
let create () = { created = now (); lock = Mutex.create (); spans = [] }

let record t span =
  Mutex.lock t.lock;
  t.spans <- span :: t.spans;
  Mutex.unlock t.lock

(* Spans nest when a stage lazily forces its inputs inside its own
   compute function.  Each domain keeps a stack of accumulators for
   time spent in child spans, so a span can report its self time
   (duration minus the nested spans it forced). *)
let child_time : float ref list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span t ~name ?(deps = []) f =
  let t0 = now () in
  let g0 = Gc.quick_stat () in
  (* [quick_stat]'s minor_words only advances at minor collections; the
     dedicated counter is precise, so short spans still attribute their
     allocation. *)
  let mw0 = Gc.minor_words () in
  let nested = Domain.DLS.get child_time in
  let children = ref 0.0 in
  nested := children :: !nested;
  let finish ok =
    let t1 = now () in
    let g1 = Gc.quick_stat () in
    let dur = t1 -. t0 in
    nested := List.tl !nested;
    (match !nested with parent :: _ -> parent := !parent +. dur | [] -> ());
    record t
      {
        name;
        deps;
        start_s = t0 -. t.created;
        dur_s = dur;
        self_s = Float.max 0.0 (dur -. !children);
        minor_words = Gc.minor_words () -. mw0;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        compactions = g1.Gc.compactions - g0.Gc.compactions;
        ok;
        domain = (Domain.self () :> int);
      }
  in
  match f () with
  | v ->
    finish true;
    v
  | exception e ->
    finish false;
    raise e

let spans t =
  Mutex.lock t.lock;
  let s = List.rev t.spans in
  Mutex.unlock t.lock;
  s

(* Stable, so spans sharing a start keep completion order — exporters
   must not re-sort ad hoc. *)
let sort_by_start t =
  List.stable_sort (fun a b -> Float.compare a.start_s b.start_s) (spans t)

let find t name = List.find_opt (fun s -> s.name = name) (spans t)

let count t name =
  List.length (List.filter (fun s -> s.name = name) (spans t))

let duplicates t =
  let seen = Hashtbl.create 16 in
  let dups = ref [] in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.name then begin
        if not (List.mem s.name !dups) then dups := s.name :: !dups
      end
      else Hashtbl.add seen s.name ())
    (spans t);
  List.rev !dups

let mwords w = w /. 1_000_000.0

let pp fmt t =
  let spans = spans t in
  let total = List.fold_left (fun acc s -> acc +. s.self_s) 0.0 spans in
  Format.fprintf fmt "stage trace: %d spans, %.3f s total stage time@."
    (List.length spans) total;
  Format.fprintf fmt "  %-22s %10s %12s %12s %12s %8s  %s@." "stage" "start"
    "dur" "self" "major-alloc" "gcs" "deps";
  List.iter
    (fun s ->
      Format.fprintf fmt
        "  %-22s %8.3f s %10.3f s %10.3f s %9.2f MW %4d/%-3d  %s%s@." s.name
        s.start_s s.dur_s s.self_s (mwords s.major_words) s.minor_collections
        s.major_collections
        (match s.deps with [] -> "-" | ds -> String.concat ", " ds)
        (if s.ok then "" else "  [FAILED]"))
    spans

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"spans\": [\n";
  let spans = spans t in
  let n = List.length spans in
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"deps\": [%s], \"start_s\": %.6f, \
            \"dur_s\": %.6f, \"self_s\": %.6f, \"minor_words\": %.0f, \
            \"major_words\": %.0f, \"promoted_words\": %.0f, \
            \"minor_collections\": %d, \"major_collections\": %d, \
            \"compactions\": %d, \"ok\": %b, \"domain\": %d}%s\n"
           (json_escape s.name)
           (String.concat ", "
              (List.map (fun d -> "\"" ^ json_escape d ^ "\"") s.deps))
           s.start_s s.dur_s s.self_s s.minor_words s.major_words
           s.promoted_words s.minor_collections s.major_collections
           s.compactions s.ok s.domain
           (if i < n - 1 then "," else "")))
    spans;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json t file =
  let oc = open_out file in
  output_string oc (to_json t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (chrome://tracing, Perfetto).  One
   complete ("X") event per span on the track of the domain that
   computed it, preceded by metadata events naming the process and each
   domain track.  Timestamps are microseconds since trace creation. *)

let chrome_event buf ~first ~name ~ph ~ts ~tid ~extra =
  if not first then Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \
        \"tid\": %d%s}"
       (json_escape name) ph ts tid extra)

let to_chrome_json t =
  let spans = sort_by_start t in
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.domain) spans)
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "[\n";
  chrome_event buf ~first:true ~name:"process_name" ~ph:"M" ~ts:0.0 ~tid:0
    ~extra:", \"args\": {\"name\": \"pvtol\"}";
  List.iter
    (fun tid ->
      chrome_event buf ~first:false ~name:"thread_name" ~ph:"M" ~ts:0.0 ~tid
        ~extra:(Printf.sprintf ", \"args\": {\"name\": \"domain %d\"}" tid))
    tids;
  List.iter
    (fun s ->
      let deps =
        String.concat ", "
          (List.map (fun d -> "\"" ^ json_escape d ^ "\"") s.deps)
      in
      chrome_event buf ~first:false ~name:s.name ~ph:"X"
        ~ts:(s.start_s *. 1e6) ~tid:s.domain
        ~extra:
          (Printf.sprintf
             ", \"dur\": %.3f, \"cat\": \"stage\", \"args\": {\"deps\": \
              [%s], \"self_us\": %.3f, \"minor_words\": %.0f, \
              \"major_words\": %.0f, \"minor_collections\": %d, \
              \"major_collections\": %d, \"ok\": %b}"
             (s.dur_s *. 1e6) deps (s.self_s *. 1e6) s.minor_words
             s.major_words s.minor_collections s.major_collections s.ok))
    spans;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let write_chrome_json t file =
  let oc = open_out file in
  output_string oc (to_chrome_json t);
  close_out oc
