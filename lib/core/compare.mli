(** Head-to-head comparison of post-silicon compensation strategies
    over a wafer grid.

    Every strategy of {!Compensation} is evaluated on the {e same} die
    population: per die, one shared {!Compensation.detect} pass (one
    RNG draw), then each selected strategy re-times that die with its
    own knob.  The grid geometry and per-cell RNG seeding are exactly
    {!Wafer}'s ([cell_position] / [cell_seed]), so the voltage-island
    and chip-wide columns reproduce a [Wafer] sweep of the same
    (grid, dies, fields, seed) bit-for-bit — pinned by the
    differential tests — while the skew-tuning and tunable-buffer
    rivals answer the question no single source paper does: how do the
    competing knobs trade yield against power and area.

    Parallelism: one pool chunk per grid cell, each worker carrying its
    own scratch and per-strategy apply state, reduced in row-major
    order — reports are bit-identical for every [PVTOL_DOMAINS]. *)

type config = {
  nx : int;
  ny : int;
  dies_per_cell : int;
  fields : int;
  seed : int;
  direction : Island.direction;
  choices : Compensation.choice list;  (** evaluated in list order *)
}

val default_config : config
(** {!Wafer.default_config}'s geometry (8x8, 12 dies/cell, 1 field,
    seed 7, vertical) with every strategy selected. *)

type strategy_result = {
  name : string;
  title : string;
  knob_units : string;
  yield : float;                (** fraction of dies meeting timing *)
  mean_power_mw : float;        (** mean die power under the strategy *)
  mean_knob : float;            (** mean knob count per die *)
  knob_total : int;             (** total knob count over the population *)
  mean_area_um2 : float;        (** mean exercised knob area per die *)
  static_area_um2 : float;      (** design-time area of the knob hardware *)
  max_knob : int;
}

type report = {
  config : config;
  clock_ns : float;
  dies : int;
  yield_uncompensated : float;  (** dies passing with no knob at all *)
  power_baseline_mw : float;    (** everything at 1.0V *)
  results : strategy_result list;  (** one per choice, in request order *)
}

val run :
  ?pool:Pvtol_util.Pool.t -> Flow.t -> Flow.variant -> config -> report
(** Evaluate the selected strategies over the grid.  [Invalid_argument]
    if the grid is empty, the choice list is empty or contains
    duplicates, or the variant's direction does not match the config. *)

val compare : Flow.t -> config -> report
(** Like {!run}, but memoized on the flow's stage graph as the keyed
    stage [compare[<nx>x<ny>-d<dies>-f<fields>-s<seed>-<dir>-<choices>]]
    — traced and computed at most once per (flow, config). *)

val render : report -> string
(** ASCII yield-vs-power table, one row per strategy (plus the
    uncompensated baseline row), with power/area overheads relative to
    the 1.0V baseline. *)

val pp : Format.formatter -> report -> unit

val to_json : report -> string
(** The report as a JSON document: wafer-level aggregates plus one
    object per strategy under ["strategies"]. *)
