lib/place/legalize.ml: Array Float Floorplan Hashtbl List Netlist Option Placement Printf Pvtol_netlist Pvtol_util
