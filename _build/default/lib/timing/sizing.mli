(** Post-synthesis drive sizing.

    Commercial performance-driven flows first upsize to meet the clock,
    then recover area/power by downsizing every cell whose slack allows
    it — leaving all timing endpoints close to their constraint.  That
    "slack wall" is the precondition of the paper's Fig. 3 (all
    pipeline stages violate under variation, which requires each
    stage's nominal delay to sit near the clock period).

    Constraints are expressed per capture stage, mirroring synthesis
    path groups: endpoints captured by stage [s] must arrive by
    [clock *. frac s].  [recover] performs iterative greedy downsizing
    with a shared-slack guard and full STA verification between rounds;
    a round that breaks any stage constraint is rolled back and retried
    more conservatively. *)

open Pvtol_netlist

type report = {
  netlist : Netlist.t;        (** resized netlist (same topology/ids) *)
  clock : float;
  rounds : int;
  downsized : int;            (** number of drive-notch reductions *)
  area_before : float;
  area_after : float;
}

val recover :
  ?max_rounds:int ->
  ?guard:float ->
  ?rollback:bool ->
  ?frac:(Stage.t -> float) ->
  clock:float ->
  wire_length:(Netlist.net_id -> float) ->
  capture:(Netlist.cell -> Stage.t option) ->
  Netlist.t ->
  report
(** [frac] gives each stage's timing budget as a fraction of [clock]
    (default: 1.0 for every stage).  [guard] is the slack multiple a
    cell must keep over its estimated delay increase before it is
    downsized (default 10.0).  The returned netlist meets every stage
    constraint at the nominal corner, provided the input netlist did. *)

val balanced_fracs : Stage.t -> float
(** The stage budgets used for the paper's design point: execute at
    100% of the clock (the critical stage), decode 97%, write-back
    94%, fetch 90% — the near-critical profile Fig. 3 exhibits. *)

val close_timing :
  ?max_rounds:int ->
  ?frac:(Stage.t -> float) ->
  clock:float ->
  wire_length:(Netlist.net_id -> float) ->
  capture:(Netlist.cell -> Stage.t option) ->
  Netlist.t ->
  report
(** Timing closure: upsize every cell with negative slack against its
    stage budget, one drive notch per round, until all constraints are
    met (or drives saturate at X4).  Run before {!recover}; the
    combination reproduces the synthesis sequence "meet timing, then
    recover area". *)

val fit :
  ?frac:(Stage.t -> float) ->
  clock:float ->
  wire_length:(Netlist.net_id -> float) ->
  capture:(Netlist.cell -> Stage.t option) ->
  Netlist.t ->
  report
(** [close_timing] followed by [recover]; the final netlist sits just
    below each stage budget at the nominal corner. *)
