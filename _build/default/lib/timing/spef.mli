(** SPEF-subset parasitics writer/parser.

    Commercial flows hand extracted parasitics to the timing engine as
    SPEF; this module provides that interchange for the reproduction's
    lumped per-net model: total capacitance (fF) and an effective
    resistance-delay term per net.  {!annotate} rebuilds an STA whose
    loads come from the annotated capacitances instead of the wireload
    or HPWL estimates — closing the same estimate-then-extract loop a
    real flow has. *)

open Pvtol_netlist

type net_parasitics = {
  cap_ff : float;       (** total net capacitance, fF (wire only) *)
  wire_delay : float;   (** lumped source-to-sink wire delay, ns *)
}

val extract : Pvtol_place.Placement.t -> net_parasitics array
(** Placement-based extraction (the reproduction's ground truth):
    per-net fanout-corrected wire capacitance and delay. *)

val to_string : Netlist.t -> net_parasitics array -> string
val write_file : string -> Netlist.t -> net_parasitics array -> unit

exception Parse_error of string

val of_string : Netlist.t -> string -> net_parasitics array
(** Nets are matched by name; missing nets raise {!Parse_error}. *)

val read_file : Netlist.t -> string -> net_parasitics array

val annotate :
  Netlist.t ->
  net_parasitics array ->
  capture:(Netlist.cell -> Stage.t option) ->
  Sta.t
(** Build an STA whose per-net wire capacitance and delay come from the
    parasitics (equivalent to [Sta.build] when the parasitics came from
    {!extract} on the same placement). *)
