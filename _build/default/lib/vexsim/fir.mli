(** The FIR filtering benchmark used for every power measurement in the
    paper ("a FIR filtering benchmark executed on the VEX processor
    core was used for power assessment"). *)

type result = {
  stats : Sim.stats;
  outputs : int array;       (** filtered samples from the ISS run *)
  reference : int array;     (** same filter computed directly *)
  trace : Int32.t array list;  (** instruction-word trace for gate-level
                                   activity simulation *)
}

val program : taps:int -> samples:int -> string
(** Assembly source of a [taps]-tap FIR over [samples] input samples,
    unrolled 4-wide where the VLIW slots allow. *)

val run : ?taps:int -> ?samples:int -> ?seed:int -> unit -> result
(** Assemble, load coefficients and a deterministic pseudo-random input
    signal, execute, and compare against the direct convolution.
    Defaults: 16 taps, 64 samples, seed 3. *)

val check : result -> bool
(** ISS outputs match the reference convolution exactly. *)
