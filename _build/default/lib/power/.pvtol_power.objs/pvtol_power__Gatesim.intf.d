lib/power/gatesim.mli: Int32 Netlist Pvtol_netlist
