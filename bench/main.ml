(* Benchmark / reproduction harness.

   Usage:
     bench/main.exe                 -- every table & figure, then kernels
     bench/main.exe <exhibit>        -- one of: fig2 table1 fig3 scenarios
                                        razor fig4 table2 fig5 fig6 energy
                                        validate ablation clocktree crosscheck
                                        alternatives routing powergrid
                                        workloads postsilicon wafer
     bench/main.exe kernels         -- Bechamel micro-benchmarks + the
                                        serial-vs-parallel Monte-Carlo
                                        throughput report
     bench/main.exe kernels --json  -- also write BENCH_ssta.json (perf
                                        trajectory for future changes)
     bench/main.exe kernels-mc      -- only the golden-vs-batched MC
                                        kernels and their speedup ratio
     bench/main.exe --quick ...     -- scaled-down design (fast smoke run)

   One Bechamel Test.make per table/figure kernel: the measured loop is
   the computational core that regenerates that exhibit (field eval for
   Fig. 2, an STA pass for Table 1's timing, a Monte-Carlo sample for
   Fig. 3 / §4.4, a corner compensation check for Fig. 4, crossing
   analysis for Table 2, and a power pass for Figs. 5-6).  Kernel lines
   are printed sorted by name so runs diff cleanly.  The Monte-Carlo
   engine is additionally timed end-to-end with a 1-domain pool and with
   the shared pool (PVTOL_DOMAINS / Domain.recommended_domain_count) to
   report the parallel speedup; both runs produce bit-identical
   samples. *)

module Experiments = Pvtol_core.Experiments
module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Level_shifter = Pvtol_core.Level_shifter
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Field = Pvtol_variation.Field
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Gatesim = Pvtol_power.Gatesim
module Srng = Pvtol_util.Srng
module Pool = Pvtol_util.Pool
module Metrics = Pvtol_util.Metrics
module MC = Pvtol_ssta.Monte_carlo
module Smart_sampling = Pvtol_ssta.Smart_sampling
module Wafer = Pvtol_core.Wafer
module Compensation = Pvtol_core.Compensation

let ctx = ref None

let context ~quick () =
  match !ctx with
  | Some c -> c
  | None ->
    let config = if quick then Flow.quick_config else Flow.default_config in
    Printf.printf "[preparing design flow%s...]\n%!" (if quick then " (quick)" else "");
    let c = Experiments.make_context ~config () in
    ctx := Some c;
    c

(* ------------------------------------------------------------------ *)
(* Monte-Carlo throughput: serial vs parallel                           *)

type mc_report = {
  mc_samples : int;
  domains : int;
  serial_sps : float;    (* samples / second, 1-domain pool *)
  parallel_sps : float;  (* samples / second, shared pool *)
}

let mc_speedup r = r.parallel_sps /. r.serial_sps

let mc_throughput ~quick () =
  let t = context ~quick () in
  let samples = (Flow.config t).Flow.mc_samples in
  let seed = (Flow.config t).Flow.mc_seed in
  let time_run ~pool =
    let t0 = Unix.gettimeofday () in
    let r =
      MC.run
        ~config:{ MC.samples; seed }
        ~pool ~sampler:(Flow.sampler t) ~sta:(Flow.sta t)
        ~placement:(Flow.placement t) ~position:Position.point_b ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (float_of_int samples /. dt, r)
  in
  let serial_pool = Pool.create ~domains:1 () in
  let serial_sps, r1 = time_run ~pool:serial_pool in
  Pool.shutdown serial_pool;
  let pool = Pool.shared () in
  let parallel_sps, r2 = time_run ~pool in
  if r1.MC.worst_samples <> r2.MC.worst_samples then
    failwith "mc-parallel: samples differ from the serial engine";
  { mc_samples = samples; domains = Pool.domains pool; serial_sps; parallel_sps }

let print_mc_report r =
  Printf.printf
    "\nMonte-Carlo SSTA throughput (%d samples, bit-identical results):\n\
    \  mc-serial    (1 domain)    %10.1f samples/s\n\
    \  mc-parallel  (%d domains)  %10.1f samples/s\n\
    \  speedup: %.2fx\n%!"
    r.mc_samples r.serial_sps r.domains r.parallel_sps (mc_speedup r)

(* ------------------------------------------------------------------ *)
(* Wafer-sweep throughput: serial vs parallel, dies / second            *)

type wafer_report = {
  wafer_dies : int;
  wafer_grid : int * int;
  wafer_domains : int;
  wafer_serial_dps : float;    (* dies / second, 1-domain pool *)
  wafer_parallel_dps : float;  (* dies / second, shared pool *)
}

let wafer_speedup r = r.wafer_parallel_dps /. r.wafer_serial_dps

let wafer_throughput ~quick () =
  let t = context ~quick () in
  let v = Flow.variant t Island.Vertical in
  let cfg =
    if quick then { Wafer.default_config with Wafer.nx = 6; ny = 6; dies_per_cell = 8 }
    else Wafer.default_config
  in
  let time_run ~pool =
    let t0 = Unix.gettimeofday () in
    let s = Wafer.run ~pool t v cfg in
    let dt = Unix.gettimeofday () -. t0 in
    (float_of_int s.Wafer.dies /. dt, s)
  in
  let serial_pool = Pool.create ~domains:1 () in
  let serial_dps, s1 = time_run ~pool:serial_pool in
  Pool.shutdown serial_pool;
  let pool = Pool.shared () in
  let parallel_dps, s2 = time_run ~pool in
  if s1 <> s2 then failwith "wafer-parallel: sweep differs from the serial engine";
  {
    wafer_dies = s1.Wafer.dies;
    wafer_grid = (cfg.Wafer.nx, cfg.Wafer.ny);
    wafer_domains = Pool.domains pool;
    wafer_serial_dps = serial_dps;
    wafer_parallel_dps = parallel_dps;
  }

let print_wafer_report r =
  let nx, ny = r.wafer_grid in
  Printf.printf
    "\nWafer sweep throughput (%dx%d grid, %d dies, bit-identical results):\n\
    \  wafer-serial    (1 domain)    %10.1f dies/s\n\
    \  wafer-parallel  (%d domains)  %10.1f dies/s\n\
    \  speedup: %.2fx\n%!"
    nx ny r.wafer_dies r.wafer_serial_dps r.wafer_domains r.wafer_parallel_dps
    (wafer_speedup r)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: MC throughput with metrics off vs on             *)

type telemetry_report = {
  tel_samples : int;
  tel_disabled_sps : float;  (* samples / second, metrics disabled *)
  tel_enabled_sps : float;   (* samples / second, metrics enabled *)
}

let telemetry_overhead_pct r =
  100.0 *. (1.0 -. (r.tel_enabled_sps /. r.tel_disabled_sps))

let telemetry_throughput ~quick () =
  let t = context ~quick () in
  let samples = (Flow.config t).Flow.mc_samples in
  let seed = (Flow.config t).Flow.mc_seed in
  let pool = Pool.shared () in
  let time_run () =
    let t0 = Unix.gettimeofday () in
    let r =
      MC.run
        ~config:{ MC.samples; seed }
        ~pool ~sampler:(Flow.sampler t) ~sta:(Flow.sta t)
        ~placement:(Flow.placement t) ~position:Position.point_b ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (* Both modes must do the same amount of work for the comparison to
       mean anything. *)
    if Array.length r.MC.worst_samples <> samples then
      failwith "telemetry: sample count drifted between modes";
    float_of_int samples /. dt
  in
  let was = Metrics.enabled () in
  (* Warm BOTH code paths before any timed run (a cold first mode would
     be charged its page faults and lazy inits — historically this made
     "enabled" look faster than "disabled").  Then interleave the
     rounds so slow drift (turbo, thermal) hits both modes equally, and
     keep the best of three per mode. *)
  Metrics.set_enabled false;
  ignore (time_run ());
  Metrics.set_enabled true;
  ignore (time_run ());
  let tel_disabled_sps = ref 0.0 and tel_enabled_sps = ref 0.0 in
  let measure enabled acc =
    Metrics.set_enabled enabled;
    acc := Float.max !acc (time_run ())
  in
  for round = 1 to 6 do
    (* Alternate which mode goes first — an even round count, so each
       mode leads exactly half the rounds and within-round drift
       cancels. *)
    if round land 1 = 1 then (
      measure false tel_disabled_sps;
      measure true tel_enabled_sps)
    else (
      measure true tel_enabled_sps;
      measure false tel_disabled_sps)
  done;
  Metrics.set_enabled was;
  {
    tel_samples = samples;
    tel_disabled_sps = !tel_disabled_sps;
    tel_enabled_sps = !tel_enabled_sps;
  }

let print_telemetry_report r =
  Printf.printf
    "\nTelemetry overhead (Monte-Carlo, %d samples):\n\
    \  metrics disabled  %10.1f samples/s\n\
    \  metrics enabled   %10.1f samples/s\n\
    \  overhead: %.2f%%\n%!"
    r.tel_samples r.tel_disabled_sps r.tel_enabled_sps
    (telemetry_overhead_pct r)

(* ------------------------------------------------------------------ *)
(* Sampling calibration: samples-to-CI-target, mc vs is vs lhs          *)

(* Statistical (not timing) calibration of the variance-reduced
   estimators on the paper's rare event — P(>= 2 islands violating) at
   die position B.  Each method runs a pinned budget at a pinned seed
   (the same budgets the PVTOL_SLOW_TESTS oracle uses, so the numbers
   agree), and the per-die variance recovered from the report's CI
   converts into "dies needed for a +-0.1% half-width":
   [n_target = n * (hw / target)^2].  The section is deterministic run
   to run — it pins the variance-reduction factor, not a timing. *)

type sampling_line = {
  sl_method : string;
  sl_dies : int;
  sl_rare : float;
  sl_hw : float;
  sl_to_target : float;  (* dies needed for hw = sc_target *)
}

type sampling_calibration = {
  sc_target : float;
  sc_lines : sampling_line list;
  sc_vrf : float;  (* per-die variance ratio, mc / is *)
}

let sampling_calibration ~quick () =
  let t = context ~quick () in
  let pool = Pool.shared () in
  let target = 0.001 in
  let run name method_ ~rounds ~seed =
    let r =
      Wafer.estimate_at ~pool t ~position:Position.point_b
        {
          Wafer.default_sampling_config with
          Wafer.s_method = method_;
          s_strata = 4;
          s_dies_per_round = 25;
          s_max_rounds = rounds;
          s_ci_target = 1e-12;
          s_ci_metric = Wafer.Ci_rare;
          s_seed = seed;
        }
    in
    let hw = r.Wafer.sr_rare.Wafer.hw in
    {
      sl_method = name;
      sl_dies = r.Wafer.sr_dies;
      sl_rare = r.Wafer.sr_rare.Wafer.mid;
      sl_hw = hw;
      sl_to_target = float_of_int r.Wafer.sr_dies *. (hw /. target) ** 2.0;
    }
  in
  let mc = run "mc" Smart_sampling.Mc ~rounds:50 ~seed:202 in
  let is = run "is" Smart_sampling.Is ~rounds:15 ~seed:303 in
  let lhs = run "lhs" Smart_sampling.Lhs ~rounds:50 ~seed:404 in
  {
    sc_target = target;
    sc_lines = [ mc; is; lhs ];
    sc_vrf = mc.sl_to_target /. is.sl_to_target;
  }

let print_sampling_calibration s =
  Printf.printf
    "\nSampling calibration at position B (rare scenario, +-%.1f%% CI \
     target):\n%!"
    (100.0 *. s.sc_target);
  List.iter
    (fun l ->
      Printf.printf
        "  %-4s %6d dies   P=%.5f +- %.5f   -> %9.0f dies to target\n%!"
        l.sl_method l.sl_dies l.sl_rare l.sl_hw l.sl_to_target)
    s.sc_lines;
  Printf.printf "  variance reduction (is vs mc): %.2fx\n%!" s.sc_vrf

(* ------------------------------------------------------------------ *)
(* Bechamel kernels                                                     *)

(* MC-related kernels carry [per_run > 1]: one staged run covers a full
   lane block, and the reported estimate is divided by [per_run] so
   every fig3/table1 line stays ns per SAMPLE and the engines compare
   directly. *)
let mc_kernel_names =
  [
    "fig3/mc-sample"; "fig3/mc-sample-batched"; "fig3/mc-sample-is";
    "table1/sta-pass-into"; "table1/sta-batch-into";
  ]

let kernel_estimates ~quick ?(only = fun _ -> true) () =
  let open Bechamel in
  let open Toolkit in
  let t = context ~quick () in
  let sta = Flow.sta t in
  let base = Sta.nominal_delays sta in
  let sampler = Flow.sampler t in
  let placement = Flow.placement t in
  let systematic = Sampler.systematic_lgates sampler placement Position.point_a in
  let n = Array.length base in
  let lgates = Array.make n 0.0 in
  let delays = Array.make n 0.0 in
  let ws = Sta.workspace sta in
  let rng = Srng.create 99 in
  let low =
    (Flow.netlist t).Pvtol_netlist.Netlist.lib.Pvtol_stdcell.Cell.process
      .Pvtol_stdcell.Process.vdd_low
  in
  let field = Field.default in
  (* Batched-engine scratch: one block of [lanes] samples per run. *)
  let lanes = 32 in
  let bw = Sta.batch_workspace ~lanes sta in
  let stride = Sta.batch_stride bw in
  let gauss = Array.make (lanes * n) 0.0 in
  let brng = Srng.create 99 in
  let batch = Sampler.batch sampler ~base ~systematic ~vdd:(fun _ -> low) in
  (* Importance-sampled die at position B: the full per-die overhead of
     the smart-sampling layer — component pick, RNG replay for the
     likelihood ratio, tilted systematic field — on top of the plain
     fig3/mc-sample path, so the two lines diff to the IS tax. *)
  let systematic_b = Sampler.systematic_lgates sampler placement Position.point_b in
  let is_model =
    Smart_sampling.make
      (Smart_sampling.tilts ~sampler ~sta ~base ~systematic:systematic_b
         ~vdd:low ~clock:(Flow.clock t) ~stages:Compensation.analyzed ~rare:2 ())
  in
  let is_rng = Srng.create 99 in
  let is_z = Array.make n 0.0 in
  let is_sys = Array.make n 0.0 in
  (* Compensation-strategy kernels: one failing die is drawn up-front
     at the worst corner (retrying a few draws so the knobs have
     violations to chase), then each kernel re-applies its strategy to
     that same die.  The applies re-derive everything from the scratch's
     gate lengths, so repeated runs are deterministic; the detect kernel
     gets its own scratch and RNG so its iterations cannot disturb the
     pinned die. *)
  let comp_ctx = Compensation.context t in
  let comp_v = Flow.variant t Island.Vertical in
  let comp_sc = Compensation.scratch comp_ctx in
  let comp_sys = Compensation.systematic comp_ctx Position.point_a in
  let comp_d =
    let comp_rng = Srng.create 7 in
    let rec draw n d =
      if d.Compensation.violating > 0 || n >= 50 then d
      else
        draw (n + 1)
          (Compensation.detect comp_ctx comp_sc ~systematic:comp_sys comp_rng)
    in
    draw 0 (Compensation.detect comp_ctx comp_sc ~systematic:comp_sys comp_rng)
  in
  let comp_apply choice =
    (Compensation.build t comp_ctx comp_v choice).Compensation.fresh_apply ()
  in
  let apply_vi = comp_apply Compensation.Vi in
  let apply_cw = comp_apply Compensation.Chipwide in
  let apply_skew = comp_apply Compensation.Skew in
  let apply_buf = comp_apply Compensation.Buffers in
  let det_sc = Compensation.scratch comp_ctx in
  let det_rng = Srng.create 11 in
  let tests =
    [
      ( "fig2/field-eval-4096", 1,
        fun () ->
          let acc = ref 0.0 in
          for i = 0 to 63 do
            for j = 0 to 63 do
              acc :=
                !acc
                +. Field.systematic_nm field
                     ~x_mm:(float_of_int i /. 4.0)
                     ~y_mm:(float_of_int j /. 4.0)
            done
          done;
          ignore !acc );
      ( "table1/sta-pass", 1,
        fun () -> ignore (Sta.analyze sta ~delays:base) );
      ( "table1/sta-pass-into", 1,
        fun () -> Sta.analyze_into sta ws ~delays:base );
      ( "table1/sta-batch-into", lanes,
        fun () -> Sta.analyze_batch_into sta bw ~lanes );
      ( "fig3/mc-sample", 1,
        fun () ->
          Sampler.sample_lgates sampler ~systematic rng lgates;
          Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> low)
            ~out:delays;
          Sta.analyze_into sta ws ~delays );
      ( "fig3/mc-sample-batched", lanes,
        fun () ->
          Srng.fill_gaussians brng gauss ~pos:0 ~len:(lanes * n);
          Sampler.scale_delays_batch batch ~gauss ~samples:lanes ~stride
            ~out:(Sta.batch_delays bw);
          Sta.analyze_batch_into sta bw ~lanes );
      ( "fig3/mc-sample-is", 1,
        fun () ->
          let comp = Smart_sampling.pick is_model is_rng in
          let probe = Srng.copy is_rng in
          Srng.fill_gaussians probe is_z ~pos:0 ~len:n;
          let w = Smart_sampling.weight is_model ~comp ~z:is_z in
          let sys =
            match Smart_sampling.shift is_model ~comp with
            | Either.Right () -> systematic_b
            | Either.Left tl ->
              Sampler.shifted_systematic sampler ~systematic:systematic_b
                ~cells:tl.Smart_sampling.cells ~dir:tl.Smart_sampling.dir
                ~theta:tl.Smart_sampling.theta ~out:is_sys;
              is_sys
          in
          Sampler.sample_lgates sampler ~systematic:sys is_rng lgates;
          Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> low)
            ~out:delays;
          Sta.analyze_into sta ws ~delays;
          ignore w );
      ( "fig4/corner-check", 1,
        fun () ->
          for i = 0 to n - 1 do
            delays.(i) <-
              base.(i)
              *. Slicing.corner_scale ~sampler ~systematic ~corner_kappa:0.35
                   ~vdd:(fun _ -> low)
                   i
          done;
          ignore (Sta.analyze sta ~delays) );
      ( "table2/crossing-analysis", 1,
        fun () ->
          ignore
            (Level_shifter.count_crossings
               (Flow.variant t Island.Vertical).Flow.slicing.Slicing.partition
               placement (Flow.netlist t)) );
      ( "fig5-6/power-pass", 1,
        fun () ->
          ignore
            (Power.analyze
               ~vdd:(fun _ -> low)
               ~activity:(Flow.activity t)
               ~wire_length:(fun nid ->
                 Pvtol_place.Placement.wire_length placement nid)
               ~clock_ns:(Flow.clock t) (Flow.netlist t)) );
      ( "compare/detect", 1,
        fun () ->
          ignore
            (Compensation.detect comp_ctx det_sc ~systematic:comp_sys det_rng) );
      ( "compare/apply-vi", 1, fun () -> ignore (apply_vi comp_sc comp_d) );
      ( "compare/apply-chipwide", 1,
        fun () -> ignore (apply_cw comp_sc comp_d) );
      ( "compare/apply-skew", 1, fun () -> ignore (apply_skew comp_sc comp_d) );
      ( "compare/apply-buffers", 1,
        fun () -> ignore (apply_buf comp_sc comp_d) );
      ( "gatesim/cycle", 1,
        fun () ->
          ignore
            (Gatesim.run ~cycles:1 (Flow.netlist t)
               (Gatesim.random_stimulus ~seed:5)) );
    ]
  in
  let tests = List.filter (fun (name, _, _) -> only name) tests in
  let per_run = List.map (fun (name, d, _) -> (name, d)) tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instances = [ Instance.monotonic_clock ] in
  let rows =
    List.concat_map
      (fun (name, _, fn) ->
        let raw = Benchmark.all cfg instances (Test.make ~name (Staged.stage fn)) in
        let results =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        in
        Hashtbl.fold
          (fun name result acc ->
            let divisor =
              float_of_int (Option.value ~default:1 (List.assoc_opt name per_run))
            in
            match Bechamel.Analyze.OLS.estimates result with
            | Some (est :: _) -> (name, Some (est /. divisor)) :: acc
            | _ -> (name, None) :: acc)
          results [])
      tests
  in
  (* Hashtbl.fold order is unspecified: sort by kernel name so the
     report is stable run to run. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* Golden-vs-batched engine ratio from the per-sample kernel lines;
   [None] until both kernels have estimates. *)
let mc_engine_speedup rows =
  match
    (List.assoc_opt "fig3/mc-sample" rows,
     List.assoc_opt "fig3/mc-sample-batched" rows)
  with
  | Some (Some golden), Some (Some batched) when batched > 0.0 ->
    Some (golden /. batched)
  | _ -> None

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~file rows mc wf tel smp =
  let oc = open_out file in
  output_string oc "{\n  \"kernels_ns_per_run\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" (json_escape name)
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i < n - 1 then "," else ""))
    rows;
  output_string oc "  },\n";
  Printf.fprintf oc
    "  \"monte_carlo\": {\n\
    \    \"samples\": %d,\n\
    \    \"domains\": %d,\n\
    \    \"serial_samples_per_sec\": %.1f,\n\
    \    \"parallel_samples_per_sec\": %.1f,\n\
    \    \"speedup\": %.3f\n\
    \  },\n"
    mc.mc_samples mc.domains mc.serial_sps mc.parallel_sps (mc_speedup mc);
  let nx, ny = wf.wafer_grid in
  Printf.fprintf oc
    "  \"wafer\": {\n\
    \    \"grid\": \"%dx%d\",\n\
    \    \"dies\": %d,\n\
    \    \"domains\": %d,\n\
    \    \"serial_dies_per_sec\": %.1f,\n\
    \    \"parallel_dies_per_sec\": %.1f,\n\
    \    \"speedup\": %.3f\n\
    \  },\n"
    nx ny wf.wafer_dies wf.wafer_domains wf.wafer_serial_dps
    wf.wafer_parallel_dps (wafer_speedup wf);
  Printf.fprintf oc
    "  \"telemetry\": {\n\
    \    \"samples\": %d,\n\
    \    \"disabled_samples_per_sec\": %.1f,\n\
    \    \"enabled_samples_per_sec\": %.1f,\n\
    \    \"overhead_pct\": %.3f\n\
    \  },\n"
    tel.tel_samples tel.tel_disabled_sps tel.tel_enabled_sps
    (telemetry_overhead_pct tel);
  output_string oc "  \"sampling\": {\n";
  Printf.fprintf oc
    "    \"position\": \"B\",\n\
    \    \"rare_scenario\": 2,\n\
    \    \"ci_target\": %g,\n"
    smp.sc_target;
  List.iter
    (fun l ->
      (* Always a trailing comma: the vrf line closes the object. *)
      Printf.fprintf oc
        "    \"%s\": { \"dies\": %d, \"rare\": %.6f, \"ci_halfwidth\": \
         %.6f, \"dies_to_target\": %.0f },\n"
        l.sl_method l.sl_dies l.sl_rare l.sl_hw l.sl_to_target)
    smp.sc_lines;
  Printf.fprintf oc "    \"vrf_is_over_mc\": %.3f\n  },\n" smp.sc_vrf;
  Printf.fprintf oc "  \"mc_engine_speedup\": %s\n}\n"
    (match mc_engine_speedup rows with
    | Some s -> Printf.sprintf "%.3f" s
    | None -> "null");
  close_out oc;
  Printf.printf "[wrote %s]\n%!" file

let print_kernel_rows rows =
  Printf.printf "\nKernel micro-benchmarks (Bechamel, ns per sample):\n%!";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
      | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
    rows

let print_engine_speedup rows =
  match mc_engine_speedup rows with
  | Some s ->
    Printf.printf
      "\nMC engine speedup (golden / batched, per sample): %.2fx\n%!" s
  | None -> ()

let kernels ~quick ~json () =
  let rows = kernel_estimates ~quick () in
  print_kernel_rows rows;
  print_engine_speedup rows;
  let mc = mc_throughput ~quick () in
  print_mc_report mc;
  let wf = wafer_throughput ~quick () in
  print_wafer_report wf;
  let tel = telemetry_throughput ~quick () in
  print_telemetry_report tel;
  let smp = sampling_calibration ~quick () in
  print_sampling_calibration smp;
  if json then write_json ~file:"BENCH_ssta.json" rows mc wf tel smp

(* Just the golden-vs-batched comparison: the four per-sample MC
   kernels and their ratio ([make bench-mc]). *)
let kernels_mc ~quick () =
  let rows =
    kernel_estimates ~quick ~only:(fun n -> List.mem n mc_kernel_names) ()
  in
  print_kernel_rows rows;
  print_engine_speedup rows

(* ------------------------------------------------------------------ *)

let exhibits =
  [
    ("fig2", fun _c -> Experiments.fig2_lgate_map ());
    ("table1", Experiments.table1_breakdown);
    ("fig3", Experiments.fig3_distributions);
    ("scenarios", Experiments.scenarios_summary);
    ("razor", Experiments.razor_sites);
    ("fig4", Experiments.fig4_islands);
    ("table2", Experiments.table2_level_shifters);
    ("fig5", Experiments.fig5_total_power);
    ("fig6", Experiments.fig6_leakage);
    ("energy", Experiments.energy_note);
    ("validate", Experiments.compensation_check);
    ("ablation", Experiments.grouping_ablation);
    ("alternatives", Experiments.alternatives_comparison);
    ("crosscheck", Experiments.ssta_crosscheck);
    ("clocktree", Experiments.clock_tree_note);
    ("routing", Experiments.routing_note);
    ("powergrid", Experiments.power_integrity);
    ("workloads", Experiments.workload_sensitivity);
    ("postsilicon", Experiments.postsilicon_study);
    ("wafer", Experiments.wafer_study);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--json") args in
  match args with
  | [] ->
    let c = context ~quick () in
    print_string (Experiments.all c);
    kernels ~quick ~json ()
  | [ "kernels" ] -> kernels ~quick ~json ()
  | [ "kernels-mc" ] -> kernels_mc ~quick ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name exhibits with
        | Some f ->
          let c = context ~quick () in
          print_string (f c);
          print_newline ()
        | None ->
          Printf.eprintf
            "unknown exhibit %S (try: %s, kernels, kernels-mc)\n" name
            (String.concat ", " (List.map fst exhibits));
          exit 1)
      names
