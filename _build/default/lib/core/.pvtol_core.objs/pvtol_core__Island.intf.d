lib/core/island.mli: Netlist Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util
