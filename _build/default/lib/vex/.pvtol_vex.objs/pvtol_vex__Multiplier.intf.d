lib/vex/multiplier.mli: Gen
