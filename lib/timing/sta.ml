open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind

let n_stages = List.length Stage.all

(* analyze/workspace counters: the ratio of the two is the workspace
   reuse factor the allocation-free inner loop exists for. *)
module Metrics = Pvtol_util.Metrics

let m_workspaces = Metrics.counter "sta_workspace_total"
let m_analyzes = Metrics.counter "sta_analyze_total"

type t = {
  nl : Netlist.t;
  order : int array;             (* combinational cells, topological *)
  base_delay : float array;      (* per cell *)
  pin_off : int array;           (* CSR row offsets into pin_wire, length cells+1 *)
  pin_wire : float array;        (* flattened per-pin wire delays, pin order *)
  clk_to_q : float;
  setup : float;
  capture_of : Stage.t option array;  (* per cell *)
  flops : int array;
  stage_endpoints : int array array;  (* per Stage.index: capturing flops, id order *)
}

let netlist t = t.nl

let wireload_model nl nid =
  let net = nl.Netlist.nets.(nid) in
  let fanout = Array.length net.Netlist.sinks in
  (* Representative 65nm wireload curve: a few um per sink. *)
  4.0 +. (3.0 *. float_of_int fanout)

let is_seq (c : Netlist.cell) = Kind.is_sequential c.Netlist.cell.Cell_lib.kind

let topo_order (nl : Netlist.t) =
  let n = Netlist.cell_count nl in
  let indeg = Array.make n 0 in
  let comb c = not (is_seq c) in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c then
        Array.iter
          (fun nid ->
            match nl.Netlist.nets.(nid).Netlist.driver with
            | Some d when comb nl.Netlist.cells.(d) ->
              indeg.(c.Netlist.id) <- indeg.(c.Netlist.id) + 1
            | Some _ | None -> ())
          c.Netlist.fanins)
    nl.Netlist.cells;
  let queue = Queue.create () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c && indeg.(c.Netlist.id) = 0 then Queue.add c.Netlist.id queue)
    nl.Netlist.cells;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    order.(!k) <- cid;
    incr k;
    Array.iter
      (fun (sink, _) ->
        if not (is_seq nl.Netlist.cells.(sink)) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      nl.Netlist.nets.(nl.Netlist.cells.(cid).Netlist.fanout).Netlist.sinks
  done;
  Array.sub order 0 !k

let build nl ~wire_length ~capture =
  let lib = nl.Netlist.lib in
  let net_load = Array.make (Netlist.net_count nl) 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins =
        Array.fold_left
          (fun acc (cid, _) ->
            acc +. nl.Netlist.cells.(cid).Netlist.cell.Cell_lib.input_cap)
          0.0 net.Netlist.sinks
      in
      let wire =
        if net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 then 0.0
        else lib.Cell_lib.wire_cap_per_um *. wire_length net.Netlist.net_id
      in
      net_load.(net.Netlist.net_id) <- pins +. wire)
    nl.Netlist.nets;
  let base_delay =
    Array.map
      (fun (c : Netlist.cell) ->
        let cell = c.Netlist.cell in
        let load = net_load.(c.Netlist.fanout) in
        if is_seq c then
          (* clk-to-q, with the same load dependence as a gate. *)
          lib.Cell_lib.clk_to_q +. (cell.Cell_lib.drive_res *. load)
        else cell.Cell_lib.d0 +. (cell.Cell_lib.drive_res *. load))
      nl.Netlist.cells
  in
  (* Flattened CSR layout for the per-pin wire delays: one contiguous
     float array walked linearly by the forward pass, instead of a
     pointer chase through an array of per-cell arrays. *)
  let n_cells = Netlist.cell_count nl in
  let pin_off = Array.make (n_cells + 1) 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      pin_off.(c.Netlist.id + 1) <- Array.length c.Netlist.fanins)
    nl.Netlist.cells;
  for i = 1 to n_cells do
    pin_off.(i) <- pin_off.(i) + pin_off.(i - 1)
  done;
  let pin_wire = Array.make pin_off.(n_cells) 0.0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let off = pin_off.(c.Netlist.id) in
      Array.iteri
        (fun pin nid ->
          (* Lumped per-sink wire delay: half the net length. *)
          pin_wire.(off + pin) <-
            lib.Cell_lib.wire_delay_per_um *. (wire_length nid /. 2.0))
        c.Netlist.fanins)
    nl.Netlist.cells;
  let capture_of = Array.map (fun c -> capture c) nl.Netlist.cells in
  let flops =
    Array.to_list nl.Netlist.cells
    |> List.filter is_seq
    |> List.map (fun (c : Netlist.cell) -> c.Netlist.id)
    |> Array.of_list
  in
  let stage_endpoints =
    Array.init n_stages (fun si ->
        Array.to_list flops
        |> List.filter (fun cid ->
               match capture_of.(cid) with
               | Some s -> Stage.index s = si
               | None -> false)
        |> Array.of_list)
  in
  {
    nl;
    order = topo_order nl;
    base_delay;
    pin_off;
    pin_wire;
    clk_to_q = lib.Cell_lib.clk_to_q;
    setup = lib.Cell_lib.setup;
    capture_of;
    flops;
    stage_endpoints;
  }

let of_placement p ~capture =
  build p.Pvtol_place.Placement.netlist
    ~wire_length:(fun nid -> Pvtol_place.Placement.wire_length p nid)
    ~capture

let comb_order t = Array.copy t.order
let flop_ids t = Array.copy t.flops
let pin_wire_delay t cid pin = t.pin_wire.(t.pin_off.(cid) + pin)
let capture_stage_of t cid = t.capture_of.(cid)

let nominal_delays t = Array.copy t.base_delay

let scaled_delays t ~scale =
  Array.mapi (fun i d -> d *. scale i) t.base_delay

type result = {
  arrival : float array;
  endpoint_delay : float array;
  worst : float;
  worst_endpoint : Netlist.cell_id;
  stage_worst : (Stage.t * float * Netlist.cell_id) list;
}

type workspace = {
  arrival_ws : float array;         (* per net *)
  endpoint_delay_ws : float array;  (* per cell *)
  stage_delay_ws : float array;     (* per Stage.index; meaningful iff endpoint >= 0 *)
  stage_endpoint_ws : int array;    (* per Stage.index; -1 = no endpoint *)
  mutable worst_ws : float;
  mutable worst_endpoint_ws : int;
}

let workspace t =
  Metrics.incr m_workspaces;
  {
    arrival_ws = Array.make (Netlist.net_count t.nl) 0.0;
    endpoint_delay_ws = Array.make (Netlist.cell_count t.nl) 0.0;
    stage_delay_ws = Array.make n_stages neg_infinity;
    stage_endpoint_ws = Array.make n_stages (-1);
    worst_ws = 0.0;
    worst_endpoint_ws = -1;
  }

let zero_skew = fun (_ : Netlist.cell_id) -> 0.0

let analyze_into ?skew t ws ~delays =
  Metrics.incr m_analyzes;
  let nl = t.nl in
  let skew = match skew with Some f -> f | None -> zero_skew in
  let arrival = ws.arrival_ws in
  Array.fill arrival 0 (Array.length arrival) 0.0;
  (* Launch points: flop outputs, offset by the launch edge's arrival. *)
  Array.iter
    (fun cid ->
      arrival.(nl.Netlist.cells.(cid).Netlist.fanout) <- delays.(cid) +. skew cid)
    t.flops;
  (* Primary inputs arrive at t = 0 (already initialised). *)
  let pin_wire = t.pin_wire and pin_off = t.pin_off in
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let fanins = c.Netlist.fanins in
      let off = pin_off.(cid) in
      let acc = ref 0.0 in
      for pin = 0 to Array.length fanins - 1 do
        let a = arrival.(fanins.(pin)) +. pin_wire.(off + pin) in
        if a > !acc then acc := a
      done;
      arrival.(c.Netlist.fanout) <- !acc +. delays.(cid))
    t.order;
  let endpoint_delay = ws.endpoint_delay_ws in
  Array.fill endpoint_delay 0 (Array.length endpoint_delay) 0.0;
  Array.fill ws.stage_delay_ws 0 n_stages neg_infinity;
  Array.fill ws.stage_endpoint_ws 0 n_stages (-1);
  ws.worst_ws <- neg_infinity;
  ws.worst_endpoint_ws <- -1;
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      (* A late capture edge relaxes the endpoint by its own skew. *)
      let a = arrival.(d_pin) +. pin_wire.(pin_off.(cid)) +. t.setup -. skew cid in
      endpoint_delay.(cid) <- a;
      if a > ws.worst_ws then begin
        ws.worst_ws <- a;
        ws.worst_endpoint_ws <- cid
      end;
      match t.capture_of.(cid) with
      | Some stage ->
        let si = Stage.index stage in
        if a > ws.stage_delay_ws.(si) then begin
          ws.stage_delay_ws.(si) <- a;
          ws.stage_endpoint_ws.(si) <- cid
        end
      | None -> ())
    t.flops;
  if ws.worst_endpoint_ws = -1 then ws.worst_ws <- 0.0

let ws_worst ws = ws.worst_ws
let ws_worst_endpoint ws = ws.worst_endpoint_ws
let ws_endpoint_delay ws cid = ws.endpoint_delay_ws.(cid)

let ws_stage_delay ws stage =
  let si = Stage.index stage in
  if ws.stage_endpoint_ws.(si) >= 0 then Some ws.stage_delay_ws.(si) else None

let analyze ?skew t ~delays =
  let ws = workspace t in
  analyze_into ?skew t ws ~delays;
  let stage_worst =
    List.filter_map
      (fun s ->
        let si = Stage.index s in
        if ws.stage_endpoint_ws.(si) >= 0 then
          Some (s, ws.stage_delay_ws.(si), ws.stage_endpoint_ws.(si))
        else None)
      Stage.all
  in
  {
    arrival = ws.arrival_ws;
    endpoint_delay = ws.endpoint_delay_ws;
    worst = ws.worst_ws;
    worst_endpoint = ws.worst_endpoint_ws;
    stage_worst;
  }

let required_with t ~delays ~endpoint_required =
  let nl = t.nl in
  let req = Array.make (Netlist.net_count nl) infinity in
  (* Endpoints: data must arrive by the endpoint's budget - setup (minus
     the D-pin wire delay, charged on the net). *)
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      let budget = endpoint_required t.capture_of.(cid) in
      let r = budget -. t.setup -. t.pin_wire.(t.pin_off.(cid)) in
      if r < req.(d_pin) then req.(d_pin) <- r)
    t.flops;
  (* Reverse topological order. *)
  for k = Array.length t.order - 1 downto 0 do
    let cid = t.order.(k) in
    let c = nl.Netlist.cells.(cid) in
    let r_out = req.(c.Netlist.fanout) in
    if Float.is_finite r_out then begin
      let r_in = r_out -. delays.(cid) in
      let off = t.pin_off.(cid) in
      Array.iteri
        (fun pin nid ->
          let r = r_in -. t.pin_wire.(off + pin) in
          if r < req.(nid) then req.(nid) <- r)
        c.Netlist.fanins
    end
  done;
  req

let required t ~delays ~clock =
  required_with t ~delays ~endpoint_required:(fun _ -> clock)

let stage_delay result stage =
  List.find_map
    (fun (s, d, _) -> if Stage.equal s stage then Some d else None)
    result.stage_worst

let stage_endpoint_ids t stage = Array.copy t.stage_endpoints.(Stage.index stage)

let endpoints_of_stage t stage =
  Array.to_list t.stage_endpoints.(Stage.index stage)
