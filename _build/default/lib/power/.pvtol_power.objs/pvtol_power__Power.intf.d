lib/power/power.mli: Format Gatesim Netlist Pvtol_netlist Stage
