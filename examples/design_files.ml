(* Design-file interchange tour: run the front half of the flow on the
   small core and push the design through every file format the library
   speaks — Liberty, structural Verilog, DEF, SDF and SPEF — checking
   each round trip, and replaying the paper's own SDF trick (rewrite
   the delays per the variation model, re-import, re-analyse).

     dune exec examples/design_files.exe *)

module Flow = Pvtol_core.Flow
module Netlist = Pvtol_netlist.Netlist
module Verilog = Pvtol_netlist.Verilog
module Liberty = Pvtol_stdcell.Liberty
module Def = Pvtol_place.Def
module Sdf = Pvtol_timing.Sdf
module Spef = Pvtol_timing.Spef
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position

let () =
  let t = Flow.prepare ~config:Flow.quick_config () in
  let nl = (Flow.netlist t) in

  (* Liberty: the cell library. *)
  let lib_text = Liberty.to_string nl.Netlist.lib in
  let lib2 = Liberty.of_string lib_text in
  Format.printf "Liberty:  %6d bytes, %d cells, round-trip %s@."
    (String.length lib_text)
    (List.length lib2.Pvtol_stdcell.Cell.cells)
    (if List.length lib2.Pvtol_stdcell.Cell.cells
        = List.length nl.Netlist.lib.Pvtol_stdcell.Cell.cells
     then "ok" else "MISMATCH");

  (* Structural Verilog: the netlist itself. *)
  let v_text = Verilog.to_string nl in
  let nl2 = Verilog.of_string nl.Netlist.lib v_text in
  Format.printf "Verilog:  %6d bytes, %d cells, round-trip %s@."
    (String.length v_text) (Netlist.cell_count nl2)
    (if Netlist.cell_count nl2 = Netlist.cell_count nl then "ok" else "MISMATCH");

  (* DEF: the placement. *)
  let def_text = Def.to_string (Flow.placement t) in
  let p2 = Def.of_string nl def_text in
  let dx =
    Array.mapi
      (fun i x -> Float.abs (x -. p2.Pvtol_place.Placement.xs.(i)))
      (Flow.placement t).Pvtol_place.Placement.xs
    |> Array.fold_left Float.max 0.0
  in
  Format.printf "DEF:      %6d bytes, max coordinate error %.4f um@."
    (String.length def_text) dx;

  (* SDF: the delays — including the paper's §4.3 rewriting loop. *)
  let delays = Sta.nominal_delays (Flow.sta t) in
  let sdf_text = Sdf.to_string nl ~delays in
  let systematic =
    Sampler.systematic_lgates (Flow.sampler t) (Flow.placement t) Position.point_a
  in
  let rewritten =
    Sdf.rewrite nl sdf_text ~f:(fun c d ->
        d
        *. Sampler.delay_scale (Flow.sampler t)
             ~lgate_nm:systematic.(c.Netlist.id)
             ~vdd:1.0)
  in
  let slow = Sdf.of_string nl rewritten in
  let r0 = Sta.analyze (Flow.sta t) ~delays in
  let r1 = Sta.analyze (Flow.sta t) ~delays:slow in
  Format.printf
    "SDF:      %6d bytes; variation rewrite at point A: %.3f -> %.3f ns (%+.1f%%)@."
    (String.length sdf_text) r0.Sta.worst r1.Sta.worst
    (100.0 *. (r1.Sta.worst -. r0.Sta.worst) /. r0.Sta.worst);

  (* SPEF: the parasitics, closing the estimate-extract loop. *)
  let parasitics = Spef.extract (Flow.placement t) in
  let spef_text = Spef.to_string nl parasitics in
  let annotated =
    Spef.annotate nl (Spef.of_string nl spef_text)
      ~capture:(Flow.design t).Pvtol_vex.Vex_core.capture_stage
  in
  let ra = Sta.analyze annotated ~delays:(Sta.nominal_delays annotated) in
  Format.printf
    "SPEF:     %6d bytes; annotated STA worst %.3f ns vs placed %.3f ns@."
    (String.length spef_text) ra.Sta.worst r0.Sta.worst
