open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Placement = Pvtol_place.Placement
module Srng = Pvtol_util.Srng
module Metrics = Pvtol_util.Metrics
module Monte_carlo = Pvtol_ssta.Monte_carlo

let m_dies = Metrics.counter "postsilicon_dies_total"
let m_raised = Metrics.counter "postsilicon_islands_raised_total"

type chip = {
  diagonal_frac : float;
  violating : int;
  detected : int;
  raised : int;
  meets_uncompensated : bool;
  meets_compensated : bool;
  meets_chip_wide : bool;
}

type study = {
  chips : chip list;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
}

let analyzed = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

(* ------------------------------------------------------------------ *)
(* Single-die kernel                                                    *)

type kernel = {
  sampler : Sampler.t;
  placement : Placement.t;
  sta : Sta.t;
  clock : float;
  low : float;
  high : float;
  domains : int array;
  n_islands : int;
  base : float array;
  n_cells : int;
  engine : Monte_carlo.engine;
  (* Power per compensation level, computed once (chip leakage varies
     with position but the dominant switching term does not). *)
  power_of_raised : float array;
  power_chip_wide : float;
  power_baseline : float;
}

type scratch = {
  ws : Sta.workspace;
  inc : Sta.inc_workspace;  (* [ws] is its inner workspace *)
  lgates : float array;
  delays : float array;
}

type die = {
  die_violating : int;
  die_detected : int;
  die_raised : int;
  die_meets_uncompensated : bool;
  die_meets_compensated : bool;
  die_meets_chip_wide : bool;
  die_worst_low_ns : float;
}

let kernel ?(engine = Monte_carlo.engine_of_env ()) (t : Flow.t)
    (v : Flow.variant) =
  let nl = Flow.netlist t in
  let lib = nl.Netlist.lib in
  let low = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
  let high = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_high in
  let part = v.Flow.slicing.Slicing.partition in
  let placement = Flow.placement t in
  let sta = Flow.sta t in
  let domains = Island.domains part placement in
  let n_islands = Array.length part.Island.islands in
  let power_of_raised =
    Array.init (n_islands + 1) (fun raised ->
        Power.total_mw
          (Flow.power_at t ~position:Position.point_b
             (Flow.Islands (v.Flow.direction, raised)))
            .Power.total)
  in
  let power_chip_wide =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Chip_wide_high).Power.total
  in
  let power_baseline =
    Power.total_mw
      (Flow.power_at t ~position:Position.point_b Flow.Baseline_low).Power.total
  in
  {
    sampler = Flow.sampler t;
    placement;
    sta;
    clock = Flow.clock t;
    low;
    high;
    domains;
    n_islands;
    base = Sta.nominal_delays sta;
    n_cells = Netlist.cell_count nl;
    engine;
    power_of_raised;
    power_chip_wide;
    power_baseline;
  }

let scratch k =
  let inc = Sta.inc_workspace k.sta in
  {
    ws = Sta.inc_ws inc;
    inc;
    lgates = Array.make k.n_cells 0.0;
    delays = Array.make k.n_cells 0.0;
  }

let n_islands k = k.n_islands
let clock k = k.clock
let power_islands_mw k ~raised = k.power_of_raised.(raised)
let power_chip_wide_mw k = k.power_chip_wide
let power_baseline_mw k = k.power_baseline
let die_power_islands_mw k d = k.power_of_raised.(d.die_raised)

let die_power_chip_wide_mw k d =
  if d.die_meets_uncompensated then k.power_baseline else k.power_chip_wide

let systematic k position =
  Sampler.systematic_lgates k.sampler k.placement position

let simulate_die k sc ~systematic rng =
  (* One random Lgate realisation for this die; every supply
     configuration below re-times the same realisation. *)
  Sampler.sample_lgates k.sampler ~systematic rng sc.lgates;
  let analyze_with vdd =
    Sampler.scale_delays k.sampler ~base:k.base ~lgates:sc.lgates ~vdd
      ~out:sc.delays;
    (* The incremental pass is bit-identical to the full one (default
       bound 0.), so both engines produce the same die verdicts; the
       supply reconfigurations of the settle loop are where the cached
       arrivals pay off (identical re-analyses skip the forward pass
       entirely, large island cones fall back to one full pass). *)
    match k.engine with
    | Monte_carlo.Golden -> Sta.analyze_into k.sta sc.ws ~delays:sc.delays
    | Monte_carlo.Batched ->
      Sta.analyze_incremental_into k.sta sc.inc ~delays:sc.delays
  in
  let violating_stages () =
    List.length
      (List.filter
         (fun s ->
           match Sta.ws_stage_delay sc.ws s with
           | Some d -> d > k.clock +. 1e-12
           | None -> false)
         analyzed)
  in
  (* This die at nominal supply: which stages fail? *)
  analyze_with (fun _ -> k.low);
  let violating = violating_stages () in
  let worst_low =
    List.fold_left
      (fun acc s ->
        match Sta.ws_stage_delay sc.ws s with
        | Some d -> Float.max acc d
        | None -> acc)
      0.0 analyzed
  in
  (* The sensors report the scenario; the controller raises that many
     islands, then — because Razor keeps monitoring in situ — keeps
     raising one more while violations persist (closed-loop
     post-silicon testing). *)
  let detected = violating in
  let meets_with raised =
    if raised = 0 then violating = 0
    else begin
      analyze_with (fun cid ->
          if k.domains.(cid) <= raised then k.high else k.low);
      violating_stages () = 0
    end
  in
  let rec settle r =
    if r >= k.n_islands then (k.n_islands, meets_with k.n_islands)
    else if meets_with r then (r, true)
    else settle (r + 1)
  in
  let raised, meets_compensated = settle (min detected k.n_islands) in
  analyze_with (fun _ -> k.high);
  let meets_chip_wide = violating_stages () = 0 in
  Metrics.incr m_dies;
  Metrics.add m_raised raised;
  {
    die_violating = violating;
    die_detected = detected;
    die_raised = raised;
    die_meets_uncompensated = violating = 0;
    die_meets_compensated = meets_compensated;
    die_meets_chip_wide = meets_chip_wide;
    die_worst_low_ns = worst_low;
  }

(* ------------------------------------------------------------------ *)
(* Population study along the chip diagonal (the original exhibit)      *)

let run ?(n_chips = 40) ?(seed = 7) (t : Flow.t) (v : Flow.variant) =
  let k = kernel t v in
  let sc = scratch k in
  let rng = Srng.create seed in
  let chips = ref [] in
  for _ = 1 to n_chips do
    let frac = Srng.uniform rng in
    let position = Position.at_fraction frac in
    let systematic = systematic k position in
    let d = simulate_die k sc ~systematic rng in
    chips :=
      {
        diagonal_frac = frac;
        violating = d.die_violating;
        detected = d.die_detected;
        raised = d.die_raised;
        meets_uncompensated = d.die_meets_uncompensated;
        meets_compensated = d.die_meets_compensated;
        meets_chip_wide = d.die_meets_chip_wide;
      }
      :: !chips
  done;
  let chips = List.rev !chips in
  let count f = List.length (List.filter f chips) in
  let frac_of n = float_of_int n /. float_of_int n_chips in
  let mean_raised =
    float_of_int (List.fold_left (fun acc c -> acc + c.raised) 0 chips)
    /. float_of_int n_chips
  in
  (* Population power: islands scheme uses each chip's raised level;
     chip-wide adaptation raises everything on any failing die. *)
  let mean_power_islands =
    List.fold_left (fun acc c -> acc +. k.power_of_raised.(c.raised)) 0.0 chips
    /. float_of_int n_chips
  in
  let mean_power_chip_wide =
    List.fold_left
      (fun acc c ->
        acc
        +. if c.meets_uncompensated then k.power_baseline else k.power_chip_wide)
      0.0 chips
    /. float_of_int n_chips
  in
  {
    chips;
    yield_uncompensated = frac_of (count (fun c -> c.meets_uncompensated));
    yield_compensated = frac_of (count (fun c -> c.meets_compensated));
    yield_chip_wide = frac_of (count (fun c -> c.meets_chip_wide));
    mean_raised;
    mean_power_islands_mw = mean_power_islands;
    mean_power_chip_wide_mw = mean_power_chip_wide;
  }

let pp fmt s =
  Format.fprintf fmt
    "population of %d dies:@.\
    \  timing yield:  uncompensated %.0f%%   islands %.0f%%   chip-wide %.0f%%@.\
    \  mean islands raised per die: %.2f of 3@.\
    \  mean power: islands %.2f mW vs chip-wide adaptation %.2f mW (%.1f%% saved)@."
    (List.length s.chips)
    (100.0 *. s.yield_uncompensated)
    (100.0 *. s.yield_compensated)
    (100.0 *. s.yield_chip_wide)
    s.mean_raised s.mean_power_islands_mw s.mean_power_chip_wide_mw
    (100.0 *. (1.0 -. (s.mean_power_islands_mw /. s.mean_power_chip_wide_mw)))
