open Pvtol_netlist

type stage_slack = {
  stage : Stage.t;
  three_sigma : float;
  slack : float;
  violates : bool;
}

type t = {
  position : Pvtol_variation.Position.t;
  clock : float;
  stage_slacks : stage_slack list;
  violating : Stage.t list;
  index : int;
}

let analyzed_stages = [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let classify ~clock (mc : Monte_carlo.result) =
  let stage_slacks =
    List.filter_map
      (fun s ->
        match Monte_carlo.stage_stats mc s with
        | None -> None
        | Some ss ->
          let three_sigma = Monte_carlo.three_sigma_delay ss in
          let slack = clock -. three_sigma in
          Some { stage = s; three_sigma; slack; violates = slack < 0.0 })
      analyzed_stages
  in
  let violating =
    List.filter (fun s -> s.violates) stage_slacks
    |> List.sort (fun a b -> compare a.slack b.slack)
    |> List.map (fun s -> s.stage)
  in
  {
    position = mc.Monte_carlo.position;
    clock;
    stage_slacks;
    violating;
    index = List.length violating;
  }

let ladder ~run ~clock ~positions =
  List.map (fun pos -> classify ~clock (run pos)) positions

let worst_violation t =
  List.fold_left
    (fun acc s -> if s.violates then Float.max acc s.three_sigma else acc)
    0.0 t.stage_slacks

let pp fmt t =
  Format.fprintf fmt "position %s: scenario %d (%s)@."
    t.position.Pvtol_variation.Position.label t.index
    (match t.violating with
    | [] -> "no violations"
    | vs -> String.concat ", " (List.map Stage.name vs));
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-12s 3sigma=%.3f ns  slack=%+.3f ns%s@."
        (Stage.name s.stage) s.three_sigma s.slack
        (if s.violates then "  VIOLATES" else ""))
    t.stage_slacks
