(** Pseudo-random combinational logic clouds.

    The decode stage of a LISATek-generated VLIW is a large mass of
    irregular control logic (instruction-field decoders, operand
    steering, hazard checks).  Rather than transcribing an ISA manual
    at gate level, we model such blocks as deterministic seeded random
    DAGs with a controlled gate count, depth profile and output
    arity — preserving what the SSTA cares about: logic depth
    distribution and path counts. *)

open Gen

type config = {
  n_gates : int;
  depth : int;       (** target levelized depth *)
  n_outputs : int;
}

val build : t -> config -> bus -> bus
(** [build t cfg ins] emits a cloud fed by [ins] and returns
    [cfg.n_outputs] output nets.  Structure is a function of the
    context's RNG state only, hence reproducible. *)
