(* Benchmark / reproduction harness.

   Usage:
     bench/main.exe                 -- every table & figure, then kernels
     bench/main.exe <exhibit>        -- one of: fig2 table1 fig3 scenarios
                                        razor fig4 table2 fig5 fig6 energy
                                        validate ablation clocktree crosscheck
                                        alternatives routing powergrid
                                        workloads postsilicon wafer
     bench/main.exe kernels         -- Bechamel micro-benchmarks + the
                                        serial-vs-parallel Monte-Carlo
                                        throughput report
     bench/main.exe kernels --json  -- also write BENCH_ssta.json (perf
                                        trajectory for future changes)
     bench/main.exe ... --out FILE  -- write the JSON somewhere else
     bench/main.exe kernels-mc      -- only the golden-vs-batched MC
                                        kernels and their speedup ratio
     bench/main.exe --quick ...     -- scaled-down design (fast smoke run)

   One Bechamel Test.make per table/figure kernel: the measured loop is
   the computational core that regenerates that exhibit (field eval for
   Fig. 2, an STA pass for Table 1's timing, a Monte-Carlo sample for
   Fig. 3 / §4.4, a corner compensation check for Fig. 4, crossing
   analysis for Table 2, and a power pass for Figs. 5-6).  Kernel lines
   are printed sorted by name so runs diff cleanly.  The Monte-Carlo
   engine is additionally timed end-to-end with a 1-domain pool and with
   the shared pool (PVTOL_DOMAINS / Domain.recommended_domain_count) to
   report the parallel speedup; both runs produce bit-identical
   samples.

   Every timing is statistical: kernels report the OLS point estimate
   plus a CI half-width over the raw per-sample times, and the
   throughput sections repeat their runs and report mean +- CI
   (Stream_stats.Welford).  The JSON file is schema-versioned
   ("schema": 2, per-kernel {ns, ci, n}) so `pvtol bench compare` can
   gate regressions against the committed baseline using the CIs
   rather than bare point estimates.  A kernel without an estimate is
   a warning and a nonzero exit, not a silent "(no estimate)". *)

module Experiments = Pvtol_core.Experiments
module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Level_shifter = Pvtol_core.Level_shifter
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Field = Pvtol_variation.Field
module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Gatesim = Pvtol_power.Gatesim
module Srng = Pvtol_util.Srng
module Pool = Pvtol_util.Pool
module Metrics = Pvtol_util.Metrics
module Json = Pvtol_util.Json
module Welford = Pvtol_util.Stream_stats.Welford
module BC = Pvtol_util.Bench_compare
module MC = Pvtol_ssta.Monte_carlo
module Smart_sampling = Pvtol_ssta.Smart_sampling
module Wafer = Pvtol_core.Wafer
module Compensation = Pvtol_core.Compensation

let ctx = ref None

let context ~quick () =
  match !ctx with
  | Some c -> c
  | None ->
    let config = if quick then Flow.quick_config else Flow.default_config in
    Printf.printf "[preparing design flow%s...]\n%!" (if quick then " (quick)" else "");
    let c = Experiments.make_context ~config () in
    ctx := Some c;
    c

(* ------------------------------------------------------------------ *)
(* Repeated statistical timings                                         *)

(* Every throughput section repeats its timed run and reports the mean,
   the normal-theory CI half-width and the repeat count, so comparisons
   between bench files can tell a real shift from run-to-run noise. *)
type tput = { t_mean : float; t_ci : float; t_reps : int }

let tput_of w =
  let n = Welford.count w in
  {
    t_mean = Welford.mean w;
    t_ci = (if n >= 2 then Welford.ci_halfwidth w else 0.0);
    t_reps = n;
  }

(* One warm-up run (cold stage computes, page faults) then [reps] timed
   repeats folded into a Welford accumulator. *)
let timed_reps ~reps run =
  ignore (run ());
  let w = Welford.create () in
  for _ = 1 to reps do
    Welford.add w (run ())
  done;
  tput_of w

let tput_json ~rate_key t =
  Json.Obj
    [
      (rate_key, Json.Float t.t_mean);
      ("ci", Json.Float t.t_ci);
      ("n", Json.Int t.t_reps);
    ]

let pp_tput t = Printf.sprintf "%10.1f ± %.1f (n=%d)" t.t_mean t.t_ci t.t_reps

(* ------------------------------------------------------------------ *)
(* Monte-Carlo throughput: serial vs parallel                           *)

type mc_report = {
  mc_samples : int;
  domains : int;
  serial : tput;    (* samples / second, 1-domain pool *)
  parallel : tput;  (* samples / second, shared pool *)
}

let mc_speedup r = r.parallel.t_mean /. r.serial.t_mean

let mc_throughput ~quick () =
  let t = context ~quick () in
  let samples = (Flow.config t).Flow.mc_samples in
  let seed = (Flow.config t).Flow.mc_seed in
  let time_run ~pool () =
    let t0 = Unix.gettimeofday () in
    let r =
      MC.run
        ~config:{ MC.samples; seed }
        ~pool ~sampler:(Flow.sampler t) ~sta:(Flow.sta t)
        ~placement:(Flow.placement t) ~position:Position.point_b ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (float_of_int samples /. dt, r)
  in
  let serial_pool = Pool.create ~domains:1 () in
  let _, r1 = time_run ~pool:serial_pool () in
  let serial = timed_reps ~reps:4 (fun () -> fst (time_run ~pool:serial_pool ())) in
  Pool.shutdown serial_pool;
  let pool = Pool.shared () in
  let _, r2 = time_run ~pool () in
  if r1.MC.worst_samples <> r2.MC.worst_samples then
    failwith "mc-parallel: samples differ from the serial engine";
  let parallel = timed_reps ~reps:4 (fun () -> fst (time_run ~pool ())) in
  { mc_samples = samples; domains = Pool.domains pool; serial; parallel }

let print_mc_report r =
  Printf.printf
    "\nMonte-Carlo SSTA throughput (%d samples, bit-identical results):\n\
    \  mc-serial    (1 domain)    %s samples/s\n\
    \  mc-parallel  (%d domains)  %s samples/s\n\
    \  speedup: %.2fx\n%!"
    r.mc_samples (pp_tput r.serial) r.domains (pp_tput r.parallel)
    (mc_speedup r)

(* ------------------------------------------------------------------ *)
(* Wafer-sweep throughput: serial vs parallel, dies / second            *)

type wafer_report = {
  wafer_dies : int;
  wafer_grid : int * int;
  wafer_domains : int;
  wafer_serial : tput;    (* dies / second, 1-domain pool *)
  wafer_parallel : tput;  (* dies / second, shared pool *)
}

let wafer_speedup r = r.wafer_parallel.t_mean /. r.wafer_serial.t_mean

let wafer_throughput ~quick () =
  let t = context ~quick () in
  let v = Flow.variant t Island.Vertical in
  let cfg =
    if quick then { Wafer.default_config with Wafer.nx = 6; ny = 6; dies_per_cell = 8 }
    else Wafer.default_config
  in
  let time_run ~pool () =
    let t0 = Unix.gettimeofday () in
    let s = Wafer.run ~pool t v cfg in
    let dt = Unix.gettimeofday () -. t0 in
    (float_of_int s.Wafer.dies /. dt, s)
  in
  let serial_pool = Pool.create ~domains:1 () in
  let _, s1 = time_run ~pool:serial_pool () in
  let wafer_serial =
    timed_reps ~reps:2 (fun () -> fst (time_run ~pool:serial_pool ()))
  in
  Pool.shutdown serial_pool;
  let pool = Pool.shared () in
  let _, s2 = time_run ~pool () in
  if s1 <> s2 then failwith "wafer-parallel: sweep differs from the serial engine";
  let wafer_parallel = timed_reps ~reps:2 (fun () -> fst (time_run ~pool ())) in
  {
    wafer_dies = s1.Wafer.dies;
    wafer_grid = (cfg.Wafer.nx, cfg.Wafer.ny);
    wafer_domains = Pool.domains pool;
    wafer_serial;
    wafer_parallel;
  }

let print_wafer_report r =
  let nx, ny = r.wafer_grid in
  Printf.printf
    "\nWafer sweep throughput (%dx%d grid, %d dies, bit-identical results):\n\
    \  wafer-serial    (1 domain)    %s dies/s\n\
    \  wafer-parallel  (%d domains)  %s dies/s\n\
    \  speedup: %.2fx\n%!"
    nx ny r.wafer_dies (pp_tput r.wafer_serial) r.wafer_domains
    (pp_tput r.wafer_parallel) (wafer_speedup r)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: MC throughput with metrics off vs on             *)

type telemetry_report = {
  tel_samples : int;
  tel_disabled : tput;  (* samples / second, metrics disabled *)
  tel_enabled : tput;   (* samples / second, metrics enabled *)
}

let telemetry_overhead_pct r =
  100.0 *. (1.0 -. (r.tel_enabled.t_mean /. r.tel_disabled.t_mean))

(* Half-width of the overhead percentage by first-order error
   propagation on the ratio of the two means. *)
let telemetry_noise_pct r =
  let ratio = r.tel_enabled.t_mean /. r.tel_disabled.t_mean in
  let rel a = a.t_ci /. a.t_mean in
  100.0 *. ratio
  *. sqrt (((rel r.tel_enabled) ** 2.0) +. ((rel r.tel_disabled) ** 2.0))

let telemetry_within_noise r =
  Float.abs (telemetry_overhead_pct r) <= telemetry_noise_pct r

let telemetry_throughput ~quick () =
  let t = context ~quick () in
  let samples = (Flow.config t).Flow.mc_samples in
  let seed = (Flow.config t).Flow.mc_seed in
  let pool = Pool.shared () in
  let time_run () =
    let t0 = Unix.gettimeofday () in
    let r =
      MC.run
        ~config:{ MC.samples; seed }
        ~pool ~sampler:(Flow.sampler t) ~sta:(Flow.sta t)
        ~placement:(Flow.placement t) ~position:Position.point_b ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (* Both modes must do the same amount of work for the comparison to
       mean anything. *)
    if Array.length r.MC.worst_samples <> samples then
      failwith "telemetry: sample count drifted between modes";
    float_of_int samples /. dt
  in
  let was = Metrics.enabled () in
  (* Warm BOTH code paths before any timed run (a cold first mode would
     be charged its page faults and lazy inits — historically this made
     "enabled" look faster than "disabled").  Then interleave the
     rounds so slow drift (turbo, thermal) hits both modes equally, and
     accumulate every round into a Welford per mode — the CI half-width
     is what lets the report say "within noise" instead of printing a
     meaningless negative overhead. *)
  Metrics.set_enabled false;
  ignore (time_run ());
  Metrics.set_enabled true;
  ignore (time_run ());
  let w_disabled = Welford.create () and w_enabled = Welford.create () in
  let measure enabled w =
    Metrics.set_enabled enabled;
    Welford.add w (time_run ())
  in
  for round = 1 to 6 do
    (* Alternate which mode goes first — an even round count, so each
       mode leads exactly half the rounds and within-round drift
       cancels. *)
    if round land 1 = 1 then (
      measure false w_disabled;
      measure true w_enabled)
    else (
      measure true w_enabled;
      measure false w_disabled)
  done;
  Metrics.set_enabled was;
  {
    tel_samples = samples;
    tel_disabled = tput_of w_disabled;
    tel_enabled = tput_of w_enabled;
  }

let print_telemetry_report r =
  Printf.printf
    "\nTelemetry overhead (Monte-Carlo, %d samples):\n\
    \  metrics disabled  %s samples/s\n\
    \  metrics enabled   %s samples/s\n\
    \  overhead: %s\n%!"
    r.tel_samples (pp_tput r.tel_disabled) (pp_tput r.tel_enabled)
    (if telemetry_within_noise r then
       Printf.sprintf "within noise (%.2f%% ± %.2f%%)"
         (telemetry_overhead_pct r) (telemetry_noise_pct r)
     else
       Printf.sprintf "%.2f%% (noise ±%.2f%%)" (telemetry_overhead_pct r)
         (telemetry_noise_pct r))

(* ------------------------------------------------------------------ *)
(* Sampling calibration: samples-to-CI-target, mc vs is vs lhs          *)

(* Statistical (not timing) calibration of the variance-reduced
   estimators on the paper's rare event — P(>= 2 islands violating) at
   die position B.  Each method runs a pinned budget at a pinned seed
   (the same budgets the PVTOL_SLOW_TESTS oracle uses, so the numbers
   agree), and the per-die variance recovered from the report's CI
   converts into "dies needed for a +-0.1% half-width":
   [n_target = n * (hw / target)^2].  The section is deterministic run
   to run — it pins the variance-reduction factor, not a timing. *)

type sampling_line = {
  sl_method : string;
  sl_dies : int;
  sl_rare : float;
  sl_hw : float;
  sl_to_target : float;  (* dies needed for hw = sc_target *)
}

type sampling_calibration = {
  sc_target : float;
  sc_lines : sampling_line list;
  sc_vrf : float;  (* per-die variance ratio, mc / is *)
}

let sampling_calibration ~quick () =
  let t = context ~quick () in
  let pool = Pool.shared () in
  let target = 0.001 in
  let run name method_ ~rounds ~seed =
    let r =
      Wafer.estimate_at ~pool t ~position:Position.point_b
        {
          Wafer.default_sampling_config with
          Wafer.s_method = method_;
          s_strata = 4;
          s_dies_per_round = 25;
          s_max_rounds = rounds;
          s_ci_target = 1e-12;
          s_ci_metric = Wafer.Ci_rare;
          s_seed = seed;
        }
    in
    let hw = r.Wafer.sr_rare.Wafer.hw in
    {
      sl_method = name;
      sl_dies = r.Wafer.sr_dies;
      sl_rare = r.Wafer.sr_rare.Wafer.mid;
      sl_hw = hw;
      sl_to_target = float_of_int r.Wafer.sr_dies *. (hw /. target) ** 2.0;
    }
  in
  let mc = run "mc" Smart_sampling.Mc ~rounds:50 ~seed:202 in
  let is = run "is" Smart_sampling.Is ~rounds:15 ~seed:303 in
  let lhs = run "lhs" Smart_sampling.Lhs ~rounds:50 ~seed:404 in
  {
    sc_target = target;
    sc_lines = [ mc; is; lhs ];
    sc_vrf = mc.sl_to_target /. is.sl_to_target;
  }

let print_sampling_calibration s =
  Printf.printf
    "\nSampling calibration at position B (rare scenario, +-%.1f%% CI \
     target):\n%!"
    (100.0 *. s.sc_target);
  List.iter
    (fun l ->
      Printf.printf
        "  %-4s %6d dies   P=%.5f +- %.5f   -> %9.0f dies to target\n%!"
        l.sl_method l.sl_dies l.sl_rare l.sl_hw l.sl_to_target)
    s.sc_lines;
  Printf.printf "  variance reduction (is vs mc): %.2fx\n%!" s.sc_vrf

(* ------------------------------------------------------------------ *)
(* Bechamel kernels                                                     *)

(* MC-related kernels carry [per_run > 1]: one staged run covers a full
   lane block, and the reported estimate is divided by [per_run] so
   every fig3/table1 line stays ns per SAMPLE and the engines compare
   directly. *)
let mc_kernel_names =
  [
    "fig3/mc-sample"; "fig3/mc-sample-batched"; "fig3/mc-sample-is";
    "table1/sta-pass-into"; "table1/sta-batch-into";
  ]

let kernel_estimates ~quick ?(only = fun _ -> true) () =
  let open Bechamel in
  let open Toolkit in
  let t = context ~quick () in
  let sta = Flow.sta t in
  let base = Sta.nominal_delays sta in
  let sampler = Flow.sampler t in
  let placement = Flow.placement t in
  let systematic = Sampler.systematic_lgates sampler placement Position.point_a in
  let n = Array.length base in
  let lgates = Array.make n 0.0 in
  let delays = Array.make n 0.0 in
  let ws = Sta.workspace sta in
  let rng = Srng.create 99 in
  let low =
    (Flow.netlist t).Pvtol_netlist.Netlist.lib.Pvtol_stdcell.Cell.process
      .Pvtol_stdcell.Process.vdd_low
  in
  let field = Field.default in
  (* Batched-engine scratch: one block of [lanes] samples per run. *)
  let lanes = 32 in
  let bw = Sta.batch_workspace ~lanes sta in
  let stride = Sta.batch_stride bw in
  let gauss = Array.make (lanes * n) 0.0 in
  let brng = Srng.create 99 in
  let batch = Sampler.batch sampler ~base ~systematic ~vdd:(fun _ -> low) in
  (* Importance-sampled die at position B: the full per-die overhead of
     the smart-sampling layer — component pick, RNG replay for the
     likelihood ratio, tilted systematic field — on top of the plain
     fig3/mc-sample path, so the two lines diff to the IS tax. *)
  let systematic_b = Sampler.systematic_lgates sampler placement Position.point_b in
  let is_model =
    Smart_sampling.make
      (Smart_sampling.tilts ~sampler ~sta ~base ~systematic:systematic_b
         ~vdd:low ~clock:(Flow.clock t) ~stages:Compensation.analyzed ~rare:2 ())
  in
  let is_rng = Srng.create 99 in
  let is_z = Array.make n 0.0 in
  let is_sys = Array.make n 0.0 in
  (* Compensation-strategy kernels: one failing die is drawn up-front
     at the worst corner (retrying a few draws so the knobs have
     violations to chase), then each kernel re-applies its strategy to
     that same die.  The applies re-derive everything from the scratch's
     gate lengths, so repeated runs are deterministic; the detect kernel
     gets its own scratch and RNG so its iterations cannot disturb the
     pinned die. *)
  let comp_ctx = Compensation.context t in
  let comp_v = Flow.variant t Island.Vertical in
  let comp_sc = Compensation.scratch comp_ctx in
  let comp_sys = Compensation.systematic comp_ctx Position.point_a in
  let comp_d =
    let comp_rng = Srng.create 7 in
    let rec draw n d =
      if d.Compensation.violating > 0 || n >= 50 then d
      else
        draw (n + 1)
          (Compensation.detect comp_ctx comp_sc ~systematic:comp_sys comp_rng)
    in
    draw 0 (Compensation.detect comp_ctx comp_sc ~systematic:comp_sys comp_rng)
  in
  let comp_apply choice =
    (Compensation.build t comp_ctx comp_v choice).Compensation.fresh_apply ()
  in
  let apply_vi = comp_apply Compensation.Vi in
  let apply_cw = comp_apply Compensation.Chipwide in
  let apply_skew = comp_apply Compensation.Skew in
  let apply_buf = comp_apply Compensation.Buffers in
  let det_sc = Compensation.scratch comp_ctx in
  let det_rng = Srng.create 11 in
  let tests =
    [
      ( "fig2/field-eval-4096", 1,
        fun () ->
          let acc = ref 0.0 in
          for i = 0 to 63 do
            for j = 0 to 63 do
              acc :=
                !acc
                +. Field.systematic_nm field
                     ~x_mm:(float_of_int i /. 4.0)
                     ~y_mm:(float_of_int j /. 4.0)
            done
          done;
          ignore !acc );
      ( "table1/sta-pass", 1,
        fun () -> ignore (Sta.analyze sta ~delays:base) );
      ( "table1/sta-pass-into", 1,
        fun () -> Sta.analyze_into sta ws ~delays:base );
      ( "table1/sta-batch-into", lanes,
        fun () -> Sta.analyze_batch_into sta bw ~lanes );
      ( "fig3/mc-sample", 1,
        fun () ->
          Sampler.sample_lgates sampler ~systematic rng lgates;
          Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> low)
            ~out:delays;
          Sta.analyze_into sta ws ~delays );
      ( "fig3/mc-sample-batched", lanes,
        fun () ->
          Srng.fill_gaussians brng gauss ~pos:0 ~len:(lanes * n);
          Sampler.scale_delays_batch batch ~gauss ~samples:lanes ~stride
            ~out:(Sta.batch_delays bw);
          Sta.analyze_batch_into sta bw ~lanes );
      ( "fig3/mc-sample-is", 1,
        fun () ->
          let comp = Smart_sampling.pick is_model is_rng in
          let probe = Srng.copy is_rng in
          Srng.fill_gaussians probe is_z ~pos:0 ~len:n;
          let w = Smart_sampling.weight is_model ~comp ~z:is_z in
          let sys =
            match Smart_sampling.shift is_model ~comp with
            | Either.Right () -> systematic_b
            | Either.Left tl ->
              Sampler.shifted_systematic sampler ~systematic:systematic_b
                ~cells:tl.Smart_sampling.cells ~dir:tl.Smart_sampling.dir
                ~theta:tl.Smart_sampling.theta ~out:is_sys;
              is_sys
          in
          Sampler.sample_lgates sampler ~systematic:sys is_rng lgates;
          Sampler.scale_delays sampler ~base ~lgates ~vdd:(fun _ -> low)
            ~out:delays;
          Sta.analyze_into sta ws ~delays;
          ignore w );
      ( "fig4/corner-check", 1,
        fun () ->
          for i = 0 to n - 1 do
            delays.(i) <-
              base.(i)
              *. Slicing.corner_scale ~sampler ~systematic ~corner_kappa:0.35
                   ~vdd:(fun _ -> low)
                   i
          done;
          ignore (Sta.analyze sta ~delays) );
      ( "table2/crossing-analysis", 1,
        fun () ->
          ignore
            (Level_shifter.count_crossings
               (Flow.variant t Island.Vertical).Flow.slicing.Slicing.partition
               placement (Flow.netlist t)) );
      ( "fig5-6/power-pass", 1,
        fun () ->
          ignore
            (Power.analyze
               ~vdd:(fun _ -> low)
               ~activity:(Flow.activity t)
               ~wire_length:(fun nid ->
                 Pvtol_place.Placement.wire_length placement nid)
               ~clock_ns:(Flow.clock t) (Flow.netlist t)) );
      ( "compare/detect", 1,
        fun () ->
          ignore
            (Compensation.detect comp_ctx det_sc ~systematic:comp_sys det_rng) );
      ( "compare/apply-vi", 1, fun () -> ignore (apply_vi comp_sc comp_d) );
      ( "compare/apply-chipwide", 1,
        fun () -> ignore (apply_cw comp_sc comp_d) );
      ( "compare/apply-skew", 1, fun () -> ignore (apply_skew comp_sc comp_d) );
      ( "compare/apply-buffers", 1,
        fun () -> ignore (apply_buf comp_sc comp_d) );
      ( "gatesim/cycle", 1,
        fun () ->
          ignore
            (Gatesim.run ~cycles:1 (Flow.netlist t)
               (Gatesim.random_stimulus ~seed:5)) );
    ]
  in
  let tests = List.filter (fun (name, _, _) -> only name) tests in
  let per_run = List.map (fun (name, d, _) -> (name, d)) tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let instances = [ Instance.monotonic_clock ] in
  let clock_label = Measure.label Instance.monotonic_clock in
  let rows =
    List.concat_map
      (fun (name, _, fn) ->
        let raw = Benchmark.all cfg instances (Test.make ~name (Staged.stage fn)) in
        let results =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        in
        Hashtbl.fold
          (fun name result acc ->
            let divisor =
              float_of_int (Option.value ~default:1 (List.assoc_opt name per_run))
            in
            (* The OLS slope is the point estimate; the spread of the
               raw per-sample ns/run values is the noise scale, so the
               per-kernel CI half-width is what `pvtol bench compare`
               gates regressions on. *)
            let w = Welford.create () in
            (match Hashtbl.find_opt raw name with
            | Some b ->
              Array.iter
                (fun m ->
                  let runs = Measurement_raw.run m in
                  if runs > 0.0 then
                    Welford.add w
                      (Measurement_raw.get ~label:clock_label m /. runs))
                b.Benchmark.lr
            | None -> ());
            let n = Welford.count w in
            let ci =
              let hw = if n >= 2 then Welford.ci_halfwidth w /. divisor else 0.0 in
              if Float.is_finite hw then hw else 0.0
            in
            let point =
              match Bechamel.Analyze.OLS.estimates result with
              | Some (est :: _) -> Some (est /. divisor)
              | _ when n >= 1 -> Some (Welford.mean w /. divisor)
              | _ -> None
            in
            (* The shared JSON emitter rejects non-finite numbers; an
               estimate that is NaN/inf is no estimate at all. *)
            let point =
              Option.bind point (fun e ->
                  if Float.is_finite e then Some e else None)
            in
            (name, Option.map (fun ns -> { BC.ns; ci; n }) point) :: acc)
          results [])
      tests
  in
  (* Hashtbl.fold order is unspecified: sort by kernel name so the
     report is stable run to run. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* Golden-vs-batched engine ratio from the per-sample kernel lines;
   [None] until both kernels have estimates. *)
let mc_engine_speedup rows =
  match
    (List.assoc_opt "fig3/mc-sample" rows,
     List.assoc_opt "fig3/mc-sample-batched" rows)
  with
  | Some (Some golden), Some (Some batched) when batched.BC.ns > 0.0 ->
    Some (golden.BC.ns /. batched.BC.ns)
  | _ -> None

(* Schema 2: every kernel line is {ns, ci, n} (or null), every
   throughput section carries its CI, so `pvtol bench compare` can gate
   regressions statistically instead of on bare point estimates. *)
let bench_json rows mc wf tel smp =
  let kernels =
    List.map
      (fun (name, est) ->
        ( name,
          match est with
          | None -> Json.Null
          | Some e ->
            Json.Obj
              [
                ("ns", Json.Float e.BC.ns);
                ("ci", Json.Float e.BC.ci);
                ("n", Json.Int e.BC.n);
              ] ))
      rows
  in
  let nx, ny = wf.wafer_grid in
  Json.Obj
    [
      ("schema", Json.Int 2);
      ("kernels", Json.Obj kernels);
      ( "monte_carlo",
        Json.Obj
          [
            ("samples", Json.Int mc.mc_samples);
            ("domains", Json.Int mc.domains);
            ("serial", tput_json ~rate_key:"samples_per_sec" mc.serial);
            ("parallel", tput_json ~rate_key:"samples_per_sec" mc.parallel);
            ("speedup", Json.Float (mc_speedup mc));
          ] );
      ( "wafer",
        Json.Obj
          [
            ("grid", Json.Str (Printf.sprintf "%dx%d" nx ny));
            ("dies", Json.Int wf.wafer_dies);
            ("domains", Json.Int wf.wafer_domains);
            ("serial", tput_json ~rate_key:"dies_per_sec" wf.wafer_serial);
            ("parallel", tput_json ~rate_key:"dies_per_sec" wf.wafer_parallel);
            ("speedup", Json.Float (wafer_speedup wf));
          ] );
      ( "telemetry",
        Json.Obj
          [
            ("samples", Json.Int tel.tel_samples);
            ("disabled", tput_json ~rate_key:"samples_per_sec" tel.tel_disabled);
            ("enabled", tput_json ~rate_key:"samples_per_sec" tel.tel_enabled);
            ("overhead_pct", Json.Float (telemetry_overhead_pct tel));
            ("noise_pct", Json.Float (telemetry_noise_pct tel));
            ("within_noise", Json.Bool (telemetry_within_noise tel));
          ] );
      ( "sampling",
        Json.Obj
          ([
             ("position", Json.Str "B");
             ("rare_scenario", Json.Int 2);
             ("ci_target", Json.Float smp.sc_target);
           ]
          @ List.map
              (fun l ->
                ( l.sl_method,
                  Json.Obj
                    [
                      ("dies", Json.Int l.sl_dies);
                      ("rare", Json.Float l.sl_rare);
                      ("ci_halfwidth", Json.Float l.sl_hw);
                      ("dies_to_target", Json.Float l.sl_to_target);
                    ] ))
              smp.sc_lines
          @ [ ("vrf_is_over_mc", Json.Float smp.sc_vrf) ]) );
      ( "mc_engine_speedup",
        match mc_engine_speedup rows with
        | Some s -> Json.Float s
        | None -> Json.Null );
    ]

let write_json ~file rows mc wf tel smp =
  Json.write_file file (bench_json rows mc wf tel smp);
  Printf.printf "[wrote %s]\n%!" file

let print_kernel_rows rows =
  Printf.printf
    "\nKernel micro-benchmarks (Bechamel, ns per sample, mean ± 95%%-CI):\n%!";
  List.iter
    (fun (name, est) ->
      match est with
      | Some e ->
        Printf.printf "  %-28s %12.0f ns/run  ± %6.0f  (n=%d)\n%!" name
          e.BC.ns e.BC.ci e.BC.n
      | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
    rows

(* A kernel without an estimate is a hole in the perf trajectory the
   observatory tracks: warn on stderr and make the run exit nonzero
   (after the JSON report has been written, so partial data is kept). *)
let warn_missing rows =
  let missing =
    List.filter_map (fun (n, e) -> if e = None then Some n else None) rows
  in
  List.iter
    (fun n ->
      Printf.eprintf "bench: warning: kernel %s produced no estimate\n%!" n)
    missing;
  missing <> []

let print_engine_speedup rows =
  match mc_engine_speedup rows with
  | Some s ->
    Printf.printf
      "\nMC engine speedup (golden / batched, per sample): %.2fx\n%!" s
  | None -> ()

let kernels ~quick ~json ~out () =
  let rows = kernel_estimates ~quick () in
  print_kernel_rows rows;
  print_engine_speedup rows;
  let mc = mc_throughput ~quick () in
  print_mc_report mc;
  let wf = wafer_throughput ~quick () in
  print_wafer_report wf;
  let tel = telemetry_throughput ~quick () in
  print_telemetry_report tel;
  let smp = sampling_calibration ~quick () in
  print_sampling_calibration smp;
  if json then write_json ~file:out rows mc wf tel smp;
  if warn_missing rows then 1 else 0

(* Just the golden-vs-batched comparison: the four per-sample MC
   kernels and their ratio ([make bench-mc]). *)
let kernels_mc ~quick () =
  let rows =
    kernel_estimates ~quick ~only:(fun n -> List.mem n mc_kernel_names) ()
  in
  print_kernel_rows rows;
  print_engine_speedup rows;
  if warn_missing rows then 1 else 0

(* ------------------------------------------------------------------ *)

let exhibits =
  [
    ("fig2", fun _c -> Experiments.fig2_lgate_map ());
    ("table1", Experiments.table1_breakdown);
    ("fig3", Experiments.fig3_distributions);
    ("scenarios", Experiments.scenarios_summary);
    ("razor", Experiments.razor_sites);
    ("fig4", Experiments.fig4_islands);
    ("table2", Experiments.table2_level_shifters);
    ("fig5", Experiments.fig5_total_power);
    ("fig6", Experiments.fig6_leakage);
    ("energy", Experiments.energy_note);
    ("validate", Experiments.compensation_check);
    ("ablation", Experiments.grouping_ablation);
    ("alternatives", Experiments.alternatives_comparison);
    ("crosscheck", Experiments.ssta_crosscheck);
    ("clocktree", Experiments.clock_tree_note);
    ("routing", Experiments.routing_note);
    ("powergrid", Experiments.power_integrity);
    ("workloads", Experiments.workload_sensitivity);
    ("postsilicon", Experiments.postsilicon_study);
    ("wafer", Experiments.wafer_study);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let rec extract_out acc = function
    | "--out" :: file :: rest -> (file, List.rev_append acc rest)
    | x :: rest -> extract_out (x :: acc) rest
    | [] -> ("BENCH_ssta.json", List.rev acc)
  in
  let out, args = extract_out [] args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--json") args in
  match args with
  | [] ->
    let c = context ~quick () in
    print_string (Experiments.all c);
    exit (kernels ~quick ~json ~out ())
  | [ "kernels" ] -> exit (kernels ~quick ~json ~out ())
  | [ "kernels-mc" ] -> exit (kernels_mc ~quick ())
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name exhibits with
        | Some f ->
          let c = context ~quick () in
          print_string (f c);
          print_newline ()
        | None ->
          Printf.eprintf
            "unknown exhibit %S (try: %s, kernels, kernels-mc)\n" name
            (String.concat ", " (List.map fst exhibits));
          exit 1)
      names
