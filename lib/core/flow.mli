(** End-to-end methodology flow (paper Fig. 1).

    [prepare] runs the front half once — target design generation,
    placement, timing closure with area recovery (the
    performance-optimized placed netlist the methodology takes as
    input), FIR switching activity, Monte-Carlo SSTA per die position,
    and violation-scenario classification.

    [variant] then runs the back half for one slicing direction —
    voltage-island generation, level-shifter insertion, incremental
    placement and post-insertion timing — and [power_at] evaluates any
    supply configuration of the result, which is all the §5 experiments
    need. *)

open Pvtol_netlist
module Position := Pvtol_variation.Position

type config = {
  vex : Pvtol_vex.Vex_core.config;
  place_seed : int;
  place_iterations : int;
  utilization : float;
      (** Initial row utilization; below the paper's ~70% so the final
          design (after level-shifter insertion, +26-31% area) lands
          near 70% and incremental placement stays local. *)
  mc_samples : int;
  mc_seed : int;
  gatesim_cycles : int;
  fir_taps : int;
  fir_samples : int;
  corner_kappa : float;
}

val default_config : config
(** The paper's design point: full-size VEX, 400 MC samples, 512
    activity cycles, 16-tap/64-sample FIR. *)

val quick_config : config
(** Scaled-down core and sample counts for tests and examples. *)

type t = {
  config : config;
  design : Pvtol_vex.Vex_core.t;
  netlist : Netlist.t;                     (** after sizing *)
  placement : Pvtol_place.Placement.t;
  sta : Pvtol_timing.Sta.t;
  clock : float;                           (** nominal period, ns *)
  sizing : Pvtol_timing.Sizing.report;
  sampler : Pvtol_variation.Sampler.t;
  fir : Pvtol_vexsim.Fir.result;
  activity : Pvtol_power.Gatesim.activity;
  mc : Position.t -> Pvtol_ssta.Monte_carlo.result;  (** memoized *)
  mc_all : unit -> (Position.t * Pvtol_ssta.Monte_carlo.result) list;
      (** all named positions, uncached ones evaluated as parallel
          tasks on the shared domain pool; same memo as [mc] *)
  scenarios : unit -> Pvtol_ssta.Scenario.t list;    (** at A, B, C, D *)
}

val prepare : ?config:config -> unit -> t

type variant = {
  direction : Island.direction;
  slicing : Slicing.outcome;
  shifted : Level_shifter.t;
  sta_shifted : Pvtol_timing.Sta.t;
  post_ls_worst : float;        (** nominal worst delay after insertion *)
  degradation : float;          (** (post_ls_worst - clock) / clock *)
  activity_shifted : Pvtol_power.Gatesim.activity;
}

val variant : t -> Island.direction -> variant
(** Deterministic; results should be cached by the caller (the
    experiment harness memoizes both directions). *)

type supply_config =
  | Baseline_low      (** everything at 1.0V — the pre-compensation design *)
  | Chip_wide_high    (** traditional full-chip adaptation: all at 1.2V *)
  | Islands of variant * int
      (** level-shifted design with islands [1..k] raised *)

val power_at :
  t -> ?position:Position.t -> supply_config -> Pvtol_power.Power.report
(** Power at a die position (leakage sees the systematic Lgate map
    there; default position A).  All configurations are evaluated at
    the same frequency (the nominal fmax), as in §5. *)

val growth_targets : Slicing.target list
(** The scenario ladder the islands compensate: island 1 for the
    single-stage scenario at C, island 2 for B, island 3 for A. *)
