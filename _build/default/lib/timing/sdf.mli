(** SDF-subset writer/parser.

    The paper's variability-injection loop works by exporting the
    design's delays to SDF, rewriting each cell's delay according to
    the process-variation model at the cell's location, and re-importing
    the file into the timing engine (§4.3: "We developed a parser of the
    sdf file that checks the cell position within the chip, computes
    effective gate length in that location and modifies its delay
    accordingly").  This module reproduces that interchange. *)

open Pvtol_netlist

val to_string : Netlist.t -> delays:float array -> string
(** Serialize per-cell IOPATH delays (ns, three decimals of ps
    precision). *)

val write_file : string -> Netlist.t -> delays:float array -> unit

exception Parse_error of string

val of_string : Netlist.t -> string -> float array
(** Read back a per-cell delay array; instances are matched by name.
    Raises {!Parse_error} on unknown instances or missing delays. *)

val read_file : Netlist.t -> string -> float array

val rewrite :
  Netlist.t -> string -> f:(Netlist.cell -> float -> float) -> string
(** [rewrite nl sdf ~f] parses, maps every instance delay through [f]
    and re-serializes — the paper's SDF-modification step as a single
    operation. *)
