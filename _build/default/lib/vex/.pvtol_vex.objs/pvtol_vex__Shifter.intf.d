lib/vex/shifter.mli: Gen
