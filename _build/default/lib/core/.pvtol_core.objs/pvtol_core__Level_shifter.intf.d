lib/core/level_shifter.mli: Island Netlist Pvtol_netlist Pvtol_place
