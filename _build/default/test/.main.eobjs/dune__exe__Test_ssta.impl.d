test/test_ssta.ml: Alcotest Array Float Lazy List Printf Pvtol_netlist Pvtol_place Pvtol_ssta Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation Pvtol_vex
