(** Descriptive statistics over float samples.

    [Running] is a numerically stable (Welford) online accumulator;
    [of_array] computes the same summary in one pass over stored data
    and additionally supports quantiles. *)

module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than 2 samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** One-pass summary of a non-empty sample. *)

val mean : float array -> float
val stddev : float array -> float
(** Unbiased sample standard deviation. *)

val quantile : float array -> float -> float
(** [quantile xs p] for p in [0,1]; linear interpolation between order
    statistics.  Sorts a copy; the input is not modified. *)

val three_sigma : summary -> float
(** [mean + 3*stddev], the paper's worst-case figure of merit. *)
