lib/place/placement.ml: Array Floorplan List Netlist Pvtol_netlist Pvtol_stdcell Pvtol_util
