examples/fir_power.mli:
