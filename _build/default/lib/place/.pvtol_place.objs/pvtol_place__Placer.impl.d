lib/place/placer.ml: Array Density Float Floorplan Hashtbl Legalize List Netlist Option Placement Pvtol_netlist Pvtol_stdcell Pvtol_util String
