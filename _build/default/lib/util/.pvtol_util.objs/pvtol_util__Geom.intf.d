lib/util/geom.mli:
