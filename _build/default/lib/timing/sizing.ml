open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell

type report = {
  netlist : Netlist.t;
  clock : float;
  rounds : int;
  downsized : int;
  area_before : float;
  area_after : float;
}

let smaller_drive = function
  | Cell_lib.X4 -> Some Cell_lib.X2
  | Cell_lib.X2 -> Some Cell_lib.X1
  | Cell_lib.X1 -> Some Cell_lib.X0
  | Cell_lib.X0 -> None

let balanced_fracs = function
  | Stage.Execute -> 1.0
  | Stage.Decode -> 0.965
  | Stage.Writeback -> 0.93
  | Stage.Fetch -> 0.88
  | Stage.Pipe_regs | Stage.Reg_file -> 1.0

let bigger_drive = function
  | Cell_lib.X0 -> Some Cell_lib.X1
  | Cell_lib.X1 -> Some Cell_lib.X2
  | Cell_lib.X2 -> Some Cell_lib.X4
  | Cell_lib.X4 -> None

(* Per-net required times seeded with each endpoint's stage budget. *)
let stage_required sta ~delays ~clock ~frac =
  Sta.required_with sta ~delays ~endpoint_required:(fun c ->
      match c with
      | Some s -> clock *. frac s
      | None -> clock)

let meets_constraints (result : Sta.result) ~clock ~frac =
  List.for_all
    (fun (s, d, _) -> d <= clock *. frac s +. 1e-9)
    result.Sta.stage_worst

let recover ?(max_rounds = 16) ?(guard = 10.0) ?(rollback = true)
    ?(frac = fun _ -> 1.0) ~clock ~wire_length ~capture nl =
  let lib = nl.Netlist.lib in
  let area_before = Netlist.area nl in
  let current = ref nl in
  let rounds = ref 0 in
  let downsized = ref 0 in
  let guard = ref guard in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let nl = !current in
    let sta = Sta.build nl ~wire_length ~capture in
    let delays = Sta.nominal_delays sta in
    let result = Sta.analyze sta ~delays in
    let req = stage_required sta ~delays ~clock ~frac in
    let changed = ref 0 in
    let next =
      Netlist.remap_cells nl (fun c ->
          let cell = c.Netlist.cell in
          match smaller_drive cell.Cell_lib.drive with
          | None -> cell
          | Some d ->
            let out = c.Netlist.fanout in
            let slack = req.(out) -. result.Sta.arrival.(out) in
            if not (Float.is_finite slack) then
              (* No timing endpoint downstream: free to downsize. *)
              Cell_lib.find lib cell.Cell_lib.kind d
            else begin
              let candidate = Cell_lib.find lib cell.Cell_lib.kind d in
              let load =
                lib.Cell_lib.wire_cap_per_um *. wire_length out
                +. Array.fold_left
                     (fun acc (cid, _) ->
                       acc +. nl.Netlist.cells.(cid).Netlist.cell.Cell_lib.input_cap)
                     0.0 nl.Netlist.nets.(out).Netlist.sinks
              in
              let delta =
                (candidate.Cell_lib.drive_res -. cell.Cell_lib.drive_res) *. load
              in
              if slack > !guard *. delta && delta >= 0.0 then begin
                incr changed;
                candidate
              end
              else cell
            end)
    in
    if !changed = 0 then continue_ := false
    else if not rollback then begin
      current := next;
      downsized := !downsized + !changed
    end
    else begin
      (* Verify the round; roll back and tighten the guard on failure. *)
      let sta' = Sta.build next ~wire_length ~capture in
      let result' = Sta.analyze sta' ~delays:(Sta.nominal_delays sta') in
      if meets_constraints result' ~clock ~frac then begin
        current := next;
        downsized := !downsized + !changed
      end
      else guard := !guard *. 2.0
    end
  done;
  {
    netlist = !current;
    clock;
    rounds = !rounds;
    downsized = !downsized;
    area_before;
    area_after = Netlist.area !current;
  }

let close_timing ?(max_rounds = 60) ?(frac = fun _ -> 1.0) ~clock ~wire_length
    ~capture nl =
  let lib = nl.Netlist.lib in
  let area_before = Netlist.area nl in
  let current = ref nl in
  let rounds = ref 0 in
  let upsized = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let nl = !current in
    let sta = Sta.build nl ~wire_length ~capture in
    let delays = Sta.nominal_delays sta in
    let result = Sta.analyze sta ~delays in
    if meets_constraints result ~clock ~frac then continue_ := false
    else begin
      let req = stage_required sta ~delays ~clock ~frac in
      (* Upsizing a whole violating cone at once overshoots badly; fix
         only the worst-slack fraction of offenders per round. *)
      let offenders = ref [] in
      Array.iter
        (fun (c : Netlist.cell) ->
          let out = c.Netlist.fanout in
          let slack = req.(out) -. result.Sta.arrival.(out) in
          if
            Float.is_finite slack && slack < 0.0
            && bigger_drive c.Netlist.cell.Cell_lib.drive <> None
          then offenders := (slack, c.Netlist.id) :: !offenders)
        nl.Netlist.cells;
      let offenders = Array.of_list !offenders in
      if Array.length offenders = 0 then continue_ := false
      else begin
        Array.sort compare offenders;
        let budget_count = max 50 (Array.length offenders / 8) in
        let picked = Hashtbl.create 64 in
        Array.iteri
          (fun i (_, cid) -> if i < budget_count then Hashtbl.replace picked cid ())
          offenders;
        let changed = ref 0 in
        let next =
          Netlist.remap_cells nl (fun c ->
              let cell = c.Netlist.cell in
              if Hashtbl.mem picked c.Netlist.id then
                match bigger_drive cell.Cell_lib.drive with
                | Some d ->
                  incr changed;
                  Cell_lib.find lib cell.Cell_lib.kind d
                | None -> cell
              else cell)
        in
        current := next;
        upsized := !upsized + !changed
      end
    end
  done;
  {
    netlist = !current;
    clock;
    rounds = !rounds;
    downsized = !upsized;
    area_before;
    area_after = Netlist.area !current;
  }

(* Alternating closure/recovery: the optimistic (no-rollback) recovery
   pushes every stage up against its budget; the closure pass that
   follows repairs any overshoot.  A final closure pass guarantees the
   returned netlist meets all constraints. *)
let fit ?frac ~clock ~wire_length ~capture nl =
  let area_before = Netlist.area nl in
  let current = ref nl in
  let rounds = ref 0 in
  let sized = ref 0 in
  for pass = 1 to 3 do
    let closed = close_timing ?frac ~clock ~wire_length ~capture !current in
    rounds := !rounds + closed.rounds;
    sized := !sized + closed.downsized;
    let guard = match pass with 1 -> 6.0 | 2 -> 3.0 | _ -> 2.0 in
    let recovered =
      recover ~guard ~rollback:false ?frac ~clock ~wire_length ~capture
        closed.netlist
    in
    rounds := !rounds + recovered.rounds;
    sized := !sized + recovered.downsized;
    current := recovered.netlist
  done;
  let final = close_timing ?frac ~clock ~wire_length ~capture !current in
  {
    netlist = final.netlist;
    clock;
    rounds = !rounds + final.rounds;
    downsized = !sized + final.downsized;
    area_before;
    area_after = Netlist.area final.netlist;
  }
