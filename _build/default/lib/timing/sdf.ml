open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell

exception Parse_error of string

let to_string (nl : Netlist.t) ~delays =
  let b = Buffer.create (Netlist.cell_count nl * 80) in
  Buffer.add_string b "(DELAYFILE\n";
  Buffer.add_string b (Printf.sprintf " (DESIGN \"%s\")\n" nl.Netlist.design_name);
  Buffer.add_string b " (TIMESCALE 1ns)\n";
  Array.iter
    (fun (c : Netlist.cell) ->
      Buffer.add_string b
        (Printf.sprintf
           " (CELL (CELLTYPE \"%s\") (INSTANCE %s) (DELAY (ABSOLUTE (IOPATH i o (%.6f)))))\n"
           (Cell_lib.cell_name c.Netlist.cell)
           c.Netlist.name delays.(c.Netlist.id)))
    nl.Netlist.cells;
  Buffer.add_string b ")\n";
  Buffer.contents b

let write_file path nl ~delays =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl ~delays))

(* A line-oriented scan is enough for the subset we emit. *)
let scan_line line =
  (* Expected shape: ... (INSTANCE name) ... (IOPATH i o (delay)) ... *)
  let find_after key =
    let klen = String.length key in
    let rec search from =
      match String.index_from_opt line from '(' with
      | None -> None
      | Some i ->
        if i + 1 + klen <= String.length line && String.sub line (i + 1) klen = key
        then Some (i + 1 + klen)
        else search (i + 1)
    in
    search 0
  in
  match find_after "INSTANCE " with
  | None -> None
  | Some start ->
    let close =
      match String.index_from_opt line start ')' with
      | Some i -> i
      | None -> raise (Parse_error ("malformed INSTANCE: " ^ line))
    in
    let name = String.trim (String.sub line start (close - start)) in
    (match find_after "IOPATH i o (" with
    | None -> raise (Parse_error ("missing IOPATH: " ^ line))
    | Some dstart ->
      let dclose =
        match String.index_from_opt line dstart ')' with
        | Some i -> i
        | None -> raise (Parse_error ("malformed IOPATH: " ^ line))
      in
      let txt = String.trim (String.sub line dstart (dclose - dstart)) in
      (match float_of_string_opt txt with
      | Some v -> Some (name, v)
      | None -> raise (Parse_error ("bad delay value: " ^ txt))))

let of_string (nl : Netlist.t) src =
  let by_name = Hashtbl.create (Netlist.cell_count nl) in
  Array.iter
    (fun (c : Netlist.cell) -> Hashtbl.replace by_name c.Netlist.name c.Netlist.id)
    nl.Netlist.cells;
  let delays = Array.make (Netlist.cell_count nl) nan in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         if String.length line > 6 && String.contains line 'C' then
           match scan_line line with
           | Some (name, v) -> begin
             match Hashtbl.find_opt by_name name with
             | Some id -> delays.(id) <- v
             | None -> raise (Parse_error ("unknown instance " ^ name))
           end
           | None -> ());
  Array.iteri
    (fun i d ->
      if Float.is_nan d then
        raise
          (Parse_error
             (Printf.sprintf "missing delay for cell %s"
                nl.Netlist.cells.(i).Netlist.name)))
    delays;
  delays

let read_file nl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string nl (really_input_string ic (in_channel_length ic)))

let rewrite nl src ~f =
  let delays = of_string nl src in
  let delays' =
    Array.mapi (fun i d -> f nl.Netlist.cells.(i) d) delays
  in
  to_string nl ~delays:delays'
