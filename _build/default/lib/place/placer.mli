(** Wirelength-driven global placement.

    A force-directed scheme standing in for the paper's Physical
    Compiler coarse placement: cells iteratively move toward the
    centroid of their incident nets (pulling connected logic together)
    while a density-diffusion step pushes cells out of overfull bins.
    The result is the "performance pre-optimized placement" the
    methodology takes as input, in which cells of different pipeline
    stages end up distributed and interleaved across the floorplan —
    the property that motivates the paper's proximity-based (rather
    than logic-based) island generation. *)

open Pvtol_netlist

val place :
  ?iterations:int -> ?seed:int -> ?damping:float -> ?padding:float ->
  Netlist.t -> Floorplan.t ->
  Placement.t
(** Global placement followed by row legalization (see {!Legalize};
    [padding] reserves distributed ECO whitespace).  Defaults: 48
    iterations, seed 1, damping 0.6, no padding.  Deterministic. *)

val global_only :
  ?iterations:int -> ?seed:int -> ?damping:float -> Netlist.t -> Floorplan.t ->
  Placement.t
(** The force-directed phase alone, without legalization (useful for
    inspecting the spreading behaviour and in tests). *)
