lib/core/logic_grouping.mli: Netlist Pvtol_netlist Pvtol_place Pvtol_timing Pvtol_variation Slicing
