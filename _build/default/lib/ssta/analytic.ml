open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Specfun = Pvtol_util.Specfun

type gaussian = { mean : float; var : float }

(* Standard normal pdf / cdf. *)
let phi x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)
let cap_phi x = Specfun.normal_cdf ~mu:0.0 ~sigma:1.0 x

let clark_max a b =
  let theta2 = a.var +. b.var in
  if theta2 < 1e-24 then if a.mean >= b.mean then a else b
  else begin
    let theta = sqrt theta2 in
    let alpha = (a.mean -. b.mean) /. theta in
    let t = cap_phi alpha in
    let mean =
      (a.mean *. t) +. (b.mean *. (1.0 -. t)) +. (theta *. phi alpha)
    in
    let second =
      ((a.var +. (a.mean *. a.mean)) *. t)
      +. ((b.var +. (b.mean *. b.mean)) *. (1.0 -. t))
      +. ((a.mean +. b.mean) *. theta *. phi alpha)
    in
    { mean; var = Float.max 0.0 (second -. (mean *. mean)) }
  end

type result = {
  stage_delay : (Stage.t * gaussian) list;
  worst : gaussian;
}

let analyze ~sta ~sampler ~systematic ?vdd () =
  let nl = Sta.netlist sta in
  let lib = nl.Netlist.lib in
  let vdd =
    match vdd with
    | Some f -> f
    | None ->
      let low = lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
      fun _ -> low
  in
  let base = Sta.nominal_delays sta in
  let n = Netlist.cell_count nl in
  (* Per-cell delay distribution: the mean follows the systematic Lgate,
     the standard deviation is the first-order sensitivity to one sigma
     of the random component. *)
  let delay = Array.make n { mean = 0.0; var = 0.0 } in
  for i = 0 to n - 1 do
    let v = vdd i in
    let s0 = Sampler.delay_scale sampler ~lgate_nm:systematic.(i) ~vdd:v in
    let s1 =
      Sampler.delay_scale sampler
        ~lgate_nm:(systematic.(i) +. sampler.Sampler.sigma_rnd_nm)
        ~vdd:v
    in
    let mean = base.(i) *. s0 in
    let sigma = base.(i) *. Float.abs (s1 -. s0) in
    delay.(i) <- { mean; var = sigma *. sigma }
  done;
  let zero = { mean = 0.0; var = 0.0 } in
  let arrival = Array.make (Netlist.net_count nl) zero in
  let shift g dt = { g with mean = g.mean +. dt } in
  let add a b = { mean = a.mean +. b.mean; var = a.var +. b.var } in
  Array.iter
    (fun cid -> arrival.(nl.Netlist.cells.(cid).Netlist.fanout) <- delay.(cid))
    (Sta.flop_ids sta);
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let acc = ref zero in
      let first = ref true in
      Array.iteri
        (fun pin nid ->
          let a = shift arrival.(nid) (Sta.pin_wire_delay sta cid pin) in
          if !first then begin
            acc := a;
            first := false
          end
          else acc := clark_max !acc a)
        c.Netlist.fanins;
      arrival.(c.Netlist.fanout) <- add !acc delay.(cid))
    (Sta.comb_order sta);
  let setup = lib.Pvtol_stdcell.Cell.setup in
  let per_stage = Hashtbl.create 8 in
  let worst = ref zero in
  let worst_set = ref false in
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      let ep =
        shift arrival.(d_pin) (Sta.pin_wire_delay sta cid 0 +. setup)
      in
      if !worst_set then worst := clark_max !worst ep
      else begin
        worst := ep;
        worst_set := true
      end;
      match Sta.capture_stage_of sta cid with
      | Some stage ->
        let cur = Hashtbl.find_opt per_stage stage in
        Hashtbl.replace per_stage stage
          (match cur with None -> ep | Some g -> clark_max g ep)
      | None -> ())
    (Sta.flop_ids sta);
  let stage_delay =
    List.filter_map
      (fun s -> Option.map (fun g -> (s, g)) (Hashtbl.find_opt per_stage s))
      Stage.all
  in
  { stage_delay; worst = !worst }

let three_sigma g = g.mean +. (3.0 *. sqrt g.var)
