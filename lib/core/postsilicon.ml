module Position = Pvtol_variation.Position
module Power = Pvtol_power.Power
module Metrics = Pvtol_util.Metrics
module Srng = Pvtol_util.Srng
module Monte_carlo = Pvtol_ssta.Monte_carlo

let m_dies = Metrics.counter "postsilicon_dies_total"
let m_raised = Metrics.counter "postsilicon_islands_raised_total"

type chip = {
  diagonal_frac : float;
  violating : int;
  detected : int;
  raised : int;
  meets_uncompensated : bool;
  meets_compensated : bool;
  meets_chip_wide : bool;
}

type study = {
  chips : chip list;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
}

(* ------------------------------------------------------------------ *)
(* Single-die kernel — the shared detect pass plus the paper's two
   reference strategies (voltage islands, chip-wide adaptation), both
   expressed through the {!Compensation} interface.                     *)

type kernel = {
  ctx : Compensation.ctx;
  vi : Compensation.strategy;
  cw : Compensation.strategy;
  (* Power per compensation level, computed once (chip leakage varies
     with position but the dominant switching term does not).  Reads
     the same memoized power stages as the island strategy's own cost
     table. *)
  power_of_raised : float array;
}

type scratch = {
  sc : Compensation.scratch;
  vi_apply : Compensation.scratch -> Compensation.detect -> Compensation.outcome;
  cw_apply : Compensation.scratch -> Compensation.detect -> Compensation.outcome;
}

type die = {
  die_violating : int;
  die_detected : int;
  die_raised : int;
  die_meets_uncompensated : bool;
  die_meets_compensated : bool;
  die_meets_chip_wide : bool;
  die_worst_low_ns : float;
}

let kernel ?engine (t : Flow.t) (v : Flow.variant) =
  let ctx = Compensation.context ?engine t in
  let vi = Compensation.voltage_islands t ctx v in
  let cw = Compensation.chip_wide ctx in
  let power_of_raised =
    Array.init
      (vi.Compensation.max_knob + 1)
      (fun raised ->
        Power.total_mw
          (Flow.power_at t ~position:Position.point_b
             (Flow.Islands (v.Flow.direction, raised)))
            .Power.total)
  in
  { ctx; vi; cw; power_of_raised }

let scratch k =
  {
    sc = Compensation.scratch k.ctx;
    vi_apply = k.vi.Compensation.fresh_apply ();
    cw_apply = k.cw.Compensation.fresh_apply ();
  }

let n_islands k = k.vi.Compensation.max_knob
let clock k = Compensation.clock k.ctx
let power_islands_mw k ~raised = k.power_of_raised.(raised)
let power_chip_wide_mw k = Compensation.power_chip_wide_mw k.ctx
let power_baseline_mw k = Compensation.power_baseline_mw k.ctx
let die_power_islands_mw k d = k.power_of_raised.(d.die_raised)

let die_power_chip_wide_mw k d =
  if d.die_meets_uncompensated then Compensation.power_baseline_mw k.ctx
  else Compensation.power_chip_wide_mw k.ctx

let systematic k position = Compensation.systematic k.ctx position

let simulate_die k s ~systematic rng =
  (* Detect once (the die's only RNG consumption), then play both
     reference strategies on the same Lgate realisation — the exact
     analysis sequence of the pre-refactor loop, so die records are
     bit-identical to it under either engine. *)
  let d = Compensation.detect k.ctx s.sc ~systematic rng in
  let vi = s.vi_apply s.sc d in
  let cw = s.cw_apply s.sc d in
  Metrics.incr m_dies;
  Metrics.add m_raised vi.Compensation.knob;
  {
    die_violating = d.Compensation.violating;
    die_detected = d.Compensation.violating;
    die_raised = vi.Compensation.knob;
    die_meets_uncompensated = d.Compensation.violating = 0;
    die_meets_compensated = vi.Compensation.meets;
    die_meets_chip_wide = cw.Compensation.meets;
    die_worst_low_ns = d.Compensation.worst_low_ns;
  }

(* ------------------------------------------------------------------ *)
(* Population study along the chip diagonal (the original exhibit)      *)

let run ?(n_chips = 40) ?(seed = 7) (t : Flow.t) (v : Flow.variant) =
  let k = kernel t v in
  let sc = scratch k in
  let rng = Srng.create seed in
  let chips = ref [] in
  for _ = 1 to n_chips do
    let frac = Srng.uniform rng in
    let position = Position.at_fraction frac in
    let systematic = systematic k position in
    let d = simulate_die k sc ~systematic rng in
    chips :=
      {
        diagonal_frac = frac;
        violating = d.die_violating;
        detected = d.die_detected;
        raised = d.die_raised;
        meets_uncompensated = d.die_meets_uncompensated;
        meets_compensated = d.die_meets_compensated;
        meets_chip_wide = d.die_meets_chip_wide;
      }
      :: !chips
  done;
  let chips = List.rev !chips in
  let count f = List.length (List.filter f chips) in
  let frac_of n = float_of_int n /. float_of_int n_chips in
  let mean_raised =
    float_of_int (List.fold_left (fun acc c -> acc + c.raised) 0 chips)
    /. float_of_int n_chips
  in
  (* Population power: islands scheme uses each chip's raised level;
     chip-wide adaptation raises everything on any failing die. *)
  let mean_power_islands =
    List.fold_left (fun acc c -> acc +. k.power_of_raised.(c.raised)) 0.0 chips
    /. float_of_int n_chips
  in
  let mean_power_chip_wide =
    List.fold_left
      (fun acc c ->
        acc
        +.
        if c.meets_uncompensated then power_baseline_mw k
        else power_chip_wide_mw k)
      0.0 chips
    /. float_of_int n_chips
  in
  {
    chips;
    yield_uncompensated = frac_of (count (fun c -> c.meets_uncompensated));
    yield_compensated = frac_of (count (fun c -> c.meets_compensated));
    yield_chip_wide = frac_of (count (fun c -> c.meets_chip_wide));
    mean_raised;
    mean_power_islands_mw = mean_power_islands;
    mean_power_chip_wide_mw = mean_power_chip_wide;
  }

let pp fmt s =
  Format.fprintf fmt
    "population of %d dies:@.\
    \  timing yield:  uncompensated %.0f%%   islands %.0f%%   chip-wide %.0f%%@.\
    \  mean islands raised per die: %.2f of 3@.\
    \  mean power: islands %.2f mW vs chip-wide adaptation %.2f mW (%.1f%% saved)@."
    (List.length s.chips)
    (100.0 *. s.yield_uncompensated)
    (100.0 *. s.yield_compensated)
    (100.0 *. s.yield_chip_wide)
    s.mean_raised s.mean_power_islands_mw s.mean_power_chip_wide_mw
    (100.0 *. (1.0 -. (s.mean_power_islands_mw /. s.mean_power_chip_wide_mw)))
