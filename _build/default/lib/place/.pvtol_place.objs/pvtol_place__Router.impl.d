lib/place/router.ml: Array Floorplan List Netlist Placement Pvtol_netlist Pvtol_util
