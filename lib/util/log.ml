type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "err" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

(* Threshold as a severity int; -1 = quiet.  A plain int in an Atomic
   so concurrent set_level/level_enabled are race-free. *)
let threshold =
  let init =
    match Sys.getenv_opt "PVTOL_LOG" with
    | Some s when String.lowercase_ascii (String.trim s) = "quiet" -> -1
    | Some s -> (
      match level_of_string s with Some l -> severity l | None -> severity Warn)
    | None -> severity Warn
  in
  Atomic.make init

let set_level l = Atomic.set threshold (severity l)
let set_quiet () = Atomic.set threshold (-1)
let level_enabled l = severity l <= Atomic.get threshold

let sink_mu = Mutex.create ()

let default_sink level msg =
  Mutex.lock sink_mu;
  Printf.eprintf "pvtol: [%s] %s\n%!" (level_name level) msg;
  Mutex.unlock sink_mu

let sink = Atomic.make default_sink
let set_sink f = Atomic.set sink f

let logf level fmt =
  if level_enabled level then
    Printf.ksprintf (fun msg -> (Atomic.get sink) level msg) fmt
  else Printf.ksprintf ignore fmt

let err fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt

type once = bool Atomic.t

let once () = Atomic.make false

let warn_once o fmt =
  Printf.ksprintf
    (fun msg -> if Atomic.compare_and_set o false true then logf Warn "%s" msg)
    fmt
