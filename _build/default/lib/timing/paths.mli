(** Critical-path extraction and near-critical endpoint enumeration
    (the input to Razor-sensor site selection, paper §4.4). *)

open Pvtol_netlist

type hop = {
  cell : Netlist.cell_id;
  arrival_out : float;  (** arrival at the cell's output net *)
}

type path = {
  endpoint : Netlist.cell_id;   (** capturing flop *)
  delay : float;                (** endpoint path delay (incl. setup) *)
  hops : hop list;              (** launch-to-capture, in signal order *)
}

val trace : Sta.t -> delays:float array -> Sta.result -> Netlist.cell_id -> path
(** Reconstruct the worst path into the given flop by backtracking the
    max-arrival fanin at every hop. *)

val critical : Sta.t -> delays:float array -> Sta.result -> path option
(** The design's critical path ([None] for a flop-free netlist). *)

val worst_endpoints :
  ?stage:Stage.t -> Sta.t -> Sta.result -> k:int -> (Netlist.cell_id * float) list
(** The [k] endpoints with the largest path delays, optionally
    restricted to one capture stage; sorted slowest first. *)

val stage_share : Sta.t -> path -> (string * int) list
(** Per functional-unit hop counts along a path — reproduces statements
    like "the critical path ... going through a forwarding unit (22%)
    and an ALU (60%)". *)
