examples/scenario_sweep.mli:
