open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind

let n_stages = List.length Stage.all

(* analyze/workspace counters: the ratio of the two is the workspace
   reuse factor the allocation-free inner loop exists for. *)
module Metrics = Pvtol_util.Metrics

let m_workspaces = Metrics.counter "sta_workspace_total"
let m_analyzes = Metrics.counter "sta_analyze_total"
let m_inc_gates = Metrics.counter "sta_incremental_gates_total"
let m_fallbacks = Metrics.counter "sta_full_fallbacks_total"

type t = {
  nl : Netlist.t;
  order : int array;             (* combinational cells, topological *)
  base_delay : float array;      (* per cell *)
  pin_off : int array;           (* CSR row offsets into pin_wire, length cells+1 *)
  pin_wire : float array;        (* flattened per-pin wire delays, pin order *)
  clk_to_q : float;
  setup : float;
  capture_of : Stage.t option array;  (* per cell *)
  flops : int array;
  stage_endpoints : int array array;  (* per Stage.index: capturing flops, id order *)
  flop_slot : int array;         (* per cell: index into [flops], -1 if comb *)
  level : int array;             (* per cell: comb logic depth, -1 if sequential *)
  level_off : int array;         (* CSR offsets of comb cells per level, n_levels+1 *)
}

let netlist t = t.nl

let wireload_model nl nid =
  let net = nl.Netlist.nets.(nid) in
  let fanout = Array.length net.Netlist.sinks in
  (* Representative 65nm wireload curve: a few um per sink. *)
  4.0 +. (3.0 *. float_of_int fanout)

let is_seq (c : Netlist.cell) = Kind.is_sequential c.Netlist.cell.Cell_lib.kind

let topo_order (nl : Netlist.t) =
  let n = Netlist.cell_count nl in
  let indeg = Array.make n 0 in
  let comb c = not (is_seq c) in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c then
        Array.iter
          (fun nid ->
            match nl.Netlist.nets.(nid).Netlist.driver with
            | Some d when comb nl.Netlist.cells.(d) ->
              indeg.(c.Netlist.id) <- indeg.(c.Netlist.id) + 1
            | Some _ | None -> ())
          c.Netlist.fanins)
    nl.Netlist.cells;
  let queue = Queue.create () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c && indeg.(c.Netlist.id) = 0 then Queue.add c.Netlist.id queue)
    nl.Netlist.cells;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    order.(!k) <- cid;
    incr k;
    Array.iter
      (fun (sink, _) ->
        if not (is_seq nl.Netlist.cells.(sink)) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      nl.Netlist.nets.(nl.Netlist.cells.(cid).Netlist.fanout).Netlist.sinks
  done;
  Array.sub order 0 !k

let build nl ~wire_length ~capture =
  let lib = nl.Netlist.lib in
  let net_load = Array.make (Netlist.net_count nl) 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins =
        Array.fold_left
          (fun acc (cid, _) ->
            acc +. nl.Netlist.cells.(cid).Netlist.cell.Cell_lib.input_cap)
          0.0 net.Netlist.sinks
      in
      let wire =
        if net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 then 0.0
        else lib.Cell_lib.wire_cap_per_um *. wire_length net.Netlist.net_id
      in
      net_load.(net.Netlist.net_id) <- pins +. wire)
    nl.Netlist.nets;
  let base_delay =
    Array.map
      (fun (c : Netlist.cell) ->
        let cell = c.Netlist.cell in
        let load = net_load.(c.Netlist.fanout) in
        if is_seq c then
          (* clk-to-q, with the same load dependence as a gate. *)
          lib.Cell_lib.clk_to_q +. (cell.Cell_lib.drive_res *. load)
        else cell.Cell_lib.d0 +. (cell.Cell_lib.drive_res *. load))
      nl.Netlist.cells
  in
  (* Flattened CSR layout for the per-pin wire delays: one contiguous
     float array walked linearly by the forward pass, instead of a
     pointer chase through an array of per-cell arrays. *)
  let n_cells = Netlist.cell_count nl in
  let pin_off = Array.make (n_cells + 1) 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      pin_off.(c.Netlist.id + 1) <- Array.length c.Netlist.fanins)
    nl.Netlist.cells;
  for i = 1 to n_cells do
    pin_off.(i) <- pin_off.(i) + pin_off.(i - 1)
  done;
  let pin_wire = Array.make pin_off.(n_cells) 0.0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let off = pin_off.(c.Netlist.id) in
      Array.iteri
        (fun pin nid ->
          (* Lumped per-sink wire delay: half the net length. *)
          pin_wire.(off + pin) <-
            lib.Cell_lib.wire_delay_per_um *. (wire_length nid /. 2.0))
        c.Netlist.fanins)
    nl.Netlist.cells;
  let capture_of = Array.map (fun c -> capture c) nl.Netlist.cells in
  let flops =
    Array.to_list nl.Netlist.cells
    |> List.filter is_seq
    |> List.map (fun (c : Netlist.cell) -> c.Netlist.id)
    |> Array.of_list
  in
  let stage_endpoints =
    Array.init n_stages (fun si ->
        Array.to_list flops
        |> List.filter (fun cid ->
               match capture_of.(cid) with
               | Some s -> Stage.index s = si
               | None -> false)
        |> Array.of_list)
  in
  let flop_slot = Array.make n_cells (-1) in
  Array.iteri (fun slot cid -> flop_slot.(cid) <- slot) flops;
  let order = topo_order nl in
  (* Levelization for the incremental worklist: a comb cell's level is
     one past its deepest combinational fanin (flop and primary-input
     fanins sit at depth 0), so an arrival change at level L can only
     disturb cells at levels > L and each level's bucket is drained at
     most once per incremental pass. *)
  let level = Array.make n_cells (-1) in
  Array.iter
    (fun cid ->
      let lv = ref 0 in
      Array.iter
        (fun nid ->
          match nl.Netlist.nets.(nid).Netlist.driver with
          | Some d when not (is_seq nl.Netlist.cells.(d)) ->
            if level.(d) + 1 > !lv then lv := level.(d) + 1
          | Some _ | None -> ())
        nl.Netlist.cells.(cid).Netlist.fanins;
      level.(cid) <- !lv)
    order;
  let n_levels =
    Array.fold_left (fun acc cid -> max acc (level.(cid) + 1)) 0 order
  in
  let level_off = Array.make (n_levels + 1) 0 in
  Array.iter (fun cid -> level_off.(level.(cid) + 1) <- level_off.(level.(cid) + 1) + 1) order;
  for i = 1 to n_levels do
    level_off.(i) <- level_off.(i) + level_off.(i - 1)
  done;
  {
    nl;
    order;
    base_delay;
    pin_off;
    pin_wire;
    clk_to_q = lib.Cell_lib.clk_to_q;
    setup = lib.Cell_lib.setup;
    capture_of;
    flops;
    stage_endpoints;
    flop_slot;
    level;
    level_off;
  }

let of_placement p ~capture =
  build p.Pvtol_place.Placement.netlist
    ~wire_length:(fun nid -> Pvtol_place.Placement.wire_length p nid)
    ~capture

let comb_order t = Array.copy t.order
let flop_ids t = Array.copy t.flops
let pin_wire_delay t cid pin = t.pin_wire.(t.pin_off.(cid) + pin)
let capture_stage_of t cid = t.capture_of.(cid)

let nominal_delays t = Array.copy t.base_delay

let scaled_delays t ~scale =
  Array.mapi (fun i d -> d *. scale i) t.base_delay

type result = {
  arrival : float array;
  endpoint_delay : float array;
  worst : float;
  worst_endpoint : Netlist.cell_id;
  stage_worst : (Stage.t * float * Netlist.cell_id) list;
}

type workspace = {
  arrival_ws : float array;         (* per net *)
  endpoint_delay_ws : float array;  (* per cell *)
  stage_delay_ws : float array;     (* per Stage.index; meaningful iff endpoint >= 0 *)
  stage_endpoint_ws : int array;    (* per Stage.index; -1 = no endpoint *)
  mutable worst_ws : float;
  mutable worst_endpoint_ws : int;
}

let workspace t =
  Metrics.incr m_workspaces;
  {
    arrival_ws = Array.make (Netlist.net_count t.nl) 0.0;
    endpoint_delay_ws = Array.make (Netlist.cell_count t.nl) 0.0;
    stage_delay_ws = Array.make n_stages neg_infinity;
    stage_endpoint_ws = Array.make n_stages (-1);
    worst_ws = 0.0;
    worst_endpoint_ws = -1;
  }

let zero_skew = fun (_ : Netlist.cell_id) -> 0.0

(* Endpoint reduction over the current arrivals — shared verbatim by
   the full and the incremental forward passes, so the two agree bit
   for bit by construction. *)
let endpoint_pass ~skew t ws =
  let nl = t.nl in
  let arrival = ws.arrival_ws in
  let pin_wire = t.pin_wire and pin_off = t.pin_off in
  let endpoint_delay = ws.endpoint_delay_ws in
  Array.fill endpoint_delay 0 (Array.length endpoint_delay) 0.0;
  Array.fill ws.stage_delay_ws 0 n_stages neg_infinity;
  Array.fill ws.stage_endpoint_ws 0 n_stages (-1);
  ws.worst_ws <- neg_infinity;
  ws.worst_endpoint_ws <- -1;
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      (* A late capture edge relaxes the endpoint by its own skew. *)
      let a = arrival.(d_pin) +. pin_wire.(pin_off.(cid)) +. t.setup -. skew cid in
      endpoint_delay.(cid) <- a;
      if a > ws.worst_ws then begin
        ws.worst_ws <- a;
        ws.worst_endpoint_ws <- cid
      end;
      match t.capture_of.(cid) with
      | Some stage ->
        let si = Stage.index stage in
        if a > ws.stage_delay_ws.(si) then begin
          ws.stage_delay_ws.(si) <- a;
          ws.stage_endpoint_ws.(si) <- cid
        end
      | None -> ())
    t.flops;
  if ws.worst_endpoint_ws = -1 then ws.worst_ws <- 0.0

let analyze_into ?skew t ws ~delays =
  Metrics.incr m_analyzes;
  let nl = t.nl in
  let skew = match skew with Some f -> f | None -> zero_skew in
  let arrival = ws.arrival_ws in
  Array.fill arrival 0 (Array.length arrival) 0.0;
  (* Launch points: flop outputs, offset by the launch edge's arrival. *)
  Array.iter
    (fun cid ->
      arrival.(nl.Netlist.cells.(cid).Netlist.fanout) <- delays.(cid) +. skew cid)
    t.flops;
  (* Primary inputs arrive at t = 0 (already initialised). *)
  let pin_wire = t.pin_wire and pin_off = t.pin_off in
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let fanins = c.Netlist.fanins in
      let off = pin_off.(cid) in
      let acc = ref 0.0 in
      for pin = 0 to Array.length fanins - 1 do
        let a = arrival.(fanins.(pin)) +. pin_wire.(off + pin) in
        if a > !acc then acc := a
      done;
      arrival.(c.Netlist.fanout) <- !acc +. delays.(cid))
    t.order;
  endpoint_pass ~skew t ws

let ws_worst ws = ws.worst_ws
let ws_worst_endpoint ws = ws.worst_endpoint_ws
let ws_endpoint_delay ws cid = ws.endpoint_delay_ws.(cid)

let ws_stage_delay ws stage =
  let si = Stage.index stage in
  if ws.stage_endpoint_ws.(si) >= 0 then Some ws.stage_delay_ws.(si) else None

(* ------------------------------------------------------------------ *)
(* Batched structure-of-arrays analysis.

   One row of [stride] lanes per cell/net: lane [k] of every row is
   sample [k], so the forward pass touches each graph edge once per
   block instead of once per sample, and the per-cell bookkeeping
   (fanin walk, CSR offsets, bounds checks on the topo order) is
   amortized over the whole block.  Within a lane the arithmetic — op
   order, accumulator init, [>] comparisons — is exactly [analyze_into]
   on that lane's delay column, so each lane's results are bit-identical
   to a scalar analysis of the same delays. *)

type batch_workspace = {
  stride_b : int;
  delays_b : float array;       (* cells x stride, cell-major; caller-filled *)
  arrival_b : float array;      (* nets x stride *)
  endpoint_b : float array;     (* flop slots x stride *)
  acc_b : float array;          (* stride scratch *)
  worst_b : float array;        (* per lane *)
  worst_ep_b : int array;       (* per lane *)
  stage_delay_b : float array;  (* n_stages x stride *)
  stage_ep_b : int array;       (* n_stages x stride *)
}

let batch_workspace ?(lanes = 32) t =
  if lanes < 1 then invalid_arg "Sta.batch_workspace: lanes < 1";
  Metrics.incr m_workspaces;
  {
    stride_b = lanes;
    delays_b = Array.make (Netlist.cell_count t.nl * lanes) 0.0;
    arrival_b = Array.make (Netlist.net_count t.nl * lanes) 0.0;
    endpoint_b = Array.make (max 1 (Array.length t.flops) * lanes) 0.0;
    acc_b = Array.make lanes 0.0;
    worst_b = Array.make lanes 0.0;
    worst_ep_b = Array.make lanes (-1);
    stage_delay_b = Array.make (n_stages * lanes) neg_infinity;
    stage_ep_b = Array.make (n_stages * lanes) (-1);
  }

let batch_stride bw = bw.stride_b
let batch_delays bw = bw.delays_b

let analyze_batch_into ?skew t bw ~lanes =
  if lanes < 1 || lanes > bw.stride_b then
    invalid_arg "Sta.analyze_batch_into: lanes out of range";
  (* One logical analysis per lane, so the analyze counter stays
     comparable across engines. *)
  Metrics.add m_analyzes lanes;
  let nl = t.nl in
  let skew = match skew with Some f -> f | None -> zero_skew in
  let cap = bw.stride_b in
  let arrival = bw.arrival_b in
  let delays = bw.delays_b in
  Array.fill arrival 0 (Array.length arrival) 0.0;
  (* Unsafe lane accesses are sound: every row index is [id * cap] for
     an id bounded by the array's construction ([cells * cap],
     [nets * cap], [flops * cap]) and [k < lanes <= cap]. *)
  Array.iter
    (fun cid ->
      let sk = skew cid in
      let row = nl.Netlist.cells.(cid).Netlist.fanout * cap in
      let drow = cid * cap in
      for k = 0 to lanes - 1 do
        Array.unsafe_set arrival (row + k)
          (Array.unsafe_get delays (drow + k) +. sk)
      done)
    t.flops;
  let pin_wire = t.pin_wire and pin_off = t.pin_off in
  let acc = bw.acc_b in
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let fanins = c.Netlist.fanins in
      let off = pin_off.(cid) in
      Array.fill acc 0 lanes 0.0;
      for pin = 0 to Array.length fanins - 1 do
        let frow = Array.unsafe_get fanins pin * cap in
        let pw = Array.unsafe_get pin_wire (off + pin) in
        for k = 0 to lanes - 1 do
          let a = Array.unsafe_get arrival (frow + k) +. pw in
          if a > Array.unsafe_get acc k then Array.unsafe_set acc k a
        done
      done;
      let orow = c.Netlist.fanout * cap in
      let drow = cid * cap in
      for k = 0 to lanes - 1 do
        Array.unsafe_set arrival (orow + k)
          (Array.unsafe_get acc k +. Array.unsafe_get delays (drow + k))
      done)
    t.order;
  Array.fill bw.endpoint_b 0 (Array.length bw.endpoint_b) 0.0;
  Array.fill bw.stage_delay_b 0 (n_stages * cap) neg_infinity;
  Array.fill bw.stage_ep_b 0 (n_stages * cap) (-1);
  Array.fill bw.worst_b 0 lanes neg_infinity;
  Array.fill bw.worst_ep_b 0 lanes (-1);
  Array.iteri
    (fun slot cid ->
      let c = nl.Netlist.cells.(cid) in
      let arow = c.Netlist.fanins.(0) * cap in
      let pw = pin_wire.(pin_off.(cid)) in
      let setup = t.setup in
      let sk = skew cid in
      let erow = slot * cap in
      match t.capture_of.(cid) with
      | Some stage ->
        let srow = Stage.index stage * cap in
        for k = 0 to lanes - 1 do
          let a = arrival.(arow + k) +. pw +. setup -. sk in
          bw.endpoint_b.(erow + k) <- a;
          if a > bw.worst_b.(k) then begin
            bw.worst_b.(k) <- a;
            bw.worst_ep_b.(k) <- cid
          end;
          if a > bw.stage_delay_b.(srow + k) then begin
            bw.stage_delay_b.(srow + k) <- a;
            bw.stage_ep_b.(srow + k) <- cid
          end
        done
      | None ->
        for k = 0 to lanes - 1 do
          let a = arrival.(arow + k) +. pw +. setup -. sk in
          bw.endpoint_b.(erow + k) <- a;
          if a > bw.worst_b.(k) then begin
            bw.worst_b.(k) <- a;
            bw.worst_ep_b.(k) <- cid
          end
        done)
    t.flops;
  for k = 0 to lanes - 1 do
    if bw.worst_ep_b.(k) = -1 then bw.worst_b.(k) <- 0.0
  done

let bw_worst bw k = bw.worst_b.(k)
let bw_worst_endpoint bw k = bw.worst_ep_b.(k)

let bw_endpoint_delay t bw cid k =
  let slot = t.flop_slot.(cid) in
  if slot < 0 then 0.0 else bw.endpoint_b.((slot * bw.stride_b) + k)

let bw_stage_delay bw stage k =
  let srow = Stage.index stage * bw.stride_b in
  if bw.stage_ep_b.(srow + k) >= 0 then Some bw.stage_delay_b.(srow + k)
  else None

(* ------------------------------------------------------------------ *)
(* Incremental re-propagation.

   Consecutive analyses of the post-silicon settle loop differ only in
   the supply assignment of a few islands, so most cell delays are
   bitwise unchanged between calls.  The workspace keeps the previous
   delay vector and the previous arrivals; an analysis seeds a
   levelized worklist with the cells whose delay moved more than
   [bound] and re-propagates only their fan-out cones, pruning any cell
   whose recomputed arrival is bitwise unchanged.  With [bound = 0.]
   (the default) the result is bit-identical to [analyze_into]: every
   bitwise delay change is re-propagated through the same per-cell
   arithmetic, and the endpoint reduction is shared code.  When the
   seed set or the touched cone exceeds [max_frac] of the netlist the
   pass abandons incrementality and falls back to one full forward
   pass (counted in [sta_full_fallbacks_total]). *)

type inc_workspace = {
  iw_ws : workspace;
  prev : float array;      (* per cell: delays incorporated in arrivals *)
  mutable iw_valid : bool;
  bucket : int array;      (* comb worklist, bucketed by level (level_off) *)
  bucket_len : int array;  (* per level *)
  in_bucket : bool array;  (* per cell *)
}

let inc_workspace t =
  let n_cells = Netlist.cell_count t.nl in
  {
    iw_ws = workspace t;
    prev = Array.make (max 1 n_cells) 0.0;
    iw_valid = false;
    bucket = Array.make (max 1 (Array.length t.order)) 0;
    bucket_len = Array.make (max 1 (Array.length t.level_off - 1)) 0;
    in_bucket = Array.make (max 1 n_cells) false;
  }

let inc_ws iw = iw.iw_ws
let inc_invalidate iw = iw.iw_valid <- false

let analyze_incremental_into ?skew ?(bound = 0.0) ?(max_frac = 0.25) t iw
    ~delays =
  let nl = t.nl in
  let n_cells = Netlist.cell_count nl in
  let ws = iw.iw_ws in
  let full () =
    analyze_into ?skew t ws ~delays;
    Array.blit delays 0 iw.prev 0 n_cells;
    iw.iw_valid <- true
  in
  if not iw.iw_valid then full ()
  else begin
    let changed cid =
      if bound = 0.0 then delays.(cid) <> iw.prev.(cid)
      else Float.abs (delays.(cid) -. iw.prev.(cid)) > bound
    in
    let limit =
      max 1 (int_of_float (max_frac *. float_of_int (max 1 n_cells)))
    in
    let n_changed = ref 0 in
    for cid = 0 to n_cells - 1 do
      if changed cid then incr n_changed
    done;
    if !n_changed > limit then begin
      Metrics.incr m_fallbacks;
      full ()
    end
    else begin
      let skew_f = match skew with Some f -> f | None -> zero_skew in
      let arrival = ws.arrival_ws in
      let push cid =
        if not iw.in_bucket.(cid) then begin
          iw.in_bucket.(cid) <- true;
          let lv = t.level.(cid) in
          iw.bucket.(t.level_off.(lv) + iw.bucket_len.(lv)) <- cid;
          iw.bucket_len.(lv) <- iw.bucket_len.(lv) + 1
        end
      in
      let push_sinks nid =
        Array.iter
          (fun (sink, _) ->
            if not (is_seq nl.Netlist.cells.(sink)) then push sink)
          nl.Netlist.nets.(nid).Netlist.sinks
      in
      (* Seed: changed flops move their launch arrival, changed comb
         cells re-evaluate in place. *)
      Array.iter
        (fun cid ->
          if changed cid then begin
            iw.prev.(cid) <- delays.(cid);
            let a = delays.(cid) +. skew_f cid in
            let net = nl.Netlist.cells.(cid).Netlist.fanout in
            if a <> arrival.(net) then begin
              arrival.(net) <- a;
              push_sinks net
            end
          end)
        t.flops;
      Array.iter (fun cid -> if changed cid then push cid) t.order;
      let pin_wire = t.pin_wire and pin_off = t.pin_off in
      let n_levels = Array.length iw.bucket_len in
      let processed = ref 0 in
      let aborted = ref false in
      let lv = ref 0 in
      while (not !aborted) && !lv < n_levels do
        let base = t.level_off.(!lv) in
        (* Pushes triggered at this level land strictly deeper, so the
           bucket length is fixed while it drains. *)
        let len = iw.bucket_len.(!lv) in
        let j = ref 0 in
        while (not !aborted) && !j < len do
          let cid = iw.bucket.(base + !j) in
          iw.in_bucket.(cid) <- false;
          incr processed;
          if !processed > limit then aborted := true
          else begin
            iw.prev.(cid) <- delays.(cid);
            let c = nl.Netlist.cells.(cid) in
            let fanins = c.Netlist.fanins in
            let off = pin_off.(cid) in
            let acc = ref 0.0 in
            for pin = 0 to Array.length fanins - 1 do
              let a = arrival.(fanins.(pin)) +. pin_wire.(off + pin) in
              if a > !acc then acc := a
            done;
            let a = !acc +. delays.(cid) in
            if a <> arrival.(c.Netlist.fanout) then begin
              arrival.(c.Netlist.fanout) <- a;
              push_sinks c.Netlist.fanout
            end
          end;
          incr j
        done;
        iw.bucket_len.(!lv) <- 0;
        incr lv
      done;
      if !aborted then begin
        Array.fill iw.bucket_len 0 n_levels 0;
        Array.fill iw.in_bucket 0 n_cells false;
        Metrics.incr m_fallbacks;
        full ()
      end
      else begin
        Metrics.add m_inc_gates !processed;
        Metrics.incr m_analyzes;
        let skew = skew_f in
        endpoint_pass ~skew t ws
      end
    end
  end

let analyze ?skew t ~delays =
  let ws = workspace t in
  analyze_into ?skew t ws ~delays;
  let stage_worst =
    List.filter_map
      (fun s ->
        let si = Stage.index s in
        if ws.stage_endpoint_ws.(si) >= 0 then
          Some (s, ws.stage_delay_ws.(si), ws.stage_endpoint_ws.(si))
        else None)
      Stage.all
  in
  {
    arrival = ws.arrival_ws;
    endpoint_delay = ws.endpoint_delay_ws;
    worst = ws.worst_ws;
    worst_endpoint = ws.worst_endpoint_ws;
    stage_worst;
  }

let required_with t ~delays ~endpoint_required =
  let nl = t.nl in
  let req = Array.make (Netlist.net_count nl) infinity in
  (* Endpoints: data must arrive by the endpoint's budget - setup (minus
     the D-pin wire delay, charged on the net). *)
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      let budget = endpoint_required t.capture_of.(cid) in
      let r = budget -. t.setup -. t.pin_wire.(t.pin_off.(cid)) in
      if r < req.(d_pin) then req.(d_pin) <- r)
    t.flops;
  (* Reverse topological order. *)
  for k = Array.length t.order - 1 downto 0 do
    let cid = t.order.(k) in
    let c = nl.Netlist.cells.(cid) in
    let r_out = req.(c.Netlist.fanout) in
    if Float.is_finite r_out then begin
      let r_in = r_out -. delays.(cid) in
      let off = t.pin_off.(cid) in
      Array.iteri
        (fun pin nid ->
          let r = r_in -. t.pin_wire.(off + pin) in
          if r < req.(nid) then req.(nid) <- r)
        c.Netlist.fanins
    end
  done;
  req

let required t ~delays ~clock =
  required_with t ~delays ~endpoint_required:(fun _ -> clock)

let stage_delay result stage =
  List.find_map
    (fun (s, d, _) -> if Stage.equal s stage then Some d else None)
    result.stage_worst

let stage_endpoint_ids t stage = Array.copy t.stage_endpoints.(Stage.index stage)

let endpoints_of_stage t stage =
  Array.to_list t.stage_endpoints.(Stage.index stage)
