type drive = X0 | X1 | X2 | X4

type t = {
  kind : Kind.t;
  drive : drive;
  area : float;
  input_cap : float;
  d0 : float;
  drive_res : float;
  e_internal : float;
  leak : float;
}

type library = {
  name : string;
  process : Process.t;
  cells : t list;
  wire_cap_per_um : float;
  wire_delay_per_um : float;
  clk_to_q : float;
  setup : float;
}

let drive_factor = function X0 -> 0.5 | X1 -> 1.0 | X2 -> 2.0 | X4 -> 4.0
let drive_name = function X0 -> "X0" | X1 -> "X1" | X2 -> "X2" | X4 -> "X4"

let drive_of_name = function
  | "X0" -> Some X0
  | "X1" -> Some X1
  | "X2" -> Some X2
  | "X4" -> Some X4
  | _ -> None

let cell_name c = Kind.name c.kind ^ "_" ^ drive_name c.drive

(* Base characterisation at drive X1, nominal corner (1.0V, 65nm).
   Values are representative of a 65nm low-power library; absolute
   calibration (Table 1 totals) happens at the VEX-generator level. *)
let base k =
  (* area um^2, input cap fF, intrinsic delay ns, drive res ns/fF,
     internal energy fJ, leakage nW *)
  match (k : Kind.t) with
  | Inv -> (1.04, 1.0, 0.010, 0.0040, 0.6, 0.9)
  | Buf -> (1.56, 1.1, 0.022, 0.0038, 1.0, 1.2)
  | Nand2 -> (1.30, 1.2, 0.014, 0.0044, 0.9, 1.1)
  | Nand3 -> (1.82, 1.3, 0.019, 0.0050, 1.2, 1.4)
  | Nor2 -> (1.30, 1.2, 0.016, 0.0048, 0.9, 1.1)
  | Nor3 -> (1.82, 1.3, 0.024, 0.0056, 1.2, 1.4)
  | And2 -> (1.56, 1.1, 0.024, 0.0040, 1.1, 1.3)
  | Or2 -> (1.56, 1.1, 0.026, 0.0042, 1.1, 1.3)
  | Xor2 -> (2.60, 1.8, 0.032, 0.0050, 1.9, 1.9)
  | Xnor2 -> (2.60, 1.8, 0.032, 0.0050, 1.9, 1.9)
  | Aoi21 -> (1.82, 1.3, 0.020, 0.0052, 1.2, 1.4)
  | Oai21 -> (1.82, 1.3, 0.020, 0.0052, 1.2, 1.4)
  | Mux2 -> (2.60, 1.5, 0.030, 0.0048, 1.8, 1.9)
  | Dff -> (6.24, 1.4, 0.0, 0.0036, 4.2, 3.8)
  | Ls -> (5.20, 1.6, 0.046, 0.0040, 1.4, 2.0)
  | Tiehi -> (0.52, 0.0, 0.0, 0.0, 0.0, 0.3)
  | Tielo -> (0.52, 0.0, 0.0, 0.0, 0.0, 0.3)

let make kind drive =
  let area, cap, d0, res, e_int, leak = base kind in
  (* Leakage calibrated so the nominal design point shows ~1% leakage
     of total power, as the paper's low-power 65nm library does. *)
  let leak = leak *. 1.6 in
  let f = drive_factor drive in
  (* Upsizing grows area/cap/energy/leakage and lowers output resistance;
     intrinsic delay is roughly drive-independent. *)
  let area_growth = 1.0 +. (0.55 *. (f -. 1.0)) in
  {
    kind;
    drive;
    area = area *. area_growth;
    input_cap = cap *. f;
    d0;
    drive_res = res /. f;
    e_internal = e_int *. (1.0 +. (0.6 *. (f -. 1.0)));
    leak = leak *. f;
  }

let default_library =
  let drives = [ X0; X1; X2; X4 ] in
  let cells =
    List.concat_map (fun k -> List.map (fun d -> make k d) drives) Kind.all
  in
  {
    name = "pvtol65lp";
    process = Process.default;
    cells;
    wire_cap_per_um = 0.20;
    wire_delay_per_um = 0.00035;
    clk_to_q = 0.085;
    setup = 0.040;
  }

let find lib kind drive =
  let matches c = c.kind = kind && c.drive = drive in
  match List.find_opt matches lib.cells with
  | Some c -> c
  | None -> raise Not_found

let find_by_name lib name =
  List.find_opt (fun c -> String.equal (cell_name c) name) lib.cells

let delay lib cell ~vdd ~lgate_nm ~load_ff =
  let scale = Process.delay_scale lib.process ~vdd ~lgate_nm in
  (cell.d0 +. (cell.drive_res *. load_ff)) *. scale

let leakage_nw lib cell ~vdd ~lgate_nm =
  cell.leak *. Process.leakage_scale lib.process ~vdd ~lgate_nm

let switching_energy_fj lib cell ~vdd ~load_ff =
  let v2 = (vdd /. lib.process.Process.vdd_low) ** 2.0 in
  (cell.e_internal *. v2) +. (0.5 *. load_ff *. vdd *. vdd)
