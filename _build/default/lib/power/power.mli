(** Power analysis (the PrimePower step of the paper's flow).

    Per cell:
    - switching power: toggle rate x frequency x (internal energy at
      the cell's Vdd + 0.5 C_load Vdd^2), with the load from placed
      wire capacitance plus sink pin capacitances;
    - clock power for sequential cells: every cycle charges the clock
      pin regardless of data activity (this is what makes the fully
      synthesized register file dominate total power, Table 1);
    - leakage: library leakage scaled by the DIBL/Vdd model at the
      cell's effective gate length.

    All knobs that the voltage-island experiments vary are function
    parameters: per-cell supply, per-cell Lgate, activity. *)

open Pvtol_netlist

type breakdown = {
  switching_mw : float;
  clock_mw : float;
  leakage_mw : float;
}

type report = {
  frequency_mhz : float;
  total : breakdown;
  by_stage : (Stage.t * breakdown) list;
  per_cell : breakdown array;
      (** indexed by cell id — lets callers attribute power to any cell
          subset (e.g. the level shifters of Table 2) *)
}

val total_mw : breakdown -> float
val zero : breakdown
val add : breakdown -> breakdown -> breakdown

val analyze :
  ?lgate_nm:(Netlist.cell_id -> float) ->
  vdd:(Netlist.cell_id -> float) ->
  activity:Gatesim.activity ->
  wire_length:(Netlist.net_id -> float) ->
  clock_ns:float ->
  Netlist.t ->
  report
(** [lgate_nm] defaults to the nominal gate length everywhere. *)

val sum_cells : report -> (Netlist.cell_id -> bool) -> breakdown
(** Total over the cells selected by the predicate. *)

val stage_breakdown : report -> Stage.t -> breakdown option

val pp : Format.formatter -> report -> unit
