test/simtool.ml: Array List Netlist Printf Pvtol_netlist Pvtol_stdcell Pvtol_vex Queue Seq
