lib/place/density.mli: Placement
