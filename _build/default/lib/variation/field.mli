(** Across-field systematic Lgate variation (paper §4.1, Eq. 1-2).

    Systematic within-field variability is modelled as a second-order
    polynomial of the exposure-field coordinates,

    {[ f(x, y) = a x^2 + b y^2 + c x + d y + e xy + intercept ]}

    with coefficients scaled — as the paper scales the measured 130nm
    coefficients of Cain's thesis — so the maximum systematic deviation
    over the field equals a target fraction of nominal Lgate (±5.5% at
    the 65nm node).  The slow corner (largest Lgate) is the field's
    lower-left, matching Fig. 2. *)

type t = {
  a : float;
  b : float;
  c : float;
  d : float;
  e : float;
  intercept : float;
  field_mm : float;     (** exposure-field edge, 28 mm *)
  l_nominal_nm : float;
}

val default : t
(** 28 x 28 mm field, 65 nm nominal, calibrated to ±5.5%. *)

val create :
  ?field_mm:float -> ?calibrate_mm:float ->
  ?shape:(float * float * float * float * float) ->
  l_nominal_nm:float -> max_dev_frac:float -> unit -> t
(** [create ~l_nominal_nm ~max_dev_frac ()] scales the raw polynomial
    [shape] (defaults to a diagonal bowl with curvature and a cross
    term) so that [max |f - l_nominal| = max_dev_frac * l_nominal]
    over the square region of edge [calibrate_mm] (default: the chip
    edge, 14 mm, so the chip map of Fig. 2 spans the quoted ±5.5%). *)

val systematic_nm : t -> x_mm:float -> y_mm:float -> float
(** Systematic Lgate at a field coordinate, in nm (clamped to the
    field). *)

val deviation_frac : t -> x_mm:float -> y_mm:float -> float
(** (systematic - nominal) / nominal. *)

val extremes : t -> float * float
(** (min, max) systematic Lgate over the field (grid-sampled). *)

val render_map : ?cells:int -> t -> chip_mm:float -> string
(** ASCII rendering of the Lgate map over a [chip_mm]-sized chip at the
    field origin — the Fig. 2 reproduction. *)
