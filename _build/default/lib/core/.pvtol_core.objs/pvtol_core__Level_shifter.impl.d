lib/core/level_shifter.ml: Array Hashtbl Island List Netlist Option Printf Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util
