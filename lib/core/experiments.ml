module Sg = Stage
open Pvtol_netlist
module Table = Pvtol_util.Table
module Histo = Pvtol_util.Histo
module Stats = Pvtol_util.Stats
module Field = Pvtol_variation.Field
module Position = Pvtol_variation.Position
module MC = Pvtol_ssta.Monte_carlo
module Scenario = Pvtol_ssta.Scenario
module Sensors = Pvtol_ssta.Sensors
module Sta = Pvtol_timing.Sta
module Paths = Pvtol_timing.Paths
module Power = Pvtol_power.Power
module Placement = Pvtol_place.Placement
module Density = Pvtol_place.Density
module Geom = Pvtol_util.Geom

(* A context is just a flow handle: the stage graph memoizes every
   intermediate (including both slicing variants), so nothing needs to
   be precomputed or re-threaded by hand here. *)
type context = Flow.t

let make_context ?config () = Flow.prepare ?config ()
let vertical t = Flow.variant t Island.Vertical
let horizontal t = Flow.variant t Island.Horizontal

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "%s\n%s\n" title bar

(* ------------------------------------------------------------------ *)

let fig2_lgate_map () =
  let field = Field.default in
  heading "Fig. 2 — Systematic-variation-aware Lgate map"
  ^ Field.render_map field ~chip_mm:Position.chip_mm
  ^ Printf.sprintf
      "Named die positions on the chip diagonal: %s\n"
      (String.concat ", "
         (List.map
            (fun (p : Position.t) ->
              Printf.sprintf "%s=(%.1f, %.1f)mm" p.Position.label
                p.Position.origin_x_mm p.Position.origin_y_mm)
            Position.named))

(* ------------------------------------------------------------------ *)

let table1_breakdown (t : Flow.t) =
  let nl = Flow.netlist t in
  let clock = Flow.clock t in
  let power = Flow.power_at t ~position:Position.point_d Flow.Baseline_low in
  let total_area = Netlist.area nl in
  let total_mw = Power.total_mw power.Power.total in
  let tbl = Table.create ~header:[ ""; "Area"; "Power" ] in
  List.iter
    (fun stage ->
      let area = Netlist.area_of_stage nl stage in
      let p =
        match Power.stage_breakdown power stage with
        | Some b -> Power.total_mw b
        | None -> 0.0
      in
      if area > 0.0 then
        Table.add_row tbl
          [
            Stage.name stage;
            Table.pcell (area /. total_area);
            Table.pcell (p /. total_mw);
          ])
    [ Stage.Reg_file; Stage.Execute; Stage.Decode; Stage.Writeback;
      Stage.Fetch; Stage.Pipe_regs ];
  let r = Flow.nominal t in
  let crit_text =
    match Paths.critical (Flow.sta t) ~delays:(Sta.nominal_delays (Flow.sta t)) r with
    | Some path ->
      let total_hops = List.length path.Paths.hops in
      let shares = Paths.stage_share (Flow.sta t) path in
      String.concat ", "
        (List.filteri (fun i _ -> i < 3) shares
        |> List.map (fun (u, n) ->
               Printf.sprintf "%s (%.0f%%)" u
                 (100.0 *. float_of_int n /. float_of_int total_hops)))
    | None -> "n/a"
  in
  heading "Table 1 — Area and power breakdown for the VEX architecture"
  ^ Table.render tbl
  ^ Printf.sprintf
      "\nImplementation summary (§4.2):\n\
      \  cells: %d   nets: %d\n\
      \  area: %.0f um^2   row utilization target: %.0f%%\n\
      \  fmax: %.1f MHz (clock %.3f ns)\n\
      \  total power (FIR benchmark): %.2f mW   leakage share: %.2f%%\n\
      \  critical path through: %s\n"
      (Netlist.cell_count nl) (Netlist.net_count nl) total_area
      (100.0
      *. (Flow.placement t).Placement.floorplan.Pvtol_place.Floorplan.utilization)
      (1000.0 /. clock) clock total_mw
      (100.0 *. power.Power.total.Power.leakage_mw /. total_mw)
      crit_text

(* ------------------------------------------------------------------ *)

let fig3_distributions (t : Flow.t) =
  let mc = Flow.mc t Position.point_a in
  let clock = Flow.clock t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (heading "Fig. 3 — Critical-path slack distribution per stage @ point A");
  List.iter
    (fun (ss : MC.stage_stats) ->
      if ss.MC.stage <> Stage.Fetch then begin
        let slacks = Array.map (fun d -> clock -. d) ss.MC.samples in
        let s = Stats.summarize slacks in
        Buffer.add_string buf
          (Printf.sprintf
             "%s: slack mean %+.3f ns, sigma %.4f ns, 3-sigma worst %+.3f ns\n"
             (Stage.name ss.MC.stage) s.Stats.mean s.Stats.stddev
             (s.Stats.mean -. (3.0 *. s.Stats.stddev)));
        Buffer.add_string buf
          (Printf.sprintf
             "  normal fit mu=%.3f sigma=%.4f; chi2=%.2f (dof %d, crit %.2f) => %s\n"
             ss.MC.fit.Pvtol_util.Fit.mu ss.MC.fit.Pvtol_util.Fit.sigma
             ss.MC.gof.Pvtol_util.Fit.statistic ss.MC.gof.Pvtol_util.Fit.dof
             ss.MC.gof.Pvtol_util.Fit.critical
             (if ss.MC.gof.Pvtol_util.Fit.accepted then
                "normality accepted at 95%"
              else "normality rejected at 95%"));
        let h = Histo.of_samples ~bins:13 slacks in
        Buffer.add_string buf (Histo.render ~width:44 h)
      end)
    mc.MC.stages;
  Buffer.add_string buf
    "(vertical axis: slack bins, ns; negative slack = violation)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let scenarios_summary (t : Flow.t) =
  let scenarios = Flow.scenarios t in
  let clock = Flow.clock t in
  let tbl =
    Table.create
      ~header:[ "Position"; "Scenario"; "Decode"; "Execute"; "Write Back" ]
  in
  List.iter
    (fun (sc : Scenario.t) ->
      let cell stage =
        match
          List.find_opt
            (fun (s : Scenario.stage_slack) -> Stage.equal s.Scenario.stage stage)
            sc.Scenario.stage_slacks
        with
        | Some s ->
          Printf.sprintf "%+.3f%s" s.Scenario.slack
            (if s.Scenario.violates then " !" else "")
        | None -> "-"
      in
      Table.add_row tbl
        [
          sc.Scenario.position.Position.label;
          string_of_int sc.Scenario.index;
          cell Stage.Decode;
          cell Stage.Execute;
          cell Stage.Writeback;
        ])
    scenarios;
  let mc_a = Flow.mc t Position.point_a in
  let worst_ex =
    match MC.stage_stats mc_a Stage.Execute with
    | Some ss -> MC.three_sigma_delay ss
    | None -> clock
  in
  heading "§4.4 — Timing-violation scenarios along the chip diagonal"
  ^ Table.render tbl
  ^ Printf.sprintf
      "\n('!' = 3-sigma violation; slack in ns vs the %.3f ns clock)\n\
       Worst-case frequency degradation @ A: %.1f%% (paper: ~10%%)\n"
      clock
      (100.0 *. (worst_ex -. clock) /. clock)

(* ------------------------------------------------------------------ *)

let razor_sites (t : Flow.t) =
  let mc = Flow.mc t Position.point_a in
  let plan = Sensors.select mc (Flow.netlist t) in
  let tbl = Table.create ~header:[ "Stage"; "Monitored flops" ] in
  List.iter
    (fun (s, n) -> Table.add_row tbl [ Stage.name s; string_of_int n ])
    plan.Sensors.per_stage;
  heading "§4.4 — Razor sensing sites (paths critical under variation @ A)"
  ^ Table.render tbl
  ^ Printf.sprintf
      "\nSensor area overhead: %.0f um^2 (%.2f%% of core)\n\
       (paper: 12 monitored paths in the execute stage at point A)\n"
      plan.Sensors.area_overhead
      (100.0 *. plan.Sensors.area_overhead_frac)

(* ------------------------------------------------------------------ *)

let island_text (v : Flow.variant) =
  let part = v.Flow.slicing.Slicing.partition in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s slicing, growing from the %s side (density-driven):\n"
       (String.capitalize_ascii (Island.direction_name v.Flow.direction))
       (Density.side_name part.Island.side));
  Array.iter
    (fun (isl : Island.t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  VI%d: region (%.0f,%.0f)-(%.0f,%.0f) um, %.1f%% of core, %d cells\n"
           isl.Island.index isl.Island.region.Geom.llx isl.Island.region.Geom.lly
           isl.Island.region.Geom.urx isl.Island.region.Geom.ury
           (100.0 *. Island.area_fraction part isl.Island.index)
           (Array.length isl.Island.cells)))
    part.Island.islands;
  Buffer.contents buf

let fig4_islands ctx =
  heading "Fig. 4 — Voltage-island generation"
  ^ island_text (vertical ctx) ^ island_text (horizontal ctx)

(* ------------------------------------------------------------------ *)

let ls_power_share (t : Flow.t) (v : Flow.variant) ~raised ~position =
  let report =
    Flow.power_at t ~position (Flow.Islands (v.Flow.direction, raised))
  in
  let first = v.Flow.shifted.Level_shifter.first_ls in
  let ls = Power.sum_cells report (fun cid -> cid >= first) in
  Power.total_mw ls /. Power.total_mw report.Power.total

let table2_level_shifters ctx =
  let tbl = Table.create ~header:[ ""; "Horizontal Slicing"; "Vertical Slicing" ] in
  let h = horizontal ctx and v = vertical ctx in
  let row name f = Table.add_row tbl [ name; f h; f v ] in
  row "Number of LS" (fun x ->
      string_of_int x.Flow.shifted.Level_shifter.count);
  row "LS area" (fun x ->
      Table.pcell x.Flow.shifted.Level_shifter.ls_area_frac);
  List.iter
    (fun (raised, pos, label) ->
      row label (fun x ->
          Table.pcell (ls_power_share ctx x ~raised ~position:pos)))
    [
      (3, Position.point_a, "LS tot. power (point A)");
      (2, Position.point_b, "LS tot. power (point B)");
      (1, Position.point_c, "LS tot. power (point C)");
    ];
  row "Post-LS perf. degradation" (fun x -> Table.pcell x.Flow.degradation);
  heading "Table 2 — Level-shifter overhead w.r.t. processor area/power"
  ^ Table.render tbl

(* ------------------------------------------------------------------ *)

let power_configs _ctx =
  (* (label, scenario position, configuration) in Fig. 5 order. *)
  [
    ("Chip-wide high Vdd", Position.point_a, Flow.Chip_wide_high);
    ("3 VI HOR @ A", Position.point_a, Flow.Islands (Island.Horizontal, 3));
    ("3 VI VER @ A", Position.point_a, Flow.Islands (Island.Vertical, 3));
    ("2 VI HOR @ B", Position.point_b, Flow.Islands (Island.Horizontal, 2));
    ("2 VI VER @ B", Position.point_b, Flow.Islands (Island.Vertical, 2));
    ("1 VI HOR @ C", Position.point_c, Flow.Islands (Island.Horizontal, 1));
    ("1 VI VER @ C", Position.point_c, Flow.Islands (Island.Vertical, 1));
  ]

let fig5_total_power ctx =
  let t = ctx in
  let reference =
    Power.total_mw (Flow.power_at t ~position:Position.point_a Flow.Chip_wide_high).Power.total
  in
  let tbl =
    Table.create ~header:[ "Configuration"; "Total power (mW)"; "Normalized"; "Saving" ]
  in
  List.iter
    (fun (label, pos, cfg) ->
      let p = Power.total_mw (Flow.power_at t ~position:pos cfg).Power.total in
      Table.add_row tbl
        [
          label;
          Table.fcell ~decimals:2 p;
          Table.fcell ~decimals:3 (p /. reference);
          Table.pcell ~decimals:1 (1.0 -. (p /. reference));
        ])
    (power_configs ctx);
  let bars =
    List.map
      (fun (label, pos, cfg) ->
        (label, Power.total_mw (Flow.power_at t ~position:pos cfg).Power.total /. reference))
      (power_configs ctx)
  in
  heading "Fig. 5 — Total power per timing-violation scenario"
  ^ Table.render tbl ^ "\n"
  ^ Table.bar_chart ~unit_label:"x" bars
  ^ "\n(all configurations at the nominal fmax, as in §5; the chip-wide\n\
     design carries no level shifters)\n"

let fig6_leakage ctx =
  let t = ctx in
  let leak cfg pos =
    (Flow.power_at t ~position:pos cfg).Power.total.Power.leakage_mw
  in
  let reference = leak Flow.Chip_wide_high Position.point_a in
  let tbl =
    Table.create ~header:[ "Configuration"; "Leakage (mW)"; "Normalized" ]
  in
  List.iter
    (fun (label, pos, cfg) ->
      let l = leak cfg pos in
      Table.add_row tbl
        [ label; Table.fcell ~decimals:4 l; Table.fcell ~decimals:3 (l /. reference) ])
    (power_configs ctx);
  let bars =
    List.map
      (fun (label, pos, cfg) -> (label, leak cfg pos /. reference))
      (power_configs ctx)
  in
  heading "Fig. 6 — Leakage power per timing-violation scenario"
  ^ Table.render tbl ^ "\n"
  ^ Table.bar_chart ~unit_label:"x" bars

(* ------------------------------------------------------------------ *)

let energy_note ctx =
  let t = ctx in
  let chip =
    Power.total_mw (Flow.power_at t ~position:Position.point_a Flow.Chip_wide_high).Power.total
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (heading "§5 — Energy once the VI slowdown is accounted for");
  List.iter
    (fun (v : Flow.variant) ->
      let p =
        Power.total_mw
          (Flow.power_at t ~position:Position.point_a
             (Flow.Islands (v.Flow.direction, 3)))
            .Power.total
      in
      let slow = 1.0 +. Float.max 0.0 v.Flow.degradation in
      Buffer.add_string buf
        (Printf.sprintf
           "  3 VI %-10s power ratio %.3f, slowdown %.1f%% => energy ratio %.3f\n"
           (Island.direction_name v.Flow.direction) (p /. chip)
           (100.0 *. (slow -. 1.0))
           (p /. chip *. slow)))
    [ vertical ctx; horizontal ctx ];
  Buffer.add_string buf
    "(energy ratios track the power ratios, as the paper observes)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let compensation_check ctx =
  let t = ctx in
  let clock = Flow.clock t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (heading "Validation — Monte Carlo with islands raised (per scenario)");
  List.iter
    (fun (v : Flow.variant) ->
      let part = v.Flow.slicing.Slicing.partition in
      let domains = Island.domains part (Flow.placement t) in
      List.iter
        (fun (raised, pos) ->
          let vdd =
            Island.vdd_assignment part ~domains ~raised
              ~lib:(Flow.netlist t).Netlist.lib
          in
          let mc =
            MC.run
              ~config:{ MC.samples = 150; seed = (Flow.config t).Flow.mc_seed + 9 }
              ~vdd ~sampler:(Flow.sampler t) ~sta:(Flow.sta t)
              ~placement:(Flow.placement t) ~position:pos ()
          in
          let worst_residual =
            List.fold_left
              (fun acc (ss : MC.stage_stats) ->
                if ss.MC.stage = Stage.Fetch then acc
                else Float.max acc (MC.three_sigma_delay ss -. clock))
              neg_infinity mc.MC.stages
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  %s %d VI @ %s: worst stage 3-sigma residual %+.3f ns (%s)\n"
               (Island.direction_name v.Flow.direction) raised
               pos.Position.label worst_residual
               (if worst_residual <= 0.01 *. clock then "compensated"
                else "NOT compensated")))
        [ (1, Position.point_c); (2, Position.point_b); (3, Position.point_a) ])
    [ vertical ctx; horizontal ctx ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let grouping_ablation ctx =
  let t = ctx in
  let tbl =
    Table.create
      ~header:
        [ "Strategy"; "High-Vdd cells (VI3)"; "Level shifters"; "Power domains";
          "Power @ 3 raised" ]
  in
  let process = (Flow.netlist t).Netlist.lib.Pvtol_stdcell.Cell.process in
  let low = process.Pvtol_stdcell.Process.vdd_low in
  let high = process.Pvtol_stdcell.Process.vdd_high in
  ignore low;
  (* Strategy power comparison on the unmodified netlist (no shifters),
     so only the raised-capacitance difference shows. *)
  let power_of domains =
    Power.total_mw
      (Power.analyze
         ~vdd:(fun cid -> if domains.(cid) <= 3 then high else low)
         ~activity:(Flow.activity t)
         ~wire_length:(fun nid -> Placement.wire_length (Flow.placement t) nid)
         ~clock_ns:(Flow.clock t) (Flow.netlist t))
        .Power.total
  in
  let row_of_domains name domains checks =
    let n = Array.length domains in
    let raised3 = Array.fold_left (fun acc d -> if d <= 3 then acc + 1 else acc) 0 domains in
    let ls = Logic_grouping.count_crossings (Flow.netlist t) ~domains in
    let frag = Logic_grouping.fragmentation (Flow.placement t) ~domains ~raised:3 in
    Table.add_row tbl
      [
        name;
        Printf.sprintf "%d (%.0f%%)" raised3 (100.0 *. float_of_int raised3 /. float_of_int n);
        string_of_int ls;
        string_of_int frag;
        Printf.sprintf "%.2f mW" (power_of domains);
      ];
    ignore checks
  in
  List.iter
    (fun (name, v) ->
      let part = v.Flow.slicing.Slicing.partition in
      let domains = Island.domains part (Flow.placement t) in
      row_of_domains name domains v.Flow.slicing.Slicing.checks)
    [ ("vertical slicing", vertical ctx); ("horizontal slicing", horizontal ctx) ];
  (* Quadrant growth: the "further cell grouping strategies" future
     work. *)
  (try
     let q = Flow.islands t Island.Quadrant in
     let domains = Island.domains q.Slicing.partition (Flow.placement t) in
     row_of_domains "quadrant growth" domains q.Slicing.checks
   with Sg.Stage_error e ->
     Table.add_row tbl [ "quadrant growth"; "-"; "-"; e.Sg.message ]);
  (* Logic-based selection: the baseline of the paper's reference [12]. *)
  (match Flow.logic_grouping t with
  | Ok lg ->
    row_of_domains "logic-based (units)" lg.Logic_grouping.domains
      lg.Logic_grouping.checks
  | Error m -> Table.add_row tbl [ "logic-based (units)"; "-"; "-"; m ]);
  heading "Ablation — cell-grouping strategy (section 3's argument)"
  ^ Table.render tbl
  ^ "\n('Power domains' counts physically disjoint high-Vdd patches on a\n\
     density grid — each would need its own supply routing.  Slab and\n\
     quadrant islands are contiguous by construction.  The logic-based\n\
     baseline's shifter demand and contiguity depend entirely on how\n\
     unit-clustered the placement happens to be — here the global placer\n\
     seeds unit clusters, so it fares well; under the interleaved\n\
     performance-driven placements the paper assumes, the same selection\n\
     scatters across the die.  That placement-dependence, which the\n\
     geometric slices do not have, is exactly the predictability argument\n\
     of §3.)\n"

let clock_tree_note ctx =
  let t = ctx in
  let module CT = Pvtol_timing.Clock_tree in
  let sta = Flow.sta t in
  let clock = Flow.clock t in
  let flops = Sta.flop_ids sta in
  let ct = CT.synthesize (Flow.placement t) ~flops in
  let delays = Sta.nominal_delays sta in
  let r0 = Flow.nominal t in
  let r1 = Sta.analyze ~skew:(CT.skew_of ct) sta ~delays in
  heading "Clock-tree synthesis (ideal-clock assumption check)"
  ^ Printf.sprintf
      "  %d flops served by %d buffers over %d levels, %.0f um of clock wire\n\
      \  global skew: %.4f ns = %.1f%% of the %.3f ns clock\n\
      \  nominal worst path: %.3f ns ideal clock vs %.3f ns with tree skew (%+.2f%%)\n\
       (the flow analyses timing with an ideal clock, as the paper's\n\
       PrimeTime setup does; the synthesized tree's skew shifts the\n\
       critical path by well under the variation effects under study)\n"
      (Array.length flops) ct.CT.n_buffers ct.CT.levels ct.CT.wirelength
      ct.CT.skew
      (100.0 *. ct.CT.skew /. clock)
      clock r0.Sta.worst r1.Sta.worst
      (100.0 *. (r1.Sta.worst -. r0.Sta.worst) /. r0.Sta.worst)

let ssta_crosscheck ctx =
  let t = ctx in
  let module An = Pvtol_ssta.Analytic in
  let tbl =
    Table.create
      ~header:
        [ "Position / stage"; "MC mean"; "MC 3-sigma"; "Analytic mean";
          "Analytic 3-sigma" ]
  in
  List.iter
    (fun pos ->
      let mc = Flow.mc t pos in
      let systematic =
        Pvtol_variation.Sampler.systematic_lgates (Flow.sampler t)
          (Flow.placement t) pos
      in
      let an =
        An.analyze ~sta:(Flow.sta t) ~sampler:(Flow.sampler t) ~systematic ()
      in
      List.iter
        (fun s ->
          match (MC.stage_stats mc s, List.assoc_opt s an.An.stage_delay) with
          | Some ss, Some g ->
            Table.add_row tbl
              [
                Printf.sprintf "%s %s" pos.Position.label (Stage.name s);
                Table.fcell ss.MC.summary.Pvtol_util.Stats.mean;
                Table.fcell (MC.three_sigma_delay ss);
                Table.fcell g.An.mean;
                Table.fcell (An.three_sigma g);
              ]
          | _ -> ())
        [ Stage.Decode; Stage.Execute; Stage.Writeback ])
    [ Position.point_a; Position.point_c ];
  heading "Validation — analytic (Clark) SSTA vs Monte Carlo"
  ^ Table.render tbl
  ^ "\n(single-traversal moment propagation with Clark's max\n\
     approximation; agreement within a fraction of a percent confirms\n\
     both engines and lets island-growth checks run hundreds of times\n\
     faster than a full Monte Carlo would)\n"

let alternatives_comparison ctx =
  let t = ctx in
  let clock = Flow.clock t in
  let process = (Flow.netlist t).Netlist.lib.Pvtol_stdcell.Cell.process in
  let mc = Flow.mc t Position.point_a in
  let three_sigma s =
    Option.map MC.three_sigma_delay (MC.stage_stats mc s)
  in
  let worst =
    List.fold_left
      (fun acc s -> match three_sigma s with Some d -> Float.max acc d | None -> acc)
      0.0 [ Stage.Decode; Stage.Execute; Stage.Writeback ]
  in
  let p_low =
    Power.total_mw (Flow.power_at t Flow.Baseline_low).Power.total
  in
  let p_chip =
    Power.total_mw (Flow.power_at t Flow.Chip_wide_high).Power.total
  in
  let p_vi =
    Power.total_mw
      (Flow.power_at t (Flow.Islands (Island.Vertical, 3))).Power.total
  in
  (* Clock-skew retiming: optimal skews against each die's 3-sigma
     stage delays. *)
  let retime = Retiming.bound ~delay_of:three_sigma in
  (* Adaptive body bias matching the chip-wide AVS speed-up. *)
  let speedup = worst /. clock in
  let abb_text =
    try
      let vbb = Pvtol_stdcell.Process.abb_for_speedup process ~speedup in
      let leak_x =
        Pvtol_stdcell.Process.abb_leakage_scale process ~vbb
          ~lgate_nm:process.Pvtol_stdcell.Process.l_nominal_nm
      in
      let low_report = Flow.power_at t Flow.Baseline_low in
      let p_abb =
        p_low
        +. (low_report.Power.total.Power.leakage_mw *. (leak_x -. 1.0))
      in
      Printf.sprintf
        "  chip-wide ABB        f = 100%%   %.2f mW  (needs Vbb = %.2f V forward; leakage x%.1f)\n"
        p_abb vbb leak_x
    with Invalid_argument _ ->
      "  chip-wide ABB        infeasible within 1V forward bias\n"
  in
  heading "§1 — compensation alternatives at the worst-case die (point A)"
  ^ Printf.sprintf
      "nominal clock %.3f ns; 3-sigma worst stage delay %.3f ns (%.1f%% slow)\n\n"
      clock worst (100.0 *. (speedup -. 1.0))
  ^ Printf.sprintf
      "  guard-banding        f = %.1f%% of nominal   %.2f mW  (margins added at design time)\n"
      (100.0 /. speedup) p_low
  ^ Printf.sprintf
      "  skew retiming        f = %.1f%% of nominal   %.2f mW  (binding loop: %s)\n"
      (100.0 *. clock /. retime.Retiming.t_retimed)
      p_low
      (String.concat "->" (List.map Stage.name retime.Retiming.binding_loop))
  ^ Printf.sprintf "  chip-wide AVS        f = 100%%   %.2f mW\n" p_chip
  ^ abb_text
  ^ Printf.sprintf "  voltage islands (3)  f = 100%%   %.2f mW\n" p_vi
  ^ "\nRetiming buys almost nothing here: systematic variation slows every\n\
     stage together and the execute forwarding loop forbids borrowing —\n\
     the paper's §1 argument.  ABB matches AVS's frequency but pays an\n\
     exponential leakage multiplier (mild in absolute terms only because\n\
     this library is low-power); the islands trade a small shifter\n\
     overhead for not raising the whole chip.\n"

let routing_note ctx =
  let t = ctx in
  let module Router = Pvtol_place.Router in
  let tbl =
    Table.create
      ~header:
        [ "Design"; "Routed wire"; "Detour vs HPWL"; "Mean edge util";
          "Max edge util"; "Overflowed edges" ]
  in
  let row name placement =
    let r = Router.route placement in
    Table.add_row tbl
      [
        name;
        Printf.sprintf "%.2e um" r.Router.total_um;
        Printf.sprintf "x%.2f" (r.Router.total_um /. r.Router.total_hpwl_um);
        Table.pcell ~decimals:0 r.Router.mean_utilization;
        Table.pcell ~decimals:0 r.Router.max_utilization;
        string_of_int r.Router.overflowed_edges;
      ];
    r
  in
  let base = row "placed (pre-LS)" (Flow.placement t) in
  let _shifted =
    row "with level shifters (vertical)"
      (vertical ctx).Flow.shifted.Level_shifter.placement
  in
  (* Timing with routed lengths instead of the corrected-HPWL estimate. *)
  let sta_routed =
    Sta.build (Flow.netlist t)
      ~wire_length:(Router.wire_length base)
      ~capture:(Flow.design t).Pvtol_vex.Vex_core.capture_stage
  in
  let r = Sta.analyze sta_routed ~delays:(Sta.nominal_delays sta_routed) in
  heading "Extension — global routing (estimate vs routed)"
  ^ Table.render tbl
  ^ Printf.sprintf
      "\nNominal worst path with routed wire lengths: %.3f ns vs %.3f ns \
       estimated (%+.1f%%).\n"
      r.Sta.worst (Flow.clock t)
      (100.0 *. (r.Sta.worst -. Flow.clock t) /. Flow.clock t)

let power_integrity ctx =
  let t = ctx in
  let high =
    (Flow.netlist t).Netlist.lib.Pvtol_stdcell.Cell.process
      .Pvtol_stdcell.Process.vdd_high
  in
  (* Per-cell current draw at the worst-case (all-raised) configuration,
     on the unmodified netlist so every strategy sees the same load. *)
  let report =
    Power.analyze
      ~vdd:(fun _ -> high)
      ~activity:(Flow.activity t)
      ~wire_length:(fun nid -> Placement.wire_length (Flow.placement t) nid)
      ~clock_ns:(Flow.clock t) (Flow.netlist t)
  in
  let current_ma cid =
    Power.total_mw report.Power.per_cell.(cid) /. high
  in
  let tbl =
    Table.create
      ~header:
        [ "High-Vdd domain (3 raised)"; "Cells"; "Rail bins"; "Pad bins";
          "Max IR drop"; "Unreachable" ]
  in
  let n_cells = Netlist.cell_count (Flow.netlist t) in
  let row name member =
    let r =
      Power_grid.analyze ~placement:(Flow.placement t) ~member ~current_ma
        ~vdd:high ()
    in
    let members = ref 0 in
    for cid = 0 to n_cells - 1 do
      if member cid then incr members
    done;
    Table.add_row tbl
      [
        name;
        Table.pcell ~decimals:0 (float_of_int !members /. float_of_int n_cells);
        string_of_int (r.Power_grid.supplied_bins + r.Power_grid.unreachable_bins);
        string_of_int r.Power_grid.pad_bins;
        Printf.sprintf "%.1f mV" r.Power_grid.max_drop_mv;
        string_of_int r.Power_grid.unreachable_bins;
      ]
  in
  List.iter
    (fun (name, v) ->
      let domains =
        Island.domains v.Flow.slicing.Slicing.partition (Flow.placement t)
      in
      row name (fun cid -> domains.(cid) <= 3))
    [ ("vertical slicing", vertical ctx); ("horizontal slicing", horizontal ctx) ];
  (match Flow.logic_grouping t with
  | Ok lg ->
    row "logic-based (units)" (fun cid -> lg.Logic_grouping.domains.(cid) <= 3)
  | Error _ -> ());
  (* A deliberately scattered sparse selection, as a bound: few cells,
     yet rails must reach almost every bin. *)
  row "scattered (synthetic)" (fun cid -> cid mod 7 = 0);
  heading "Extension — supply-network (IR-drop) feasibility per strategy"
  ^ Table.render tbl
  ^ "\n(strap-grid relaxation with pads on the core boundary.  'Rail\n\
     bins' is the grid area the high supply must cover: the scattered\n\
     selection needs rails over nearly the whole core to feed a seventh\n\
     of the cells, while slab islands cover exactly their own extent and\n\
     touch the boundary everywhere — §4.5's reason for slice shapes)\n"

let workload_sensitivity ctx =
  let t = ctx in
  let v = vertical ctx in
  let shifted = v.Flow.shifted in
  let module Workloads = Pvtol_vexsim.Workloads in
  let module Gatesim = Pvtol_power.Gatesim in
  let cycles = max 64 ((Flow.config t).Flow.gatesim_cycles / 2) in
  let tbl =
    Table.create
      ~header:
        [ "Workload"; "IPC"; "Toggle rate"; "Chip-wide (mW)"; "1 VI @ C (mW)";
          "Saving" ]
  in
  List.iter
    (fun (w : Workloads.t) ->
      assert w.Workloads.correct;
      let activity_of nl =
        let stim, _ =
          Gatesim.trace_stimulus nl ~instr_prefix:"instr" ~words:w.Workloads.trace
            ~fallback:(Gatesim.random_stimulus ~seed:((Flow.config t).Flow.mc_seed + 1))
        in
        Gatesim.run ~cycles nl stim
      in
      let act_base = activity_of (Flow.netlist t) in
      let act_shifted = activity_of shifted.Level_shifter.netlist in
      let systematic =
        Pvtol_variation.Sampler.systematic_lgates (Flow.sampler t)
          (Flow.placement t) Position.point_c
      in
      let high =
        (Flow.netlist t).Netlist.lib.Pvtol_stdcell.Cell.process
          .Pvtol_stdcell.Process.vdd_high
      in
      let chip =
        Power.total_mw
          (Power.analyze
             ~lgate_nm:(fun i -> systematic.(i))
             ~vdd:(fun _ -> high)
             ~activity:act_base
             ~wire_length:(fun nid -> Placement.wire_length (Flow.placement t) nid)
             ~clock_ns:(Flow.clock t) (Flow.netlist t))
            .Power.total
      in
      let systematic_sh =
        Pvtol_variation.Sampler.systematic_lgates (Flow.sampler t)
          shifted.Level_shifter.placement Position.point_c
      in
      let vi =
        Power.total_mw
          (Power.analyze
             ~lgate_nm:(fun i -> systematic_sh.(i))
             ~vdd:(fun cid -> Level_shifter.vdd_assignment shifted ~raised:1 cid)
             ~activity:act_shifted
             ~wire_length:(fun nid ->
               Placement.wire_length shifted.Level_shifter.placement nid)
             ~clock_ns:(Flow.clock t) shifted.Level_shifter.netlist)
            .Power.total
      in
      Table.add_row tbl
        [
          w.Workloads.name;
          Table.fcell ~decimals:2 (Pvtol_vexsim.Sim.ipc w.Workloads.stats);
          Table.fcell ~decimals:3 (Gatesim.mean_rate act_base);
          Table.fcell ~decimals:2 chip;
          Table.fcell ~decimals:2 vi;
          Table.pcell ~decimals:1 (1.0 -. (vi /. chip));
        ])
    (Workloads.all ());
  heading "Extension — workload sensitivity of the Fig. 5 comparison"
  ^ Table.render tbl
  ^ "\n(every workload verified against a direct reference computation;\n\
     the spread across these five unit mixes bounds how much the\n\
     paper's single-FIR methodology could move its normalized numbers —\n\
     workloads that concentrate activity outside the islands favour the\n\
     island scheme, streaming ones with idle datapaths favour neither)\n"

let postsilicon_study ctx =
  let s = Postsilicon.run ctx (vertical ctx) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (heading "Extension — post-silicon detect-and-compensate across dies");
  Format.kasprintf (Buffer.add_string buf) "%a" Postsilicon.pp s;
  (* Scenario histogram over the population. *)
  let hist = Array.make 4 0 in
  List.iter
    (fun (c : Postsilicon.chip) -> hist.(min 3 c.Postsilicon.raised) <- hist.(min 3 c.Postsilicon.raised) + 1)
    s.Postsilicon.chips;
  Buffer.add_string buf "  dies per detected scenario: ";
  Array.iteri (fun i n -> Buffer.add_string buf (Printf.sprintf "%d VI: %d  " i n)) hist;
  Buffer.add_string buf "\n";
  Buffer.contents buf

let wafer_study ctx =
  (* A coarse grid keeps the exhibit quick; the CLI's [pvtol wafer]
     scales it up.  Same streaming engine either way. *)
  let cfg = { Wafer.default_config with Wafer.nx = 6; ny = 6; dies_per_cell = 6 } in
  let s = Wafer.sweep ctx cfg in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (heading "Extension — wafer-scale 2D yield sweep (streaming statistics)");
  Format.kasprintf (Buffer.add_string buf) "%a" Wafer.pp s;
  Buffer.add_string buf "\n";
  Buffer.add_string buf (Wafer.render_map s Wafer.Yield_uncompensated);
  Buffer.add_string buf "\n";
  Buffer.add_string buf (Wafer.render_map s Wafer.Mean_raised);
  Buffer.add_string buf
    "(the diagonal A-D study of the post-silicon exhibit is the x=y line\n\
     of these maps; off-diagonal cells are new coverage of the full 2D\n\
     systematic polynomial — every per-cell figure is accumulated with\n\
     O(1)-space Welford / P-square estimators, never per-die arrays)\n";
  Buffer.contents buf

let all ctx =
  (* Warm the Monte-Carlo stage for all four die positions as parallel
     tasks before the exhibits (fig3, scenarios, razor, ...) read it. *)
  ignore (Flow.mc_all ctx);
  String.concat "\n"
    [
      fig2_lgate_map ();
      table1_breakdown ctx;
      fig3_distributions ctx;
      scenarios_summary ctx;
      razor_sites ctx;
      fig4_islands ctx;
      table2_level_shifters ctx;
      fig5_total_power ctx;
      fig6_leakage ctx;
      energy_note ctx;
      compensation_check ctx;
      grouping_ablation ctx;
      routing_note ctx;
      clock_tree_note ctx;
      ssta_crosscheck ctx;
      alternatives_comparison ctx;
      power_integrity ctx;
      workload_sensitivity ctx;
      postsilicon_study ctx;
      wafer_study ctx;
    ]
