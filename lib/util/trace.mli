(** Structured span tracing for the stage-graph flow.

    A trace collects one {!span} per completed unit of work: its name,
    its declared dependencies, wall-clock start/duration, and the
    minor/major-heap words allocated while it ran (from
    [Gc.quick_stat]; in a multi-domain program the GC counters are
    per-domain, so allocation figures are attributed to the domain that
    computed the span).  Appending is mutex-protected, so spans may be
    recorded concurrently from pool workers. *)

type span = {
  name : string;
  deps : string list;   (** declared upstream stage names *)
  start_s : float;      (** seconds since the trace was created *)
  dur_s : float;        (** wall clock, including nested spans forced inside *)
  self_s : float;
      (** [dur_s] minus the spans this one forced on the same domain —
          the stage's own work *)
  minor_words : float;
  major_words : float;
  promoted_words : float;
      (** words promoted minor→major while the span ran *)
  minor_collections : int;
      (** minor GCs that completed while the span ran (per-domain
          counter deltas, like the word counts) *)
  major_collections : int;
  compactions : int;
  ok : bool;            (** false if the traced function raised *)
  domain : int;         (** id of the domain that computed the span *)
}

type t

val create : unit -> t

val span : t -> name:string -> ?deps:string list -> (unit -> 'a) -> 'a
(** Run the function and record a span (also on exception, with
    [ok = false]; the exception is re-raised). *)

val spans : t -> span list
(** Completion order: every span finishes after the spans it forced. *)

val sort_by_start : t -> span list
(** Spans sorted by [start_s], stably (ties keep completion order) —
    the canonical order for exporters, so none re-sorts ad hoc. *)

val find : t -> string -> span option
val count : t -> string -> int

val duplicates : t -> string list
(** Span names recorded more than once — empty iff every stage ran at
    most once. *)

val pp : Format.formatter -> t -> unit
(** Pretty span report (one line per span, completion order). *)

val to_json : t -> string
val write_json : t -> string -> unit

val to_chrome_json : t -> string
(** Chrome trace-event (chrome://tracing / Perfetto) JSON: an array of
    complete ("X") events in {!sort_by_start} order, one per span, on
    the track of the domain that computed it ([tid]), plus metadata
    events naming the process and each domain track.  Timestamps and
    durations are microseconds since the trace was created. *)

val write_chrome_json : t -> string -> unit
