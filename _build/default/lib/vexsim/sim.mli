(** Instruction-set simulator for the VEX-like VLIW.

    Executes one bundle per cycle with VLIW semantics (all operand
    reads before any write; a taken branch in slot 0 redirects the next
    bundle).  Produces both architectural results and the per-cycle
    instruction-word trace that drives the gate-level switching-activity
    simulation — the ModelSim step of the paper's power flow. *)

type stats = {
  cycles : int;
  ops_executed : int;          (** non-nop operations *)
  slot_active : int array;     (** per slot, cycles with a non-nop op *)
  mul_ops : int;
  mem_ops : int;
  branches_taken : int;
}

type t

val create : ?mem_size:int -> Isa.bundle array -> t
(** Fresh machine: registers and data memory zeroed. *)

val set_reg : t -> int -> int -> unit
val get_reg : t -> int -> int
val store : t -> int -> int -> unit
(** [store t addr v] writes data memory (word-addressed). *)

val load : t -> int -> int

val run : ?max_cycles:int -> t -> stats
(** Execute until the PC falls off the end of the program or
    [max_cycles] (default 100_000) elapse.  Values wrap at 32 bits. *)

val trace : t -> Int32.t array list
(** Per-cycle instruction words (slot order) of the completed run,
    oldest first.  Empty before {!run}. *)

val ipc : stats -> float
