module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind

type cell_id = int
type net_id = int

type cell = {
  id : cell_id;
  name : string;
  cell : Cell_lib.t;
  stage : Stage.t;
  unit_name : string;
  fanins : net_id array;
  fanout : net_id;
}

type net = {
  net_id : net_id;
  net_name : string;
  driver : cell_id option;
  sinks : (cell_id * int) array;
  is_output : bool;
}

type t = {
  design_name : string;
  lib : Cell_lib.library;
  cells : cell array;
  nets : net array;
  inputs : net_id array;
  outputs : net_id array;
}

(* Growable array used only during construction. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let length v = v.len
  let to_array v = Array.sub v.data 0 v.len
end

module Builder = struct
  type proto_net = {
    mutable p_name : string;
    mutable p_driver : cell_id option;
    mutable p_sinks : (cell_id * int) list;
    mutable p_output : bool;
  }

  type t = {
    lib : Cell_lib.library;
    design_name : string;
    b_cells : cell Vec.t;
    b_nets : proto_net Vec.t;
    mutable b_inputs : net_id list;
    mutable b_outputs : net_id list;
  }

  let dummy_cell =
    {
      id = -1;
      name = "";
      cell = List.hd Cell_lib.default_library.Cell_lib.cells;
      stage = Stage.Fetch;
      unit_name = "";
      fanins = [||];
      fanout = -1;
    }

  let dummy_net = { p_name = ""; p_driver = None; p_sinks = []; p_output = false }

  let create ?(design_name = "design") lib =
    {
      lib;
      design_name;
      b_cells = Vec.create dummy_cell;
      b_nets = Vec.create dummy_net;
      b_inputs = [];
      b_outputs = [];
    }

  let fresh_net b name =
    let id = Vec.length b.b_nets in
    Vec.push b.b_nets { p_name = name; p_driver = None; p_sinks = []; p_output = false };
    id

  let input b name =
    let id = fresh_net b name in
    b.b_inputs <- id :: b.b_inputs;
    id

  let add b ?(drive = Cell_lib.X1) ?name ~stage ~unit_name kind fanins =
    let arity = Kind.arity kind in
    if Array.length fanins <> arity then
      invalid_arg
        (Printf.sprintf "Builder.add: %s expects %d inputs, got %d"
           (Kind.name kind) arity (Array.length fanins));
    let nnets = Vec.length b.b_nets in
    Array.iter
      (fun n ->
        if n < 0 || n >= nnets then invalid_arg "Builder.add: undeclared net")
      fanins;
    let id = Vec.length b.b_cells in
    let cname =
      match name with Some n -> n | None -> Printf.sprintf "u%d" id
    in
    let out = fresh_net b (cname ^ "_o") in
    let cell_t = Cell_lib.find b.lib kind drive in
    Vec.push b.b_cells
      { id; name = cname; cell = cell_t; stage; unit_name; fanins; fanout = out };
    Array.iteri
      (fun pin n ->
        let pn = Vec.get b.b_nets n in
        pn.p_sinks <- (id, pin) :: pn.p_sinks)
      fanins;
    (Vec.get b.b_nets out).p_driver <- Some id;
    out

  let output b n name =
    let pn = Vec.get b.b_nets n in
    pn.p_output <- true;
    pn.p_name <- name;
    b.b_outputs <- n :: b.b_outputs

  let placeholder b name = fresh_net b name

  let driver_of b n = (Vec.get b.b_nets n).p_driver

  let merge b ~placeholder real =
    if placeholder = real then invalid_arg "Builder.merge: self-merge";
    let src = Vec.get b.b_nets placeholder in
    if src.p_driver <> None then invalid_arg "Builder.merge: placeholder is driven";
    let dst = Vec.get b.b_nets real in
    List.iter
      (fun (cid, pin) ->
        (Vec.get b.b_cells cid).fanins.(pin) <- real;
        dst.p_sinks <- (cid, pin) :: dst.p_sinks)
      src.p_sinks;
    src.p_sinks <- []

  let rewire b ~cell ~pin n =
    if cell < 0 || cell >= Vec.length b.b_cells then
      invalid_arg "Builder.rewire: bad cell";
    if n < 0 || n >= Vec.length b.b_nets then invalid_arg "Builder.rewire: bad net";
    let c = Vec.get b.b_cells cell in
    if pin < 0 || pin >= Array.length c.fanins then
      invalid_arg "Builder.rewire: bad pin";
    let old = c.fanins.(pin) in
    let old_pn = Vec.get b.b_nets old in
    old_pn.p_sinks <-
      List.filter (fun (cid, p) -> not (cid = cell && p = pin)) old_pn.p_sinks;
    c.fanins.(pin) <- n;
    let pn = Vec.get b.b_nets n in
    pn.p_sinks <- (cell, pin) :: pn.p_sinks

  let cell_count b = Vec.length b.b_cells

  let check_acyclic cells nets =
    (* Kahn's algorithm on the combinational core.  Flip-flop outputs are
       sources; flip-flop inputs are sinks; a leftover node means a
       combinational cycle. *)
    let ncells = Array.length cells in
    let indeg = Array.make ncells 0 in
    let comb c = not (Kind.is_sequential c.cell.Cell_lib.kind) in
    Array.iter
      (fun c ->
        if comb c then
          Array.iter
            (fun n ->
              match nets.(n).driver with
              | Some d when comb cells.(d) -> indeg.(c.id) <- indeg.(c.id) + 1
              | Some _ | None -> ())
            c.fanins)
      cells;
    let queue = Queue.create () in
    Array.iter (fun c -> if comb c && indeg.(c.id) = 0 then Queue.add c.id queue) cells;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let cid = Queue.pop queue in
      incr visited;
      let out = cells.(cid).fanout in
      Array.iter
        (fun (sink, _pin) ->
          if comb cells.(sink) then begin
            indeg.(sink) <- indeg.(sink) - 1;
            if indeg.(sink) = 0 then Queue.add sink queue
          end)
        nets.(out).sinks
    done;
    let comb_total = Array.fold_left (fun acc c -> if comb c then acc + 1 else acc) 0 cells in
    if !visited <> comb_total then
      failwith
        (Printf.sprintf "combinational cycle: %d of %d cells unreachable"
           (comb_total - !visited) comb_total)

  let freeze b =
    let cells = Vec.to_array b.b_cells in
    let inputs = Array.of_list (List.rev b.b_inputs) in
    let is_input = Hashtbl.create 64 in
    Array.iter (fun n -> Hashtbl.replace is_input n ()) inputs;
    let nets =
      Array.init (Vec.length b.b_nets) (fun i ->
          let pn = Vec.get b.b_nets i in
          let dead = pn.p_driver = None && pn.p_sinks = [] && not pn.p_output in
          if pn.p_driver = None && not (Hashtbl.mem is_input i) && not dead then
            failwith (Printf.sprintf "undriven net %s (id %d)" pn.p_name i);
          {
            net_id = i;
            net_name = pn.p_name;
            driver = pn.p_driver;
            sinks = Array.of_list (List.rev pn.p_sinks);
            is_output = pn.p_output;
          })
    in
    check_acyclic cells nets;
    {
      design_name = b.design_name;
      lib = b.lib;
      cells;
      nets;
      inputs;
      outputs = Array.of_list (List.rev b.b_outputs);
    }
end

let cell_count t = Array.length t.cells
let net_count t = Array.length t.nets

let area t =
  Array.fold_left (fun acc c -> acc +. c.cell.Cell_lib.area) 0.0 t.cells

let area_of_stage t stage =
  Array.fold_left
    (fun acc c -> if Stage.equal c.stage stage then acc +. c.cell.Cell_lib.area else acc)
    0.0 t.cells

let cells_of_stage t stage =
  Array.fold_left
    (fun acc c -> if Stage.equal c.stage stage then c :: acc else acc)
    [] t.cells
  |> List.rev

let is_comb c = not (Kind.is_sequential c.cell.Cell_lib.kind)

let flops t = Array.of_list (List.filter (fun c -> not (is_comb c)) (Array.to_list t.cells))

let fanout_cells t c =
  Array.to_list t.nets.(c.fanout).sinks
  |> List.map (fun (cid, pin) -> (t.cells.(cid), pin))

let find_net t name =
  Array.fold_left
    (fun acc n -> match acc with Some _ -> acc | None -> if String.equal n.net_name name then Some n else None)
    None t.nets

let stats_by_stage t =
  List.filter_map
    (fun stage ->
      let count = ref 0 and a = ref 0.0 in
      Array.iter
        (fun c ->
          if Stage.equal c.stage stage then begin
            incr count;
            a := !a +. c.cell.Cell_lib.area
          end)
        t.cells;
      if !count = 0 then None else Some (stage, !count, !a))
    Stage.all

let pp_summary fmt t =
  Format.fprintf fmt "design %s: %d cells, %d nets, %.0f um^2@."
    t.design_name (cell_count t) (net_count t) (area t);
  List.iter
    (fun (stage, n, a) ->
      Format.fprintf fmt "  %-14s %7d cells  %10.0f um^2 (%.2f%%)@."
        (Stage.name stage) n a (100.0 *. a /. area t))
    (stats_by_stage t)

let remap_cells t f =
  let cells =
    Array.map
      (fun c ->
        let replacement = f c in
        if replacement.Cell_lib.kind <> c.cell.Cell_lib.kind then
          invalid_arg "remap_cells: kind change not allowed";
        { c with cell = replacement })
      t.cells
  in
  { t with cells }

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Array.iteri
    (fun i c ->
      if c.id <> i then err "cell %d has id %d" i c.id;
      if c.fanout < 0 || c.fanout >= net_count t then err "cell %d: bad fanout net" i;
      (match t.nets.(c.fanout).driver with
      | Some d when d = i -> ()
      | _ -> err "cell %d: fanout net does not point back" i);
      Array.iteri
        (fun pin n ->
          if n < 0 || n >= net_count t then err "cell %d pin %d: bad net" i pin
          else
            let found =
              Array.exists (fun (cid, p) -> cid = i && p = pin) t.nets.(n).sinks
            in
            if not found then err "cell %d pin %d: missing sink back-reference" i pin)
        c.fanins)
    t.cells;
  Array.iteri
    (fun i n ->
      if n.net_id <> i then err "net %d has id %d" i n.net_id;
      (match n.driver with
      | Some d ->
        if d < 0 || d >= cell_count t then err "net %d: bad driver" i
        else if t.cells.(d).fanout <> i then err "net %d: driver does not point back" i
      | None ->
        let dead = Array.length n.sinks = 0 && not n.is_output in
        if (not dead) && not (Array.exists (fun inp -> inp = i) t.inputs) then
          err "net %d (%s): undriven and not a primary input" i n.net_name);
      Array.iter
        (fun (cid, pin) ->
          if cid < 0 || cid >= cell_count t then err "net %d: bad sink cell" i
          else if
            pin < 0
            || pin >= Array.length t.cells.(cid).fanins
            || t.cells.(cid).fanins.(pin) <> i
          then err "net %d: inconsistent sink (%d,%d)" i cid pin)
        n.sinks)
    t.nets;
  (try Builder.check_acyclic t.cells t.nets with Failure m -> err "%s" m);
  match !errors with [] -> Ok () | es -> Error (List.rev es)
