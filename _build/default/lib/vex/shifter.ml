open Gen

type direction = Left | Right

let fixed t dir k data =
  let w = Array.length data in
  let zero = tie0 t in
  match dir with
  | Left -> Array.init w (fun i -> if i < k then zero else data.(i - k))
  | Right -> Array.init w (fun i -> if i + k < w then data.(i + k) else zero)

let shift_layer t dir k sel data =
  let shifted = fixed t dir k data in
  mux2_bus t data shifted ~sel

let barrel t ~dir ~amount data =
  let w = Array.length data in
  let levels = Array.length amount in
  assert (1 lsl levels >= w || levels > 0);
  (* Compute both directions layer by layer, selecting direction once at
     the end; sel fanout is managed by the caller's buffer trees. *)
  let left = ref data and right = ref data in
  for l = 0 to levels - 1 do
    let k = 1 lsl l in
    left := shift_layer t Left k amount.(l) !left;
    right := shift_layer t Right k amount.(l) !right
  done;
  mux2_bus t !left !right ~sel:dir
