lib/timing/sizing.ml: Array Float Hashtbl List Netlist Pvtol_netlist Pvtol_stdcell Sta Stage
