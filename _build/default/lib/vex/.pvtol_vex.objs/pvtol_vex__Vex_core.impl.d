lib/vex/vex_core.ml: Adder Alu Array Comparator Gen Logic_cloud Multiplier Netlist Printf Pvtol_netlist Pvtol_stdcell Regfile Stage
