module Placement = Pvtol_place.Placement
module Geom = Pvtol_util.Geom

type result = {
  max_drop_mv : float;
  mean_drop_mv : float;
  supplied_bins : int;
  pad_bins : int;
  unreachable_bins : int;
  iterations : int;
}

let analyze ?(grid = 24) ?(strap_resistance = 2.0) ~placement ~member
    ~current_ma ~vdd () =
  let core = placement.Placement.floorplan.Pvtol_place.Floorplan.core in
  let bw = Geom.width core /. float_of_int grid in
  let bh = Geom.height core /. float_of_int grid in
  let idx ix iy = (iy * grid) + ix in
  let in_domain = Array.make (grid * grid) false in
  let current = Array.make (grid * grid) 0.0 in
  let n_cells = Array.length placement.Placement.xs in
  for cid = 0 to n_cells - 1 do
    if member cid then begin
      let ix =
        max 0
          (min (grid - 1)
             (int_of_float ((placement.Placement.xs.(cid) -. core.Geom.llx) /. bw)))
      in
      let iy =
        max 0
          (min (grid - 1)
             (int_of_float ((placement.Placement.ys.(cid) -. core.Geom.lly) /. bh)))
      in
      in_domain.(idx ix iy) <- true;
      current.(idx ix iy) <- current.(idx ix iy) +. current_ma cid
    end
  done;
  (* Pads: domain bins on the core boundary. *)
  let is_pad = Array.make (grid * grid) false in
  let pad_bins = ref 0 in
  for ix = 0 to grid - 1 do
    for iy = 0 to grid - 1 do
      if
        in_domain.(idx ix iy)
        && (ix = 0 || iy = 0 || ix = grid - 1 || iy = grid - 1)
      then begin
        is_pad.(idx ix iy) <- true;
        incr pad_bins
      end
    done
  done;
  (* Reachability: flood from the pads along domain bins. *)
  let reachable = Array.make (grid * grid) false in
  let stack = Stack.create () in
  for i = 0 to (grid * grid) - 1 do
    if is_pad.(i) then begin
      reachable.(i) <- true;
      Stack.push i stack
    end
  done;
  let neighbours i =
    let ix = i mod grid and iy = i / grid in
    List.filter_map
      (fun (dx, dy) ->
        let jx = ix + dx and jy = iy + dy in
        if jx >= 0 && jy >= 0 && jx < grid && jy < grid then Some (idx jx jy)
        else None)
      [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
  in
  while not (Stack.is_empty stack) do
    let i = Stack.pop stack in
    List.iter
      (fun j ->
        if in_domain.(j) && not reachable.(j) then begin
          reachable.(j) <- true;
          Stack.push j stack
        end)
      (neighbours i)
  done;
  let supplied = ref 0 and unreachable = ref 0 in
  Array.iteri
    (fun i d ->
      if d then if reachable.(i) then incr supplied else incr unreachable)
    in_domain;
  (* Gauss-Seidel on the reachable sub-grid: conductance g between
     adjacent reachable bins, pads pinned to vdd, bin currents drawn. *)
  let g = 1.0 /. strap_resistance in
  let v = Array.make (grid * grid) vdd in
  let iterations = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iterations < 20_000 do
    incr iterations;
    let residual = ref 0.0 in
    for i = 0 to (grid * grid) - 1 do
      if reachable.(i) && not is_pad.(i) then begin
        let num = ref 0.0 and den = ref 0.0 in
        List.iter
          (fun j ->
            if reachable.(j) then begin
              num := !num +. (g *. v.(j));
              den := !den +. g
            end)
          (neighbours i);
        if !den > 0.0 then begin
          (* current in mA, resistance in ohm -> volts = mA * ohm / 1000 *)
          let v' = (!num -. (current.(i) /. 1000.0)) /. !den in
          residual := Float.max !residual (Float.abs (v' -. v.(i)));
          v.(i) <- v'
        end
      end
    done;
    if !residual < 1e-6 then continue_ := false
  done;
  let max_drop = ref 0.0 and sum_drop = ref 0.0 and n_drop = ref 0 in
  for i = 0 to (grid * grid) - 1 do
    if reachable.(i) then begin
      let drop = vdd -. v.(i) in
      if drop > !max_drop then max_drop := drop;
      sum_drop := !sum_drop +. drop;
      incr n_drop
    end
  done;
  {
    max_drop_mv = !max_drop *. 1000.0;
    mean_drop_mv =
      (if !n_drop = 0 then 0.0 else !sum_drop /. float_of_int !n_drop *. 1000.0);
    supplied_bins = !supplied;
    pad_bins = !pad_bins;
    unreachable_bins = !unreachable;
    iterations = !iterations;
  }
