examples/custom_cells.mli:
