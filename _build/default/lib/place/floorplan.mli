(** Core floorplan: a rectangular standard-cell region organised in
    rows, sized from the netlist area and a target row utilization
    (the paper reports "row utilization of about 70%"). *)

type t = {
  core : Pvtol_util.Geom.rect;   (** local coordinates, origin (0,0) *)
  row_height : float;            (** um *)
  site_width : float;            (** um *)
  n_rows : int;
  utilization : float;           (** target, 0-1 *)
}

val create :
  ?row_height:float ->
  ?site_width:float ->
  ?utilization:float ->
  ?aspect:float ->
  cell_area:float ->
  unit ->
  t
(** Square-ish floorplan (width/height ratio [aspect], default 1.0)
    whose row capacity is [cell_area / utilization].  Defaults:
    row height 1.8 um, site 0.2 um, utilization 0.70. *)

val row_y : t -> int -> float
(** Lower edge of a row. *)

val row_of_y : t -> float -> int
(** Clamped row index containing the ordinate. *)

val row_capacity : t -> float
(** Usable width of a row in um. *)

val pp : Format.formatter -> t -> unit
