(* Wafer-scale yield engine: the per-die detect-and-compensate kernel of
   [Postsilicon], swept over a 2D grid of die positions on the exposure
   field (optionally replicated over several exposure fields), batched
   on the shared domain pool and reduced with streaming statistics so
   the sweep's memory is O(grid), not O(dies). *)
module Sg = Stage
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Stream_stats = Pvtol_util.Stream_stats
module Welford = Stream_stats.Welford
module P2 = Stream_stats.P2
module Counter = Stream_stats.Counter
module Position = Pvtol_variation.Position
module Sampler = Pvtol_variation.Sampler
module Metrics = Pvtol_util.Metrics
module Monte_carlo = Pvtol_ssta.Monte_carlo
module Smart_sampling = Pvtol_ssta.Smart_sampling

let m_cells = Metrics.counter "wafer_cells_total"
let m_wafer_dies = Metrics.counter "wafer_dies_total"
let m_sampling_dies = Metrics.counter "wafer_sampling_dies_total"

type config = {
  nx : int;
  ny : int;
  dies_per_cell : int;
  fields : int;
  seed : int;
  direction : Island.direction;
}

let default_config =
  { nx = 8; ny = 8; dies_per_cell = 12; fields = 1; seed = 7;
    direction = Island.Vertical }

type cell = {
  ix : int;
  iy : int;
  x_frac : float;
  y_frac : float;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  raised_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Stats.summary;
  delay_p50_ns : float;
  delay_p90_ns : float;
}

type sweep = {
  config : config;
  n_islands : int;
  clock_ns : float;
  cells : cell array;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Stats.summary;
}

(* ------------------------------------------------------------------ *)
(* Grid geometry and per-cell seeding                                   *)

let grid_frac n i =
  if n <= 1 then 0.5 else float_of_int i /. float_of_int (n - 1)

let cell_position cfg ~ix ~iy =
  Position.at_xy ~x_frac:(grid_frac cfg.nx ix) ~y_frac:(grid_frac cfg.ny iy) ()

(* Every cell's RNG stream depends only on (seed, field, ix, iy), never
   on traversal order or domain count. *)
let cell_seed cfg ~field ~ix ~iy =
  Monte_carlo.substream_seed cfg.seed [ field; iy; ix ]

(* ------------------------------------------------------------------ *)
(* Streaming per-cell accumulator                                       *)

type acc = {
  mutable a_dies : int;
  mutable a_unc : int;
  mutable a_comp : int;
  mutable a_chip : int;
  a_raised : Welford.t;
  a_pow_isl : Welford.t;
  a_pow_chip : Welford.t;
  a_delay : Welford.t;
  a_p50 : P2.t;
  a_p90 : P2.t;
  a_scen : Counter.t;
  a_raised_c : Counter.t;
}

let acc_create ~n_islands =
  {
    a_dies = 0;
    a_unc = 0;
    a_comp = 0;
    a_chip = 0;
    a_raised = Welford.create ();
    a_pow_isl = Welford.create ();
    a_pow_chip = Welford.create ();
    a_delay = Welford.create ();
    a_p50 = P2.create 0.5;
    a_p90 = P2.create 0.9;
    a_scen = Counter.create (n_islands + 1);
    a_raised_c = Counter.create (n_islands + 1);
  }

let acc_add k acc (d : Postsilicon.die) =
  acc.a_dies <- acc.a_dies + 1;
  if d.Postsilicon.die_meets_uncompensated then acc.a_unc <- acc.a_unc + 1;
  if d.Postsilicon.die_meets_compensated then acc.a_comp <- acc.a_comp + 1;
  if d.Postsilicon.die_meets_chip_wide then acc.a_chip <- acc.a_chip + 1;
  Welford.add acc.a_raised (float_of_int d.Postsilicon.die_raised);
  Welford.add acc.a_pow_isl (Postsilicon.die_power_islands_mw k d);
  Welford.add acc.a_pow_chip (Postsilicon.die_power_chip_wide_mw k d);
  Welford.add acc.a_delay d.Postsilicon.die_worst_low_ns;
  P2.add acc.a_p50 d.Postsilicon.die_worst_low_ns;
  P2.add acc.a_p90 d.Postsilicon.die_worst_low_ns;
  Counter.add acc.a_scen d.Postsilicon.die_detected;
  Counter.add acc.a_raised_c d.Postsilicon.die_raised

let cell_of_acc cfg ~ix ~iy acc =
  let dies = float_of_int acc.a_dies in
  {
    ix;
    iy;
    x_frac = grid_frac cfg.nx ix;
    y_frac = grid_frac cfg.ny iy;
    dies = acc.a_dies;
    yield_uncompensated = float_of_int acc.a_unc /. dies;
    yield_compensated = float_of_int acc.a_comp /. dies;
    yield_chip_wide = float_of_int acc.a_chip /. dies;
    mean_raised = Welford.mean acc.a_raised;
    scenario_counts = Counter.to_array acc.a_scen;
    raised_counts = Counter.to_array acc.a_raised_c;
    mean_power_islands_mw = Welford.mean acc.a_pow_isl;
    mean_power_chip_wide_mw = Welford.mean acc.a_pow_chip;
    delay = Welford.summary acc.a_delay;
    delay_p50_ns = P2.estimate acc.a_p50;
    delay_p90_ns = P2.estimate acc.a_p90;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)

let run ?pool ?on_cell (t : Flow.t) (v : Flow.variant) cfg =
  if cfg.nx <= 0 || cfg.ny <= 0 || cfg.dies_per_cell <= 0 || cfg.fields <= 0
  then invalid_arg "Wafer.run: grid, dies and fields must be positive";
  if v.Flow.direction <> cfg.direction then
    invalid_arg "Wafer.run: variant direction does not match the config";
  let k = Postsilicon.kernel t v in
  let n_islands = Postsilicon.n_islands k in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let total_cells = cfg.nx * cfg.ny in
  let completed = Atomic.make 0 in
  (* One chunk per grid cell; a worker reuses its scratch across every
     cell it picks up.  All of a cell's dies (over every field replica)
     run serially inside its chunk in a fixed field-major order, so the
     per-cell accumulators — including the order-sensitive P^2 markers
     — are independent of scheduling. *)
  let accs =
    Pool.parallel_chunks pool ~chunks:total_cells
      ~init:(fun ~worker:_ -> Postsilicon.scratch k)
      ~f:(fun sc c ->
        let ix = c mod cfg.nx and iy = c / cfg.nx in
        let systematic = Postsilicon.systematic k (cell_position cfg ~ix ~iy) in
        let acc = acc_create ~n_islands in
        for field = 0 to cfg.fields - 1 do
          let rng = Srng.create (cell_seed cfg ~field ~ix ~iy) in
          for _ = 1 to cfg.dies_per_cell do
            acc_add k acc (Postsilicon.simulate_die k sc ~systematic rng)
          done
        done;
        Metrics.incr m_cells;
        Metrics.add m_wafer_dies acc.a_dies;
        (* Progress callbacks fire from whichever domain finished the
           cell; the count is an Atomic so it is monotone across them.
           A raising callback would poison the sweep — swallow. *)
        (match on_cell with
        | None -> ()
        | Some f -> (
          let done_ = 1 + Atomic.fetch_and_add completed 1 in
          try f ~completed:done_ ~total:total_cells with _ -> ()));
        acc)
  in
  (* Ordered reduction (row-major), so wafer totals are bit-identical
     no matter how the chunks were scheduled. *)
  let total = acc_create ~n_islands in
  let delay_all = Welford.create () in
  Array.iter
    (fun acc ->
      total.a_dies <- total.a_dies + acc.a_dies;
      total.a_unc <- total.a_unc + acc.a_unc;
      total.a_comp <- total.a_comp + acc.a_comp;
      total.a_chip <- total.a_chip + acc.a_chip;
      Welford.merge ~into:total.a_raised acc.a_raised;
      Welford.merge ~into:total.a_pow_isl acc.a_pow_isl;
      Welford.merge ~into:total.a_pow_chip acc.a_pow_chip;
      Welford.merge ~into:delay_all acc.a_delay;
      Counter.merge ~into:total.a_scen acc.a_scen)
    accs;
  let cells =
    Array.mapi
      (fun c acc -> cell_of_acc cfg ~ix:(c mod cfg.nx) ~iy:(c / cfg.nx) acc)
      accs
  in
  let dies = float_of_int total.a_dies in
  {
    config = cfg;
    n_islands;
    clock_ns = Postsilicon.clock k;
    cells;
    dies = total.a_dies;
    yield_uncompensated = float_of_int total.a_unc /. dies;
    yield_compensated = float_of_int total.a_comp /. dies;
    yield_chip_wide = float_of_int total.a_chip /. dies;
    mean_raised = Welford.mean total.a_raised;
    scenario_counts = Counter.to_array total.a_scen;
    mean_power_islands_mw = Welford.mean total.a_pow_isl;
    mean_power_chip_wide_mw = Welford.mean total.a_pow_chip;
    delay = Welford.summary delay_all;
  }

(* ------------------------------------------------------------------ *)
(* Stage-graph exposure                                                 *)

let config_label cfg =
  Printf.sprintf "%dx%d-d%d-f%d-s%d-%s" cfg.nx cfg.ny cfg.dies_per_cell
    cfg.fields cfg.seed
    (Island.direction_name cfg.direction)

(* One keyed stage family per flow handle, registered on its graph the
   first time a sweep is requested (the family cannot be declared in
   Flow itself: Postsilicon sits above Flow in the module order).

   Each family carries a progress-callback slot read by the compute
   closure at compute time: {!sweep} installs its [?on_cell] around the
   force.  A memoized re-force never computes, so progress only streams
   the first time a (flow, config) sweep actually runs — which is the
   only time there is progress to report. *)
type on_cell = completed:int -> total:int -> unit

let families_mu = Mutex.create ()

let families :
    (Sg.graph * ((config, sweep) Sg.keyed * on_cell option ref)) list ref =
  ref []

let family (t : Flow.t) : (config, sweep) Sg.keyed * on_cell option ref =
  let g = Flow.graph t in
  Mutex.lock families_mu;
  let f =
    match List.find_opt (fun (g', _) -> g' == g) !families with
    | Some (_, f) -> f
    | None ->
      let cbref = ref None in
      let f =
        Sg.keyed g ~name:"wafer"
          ~deps:(fun cfg ->
            [ "sta"; "placed"; "sampler"; "clock";
              "shifters[" ^ Island.direction_name cfg.direction ^ "]" ])
          ~key_label:config_label
          (fun cfg -> run ?on_cell:!cbref t (Flow.variant t cfg.direction) cfg)
      in
      families := (g, (f, cbref)) :: !families;
      (f, cbref)
  in
  Mutex.unlock families_mu;
  f

let sweep ?on_cell t cfg =
  let f, cbref = family t in
  match on_cell with
  | None -> Sg.get_keyed f cfg
  | Some _ ->
    cbref := on_cell;
    Fun.protect
      ~finally:(fun () -> cbref := None)
      (fun () -> Sg.get_keyed f cfg)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

type metric =
  | Yield_uncompensated
  | Yield_compensated
  | Yield_chip_wide
  | Mean_raised
  | Delay_p90

let metric_name = function
  | Yield_uncompensated -> "uncompensated yield"
  | Yield_compensated -> "compensated yield"
  | Yield_chip_wide -> "chip-wide yield"
  | Mean_raised -> "mean islands raised"
  | Delay_p90 -> "P90 critical delay (ns)"

let metric_value m (c : cell) =
  match m with
  | Yield_uncompensated -> c.yield_uncompensated
  | Yield_compensated -> c.yield_compensated
  | Yield_chip_wide -> c.yield_chip_wide
  | Mean_raised -> c.mean_raised
  | Delay_p90 -> c.delay_p90_ns

let ramp = " .:-=+*#%@"

let render_map s m =
  let cfg = s.config in
  let values = Array.map (metric_value m) s.cells in
  let lo = Array.fold_left Float.min infinity values in
  let hi = Array.fold_left Float.max neg_infinity values in
  let char_of v =
    let t = if hi > lo then (v -. lo) /. (hi -. lo) else 0.0 in
    let i = int_of_float (t *. float_of_int (String.length ramp - 1)) in
    ramp.[Stdlib.max 0 (Stdlib.min (String.length ramp - 1) i)]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s over the %dx%d die grid (%.3g..%.3g, ' '=low '@'=high):\n"
       (metric_name m) cfg.nx cfg.ny lo hi);
  for iy = cfg.ny - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "  y=%4.2f |" (grid_frac cfg.ny iy));
    for ix = 0 to cfg.nx - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_char buf (char_of values.((iy * cfg.nx) + ix))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "          ";
  for ix = 0 to cfg.nx - 1 do
    Buffer.add_string buf (if ix mod 2 = 0 then " +" else "  ")
  done;
  Buffer.add_string buf "  (x: 0 -> 1, lower-left = slow corner A)\n";
  Buffer.contents buf

let pp fmt s =
  let cfg = s.config in
  Format.fprintf fmt
    "wafer sweep: %dx%d grid x %d dies/cell x %d field(s) = %d dies (%s \
     slicing, clock %.3f ns)@.\
    \  timing yield:  uncompensated %.1f%%   islands %.1f%%   chip-wide %.1f%%@.\
    \  mean islands raised per die: %.2f of %d@.\
    \  mean power: islands %.2f mW vs chip-wide adaptation %.2f mW (%.1f%% \
     saved)@.\
    \  critical delay: mean %.3f ns  sigma %.3f ns  range [%.3f, %.3f] ns@."
    cfg.nx cfg.ny cfg.dies_per_cell cfg.fields s.dies
    (Island.direction_name cfg.direction)
    s.clock_ns
    (100.0 *. s.yield_uncompensated)
    (100.0 *. s.yield_compensated)
    (100.0 *. s.yield_chip_wide)
    s.mean_raised s.n_islands s.mean_power_islands_mw s.mean_power_chip_wide_mw
    (100.0 *. (1.0 -. (s.mean_power_islands_mw /. s.mean_power_chip_wide_mw)))
    s.delay.Stats.mean s.delay.Stats.stddev s.delay.Stats.min s.delay.Stats.max;
  Format.fprintf fmt "  dies per detected scenario:";
  Array.iteri
    (fun i n -> Format.fprintf fmt "  %d VI: %d" i n)
    s.scenario_counts;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* JSON export                                                          *)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_int_array a =
  "[" ^ String.concat ", " (Array.to_list (Array.map string_of_int a)) ^ "]"

let to_json s =
  let cfg = s.config in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"grid\": { \"nx\": %d, \"ny\": %d },\n" cfg.nx cfg.ny;
  add "  \"dies_per_cell\": %d,\n" cfg.dies_per_cell;
  add "  \"fields\": %d,\n" cfg.fields;
  add "  \"seed\": %d,\n" cfg.seed;
  add "  \"direction\": \"%s\",\n" (Island.direction_name cfg.direction);
  add "  \"n_islands\": %d,\n" s.n_islands;
  add "  \"clock_ns\": %s,\n" (json_float s.clock_ns);
  add "  \"wafer\": {\n";
  add "    \"dies\": %d,\n" s.dies;
  add "    \"yield_uncompensated\": %s,\n" (json_float s.yield_uncompensated);
  add "    \"yield_compensated\": %s,\n" (json_float s.yield_compensated);
  add "    \"yield_chip_wide\": %s,\n" (json_float s.yield_chip_wide);
  add "    \"mean_raised\": %s,\n" (json_float s.mean_raised);
  add "    \"scenario_counts\": %s,\n" (json_int_array s.scenario_counts);
  add "    \"mean_power_islands_mw\": %s,\n" (json_float s.mean_power_islands_mw);
  add "    \"mean_power_chip_wide_mw\": %s,\n"
    (json_float s.mean_power_chip_wide_mw);
  add "    \"delay_ns\": { \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": %s }\n"
    (json_float s.delay.Stats.mean)
    (json_float s.delay.Stats.stddev)
    (json_float s.delay.Stats.min)
    (json_float s.delay.Stats.max);
  add "  },\n";
  add "  \"cells\": [\n";
  Array.iteri
    (fun i (c : cell) ->
      add
        "    { \"ix\": %d, \"iy\": %d, \"x_frac\": %s, \"y_frac\": %s, \
         \"dies\": %d, \"yield_uncompensated\": %s, \"yield_compensated\": \
         %s, \"yield_chip_wide\": %s, \"mean_raised\": %s, \
         \"scenario_counts\": %s, \"raised_counts\": %s, \
         \"mean_power_islands_mw\": %s, \"mean_power_chip_wide_mw\": %s, \
         \"delay_mean_ns\": %s, \"delay_stddev_ns\": %s, \"delay_p50_ns\": \
         %s, \"delay_p90_ns\": %s }%s\n"
        c.ix c.iy (json_float c.x_frac) (json_float c.y_frac) c.dies
        (json_float c.yield_uncompensated)
        (json_float c.yield_compensated)
        (json_float c.yield_chip_wide)
        (json_float c.mean_raised)
        (json_int_array c.scenario_counts)
        (json_int_array c.raised_counts)
        (json_float c.mean_power_islands_mw)
        (json_float c.mean_power_chip_wide_mw)
        (json_float c.delay.Stats.mean)
        (json_float c.delay.Stats.stddev)
        (json_float c.delay_p50_ns)
        (json_float c.delay_p90_ns)
        (if i < Array.length s.cells - 1 then "," else ""))
    s.cells;
  add "  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Variance-reduced sampling estimator                                  *)

(* The sweep above is a census: a fixed die budget at fixed grid
   positions.  The estimator below answers the converse question — how
   many dies buy a given confidence — by sampling die positions over
   the exposure field (the estimand is the continuous wafer mean, not a
   grid average), reweighting tail-chasing tilted draws, and stopping
   when the designated metric's CI is tight enough. *)

type ci_metric = Ci_yield | Ci_rare

let ci_metric_name = function Ci_yield -> "yield" | Ci_rare -> "rare"

let ci_metric_of_string = function
  | "yield" -> Some Ci_yield
  | "rare" -> Some Ci_rare
  | _ -> None

type sampling_config = {
  s_method : Smart_sampling.method_;
  s_strata : int;
  s_dies_per_round : int;
  s_max_rounds : int;
  s_ci_target : float;
  s_ci_metric : ci_metric;
  s_rare : int;
  s_confidence : float;
  s_seed : int;
  s_direction : Island.direction;
}

let default_sampling_config =
  {
    s_method = Smart_sampling.Mc;
    s_strata = 4;
    s_dies_per_round = 16;
    s_max_rounds = 64;
    s_ci_target = 0.001;
    s_ci_metric = Ci_yield;
    s_rare = 2;
    s_confidence = 0.95;
    s_seed = 7;
    s_direction = Island.Vertical;
  }

type interval = { mid : float; hw : float }

type sampling_group = {
  sg_ix : int;
  sg_iy : int;
  sg_dies : int;
  sg_components : int;
  sg_yield_uncompensated : float;
  sg_rare : float;
  sg_mean_weight : float;
  sg_effective_samples : float;
}

type sampling_report = {
  sr_config : sampling_config;
  sr_position : Position.t option;
  sr_clock_ns : float;
  sr_rounds : int;
  sr_converged : bool;
  sr_dies : int;
  sr_estimate : float;
  sr_ci_halfwidth : float;
  sr_effective_samples : float;
  sr_yield_uncompensated : interval;
  sr_yield_compensated : interval;
  sr_yield_chip_wide : interval;
  sr_rare : interval;
  sr_groups : sampling_group array;
}

(* Per-die metric vector: [0] uncompensated yield, [1] compensated
   yield, [2] chip-wide yield, [3] the rare scenario (>= s_rare islands
   violating before compensation).  Each is accumulated as the plain
   Welford stream of w * y — an importance-sampling estimate and its
   variance need nothing beyond the transformed values. *)
let n_sampling_metrics = 4

let designated_metric = function Ci_yield -> 0 | Ci_rare -> 3

let die_values ~rare (d : Postsilicon.die) out =
  out.(0) <- (if d.Postsilicon.die_meets_uncompensated then 1.0 else 0.0);
  out.(1) <- (if d.Postsilicon.die_meets_compensated then 1.0 else 0.0);
  out.(2) <- (if d.Postsilicon.die_meets_chip_wide then 1.0 else 0.0);
  out.(3) <- (if d.Postsilicon.die_violating >= rare then 1.0 else 0.0)

type gacc = {
  ga_metrics : Welford.t array;
  ga_weight : Welford.t;
  mutable ga_dies : int;
}

let gacc_create () =
  {
    ga_metrics = Array.init n_sampling_metrics (fun _ -> Welford.create ());
    ga_weight = Welford.create ();
    ga_dies = 0;
  }

type site_mode = Wafer_field | Fixed_site of Position.t

let run_sampling ?pool ?on_round (t : Flow.t) (v : Flow.variant) ~mode scfg =
  if scfg.s_strata <= 0 || scfg.s_dies_per_round <= 0 || scfg.s_max_rounds <= 0
  then
    invalid_arg "Wafer.estimate: strata, dies and rounds must be positive";
  if not (scfg.s_ci_target > 0.0) then
    invalid_arg "Wafer.estimate: ci target must be positive";
  if scfg.s_rare <= 0 then invalid_arg "Wafer.estimate: rare must be positive";
  if v.Flow.direction <> scfg.s_direction then
    invalid_arg "Wafer.estimate: variant direction does not match the config";
  let k = Postsilicon.kernel t v in
  let sampler = Flow.sampler t in
  let sta = Flow.sta t in
  let nl = Flow.netlist t in
  let n = Pvtol_netlist.Netlist.cell_count nl in
  let clock = Postsilicon.clock k in
  let low =
    nl.Pvtol_netlist.Netlist.lib.Pvtol_stdcell.Cell.process
      .Pvtol_stdcell.Process.vdd_low
  in
  let base = Pvtol_timing.Sta.nominal_delays sta in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  (* Fixed-site runs keep the stratum grid as independent parallel
     substreams of the same position — the stratified estimate over
     identically-distributed groups is the plain pooled estimate, and
     the oracle's long brute-force runs get the pool's full width. *)
  let s = scfg.s_strata in
  let groups = s * s in
  let q = scfg.s_dies_per_round in
  let sf = float_of_int s and qf = float_of_int q in
  let group_pos g =
    match mode with
    | Fixed_site p -> p
    | Wafer_field ->
      let gx = g mod s and gy = g / s in
      Position.at_xy
        ~x_frac:((float_of_int gx +. 0.5) /. sf)
        ~y_frac:((float_of_int gy +. 0.5) /. sf)
        ()
  in
  (* IS builds one mixture per stratum at its center position; the
     tilt is a z-space object, so the within-stratum position jitter
     does not disturb its exactness.  mc / lhs sample untilted. *)
  let model_at pos =
    let systematic = Postsilicon.systematic k pos in
    Smart_sampling.make
      (Smart_sampling.tilts ~sampler ~sta ~base ~systematic ~vdd:low ~clock
         ~stages:Compensation.analyzed ~rare:scfg.s_rare ())
  in
  let models =
    match (scfg.s_method, mode) with
    | Smart_sampling.Is, Fixed_site p ->
      (* One position, one mixture — shared by every substream. *)
      Array.make groups (model_at p)
    | Smart_sampling.Is, Wafer_field ->
      Pool.parallel_chunks pool ~chunks:groups
        ~init:(fun ~worker:_ -> ())
        ~f:(fun () g -> model_at (group_pos g))
    | (Smart_sampling.Mc | Smart_sampling.Lhs), _ ->
      Array.make groups Smart_sampling.plain
  in
  let gaccs = Array.init groups (fun _ -> gacc_create ()) in
  let pi_g = 1.0 /. float_of_int groups in
  let combine m =
    let mid, hw =
      Smart_sampling.combine ~confidence:scfg.s_confidence
        (Array.map (fun ga -> (pi_g, ga.ga_metrics.(m))) gaccs)
    in
    { mid; hw }
  in
  let rounds = ref 0 and converged = ref false in
  while (not !converged) && !rounds < scfg.s_max_rounds do
    let round = !rounds in
    (* One pool chunk per stratum; each stratum's round is a fresh RNG
       substream keyed by (seed, round, gy, gx), its dies run serially
       inside the chunk, and the per-round accumulators are merged into
       the persistent ones in stratum order — bit-identical for every
       domain count and schedule, like the census sweep above. *)
    let round_accs =
      Pool.parallel_chunks pool ~chunks:groups
        ~init:(fun ~worker:_ ->
          ( Postsilicon.scratch k,
            Array.make n 0.0,
            Array.make n 0.0,
            Array.make n_sampling_metrics 0.0 ))
        ~f:(fun (sc, zbuf, sysbuf, vbuf) g ->
          let gx = g mod s and gy = g / s in
          let model = models.(g) in
          let rng =
            Srng.create
              (Monte_carlo.substream_seed scfg.s_seed [ round; gy; gx ])
          in
          let acc = gacc_create () in
          (* Per-die stream layout is fixed per method: lhs prefixes
             the round with its two axis permutations, is prefixes each
             die with its component pick, and every die consumes two
             jitter uniforms and exactly [n] gaussians. *)
          let px, py =
            match scfg.s_method with
            | Smart_sampling.Lhs -> Smart_sampling.lhs_permutations rng q
            | Smart_sampling.Mc | Smart_sampling.Is -> ([||], [||])
          in
          for r = 0 to q - 1 do
            let comp =
              match scfg.s_method with
              | Smart_sampling.Is -> Smart_sampling.pick model rng
              | Smart_sampling.Mc | Smart_sampling.Lhs -> -1
            in
            let ux = Srng.uniform rng in
            let uy = Srng.uniform rng in
            let pos =
              match mode with
              | Fixed_site p -> p
              | Wafer_field ->
                let fx, fy =
                  match scfg.s_method with
                  (* mc: i.i.d. uniform over the field — the strata are
                     only independent substreams of one plain sample *)
                  | Smart_sampling.Mc -> (ux, uy)
                  | Smart_sampling.Is ->
                    ( (float_of_int gx +. ux) /. sf,
                      (float_of_int gy +. uy) /. sf )
                  | Smart_sampling.Lhs ->
                    ( (float_of_int gx
                      +. ((float_of_int px.(r) +. ux) /. qf))
                      /. sf,
                      (float_of_int gy
                      +. ((float_of_int py.(r) +. uy) /. qf))
                      /. sf )
                in
                Position.at_xy ~x_frac:fx ~y_frac:fy ()
            in
            let systematic = Postsilicon.systematic k pos in
            let w, sys_used =
              if Smart_sampling.n_components model = 0 then (1.0, systematic)
              else begin
                (* Draw-ahead replay: observe the raw gaussians the die
                   kernel is about to consume, price the balance-
                   heuristic weight on them, then realise the tilt as a
                   shifted systematic field through the unchanged
                   kernel. *)
                let pre = Srng.copy rng in
                Srng.fill_gaussians pre zbuf ~pos:0 ~len:n;
                let w = Smart_sampling.weight model ~comp ~z:zbuf in
                match Smart_sampling.shift model ~comp with
                | Either.Right () -> (w, systematic)
                | Either.Left tilt ->
                  Sampler.shifted_systematic sampler ~systematic
                    ~cells:tilt.Smart_sampling.cells
                    ~dir:tilt.Smart_sampling.dir
                    ~theta:tilt.Smart_sampling.theta ~out:sysbuf;
                  (w, sysbuf)
              end
            in
            let d = Postsilicon.simulate_die k sc ~systematic:sys_used rng in
            die_values ~rare:scfg.s_rare d vbuf;
            for m = 0 to n_sampling_metrics - 1 do
              Welford.add acc.ga_metrics.(m) (w *. vbuf.(m))
            done;
            Welford.add acc.ga_weight w;
            acc.ga_dies <- acc.ga_dies + 1
          done;
          Metrics.add m_sampling_dies acc.ga_dies;
          acc)
    in
    Array.iteri
      (fun g racc ->
        let ga = gaccs.(g) in
        for m = 0 to n_sampling_metrics - 1 do
          Welford.merge ~into:ga.ga_metrics.(m) racc.ga_metrics.(m)
        done;
        Welford.merge ~into:ga.ga_weight racc.ga_weight;
        ga.ga_dies <- ga.ga_dies + racc.ga_dies)
      round_accs;
    incr rounds;
    let hw = (combine (designated_metric scfg.s_ci_metric)).hw in
    (* A zero half-width means every die agreed — for indicator metrics
       that is evidence of sample starvation (a binomial with zero
       observed successes is not certain), not of convergence, so the
       rule demands a strictly positive variance estimate. *)
    if hw > 0.0 && hw <= scfg.s_ci_target then converged := true;
    match on_round with
    | None -> ()
    | Some f -> (
      try f ~round:!rounds ~max_rounds:scfg.s_max_rounds ~ci_halfwidth:hw
      with _ -> ())
  done;
  let designated = combine (designated_metric scfg.s_ci_metric) in
  {
    sr_config = scfg;
    sr_position = (match mode with Fixed_site p -> Some p | Wafer_field -> None);
    sr_clock_ns = clock;
    sr_rounds = !rounds;
    sr_converged = !converged;
    sr_dies = Array.fold_left (fun a ga -> a + ga.ga_dies) 0 gaccs;
    sr_estimate = designated.mid;
    sr_ci_halfwidth = designated.hw;
    sr_effective_samples =
      Array.fold_left
        (fun a ga -> a +. Smart_sampling.effective_samples ga.ga_weight)
        0.0 gaccs;
    sr_yield_uncompensated = combine 0;
    sr_yield_compensated = combine 1;
    sr_yield_chip_wide = combine 2;
    sr_rare = combine 3;
    sr_groups =
      Array.mapi
        (fun g ga ->
          {
            sg_ix = g mod s;
            sg_iy = g / s;
            sg_dies = ga.ga_dies;
            sg_components = Smart_sampling.n_components models.(g);
            sg_yield_uncompensated = Welford.mean ga.ga_metrics.(0);
            sg_rare = Welford.mean ga.ga_metrics.(3);
            sg_mean_weight = Welford.mean ga.ga_weight;
            sg_effective_samples =
              Smart_sampling.effective_samples ga.ga_weight;
          })
        gaccs;
  }

(* ------------------------------------------------------------------ *)
(* Sampling stage-graph exposure                                        *)

let sampling_config_label c =
  Printf.sprintf "%s-%dx%d-d%d-r%d-ci%g-%s-m%d-c%g-s%d-%s"
    (Smart_sampling.method_name c.s_method)
    c.s_strata c.s_strata c.s_dies_per_round c.s_max_rounds c.s_ci_target
    (ci_metric_name c.s_ci_metric)
    c.s_rare c.s_confidence c.s_seed
    (Island.direction_name c.s_direction)

type on_round = round:int -> max_rounds:int -> ci_halfwidth:float -> unit

let sampling_families_mu = Mutex.create ()

let sampling_families :
    (Sg.graph
    * ((sampling_config, sampling_report) Sg.keyed * on_round option ref))
    list
    ref =
  ref []

let sampling_family (t : Flow.t) :
    (sampling_config, sampling_report) Sg.keyed * on_round option ref =
  let g = Flow.graph t in
  Mutex.lock sampling_families_mu;
  let f =
    match List.find_opt (fun (g', _) -> g' == g) !sampling_families with
    | Some (_, f) -> f
    | None ->
      let cbref = ref None in
      let f =
        Sg.keyed g ~name:"sampling"
          ~deps:(fun cfg ->
            [ "sta"; "placed"; "sampler"; "clock";
              "shifters[" ^ Island.direction_name cfg.s_direction ^ "]" ])
          ~key_label:sampling_config_label
          (fun cfg ->
            run_sampling ?on_round:!cbref t
              (Flow.variant t cfg.s_direction)
              ~mode:Wafer_field cfg)
      in
      sampling_families := (g, (f, cbref)) :: !sampling_families;
      (f, cbref)
  in
  Mutex.unlock sampling_families_mu;
  f

let estimate_run ?pool ?on_round t cfg =
  run_sampling ?pool ?on_round t (Flow.variant t cfg.s_direction)
    ~mode:Wafer_field cfg

let estimate ?on_round t cfg =
  let f, cbref = sampling_family t in
  match on_round with
  | None -> Sg.get_keyed f cfg
  | Some _ ->
    cbref := on_round;
    Fun.protect
      ~finally:(fun () -> cbref := None)
      (fun () -> Sg.get_keyed f cfg)

let estimate_at ?pool ?on_round t ~position cfg =
  run_sampling ?pool ?on_round t
    (Flow.variant t cfg.s_direction)
    ~mode:(Fixed_site position) cfg

(* ------------------------------------------------------------------ *)
(* Sampling report rendering                                            *)

let pp_interval fmt { mid; hw } =
  if Float.is_finite hw then
    Format.fprintf fmt "%.4f%% +- %.4f%%" (100.0 *. mid) (100.0 *. hw)
  else Format.fprintf fmt "%.4f%% +- inf" (100.0 *. mid)

let pp_sampling fmt r =
  let c = r.sr_config in
  Format.fprintf fmt
    "%s estimator: %dx%d strata x %d dies/round, %d round(s) of max %d \
     (%s)@.\
    \  target: %s CI half-width <= %.4f%% at %.0f%% confidence@.\
    \  dies: %d  effective samples: %.1f@.\
    \  yield:  uncompensated %a   islands %a   chip-wide %a@.\
    \  P(>=%d islands violating): %a@."
    (Smart_sampling.method_name c.s_method)
    (match r.sr_position with Some _ -> 1 | None -> c.s_strata)
    (match r.sr_position with Some _ -> 1 | None -> c.s_strata)
    c.s_dies_per_round r.sr_rounds c.s_max_rounds
    (if r.sr_converged then "converged" else "round budget exhausted")
    (ci_metric_name c.s_ci_metric)
    (100.0 *. c.s_ci_target)
    (100.0 *. c.s_confidence)
    r.sr_dies r.sr_effective_samples pp_interval r.sr_yield_uncompensated
    pp_interval r.sr_yield_compensated pp_interval r.sr_yield_chip_wide
    c.s_rare pp_interval r.sr_rare

let sampling_to_json r =
  let c = r.sr_config in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let interval_json { mid; hw } =
    Printf.sprintf "{ \"mean\": %s, \"ci_halfwidth\": %s }" (json_float mid)
      (json_float hw)
  in
  add "{\n";
  add "  \"sampler\": \"%s\",\n" (Smart_sampling.method_name c.s_method);
  add "  \"strata\": %d,\n" c.s_strata;
  add "  \"dies_per_round\": %d,\n" c.s_dies_per_round;
  add "  \"max_rounds\": %d,\n" c.s_max_rounds;
  add "  \"ci_target\": %s,\n" (json_float c.s_ci_target);
  add "  \"ci_metric\": \"%s\",\n" (ci_metric_name c.s_ci_metric);
  add "  \"rare_scenario\": %d,\n" c.s_rare;
  add "  \"confidence\": %s,\n" (json_float c.s_confidence);
  add "  \"seed\": %d,\n" c.s_seed;
  add "  \"direction\": \"%s\",\n" (Island.direction_name c.s_direction);
  (match r.sr_position with
  | None -> ()
  | Some p ->
    add "  \"position\": { \"x_frac\": %s, \"y_frac\": %s },\n"
      (json_float (Position.x_frac p))
      (json_float (Position.y_frac p)));
  add "  \"clock_ns\": %s,\n" (json_float r.sr_clock_ns);
  add "  \"rounds\": %d,\n" r.sr_rounds;
  add "  \"converged\": %b,\n" r.sr_converged;
  add "  \"dies\": %d,\n" r.sr_dies;
  add "  \"estimate\": %s,\n" (json_float r.sr_estimate);
  add "  \"ci_halfwidth\": %s,\n" (json_float r.sr_ci_halfwidth);
  add "  \"effective_samples\": %s,\n" (json_float r.sr_effective_samples);
  add "  \"yield_uncompensated\": %s,\n" (interval_json r.sr_yield_uncompensated);
  add "  \"yield_compensated\": %s,\n" (interval_json r.sr_yield_compensated);
  add "  \"yield_chip_wide\": %s,\n" (interval_json r.sr_yield_chip_wide);
  add "  \"rare\": %s,\n" (interval_json r.sr_rare);
  add "  \"groups\": [\n";
  Array.iteri
    (fun i g ->
      add
        "    { \"ix\": %d, \"iy\": %d, \"dies\": %d, \"components\": %d, \
         \"yield_uncompensated\": %s, \"rare\": %s, \"mean_weight\": %s, \
         \"effective_samples\": %s }%s\n"
        g.sg_ix g.sg_iy g.sg_dies g.sg_components
        (json_float g.sg_yield_uncompensated)
        (json_float g.sg_rare)
        (json_float g.sg_mean_weight)
        (json_float g.sg_effective_samples)
        (if i < Array.length r.sr_groups - 1 then "," else ""))
    r.sr_groups;
  add "  ]\n}\n";
  Buffer.contents buf
