open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind

type breakdown = {
  switching_mw : float;
  clock_mw : float;
  leakage_mw : float;
}

type report = {
  frequency_mhz : float;
  total : breakdown;
  by_stage : (Stage.t * breakdown) list;
  per_cell : breakdown array;
}

let zero = { switching_mw = 0.0; clock_mw = 0.0; leakage_mw = 0.0 }

let add a b =
  {
    switching_mw = a.switching_mw +. b.switching_mw;
    clock_mw = a.clock_mw +. b.clock_mw;
    leakage_mw = a.leakage_mw +. b.leakage_mw;
  }

let total_mw b = b.switching_mw +. b.clock_mw +. b.leakage_mw

(* Clock-pin energy of a flop, as a fraction of its internal energy;
   charged every cycle (local clock buffering folded in). *)
let clock_energy_factor = 1.1

let analyze ?lgate_nm ~vdd ~activity ~wire_length ~clock_ns (nl : Netlist.t) =
  let lib = nl.Netlist.lib in
  let process = lib.Cell_lib.process in
  let lgate_nm =
    match lgate_nm with
    | Some f -> f
    | None -> fun _ -> process.Pvtol_stdcell.Process.l_nominal_nm
  in
  let f_hz = 1e9 /. clock_ns in
  let net_load = Array.make (Netlist.net_count nl) 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins =
        Array.fold_left
          (fun acc (cid, _) ->
            acc +. nl.Netlist.cells.(cid).Netlist.cell.Cell_lib.input_cap)
          0.0 net.Netlist.sinks
      in
      let wire =
        if net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 then 0.0
        else lib.Cell_lib.wire_cap_per_um *. wire_length net.Netlist.net_id
      in
      net_load.(net.Netlist.net_id) <- pins +. wire)
    nl.Netlist.nets;
  let per_stage = Hashtbl.create 8 in
  let total = ref zero in
  let per_cell = Array.make (Netlist.cell_count nl) zero in
  Array.iter
    (fun (c : Netlist.cell) ->
      let i = c.Netlist.id in
      let cell = c.Netlist.cell in
      let v = vdd i in
      let lg = lgate_nm i in
      (* fJ * Hz = 1e-15 W; report mW (1e-3 W) => factor 1e-12. *)
      let e_sw =
        Cell_lib.switching_energy_fj lib cell ~vdd:v
          ~load_ff:net_load.(c.Netlist.fanout)
      in
      let switching_mw = activity.Gatesim.rates.(i) *. e_sw *. f_hz *. 1e-12 in
      let clock_mw =
        if Kind.is_sequential cell.Cell_lib.kind then
          clock_energy_factor *. cell.Cell_lib.e_internal
          *. ((v /. process.Pvtol_stdcell.Process.vdd_low) ** 2.0)
          *. f_hz *. 1e-12
        else 0.0
      in
      (* nW -> mW *)
      let leakage_mw = Cell_lib.leakage_nw lib cell ~vdd:v ~lgate_nm:lg *. 1e-6 in
      let b = { switching_mw; clock_mw; leakage_mw } in
      per_cell.(i) <- b;
      total := add !total b;
      let cur =
        Option.value (Hashtbl.find_opt per_stage c.Netlist.stage) ~default:zero
      in
      Hashtbl.replace per_stage c.Netlist.stage (add cur b))
    nl.Netlist.cells;
  let by_stage =
    List.filter_map
      (fun s ->
        Option.map (fun b -> (s, b)) (Hashtbl.find_opt per_stage s))
      Stage.all
  in
  { frequency_mhz = 1000.0 /. clock_ns; total = !total; by_stage; per_cell }

let sum_cells r select =
  let acc = ref zero in
  Array.iteri (fun i b -> if select i then acc := add !acc b) r.per_cell;
  !acc

let stage_breakdown r s =
  List.find_map
    (fun (st, b) -> if Stage.equal st s then Some b else None)
    r.by_stage

let pp fmt r =
  Format.fprintf fmt
    "power @ %.1f MHz: total %.2f mW (switching %.2f, clock %.2f, leakage %.3f = %.1f%%)@."
    r.frequency_mhz (total_mw r.total) r.total.switching_mw r.total.clock_mw
    r.total.leakage_mw
    (100.0 *. r.total.leakage_mw /. total_mw r.total);
  List.iter
    (fun (s, b) ->
      Format.fprintf fmt "  %-14s %6.2f mW (%.2f%%)@." (Stage.name s)
        (total_mw b)
        (100.0 *. total_mw b /. total_mw r.total))
    r.by_stage
