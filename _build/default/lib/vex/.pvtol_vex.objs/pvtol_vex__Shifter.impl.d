lib/vex/shifter.ml: Array Gen
