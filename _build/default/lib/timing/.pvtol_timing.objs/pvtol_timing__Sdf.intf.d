lib/timing/sdf.mli: Netlist Pvtol_netlist
