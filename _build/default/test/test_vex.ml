(* Functional verification of the gate-level datapath generators against
   integer arithmetic, plus structural checks of the assembled core. *)

module Gen = Pvtol_vex.Gen
module Adder = Pvtol_vex.Adder
module Shifter = Pvtol_vex.Shifter
module Multiplier = Pvtol_vex.Multiplier
module Comparator = Pvtol_vex.Comparator
module Alu = Pvtol_vex.Alu
module Logic_cloud = Pvtol_vex.Logic_cloud
module Vex_core = Pvtol_vex.Vex_core
module Netlist = Pvtol_netlist.Netlist
module Stage = Pvtol_netlist.Stage

let mask w v = v land ((1 lsl w) - 1)

(* --- adders --- *)

let adder_dut build w =
  snd
    (Simtool.combinational ~widths:[ w; w ]
       ~build:(fun g -> function
         | [ a; b ] -> fst (build g a b)
         | _ -> assert false)
       ())

let qcheck_adder name build =
  let w = 16 in
  let eval = adder_dut build w in
  QCheck.Test.make ~name ~count:300
    QCheck.(pair (int_bound 65535) (int_bound 65535))
    (fun (a, b) -> eval [ a; b ] = mask w (a + b))

let prop_ripple = qcheck_adder "ripple adds" (fun g a b -> Adder.ripple g a b)
let prop_csel = qcheck_adder "carry-select adds" (fun g a b -> Adder.carry_select g a b)
let prop_ks = qcheck_adder "kogge-stone adds" (fun g a b -> Adder.kogge_stone g a b)

let test_adder_carry_out () =
  let w = 8 in
  let _, eval =
    Simtool.combinational ~widths:[ w; w ]
      ~build:(fun g -> function
        | [ a; b ] ->
          let sum, cout = Adder.kogge_stone g a b in
          Array.append sum [| cout |]
        | _ -> assert false)
      ()
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "%d+%d with carry" a b)
        (a + b)
        (eval [ a; b ]))
    [ (255, 1); (200, 100); (0, 0); (255, 255); (128, 128) ]

let prop_subtractor =
  let w = 12 in
  let eval = adder_dut (fun g a b -> Adder.subtractor g a b) w in
  QCheck.Test.make ~name:"subtractor subtracts" ~count:300
    QCheck.(pair (int_bound 4095) (int_bound 4095))
    (fun (a, b) -> eval [ a; b ] = mask w (a - b))

let test_incrementer () =
  let w = 8 in
  let _, eval =
    Simtool.combinational ~widths:[ w ]
      ~build:(fun g -> function
        | [ a ] -> Adder.incrementer g a
        | _ -> assert false)
      ()
  in
  for v = 0 to 255 do
    Alcotest.(check int) (Printf.sprintf "inc %d" v) (mask w (v + 1)) (eval [ v ])
  done

(* --- shifter --- *)

let prop_barrel =
  let w = 16 in
  let _, eval =
    Simtool.combinational ~widths:[ w; 4; 1 ]
      ~build:(fun g -> function
        | [ data; amount; dir ] -> Shifter.barrel g ~dir:dir.(0) ~amount data
        | _ -> assert false)
      ()
  in
  QCheck.Test.make ~name:"barrel shifter" ~count:300
    QCheck.(triple (int_bound 65535) (int_bound 15) bool)
    (fun (v, k, right) ->
      let expected = if right then mask w v lsr k else mask w (v lsl k) in
      eval [ v; k; (if right then 1 else 0) ] = expected)

let test_fixed_shift () =
  let w = 8 in
  let _, eval =
    Simtool.combinational ~widths:[ w ]
      ~build:(fun g -> function
        | [ a ] -> Shifter.fixed g Shifter.Left 3 a
        | _ -> assert false)
      ()
  in
  Alcotest.(check int) "fixed left 3" (mask w (0b1011 lsl 3)) (eval [ 0b1011 ])

(* --- multiplier --- *)

let prop_multiplier =
  let w = 8 in
  let _, eval =
    Simtool.combinational ~widths:[ w; w ]
      ~build:(fun g -> function
        | [ a; b ] -> Multiplier.array_multiplier g a b
        | _ -> assert false)
      ()
  in
  QCheck.Test.make ~name:"array multiplier (full product)" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) -> eval [ a; b ] = a * b)

let prop_multiplier_truncated =
  let w = 12 in
  let _, eval =
    Simtool.combinational ~widths:[ w; w ]
      ~build:(fun g -> function
        | [ a; b ] -> Multiplier.truncated g ~width:w a b
        | _ -> assert false)
      ()
  in
  QCheck.Test.make ~name:"truncated multiplier (low word)" ~count:300
    QCheck.(pair (int_bound 4095) (int_bound 4095))
    (fun (a, b) -> eval [ a; b ] = mask w (a * b))

(* --- comparator --- *)

let sign_extend w v = if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

let prop_comparator =
  let w = 8 in
  let _, eval =
    Simtool.combinational ~widths:[ w; w ]
      ~build:(fun g -> function
        | [ a; b ] ->
          let sum, _ = Adder.ripple g a b in
          let f = Comparator.flags g ~alu_result:sum ~a ~b in
          [| f.Comparator.zero; f.Comparator.negative; f.Comparator.equal;
             f.Comparator.less_than |]
        | _ -> assert false)
      ()
  in
  QCheck.Test.make ~name:"comparator flags" ~count:300
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let bits = eval [ a; b ] in
      let flag i = (bits lsr i) land 1 = 1 in
      let sum = mask w (a + b) in
      flag 0 = (sum = 0)
      && flag 1 = (sum land 0x80 <> 0)
      && flag 2 = (a = b)
      && flag 3 = (sign_extend w a < sign_extend w b))

(* --- ALU with in-series shifter --- *)

let alu_eval =
  let w = 16 in
  let _, eval =
    Simtool.combinational ~widths:[ w; w; 10 ]
      ~build:(fun g -> function
        | [ a; b; c ] ->
          let op =
            {
              Alu.use_sub = c.(0);
              logic_sel = [| c.(1); c.(2) |];
              shift_dir = c.(3);
              shift_amount = Array.sub c 4 4;
              shift_enable = c.(8);
            }
          in
          fst (Alu.alu_with_shifter g ~op ~a ~b)
        | _ -> assert false)
      ()
  in
  eval

let alu_reference ~a ~b ~sub ~logic ~dir ~amount ~shift_en =
  let w = 16 in
  let core =
    match logic with
    | 0 -> if sub then a - b else a + b
    | 1 -> a land b
    | 2 -> a lor b
    | _ -> a lxor b
  in
  let core = mask w core in
  if not shift_en then core
  else if dir then core lsr amount
  else mask w (core lsl amount)

let prop_alu =
  QCheck.Test.make ~name:"alu+shifter vs reference" ~count:400
    QCheck.(
      tup7 (int_bound 65535) (int_bound 65535) bool (int_bound 3) bool
        (int_bound 15) bool)
    (fun (a, b, sub, logic, dir, amount, shift_en) ->
      (* The shifter consumes operand B's low bits as the amount, so fix
         b's low nibble to the amount when shifting is enabled. *)
      let b = if shift_en then (b land lnot 15) lor amount else b in
      let ctrl =
        (if sub then 1 else 0)
        lor ((logic land 1) lsl 1)
        lor ((logic lsr 1) lsl 2)
        lor ((if dir then 1 else 0) lsl 3)
        lor ((b land 15) lsl 4)
        lor ((if shift_en then 1 else 0) lsl 8)
      in
      let got = alu_eval [ a; b; ctrl ] in
      let sub = sub && logic = 0 in
      got = alu_reference ~a ~b ~sub ~logic ~dir ~amount:(b land 15) ~shift_en)

(* --- logic cloud --- *)

let test_cloud_deterministic () =
  let build seed =
    let g = Gen.create ~design_name:"cloud" ~seed Pvtol_stdcell.Cell.default_library in
    let ins = Gen.inputs g "i" 16 in
    let out =
      Logic_cloud.build g { Logic_cloud.n_gates = 200; depth = 8; n_outputs = 4 } ins
    in
    Gen.outputs g "o" out;
    Netlist.Builder.freeze (Gen.builder g)
  in
  let a = build 5 and b = build 5 and c = build 6 in
  Alcotest.(check int) "same seed same size" (Netlist.cell_count a)
    (Netlist.cell_count b);
  Alcotest.(check bool) "seed changes structure" true
    (Netlist.cell_count a <> Netlist.cell_count c
    ||
    let kinds nl =
      Array.to_list
        (Array.map
           (fun (c : Netlist.cell) -> c.Netlist.cell.Pvtol_stdcell.Cell.kind)
           nl.Netlist.cells)
    in
    kinds a <> kinds c)

(* --- fanout tree --- *)

let test_fanout_tree_bound () =
  let g = Gen.create ~design_name:"fo" ~seed:1 Pvtol_stdcell.Cell.default_library in
  let src = Gen.inputs g "s" 1 in
  let copies = Gen.fanout_tree g ~fanout:8 src.(0) 100 in
  Array.iter (fun c -> Gen.outputs g "o" [| c |]) [| copies.(0) |];
  (* Keep all copies alive through OR reduction so freeze sees no
     dangling nets. *)
  let all = Gen.or_tree g (Array.to_list copies) in
  Gen.outputs g "keep" [| all |];
  let nl = Netlist.Builder.freeze (Gen.builder g) in
  Array.iter
    (fun (net : Netlist.net) ->
      let fo = Array.length net.Netlist.sinks in
      (* Buffer-tree nets stay within the requested bound (the OR
         reduction adds one sink per copy). *)
      Alcotest.(check bool)
        (Printf.sprintf "net %s fanout %d bounded" net.Netlist.net_name fo)
        true (fo <= 9))
    nl.Netlist.nets

(* --- register file, clocked --- *)

let test_regfile_write_then_read () =
  let module Regfile = Pvtol_vex.Regfile in
  let cfg =
    {
      Regfile.n_regs = 8;
      width = 8;
      n_read = 2;
      n_write = 2;
      addr_bits = 3;
      sel_fanout = 8;
    }
  in
  let g =
    Gen.create ~design_name:"rf" ~seed:1 Pvtol_stdcell.Cell.default_library
  in
  let read_addr = Array.init cfg.Regfile.n_read (fun i -> Gen.inputs g (Printf.sprintf "ra%d" i) 3) in
  let write_addr = Array.init cfg.Regfile.n_write (fun i -> Gen.inputs g (Printf.sprintf "wa%d" i) 3) in
  let write_data = Array.init cfg.Regfile.n_write (fun i -> Gen.inputs g (Printf.sprintf "wd%d" i) 8) in
  let write_en = Array.init cfg.Regfile.n_write (fun i -> (Gen.inputs g (Printf.sprintf "we%d" i) 1).(0)) in
  let rf = Regfile.build g cfg ~read_addr ~write_addr ~write_data ~write_en in
  Array.iteri (fun i bus -> Gen.outputs g (Printf.sprintf "rd%d" i) bus) rf.Regfile.read_data;
  let nl = Netlist.Builder.freeze (Gen.builder g) in
  let sim = Simtool.create nl in
  let write p ~addr ~data ~en =
    Simtool.set_bus sim write_addr.(p) addr;
    Simtool.set_bus sim write_data.(p) data;
    Simtool.set_input sim write_en.(p) (en = 1)
  in
  (* Cycle 1: port 0 writes 0xAB to r3, port 1 writes 0x5C to r5. *)
  write 0 ~addr:3 ~data:0xAB ~en:1;
  write 1 ~addr:5 ~data:0x5C ~en:1;
  Simtool.eval_comb sim;
  Simtool.clock_edge sim;
  (* Cycle 2: no writes; read back both registers. *)
  write 0 ~addr:0 ~data:0 ~en:0;
  write 1 ~addr:0 ~data:0 ~en:0;
  Simtool.set_bus sim read_addr.(0) 3;
  Simtool.set_bus sim read_addr.(1) 5;
  Simtool.eval_comb sim;
  Alcotest.(check int) "read r3" 0xAB (Simtool.read_bus sim rf.Regfile.read_data.(0));
  Alcotest.(check int) "read r5" 0x5C (Simtool.read_bus sim rf.Regfile.read_data.(1));
  (* Hold: clocking without write-enable preserves contents. *)
  Simtool.clock_edge sim;
  Simtool.eval_comb sim;
  Alcotest.(check int) "r3 held" 0xAB (Simtool.read_bus sim rf.Regfile.read_data.(0));
  (* Write-port conflict: both ports target r6; the higher port wins. *)
  write 0 ~addr:6 ~data:0x11 ~en:1;
  write 1 ~addr:6 ~data:0x22 ~en:1;
  Simtool.eval_comb sim;
  Simtool.clock_edge sim;
  write 0 ~addr:0 ~data:0 ~en:0;
  write 1 ~addr:0 ~data:0 ~en:0;
  Simtool.set_bus sim read_addr.(0) 6;
  Simtool.eval_comb sim;
  Alcotest.(check int) "conflict: highest port wins" 0x22
    (Simtool.read_bus sim rf.Regfile.read_data.(0))

(* --- assembled cores --- *)

let test_core_builds_all_sizes () =
  List.iter
    (fun cfg ->
      let v = Vex_core.build cfg in
      match Netlist.check v.Vex_core.netlist with
      | Ok () -> ()
      | Error es -> Alcotest.failf "core invariants: %s" (List.hd es))
    [ Vex_core.small_config;
      { Vex_core.small_config with Vex_core.mult_width = 12; decode_depth = 12 } ]

let test_core_deterministic () =
  let a = Vex_core.build Vex_core.small_config in
  let b = Vex_core.build Vex_core.small_config in
  Alcotest.(check int) "same cell count"
    (Netlist.cell_count a.Vex_core.netlist)
    (Netlist.cell_count b.Vex_core.netlist);
  Alcotest.(check int) "same net count"
    (Netlist.net_count a.Vex_core.netlist)
    (Netlist.net_count b.Vex_core.netlist)

let test_capture_classification () =
  let v = Vex_core.build Vex_core.small_config in
  let nl = v.Vex_core.netlist in
  let unclassified = ref 0 in
  Array.iter
    (fun (c : Pvtol_netlist.Netlist.cell) ->
      if not (Netlist.is_comb c) then
        match v.Vex_core.capture_stage c with
        | Some _ -> ()
        | None -> incr unclassified)
    nl.Netlist.cells;
  Alcotest.(check int) "every flop has a capture stage" 0 !unclassified;
  (* Combinational cells are never classified. *)
  let comb =
    Array.to_seq nl.Netlist.cells |> Seq.find (fun c -> Netlist.is_comb c)
  in
  match comb with
  | Some c ->
    Alcotest.(check bool) "comb cell unclassified" true
      (v.Vex_core.capture_stage c = None)
  | None -> Alcotest.fail "no combinational cell?"

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  ( "vex",
    [
      qcheck prop_ripple;
      qcheck prop_csel;
      qcheck prop_ks;
      Alcotest.test_case "adder carry out" `Quick test_adder_carry_out;
      qcheck prop_subtractor;
      Alcotest.test_case "incrementer exhaustive" `Quick test_incrementer;
      qcheck prop_barrel;
      Alcotest.test_case "fixed shift" `Quick test_fixed_shift;
      qcheck prop_multiplier;
      qcheck prop_multiplier_truncated;
      qcheck prop_comparator;
      qcheck prop_alu;
      Alcotest.test_case "cloud deterministic" `Quick test_cloud_deterministic;
      Alcotest.test_case "fanout tree bound" `Quick test_fanout_tree_bound;
      Alcotest.test_case "regfile write/read/hold/conflict" `Quick
        test_regfile_write_then_read;
      Alcotest.test_case "core builds" `Quick test_core_builds_all_sizes;
      Alcotest.test_case "core deterministic" `Quick test_core_deterministic;
      Alcotest.test_case "capture classification" `Quick test_capture_classification;
    ] )
