(** Perf-regression observatory: compare two [BENCH_ssta.json] files.

    Each kernel line in a schema-2 bench file carries a mean, a CI
    half-width and a sample count, so two runs can be compared
    {e statistically}: a kernel only counts as regressed (or improved)
    when the delta clears both the relative [threshold_pct] and the
    combined CI half-widths — a shift that two noisy runs could
    produce by chance stays "unchanged".  Legacy schema-1 files
    (bare [kernels_ns_per_run] point estimates) are read with a zero
    half-width, so only the threshold applies.

    Kernels present on only one side are reported ([Base_only] /
    [New_only]) but are never regressions — renaming or adding a
    kernel must not fail the gate. *)

type est = { ns : float; ci : float; n : int }
(** Mean ns per run, CI half-width (same unit), sample count. *)

type verdict = Regressed | Improved | Unchanged | Base_only | New_only

type line = {
  name : string;
  base : est option;
  next : est option;
  delta_pct : float option;  (** 100 * (next - base) / base, both sides *)
  verdict : verdict;
}

type report = {
  threshold_pct : float;
  lines : line list;  (** kernel-name order *)
}

val default_threshold_pct : float
(** 2.0 — a delta below ±2% never flags, however tight the CIs. *)

val kernels_of_json : Json.t -> ((string * est) list, string) result
(** Kernel estimates of one bench file; reads schema 2 ([.kernels])
    and falls back to schema 1 ([.kernels_ns_per_run]).  Kernels with
    a null estimate are skipped. *)

val compare : ?threshold_pct:float -> base:Json.t -> next:Json.t ->
  unit -> (report, string) result

val regressions : report -> string list
(** Names of the kernels whose verdict is [Regressed]. *)

val render : report -> string
(** Markdown: a verdict table (base, new, delta, noise bound per
    kernel) and a one-line summary. *)
