lib/timing/clock_tree.mli: Netlist Pvtol_netlist Pvtol_place
