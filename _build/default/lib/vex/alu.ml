open Gen

type op_select = {
  use_sub : net;
  logic_sel : bus;
  shift_dir : net;
  shift_amount : bus;
  shift_enable : net;
}

let alu_with_shifter t ~op ~a ~b =
  let w = Array.length a in
  assert (Array.length b = w);
  (* Add/sub share the adder through conditional operand inversion. *)
  let sub_fan = fanout_tree t op.use_sub w in
  let b_adj = Array.mapi (fun i bi -> xor2 t bi sub_fan.(i)) b in
  let addsub, _carry = Adder.kogge_stone t ~cin:op.use_sub a b_adj in
  let band = Array.map2 (and2 t) a b in
  let bor = Array.map2 (or2 t) a b in
  let bxor = Array.map2 (xor2 t) a b in
  assert (Array.length op.logic_sel = 2);
  let s0 = fanout_tree t op.logic_sel.(0) w in
  let s1 = fanout_tree t op.logic_sel.(1) w in
  let alu_out =
    Array.init w (fun i ->
        let low = mux2 t addsub.(i) band.(i) ~sel:s0.(i) in
        let high = mux2 t bor.(i) bxor.(i) ~sel:s0.(i) in
        mux2 t low high ~sel:s1.(i))
  in
  let flags = Comparator.flags t ~alu_result:alu_out ~a ~b in
  let amount_fan =
    Array.map (fun s -> fanout_tree t s w) op.shift_amount
  in
  (* Per-bit select nets keep the shifter mux fanout bounded. *)
  let shifted =
    let data = ref alu_out in
    let dir_fan = fanout_tree t op.shift_dir w in
    let left = ref alu_out and right = ref alu_out in
    for l = 0 to Array.length op.shift_amount - 1 do
      let k = 1 lsl l in
      let shift dir src =
        let moved = Shifter.fixed t dir k src in
        Array.mapi (fun i x -> mux2 t src.(i) x ~sel:amount_fan.(l).(i)) moved
      in
      left := shift Shifter.Left !left;
      right := shift Shifter.Right !right
    done;
    data := Array.mapi (fun i l -> mux2 t l !right.(i) ~sel:dir_fan.(i)) !left;
    !data
  in
  let en_fan = fanout_tree t op.shift_enable w in
  let result =
    Array.mapi (fun i x -> mux2 t alu_out.(i) x ~sel:en_fan.(i)) shifted
  in
  (result, flags)
