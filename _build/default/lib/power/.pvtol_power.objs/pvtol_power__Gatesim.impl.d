lib/power/gatesim.ml: Array Int32 List Netlist Pvtol_netlist Pvtol_stdcell Pvtol_util Queue String
