open Gen

let full_adder t a b cin =
  let p = xor2 t a b in
  let sum = xor2 t p cin in
  let g = and2 t a b in
  let cout = or2 t g (and2 t p cin) in
  (sum, cout)

let ripple t ?cin a b =
  let w = Array.length a in
  assert (Array.length b = w && w > 0);
  let cin = match cin with Some c -> c | None -> tie0 t in
  let sum = Array.make w a.(0) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder t a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let carry_select t ?(block = 8) ?cin a b =
  let w = Array.length a in
  assert (Array.length b = w && w > 0);
  let cin = match cin with Some c -> c | None -> tie0 t in
  let sum = Array.make w a.(0) in
  let carry = ref cin in
  let pos = ref 0 in
  (* First block ripples from the true carry-in; later blocks are
     computed for both carry values and selected. *)
  while !pos < w do
    let bw = min block (w - !pos) in
    let sub arr = Array.sub arr !pos bw in
    if !pos = 0 then begin
      let s, c = ripple t ~cin:!carry (sub a) (sub b) in
      Array.blit s 0 sum !pos bw;
      carry := c
    end
    else begin
      let s0, c0 = ripple t ~cin:(tie0 t) (sub a) (sub b) in
      let s1, c1 = ripple t ~cin:(tie1 t) (sub a) (sub b) in
      let sel = !carry in
      let s = mux2_bus t s0 s1 ~sel in
      Array.blit s 0 sum !pos bw;
      carry := mux2 t c0 c1 ~sel
    end;
    pos := !pos + bw
  done;
  (sum, !carry)

let kogge_stone t ?cin a b =
  let w = Array.length a in
  assert (Array.length b = w && w > 0);
  (* Generate/propagate, then log2 w prefix-combine levels:
     (g, p) o (g', p') = (g + p*g', p*p'). *)
  let g = ref (Array.map2 (and2 t) a b) in
  let p0 = Array.map2 (xor2 t) a b in
  let p = ref (Array.copy p0) in
  let d = ref 1 in
  while !d < w do
    let g' = Array.copy !g and p' = Array.copy !p in
    for i = w - 1 downto !d do
      g'.(i) <- or2 t !g.(i) (and2 t !p.(i) !g.(i - !d));
      p'.(i) <- and2 t !p.(i) !p.(i - !d)
    done;
    g := g';
    p := p';
    d := !d * 2
  done;
  (* Carries: c_i = G_i + P_i * cin (prefix over bits 0..i). *)
  let carry_into i =
    match cin with
    | None -> if i = 0 then None else Some (!g).(i - 1)
    | Some c ->
      if i = 0 then Some c
      else Some (or2 t (!g).(i - 1) (and2 t (!p).(i - 1) c))
  in
  let sum =
    Array.init w (fun i ->
        match carry_into i with
        | None -> buf t p0.(i)
        | Some c -> xor2 t p0.(i) c)
  in
  let cout =
    match carry_into w with Some c -> c | None -> assert false
  in
  (sum, cout)

let incrementer t a =
  let w = Array.length a in
  let sum = Array.make w a.(0) in
  let carry = ref (tie1 t) in
  for i = 0 to w - 1 do
    sum.(i) <- xor2 t a.(i) !carry;
    if i < w - 1 then carry := and2 t a.(i) !carry
  done;
  sum

let subtractor t a b =
  let nb = Array.map (inv t) b in
  carry_select t ~cin:(tie1 t) a nb
