(* Small reference logic simulator used by the functional tests:
   evaluates a frozen netlist cycle by cycle, exposing net values
   (unlike the production Gatesim, which only counts toggles). *)

open Pvtol_netlist
module Kind = Pvtol_stdcell.Kind

type t = {
  nl : Netlist.t;
  values : bool array;   (* per net *)
  order : int array;     (* combinational topo order *)
  flops : Netlist.cell array;
}

let is_seq (c : Netlist.cell) =
  Kind.is_sequential c.Netlist.cell.Pvtol_stdcell.Cell.kind

let create nl =
  let n = Netlist.cell_count nl in
  let indeg = Array.make n 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not (is_seq c) then
        Array.iter
          (fun nid ->
            match nl.Netlist.nets.(nid).Netlist.driver with
            | Some d when not (is_seq nl.Netlist.cells.(d)) ->
              indeg.(c.Netlist.id) <- indeg.(c.Netlist.id) + 1
            | Some _ | None -> ())
          c.Netlist.fanins)
    nl.Netlist.cells;
  let q = Queue.create () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if (not (is_seq c)) && indeg.(c.Netlist.id) = 0 then Queue.add c.Netlist.id q)
    nl.Netlist.cells;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let cid = Queue.pop q in
    order := cid :: !order;
    Array.iter
      (fun (sink, _) ->
        if not (is_seq nl.Netlist.cells.(sink)) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink q
        end)
      nl.Netlist.nets.(nl.Netlist.cells.(cid).Netlist.fanout).Netlist.sinks
  done;
  {
    nl;
    values = Array.make (Netlist.net_count nl) false;
    order = Array.of_list (List.rev !order);
    flops = Array.of_seq (Seq.filter is_seq (Array.to_seq nl.Netlist.cells));
  }

let set_input t nid v = t.values.(nid) <- v

let set_bus t (bus : Netlist.net_id array) value =
  Array.iteri (fun i nid -> set_input t nid ((value lsr i) land 1 = 1)) bus

let eval_comb t =
  Array.iter
    (fun cid ->
      let c = t.nl.Netlist.cells.(cid) in
      let ins = Array.map (fun nid -> t.values.(nid)) c.Netlist.fanins in
      t.values.(c.Netlist.fanout) <-
        Kind.eval c.Netlist.cell.Pvtol_stdcell.Cell.kind ins)
    t.order

let clock_edge t =
  let captured =
    Array.map (fun (c : Netlist.cell) -> t.values.(c.Netlist.fanins.(0))) t.flops
  in
  Array.iteri
    (fun i (c : Netlist.cell) -> t.values.(c.Netlist.fanout) <- captured.(i))
    t.flops

let read t nid = t.values.(nid)

let read_bus t (bus : Netlist.net_id array) =
  Array.to_list bus
  |> List.mapi (fun i nid -> if t.values.(nid) then 1 lsl i else 0)
  |> List.fold_left ( lor ) 0

(* Build-and-evaluate helper for purely combinational blocks expressed
   through the Gen API: [combinational builder ~inputs ~apply] returns a
   closure evaluating the block for given input integers. *)
let combinational ~(widths : int list)
    ~(build : Pvtol_vex.Gen.t -> Pvtol_vex.Gen.bus list -> Pvtol_vex.Gen.bus) ()
    =
  let g =
    Pvtol_vex.Gen.create ~design_name:"dut" ~seed:1
      Pvtol_stdcell.Cell.default_library
  in
  let inputs =
    List.mapi (fun i w -> Pvtol_vex.Gen.inputs g (Printf.sprintf "in%d" i) w) widths
  in
  let out = build g inputs in
  Pvtol_vex.Gen.outputs g "out" out;
  let nl = Netlist.Builder.freeze (Pvtol_vex.Gen.builder g) in
  let sim = create nl in
  ( nl,
    fun (args : int list) ->
      List.iter2 (fun bus v -> set_bus sim bus v) inputs args;
      eval_comb sim;
      read_bus sim out )
