module Geom = Pvtol_util.Geom
open Pvtol_netlist

type t = {
  nx : int;
  ny : int;
  bin_w : float;
  bin_h : float;
  occupied : float array;
}

let compute ?(nx = 32) ?(ny = 32) (p : Placement.t) =
  let core = p.Placement.floorplan.Floorplan.core in
  let bin_w = Geom.width core /. float_of_int nx in
  let bin_h = Geom.height core /. float_of_int ny in
  let occupied = Array.make (nx * ny) 0.0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let i = c.Netlist.id in
      let bx =
        max 0 (min (nx - 1) (int_of_float ((p.Placement.xs.(i) -. core.Geom.llx) /. bin_w)))
      in
      let by =
        max 0 (min (ny - 1) (int_of_float ((p.Placement.ys.(i) -. core.Geom.lly) /. bin_h)))
      in
      occupied.((by * nx) + bx) <-
        occupied.((by * nx) + bx) +. c.Netlist.cell.Pvtol_stdcell.Cell.area)
    p.Placement.netlist.Netlist.cells;
  { nx; ny; bin_w; bin_h; occupied }

let bin_area t = t.bin_w *. t.bin_h
let density t ix iy = t.occupied.((iy * t.nx) + ix) /. bin_area t

type side = Left | Right | Bottom | Top

let densest_side t =
  let third_x = t.nx / 3 and third_y = t.ny / 3 in
  let sum pred =
    let acc = ref 0.0 in
    for iy = 0 to t.ny - 1 do
      for ix = 0 to t.nx - 1 do
        if pred ix iy then acc := !acc +. t.occupied.((iy * t.nx) + ix)
      done
    done;
    !acc
  in
  let candidates =
    [
      (Left, sum (fun ix _ -> ix < third_x));
      (Right, sum (fun ix _ -> ix >= t.nx - third_x));
      (Bottom, sum (fun _ iy -> iy < third_y));
      (Top, sum (fun _ iy -> iy >= t.ny - third_y));
    ]
  in
  fst
    (List.fold_left
       (fun (bs, bv) (s, v) -> if v > bv then (s, v) else (bs, bv))
       (Left, neg_infinity) candidates)

let side_name = function
  | Left -> "left"
  | Right -> "right"
  | Bottom -> "bottom"
  | Top -> "top"
