(** Variance-reduced yield estimation: importance sampling, stratified
    Latin-hypercube positions, and sequential CI-driven stopping.

    The paper's tail events — a die exhibiting the highest violation
    scenario — occur on a few dies per thousand, so brute-force Monte
    Carlo burns nearly all samples on uninformative dies.  This module
    provides the estimator mathematics the {!Pvtol_core.Wafer} sampling
    driver runs on top of the {!Monte_carlo}-engined per-die kernel:

    - {b Importance sampling} (IS): a mixture of mean-shift tilts of
      the standard-normal Lgate noise, one component per near-critical
      endpoint of the stages that must slow down for the rare scenario
      to fire, plus a defensive untilted component.  Weights use the
      balance heuristic of multiple importance sampling (Owen & Zhou,
      JASA 2000), so they are bounded by [1 / alpha] and exactly
      unbiased: [E_q w f = E_p f] for every integrand.  The shift is
      realised {e without touching the die kernel}: the tilted mean
      [sigma * theta * u] is folded into the systematic Lgate field
      ({!Pvtol_variation.Sampler.shifted_systematic}) while the RNG
      stream is replayed via {!Pvtol_util.Srng.copy} +
      {!Pvtol_util.Srng.fill_gaussians} to recover the raw draw's
      projections for the likelihood ratio — bit-compatible with both
      MC engines, which consume the identical gaussian stream.
    - {b Tilt construction}: one component per worst endpoint
      ({!Pvtol_timing.Paths.worst_endpoints}) of each analyzed stage
      that sits below the clock among the [rare] slowest; its direction
      is the normalized per-cell delay sensitivity of the endpoint's
      critical path and its magnitude the linearized distance to the
      violation boundary.
    - {b Latin-hypercube strata}: per-axis stratified jitter plans so
      each of a stratum's sub-rows and sub-columns receives exactly one
      die per round.
    - {b Sequential stopping}: per-stratum {!Pvtol_util.Stream_stats}
      accumulators combined into a stratified estimate and a normal
      confidence interval; the driver stops when the half-width of the
      designated metric reaches the target. *)

open Pvtol_netlist

type method_ = Mc | Is | Lhs

val method_name : method_ -> string
val method_of_string : string -> method_ option

(** {2 Tilt components} *)

type tilt = {
  cells : int array;   (** sparse support (cell ids of the path) *)
  dir : float array;   (** unit direction over [cells] *)
  theta : float;       (** shift magnitude along [dir], in sigmas *)
}

val tilts :
  ?k_endpoints:int ->
  ?theta_frac:float ->
  ?theta_cap:float ->
  sampler:Pvtol_variation.Sampler.t ->
  sta:Pvtol_timing.Sta.t ->
  base:float array ->
  systematic:float array ->
  vdd:float ->
  clock:float ->
  stages:Stage.t list ->
  rare:int ->
  unit ->
  tilt array
(** Tilt components for the event "at least [rare] of [stages] violate
    [clock] at supply [vdd]" at the die position whose systematic Lgate
    field is [systematic].  One STA pass ranks the stages; each stage
    that is below the clock among the [rare] slowest contributes its
    [k_endpoints] (default 48) worst endpoints; each endpoint's traced
    critical path yields a sensitivity direction and a linearized
    boundary distance, scaled by [theta_frac] (default 0.9 — backing
    off the deterministic boundary toward the probabilistic one) and
    dropped above [theta_cap] (default 8.0, where the event is beyond
    reach and tilting would only waste samples).  Each near component
    (theta at most 4.5) also contributes two ladder rungs at 1/2 and
    3/4 of its theta: they fill the density shadow between the origin
    and the tilted means, collapsing the above-1 weights that rare
    draws in that region would otherwise carry.  Empty when the event
    is already deterministically common or unreachably rare — the
    caller falls back to plain sampling. *)

(** {2 Mixture model and likelihood-ratio weights} *)

type model
(** A site's sampling mixture: defensive mass [alpha] on the untilted
    distribution, the rest split over the tilt components proportional
    to [exp (-theta^2 / 2)] (components with nearer boundaries are
    sampled more), with the component Gram matrix precomputed for the
    balance-heuristic weight. *)

val plain : model
(** The untilted mixture (no components): plain Monte Carlo with unit
    weights, used wherever {!tilts} finds nothing to shift toward. *)

val make : ?alpha:float -> tilt array -> model
(** [alpha] (default 0.2) is the defensive untilted mass; weights are
    bounded by [1 / alpha].  An empty tilt array yields {!plain}. *)

val n_components : model -> int

val pick : model -> Pvtol_util.Srng.t -> int
(** Draw the mixture component for one die — consumes exactly one
    uniform, also on {!plain} so the per-die stream layout is
    method-wide constant.  [-1] selects the defensive untilted
    component. *)

val weight : model -> comp:int -> z:float array -> float
(** Balance-heuristic likelihood ratio of one die:
    [1 / (alpha + sum_j beta_j exp (theta_j <u_j, z_total> -
    theta_j^2 / 2))] where [z] is the die's {e raw} standard-normal
    draw (recovered by stream replay) and [z_total] adds the realised
    shift of component [comp] through the precomputed Gram matrix.
    Bounded by [1 / alpha]; equal to 1 on {!plain}. *)

val shift : model -> comp:int -> (tilt, unit) Either.t
(** The realised Lgate shift of a component pick: [Right ()] for the
    defensive component (no shift), [Left tilt] otherwise. *)

(** {2 Latin-hypercube jitter plans} *)

val lhs_permutations : Pvtol_util.Srng.t -> int -> int array * int array
(** [lhs_permutations rng n]: independent permutations of [0 .. n-1]
    for the x and y axes.  Die [r] of the round then jitters to
    [((px.(r) + ux) / n, (py.(r) + uy) / n)] — every per-axis
    sub-stratum receives exactly one die per round. *)

(** {2 Stratified estimates} *)

val combine :
  confidence:float ->
  (float * Pvtol_util.Stream_stats.Welford.t) array ->
  float * float
(** [combine ~confidence groups] where each group carries probability
    mass [pi] and a {!Pvtol_util.Stream_stats.Welford} accumulator of
    per-die (weighted) values: the stratified estimate
    [sum pi * mean] and its normal-theory CI half-width
    [z * sqrt (sum pi^2 var / n)].  The half-width is [infinity] while
    any group has fewer than two samples (the n<2 variance guard), and
    0 for an empty group set. *)

val effective_samples : Pvtol_util.Stream_stats.Welford.t -> float
(** Kish effective sample size [(sum w)^2 / sum w^2] of a weight
    accumulator; equals the count for unit weights, 0 when empty. *)
