(* Differential tests of the golden (scalar) vs batched (SoA +
   incremental) Monte-Carlo engines, through every MC-consuming path:
   [Monte_carlo.run] itself, the [Postsilicon] die kernel, and a
   [Wafer] sweep — at the named die positions A-D, one off-diagonal
   die, and 1/2/4 domains.  Tolerances per [Engine_diff]. *)

module MC = Pvtol_ssta.Monte_carlo
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Netlist = Pvtol_netlist.Netlist
module Postsilicon = Pvtol_core.Postsilicon
module Wafer = Pvtol_core.Wafer
module Compare = Pvtol_core.Compare
module Compensation = Pvtol_core.Compensation
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng

(* Raw placement env (no flow) for the plain MC diffs. *)
let mc_env =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     let p = Pvtol_place.Placer.place nl fp in
     let sta = Sta.of_placement p ~capture:v.Pvtol_vex.Vex_core.capture_stage in
     (p, sta, Sampler.create ()))

let flow_env = Test_extensions.env

let positions =
  Position.named @ [ Position.at_xy ~x_frac:0.3 ~y_frac:0.7 () ]

let test_mc_engines () =
  let p, sta, sampler = Lazy.force mc_env in
  List.iter
    (fun position ->
      List.iter
        (fun domains ->
          let pool = Pool.create ~domains () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () ->
              let golden, batched =
                Engine_diff.both (fun engine ->
                    MC.run
                      ~config:{ MC.samples = 60; seed = 5 }
                      ~engine ~pool ~sampler ~sta ~placement:p ~position ())
              in
              Engine_diff.check_mc
                ~label:
                  (Printf.sprintf "%s/%d domains" position.Position.label
                     domains)
                golden batched))
        [ 1; 2; 4 ])
    positions

let test_mc_engine_env_selection () =
  (* The environment variable reaches the default engine: under
     [golden] the env-selected run is bit-identical to an explicit
     [~engine:Golden] run (and likewise for [batched]). *)
  let p, sta, sampler = Lazy.force mc_env in
  let run ?engine () =
    MC.run
      ~config:{ MC.samples = 32; seed = 5 }
      ?engine ~sampler ~sta ~placement:p ~position:Position.point_b ()
  in
  List.iter
    (fun (name, engine) ->
      let by_env = Engine_diff.with_engine_env name (fun () -> run ()) in
      let explicit = run ~engine () in
      Alcotest.(check bool)
        (name ^ ": env selects the same engine")
        true
        (by_env.MC.worst_samples = explicit.MC.worst_samples))
    [ ("golden", MC.Golden); ("batched", MC.Batched) ]

let test_postsilicon_engines () =
  (* The incremental STA is exact, so whole die records — verdicts,
     raised counts AND the worst-delay float — must be bit-identical
     between engines at every position. *)
  let t, v = Lazy.force flow_env in
  let kg = Postsilicon.kernel ~engine:MC.Golden t v in
  let kb = Postsilicon.kernel ~engine:MC.Batched t v in
  let scg = Postsilicon.scratch kg and scb = Postsilicon.scratch kb in
  List.iter
    (fun position ->
      let sys_g = Postsilicon.systematic kg position in
      let sys_b = Postsilicon.systematic kb position in
      Alcotest.(check bool)
        (position.Position.label ^ ": same systematic")
        true (sys_g = sys_b);
      let rng_g = Srng.create 11 and rng_b = Srng.create 11 in
      for die = 1 to 6 do
        let dg = Postsilicon.simulate_die kg scg ~systematic:sys_g rng_g in
        let db = Postsilicon.simulate_die kb scb ~systematic:sys_b rng_b in
        if dg <> db then
          Alcotest.failf "%s: die %d differs between engines"
            position.Position.label die
      done)
    positions

let test_wafer_engines () =
  (* A whole sweep through the env-var plumbing: every cell (yields,
     scenario histograms, power, delay summaries) bit-identical. *)
  let t, v = Lazy.force flow_env in
  let cfg =
    { Wafer.default_config with Wafer.nx = 3; ny = 3; dies_per_cell = 4 }
  in
  let sweep name =
    Engine_diff.with_engine_env name (fun () -> Wafer.run t v cfg)
  in
  let g = sweep "golden" and b = sweep "batched" in
  Alcotest.(check bool) "cells bit-identical" true (g.Wafer.cells = b.Wafer.cells);
  Alcotest.(check bool) "sweeps bit-identical" true (g = b)

let test_compare_engines () =
  (* The strategy comparison inherits the engine through the env like
     the wafer sweep; the shared-scratch strategies use the incremental
     STA (exact) and the skew/buffer strategies run full passes on
     private workspaces either way, so whole reports — every strategy's
     yield, power, knob and area columns — are bit-identical. *)
  let t, v = Lazy.force flow_env in
  let cfg =
    {
      Compare.nx = 3;
      ny = 2;
      dies_per_cell = 4;
      fields = 1;
      seed = 7;
      direction = Pvtol_core.Island.Vertical;
      choices = Compensation.all_choices;
    }
  in
  let report name =
    Engine_diff.with_engine_env name (fun () -> Compare.run t v cfg)
  in
  let g = report "golden" and b = report "batched" in
  Alcotest.(check bool) "strategy results bit-identical" true
    (g.Compare.results = b.Compare.results);
  Alcotest.(check bool) "reports bit-identical" true (g = b)

let suite =
  ( "engines",
    [
      Alcotest.test_case "mc golden vs batched (A-D, off-diagonal, 1/2/4 domains)"
        `Quick test_mc_engines;
      Alcotest.test_case "env engine selection" `Quick
        test_mc_engine_env_selection;
      Alcotest.test_case "postsilicon dies bit-identical across engines" `Quick
        test_postsilicon_engines;
      Alcotest.test_case "wafer sweep bit-identical across engines" `Quick
        test_wafer_engines;
      Alcotest.test_case "strategy comparison bit-identical across engines"
        `Quick test_compare_engines;
    ] )
