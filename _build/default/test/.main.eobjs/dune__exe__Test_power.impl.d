test/test_power.ml: Alcotest Array Float Int32 Lazy List Netlist Pvtol_netlist Pvtol_place Pvtol_power Pvtol_stdcell Pvtol_vex Pvtol_vexsim Stage
