test/test_misc.ml: Alcotest Array Filename Float Format Fun Lazy List Netlist Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_vex String Sys
