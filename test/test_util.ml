(* Tests for Pvtol_util: PRNG, statistics, special functions, fitting,
   histograms, geometry, tables. *)

module Srng = Pvtol_util.Srng
module Pool = Pvtol_util.Pool
module Stats = Pvtol_util.Stats
module Specfun = Pvtol_util.Specfun
module Fit = Pvtol_util.Fit
module Histo = Pvtol_util.Histo
module Geom = Pvtol_util.Geom
module Table = Pvtol_util.Table

let approx ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_approx ?(eps = 1e-6) msg expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* --- Srng --- *)

let test_srng_deterministic () =
  let a = Srng.create 42 and b = Srng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Srng.bits64 a) (Srng.bits64 b)
  done

let test_srng_copy () =
  let a = Srng.create 7 in
  ignore (Srng.bits64 a);
  let b = Srng.copy a in
  Alcotest.(check int64) "copy continues identically" (Srng.bits64 a) (Srng.bits64 b)

let test_srng_uniform_range () =
  let g = Srng.create 1 in
  for _ = 1 to 10_000 do
    let u = Srng.uniform g in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "uniform out of range: %f" u
  done

let test_srng_int_range () =
  let g = Srng.create 2 in
  let seen = Array.make 7 0 in
  for _ = 1 to 7_000 do
    let v = Srng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i n -> if n < 700 then Alcotest.failf "bucket %d suspiciously rare: %d" i n)
    seen

let test_srng_gaussian_moments () =
  let g = Srng.create 3 in
  let acc = Stats.Running.create () in
  for _ = 1 to 50_000 do
    Stats.Running.add acc (Srng.gaussian g)
  done;
  check_approx ~eps:0.03 "gaussian mean" 0.0 (Stats.Running.mean acc);
  check_approx ~eps:0.03 "gaussian stddev" 1.0 (Stats.Running.stddev acc)

let test_srng_jump () =
  (* jump n == discarding n raw draws. *)
  let a = Srng.create 23 and b = Srng.create 23 in
  for _ = 1 to 17 do
    ignore (Srng.bits64 a)
  done;
  Srng.jump b 17;
  Alcotest.(check int64) "jump matches drawn stream" (Srng.bits64 a) (Srng.bits64 b);
  (* jump 0 clears the Box-Muller cache but leaves the raw stream. *)
  let c = Srng.create 5 and d = Srng.create 5 in
  ignore (Srng.gaussian c);
  (* c holds a cached half *)
  Srng.jump c 0;
  Srng.jump d 2;
  (* d skipped the same pair of uniforms *)
  Alcotest.(check int64) "cache dropped" (Srng.bits64 c) (Srng.bits64 d)

let test_srng_fill_gaussians () =
  (* Bulk fill is bit-identical to successive [gaussian] calls for any
     alignment of the Box-Muller pair cache: even/odd lengths, a
     pre-existing cached half, and segmented fills. *)
  let check label ~warmup lens =
    let total = List.fold_left ( + ) 0 lens in
    let a = Srng.create 41 and b = Srng.create 41 in
    if warmup then (
      ignore (Srng.gaussian a);
      ignore (Srng.gaussian b));
    let expect = Array.init total (fun _ -> Srng.gaussian a) in
    let got = Array.make total nan in
    let pos = ref 0 in
    List.iter
      (fun len ->
        Srng.fill_gaussians b got ~pos:!pos ~len;
        pos := !pos + len)
      lens;
    for i = 0 to total - 1 do
      if got.(i) <> expect.(i) then
        Alcotest.failf "%s: draw %d differs (%h vs %h)" label i got.(i)
          expect.(i)
    done;
    (* And the two generators leave the stream in the same state. *)
    Alcotest.(check int64)
      (label ^ ": stream state") (Srng.bits64 a) (Srng.bits64 b)
  in
  check "even" ~warmup:false [ 64 ];
  check "odd" ~warmup:false [ 63 ];
  check "cached half" ~warmup:true [ 64 ];
  check "cached half, odd" ~warmup:true [ 7 ];
  check "segmented" ~warmup:false [ 5; 1; 12; 0; 9 ];
  check "single" ~warmup:true [ 1 ]

let test_srng_split_diverges () =
  let a = Srng.create 11 in
  let b = Srng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Srng.bits64 a = Srng.bits64 b then incr equal
  done;
  Alcotest.(check int) "split streams differ" 0 !equal

let test_srng_shuffle_permutation () =
  let g = Srng.create 5 in
  let a = Array.init 100 (fun i -> i) in
  Srng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 (fun i -> i)) sorted

(* --- Stats --- *)

let test_stats_known () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let s = Stats.summarize xs in
  check_approx "mean" 5.0 s.Stats.mean;
  (* Unbiased sample variance of this classic set is 32/7. *)
  check_approx "stddev" (sqrt (32.0 /. 7.0)) s.Stats.stddev;
  check_approx "min" 2.0 s.Stats.min;
  check_approx "max" 9.0 s.Stats.max

let test_stats_welford_matches_direct () =
  let g = Srng.create 9 in
  let xs = Array.init 1000 (fun _ -> Srng.uniform g *. 100.0) in
  let s = Stats.summarize xs in
  let mean = Array.fold_left ( +. ) 0.0 xs /. 1000.0 in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. 999.0
  in
  check_approx ~eps:1e-9 "welford mean" mean s.Stats.mean;
  check_approx ~eps:1e-7 "welford stddev" (sqrt var) s.Stats.stddev

let test_welford_ci_halfwidth () =
  let module W = Pvtol_util.Stream_stats.Welford in
  let w = W.create () in
  Alcotest.(check bool) "empty is infinite" true (W.ci_halfwidth w = infinity);
  W.add w 3.0;
  (* One sample has no variance estimate: the n<2 guard must keep a
     stopping rule from firing on a variance guess of 0. *)
  Alcotest.(check bool) "single sample is infinite" true
    (W.ci_halfwidth w = infinity);
  let g = Srng.create 11 in
  let w = W.create () in
  for _ = 1 to 400 do
    W.add w (Srng.gaussian g)
  done;
  let expect conf =
    Pvtol_util.Specfun.normal_quantile ~mu:0.0 ~sigma:1.0
      ((1.0 +. conf) /. 2.0)
    *. sqrt (W.variance w /. 400.0)
  in
  check_approx ~eps:1e-12 "default is 95%" (expect 0.95) (W.ci_halfwidth w);
  check_approx ~eps:1e-12 "99% widens"
    (expect 0.99)
    (W.ci_halfwidth ~confidence:0.99 w);
  Alcotest.(check bool) "confidence monotone" true
    (W.ci_halfwidth ~confidence:0.99 w > W.ci_halfwidth ~confidence:0.9 w);
  Alcotest.check_raises "confidence 0 rejected"
    (Invalid_argument
       "Stream_stats.Welford.ci_halfwidth: confidence must be in (0, 1)")
    (fun () -> ignore (W.ci_halfwidth ~confidence:0.0 w));
  Alcotest.check_raises "confidence 1 rejected"
    (Invalid_argument
       "Stream_stats.Welford.ci_halfwidth: confidence must be in (0, 1)")
    (fun () -> ignore (W.ci_halfwidth ~confidence:1.0 w))

let test_welford_merge_self_guard () =
  let module W = Pvtol_util.Stream_stats.Welford in
  let w = W.create () in
  W.add w 1.0;
  W.add w 2.0;
  Alcotest.check_raises "self-merge rejected"
    (Invalid_argument
       "Stream_stats.Welford.merge: accumulator merged into itself")
    (fun () -> W.merge ~into:w w);
  (* The guard is physical equality: merging an equal-valued but
     distinct accumulator is legitimate. *)
  let w2 = W.create () in
  W.add w2 1.0;
  W.add w2 2.0;
  W.merge ~into:w w2;
  Alcotest.(check int) "distinct twin merges" 4 (W.count w)

let test_stats_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_approx "median" 3.0 (Stats.quantile xs 0.5);
  check_approx "min quantile" 1.0 (Stats.quantile xs 0.0);
  check_approx "max quantile" 5.0 (Stats.quantile xs 1.0);
  check_approx "interpolated" 1.5 (Stats.quantile xs 0.125)

let test_three_sigma () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check_approx "3 sigma" (s.Stats.mean +. (3.0 *. s.Stats.stddev)) (Stats.three_sigma s)

(* --- Specfun --- *)

let test_erf_values () =
  check_approx ~eps:1e-6 "erf 0" 0.0 (Specfun.erf 0.0);
  check_approx ~eps:1e-6 "erf 1" 0.8427007929 (Specfun.erf 1.0);
  check_approx ~eps:1e-6 "erf -1" (-0.8427007929) (Specfun.erf (-1.0));
  check_approx ~eps:1e-6 "erf 2" 0.9953222650 (Specfun.erf 2.0)

let test_normal_cdf () =
  check_approx ~eps:1e-7 "cdf at mean" 0.5 (Specfun.normal_cdf ~mu:3.0 ~sigma:2.0 3.0);
  check_approx ~eps:1e-6 "cdf +1 sigma" 0.8413447461
    (Specfun.normal_cdf ~mu:0.0 ~sigma:1.0 1.0);
  check_approx ~eps:1e-6 "cdf 3 sigma" 0.9986501020
    (Specfun.normal_cdf ~mu:0.0 ~sigma:1.0 3.0)

let test_normal_quantile_inverts_cdf () =
  List.iter
    (fun p ->
      let x = Specfun.normal_quantile ~mu:1.0 ~sigma:2.5 p in
      check_approx ~eps:1e-6 "quantile inverts cdf" p
        (Specfun.normal_cdf ~mu:1.0 ~sigma:2.5 x))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_chi2 () =
  (* Known critical values at alpha = 0.05. *)
  check_approx ~eps:0.01 "chi2 crit dof 1" 3.841 (Specfun.chi2_critical ~dof:1 ~alpha:0.05);
  check_approx ~eps:0.01 "chi2 crit dof 5" 11.070 (Specfun.chi2_critical ~dof:5 ~alpha:0.05);
  check_approx ~eps:0.01 "chi2 crit dof 10" 18.307
    (Specfun.chi2_critical ~dof:10 ~alpha:0.05);
  check_approx ~eps:1e-6 "chi2 cdf at 0" 0.0 (Specfun.chi2_cdf ~dof:3 0.0);
  (* chi2 with dof 2 is Exp(1/2): CDF(x) = 1 - exp(-x/2). *)
  check_approx ~eps:1e-7 "chi2 dof 2 closed form" (1.0 -. exp (-1.5))
    (Specfun.chi2_cdf ~dof:2 3.0)

let test_gamma_identities () =
  (* ln Gamma(n) = ln (n-1)! *)
  check_approx ~eps:1e-9 "lngamma 5" (log 24.0) (Specfun.ln_gamma 5.0);
  check_approx ~eps:1e-9 "lngamma 1" 0.0 (Specfun.ln_gamma 1.0);
  check_approx ~eps:1e-7 "P + Q = 1" 1.0
    (Specfun.gamma_p 2.5 1.7 +. Specfun.gamma_q 2.5 1.7)

(* --- Fit --- *)

let test_fit_gaussian_accepted () =
  let g = Srng.create 21 in
  let xs = Array.init 2000 (fun _ -> Srng.gaussian_mu_sigma g ~mu:10.0 ~sigma:2.0) in
  let normal, gof = Fit.fit_and_test xs in
  check_approx ~eps:0.15 "fit mu" 10.0 normal.Fit.mu;
  check_approx ~eps:0.15 "fit sigma" 2.0 normal.Fit.sigma;
  Alcotest.(check bool) "gaussian sample accepted" true gof.Fit.accepted

let test_fit_uniform_rejected () =
  let g = Srng.create 22 in
  let xs = Array.init 4000 (fun _ -> Srng.uniform g) in
  let _, gof = Fit.fit_and_test xs in
  Alcotest.(check bool) "uniform sample rejected as normal" false gof.Fit.accepted

(* --- Histo --- *)

let test_histo_counts () =
  let h = Histo.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histo.add h) [ 0.5; 1.5; 1.6; 9.9; -5.0; 15.0 ];
  Alcotest.(check int) "total" 6 (Histo.count h);
  Alcotest.(check int) "bin 0 gets clamped low too" 2 (Histo.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histo.bin_count h 1);
  Alcotest.(check int) "last bin gets clamped high too" 2 (Histo.bin_count h 9)

let test_histo_density_integrates_to_one () =
  let g = Srng.create 30 in
  let xs = Array.init 500 (fun _ -> Srng.gaussian g) in
  let h = Histo.of_samples ~bins:16 xs in
  let integral = ref 0.0 in
  for i = 0 to Histo.bins h - 1 do
    integral := !integral +. (Histo.density h i *. Histo.bin_width h)
  done;
  check_approx ~eps:1e-9 "density integrates to 1" 1.0 !integral

(* --- Geom --- *)

let test_geom_basics () =
  let r = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:4.0 ~ury:2.0 in
  check_approx "area" 8.0 (Geom.area r);
  Alcotest.(check bool) "contains inside" true (Geom.contains r (Geom.point 1.0 1.0));
  Alcotest.(check bool) "lower edge closed" true (Geom.contains r (Geom.point 0.0 0.0));
  Alcotest.(check bool) "upper edge open" false (Geom.contains r (Geom.point 4.0 1.0));
  let r2 = Geom.rect ~llx:3.0 ~lly:1.0 ~urx:5.0 ~ury:3.0 in
  Alcotest.(check bool) "intersects" true (Geom.intersects r r2);
  (match Geom.inter r r2 with
  | Some i -> check_approx "intersection area" 1.0 (Geom.area i)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "subsumes" true (Geom.subsumes (Geom.expand r 1.0) r)

let test_geom_partition_property =
  QCheck.Test.make ~name:"half-split assigns each point to exactly one side"
    ~count:200
    QCheck.(triple (float_range 0.0 10.0) (float_range 0.0 10.0) (float_range 0.1 9.9))
    (fun (x, y, cut) ->
      let left = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:cut ~ury:10.0 in
      let right = Geom.rect ~llx:cut ~lly:0.0 ~urx:10.0 ~ury:10.0 in
      let p = Geom.point x y in
      let in_left = Geom.contains left p and in_right = Geom.contains right p in
      (* Inside the union, membership is exclusive. *)
      (not (in_left && in_right)) && (in_left || in_right))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "mentions header" true
    (String.length out > 0 && String.sub out 1 4 = "name");
  Alcotest.(check bool) "contains separator" true (String.contains out '+');
  Alcotest.(check string) "fcell" "3.142" (Table.fcell ~decimals:3 3.14159);
  Alcotest.(check string) "pcell" "8.35%" (Table.pcell 0.0835)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Pool --- *)

let with_pool ~domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_ordering () =
  (* Results land in chunk order whatever the domain count. *)
  let expected = Array.init 53 (fun c -> c * c) in
  List.iter
    (fun domains ->
      with_pool ~domains (fun p ->
          let got =
            Pool.parallel_chunks p ~chunks:53
              ~init:(fun ~worker -> worker)
              ~f:(fun _ c -> c * c)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "ordered with %d domains" domains)
            expected got))
    [ 1; 2; 4 ]

let test_pool_map () =
  with_pool ~domains:3 (fun p ->
      let got = Pool.map p ~f:(fun x -> x + 1) (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "map order" (Array.init 10 (fun i -> i + 1)) got)

let test_pool_exception () =
  with_pool ~domains:4 (fun p ->
      (try
         ignore
           (Pool.parallel_chunks p ~chunks:20
              ~init:(fun ~worker:_ -> ())
              ~f:(fun () c -> if c = 7 || c = 13 then failwith "chunk boom" else c));
         Alcotest.fail "expected exception"
       with Failure m -> Alcotest.(check string) "propagated" "chunk boom" m);
      (* The pool survives a failing job. *)
      let got =
        Pool.parallel_chunks p ~chunks:5
          ~init:(fun ~worker:_ -> ())
          ~f:(fun () c -> c)
      in
      Alcotest.(check (array int)) "pool reusable" [| 0; 1; 2; 3; 4 |] got)

let test_pool_nested () =
  (* A task that fans out again must not deadlock: the nested call runs
     serially inside the worker and still returns ordered results. *)
  with_pool ~domains:4 (fun p ->
      let got =
        Pool.parallel_chunks p ~chunks:6
          ~init:(fun ~worker:_ -> ())
          ~f:(fun () c ->
            let inner =
              Pool.parallel_chunks p ~chunks:4
                ~init:(fun ~worker:_ -> ())
                ~f:(fun () i -> (10 * c) + i)
            in
            Array.fold_left ( + ) 0 inner)
      in
      Alcotest.(check (array int))
        "nested results"
        (Array.init 6 (fun c -> (40 * c) + 6))
        got)

let test_pool_worker_state () =
  (* init runs once per participating domain; workers reuse their state
     across chunks (counts sum to the chunk total). *)
  with_pool ~domains:3 (fun p ->
      let counters =
        Pool.parallel_chunks p ~chunks:40
          ~init:(fun ~worker:_ -> ref 0)
          ~f:(fun r _ ->
            incr r;
            r)
      in
      let distinct =
        Array.fold_left
          (fun acc r -> if List.memq r acc then acc else r :: acc)
          [] counters
      in
      Alcotest.(check bool) "few distinct states" true (List.length distinct <= 3);
      let total = List.fold_left (fun acc r -> acc + !r) 0 distinct in
      Alcotest.(check int) "all chunks counted" 40 total)

let test_pool_default_count () =
  Alcotest.(check bool) "default domain count positive" true
    (Pool.default_domain_count () >= 1)

let test_pool_env_parsing () =
  (* Unix.putenv mutates the process environment, which is what
     Sys.getenv_opt reads.  Restore the previous value afterwards. *)
  let old = Sys.getenv_opt "PVTOL_DOMAINS" in
  let restore () = Unix.putenv "PVTOL_DOMAINS" (Option.value ~default:"" old) in
  Fun.protect ~finally:restore (fun () ->
      let hw = max 1 (Domain.recommended_domain_count ()) in
      let with_env v = Unix.putenv "PVTOL_DOMAINS" v; Pool.default_domain_count () in
      Alcotest.(check int) "valid value honoured" 3 (with_env "3");
      Alcotest.(check int) "whitespace trimmed" 2 (with_env " 2 ");
      Alcotest.(check int) "clamped to 64" 64 (with_env "1000");
      (* Malformed values fall back to the hardware default. *)
      Alcotest.(check int) "non-numeric ignored" hw (with_env "lots");
      Alcotest.(check int) "zero ignored" hw (with_env "0");
      Alcotest.(check int) "negative ignored" hw (with_env "-4");
      Alcotest.(check int) "empty ignored" hw (with_env ""))

let suite =
  ( "util",
    [
      Alcotest.test_case "srng deterministic" `Quick test_srng_deterministic;
      Alcotest.test_case "srng copy" `Quick test_srng_copy;
      Alcotest.test_case "srng uniform range" `Quick test_srng_uniform_range;
      Alcotest.test_case "srng int range" `Quick test_srng_int_range;
      Alcotest.test_case "srng gaussian moments" `Quick test_srng_gaussian_moments;
      Alcotest.test_case "srng split diverges" `Quick test_srng_split_diverges;
      Alcotest.test_case "srng jump" `Quick test_srng_jump;
      Alcotest.test_case "srng fill_gaussians" `Quick test_srng_fill_gaussians;
      Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool map" `Quick test_pool_map;
      Alcotest.test_case "pool exception propagation" `Quick test_pool_exception;
      Alcotest.test_case "pool nested-use guard" `Quick test_pool_nested;
      Alcotest.test_case "pool worker-local state" `Quick test_pool_worker_state;
      Alcotest.test_case "pool default domain count" `Quick test_pool_default_count;
      Alcotest.test_case "pool PVTOL_DOMAINS parsing" `Quick test_pool_env_parsing;
      Alcotest.test_case "srng shuffle permutation" `Quick test_srng_shuffle_permutation;
      Alcotest.test_case "stats known values" `Quick test_stats_known;
      Alcotest.test_case "stats welford" `Quick test_stats_welford_matches_direct;
      Alcotest.test_case "welford ci halfwidth" `Quick test_welford_ci_halfwidth;
      Alcotest.test_case "welford merge self guard" `Quick
        test_welford_merge_self_guard;
      Alcotest.test_case "stats quantile" `Quick test_stats_quantile;
      Alcotest.test_case "stats three sigma" `Quick test_three_sigma;
      Alcotest.test_case "erf values" `Quick test_erf_values;
      Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
      Alcotest.test_case "quantile inverts cdf" `Quick test_normal_quantile_inverts_cdf;
      Alcotest.test_case "chi2" `Quick test_chi2;
      Alcotest.test_case "gamma identities" `Quick test_gamma_identities;
      Alcotest.test_case "fit gaussian accepted" `Quick test_fit_gaussian_accepted;
      Alcotest.test_case "fit uniform rejected" `Quick test_fit_uniform_rejected;
      Alcotest.test_case "histo counts" `Quick test_histo_counts;
      Alcotest.test_case "histo density" `Quick test_histo_density_integrates_to_one;
      Alcotest.test_case "geom basics" `Quick test_geom_basics;
      qcheck test_geom_partition_property;
      Alcotest.test_case "table render" `Quick test_table_render;
    ] )
