open Pvtol_netlist
module Vex_core = Pvtol_vex.Vex_core
module Floorplan = Pvtol_place.Floorplan
module Placer = Pvtol_place.Placer
module Placement = Pvtol_place.Placement
module Sta = Pvtol_timing.Sta
module Sizing = Pvtol_timing.Sizing
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module MC = Pvtol_ssta.Monte_carlo
module Scenario = Pvtol_ssta.Scenario
module Gatesim = Pvtol_power.Gatesim
module Power = Pvtol_power.Power
module Fir = Pvtol_vexsim.Fir

type config = {
  vex : Vex_core.config;
  place_seed : int;
  place_iterations : int;
  utilization : float;
      (** Initial row utilization.  Chosen below the paper's quoted
          ~70% so that, after area recovery *adds back* the
          level-shifter area (26-31% of the core, Table 2), the final
          utilization lands near 70% and incremental placement stays
          local. *)
  mc_samples : int;
  mc_seed : int;
  gatesim_cycles : int;
  fir_taps : int;
  fir_samples : int;
  corner_kappa : float;
}

let default_config =
  {
    vex = Vex_core.default_config;
    place_seed = 1;
    place_iterations = 48;
    utilization = 0.48;
    mc_samples = 400;
    mc_seed = 2024;
    gatesim_cycles = 512;
    fir_taps = 16;
    fir_samples = 64;
    corner_kappa = 0.35;
  }

let quick_config =
  {
    default_config with
    vex = Vex_core.small_config;
    place_iterations = 24;
    mc_samples = 120;
    gatesim_cycles = 128;
    fir_taps = 8;
    fir_samples = 16;
  }

type t = {
  config : config;
  design : Vex_core.t;
  netlist : Netlist.t;
  placement : Placement.t;
  sta : Sta.t;
  clock : float;
  sizing : Sizing.report;
  sampler : Sampler.t;
  fir : Fir.result;
  activity : Gatesim.activity;
  mc : Position.t -> MC.result;
  mc_all : unit -> (Position.t * MC.result) list;
  scenarios : unit -> Scenario.t list;
}

let prepare ?(config = default_config) () =
  let design = Vex_core.build config.vex in
  let nl0 = design.Vex_core.netlist in
  let fp =
    Floorplan.create ~utilization:config.utilization
      ~cell_area:(Netlist.area nl0) ()
  in
  let placement0 =
    Placer.place ~iterations:config.place_iterations ~seed:config.place_seed
      nl0 fp
  in
  let wire nid = Placement.wire_length placement0 nid in
  let capture = design.Vex_core.capture_stage in
  let sta0 = Sta.build nl0 ~wire_length:wire ~capture in
  let r0 = Sta.analyze sta0 ~delays:(Sta.nominal_delays sta0) in
  let initial_clock =
    match Sta.stage_delay r0 Stage.Execute with
    | Some d -> d
    | None -> r0.Sta.worst
  in
  let sizing =
    Sizing.fit ~clock:initial_clock ~frac:Sizing.balanced_fracs
      ~wire_length:wire ~capture nl0
  in
  let netlist = sizing.Sizing.netlist in
  let placement = { placement0 with Placement.netlist } in
  let sta = Sta.build netlist ~wire_length:wire ~capture in
  let r = Sta.analyze sta ~delays:(Sta.nominal_delays sta) in
  (* The nominal clock is set by the execute-stage critical path, which
     determines fmax (256 MHz in the paper's testbed). *)
  let clock =
    match Sta.stage_delay r Stage.Execute with
    | Some d -> d
    | None -> r.Sta.worst
  in
  let sampler = Sampler.create () in
  let fir = Fir.run ~taps:config.fir_taps ~samples:config.fir_samples () in
  let stim, _ =
    Gatesim.trace_stimulus netlist ~instr_prefix:"instr"
      ~words:fir.Fir.trace
      ~fallback:(Gatesim.random_stimulus ~seed:(config.mc_seed + 1))
  in
  let activity = Gatesim.run ~cycles:config.gatesim_cycles netlist stim in
  let mc_cache : (string, MC.result) Hashtbl.t = Hashtbl.create 8 in
  let run_mc position =
    MC.run
      ~config:{ MC.samples = config.mc_samples; seed = config.mc_seed }
      ~sampler ~sta ~placement ~position ()
  in
  let mc position =
    let key = position.Position.label in
    match Hashtbl.find_opt mc_cache key with
    | Some r -> r
    | None ->
      let r = run_mc position in
      Hashtbl.replace mc_cache key r;
      r
  in
  (* All four die positions as parallel tasks; each task's own MC
     fan-out then runs serially inside its worker (the pool's nested-use
     guard), so this trades chunk-level for position-level parallelism
     with bit-identical results.  The cache is only touched from the
     calling domain. *)
  let mc_all () =
    let missing =
      List.filter
        (fun (p : Position.t) -> not (Hashtbl.mem mc_cache p.Position.label))
        Position.named
      |> Array.of_list
    in
    if Array.length missing > 0 then begin
      let results = Pvtol_util.Pool.map (Pvtol_util.Pool.shared ()) ~f:run_mc missing in
      Array.iteri
        (fun i r -> Hashtbl.replace mc_cache missing.(i).Position.label r)
        results
    end;
    List.map (fun pos -> (pos, mc pos)) Position.named
  in
  let scenarios () =
    List.map (fun (_, r) -> Scenario.classify ~clock r) (mc_all ())
  in
  {
    config;
    design;
    netlist;
    placement;
    sta;
    clock;
    sizing;
    sampler;
    fir;
    activity;
    mc;
    mc_all;
    scenarios;
  }

type variant = {
  direction : Island.direction;
  slicing : Slicing.outcome;
  shifted : Level_shifter.t;
  sta_shifted : Sta.t;
  post_ls_worst : float;
  degradation : float;
  activity_shifted : Gatesim.activity;
}

(* Targets for island growth, least severe first: island 1 compensates
   the single-stage scenario at C, island 2 the two-stage scenario at
   B, island 3 the full corner A. *)
let growth_targets =
  [
    { Slicing.scenario_index = 1; position = Position.point_c };
    { Slicing.scenario_index = 2; position = Position.point_b };
    { Slicing.scenario_index = 3; position = Position.point_a };
  ]

let variant t direction =
  let slicing =
    Slicing.generate ~corner_kappa:t.config.corner_kappa ~direction ~sta:t.sta
      ~placement:t.placement ~sampler:t.sampler ~clock:t.clock
      ~targets:growth_targets ()
  in
  let shifted =
    Level_shifter.insert slicing.Slicing.partition t.placement t.netlist
  in
  let wire nid = Placement.wire_length shifted.Level_shifter.placement nid in
  let capture = t.design.Vex_core.capture_stage in
  (* Fig. 1's final step: incremental placement (done inside the
     insertion) and timing closure — upsizing recovers the paths that
     shifter insertion and cell displacement stretched.  Residual
     violation shows up as the paper's post-insertion performance
     degradation (8% vertical / 15% horizontal in their testbed). *)
  let closure =
    Pvtol_timing.Sizing.close_timing ~frac:Pvtol_timing.Sizing.balanced_fracs
      ~clock:(t.clock *. 1.08) ~wire_length:wire ~capture
      shifted.Level_shifter.netlist
  in
  let shifted =
    { shifted with Level_shifter.netlist = closure.Pvtol_timing.Sizing.netlist }
  in
  let shifted =
    {
      shifted with
      Level_shifter.placement =
        {
          shifted.Level_shifter.placement with
          Placement.netlist = shifted.Level_shifter.netlist;
        };
    }
  in
  let sta_shifted =
    Sta.build shifted.Level_shifter.netlist ~wire_length:wire ~capture
  in
  let r = Sta.analyze sta_shifted ~delays:(Sta.nominal_delays sta_shifted) in
  let stim, _ =
    Gatesim.trace_stimulus shifted.Level_shifter.netlist ~instr_prefix:"instr"
      ~words:t.fir.Fir.trace
      ~fallback:(Gatesim.random_stimulus ~seed:(t.config.mc_seed + 1))
  in
  let activity_shifted =
    Gatesim.run ~cycles:t.config.gatesim_cycles shifted.Level_shifter.netlist stim
  in
  {
    direction;
    slicing;
    shifted;
    sta_shifted;
    post_ls_worst = r.Sta.worst;
    degradation = (r.Sta.worst -. t.clock) /. t.clock;
    activity_shifted;
  }

type supply_config =
  | Baseline_low
  | Chip_wide_high
  | Islands of variant * int

let power_at t ?(position = Position.point_a) config =
  let process = t.netlist.Netlist.lib.Pvtol_stdcell.Cell.process in
  let low = process.Pvtol_stdcell.Process.vdd_low in
  let high = process.Pvtol_stdcell.Process.vdd_high in
  match config with
  | Baseline_low | Chip_wide_high ->
    let v = match config with Baseline_low -> low | _ -> high in
    let systematic = Sampler.systematic_lgates t.sampler t.placement position in
    Power.analyze
      ~lgate_nm:(fun i -> systematic.(i))
      ~vdd:(fun _ -> v)
      ~activity:t.activity
      ~wire_length:(fun nid -> Placement.wire_length t.placement nid)
      ~clock_ns:t.clock t.netlist
  | Islands (v, raised) ->
    let shifted = v.shifted in
    let systematic =
      Sampler.systematic_lgates t.sampler shifted.Level_shifter.placement
        position
    in
    Power.analyze
      ~lgate_nm:(fun i -> systematic.(i))
      ~vdd:(fun cid -> Level_shifter.vdd_assignment shifted ~raised cid)
      ~activity:v.activity_shifted
      ~wire_length:(fun nid ->
        Placement.wire_length shifted.Level_shifter.placement nid)
      ~clock_ns:t.clock shifted.Level_shifter.netlist
