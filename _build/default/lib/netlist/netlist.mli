(** Gate-level netlist representation.

    A netlist is a set of cells (each a single-output standard cell)
    connected by nets.  Cells carry a pipeline-stage tag and a
    functional-unit name, which the SSTA, power and voltage-island
    layers use to produce the paper's per-stage breakdowns.

    The structure is frozen after construction through {!Builder};
    cell and net identifiers are dense integers suitable as array
    indices, which is what keeps whole-netlist Monte Carlo sweeps fast
    enough to run hundreds of samples per experiment. *)

type cell_id = int
type net_id = int

type cell = {
  id : cell_id;
  name : string;
  cell : Pvtol_stdcell.Cell.t;
  stage : Stage.t;
  unit_name : string;
  fanins : net_id array;   (** one entry per input pin, pin order *)
  fanout : net_id;         (** the single output net *)
}

type net = {
  net_id : net_id;
  net_name : string;
  driver : cell_id option;      (** [None] for primary inputs *)
  sinks : (cell_id * int) array;  (** (cell, input-pin index) *)
  is_output : bool;             (** net is a primary output *)
}

type t = {
  design_name : string;
  lib : Pvtol_stdcell.Cell.library;
  cells : cell array;
  nets : net array;
  inputs : net_id array;
  outputs : net_id array;
}

(** {2 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : ?design_name:string -> Pvtol_stdcell.Cell.library -> t

  val input : t -> string -> net_id
  (** Declare a primary input; returns its net. *)

  val add :
    t ->
    ?drive:Pvtol_stdcell.Cell.drive ->
    ?name:string ->
    stage:Stage.t ->
    unit_name:string ->
    Pvtol_stdcell.Kind.t ->
    net_id array ->
    net_id
  (** [add b kind fanins] instantiates a cell and returns its output
      net.  Default drive X1; a name is generated when omitted.
      Raises [Invalid_argument] on arity mismatch or undeclared nets. *)

  val output : t -> net_id -> string -> unit
  (** Mark a net as a primary output (renaming it). *)

  val placeholder : t -> string -> net_id
  (** Declare a net whose driver will be connected later; used to close
      sequential feedback loops (e.g. a register's hold mux consumes
      the flop's Q before the D-side logic exists).  Every use of the
      placeholder must be redirected to a real net via {!rewire} before
      {!freeze}, which otherwise fails with an undriven-net error. *)

  val rewire : t -> cell:cell_id -> pin:int -> net_id -> unit
  (** [rewire b ~cell ~pin n] disconnects input [pin] of [cell] from its
      current net and reconnects it to [n]. *)

  val driver_of : t -> net_id -> cell_id option
  (** The cell currently driving a net, if any. *)

  val merge : t -> placeholder:net_id -> net_id -> unit
  (** [merge b ~placeholder real] redirects every current consumer of
      [placeholder] to [real], leaving [placeholder] dead (no driver,
      no sinks).  Dead placeholders are tolerated by {!freeze} and
      invisible to timing and power analysis. *)

  val cell_count : t -> int

  val freeze : t -> netlist
  (** Validate and freeze.  Raises [Failure] if any net other than a
      primary input is undriven, or if the combinational core (the
      graph excluding flip-flop outputs) contains a cycle. *)
end

(** {2 Queries} *)

val cell_count : t -> int
val net_count : t -> int

val area : t -> float
(** Total standard-cell area, um^2. *)

val area_of_stage : t -> Stage.t -> float

val cells_of_stage : t -> Stage.t -> cell list

val flops : t -> cell array
(** All sequential cells, in id order. *)

val is_comb : cell -> bool

val fanout_cells : t -> cell -> (cell * int) list
(** Cells (with pin index) driven by [c]'s output net. *)

val find_net : t -> string -> net option

val stats_by_stage : t -> (Stage.t * int * float) list
(** (stage, cell count, area) for each stage present in the design. *)

val pp_summary : Format.formatter -> t -> unit

val remap_cells : t -> (cell -> Pvtol_stdcell.Cell.t) -> t
(** [remap_cells t f] returns a netlist with identical topology where
    each cell's library characterisation is replaced by [f cell]
    (same kind required — used by the drive-sizing pass).
    Raises [Invalid_argument] if [f] changes a cell's kind. *)

(** {2 Validation} *)

val check : t -> (unit, string list) result
(** Re-run the structural invariants on a frozen netlist: dense ids,
    single driver per net, consistent pin back-references, acyclic
    combinational core. *)
