lib/ssta/sensors.mli: Format Monte_carlo Netlist Pvtol_netlist Stage
