lib/timing/spef.mli: Netlist Pvtol_netlist Pvtol_place Sta Stage
