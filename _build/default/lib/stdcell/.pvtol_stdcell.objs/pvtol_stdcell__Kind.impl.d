lib/stdcell/kind.ml: Array Format String
