lib/netlist/stage.mli: Format
