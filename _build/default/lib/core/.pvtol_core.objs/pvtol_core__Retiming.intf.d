lib/core/retiming.mli: Pvtol_netlist Stage
