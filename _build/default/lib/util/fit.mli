(** Normal-distribution fitting with a chi-square goodness-of-fit test,
    reproducing the paper's §4.3 validation step: "experimental data from
    the Monte Carlo analysis were then fitted to a normal distribution
    through a chi-square goodness-of-fit test with a confidence level of
    95%". *)

type normal = { mu : float; sigma : float }

type gof = {
  statistic : float;  (** Pearson chi-square statistic. *)
  dof : int;          (** bins - 1 - 2 estimated parameters. *)
  critical : float;   (** Upper critical value at the given confidence. *)
  p_value : float;
  accepted : bool;    (** statistic <= critical. *)
}

val fit_normal : float array -> normal
(** Maximum-likelihood normal fit (sample mean / unbiased stddev). *)

val chi2_gof : ?confidence:float -> ?bins:int -> float array -> normal -> gof
(** Pearson test of the sample against the fitted normal.  Bins with
    expected count below 5 are merged into their neighbours, as is
    standard practice.  Default confidence 0.95. *)

val fit_and_test : ?confidence:float -> float array -> normal * gof
