lib/util/srng.mli:
