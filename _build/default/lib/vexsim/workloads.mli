(** Benchmark programs beyond the paper's FIR, used by the
    workload-sensitivity power experiment (the paper measures a single
    FIR benchmark; these probe how much the normalized comparisons
    depend on that choice).

    Every workload assembles, runs on the ISS, and checks its result
    against a direct OCaml computation. *)

type t = {
  name : string;
  source : string;        (** assembly text *)
  stats : Sim.stats;
  trace : Int32.t array list;
  correct : bool;         (** ISS result matches the reference *)
}

val fir : ?seed:int -> unit -> t
(** The paper's benchmark (16 taps, 64 samples). *)

val dot_product : ?seed:int -> unit -> t
(** 64-element dot product — multiplier-heavy. *)

val iir_biquad : ?seed:int -> unit -> t
(** Direct-form-I biquad over 48 samples — feedback-limited ILP. *)

val vector_max : ?seed:int -> unit -> t
(** Running maximum of 96 elements — compare/branch-heavy, no
    multiplies. *)

val memcpy : ?seed:int -> unit -> t
(** 96-word block copy — pure load/store streaming. *)

val all : ?seed:int -> unit -> t list
