(** Placement-aware greedy voltage-island generation (paper §4.5).

    "Based on cell density considerations, we assess the most promising
    side of the processor core floorplan to start selecting candidate
    cells for high-Vdd.  We then progressively extend the slice till
    the achieved performance speed-up is enough to compensate the less
    severe timing violation scenario.  [...]  Then, we build a second
    island incrementally from the first [...]  Finally, a third voltage
    island will be incrementally derived."

    Compensation is checked with a deterministic corner STA: every cell
    takes its systematic Lgate at the scenario's die position plus
    [corner_kappa] random sigmas (calibrated against the Monte-Carlo
    3-sigma per-stage delays), cells inside the candidate slice run at
    high Vdd, and every pipeline stage must meet the nominal clock. *)

open Pvtol_netlist

type target = {
  scenario_index : int;                   (** 1 = least severe *)
  position : Pvtol_variation.Position.t;  (** die position to compensate *)
}

type outcome = {
  partition : Island.partition;
  cuts : float array;          (** absolute cut coordinate per island *)
  checks : int;                (** corner STA evaluations performed *)
}

exception Infeasible of string
(** Raised when even the full core at high Vdd cannot compensate a
    target scenario. *)

val corner_scale :
  sampler:Pvtol_variation.Sampler.t ->
  systematic:float array ->
  corner_kappa:float ->
  vdd:(Netlist.cell_id -> float) ->
  Netlist.cell_id ->
  float
(** Per-cell delay scale at the deterministic compensation corner. *)

val generate :
  ?corner_kappa:float ->
  ?tolerance_um:float ->
  direction:Island.direction ->
  ?side:Pvtol_place.Density.side ->
  sta:Pvtol_timing.Sta.t ->
  placement:Pvtol_place.Placement.t ->
  sampler:Pvtol_variation.Sampler.t ->
  clock:float ->
  targets:target list ->
  unit ->
  outcome
(** [targets] ordered least-severe first (scenario 1, 2, 3...).
    Defaults: corner_kappa 0.35, cut tolerance 2 um, side from the
    density map (restricted to the sides compatible with
    [direction]). *)
