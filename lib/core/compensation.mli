(** Pluggable post-silicon compensation strategies.

    The paper compensates variation-hit dies with voltage islands only,
    but the post-silicon literature offers direct rivals: clock-tuning
    elements with criticality-aware SSTA (arXiv:1705.04986) and
    post-silicon tunable buffers configured via statistical prediction
    (EffiTest, arXiv:1705.04992).  This module extracts the
    "detect scenario -> apply knob -> re-verify -> cost" loop that used
    to be hard-wired into [Postsilicon] as a strategy interface, so
    every knob competes under {e identical per-die physics}: one shared
    {!detect} pass per die (the sensors' verdict at the low supply),
    then each strategy re-times the {e same} Lgate realisation with its
    own knob and reports a {!outcome} (meets-timing verdict, knob
    count, die power, exercised area).

    Kernel-style split, like {!Postsilicon.kernel}: a strategy's
    precomputed state is immutable and safe to share across domains;
    everything mutable lives in the closure returned by
    [fresh_apply] (one per concurrent caller) and in the shared
    {!scratch}.  The island/chip-wide strategies reuse the scratch's
    incremental STA exactly as the pre-refactor settle loop did, so
    they are engine-agnostic via [PVTOL_MC_ENGINE] and bit-identical to
    the golden-pinned [Postsilicon.run] study and [Wafer] sweeps. *)

open Pvtol_netlist

val analyzed : Stage.t list
(** The capture stages whose violation defines a scenario (Decode,
    Execute, Writeback — the ladder of paper section 4.4). *)

(** {2 Shared per-die physics} *)

type ctx
(** Everything die-independent that every strategy shares: the STA, the
    sampler, nominal delays, clock, the two supplies, the engine choice
    and the baseline/chip-wide power levels.  Immutable. *)

type scratch
(** Per-caller mutable state (STA workspaces, Lgate and delay buffers)
    shared by {!detect} and the island/chip-wide strategies.  One per
    concurrent simulator. *)

type detect = {
  violating : int;       (** analyzed stages failing at the low supply *)
  worst_low_ns : float;  (** worst analyzed-stage delay at the low supply *)
}

type outcome = {
  meets : bool;       (** timing met after the knob was applied *)
  knob : int;         (** islands raised / flops tuned / buffers enabled *)
  power_mw : float;   (** total die power under this strategy *)
  area_um2 : float;   (** area of the knob hardware exercised on this die *)
}

val context :
  ?engine:Pvtol_ssta.Monte_carlo.engine -> Flow.t -> ctx
(** Forces the flow stages every strategy reads (netlist, placement,
    STA, sampler, clock, baseline and chip-wide power at position B).
    [engine] (default {!Pvtol_ssta.Monte_carlo.engine_of_env}) selects
    full vs incremental STA for the shared-scratch strategies; die
    results are bit-identical either way. *)

val scratch : ctx -> scratch
val clock : ctx -> float
val power_baseline_mw : ctx -> float
val power_chip_wide_mw : ctx -> float

val systematic : ctx -> Pvtol_variation.Position.t -> float array
(** Per-cell systematic Lgate at a die position; deterministic, compute
    once per position and share across that position's dies. *)

val detect : ctx -> scratch -> systematic:float array -> Pvtol_util.Srng.t -> detect
(** One die's sensor verdict: draw its random Lgate realisation from
    [rng] (exactly one {!Pvtol_variation.Sampler.sample_lgates} call —
    strategies consume no RNG, so the per-die stream is identical for
    every strategy subset), re-time it at the low supply and count the
    failing analyzed stages. *)

(** {2 The strategy interface} *)

type strategy = {
  name : string;          (** short key: "vi", "chipwide", "skew", "buffers" *)
  title : string;         (** human-readable, for tables *)
  knob_units : string;    (** what [knob] counts: "islands", "flops", ... *)
  static_area_um2 : float;
      (** design-time area the knob hardware adds to {e every} die
          (level shifters, tuning elements, buffer chains) *)
  max_knob : int;         (** upper bound of [outcome.knob] *)
  fresh_apply : unit -> scratch -> detect -> outcome;
      (** [fresh_apply ()] allocates this caller's private mutable
          state and returns the apply function: given the shared
          scratch right after (or any time after) {!detect} on the same
          die, re-verify under this strategy's knob and cost it.  On a
          die with [violating = 0] every strategy returns
          [{meets = true; knob = 0; ...}] without touching the STA
          (no knob is configured on passing silicon). *)
}

(** {2 Strategy constructors} *)

val voltage_islands : Flow.t -> ctx -> Flow.variant -> strategy
(** The paper's scheme, verbatim from the pre-refactor settle loop:
    raise islands [1..r] starting at the detected scenario, escalating
    while violations persist.  [knob] = islands raised; power from the
    memoized per-raised-level power stages; static area = the variant's
    level-shifter area. *)

val chip_wide : ctx -> strategy
(** Traditional full-chip adaptation: everything to 1.2V whenever
    anything fails.  [knob] = 1 iff the die needed the raise. *)

val skew_tuning :
  ?range_frac:float -> ?steps:int -> ctx -> strategy
(** Post-silicon clock-tuning elements (arXiv:1705.04986): useful-skew
    borrowing between pipeline stages.  A clock tree is synthesized
    over the placed flops ({!Pvtol_timing.Clock_tree}) and its
    insertion-delay map ({!Pvtol_timing.Clock_tree.skew_of}) is the
    baseline clock-arrival skew; each analyzed-stage capture flop
    carries a tuning element that can delay its edge by up to
    [range_frac] of the clock (default 0.10) in [steps] equal steps
    (default 4).  The settle loop mirrors the island controller's:
    while an analyzed stage fails, delay its capture flops one step
    (helping that stage, loading the next — the borrowing physics of
    {!Pvtol_timing.Sta.analyze}'s skew handling) and re-verify.
    [knob] = flops with a nonzero setting.  The die stays at the low
    supply; cost is the tuning elements' clock-rate switching and
    leakage. *)

val tunable_buffers :
  ?sites_per_stage:int ->
  ?max_per_site:int ->
  ?trim_frac:float ->
  ctx ->
  strategy
(** EffiTest-style post-silicon tunable buffers (arXiv:1705.04992):
    delay-trim stages inserted at design time on the worst low-supply
    paths.  Sites are the [sites_per_stage] (default 8) worst nominal
    low-supply endpoints of each analyzed stage
    ({!Pvtol_timing.Paths.worst_endpoints}); each site carries
    [max_per_site] (default 4) trim stages of [trim_frac] of the clock
    each (default 0.02).  Per die, a greedy loop enables one trim at a
    time on the binding endpoint of a failing stage until every stage
    meets or the binding endpoint has no (more) trims — the die's
    reported power/area cost is monotone in the buffers enabled.
    [knob] = trim stages enabled. *)

(** {2 Strategy selection} *)

type choice = Vi | Chipwide | Skew | Buffers

val all_choices : choice list
(** [Vi; Chipwide; Skew; Buffers] — the canonical comparison order. *)

val choice_name : choice -> string
val choice_of_name : string -> choice option
val choices_label : choice list -> string
(** Stable comma-joined label ("vi,skew"), used as stage-key material. *)

val build : Flow.t -> ctx -> Flow.variant -> choice -> strategy
