(** Array multiplier generator: AND-gate partial products reduced by a
    carry-save adder array with a ripple final stage.  This is the
    deepest combinational structure of the execute stage and, as in the
    paper's design, pins the global critical path there. *)

open Gen

val array_multiplier : t -> bus -> bus -> bus
(** [array_multiplier t a b] returns the full (wa + wb)-bit unsigned
    product. *)

val truncated : t -> width:int -> bus -> bus -> bus
(** Product truncated to [width] output bits (the VEX mul returns the
    low word). *)
