type point = { x : float; y : float }
type rect = { llx : float; lly : float; urx : float; ury : float }

let point x y = { x; y }

let rect ~llx ~lly ~urx ~ury =
  if urx < llx || ury < lly then invalid_arg "Geom.rect: corners not ordered";
  { llx; lly; urx; ury }

let width r = r.urx -. r.llx
let height r = r.ury -. r.lly
let area r = width r *. height r
let center r = { x = (r.llx +. r.urx) /. 2.0; y = (r.lly +. r.ury) /. 2.0 }

let contains r p = p.x >= r.llx && p.x < r.urx && p.y >= r.lly && p.y < r.ury

let intersects a b =
  a.llx < b.urx && b.llx < a.urx && a.lly < b.ury && b.lly < a.ury

let union a b =
  {
    llx = min a.llx b.llx;
    lly = min a.lly b.lly;
    urx = max a.urx b.urx;
    ury = max a.ury b.ury;
  }

let inter a b =
  let llx = max a.llx b.llx
  and lly = max a.lly b.lly
  and urx = min a.urx b.urx
  and ury = min a.ury b.ury in
  if urx > llx && ury > lly then Some { llx; lly; urx; ury } else None

let expand r m =
  { llx = r.llx -. m; lly = r.lly -. m; urx = r.urx +. m; ury = r.ury +. m }

let subsumes outer inner =
  inner.llx >= outer.llx && inner.lly >= outer.lly && inner.urx <= outer.urx
  && inner.ury <= outer.ury

let dist a b = Float.hypot (a.x -. b.x) (a.y -. b.y)
let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)
