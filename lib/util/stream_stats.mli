(** Allocation-light streaming statistics for population sweeps.

    A wafer-scale sweep visits thousands of dies; retaining a sample
    array per metric per grid cell would make memory grow linearly with
    the die count.  This module accumulates the same figures in O(1)
    space per metric:

    - {!Welford}: mean / unbiased variance / min / max by Welford's
      online update (numerically identical to {!Stats.Running}), plus a
      deterministic pairwise {!Welford.merge} (Chan et al.) so per-cell
      accumulators can be combined in a fixed order into wafer totals —
      independent of which pool worker produced them.
    - {!P2}: the P-square quantile estimator of Jain & Chlamtac (CACM
      1985) — five markers per tracked probability, exact for the first
      five observations, O(1) per update thereafter.
    - {!Counter}: dense frequency counts over a small integer range
      (violation-scenario / raised-island histograms). *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val merge : into:t -> t -> unit
  (** Fold the second accumulator into [into] (Chan's parallel update).
      Deterministic: merging the same accumulators in the same order
      always yields the same bits.  [into] and the source must be
      distinct accumulators; [Invalid_argument] when they are the same
      physical value (a self-merge would double-count silently). *)

  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than 2 samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val ci_halfwidth : ?confidence:float -> t -> float
  (** Normal-theory confidence-interval half-width of the mean,
      [z * sqrt (variance / n)] at the given two-sided [confidence]
      (default 0.95).  [infinity] while fewer than two samples have
      been seen — a sequential stopping rule polling this accessor can
      never fire on a variance guess of 0. *)

  val summary : t -> Stats.summary
  (** Snapshot in the {!Stats.summary} record shape.  Requires at least
      one observation. *)
end

module P2 : sig
  type t

  val create : float -> t
  (** [create p] tracks the [p]-quantile, [0 < p < 1]
      ([Invalid_argument] otherwise). *)

  val add : t -> float -> unit
  val count : t -> int

  val estimate : t -> float
  (** Current quantile estimate: exact (linear interpolation between
      order statistics, as {!Stats.quantile}) while five or fewer
      observations have been seen, the P-square marker estimate
      afterwards.  Requires at least one observation. *)
end

module Counter : sig
  type t

  val create : int -> t
  (** [create n] counts occurrences of values in [0, n-1]; values
      outside the range are clamped into it. *)

  val add : t -> int -> unit
  val get : t -> int -> int
  val total : t -> int
  val to_array : t -> int array
  (** A fresh copy of the per-value counts. *)

  val merge : into:t -> t -> unit
  (** Pointwise sum; the two counters must have the same range. *)
end
