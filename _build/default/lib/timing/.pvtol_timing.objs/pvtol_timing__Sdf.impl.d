lib/timing/sdf.ml: Array Buffer Float Fun Hashtbl List Netlist Printf Pvtol_netlist Pvtol_stdcell String
