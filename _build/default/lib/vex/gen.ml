open Pvtol_netlist
module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell
module Srng = Pvtol_util.Srng

type net = Netlist.net_id
type bus = net array

type t = {
  b : Netlist.Builder.t;
  stage : Stage.t;
  unit_name : string;
  rng : Srng.t;
}

let create ?design_name ~seed lib =
  {
    b = Netlist.Builder.create ?design_name lib;
    stage = Stage.Fetch;
    unit_name = "top";
    rng = Srng.create seed;
  }

let builder t = t.b
let rng t = t.rng

let within t ?stage ?unit_name () =
  {
    t with
    stage = Option.value stage ~default:t.stage;
    unit_name = Option.value unit_name ~default:t.unit_name;
  }

let stage t = t.stage
let unit_name t = t.unit_name

let gate t ?drive kind fanins =
  Netlist.Builder.add t.b ?drive ~stage:t.stage ~unit_name:t.unit_name kind fanins

let inv t a = gate t Kind.Inv [| a |]
let buf t ?drive a = gate t ?drive Kind.Buf [| a |]
let and2 t a b = gate t Kind.And2 [| a; b |]
let or2 t a b = gate t Kind.Or2 [| a; b |]
let nand2 t a b = gate t Kind.Nand2 [| a; b |]
let nor2 t a b = gate t Kind.Nor2 [| a; b |]
let xor2 t a b = gate t Kind.Xor2 [| a; b |]
let xnor2 t a b = gate t Kind.Xnor2 [| a; b |]
let aoi21 t a b c = gate t Kind.Aoi21 [| a; b; c |]
let oai21 t a b c = gate t Kind.Oai21 [| a; b; c |]
let mux2 t a b ~sel = gate t Kind.Mux2 [| a; b; sel |]
let dff t d = gate t Kind.Dff [| d |]

let dff_deferred t =
  let stub = Netlist.Builder.placeholder t.b "dstub" in
  let q = dff t stub in
  let cell =
    match Netlist.Builder.driver_of t.b q with
    | Some c -> c
    | None -> assert false
  in
  (q, fun d -> Netlist.Builder.rewire t.b ~cell ~pin:0 d)
let tie0 t = gate t Kind.Tielo [||]
let tie1 t = gate t Kind.Tiehi [||]

let inputs t name w =
  Array.init w (fun i ->
      Netlist.Builder.input t.b (Printf.sprintf "%s[%d]" name i))

let outputs t name bus =
  Array.iteri
    (fun i n -> Netlist.Builder.output t.b n (Printf.sprintf "%s[%d]" name i))
    bus

let reg_bus t bus = Array.map (dff t) bus
let mux2_bus t a b ~sel = Array.map2 (fun x y -> mux2 t x y ~sel) a b

let const_bus t v ~width =
  Array.init width (fun i -> if (v lsr i) land 1 = 1 then tie1 t else tie0 t)

let fanout_tree t ?(fanout = 8) ?(drive = Cell.X2) net n =
  assert (n > 0 && fanout >= 2);
  (* Grow drivers level by level until we can serve n sinks. *)
  let rec grow leaves =
    if List.length leaves * fanout >= n then leaves
    else grow (List.concat_map (fun l -> List.init fanout (fun _ -> buf t ~drive l)) leaves)
  in
  let leaves =
    if n <= fanout then [ net ]
    else grow [ buf t ~drive net ]
  in
  let leaves = Array.of_list leaves in
  Array.init n (fun i -> leaves.(i * Array.length leaves / n))

let rec reduce_tree f t = function
  | [] -> invalid_arg "reduce_tree: empty"
  | [ x ] -> x
  | nets ->
    let rec pair = function
      | a :: b :: rest -> f t a b :: pair rest
      | [ a ] -> [ a ]
      | [] -> []
    in
    reduce_tree f t (pair nets)

let and_tree t = function [] -> tie1 t | nets -> reduce_tree and2 t nets
let or_tree t = function [] -> tie0 t | nets -> reduce_tree or2 t nets
let xor_tree t = function [] -> tie0 t | nets -> reduce_tree xor2 t nets
