(** Execute-slot ALU: carry-select add/sub, bitwise logic, followed by
    the in-series barrel shifter (shift-and-accumulate support, per the
    paper's slot description). *)

open Gen

type op_select = {
  use_sub : net;       (** 1 = subtract *)
  logic_sel : bus;     (** 2 bits: 00 add/sub, 01 and, 10 or, 11 xor *)
  shift_dir : net;
  shift_amount : bus;  (** log2(width) bits *)
  shift_enable : net;  (** 0 = bypass the shifter *)
}

val alu_with_shifter : t -> op:op_select -> a:bus -> b:bus -> bus * Comparator.flags
(** Returns the slot result (post-shifter) and the compare-unit flags
    computed on the raw ALU output. *)
