test/test_vex.ml: Alcotest Array List Printf Pvtol_netlist Pvtol_stdcell Pvtol_vex QCheck QCheck_alcotest Seq Simtool
