lib/netlist/stage.ml: Format Int String
