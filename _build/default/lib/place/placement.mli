(** Placement state: a coordinate per cell of a netlist within a
    floorplan.  Produced by {!Placer}, refined by {!Legalize} and
    {!Incremental}; consumed by timing (wire delays), the voltage-island
    generator (slicing on physical coordinates) and the density map. *)

open Pvtol_netlist

type t = {
  netlist : Netlist.t;
  floorplan : Floorplan.t;
  xs : float array;  (** cell id -> center x, um *)
  ys : float array;  (** cell id -> center y (row center), um *)
}

val create : Netlist.t -> Floorplan.t -> t
(** All cells at the core center (pre-placement). *)

val cell_width : Netlist.cell -> Floorplan.t -> float
(** Footprint width of a cell: area / row height. *)

val pos : t -> Netlist.cell_id -> Pvtol_util.Geom.point

val net_bbox : t -> Netlist.net_id -> Pvtol_util.Geom.rect option
(** Bounding box of a net's pins ([None] for dead or single-pin nets
    without a placed driver). *)

val hpwl : t -> Netlist.net_id -> float
(** Half-perimeter wirelength of a net, um. *)

val wire_length : t -> Netlist.net_id -> float
(** Routed-length estimate: HPWL corrected for fanout.  A rectilinear
    Steiner tree over [n] pins spread in a box exceeds the box
    half-perimeter by roughly a [sqrt n] factor, so
    [length = hpwl * (1 + 0.35 * (sqrt fanout - 1))].  This is what
    timing should consume; it is the correction that makes the heavily
    loaded register-file write and select nets as slow as they are in
    synthesized (non-custom) register files. *)

val total_hpwl : t -> float

val copy : t -> t
