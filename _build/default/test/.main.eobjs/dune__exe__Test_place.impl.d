test/test_place.ml: Alcotest Array Def Density Float Floorplan Lazy Legalize List Option Placement Placer Pvtol_core Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util Pvtol_vex Router Seq
