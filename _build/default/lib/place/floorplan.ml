module Geom = Pvtol_util.Geom

type t = {
  core : Geom.rect;
  row_height : float;
  site_width : float;
  n_rows : int;
  utilization : float;
}

let create ?(row_height = 1.8) ?(site_width = 0.2) ?(utilization = 0.70)
    ?(aspect = 1.0) ~cell_area () =
  assert (cell_area > 0.0 && utilization > 0.0 && utilization <= 1.0);
  let total = cell_area /. utilization in
  let height = sqrt (total /. aspect) in
  let n_rows = max 1 (int_of_float (Float.ceil (height /. row_height))) in
  let height = float_of_int n_rows *. row_height in
  let width_raw = total /. height in
  (* Snap width to a whole number of sites. *)
  let n_sites = max 1 (int_of_float (Float.ceil (width_raw /. site_width))) in
  let width = float_of_int n_sites *. site_width in
  {
    core = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:width ~ury:height;
    row_height;
    site_width;
    n_rows;
    utilization;
  }

let row_y t i = t.core.Geom.lly +. (float_of_int i *. t.row_height)

let row_of_y t y =
  let i = int_of_float ((y -. t.core.Geom.lly) /. t.row_height) in
  max 0 (min (t.n_rows - 1) i)

let row_capacity t = Geom.width t.core

let pp fmt t =
  Format.fprintf fmt "core %.1f x %.1f um, %d rows (h=%.2f), util %.0f%%"
    (Geom.width t.core) (Geom.height t.core) t.n_rows t.row_height
    (100.0 *. t.utilization)
