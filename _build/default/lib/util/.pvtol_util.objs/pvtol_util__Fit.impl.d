lib/util/fit.ml: Array Histo List Specfun Stats
