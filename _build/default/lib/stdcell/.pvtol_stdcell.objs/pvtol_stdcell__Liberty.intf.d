lib/stdcell/liberty.mli: Cell
