open Gen

let half_adder t a b = (xor2 t a b, and2 t a b)

(* Dadda-schedule column reduction: stage targets 2, 3, 4, 6, 9, 13, ...
   guarantee logarithmic depth without the serial carry tail a naive
   "compress until height 2" scheme produces; a Kogge-Stone adder
   resolves the final two rows. *)
let reduce t columns =
  let ncols = Array.length columns in
  let max_height = Array.fold_left (fun m l -> max m (List.length l)) 0 columns in
  let schedule =
    (* Descending Dadda targets below the initial height, ending at 2. *)
    let rec up acc d = if d >= max_height then acc else up (d :: acc) (d * 3 / 2) in
    up [] 2
  in
  let cols = ref (Array.map Array.of_list columns) in
  let stage target =
    let next = Array.make ncols [] in
    let carries = Array.make ncols 0 in
    (* Left-to-right so each column sees the carries this stage sends it. *)
    for i = 0 to ncols - 1 do
      let bits = (!cols).(i) in
      let h = ref (Array.length bits + carries.(i)) in
      let k = ref 0 in
      let avail () = Array.length bits - !k in
      while !h > target && avail () >= 2 do
        if !h - target >= 2 && avail () >= 3 then begin
          let sum, carry = Adder.full_adder t bits.(!k) bits.(!k + 1) bits.(!k + 2) in
          next.(i) <- sum :: next.(i);
          if i + 1 < ncols then begin
            next.(i + 1) <- carry :: next.(i + 1);
            carries.(i + 1) <- carries.(i + 1) + 1
          end;
          k := !k + 3;
          h := !h - 2
        end
        else begin
          let sum, carry = half_adder t bits.(!k) bits.(!k + 1) in
          next.(i) <- sum :: next.(i);
          if i + 1 < ncols then begin
            next.(i + 1) <- carry :: next.(i + 1);
            carries.(i + 1) <- carries.(i + 1) + 1
          end;
          k := !k + 2;
          h := !h - 1
        end
      done;
      for j = !k to Array.length bits - 1 do
        next.(i) <- bits.(j) :: next.(i)
      done
    done;
    cols := Array.map (fun l -> Array.of_list (List.rev l)) next
  in
  List.iter stage schedule;
  (* Carry pile-ups can leave isolated columns at height 3; the HA rule
     clears them in one or two extra parallel passes. *)
  let fixup = ref 0 in
  while Array.exists (fun bits -> Array.length bits > 2) !cols && !fixup < 4 do
    incr fixup;
    stage 2
  done;
  Array.iter (fun bits -> assert (Array.length bits <= 2)) !cols;
  let zero = lazy (tie0 t) in
  let row n =
    Array.init ncols (fun i ->
        let bits = (!cols).(i) in
        if Array.length bits > n then bits.(n) else Lazy.force zero)
  in
  let sum, _ = Adder.kogge_stone t (row 0) (row 1) in
  sum

let partial_columns t ~ncols a b =
  let wa = Array.length a and wb = Array.length b in
  let columns = Array.make ncols [] in
  for i = 0 to wa - 1 do
    for j = 0 to wb - 1 do
      if i + j < ncols then
        columns.(i + j) <- and2 t a.(i) b.(j) :: columns.(i + j)
    done
  done;
  columns

let array_multiplier t a b =
  let ncols = Array.length a + Array.length b in
  reduce t (partial_columns t ~ncols a b)

let truncated t ~width a b = reduce t (partial_columns t ~ncols:width a b)
