lib/place/def.ml: Array Buffer Float Floorplan Fun Hashtbl List Netlist Placement Printf Pvtol_netlist Pvtol_stdcell Pvtol_util String
