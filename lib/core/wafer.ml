(* Wafer-scale yield engine: the per-die detect-and-compensate kernel of
   [Postsilicon], swept over a 2D grid of die positions on the exposure
   field (optionally replicated over several exposure fields), batched
   on the shared domain pool and reduced with streaming statistics so
   the sweep's memory is O(grid), not O(dies). *)
module Sg = Stage
module Pool = Pvtol_util.Pool
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Stream_stats = Pvtol_util.Stream_stats
module Welford = Stream_stats.Welford
module P2 = Stream_stats.P2
module Counter = Stream_stats.Counter
module Position = Pvtol_variation.Position
module Metrics = Pvtol_util.Metrics

let m_cells = Metrics.counter "wafer_cells_total"
let m_wafer_dies = Metrics.counter "wafer_dies_total"

type config = {
  nx : int;
  ny : int;
  dies_per_cell : int;
  fields : int;
  seed : int;
  direction : Island.direction;
}

let default_config =
  { nx = 8; ny = 8; dies_per_cell = 12; fields = 1; seed = 7;
    direction = Island.Vertical }

type cell = {
  ix : int;
  iy : int;
  x_frac : float;
  y_frac : float;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  raised_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Stats.summary;
  delay_p50_ns : float;
  delay_p90_ns : float;
}

type sweep = {
  config : config;
  n_islands : int;
  clock_ns : float;
  cells : cell array;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Stats.summary;
}

(* ------------------------------------------------------------------ *)
(* Grid geometry and per-cell seeding                                   *)

let grid_frac n i =
  if n <= 1 then 0.5 else float_of_int i /. float_of_int (n - 1)

let cell_position cfg ~ix ~iy =
  Position.at_xy ~x_frac:(grid_frac cfg.nx ix) ~y_frac:(grid_frac cfg.ny iy) ()

(* Boost-style hash combine on the positive int range: every cell's RNG
   stream depends only on (seed, field, ix, iy), never on traversal
   order or domain count. *)
let mix h k = (h lxor (k + 0x9e3779b9 + (h lsl 6) + (h lsr 2))) land max_int
let cell_seed cfg ~field ~ix ~iy = mix (mix (mix cfg.seed field) iy) ix

(* ------------------------------------------------------------------ *)
(* Streaming per-cell accumulator                                       *)

type acc = {
  mutable a_dies : int;
  mutable a_unc : int;
  mutable a_comp : int;
  mutable a_chip : int;
  a_raised : Welford.t;
  a_pow_isl : Welford.t;
  a_pow_chip : Welford.t;
  a_delay : Welford.t;
  a_p50 : P2.t;
  a_p90 : P2.t;
  a_scen : Counter.t;
  a_raised_c : Counter.t;
}

let acc_create ~n_islands =
  {
    a_dies = 0;
    a_unc = 0;
    a_comp = 0;
    a_chip = 0;
    a_raised = Welford.create ();
    a_pow_isl = Welford.create ();
    a_pow_chip = Welford.create ();
    a_delay = Welford.create ();
    a_p50 = P2.create 0.5;
    a_p90 = P2.create 0.9;
    a_scen = Counter.create (n_islands + 1);
    a_raised_c = Counter.create (n_islands + 1);
  }

let acc_add k acc (d : Postsilicon.die) =
  acc.a_dies <- acc.a_dies + 1;
  if d.Postsilicon.die_meets_uncompensated then acc.a_unc <- acc.a_unc + 1;
  if d.Postsilicon.die_meets_compensated then acc.a_comp <- acc.a_comp + 1;
  if d.Postsilicon.die_meets_chip_wide then acc.a_chip <- acc.a_chip + 1;
  Welford.add acc.a_raised (float_of_int d.Postsilicon.die_raised);
  Welford.add acc.a_pow_isl (Postsilicon.die_power_islands_mw k d);
  Welford.add acc.a_pow_chip (Postsilicon.die_power_chip_wide_mw k d);
  Welford.add acc.a_delay d.Postsilicon.die_worst_low_ns;
  P2.add acc.a_p50 d.Postsilicon.die_worst_low_ns;
  P2.add acc.a_p90 d.Postsilicon.die_worst_low_ns;
  Counter.add acc.a_scen d.Postsilicon.die_detected;
  Counter.add acc.a_raised_c d.Postsilicon.die_raised

let cell_of_acc cfg ~ix ~iy acc =
  let dies = float_of_int acc.a_dies in
  {
    ix;
    iy;
    x_frac = grid_frac cfg.nx ix;
    y_frac = grid_frac cfg.ny iy;
    dies = acc.a_dies;
    yield_uncompensated = float_of_int acc.a_unc /. dies;
    yield_compensated = float_of_int acc.a_comp /. dies;
    yield_chip_wide = float_of_int acc.a_chip /. dies;
    mean_raised = Welford.mean acc.a_raised;
    scenario_counts = Counter.to_array acc.a_scen;
    raised_counts = Counter.to_array acc.a_raised_c;
    mean_power_islands_mw = Welford.mean acc.a_pow_isl;
    mean_power_chip_wide_mw = Welford.mean acc.a_pow_chip;
    delay = Welford.summary acc.a_delay;
    delay_p50_ns = P2.estimate acc.a_p50;
    delay_p90_ns = P2.estimate acc.a_p90;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)

let run ?pool ?on_cell (t : Flow.t) (v : Flow.variant) cfg =
  if cfg.nx <= 0 || cfg.ny <= 0 || cfg.dies_per_cell <= 0 || cfg.fields <= 0
  then invalid_arg "Wafer.run: grid, dies and fields must be positive";
  if v.Flow.direction <> cfg.direction then
    invalid_arg "Wafer.run: variant direction does not match the config";
  let k = Postsilicon.kernel t v in
  let n_islands = Postsilicon.n_islands k in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let total_cells = cfg.nx * cfg.ny in
  let completed = Atomic.make 0 in
  (* One chunk per grid cell; a worker reuses its scratch across every
     cell it picks up.  All of a cell's dies (over every field replica)
     run serially inside its chunk in a fixed field-major order, so the
     per-cell accumulators — including the order-sensitive P^2 markers
     — are independent of scheduling. *)
  let accs =
    Pool.parallel_chunks pool ~chunks:total_cells
      ~init:(fun ~worker:_ -> Postsilicon.scratch k)
      ~f:(fun sc c ->
        let ix = c mod cfg.nx and iy = c / cfg.nx in
        let systematic = Postsilicon.systematic k (cell_position cfg ~ix ~iy) in
        let acc = acc_create ~n_islands in
        for field = 0 to cfg.fields - 1 do
          let rng = Srng.create (cell_seed cfg ~field ~ix ~iy) in
          for _ = 1 to cfg.dies_per_cell do
            acc_add k acc (Postsilicon.simulate_die k sc ~systematic rng)
          done
        done;
        Metrics.incr m_cells;
        Metrics.add m_wafer_dies acc.a_dies;
        (* Progress callbacks fire from whichever domain finished the
           cell; the count is an Atomic so it is monotone across them.
           A raising callback would poison the sweep — swallow. *)
        (match on_cell with
        | None -> ()
        | Some f -> (
          let done_ = 1 + Atomic.fetch_and_add completed 1 in
          try f ~completed:done_ ~total:total_cells with _ -> ()));
        acc)
  in
  (* Ordered reduction (row-major), so wafer totals are bit-identical
     no matter how the chunks were scheduled. *)
  let total = acc_create ~n_islands in
  let delay_all = Welford.create () in
  Array.iter
    (fun acc ->
      total.a_dies <- total.a_dies + acc.a_dies;
      total.a_unc <- total.a_unc + acc.a_unc;
      total.a_comp <- total.a_comp + acc.a_comp;
      total.a_chip <- total.a_chip + acc.a_chip;
      Welford.merge ~into:total.a_raised acc.a_raised;
      Welford.merge ~into:total.a_pow_isl acc.a_pow_isl;
      Welford.merge ~into:total.a_pow_chip acc.a_pow_chip;
      Welford.merge ~into:delay_all acc.a_delay;
      Counter.merge ~into:total.a_scen acc.a_scen)
    accs;
  let cells =
    Array.mapi
      (fun c acc -> cell_of_acc cfg ~ix:(c mod cfg.nx) ~iy:(c / cfg.nx) acc)
      accs
  in
  let dies = float_of_int total.a_dies in
  {
    config = cfg;
    n_islands;
    clock_ns = Postsilicon.clock k;
    cells;
    dies = total.a_dies;
    yield_uncompensated = float_of_int total.a_unc /. dies;
    yield_compensated = float_of_int total.a_comp /. dies;
    yield_chip_wide = float_of_int total.a_chip /. dies;
    mean_raised = Welford.mean total.a_raised;
    scenario_counts = Counter.to_array total.a_scen;
    mean_power_islands_mw = Welford.mean total.a_pow_isl;
    mean_power_chip_wide_mw = Welford.mean total.a_pow_chip;
    delay = Welford.summary delay_all;
  }

(* ------------------------------------------------------------------ *)
(* Stage-graph exposure                                                 *)

let config_label cfg =
  Printf.sprintf "%dx%d-d%d-f%d-s%d-%s" cfg.nx cfg.ny cfg.dies_per_cell
    cfg.fields cfg.seed
    (Island.direction_name cfg.direction)

(* One keyed stage family per flow handle, registered on its graph the
   first time a sweep is requested (the family cannot be declared in
   Flow itself: Postsilicon sits above Flow in the module order).

   Each family carries a progress-callback slot read by the compute
   closure at compute time: {!sweep} installs its [?on_cell] around the
   force.  A memoized re-force never computes, so progress only streams
   the first time a (flow, config) sweep actually runs — which is the
   only time there is progress to report. *)
type on_cell = completed:int -> total:int -> unit

let families_mu = Mutex.create ()

let families :
    (Sg.graph * ((config, sweep) Sg.keyed * on_cell option ref)) list ref =
  ref []

let family (t : Flow.t) : (config, sweep) Sg.keyed * on_cell option ref =
  let g = Flow.graph t in
  Mutex.lock families_mu;
  let f =
    match List.find_opt (fun (g', _) -> g' == g) !families with
    | Some (_, f) -> f
    | None ->
      let cbref = ref None in
      let f =
        Sg.keyed g ~name:"wafer"
          ~deps:(fun cfg ->
            [ "sta"; "placed"; "sampler"; "clock";
              "shifters[" ^ Island.direction_name cfg.direction ^ "]" ])
          ~key_label:config_label
          (fun cfg -> run ?on_cell:!cbref t (Flow.variant t cfg.direction) cfg)
      in
      families := (g, (f, cbref)) :: !families;
      (f, cbref)
  in
  Mutex.unlock families_mu;
  f

let sweep ?on_cell t cfg =
  let f, cbref = family t in
  match on_cell with
  | None -> Sg.get_keyed f cfg
  | Some _ ->
    cbref := on_cell;
    Fun.protect
      ~finally:(fun () -> cbref := None)
      (fun () -> Sg.get_keyed f cfg)

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

type metric =
  | Yield_uncompensated
  | Yield_compensated
  | Yield_chip_wide
  | Mean_raised
  | Delay_p90

let metric_name = function
  | Yield_uncompensated -> "uncompensated yield"
  | Yield_compensated -> "compensated yield"
  | Yield_chip_wide -> "chip-wide yield"
  | Mean_raised -> "mean islands raised"
  | Delay_p90 -> "P90 critical delay (ns)"

let metric_value m (c : cell) =
  match m with
  | Yield_uncompensated -> c.yield_uncompensated
  | Yield_compensated -> c.yield_compensated
  | Yield_chip_wide -> c.yield_chip_wide
  | Mean_raised -> c.mean_raised
  | Delay_p90 -> c.delay_p90_ns

let ramp = " .:-=+*#%@"

let render_map s m =
  let cfg = s.config in
  let values = Array.map (metric_value m) s.cells in
  let lo = Array.fold_left Float.min infinity values in
  let hi = Array.fold_left Float.max neg_infinity values in
  let char_of v =
    let t = if hi > lo then (v -. lo) /. (hi -. lo) else 0.0 in
    let i = int_of_float (t *. float_of_int (String.length ramp - 1)) in
    ramp.[Stdlib.max 0 (Stdlib.min (String.length ramp - 1) i)]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s over the %dx%d die grid (%.3g..%.3g, ' '=low '@'=high):\n"
       (metric_name m) cfg.nx cfg.ny lo hi);
  for iy = cfg.ny - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "  y=%4.2f |" (grid_frac cfg.ny iy));
    for ix = 0 to cfg.nx - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_char buf (char_of values.((iy * cfg.nx) + ix))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "          ";
  for ix = 0 to cfg.nx - 1 do
    Buffer.add_string buf (if ix mod 2 = 0 then " +" else "  ")
  done;
  Buffer.add_string buf "  (x: 0 -> 1, lower-left = slow corner A)\n";
  Buffer.contents buf

let pp fmt s =
  let cfg = s.config in
  Format.fprintf fmt
    "wafer sweep: %dx%d grid x %d dies/cell x %d field(s) = %d dies (%s \
     slicing, clock %.3f ns)@.\
    \  timing yield:  uncompensated %.1f%%   islands %.1f%%   chip-wide %.1f%%@.\
    \  mean islands raised per die: %.2f of %d@.\
    \  mean power: islands %.2f mW vs chip-wide adaptation %.2f mW (%.1f%% \
     saved)@.\
    \  critical delay: mean %.3f ns  sigma %.3f ns  range [%.3f, %.3f] ns@."
    cfg.nx cfg.ny cfg.dies_per_cell cfg.fields s.dies
    (Island.direction_name cfg.direction)
    s.clock_ns
    (100.0 *. s.yield_uncompensated)
    (100.0 *. s.yield_compensated)
    (100.0 *. s.yield_chip_wide)
    s.mean_raised s.n_islands s.mean_power_islands_mw s.mean_power_chip_wide_mw
    (100.0 *. (1.0 -. (s.mean_power_islands_mw /. s.mean_power_chip_wide_mw)))
    s.delay.Stats.mean s.delay.Stats.stddev s.delay.Stats.min s.delay.Stats.max;
  Format.fprintf fmt "  dies per detected scenario:";
  Array.iteri
    (fun i n -> Format.fprintf fmt "  %d VI: %d" i n)
    s.scenario_counts;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* JSON export                                                          *)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_int_array a =
  "[" ^ String.concat ", " (Array.to_list (Array.map string_of_int a)) ^ "]"

let to_json s =
  let cfg = s.config in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"grid\": { \"nx\": %d, \"ny\": %d },\n" cfg.nx cfg.ny;
  add "  \"dies_per_cell\": %d,\n" cfg.dies_per_cell;
  add "  \"fields\": %d,\n" cfg.fields;
  add "  \"seed\": %d,\n" cfg.seed;
  add "  \"direction\": \"%s\",\n" (Island.direction_name cfg.direction);
  add "  \"n_islands\": %d,\n" s.n_islands;
  add "  \"clock_ns\": %s,\n" (json_float s.clock_ns);
  add "  \"wafer\": {\n";
  add "    \"dies\": %d,\n" s.dies;
  add "    \"yield_uncompensated\": %s,\n" (json_float s.yield_uncompensated);
  add "    \"yield_compensated\": %s,\n" (json_float s.yield_compensated);
  add "    \"yield_chip_wide\": %s,\n" (json_float s.yield_chip_wide);
  add "    \"mean_raised\": %s,\n" (json_float s.mean_raised);
  add "    \"scenario_counts\": %s,\n" (json_int_array s.scenario_counts);
  add "    \"mean_power_islands_mw\": %s,\n" (json_float s.mean_power_islands_mw);
  add "    \"mean_power_chip_wide_mw\": %s,\n"
    (json_float s.mean_power_chip_wide_mw);
  add "    \"delay_ns\": { \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": %s }\n"
    (json_float s.delay.Stats.mean)
    (json_float s.delay.Stats.stddev)
    (json_float s.delay.Stats.min)
    (json_float s.delay.Stats.max);
  add "  },\n";
  add "  \"cells\": [\n";
  Array.iteri
    (fun i (c : cell) ->
      add
        "    { \"ix\": %d, \"iy\": %d, \"x_frac\": %s, \"y_frac\": %s, \
         \"dies\": %d, \"yield_uncompensated\": %s, \"yield_compensated\": \
         %s, \"yield_chip_wide\": %s, \"mean_raised\": %s, \
         \"scenario_counts\": %s, \"raised_counts\": %s, \
         \"mean_power_islands_mw\": %s, \"mean_power_chip_wide_mw\": %s, \
         \"delay_mean_ns\": %s, \"delay_stddev_ns\": %s, \"delay_p50_ns\": \
         %s, \"delay_p90_ns\": %s }%s\n"
        c.ix c.iy (json_float c.x_frac) (json_float c.y_frac) c.dies
        (json_float c.yield_uncompensated)
        (json_float c.yield_compensated)
        (json_float c.yield_chip_wide)
        (json_float c.mean_raised)
        (json_int_array c.scenario_counts)
        (json_int_array c.raised_counts)
        (json_float c.mean_power_islands_mw)
        (json_float c.mean_power_chip_wide_mw)
        (json_float c.delay.Stats.mean)
        (json_float c.delay.Stats.stddev)
        (json_float c.delay_p50_ns)
        (json_float c.delay_p90_ns)
        (if i < Array.length s.cells - 1 then "," else ""))
    s.cells;
  add "  ]\n}\n";
  Buffer.contents buf
