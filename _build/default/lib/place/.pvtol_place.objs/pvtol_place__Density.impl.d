lib/place/density.ml: Array Floorplan List Netlist Placement Pvtol_netlist Pvtol_stdcell Pvtol_util
