lib/util/specfun.mli:
