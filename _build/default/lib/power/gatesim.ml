open Pvtol_netlist
module Kind = Pvtol_stdcell.Kind
module Cell_lib = Pvtol_stdcell.Cell
module Srng = Pvtol_util.Srng

type stimulus = cycle:int -> input_index:int -> bool

type activity = {
  cycles : int;
  toggles : int array;
  rates : float array;
}

(* Levelized combinational order (flip-flops excluded). *)
let topo_order (nl : Netlist.t) =
  let n = Netlist.cell_count nl in
  let is_seq (c : Netlist.cell) =
    Kind.is_sequential c.Netlist.cell.Cell_lib.kind
  in
  let indeg = Array.make n 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not (is_seq c) then
        Array.iter
          (fun nid ->
            match nl.Netlist.nets.(nid).Netlist.driver with
            | Some d when not (is_seq nl.Netlist.cells.(d)) ->
              indeg.(c.Netlist.id) <- indeg.(c.Netlist.id) + 1
            | Some _ | None -> ())
          c.Netlist.fanins)
    nl.Netlist.cells;
  let queue = Queue.create () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if (not (is_seq c)) && indeg.(c.Netlist.id) = 0 then
        Queue.add c.Netlist.id queue)
    nl.Netlist.cells;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    order.(!k) <- cid;
    incr k;
    Array.iter
      (fun (sink, _) ->
        if not (is_seq nl.Netlist.cells.(sink)) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      nl.Netlist.nets.(nl.Netlist.cells.(cid).Netlist.fanout).Netlist.sinks
  done;
  Array.sub order 0 !k

let run ?(cycles = 512) (nl : Netlist.t) stimulus =
  let order = topo_order nl in
  let value = Array.make (Netlist.net_count nl) false in
  let toggles = Array.make (Netlist.cell_count nl) 0 in
  let flops =
    Array.to_list nl.Netlist.cells
    |> List.filter (fun (c : Netlist.cell) ->
           Kind.is_sequential c.Netlist.cell.Cell_lib.kind)
    |> Array.of_list
  in
  let eval_cell (c : Netlist.cell) =
    let kind = c.Netlist.cell.Cell_lib.kind in
    let ins = Array.map (fun nid -> value.(nid)) c.Netlist.fanins in
    Kind.eval kind ins
  in
  for cycle = 0 to cycles - 1 do
    Array.iteri
      (fun idx nid -> value.(nid) <- stimulus ~cycle ~input_index:idx)
      nl.Netlist.inputs;
    (* Flop outputs already hold this cycle's Q; evaluate logic. *)
    Array.iter
      (fun cid ->
        let c = nl.Netlist.cells.(cid) in
        let v = eval_cell c in
        if v <> value.(c.Netlist.fanout) then
          toggles.(cid) <- toggles.(cid) + 1;
        value.(c.Netlist.fanout) <- v)
      order;
    (* Clock edge: all flops capture D simultaneously. *)
    let captured =
      Array.map (fun (c : Netlist.cell) -> value.(c.Netlist.fanins.(0))) flops
    in
    Array.iteri
      (fun i (c : Netlist.cell) ->
        if captured.(i) <> value.(c.Netlist.fanout) then
          toggles.(c.Netlist.id) <- toggles.(c.Netlist.id) + 1;
        value.(c.Netlist.fanout) <- captured.(i))
      flops
  done;
  {
    cycles;
    toggles;
    rates =
      Array.map (fun t -> float_of_int t /. float_of_int cycles) toggles;
  }

let random_stimulus ~seed =
  (* Stateless hashing keeps the stimulus independent of evaluation
     order: bit = hash(seed, cycle, input). *)
  fun ~cycle ~input_index ->
    let g = Srng.create ((seed * 0x9E3779B1) lxor (cycle * 2654435761) lxor input_index) in
    Srng.uniform g < 0.5

let trace_stimulus (nl : Netlist.t) ~instr_prefix ~words ~fallback =
  let words = Array.of_list words in
  let n_cycles = Array.length words in
  assert (n_cycles > 0);
  (* Map input index -> (word, bit) when the input belongs to the
     instruction bus. *)
  let classify =
    Array.map
      (fun nid ->
        let name = nl.Netlist.nets.(nid).Netlist.net_name in
        let plen = String.length instr_prefix in
        if
          String.length name > plen + 1
          && String.sub name 0 plen = instr_prefix
          && name.[plen] = '['
        then
          let idx =
            int_of_string
              (String.sub name (plen + 1) (String.length name - plen - 2))
          in
          Some idx
        else None)
      nl.Netlist.inputs
  in
  let stim ~cycle ~input_index =
    match classify.(input_index) with
    | Some bit_idx ->
      let bundle = words.(cycle mod n_cycles) in
      let word = bundle.(bit_idx / 32) in
      Int32.logand (Int32.shift_right_logical word (bit_idx mod 32)) 1l = 1l
    | None -> fallback ~cycle ~input_index
  in
  (stim, n_cycles)

let mean_rate a =
  if Array.length a.rates = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a.rates /. float_of_int (Array.length a.rates)
