open Gen

let operand t ~rf_value ~fwd_ex ~fwd_wb ~sel_ex ~sel_wb =
  let w = Array.length rf_value in
  let wb_fan = fanout_tree t sel_wb w in
  let ex_fan = fanout_tree t sel_ex w in
  Array.init w (fun i ->
      let after_wb = mux2 t rf_value.(i) fwd_wb.(i) ~sel:wb_fan.(i) in
      mux2 t after_wb fwd_ex.(i) ~sel:ex_fan.(i))
