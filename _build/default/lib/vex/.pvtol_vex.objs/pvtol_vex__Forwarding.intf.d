lib/vex/forwarding.mli: Gen
