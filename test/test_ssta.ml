(* Tests for the Monte-Carlo SSTA engine, scenario classification and
   Razor sensor selection. *)

module MC = Pvtol_ssta.Monte_carlo
module Scenario = Pvtol_ssta.Scenario
module Sensors = Pvtol_ssta.Sensors
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Netlist = Pvtol_netlist.Netlist
module Stage = Pvtol_netlist.Stage

let env =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     let p = Pvtol_place.Placer.place nl fp in
     let sta =
       Sta.of_placement p ~capture:v.Pvtol_vex.Vex_core.capture_stage
     in
     (v, nl, p, sta, Sampler.create ()))

let run ?(samples = 60) ?(seed = 5) ?vdd position =
  let _, _, p, sta, sampler = Lazy.force env in
  MC.run ~config:{ MC.samples; seed } ?vdd ~sampler ~sta ~placement:p ~position ()

(* Golden values captured from the pre-parallel serial engine (one
   sequential SplitMix64 stream over all samples) for the seed config
   below: samples=60, seed=5, point A, small VEX.  The chunked engine
   must reproduce them bit-for-bit for every domain count — that is the
   whole point of the jump-ahead RNG chunking. *)
let golden_worst_0 = 0x1.bfe39f066e2efp+1
let golden_worst_59 = 0x1.c3f1388923c4bp+1
let golden_worst_sum = 0x1.a369ed8005faep+7

let golden_stage_means =
  [
    (Stage.Fetch, 0x1.5def8212cd50fp+0);
    (Stage.Decode, 0x1.714671bf8111bp+0);
    (Stage.Execute, 0x1.bf5fec444aa52p+1);
    (Stage.Writeback, 0x1.6e286acd91abap+1);
  ]

let golden_crit_checksum = 2637444
let golden_crit_size = 81

let test_mc_domain_invariance () =
  let module Pool = Pvtol_util.Pool in
  let _, _, p, sta, sampler = Lazy.force env in
  (* The golden hex pins below are serial-engine values: pin the engine
     explicitly so the test is independent of PVTOL_MC_ENGINE.  The
     batched engine's own invariance is covered separately. *)
  let run_with pool =
    MC.run ~config:{ MC.samples = 60; seed = 5 } ~engine:MC.Golden ~pool
      ~sampler ~sta ~placement:p ~position:Position.point_a ()
  in
  let check_golden label (r : MC.result) =
    Alcotest.(check bool)
      (label ^ ": worst_samples.(0) golden")
      true
      (r.MC.worst_samples.(0) = golden_worst_0);
    Alcotest.(check bool)
      (label ^ ": worst_samples.(59) golden")
      true
      (r.MC.worst_samples.(59) = golden_worst_59);
    Alcotest.(check bool)
      (label ^ ": worst_samples sum golden")
      true
      (Array.fold_left ( +. ) 0.0 r.MC.worst_samples = golden_worst_sum);
    List.iter
      (fun (stage, mean) ->
        match MC.stage_stats r stage with
        | None -> Alcotest.failf "%s: stage %s missing" label (Stage.name stage)
        | Some ss ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s mean golden" label (Stage.name stage))
            true
            (ss.MC.summary.Pvtol_util.Stats.mean = mean))
      golden_stage_means;
    let acc = ref 0 in
    Hashtbl.iter
      (fun cid n -> acc := !acc + (cid * n))
      r.MC.endpoint_critical_count;
    Alcotest.(check int) (label ^ ": criticality checksum") golden_crit_checksum !acc;
    Alcotest.(check int)
      (label ^ ": criticality table size")
      golden_crit_size
      (Hashtbl.length r.MC.endpoint_critical_count)
  in
  let reference = ref None in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let r = run_with pool in
          let label = Printf.sprintf "%d domains" domains in
          check_golden label r;
          match !reference with
          | None -> reference := Some r
          | Some r0 ->
            Alcotest.(check bool)
              (label ^ ": worst_samples bit-identical to 1 domain")
              true
              (r.MC.worst_samples = r0.MC.worst_samples);
            List.iter2
              (fun (a : MC.stage_stats) (b : MC.stage_stats) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s samples bit-identical" label
                     (Stage.name a.MC.stage))
                  true
                  (a.MC.samples = b.MC.samples))
              r.MC.stages r0.MC.stages))
    [ 1; 2; 4 ]

let test_mc_batched_domain_invariance () =
  (* The batched engine must be domain-count invariant in the same
     bit-identical sense as the golden one: chunks own disjoint sample
     slices and draw from jump-ahead RNG streams, so the fan-out width
     must not leak into any result. *)
  let module Pool = Pvtol_util.Pool in
  let _, _, p, sta, sampler = Lazy.force env in
  let run_with pool =
    MC.run ~config:{ MC.samples = 60; seed = 5 } ~engine:MC.Batched ~pool
      ~sampler ~sta ~placement:p ~position:Position.point_a ()
  in
  let reference = ref None in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let r = run_with pool in
          let label = Printf.sprintf "batched %d domains" domains in
          match !reference with
          | None -> reference := Some r
          | Some r0 ->
            Alcotest.(check bool)
              (label ^ ": worst_samples bit-identical to 1 domain")
              true
              (r.MC.worst_samples = r0.MC.worst_samples);
            List.iter2
              (fun (a : MC.stage_stats) (b : MC.stage_stats) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s samples bit-identical" label
                     (Stage.name a.MC.stage))
                  true
                  (a.MC.samples = b.MC.samples))
              r.MC.stages r0.MC.stages;
            let crit r =
              Hashtbl.fold (fun cid n acc -> (cid, n) :: acc)
                r.MC.endpoint_critical_count []
              |> List.sort compare
            in
            Alcotest.(check bool)
              (label ^ ": criticality identical")
              true
              (crit r = crit r0)))
    [ 1; 2; 4 ]

let test_mc_deterministic () =
  let a = run Position.point_a and b = run Position.point_a in
  List.iter2
    (fun (x : MC.stage_stats) (y : MC.stage_stats) ->
      Alcotest.(check bool) "same samples" true (x.MC.samples = y.MC.samples))
    a.MC.stages b.MC.stages

let test_mc_seed_changes_samples () =
  let a = run ~seed:5 Position.point_a and b = run ~seed:6 Position.point_a in
  let xa = (List.hd a.MC.stages).MC.samples
  and xb = (List.hd b.MC.stages).MC.samples in
  Alcotest.(check bool) "different seed different draw" true (xa <> xb)

let test_mc_stage_coverage () =
  let r = run Position.point_a in
  let stages = List.map (fun (s : MC.stage_stats) -> s.MC.stage) r.MC.stages in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s analyzed" (Stage.name s))
        true (List.mem s stages))
    [ Stage.Fetch; Stage.Decode; Stage.Execute; Stage.Writeback ]

let test_mc_position_ordering () =
  (* Delays at the slow corner stochastically dominate the fast one. *)
  let a = run Position.point_a and d = run Position.point_d in
  List.iter2
    (fun (sa : MC.stage_stats) (sd : MC.stage_stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s slower at A" (Stage.name sa.MC.stage))
        true
        (sa.MC.summary.Pvtol_util.Stats.mean > sd.MC.summary.Pvtol_util.Stats.mean))
    a.MC.stages d.MC.stages

let test_mc_three_sigma_above_mean () =
  let r = run Position.point_b in
  List.iter
    (fun (ss : MC.stage_stats) ->
      Alcotest.(check bool) "3-sigma above mean" true
        (MC.three_sigma_delay ss > ss.MC.summary.Pvtol_util.Stats.mean))
    r.MC.stages

let test_mc_high_vdd_shifts_down () =
  let _, nl, _, _, _ = Lazy.force env in
  let p = nl.Netlist.lib.Pvtol_stdcell.Cell.process in
  let low = run Position.point_a in
  let high = run ~vdd:(fun _ -> p.Pvtol_stdcell.Process.vdd_high) Position.point_a in
  List.iter2
    (fun (l : MC.stage_stats) (h : MC.stage_stats) ->
      Alcotest.(check bool) "high vdd faster" true
        (h.MC.summary.Pvtol_util.Stats.mean < l.MC.summary.Pvtol_util.Stats.mean))
    low.MC.stages high.MC.stages

let test_scenario_classification () =
  let r = run ~samples:80 Position.point_a in
  (* With an absurdly large clock nothing violates... *)
  let sc = Scenario.classify ~clock:1e9 r in
  Alcotest.(check int) "no violation at huge clock" 0 sc.Scenario.index;
  Alcotest.(check bool) "worst_violation zero" true
    (Scenario.worst_violation sc = 0.0);
  (* ...and with a tiny clock every analyzed stage violates. *)
  let sc2 = Scenario.classify ~clock:1e-9 r in
  Alcotest.(check int) "all violate at tiny clock" 3 sc2.Scenario.index;
  (* Violating stages are ordered worst-first. *)
  match sc2.Scenario.violating with
  | first :: _ ->
    let worst =
      List.fold_left
        (fun (bs, bd) (s : Scenario.stage_slack) ->
          if s.Scenario.slack < bd then (s.Scenario.stage, s.Scenario.slack)
          else (bs, bd))
        (Stage.Fetch, infinity) sc2.Scenario.stage_slacks
    in
    Alcotest.(check bool) "ordered worst first" true (Stage.equal first (fst worst))
  | [] -> Alcotest.fail "expected violations"

let test_scenario_ladder_monotone () =
  (* The scenario index never increases as the die moves toward the fast
     corner, for any clock choice taken from the data. *)
  let a = run ~samples:80 Position.point_a in
  let clock =
    match MC.stage_stats a Stage.Execute with
    | Some ss -> MC.three_sigma_delay ss *. 0.99
    | None -> Alcotest.fail "execute stats missing"
  in
  let indexes =
    List.map
      (fun pos -> (Scenario.classify ~clock (run ~samples:80 pos)).Scenario.index)
      Position.named
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ladder non-increasing along diagonal" true
    (non_increasing indexes)

let test_analytic_clark_max () =
  let module An = Pvtol_ssta.Analytic in
  (* Degenerate case: zero variance reduces to plain max. *)
  let a = { An.mean = 3.0; var = 0.0 } and b = { An.mean = 1.0; var = 0.0 } in
  let m = An.clark_max a b in
  Alcotest.(check bool) "degenerate max" true
    (Float.abs (m.An.mean -. 3.0) < 1e-12 && m.An.var < 1e-12);
  (* Symmetric case: max of two iid N(0,1) has mean 1/sqrt(pi). *)
  let g = { An.mean = 0.0; var = 1.0 } in
  let m = An.clark_max g g in
  Alcotest.(check bool) "iid normal max mean" true
    (Float.abs (m.An.mean -. (1.0 /. sqrt Float.pi)) < 1e-9);
  (* Monte-Carlo validation of Clark's moments on an asymmetric pair. *)
  let rng = Pvtol_util.Srng.create 17 in
  let acc = Pvtol_util.Stats.Running.create () in
  let a = { An.mean = 1.0; var = 0.04 } and b = { An.mean = 1.1; var = 0.09 } in
  for _ = 1 to 40_000 do
    let x = Pvtol_util.Srng.gaussian_mu_sigma rng ~mu:a.An.mean ~sigma:(sqrt a.An.var) in
    let y = Pvtol_util.Srng.gaussian_mu_sigma rng ~mu:b.An.mean ~sigma:(sqrt b.An.var) in
    Pvtol_util.Stats.Running.add acc (Float.max x y)
  done;
  let m = An.clark_max a b in
  Alcotest.(check bool) "clark mean vs MC" true
    (Float.abs (m.An.mean -. Pvtol_util.Stats.Running.mean acc) < 0.01);
  Alcotest.(check bool) "clark var vs MC" true
    (Float.abs (m.An.var -. Pvtol_util.Stats.Running.variance acc) < 0.01)

let test_analytic_matches_mc () =
  let module An = Pvtol_ssta.Analytic in
  let _, _, p, sta, sampler = Lazy.force env in
  let mc = run ~samples:150 Position.point_a in
  let systematic = Sampler.systematic_lgates sampler p Position.point_a in
  let an = An.analyze ~sta ~sampler ~systematic () in
  List.iter
    (fun s ->
      match (MC.stage_stats mc s, List.assoc_opt s an.An.stage_delay) with
      | Some ss, Some g ->
        let mc3 = MC.three_sigma_delay ss in
        let an3 = An.three_sigma g in
        Alcotest.(check bool)
          (Printf.sprintf "%s analytic within 2%% of MC" (Stage.name s))
          true
          (Float.abs (mc3 -. an3) /. mc3 < 0.02)
      | _ -> Alcotest.fail "missing stage")
    [ Stage.Decode; Stage.Execute; Stage.Writeback ]

let test_mc_off_diagonal () =
  (* [at_xy] on the x=y line is the same position as [at_fraction]:
     identical RNG protocol => bit-identical Monte-Carlo output. *)
  let r1 = run (Position.at_fraction 0.25) in
  let r2 = run (Position.at_xy ~x_frac:0.25 ~y_frac:0.25 ()) in
  Alcotest.(check bool) "diagonal at_xy bit-identical" true
    (r1.MC.worst_samples = r2.MC.worst_samples);
  List.iter2
    (fun (a : MC.stage_stats) (b : MC.stage_stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s samples bit-identical" (Stage.name a.MC.stage))
        true
        (a.MC.samples = b.MC.samples))
    r1.MC.stages r2.MC.stages;
  (* Off the diagonal nothing degenerates: full stage coverage, finite
     positive spreads, a populated criticality table and a sane
     scenario ladder. *)
  List.iter
    (fun (x_frac, y_frac) ->
      let r = run ~samples:80 (Position.at_xy ~x_frac ~y_frac ()) in
      Alcotest.(check int) "all analyzed stages present" 4
        (List.length r.MC.stages);
      List.iter
        (fun (ss : MC.stage_stats) ->
          let s = ss.MC.summary in
          Alcotest.(check bool) "finite positive spread" true
            (Float.is_finite s.Pvtol_util.Stats.mean
            && s.Pvtol_util.Stats.stddev > 0.0
            && s.Pvtol_util.Stats.min < s.Pvtol_util.Stats.max))
        r.MC.stages;
      Alcotest.(check bool) "criticality table populated" true
        (Hashtbl.length r.MC.endpoint_critical_count > 0);
      Alcotest.(check int) "no violation at huge clock" 0
        (Scenario.classify ~clock:1e9 r).Scenario.index;
      Alcotest.(check int) "all violate at tiny clock" 3
        (Scenario.classify ~clock:1e-9 r).Scenario.index)
    [ (0.1, 0.9); (0.9, 0.1); (0.0, 1.0) ];
  (* Both coordinates move delay: sliding either axis toward the fast
     corner speeds every stage up (the systematic map decays in x AND
     y — a diagonal-only model would miss one of these). *)
  let check_faster label slow fast =
    List.iter2
      (fun (s : MC.stage_stats) (f : MC.stage_stats) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s faster" label (Stage.name s.MC.stage))
          true
          (f.MC.summary.Pvtol_util.Stats.mean
          < s.MC.summary.Pvtol_util.Stats.mean))
      slow.MC.stages fast.MC.stages
  in
  check_faster "x axis"
    (run (Position.at_xy ~x_frac:0.0 ~y_frac:0.5 ()))
    (run (Position.at_xy ~x_frac:1.0 ~y_frac:0.5 ()));
  check_faster "y axis"
    (run (Position.at_xy ~x_frac:0.5 ~y_frac:0.0 ()))
    (run (Position.at_xy ~x_frac:0.5 ~y_frac:1.0 ()))

let test_analytic_mc_differential () =
  (* Differential oracle: the single-traversal analytic SSTA against
     the Monte-Carlo sample moments, per stage, at all four named die
     positions.  Tolerances (documented contract, not typical error):
     stage means within 1% relative (observed worst 0.51% on this
     design), stage sigmas within 60% relative (observed worst 49% on
     Execute — the Clark max over many near-identical paths
     underestimates spread, and the MC sigma itself carries sampling
     noise at 150 samples). *)
  let module An = Pvtol_ssta.Analytic in
  let _, _, p, sta, sampler = Lazy.force env in
  List.iter
    (fun pos ->
      let mc = run ~samples:150 pos in
      let systematic = Sampler.systematic_lgates sampler p pos in
      let an = An.analyze ~sta ~sampler ~systematic () in
      List.iter
        (fun (ss : MC.stage_stats) ->
          match List.assoc_opt ss.MC.stage an.An.stage_delay with
          | None ->
            Alcotest.failf "%s: stage %s missing from analytic result"
              pos.Position.label (Stage.name ss.MC.stage)
          | Some g ->
            let mc_mean = ss.MC.summary.Pvtol_util.Stats.mean in
            let mc_sigma = ss.MC.summary.Pvtol_util.Stats.stddev in
            let an_sigma = sqrt g.An.var in
            let d_mean = Float.abs (g.An.mean -. mc_mean) /. mc_mean in
            let d_sigma = Float.abs (an_sigma -. mc_sigma) /. mc_sigma in
            if d_mean >= 0.01 then
              Alcotest.failf "%s/%s: mean off by %.2f%% (analytic %g, mc %g)"
                pos.Position.label (Stage.name ss.MC.stage) (100.0 *. d_mean)
                g.An.mean mc_mean;
            if d_sigma >= 0.60 then
              Alcotest.failf "%s/%s: sigma off by %.1f%% (analytic %g, mc %g)"
                pos.Position.label (Stage.name ss.MC.stage) (100.0 *. d_sigma)
                an_sigma mc_sigma)
        mc.MC.stages)
    Position.named

let test_sensors () =
  let _, nl, _, _, _ = Lazy.force env in
  let r = run ~samples:80 Position.point_a in
  let plan = Sensors.select r nl in
  Alcotest.(check bool) "some sites selected" true (List.length plan.Sensors.sites > 0);
  List.iter
    (fun (site : Sensors.site) ->
      Alcotest.(check bool) "criticality above threshold" true
        (site.Sensors.criticality >= 0.01);
      Alcotest.(check bool) "site is a flop" false
        (Netlist.is_comb nl.Netlist.cells.(site.Sensors.endpoint)))
    plan.Sensors.sites;
  Alcotest.(check bool) "overhead fraction sane" true
    (plan.Sensors.area_overhead_frac > 0.0 && plan.Sensors.area_overhead_frac < 0.2);
  (* A stricter threshold never selects more sites. *)
  let strict = Sensors.select ~min_criticality:0.5 r nl in
  Alcotest.(check bool) "stricter threshold fewer sites" true
    (List.length strict.Sensors.sites <= List.length plan.Sensors.sites)

let suite =
  ( "ssta",
    [
      Alcotest.test_case "mc deterministic" `Quick test_mc_deterministic;
      Alcotest.test_case "mc domain-count invariance + serial golden" `Quick
        test_mc_domain_invariance;
      Alcotest.test_case "mc batched domain-count invariance" `Quick
        test_mc_batched_domain_invariance;
      Alcotest.test_case "mc seed sensitivity" `Quick test_mc_seed_changes_samples;
      Alcotest.test_case "mc stage coverage" `Quick test_mc_stage_coverage;
      Alcotest.test_case "mc position ordering" `Quick test_mc_position_ordering;
      Alcotest.test_case "mc 3-sigma above mean" `Quick test_mc_three_sigma_above_mean;
      Alcotest.test_case "mc high vdd shifts down" `Quick test_mc_high_vdd_shifts_down;
      Alcotest.test_case "scenario classification" `Quick test_scenario_classification;
      Alcotest.test_case "scenario ladder monotone" `Quick test_scenario_ladder_monotone;
      Alcotest.test_case "sensor selection" `Quick test_sensors;
      Alcotest.test_case "clark max moments" `Quick test_analytic_clark_max;
      Alcotest.test_case "analytic vs MC" `Quick test_analytic_matches_mc;
      Alcotest.test_case "mc off-diagonal positions" `Quick test_mc_off_diagonal;
      Alcotest.test_case "analytic vs MC differential (A-D)" `Quick
        test_analytic_mc_differential;
    ] )
