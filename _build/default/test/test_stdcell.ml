(* Tests for Pvtol_stdcell: cell semantics, device models, Liberty. *)

module Kind = Pvtol_stdcell.Kind
module Cell = Pvtol_stdcell.Cell
module Process = Pvtol_stdcell.Process
module Liberty = Pvtol_stdcell.Liberty

let check_approx ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* --- Kind --- *)

let bool_vectors n =
  List.init (1 lsl n) (fun v -> Array.init n (fun i -> (v lsr i) land 1 = 1))

let reference_eval (k : Kind.t) (ins : bool array) =
  match k with
  | Kind.Inv -> not ins.(0)
  | Kind.Buf | Kind.Dff | Kind.Ls -> ins.(0)
  | Kind.Nand2 -> not (ins.(0) && ins.(1))
  | Kind.Nand3 -> not (ins.(0) && ins.(1) && ins.(2))
  | Kind.Nor2 -> not (ins.(0) || ins.(1))
  | Kind.Nor3 -> not (ins.(0) || ins.(1) || ins.(2))
  | Kind.And2 -> ins.(0) && ins.(1)
  | Kind.Or2 -> ins.(0) || ins.(1)
  | Kind.Xor2 -> ins.(0) <> ins.(1)
  | Kind.Xnor2 -> ins.(0) = ins.(1)
  | Kind.Aoi21 -> not ((ins.(0) && ins.(1)) || ins.(2))
  | Kind.Oai21 -> not ((ins.(0) || ins.(1)) && ins.(2))
  | Kind.Mux2 -> if ins.(2) then ins.(1) else ins.(0)
  | Kind.Tiehi -> true
  | Kind.Tielo -> false

let test_kind_truth_tables () =
  List.iter
    (fun k ->
      List.iter
        (fun ins ->
          Alcotest.(check bool)
            (Printf.sprintf "%s truth table" (Kind.name k))
            (reference_eval k ins) (Kind.eval k ins))
        (bool_vectors (Kind.arity k)))
    Kind.all

let test_kind_arity_mismatch () =
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Kind.eval: arity mismatch") (fun () ->
      ignore (Kind.eval Kind.Nand2 [| true |]))

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Kind.of_name (Kind.name k) with
      | Some k' -> Alcotest.(check bool) "name roundtrip" true (k = k')
      | None -> Alcotest.failf "name %s does not parse" (Kind.name k))
    Kind.all;
  Alcotest.(check bool) "unknown name" true (Kind.of_name "FOO" = None)

(* --- Process models --- *)

let p = Process.default

let test_delay_scale_normalized () =
  check_approx "unity at nominal corner" 1.0
    (Process.delay_scale p ~vdd:p.Process.vdd_low ~lgate_nm:p.Process.l_nominal_nm)

let test_delay_monotone_in_lgate () =
  let prev = ref 0.0 in
  List.iter
    (fun lg ->
      let d = Process.delay_scale p ~vdd:1.0 ~lgate_nm:lg in
      if d <= !prev then Alcotest.failf "delay not increasing at Lgate %.1f" lg;
      prev := d)
    [ 58.0; 61.0; 63.0; 65.0; 67.0; 69.0; 72.0 ]

let test_delay_monotone_in_vdd () =
  let d_low = Process.delay_scale p ~vdd:1.0 ~lgate_nm:65.0 in
  let d_mid = Process.delay_scale p ~vdd:1.1 ~lgate_nm:65.0 in
  let d_high = Process.delay_scale p ~vdd:1.2 ~lgate_nm:65.0 in
  Alcotest.(check bool) "higher vdd is faster" true (d_high < d_mid && d_mid < d_low)

let test_speedup_band () =
  let s = Process.speedup_high_vdd p in
  (* The 1.0 -> 1.2V boost on a high-Vth LP process buys 10-25%. *)
  Alcotest.(check bool) "speedup plausible" true (s > 1.10 && s < 1.25)

let test_vth_dibl_direction () =
  (* Shorter channel -> lower Vth (DIBL); higher Vdd -> lower Vth. *)
  let vth_nom = Process.vth_eff p ~vdd:1.0 ~lgate_nm:65.0 in
  let vth_short = Process.vth_eff p ~vdd:1.0 ~lgate_nm:60.0 in
  let vth_high = Process.vth_eff p ~vdd:1.2 ~lgate_nm:65.0 in
  Alcotest.(check bool) "short channel lowers vth" true (vth_short < vth_nom);
  Alcotest.(check bool) "high vdd lowers vth" true (vth_high < vth_nom)

let test_leakage_scale () =
  check_approx "unity at nominal" 1.0
    (Process.leakage_scale p ~vdd:1.0 ~lgate_nm:65.0);
  let at_high = Process.leakage_scale p ~vdd:1.2 ~lgate_nm:65.0 in
  Alcotest.(check bool) "high vdd leaks more" true (at_high > 1.3 && at_high < 2.0);
  let short = Process.leakage_scale p ~vdd:1.0 ~lgate_nm:60.0 in
  Alcotest.(check bool) "short channel leaks more" true (short > 1.0)

let test_paper_literal_dibl_negligible () =
  let lit = Process.paper_literal in
  let vth = Process.vth_eff lit ~vdd:1.0 ~lgate_nm:65.0 in
  (* With alpha_dibl = 0.15/nm the DIBL term is ~60 uV. *)
  Alcotest.(check bool) "literal Eq. 4 DIBL is tiny" true
    (Float.abs (vth -. lit.Process.vth0) < 1e-3)

(* --- Cell library --- *)

let lib = Cell.default_library

let test_drive_ordering () =
  let inv d = Cell.find lib Kind.Inv d in
  let x0 = inv Cell.X0 and x1 = inv Cell.X1 and x4 = inv Cell.X4 in
  Alcotest.(check bool) "res decreases with drive" true
    (x0.Cell.drive_res > x1.Cell.drive_res && x1.Cell.drive_res > x4.Cell.drive_res);
  Alcotest.(check bool) "area grows with drive" true
    (x0.Cell.area < x1.Cell.area && x1.Cell.area < x4.Cell.area);
  Alcotest.(check bool) "cap grows with drive" true
    (x0.Cell.input_cap < x4.Cell.input_cap);
  Alcotest.(check bool) "leak grows with drive" true (x0.Cell.leak < x4.Cell.leak)

let test_every_kind_every_drive_present () =
  List.iter
    (fun k ->
      List.iter
        (fun d ->
          let c = Cell.find lib k d in
          Alcotest.(check bool) "area positive" true (c.Cell.area > 0.0))
        [ Cell.X0; Cell.X1; Cell.X2; Cell.X4 ])
    Kind.all

let test_delay_load_dependence () =
  let nand = Cell.find lib Kind.Nand2 Cell.X1 in
  let d0 = Cell.delay lib nand ~vdd:1.0 ~lgate_nm:65.0 ~load_ff:0.0 in
  let d10 = Cell.delay lib nand ~vdd:1.0 ~lgate_nm:65.0 ~load_ff:10.0 in
  check_approx ~eps:1e-12 "no-load delay = d0" nand.Cell.d0 d0;
  check_approx ~eps:1e-9 "load slope" (nand.Cell.drive_res *. 10.0) (d10 -. d0)

let test_switching_energy_scales_with_vdd () =
  let c = Cell.find lib Kind.Buf Cell.X1 in
  let e1 = Cell.switching_energy_fj lib c ~vdd:1.0 ~load_ff:5.0 in
  let e2 = Cell.switching_energy_fj lib c ~vdd:1.2 ~load_ff:5.0 in
  check_approx ~eps:1e-9 "quadratic vdd scaling" (e1 *. 1.44) e2

(* --- Liberty --- *)

let test_liberty_roundtrip () =
  let text = Liberty.to_string lib in
  let lib2 = Liberty.of_string text in
  Alcotest.(check string) "name" lib.Cell.name lib2.Cell.name;
  Alcotest.(check int) "cell count" (List.length lib.Cell.cells)
    (List.length lib2.Cell.cells);
  List.iter2
    (fun (a : Cell.t) (b : Cell.t) ->
      Alcotest.(check string) "cell name" (Cell.cell_name a) (Cell.cell_name b);
      check_approx "area" a.Cell.area b.Cell.area;
      check_approx "cap" a.Cell.input_cap b.Cell.input_cap;
      check_approx "d0" a.Cell.d0 b.Cell.d0;
      check_approx "res" a.Cell.drive_res b.Cell.drive_res;
      check_approx "eint" a.Cell.e_internal b.Cell.e_internal;
      check_approx "leak" a.Cell.leak b.Cell.leak)
    lib.Cell.cells lib2.Cell.cells;
  check_approx "vth0" lib.Cell.process.Process.vth0 lib2.Cell.process.Process.vth0;
  check_approx "wire cap" lib.Cell.wire_cap_per_um lib2.Cell.wire_cap_per_um

let test_liberty_comments_and_errors () =
  let text = "// header comment\n" ^ Liberty.to_string lib in
  ignore (Liberty.of_string text);
  (try
     ignore (Liberty.of_string "library (x) { cell (NAND2_X1) { area : 1; } }");
     Alcotest.fail "missing attributes should fail"
   with Liberty.Parse_error _ -> ());
  try
    ignore (Liberty.of_string "nonsense");
    Alcotest.fail "garbage should fail"
  with Liberty.Parse_error _ -> ()

let suite =
  ( "stdcell",
    [
      Alcotest.test_case "kind truth tables" `Quick test_kind_truth_tables;
      Alcotest.test_case "kind arity mismatch" `Quick test_kind_arity_mismatch;
      Alcotest.test_case "kind name roundtrip" `Quick test_kind_names_roundtrip;
      Alcotest.test_case "delay scale normalized" `Quick test_delay_scale_normalized;
      Alcotest.test_case "delay monotone in lgate" `Quick test_delay_monotone_in_lgate;
      Alcotest.test_case "delay monotone in vdd" `Quick test_delay_monotone_in_vdd;
      Alcotest.test_case "speedup band" `Quick test_speedup_band;
      Alcotest.test_case "dibl direction" `Quick test_vth_dibl_direction;
      Alcotest.test_case "leakage scale" `Quick test_leakage_scale;
      Alcotest.test_case "paper-literal dibl" `Quick test_paper_literal_dibl_negligible;
      Alcotest.test_case "drive ordering" `Quick test_drive_ordering;
      Alcotest.test_case "library completeness" `Quick test_every_kind_every_drive_present;
      Alcotest.test_case "delay load dependence" `Quick test_delay_load_dependence;
      Alcotest.test_case "switching energy vdd^2" `Quick
        test_switching_energy_scales_with_vdd;
      Alcotest.test_case "liberty roundtrip" `Quick test_liberty_roundtrip;
      Alcotest.test_case "liberty errors" `Quick test_liberty_comments_and_errors;
    ] )
