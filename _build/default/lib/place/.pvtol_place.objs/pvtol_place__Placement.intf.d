lib/place/placement.mli: Floorplan Netlist Pvtol_netlist Pvtol_util
