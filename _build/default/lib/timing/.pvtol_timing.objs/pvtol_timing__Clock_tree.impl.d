lib/timing/clock_tree.ml: Array Float Hashtbl List Netlist Option Pvtol_netlist Pvtol_place Pvtol_stdcell
