lib/ssta/sensors.ml: Array Format Hashtbl List Monte_carlo Netlist Pvtol_netlist Pvtol_stdcell Stage
