lib/vex/adder.mli: Gen
