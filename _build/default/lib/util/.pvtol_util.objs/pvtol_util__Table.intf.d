lib/util/table.mli:
