(** Fully synthesized multi-port register file.

    The paper's VEX register file is synthesized from standard cells
    (no full-custom macro), which is why it owns 53% of the core area
    and dominates power.  Reads are address-selected mux trees; writes
    are per-register address decoders plus write-port priority muxes in
    front of a hold-mux + DFF per bit.

    Fanout handling is deliberately lazy (high [fanout] on the buffer
    trees) so that read and write paths stay RC-dominated, as observed
    in synthesized register files — this is what keeps the decode and
    write-back stages close to the clock constraint. *)

open Gen

type config = {
  n_regs : int;       (** must be a power of two *)
  width : int;
  n_read : int;
  n_write : int;
  addr_bits : int;    (** log2 n_regs *)
  sel_fanout : int;   (** buffer-tree fanout for address/control nets *)
}

val default_config : config
(** 64 x 32b, 8 read ports, 4 write ports — the paper's 4-issue cluster. *)

type ports = {
  read_addr : bus array;    (** [n_read] address buses *)
  read_data : bus array;    (** [n_read] data buses *)
  write_addr : bus array;   (** [n_write] *)
  write_data : bus array;
  write_en : net array;
}

val build :
  t -> config ->
  read_addr:bus array ->
  write_addr:bus array ->
  write_data:bus array ->
  write_en:net array ->
  ports
(** Instantiate the register file.  Read-port logic is tagged with the
    context's stage (callers pass a [Reg_file]-staged context); the
    DFFs and write path are always tagged [Reg_file]. *)
