lib/vex/regfile.ml: Array Comparator Gen
