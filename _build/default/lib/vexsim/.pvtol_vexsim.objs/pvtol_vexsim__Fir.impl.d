lib/vexsim/fir.ml: Array Asm Int32 Printf Pvtol_util Sim String
