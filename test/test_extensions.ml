(* Tests for the extension modules: Verilog interchange, quadrant
   islands, logic-based grouping, post-silicon population study. *)

open Pvtol_netlist
module Verilog = Pvtol_netlist.Verilog
module Flow = Pvtol_core.Flow
module Island = Pvtol_core.Island
module Slicing = Pvtol_core.Slicing
module Logic_grouping = Pvtol_core.Logic_grouping
module Postsilicon = Pvtol_core.Postsilicon
module Geom = Pvtol_util.Geom
module Density = Pvtol_place.Density
module Cell = Pvtol_stdcell.Cell

let lib = Cell.default_library

let small () =
  (Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config).Pvtol_vex.Vex_core.netlist

(* --- Verilog --- *)

let test_verilog_roundtrip () =
  let nl = small () in
  let nl2 = Verilog.of_string lib (Verilog.to_string nl) in
  Alcotest.(check int) "cell count" (Netlist.cell_count nl) (Netlist.cell_count nl2);
  (match Netlist.check nl2 with
  | Ok () -> ()
  | Error es -> Alcotest.failf "parsed netlist invalid: %s" (List.hd es));
  (* Cells survive by instance name with kind, drive, stage and unit. *)
  let index nl =
    let t = Hashtbl.create 64 in
    Array.iter (fun (c : Netlist.cell) -> Hashtbl.replace t c.Netlist.name c) nl.Netlist.cells;
    t
  in
  let t1 = index nl and t2 = index nl2 in
  Hashtbl.iter
    (fun name (c1 : Netlist.cell) ->
      match Hashtbl.find_opt t2 name with
      | None -> Alcotest.failf "instance %s lost" name
      | Some c2 ->
        Alcotest.(check string) "cell type"
          (Cell.cell_name c1.Netlist.cell) (Cell.cell_name c2.Netlist.cell);
        Alcotest.(check bool) "stage" true (Stage.equal c1.Netlist.stage c2.Netlist.stage);
        Alcotest.(check string) "unit" c1.Netlist.unit_name c2.Netlist.unit_name)
    t1;
  (* Functional equivalence on a sampled cell: same fanin connectivity
     by driver instance name. *)
  let driver_names nl (c : Netlist.cell) =
    Array.to_list c.Netlist.fanins
    |> List.map (fun nid ->
           match nl.Netlist.nets.(nid).Netlist.driver with
           | Some d -> nl.Netlist.cells.(d).Netlist.name
           | None -> "input:" ^ nl.Netlist.nets.(nid).Netlist.net_name)
  in
  Hashtbl.iter
    (fun name c1 ->
      let c2 = Hashtbl.find t2 name in
      let d1 = driver_names nl c1 and d2 = driver_names nl2 c2 in
      (* Input net names are sanitized by the writer. *)
      let norm = List.map (fun s -> String.map (fun ch -> if ch = '[' || ch = ']' then '_' else ch) s) in
      if norm d1 <> norm d2 then Alcotest.failf "connectivity changed at %s" name)
    t1

let test_verilog_errors () =
  let expect src =
    try
      ignore (Verilog.of_string lib src);
      Alcotest.failf "expected parse error for %S" src
    with Verilog.Parse_error _ -> ()
  in
  expect "module m (a);\n  input a;\n  FROB_X1 u0 (.o(x), .i0(a));\nendmodule\n";
  expect "module m (a);\n  input a;\n  INV_X1 u0 (.i0(a));\nendmodule\n";
  expect "module m (a, z);\n  input a;\n  output z;\nendmodule\n" (* undriven output *)

let test_verilog_sequential_loop () =
  (* q = DFF(not q): forward reference to the inverter output. *)
  let src =
    "module m (q);\n\
    \  output q;\n\
    \  wire nq;\n\
    \  DFF_X1 ff (.o(q), .i0(nq)); // s=2 u=ring\n\
    \  INV_X1 inv (.o(nq), .i0(q)); // s=2 u=ring\n\
     endmodule\n"
  in
  let nl = Verilog.of_string lib src in
  Alcotest.(check int) "two cells" 2 (Netlist.cell_count nl);
  match Netlist.check nl with
  | Ok () -> ()
  | Error es -> Alcotest.failf "loop netlist invalid: %s" (List.hd es)

(* --- quadrant islands --- *)

let test_quadrant_regions () =
  let core = Geom.rect ~llx:0.0 ~lly:0.0 ~urx:100.0 ~ury:100.0 in
  let r = Island.region_of_fraction ~core Island.Quadrant Density.Left ~t:0.25 in
  (* sqrt(0.25) = 0.5 of each axis from the lower-left corner. *)
  Alcotest.(check bool) "corner rect" true
    (Float.abs (r.Geom.urx -. 50.0) < 1e-9 && Float.abs (r.Geom.ury -. 50.0) < 1e-9);
  Alcotest.(check bool) "area fraction = t" true
    (Float.abs (Geom.area r -. 2500.0) < 1e-6);
  let full = Island.region_of_fraction ~core Island.Quadrant Density.Right ~t:1.0 in
  Alcotest.(check bool) "t=1 covers the core" true (Geom.subsumes full core)

let env =
  lazy
    (let t = Flow.prepare ~config:Flow.quick_config () in
     (t, Flow.variant t Island.Vertical))

let test_quadrant_generation () =
  let t, _ = Lazy.force env in
  let o =
    Slicing.generate ~direction:Island.Quadrant ~sta:(Flow.sta t)
      ~placement:(Flow.placement t) ~sampler:(Flow.sampler t)
      ~clock:(Flow.clock t) ~targets:Flow.growth_targets ()
  in
  let islands = o.Slicing.partition.Island.islands in
  Alcotest.(check int) "three islands" 3 (Array.length islands);
  for k = 0 to 1 do
    Alcotest.(check bool) "nested" true
      (Geom.subsumes islands.(k + 1).Island.region islands.(k).Island.region)
  done

(* --- logic-based grouping --- *)

let test_logic_grouping () =
  let t, _ = Lazy.force env in
  let lg =
    Logic_grouping.generate ~sta:(Flow.sta t) ~placement:(Flow.placement t)
      ~sampler:(Flow.sampler t) ~clock:(Flow.clock t)
      ~targets:Flow.growth_targets ()
  in
  let n = Netlist.cell_count (Flow.netlist t) in
  Alcotest.(check int) "domain per cell" n (Array.length lg.Logic_grouping.domains);
  (* Domains are within range and nested by construction: a scenario-1
     unit's cells stay domain 1. *)
  Array.iter
    (fun d -> Alcotest.(check bool) "domain range" true (d >= 1 && d <= 4))
    lg.Logic_grouping.domains;
  (* Cells of a unit share a domain. *)
  let dom_of_unit = Hashtbl.create 32 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let d = lg.Logic_grouping.domains.(c.Netlist.id) in
      match Hashtbl.find_opt dom_of_unit c.Netlist.unit_name with
      | None -> Hashtbl.replace dom_of_unit c.Netlist.unit_name d
      | Some d' -> Alcotest.(check int) "unit is atomic" d' d)
    (Flow.netlist t).Netlist.cells;
  (* Crossing count is non-negative and bounded by net count. *)
  let ls =
    Logic_grouping.count_crossings (Flow.netlist t)
      ~domains:lg.Logic_grouping.domains
  in
  Alcotest.(check bool) "ls bounded" true
    (ls >= 0 && ls <= Netlist.net_count (Flow.netlist t))

let test_fragmentation_slab_is_one () =
  let t, v = Lazy.force env in
  let domains =
    Island.domains v.Flow.slicing.Slicing.partition (Flow.placement t)
  in
  let frag = Logic_grouping.fragmentation (Flow.placement t) ~domains ~raised:3 in
  Alcotest.(check int) "slab island is one domain" 1 frag

let test_fragmentation_scattered () =
  let t, _ = Lazy.force env in
  let n = Netlist.cell_count (Flow.netlist t) in
  (* A deliberately scattered assignment: every 7th cell raised. *)
  let domains = Array.init n (fun i -> if i mod 7 = 0 then 1 else 2) in
  let frag = Logic_grouping.fragmentation (Flow.placement t) ~domains ~raised:1 in
  (* Nothing reaches majority in any bin -> zero routable domains, or a
     few scattered ones; certainly not a clean single region covering
     the raised cells. *)
  Alcotest.(check bool) "scatter is not one clean region" true (frag <> 1 || frag = 0)

(* --- retiming bound --- *)

let test_retiming_balanced_gains_nothing () =
  let module Retiming = Pvtol_core.Retiming in
  let delay_of _ = Some 2.0 in
  let r = Retiming.bound ~delay_of in
  Alcotest.(check bool) "balanced stages: no gain" true
    (Float.abs r.Retiming.gain < 1e-9)

let test_retiming_borrowing () =
  let module Retiming = Pvtol_core.Retiming in
  let module Stage = Pvtol_netlist.Stage in
  (* A slow DECODE can borrow: the WB->DC->EX loop averages below the
     max, and decode sits in no single-stage loop. *)
  let delay_of = function
    | Stage.Decode -> Some 3.0
    | Stage.Execute -> Some 1.5
    | Stage.Writeback -> Some 1.5
    | Stage.Fetch -> Some 1.0
    | _ -> None
  in
  let r = Retiming.bound ~delay_of in
  Alcotest.(check bool) "retiming helps a lone slow stage" true
    (r.Retiming.t_retimed < r.Retiming.t_unretimed -. 0.5);
  (* But a slow EXECUTE is trapped by its forwarding self-loop. *)
  let delay_of = function
    | Stage.Execute -> Some 3.0
    | s -> if s = Stage.Fetch || s = Stage.Decode || s = Stage.Writeback then Some 1.0 else None
  in
  let r = Retiming.bound ~delay_of in
  Alcotest.(check bool) "execute self-loop forbids borrowing" true
    (Float.abs (r.Retiming.t_retimed -. 3.0) < 1e-9);
  Alcotest.(check bool) "binding loop is execute" true
    (r.Retiming.binding_loop = [ Pvtol_netlist.Stage.Execute ])

(* --- adaptive body bias --- *)

let test_abb_models () =
  let module P = Pvtol_stdcell.Process in
  let p = P.default in
  (* Forward bias speeds up and leaks more, monotonically. *)
  let d0 = P.abb_delay_scale p ~vbb:0.0 ~lgate_nm:p.P.l_nominal_nm in
  let d4 = P.abb_delay_scale p ~vbb:0.4 ~lgate_nm:p.P.l_nominal_nm in
  Alcotest.(check bool) "zero bias is unity" true (Float.abs (d0 -. 1.0) < 1e-9);
  Alcotest.(check bool) "forward bias speeds up" true (d4 < d0);
  let l0 = P.abb_leakage_scale p ~vbb:0.0 ~lgate_nm:p.P.l_nominal_nm in
  let l4 = P.abb_leakage_scale p ~vbb:0.4 ~lgate_nm:p.P.l_nominal_nm in
  Alcotest.(check bool) "zero bias leakage unity" true (Float.abs (l0 -. 1.0) < 1e-9);
  Alcotest.(check bool) "forward bias leaks much more" true (l4 > 2.0);
  (* abb_for_speedup inverts abb_delay_scale. *)
  let vbb = P.abb_for_speedup p ~speedup:1.1 in
  let achieved = 1.0 /. P.abb_delay_scale p ~vbb ~lgate_nm:p.P.l_nominal_nm in
  Alcotest.(check bool) "speedup solver inverts" true (Float.abs (achieved -. 1.1) < 1e-3);
  (* The paper's [13] claim: matching the AVS boost needs a Vth change
     several times larger, percentage-wise, than the Vdd change. *)
  let avs = P.speedup_high_vdd p in
  let vbb = P.abb_for_speedup p ~speedup:avs in
  let dvth = P.body_factor *. vbb in
  let vth = P.vth_eff p ~vdd:p.P.vdd_low ~lgate_nm:p.P.l_nominal_nm in
  let rel_vth = dvth /. vth in
  let rel_vdd = (p.P.vdd_high -. p.P.vdd_low) /. p.P.vdd_low in
  Alcotest.(check bool) "ABB needs no smaller relative knob than AVS" true
    (rel_vth >= rel_vdd *. 0.9)

(* --- power grid / IR drop --- *)

let test_power_grid_slab () =
  let module PG = Pvtol_core.Power_grid in
  let t, v = Lazy.force env in
  let domains =
    Island.domains v.Flow.slicing.Slicing.partition (Flow.placement t)
  in
  let r =
    PG.analyze ~placement:(Flow.placement t)
      ~member:(fun cid -> domains.(cid) <= 3)
      ~current_ma:(fun _ -> 0.002)
      ~vdd:1.2 ()
  in
  Alcotest.(check int) "slab fully reachable" 0 r.PG.unreachable_bins;
  Alcotest.(check bool) "has pads" true (r.PG.pad_bins > 0);
  Alcotest.(check bool) "positive drop" true (r.PG.max_drop_mv > 0.0);
  Alcotest.(check bool) "drop below the rail" true (r.PG.max_drop_mv < 1200.0);
  (* Linearity: doubling the current doubles the drop. *)
  let r2 =
    PG.analyze ~placement:(Flow.placement t)
      ~member:(fun cid -> domains.(cid) <= 3)
      ~current_ma:(fun _ -> 0.004)
      ~vdd:1.2 ()
  in
  Alcotest.(check bool) "resistive linearity" true
    (Float.abs (r2.PG.max_drop_mv -. (2.0 *. r.PG.max_drop_mv))
    < 0.05 *. r2.PG.max_drop_mv +. 1e-6)

let test_power_grid_interior_island_unreachable () =
  let module PG = Pvtol_core.Power_grid in
  let t, _ = Lazy.force env in
  let placement = Flow.placement t in
  let core = placement.Pvtol_place.Placement.floorplan.Pvtol_place.Floorplan.core in
  (* Select only cells in a small interior square that touches no core
     edge: the supply cannot reach it along its own domain. *)
  let member cid =
    let x = placement.Pvtol_place.Placement.xs.(cid) in
    let y = placement.Pvtol_place.Placement.ys.(cid) in
    let w = Geom.width core and h = Geom.height core in
    x > core.Geom.llx +. (0.4 *. w)
    && x < core.Geom.llx +. (0.6 *. w)
    && y > core.Geom.lly +. (0.4 *. h)
    && y < core.Geom.lly +. (0.6 *. h)
  in
  let r =
    PG.analyze ~placement ~member
      ~current_ma:(fun _ -> 0.002)
      ~vdd:1.2 ()
  in
  Alcotest.(check int) "no boundary pads" 0 r.PG.pad_bins;
  Alcotest.(check bool) "interior island unreachable" true
    (r.PG.unreachable_bins > 0);
  Alcotest.(check int) "nothing supplied" 0 r.PG.supplied_bins

(* --- post-silicon study --- *)

let test_postsilicon () =
  let t, v = Lazy.force env in
  let s = Postsilicon.run ~n_chips:12 ~seed:3 t v in
  Alcotest.(check int) "chip count" 12 (List.length s.Postsilicon.chips);
  Alcotest.(check bool) "compensation never hurts yield" true
    (s.Postsilicon.yield_compensated >= s.Postsilicon.yield_uncompensated);
  List.iter
    (fun (c : Postsilicon.chip) ->
      Alcotest.(check bool) "raised >= detected (closed loop)" true
        (c.Postsilicon.raised >= min c.Postsilicon.detected 3);
      Alcotest.(check bool) "fraction in range" true
        (c.Postsilicon.diagonal_frac >= 0.0 && c.Postsilicon.diagonal_frac <= 1.0);
      if c.Postsilicon.meets_uncompensated then
        Alcotest.(check int) "passing die raises nothing" 0 c.Postsilicon.raised)
    s.Postsilicon.chips;
  (* Determinism. *)
  let s2 = Postsilicon.run ~n_chips:12 ~seed:3 t v in
  Alcotest.(check bool) "deterministic" true
    (s.Postsilicon.yield_compensated = s2.Postsilicon.yield_compensated
    && s.Postsilicon.mean_raised = s2.Postsilicon.mean_raised)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "verilog roundtrip" `Quick test_verilog_roundtrip;
      Alcotest.test_case "verilog errors" `Quick test_verilog_errors;
      Alcotest.test_case "verilog sequential loop" `Quick test_verilog_sequential_loop;
      Alcotest.test_case "quadrant regions" `Quick test_quadrant_regions;
      Alcotest.test_case "quadrant generation" `Quick test_quadrant_generation;
      Alcotest.test_case "logic grouping" `Quick test_logic_grouping;
      Alcotest.test_case "fragmentation slab" `Quick test_fragmentation_slab_is_one;
      Alcotest.test_case "fragmentation scattered" `Quick test_fragmentation_scattered;
      Alcotest.test_case "retiming balanced" `Quick test_retiming_balanced_gains_nothing;
      Alcotest.test_case "retiming borrowing" `Quick test_retiming_borrowing;
      Alcotest.test_case "abb models" `Quick test_abb_models;
      Alcotest.test_case "power grid slab" `Quick test_power_grid_slab;
      Alcotest.test_case "power grid interior island" `Quick
        test_power_grid_interior_island_unreachable;
      Alcotest.test_case "post-silicon study" `Quick test_postsilicon;
    ] )
