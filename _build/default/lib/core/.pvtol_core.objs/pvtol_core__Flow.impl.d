lib/core/flow.ml: Array Hashtbl Island Level_shifter List Netlist Pvtol_netlist Pvtol_place Pvtol_power Pvtol_ssta Pvtol_stdcell Pvtol_timing Pvtol_variation Pvtol_vex Pvtol_vexsim Slicing Stage
