lib/vexsim/fir.mli: Int32 Sim
