lib/core/slicing.ml: Array Island List Netlist Printf Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_timing Pvtol_util Pvtol_variation Stage
