open Pvtol_netlist
module Cell_lib = Pvtol_stdcell.Cell
module Kind = Pvtol_stdcell.Kind

type t = {
  nl : Netlist.t;
  order : int array;             (* combinational cells, topological *)
  base_delay : float array;      (* per cell *)
  pin_wire : float array array;  (* per cell, per pin: wire delay *)
  clk_to_q : float;
  setup : float;
  capture_of : Stage.t option array;  (* per cell *)
  flops : int array;
}

let netlist t = t.nl

let wireload_model nl nid =
  let net = nl.Netlist.nets.(nid) in
  let fanout = Array.length net.Netlist.sinks in
  (* Representative 65nm wireload curve: a few um per sink. *)
  4.0 +. (3.0 *. float_of_int fanout)

let is_seq (c : Netlist.cell) = Kind.is_sequential c.Netlist.cell.Cell_lib.kind

let topo_order (nl : Netlist.t) =
  let n = Netlist.cell_count nl in
  let indeg = Array.make n 0 in
  let comb c = not (is_seq c) in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c then
        Array.iter
          (fun nid ->
            match nl.Netlist.nets.(nid).Netlist.driver with
            | Some d when comb nl.Netlist.cells.(d) ->
              indeg.(c.Netlist.id) <- indeg.(c.Netlist.id) + 1
            | Some _ | None -> ())
          c.Netlist.fanins)
    nl.Netlist.cells;
  let queue = Queue.create () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if comb c && indeg.(c.Netlist.id) = 0 then Queue.add c.Netlist.id queue)
    nl.Netlist.cells;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    order.(!k) <- cid;
    incr k;
    Array.iter
      (fun (sink, _) ->
        if not (is_seq nl.Netlist.cells.(sink)) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      nl.Netlist.nets.(nl.Netlist.cells.(cid).Netlist.fanout).Netlist.sinks
  done;
  Array.sub order 0 !k

let build nl ~wire_length ~capture =
  let lib = nl.Netlist.lib in
  let net_load = Array.make (Netlist.net_count nl) 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins =
        Array.fold_left
          (fun acc (cid, _) ->
            acc +. nl.Netlist.cells.(cid).Netlist.cell.Cell_lib.input_cap)
          0.0 net.Netlist.sinks
      in
      let wire =
        if net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 then 0.0
        else lib.Cell_lib.wire_cap_per_um *. wire_length net.Netlist.net_id
      in
      net_load.(net.Netlist.net_id) <- pins +. wire)
    nl.Netlist.nets;
  let base_delay =
    Array.map
      (fun (c : Netlist.cell) ->
        let cell = c.Netlist.cell in
        let load = net_load.(c.Netlist.fanout) in
        if is_seq c then
          (* clk-to-q, with the same load dependence as a gate. *)
          lib.Cell_lib.clk_to_q +. (cell.Cell_lib.drive_res *. load)
        else cell.Cell_lib.d0 +. (cell.Cell_lib.drive_res *. load))
      nl.Netlist.cells
  in
  let pin_wire =
    Array.map
      (fun (c : Netlist.cell) ->
        Array.map
          (fun nid ->
            (* Lumped per-sink wire delay: half the net length. *)
            lib.Cell_lib.wire_delay_per_um *. (wire_length nid /. 2.0))
          c.Netlist.fanins)
      nl.Netlist.cells
  in
  let capture_of = Array.map (fun c -> capture c) nl.Netlist.cells in
  let flops =
    Array.to_list nl.Netlist.cells
    |> List.filter is_seq
    |> List.map (fun (c : Netlist.cell) -> c.Netlist.id)
    |> Array.of_list
  in
  {
    nl;
    order = topo_order nl;
    base_delay;
    pin_wire;
    clk_to_q = lib.Cell_lib.clk_to_q;
    setup = lib.Cell_lib.setup;
    capture_of;
    flops;
  }

let of_placement p ~capture =
  build p.Pvtol_place.Placement.netlist
    ~wire_length:(fun nid -> Pvtol_place.Placement.wire_length p nid)
    ~capture

let comb_order t = Array.copy t.order
let flop_ids t = Array.copy t.flops
let pin_wire_delay t cid pin = t.pin_wire.(cid).(pin)
let capture_stage_of t cid = t.capture_of.(cid)

let nominal_delays t = Array.copy t.base_delay

let scaled_delays t ~scale =
  Array.mapi (fun i d -> d *. scale i) t.base_delay

type result = {
  arrival : float array;
  endpoint_delay : float array;
  worst : float;
  worst_endpoint : Netlist.cell_id;
  stage_worst : (Stage.t * float * Netlist.cell_id) list;
}

let analyze ?skew t ~delays =
  let nl = t.nl in
  let skew = match skew with Some f -> f | None -> fun _ -> 0.0 in
  let arrival = Array.make (Netlist.net_count nl) 0.0 in
  (* Launch points: flop outputs, offset by the launch edge's arrival. *)
  Array.iter
    (fun cid ->
      arrival.(nl.Netlist.cells.(cid).Netlist.fanout) <- delays.(cid) +. skew cid)
    t.flops;
  (* Primary inputs arrive at t = 0 (already initialised). *)
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let acc = ref 0.0 in
      Array.iteri
        (fun pin nid ->
          let a = arrival.(nid) +. t.pin_wire.(cid).(pin) in
          if a > !acc then acc := a)
        c.Netlist.fanins;
      arrival.(c.Netlist.fanout) <- !acc +. delays.(cid))
    t.order;
  let endpoint_delay = Array.make (Netlist.cell_count nl) 0.0 in
  let worst = ref neg_infinity and worst_ep = ref (-1) in
  let stage_tbl = Hashtbl.create 8 in
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      (* A late capture edge relaxes the endpoint by its own skew. *)
      let a = arrival.(d_pin) +. t.pin_wire.(cid).(0) +. t.setup -. skew cid in
      endpoint_delay.(cid) <- a;
      if a > !worst then begin
        worst := a;
        worst_ep := cid
      end;
      match t.capture_of.(cid) with
      | Some stage ->
        let cur = Hashtbl.find_opt stage_tbl stage in
        (match cur with
        | Some (d, _) when d >= a -> ()
        | _ -> Hashtbl.replace stage_tbl stage (a, cid))
      | None -> ())
    t.flops;
  let stage_worst =
    List.filter_map
      (fun s ->
        match Hashtbl.find_opt stage_tbl s with
        | Some (d, cid) -> Some (s, d, cid)
        | None -> None)
      Stage.all
  in
  {
    arrival;
    endpoint_delay;
    worst = (if !worst_ep = -1 then 0.0 else !worst);
    worst_endpoint = !worst_ep;
    stage_worst;
  }

let required_with t ~delays ~endpoint_required =
  let nl = t.nl in
  let req = Array.make (Netlist.net_count nl) infinity in
  (* Endpoints: data must arrive by the endpoint's budget - setup (minus
     the D-pin wire delay, charged on the net). *)
  Array.iter
    (fun cid ->
      let c = nl.Netlist.cells.(cid) in
      let d_pin = c.Netlist.fanins.(0) in
      let budget = endpoint_required t.capture_of.(cid) in
      let r = budget -. t.setup -. t.pin_wire.(cid).(0) in
      if r < req.(d_pin) then req.(d_pin) <- r)
    t.flops;
  (* Reverse topological order. *)
  for k = Array.length t.order - 1 downto 0 do
    let cid = t.order.(k) in
    let c = nl.Netlist.cells.(cid) in
    let r_out = req.(c.Netlist.fanout) in
    if Float.is_finite r_out then begin
      let r_in = r_out -. delays.(cid) in
      Array.iteri
        (fun pin nid ->
          let r = r_in -. t.pin_wire.(cid).(pin) in
          if r < req.(nid) then req.(nid) <- r)
        c.Netlist.fanins
    end
  done;
  req

let required t ~delays ~clock =
  required_with t ~delays ~endpoint_required:(fun _ -> clock)

let stage_delay result stage =
  List.find_map
    (fun (s, d, _) -> if Stage.equal s stage then Some d else None)
    result.stage_worst

let endpoints_of_stage t stage =
  Array.to_list t.flops
  |> List.filter (fun cid ->
         match t.capture_of.(cid) with
         | Some s -> Stage.equal s stage
         | None -> false)
