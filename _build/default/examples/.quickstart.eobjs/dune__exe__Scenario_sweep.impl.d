examples/scenario_sweep.ml: Float Format List Pvtol_core Pvtol_netlist Pvtol_ssta Pvtol_variation String
