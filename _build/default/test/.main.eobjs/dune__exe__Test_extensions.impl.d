test/test_extensions.ml: Alcotest Array Float Hashtbl Lazy List Netlist Pvtol_core Pvtol_netlist Pvtol_place Pvtol_stdcell Pvtol_util Pvtol_vex Stage String
