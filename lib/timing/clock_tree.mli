(** Clock-tree synthesis over the placed flops.

    A recursive geometric-bisection tree (means-and-medians): the flop
    set splits at the median of its longer bounding-box axis until
    clusters are small, a buffer drives each internal node, and every
    flop's insertion delay accumulates buffer and wire delays down its
    branch.  The resulting skew map feeds the skew-aware STA — both to
    check that the ideal-clock assumption of the main flow is harmless
    (CTS skew is a small fraction of the cycle) and to support the
    clock-skew experiments around the paper's §1 retiming discussion. *)

open Pvtol_netlist

type t = {
  insertion_delay : (Netlist.cell_id * float) list;  (** per flop, ns *)
  offsets : float array;
      (** dense per-cell clock-arrival offsets (insertion delay minus
          the earliest leaf's), indexed by cell id; 0 for cells the
          tree does not serve.  Built once at synthesis so per-die
          settle loops get O(1) lookups. *)
  skew : float;            (** max - min insertion delay, ns *)
  n_buffers : int;
  wirelength : float;      (** total tree wirelength, um *)
  levels : int;
}

val synthesize :
  ?max_leaves:int ->
  Pvtol_place.Placement.t ->
  flops:Netlist.cell_id array ->
  t
(** Default cluster size 16 flops. *)

val skew_of : t -> (Netlist.cell_id -> float)
(** Per-flop arrival offset of the clock edge relative to the earliest
    flop (>= 0), suitable for {!Sta.analyze}'s [skew].  Backed by the
    precomputed {!t.offsets} array: each lookup is a bounds check and
    one array read, safe for hot per-die loops. *)
