(** Deterministic, splittable pseudo-random number generator.

    Implementation of SplitMix64 (Steele, Lea, Flood 2014).  Every
    stochastic component of the library draws from an explicit [t] so
    that experiments are reproducible from a single seed and independent
    subsystems can be given independent streams via {!split}. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy g] duplicates the current state of [g], including any cached
    Box-Muller half.  Combined with {!fill_gaussians} this gives a
    {e draw-ahead replay}: a consumer about to hand [g] to a kernel can
    [fill_gaussians (copy g)] to observe the exact gaussians the kernel
    is about to consume without disturbing [g] — the importance-sampling
    layer recovers each die's raw draw this way to price its likelihood
    ratio. *)

val jump : t -> int -> unit
(** [jump g n] advances [g] past the next [n] raw draws in O(1) —
    SplitMix64's state moves by a fixed increment per draw — and clears
    any cached Box-Muller half.  After [jump g n], [g] produces exactly
    the stream a fresh copy would after [n] calls to {!bits64}.  Used
    by the parallel Monte-Carlo engine to hand each sample chunk the
    exact continuation of the serial stream. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] draws uniformly from [0, n-1].  [n] must be positive. *)

val float : t -> float -> float
(** [float g x] draws uniformly from [0, x). *)

val uniform : t -> float
(** Uniform draw in [0,1). *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller, cached pair). *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float
(** Normal draw with the given mean and standard deviation. *)

val fill_gaussians : t -> float array -> pos:int -> len:int -> unit
(** [fill_gaussians g out ~pos ~len] writes [len] standard normal draws
    into [out.(pos .. pos+len-1)], {e bit-identical} to [len] successive
    {!gaussian} calls (including the cached Box-Muller half at both
    ends), but through one tight loop that keeps the SplitMix64 state in
    a local and allocates nothing per pair — the bulk-draw entry point
    of the batched Monte-Carlo engine.  Because the bit-identity holds
    for any [len], a replay via {!copy} + [fill_gaussians] sees exactly
    the values any downstream mix of [gaussian] / [fill_gaussians]
    calls will produce from the original generator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
