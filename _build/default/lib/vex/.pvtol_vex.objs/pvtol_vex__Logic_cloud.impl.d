lib/vex/logic_cloud.ml: Array Gen Pvtol_stdcell Pvtol_util
