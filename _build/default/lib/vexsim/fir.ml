module Srng = Pvtol_util.Srng

type result = {
  stats : Sim.stats;
  outputs : int array;
  reference : int array;
  trace : Int32.t array list;
}

let coeff_base = 0
let signal_base = 256
let out_base = 512

(* r8 = 1 (const), r9 = scratch const, r21 = signal base, r22 = out
   base, r26 = sample index n, r4 = accumulator, r2 = coeff ptr,
   r7 = signal ptr, r5 = tap counter, r24 = remaining samples. *)
let program ~taps ~samples =
  assert (taps > 0 && taps <= 127 && samples > 0 && samples <= 127);
  String.concat "\n"
    [
      Printf.sprintf
        "  movi r8, 1 ; movi r9, 8 ; movi r28, %d ; movi r29, %d" taps samples;
      "  shl r21, r8, r9 ; movi r9, 9 ; movi r26, 0 ; nop";
      "  shl r22, r8, r9 ; movi r9, 1 ; nop ; nop";
      Printf.sprintf
        "outer: movi r4, 0 ; movi r2, %d ; add r7, r21, r26 ; movi r5, %d"
        coeff_base taps;
      "inner: ld r10, 0(r2) ; ld r11, 0(r7) ; add r2, r2, r9 ; add r7, r7, r9";
      "  mul r12, r10, r11 ; sub r5, r5, r9 ; nop ; nop";
      "  add r4, r4, r12 ; add r23, r22, r26 ; nop ; nop";
      "  brnz r5, inner";
      "  st r4, 0(r23) ; sub r24, r29, r26 ; add r26, r26, r9 ; nop";
      "  sub r24, r24, r9 ; nop ; nop ; nop";
      "  brnz r24, outer";
    ]

let mask32 v = v land 0xFFFFFFFF

let run ?(taps = 16) ?(samples = 64) ?(seed = 3) () =
  let src = program ~taps ~samples in
  let prog = Asm.assemble src in
  let t = Sim.create prog in
  let rng = Srng.create seed in
  let coeffs = Array.init taps (fun _ -> Srng.int rng 16 - 8) in
  let signal = Array.init (samples + taps) (fun _ -> Srng.int rng 16 - 8) in
  Array.iteri (fun i c -> Sim.store t (coeff_base + i) c) coeffs;
  Array.iteri (fun i x -> Sim.store t (signal_base + i) x) signal;
  let stats = Sim.run t in
  let outputs = Array.init samples (fun n -> Sim.load t (out_base + n)) in
  let reference =
    Array.init samples (fun n ->
        let acc = ref 0 in
        for k = 0 to taps - 1 do
          acc := !acc + (coeffs.(k) * signal.(n + k))
        done;
        mask32 !acc)
  in
  { stats; outputs; reference; trace = Sim.trace t }

let check r = r.outputs = r.reference
