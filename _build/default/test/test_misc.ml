(* Edge-case grab bag across modules: file I/O paths, rendering
   helpers, API corners not covered by the focused suites. *)

open Pvtol_netlist
module Table = Pvtol_util.Table
module Stats = Pvtol_util.Stats
module Cell = Pvtol_stdcell.Cell
module Sta = Pvtol_timing.Sta

let with_temp f =
  let path = Filename.temp_file "pvtol_test" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let small =
  lazy
    (let v = Pvtol_vex.Vex_core.build Pvtol_vex.Vex_core.small_config in
     let nl = v.Pvtol_vex.Vex_core.netlist in
     let fp = Pvtol_place.Floorplan.create ~cell_area:(Netlist.area nl) () in
     (v, nl, Pvtol_place.Placer.place nl fp))

(* --- file round trips through actual files --- *)

let test_liberty_file_io () =
  with_temp (fun path ->
      Pvtol_stdcell.Liberty.write_file path Cell.default_library;
      let lib = Pvtol_stdcell.Liberty.read_file path in
      Alcotest.(check int) "cells survive the filesystem"
        (List.length Cell.default_library.Cell.cells)
        (List.length lib.Cell.cells))

let test_def_file_io () =
  let _, nl, p = Lazy.force small in
  with_temp (fun path ->
      Pvtol_place.Def.write_file path p;
      let p2 = Pvtol_place.Def.read_file nl path in
      Alcotest.(check int) "cells placed"
        (Array.length p.Pvtol_place.Placement.xs)
        (Array.length p2.Pvtol_place.Placement.xs))

let test_sdf_file_io () =
  let v, nl, p = Lazy.force small in
  let sta = Sta.of_placement p ~capture:v.Pvtol_vex.Vex_core.capture_stage in
  let delays = Sta.nominal_delays sta in
  with_temp (fun path ->
      Pvtol_timing.Sdf.write_file path nl ~delays;
      let back = Pvtol_timing.Sdf.read_file nl path in
      Alcotest.(check bool) "delays survive the filesystem" true
        (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-5) delays back))

let test_verilog_file_io () =
  let _, nl, _ = Lazy.force small in
  with_temp (fun path ->
      Pvtol_netlist.Verilog.write_file path nl;
      let nl2 = Pvtol_netlist.Verilog.read_file Cell.default_library path in
      Alcotest.(check int) "netlist survives the filesystem"
        (Netlist.cell_count nl) (Netlist.cell_count nl2))

let test_spef_file_io () =
  let _, nl, p = Lazy.force small in
  with_temp (fun path ->
      Pvtol_timing.Spef.write_file path nl (Pvtol_timing.Spef.extract p);
      let back = Pvtol_timing.Spef.read_file nl path in
      Alcotest.(check int) "parasitics per net" (Netlist.net_count nl)
        (Array.length back))

(* --- rendering helpers --- *)

let test_bar_chart () =
  let chart = Table.bar_chart ~width:10 [ ("aa", 2.0); ("b", 1.0); ("zero", 0.0) ] in
  let lines = String.split_on_char '\n' chart |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per entry" 3 (List.length lines);
  (* The maximum gets the full width. *)
  Alcotest.(check bool) "peak bar full" true
    (String.length (List.nth lines 0) > 10
    &&
    let count c s = String.fold_left (fun a ch -> if ch = c then a + 1 else a) 0 s in
    count '#' (List.nth lines 0) = 10
    && count '#' (List.nth lines 1) = 5
    && count '#' (List.nth lines 2) = 0)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_netlist_pp_summary () =
  let _, nl, _ = Lazy.force small in
  let text = Format.asprintf "%a" Netlist.pp_summary nl in
  Alcotest.(check bool) "mentions register file" true
    (contains ~needle:"Register File" text)

(* --- API corners --- *)

let test_running_stats_empty_and_one () =
  let acc = Stats.Running.create () in
  Alcotest.(check int) "empty count" 0 (Stats.Running.count acc);
  Alcotest.(check bool) "variance of 0 samples" true (Stats.Running.variance acc = 0.0);
  Stats.Running.add acc 5.0;
  Alcotest.(check bool) "variance of 1 sample" true (Stats.Running.variance acc = 0.0);
  Alcotest.(check bool) "min=max=x" true
    (Stats.Running.min acc = 5.0 && Stats.Running.max acc = 5.0)

let test_find_by_name () =
  let lib = Cell.default_library in
  (match Cell.find_by_name lib "NAND2_X1" with
  | Some c -> Alcotest.(check bool) "kind" true (c.Cell.kind = Pvtol_stdcell.Kind.Nand2)
  | None -> Alcotest.fail "NAND2_X1 should exist");
  Alcotest.(check bool) "missing cell" true (Cell.find_by_name lib "FOO_X9" = None);
  try
    ignore (Cell.find lib Pvtol_stdcell.Kind.Nand2 Cell.X1 |> fun c -> c);
    ()
  with Not_found -> Alcotest.fail "find should succeed"

let test_scaled_delays () =
  let v, _, p = Lazy.force small in
  let sta = Sta.of_placement p ~capture:v.Pvtol_vex.Vex_core.capture_stage in
  let base = Sta.nominal_delays sta in
  let scaled = Sta.scaled_delays sta ~scale:(fun i -> if i mod 2 = 0 then 2.0 else 1.0) in
  Array.iteri
    (fun i b ->
      let expected = if i mod 2 = 0 then 2.0 *. b else b in
      Alcotest.(check bool) "per-cell scale" true
        (Float.abs (scaled.(i) -. expected) < 1e-12))
    base

let test_incremental_no_insertions () =
  let _, nl, p = Lazy.force small in
  let p2, stats = Pvtol_place.Incremental.insert p nl ~desired:(fun _ -> assert false) in
  Alcotest.(check int) "nothing inserted" 0 stats.Pvtol_place.Incremental.inserted;
  Alcotest.(check bool) "positions identical" true
    (p2.Pvtol_place.Placement.xs = p.Pvtol_place.Placement.xs)

let test_stage_share_nonempty () =
  let v, _, p = Lazy.force small in
  let sta = Sta.of_placement p ~capture:v.Pvtol_vex.Vex_core.capture_stage in
  let delays = Sta.nominal_delays sta in
  let r = Sta.analyze sta ~delays in
  match Pvtol_timing.Paths.critical sta ~delays r with
  | Some path ->
    let shares = Pvtol_timing.Paths.stage_share sta path in
    let total = List.fold_left (fun a (_, n) -> a + n) 0 shares in
    Alcotest.(check int) "shares cover all hops" (List.length path.Pvtol_timing.Paths.hops) total
  | None -> Alcotest.fail "critical path expected"

let suite =
  ( "misc",
    [
      Alcotest.test_case "liberty file io" `Quick test_liberty_file_io;
      Alcotest.test_case "def file io" `Quick test_def_file_io;
      Alcotest.test_case "sdf file io" `Quick test_sdf_file_io;
      Alcotest.test_case "verilog file io" `Quick test_verilog_file_io;
      Alcotest.test_case "spef file io" `Quick test_spef_file_io;
      Alcotest.test_case "bar chart" `Quick test_bar_chart;
      Alcotest.test_case "running stats corners" `Quick test_running_stats_empty_and_one;
      Alcotest.test_case "find by name" `Quick test_find_by_name;
      Alcotest.test_case "scaled delays" `Quick test_scaled_delays;
      Alcotest.test_case "incremental no-op" `Quick test_incremental_no_insertions;
      Alcotest.test_case "stage share totals" `Quick test_stage_share_nonempty;
    ] )
