lib/variation/sampler.mli: Field Position Pvtol_place Pvtol_stdcell Pvtol_util
