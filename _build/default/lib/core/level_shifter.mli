(** Level-shifter insertion (paper §4.6).

    A net needs a level shifter when, in some violation scenario, its
    driver sits in a 1.0V domain while a sink sits in a 1.2V domain:
    with nested islands raised in index order, that is exactly when the
    sink's domain index is smaller than the driver's.  Only low-to-high
    crossings are shifted — "we retain only the nets connecting low- to
    high-Vdd domains as candidate for level-shifter insertion, in order
    to avoid the static power overhead for non-fully switched-off pMOS
    transistors in the high-Vdd domain".

    One shifter is shared by all sinks of a net that fall in the same
    domain; the shifter itself is placed (incrementally) at the
    centroid of the sinks it serves and belongs to their domain, where
    its high-side supply rail is available. *)

open Pvtol_netlist

type t = {
  netlist : Netlist.t;           (** original cells (ids preserved) + shifters *)
  placement : Pvtol_place.Placement.t;   (** incrementally legalized *)
  partition : Island.partition;
  domains : int array;           (** per cell of the new netlist *)
  first_ls : Netlist.cell_id;    (** shifter ids are [first_ls ..] *)
  count : int;
  per_domain : (int * int) list; (** (domain, shifters assigned to it) *)
  ls_area : float;               (** um^2 *)
  ls_area_frac : float;          (** of the original design area *)
  displacement : Pvtol_place.Incremental.stats;
}

val insert :
  Island.partition -> Pvtol_place.Placement.t -> Netlist.t -> t
(** Analyse crossings, rebuild the netlist with shifters, and legalize
    the placement incrementally.  The input netlist/placement pair must
    be consistent.  The result's netlist passes [Netlist.check]. *)

val vdd_assignment :
  t -> raised:int -> Netlist.cell_id -> float
(** Supply of any cell (original or shifter) of the shifted design when
    islands [1..raised] are high. *)

val count_crossings : Island.partition -> Pvtol_place.Placement.t -> Netlist.t -> int
(** Number of shifters a partition would require, without building the
    modified design (used for quick design-space exploration). *)
