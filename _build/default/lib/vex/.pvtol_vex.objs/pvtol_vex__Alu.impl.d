lib/vex/alu.ml: Adder Array Comparator Gen Shifter
