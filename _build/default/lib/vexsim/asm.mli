(** Two-pass assembler for the VEX-like ISA.

    Syntax — one bundle per line, slots separated by [;], at most
    {!Isa.slots} per line (missing slots are filled with [nop]):

    {v
    ; FIR inner loop
    loop:  ld r10, 0(r2) ; ld r11, 0(r3) ; add r2, r2, r8 ; add r3, r3, r8
           mul r12, r10, r11 ; nop ; nop ; nop
           add r4, r4, r12 ; sub r1, r1, r9 ; nop ; nop
           brnz r1, loop
    v}

    Registers are [r0]-[r63] ([r0] is a normal register, not tied to
    zero).  Immediates are decimal, optionally negative.  [ld]/[st]
    use displacement syntax [imm(rN)].  Branches take a label whose
    bundle index becomes the 8-bit immediate.  Comments start with
    [;;] or [#] and run to end of line. *)

exception Error of string
(** Raised with line number and message on malformed input. *)

val assemble : string -> Isa.bundle array
(** Assemble a program; deterministic, no I/O. *)

val disassemble : Isa.bundle array -> string
(** Textual form that reassembles to the same program. *)
