(** Wafer-scale yield engine: 2D die-population sweeps.

    The diagonal {!Postsilicon.run} study samples dies on the A-D line
    only, but the systematic Lgate map of §4.2 is a full 2D polynomial
    over the exposure field — population yield is a wafer-level
    quantity.  This module sweeps a configurable [nx x ny] grid of die
    positions over the chip (optionally replicated across several
    exposure fields of a wafer), runs the {!Postsilicon.simulate_die}
    detect-and-compensate kernel for a batch of dies at every grid
    point, and reduces each cell with streaming statistics
    ({!Pvtol_util.Stream_stats}: Welford moments, P-square quantiles,
    scenario counters) — a 10k-die sweep retains no per-die data.

    Determinism: each grid cell's RNG stream is derived from
    [(seed, field, ix, iy)] only, cells are reduced in row-major order,
    and the pool stores chunk results by index — so a sweep is
    bit-identical for every domain count and traversal schedule.  The
    per-die physics is the exact code path of {!Postsilicon.run}. *)

type config = {
  nx : int;               (** grid columns over the chip's x extent *)
  ny : int;               (** grid rows over the chip's y extent *)
  dies_per_cell : int;    (** dies simulated per grid cell per field *)
  fields : int;           (** exposure-field replicas (same systematic
                              map, independent random draws) *)
  seed : int;
  direction : Island.direction;  (** slicing variant being deployed *)
}

val default_config : config
(** 8x8 grid, 12 dies per cell, one field, seed 7, vertical slicing. *)

type cell = {
  ix : int;
  iy : int;
  x_frac : float;         (** die origin, fraction of the chip edge *)
  y_frac : float;
  dies : int;
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;   (** dies per detected scenario, 0..n *)
  raised_counts : int array;     (** dies per final raised level *)
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Pvtol_util.Stats.summary;  (** worst low-Vdd stage delay, ns *)
  delay_p50_ns : float;   (** P-square median estimate *)
  delay_p90_ns : float;   (** P-square 90th-percentile estimate *)
}

type sweep = {
  config : config;
  n_islands : int;
  clock_ns : float;
  cells : cell array;     (** row-major: [cells.(iy * nx + ix)] *)
  dies : int;             (** total dies simulated *)
  yield_uncompensated : float;
  yield_compensated : float;
  yield_chip_wide : float;
  mean_raised : float;
  scenario_counts : int array;
  mean_power_islands_mw : float;
  mean_power_chip_wide_mw : float;
  delay : Pvtol_util.Stats.summary;
}

val grid_frac : int -> int -> float
(** [grid_frac n i]: chip-edge fraction of grid index [i] of [n] — the
    endpoints-inclusive mapping [i / (n-1)] (0.5 for a 1-wide grid), so
    cell (0,0) sits exactly at the paper's corner position A. *)

val cell_position : config -> ix:int -> iy:int -> Pvtol_variation.Position.t
(** Die position of a grid cell ({!Pvtol_variation.Position.at_xy}). *)

val cell_seed : config -> field:int -> ix:int -> iy:int -> int
(** The RNG seed of one cell's die stream.  Exposed so tests can
    recompute any cell independently of the sweep. *)

val run :
  ?pool:Pvtol_util.Pool.t ->
  ?on_cell:(completed:int -> total:int -> unit) ->
  Flow.t -> Flow.variant -> config -> sweep
(** Run the sweep on [pool] (default: the shared pool), one pool chunk
    per grid cell.  Results are bit-identical for every pool size.
    [on_cell] fires after each grid cell completes, from whichever
    domain finished it, with a monotone completed count — exceptions it
    raises are swallowed.  [Invalid_argument] if the grid is empty or
    the variant's direction does not match the config. *)

val sweep :
  ?on_cell:(completed:int -> total:int -> unit) -> Flow.t -> config -> sweep
(** Like {!run}, but memoized on the flow's stage graph as the keyed
    stage [wafer[<nx>x<ny>-d<dies>-f<fields>-s<seed>-<dir>]] — traced
    and computed at most once per (flow, config), like every other
    stage.  [on_cell] only streams on the force that actually computes;
    a memoized hit returns at once with no progress to report. *)

(** {2 Rendering} *)

type metric =
  | Yield_uncompensated
  | Yield_compensated
  | Yield_chip_wide
  | Mean_raised
  | Delay_p90

val render_map : sweep -> metric -> string
(** ASCII heat map of a per-cell metric over the grid (lower-left =
    the slow corner A). *)

val pp : Format.formatter -> sweep -> unit
(** Wafer-level summary: yields, mean raised, power, delay spread and
    the scenario histogram. *)

val to_json : sweep -> string
(** The whole sweep as a JSON document (wafer aggregates plus one
    object per cell). *)
