examples/quickstart.ml: Array Format List Pvtol_core Pvtol_netlist Pvtol_power Pvtol_ssta Pvtol_variation
