lib/core/power_grid.ml: Array Float List Pvtol_place Pvtol_util Stack
