open Gen
module Kind = Pvtol_stdcell.Kind
module Srng = Pvtol_util.Srng

type config = { n_gates : int; depth : int; n_outputs : int }

(* Gate mix representative of synthesized control logic. *)
let kinds =
  [| Kind.Nand2; Kind.Nor2; Kind.Nand3; Kind.Nor3; Kind.Aoi21; Kind.Oai21;
     Kind.And2; Kind.Or2; Kind.Xor2; Kind.Inv; Kind.Mux2 |]

let build t cfg ins =
  assert (Array.length ins > 1 && cfg.n_gates > 0 && cfg.depth > 0);
  let rng = rng t in
  (* Levelized construction: gates at level l draw inputs from levels
     [l - 2, l - 1] (and primary inputs for level 0/1), which yields the
     target depth with realistic reconvergence. *)
  let per_level = max 1 (cfg.n_gates / cfg.depth) in
  let levels = Array.make (cfg.depth + 1) [||] in
  levels.(0) <- ins;
  for l = 1 to cfg.depth do
    let pool =
      if l = 1 then levels.(0)
      else Array.append levels.(l - 1) levels.(l - 2)
    in
    let n_here = if l = cfg.depth then max 1 cfg.n_outputs else per_level in
    levels.(l) <-
      Array.init n_here (fun _ ->
          let kind = kinds.(Srng.int rng (Array.length kinds)) in
          let arity = Kind.arity kind in
          (* Bias one input to the previous level to actually reach the
             target depth. *)
          let pick_prev () =
            let prev = levels.(l - 1) in
            if Array.length prev = 0 then pool.(Srng.int rng (Array.length pool))
            else prev.(Srng.int rng (Array.length prev))
          in
          let fanins =
            Array.init arity (fun i ->
                if i = 0 && l > 1 then pick_prev ()
                else pool.(Srng.int rng (Array.length pool)))
          in
          gate t kind fanins)
  done;
  Array.init cfg.n_outputs (fun i ->
      let last = levels.(cfg.depth) in
      last.(i mod Array.length last))
