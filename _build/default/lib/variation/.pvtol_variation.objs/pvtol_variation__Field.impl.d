lib/variation/field.ml: Buffer Float Printf String
