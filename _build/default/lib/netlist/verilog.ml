module Cell_lib = Pvtol_stdcell.Cell

exception Parse_error of string

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Canonical net names: ports keep their sanitized names, internal nets
   are n<id> (sanitized user names are not guaranteed unique). *)
let net_name (nl : Netlist.t) =
  let is_input = Hashtbl.create 64 in
  Array.iter (fun n -> Hashtbl.replace is_input n ()) nl.Netlist.inputs;
  fun nid ->
    let net = nl.Netlist.nets.(nid) in
    if Hashtbl.mem is_input nid || net.Netlist.is_output then
      sanitize net.Netlist.net_name
    else Printf.sprintf "n%d" nid

let to_string (nl : Netlist.t) =
  let name_of = net_name nl in
  let b = Buffer.create (Netlist.cell_count nl * 64) in
  let ports =
    Array.to_list (Array.map name_of nl.Netlist.inputs)
    @ Array.to_list (Array.map name_of nl.Netlist.outputs)
  in
  Buffer.add_string b
    (Printf.sprintf "module %s (%s);\n" (sanitize nl.Netlist.design_name)
       (String.concat ", " ports));
  Array.iter
    (fun nid -> Buffer.add_string b (Printf.sprintf "  input %s;\n" (name_of nid)))
    nl.Netlist.inputs;
  Array.iter
    (fun nid -> Buffer.add_string b (Printf.sprintf "  output %s;\n" (name_of nid)))
    nl.Netlist.outputs;
  Array.iter
    (fun (net : Netlist.net) ->
      let nid = net.Netlist.net_id in
      let dead = net.Netlist.driver = None && Array.length net.Netlist.sinks = 0 in
      let is_port =
        net.Netlist.is_output
        || Array.exists (fun i -> i = nid) nl.Netlist.inputs
      in
      if (not dead) && not is_port then
        Buffer.add_string b (Printf.sprintf "  wire %s;\n" (name_of nid)))
    nl.Netlist.nets;
  Array.iter
    (fun (c : Netlist.cell) ->
      let pins =
        Printf.sprintf ".o(%s)" (name_of c.Netlist.fanout)
        ::
        Array.to_list
          (Array.mapi
             (fun pin nid -> Printf.sprintf ".i%d(%s)" pin (name_of nid))
             c.Netlist.fanins)
      in
      Buffer.add_string b
        (Printf.sprintf "  %s %s (%s); // s=%d u=%s\n"
           (Cell_lib.cell_name c.Netlist.cell)
           (sanitize c.Netlist.name)
           (String.concat ", " pins)
           (Stage.index c.Netlist.stage)
           (sanitize c.Netlist.unit_name)))
    nl.Netlist.cells;
  Buffer.add_string b "endmodule\n";
  Buffer.contents b

let write_file path nl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))

(* --- parsing --- *)

let stage_of_index i =
  List.find_opt (fun s -> Stage.index s = i) Stage.all

let of_string lib src =
  let b = Netlist.Builder.create lib in
  let nets : (string, Netlist.net_id) Hashtbl.t = Hashtbl.create 1024 in
  let placeholders : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let outputs = ref [] in
  let design = ref "design" in
  let fail lnum msg = raise (Parse_error (Printf.sprintf "line %d: %s" lnum msg)) in
  let lookup name =
    match Hashtbl.find_opt nets name with
    | Some nid -> nid
    | None ->
      let nid = Netlist.Builder.placeholder b name in
      Hashtbl.replace nets name nid;
      Hashtbl.replace placeholders name ();
      nid
  in
  let resolve name real =
    (match Hashtbl.find_opt nets name with
    | Some stub when Hashtbl.mem placeholders name ->
      Netlist.Builder.merge b ~placeholder:stub real;
      Hashtbl.remove placeholders name
    | Some _ -> raise (Parse_error (Printf.sprintf "net %s driven twice" name))
    | None -> ());
    Hashtbl.replace nets name real
  in
  let strip_comment line =
    match String.index_opt line '/' with
    | Some i when i + 1 < String.length line && line.[i + 1] = '/' ->
      (String.sub line 0 i, String.sub line (i + 2) (String.length line - i - 2))
    | _ -> (line, "")
  in
  let parse_pins lnum s =
    (* ".o(x), .i0(y), ..." *)
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
    |> List.map (fun p ->
           if String.length p < 5 || p.[0] <> '.' then fail lnum ("bad pin " ^ p);
           match (String.index_opt p '(', String.index_opt p ')') with
           | Some l, Some r when r > l + 1 ->
             (String.sub p 1 (l - 1), String.sub p (l + 1) (r - l - 1))
           | _ -> fail lnum ("bad pin " ^ p))
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i raw ->
      let lnum = i + 1 in
      let code, comment = strip_comment raw in
      let code = String.trim code in
      if code = "" || code = "endmodule" then ()
      else if String.length code > 7 && String.sub code 0 7 = "module " then begin
        match String.index_opt code '(' with
        | Some j -> design := String.trim (String.sub code 7 (j - 7))
        | None -> fail lnum "malformed module header"
      end
      else begin
        let words =
          String.split_on_char ' ' code |> List.filter (fun w -> w <> "")
        in
        match words with
        | "input" :: name :: _ ->
          let name = String.trim (String.concat "" [ name ]) in
          let name = String.sub name 0 (String.length name - 1) (* drop ';' *) in
          if Hashtbl.mem nets name then fail lnum ("duplicate input " ^ name);
          Hashtbl.replace nets name (Netlist.Builder.input b name)
        | "output" :: name :: _ ->
          let name = String.sub name 0 (String.length name - 1) in
          outputs := name :: !outputs
        | "wire" :: _ -> ()
        | celltype :: instname :: _ -> begin
          match Cell_lib.find_by_name lib celltype with
          | None -> fail lnum ("unknown cell type " ^ celltype)
          | Some cell ->
            let lpar =
              match String.index_opt code '(' with
              | Some j -> j
              | None -> fail lnum "missing pin list"
            in
            let rpar =
              match String.rindex_opt code ')' with
              | Some j -> j
              | None -> fail lnum "missing ')'"
            in
            let pins = parse_pins lnum (String.sub code (lpar + 1) (rpar - lpar - 1)) in
            let out =
              match List.assoc_opt "o" pins with
              | Some o -> o
              | None -> fail lnum "missing .o pin"
            in
            let arity = Pvtol_stdcell.Kind.arity cell.Cell_lib.kind in
            let fanins =
              Array.init arity (fun k ->
                  match List.assoc_opt (Printf.sprintf "i%d" k) pins with
                  | Some n -> lookup n
                  | None -> fail lnum (Printf.sprintf "missing .i%d pin" k))
            in
            (* stage/unit from the trailing comment. *)
            let stage = ref Stage.Execute and unit_name = ref "top" in
            String.split_on_char ' ' comment
            |> List.iter (fun w ->
                   if String.length w > 2 && String.sub w 0 2 = "s=" then begin
                     match
                       stage_of_index
                         (int_of_string (String.sub w 2 (String.length w - 2)))
                     with
                     | Some s -> stage := s
                     | None -> fail lnum "bad stage index"
                   end
                   else if String.length w > 2 && String.sub w 0 2 = "u=" then
                     unit_name := String.sub w 2 (String.length w - 2));
            let real =
              Netlist.Builder.add b ~drive:cell.Cell_lib.drive ~name:instname
                ~stage:!stage ~unit_name:!unit_name cell.Cell_lib.kind fanins
            in
            resolve out real
        end
        | [ _ ] | [] -> fail lnum ("unrecognised statement: " ^ code)
      end)
    lines;
  List.iter
    (fun name ->
      match Hashtbl.find_opt nets name with
      | Some nid -> Netlist.Builder.output b nid name
      | None -> raise (Parse_error ("undriven output " ^ name)))
    (List.rev !outputs);
  let nl = Netlist.Builder.freeze b in
  { nl with Netlist.design_name = !design }

let read_file lib path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string lib (really_input_string ic (in_channel_length ic)))
