module Process = Pvtol_stdcell.Process
module Placement = Pvtol_place.Placement
module Srng = Pvtol_util.Srng

type t = {
  field : Field.t;
  process : Process.t;
  sigma_rnd_nm : float;
}

let create ?field ?(process = Process.default) ?(three_sigma_rnd_frac = 0.065)
    () =
  let field =
    match field with
    | Some f -> f
    | None ->
      Field.create ~l_nominal_nm:process.Process.l_nominal_nm
        ~max_dev_frac:0.055 ()
  in
  {
    field;
    process;
    sigma_rnd_nm = three_sigma_rnd_frac /. 3.0 *. process.Process.l_nominal_nm;
  }

let systematic_lgates t (p : Placement.t) pos =
  Array.mapi
    (fun i _ ->
      let x_mm, y_mm =
        Position.to_field pos ~x_um:p.Placement.xs.(i) ~y_um:p.Placement.ys.(i)
      in
      Field.systematic_nm t.field ~x_mm ~y_mm)
    p.Placement.xs

let sample_lgates t ~systematic rng out =
  assert (Array.length out = Array.length systematic);
  for i = 0 to Array.length out - 1 do
    out.(i) <- systematic.(i) +. (t.sigma_rnd_nm *. Srng.gaussian rng)
  done

let shifted_systematic t ~systematic ~cells ~dir ~theta ~out =
  assert (Array.length out = Array.length systematic);
  assert (Array.length cells = Array.length dir);
  Array.blit systematic 0 out 0 (Array.length systematic);
  for k = 0 to Array.length cells - 1 do
    let i = cells.(k) in
    out.(i) <- out.(i) +. (t.sigma_rnd_nm *. theta *. dir.(k))
  done

let delay_scale t ~lgate_nm ~vdd = Process.delay_scale t.process ~vdd ~lgate_nm

let scale_delays t ~base ~lgates ~vdd ~out =
  let n = Array.length base in
  assert (Array.length lgates = n && Array.length out = n);
  for i = 0 to n - 1 do
    out.(i) <- base.(i) *. delay_scale t ~lgate_nm:lgates.(i) ~vdd:(vdd i)
  done

(* ------------------------------------------------------------------ *)
(* Batched structure-of-arrays scale path.

   [delay_scale] costs an [exp] and two [( ** )] per (cell, sample) —
   and it is a smooth function of Lgate alone once the cell's supply is
   fixed.  The batched engine replaces it with a per-supply Chebyshev
   interpolant evaluated by Horner's rule: over the few-sigma Lgate
   window the Monte-Carlo sampler can actually produce, a degree-12 fit
   agrees with the exact model to ~3e-14 relative (the nearest complex
   singularity of the alpha-power expression is dozens of half-widths
   away, so Chebyshev coefficients decay by ~10x per degree).  Lanes
   that land outside the fitted window — a >10-sigma random draw —
   fall back to the exact scalar path, so the approximation bound is
   unconditional. *)

let poly_degree = 12

(* Half-width margin around the systematic Lgate range, in random-sigma
   units.  P(|z| > 10 sigma) < 1e-23: the exact fallback is effectively
   never taken, it only bounds the error when it would be. *)
let fit_margin_sigmas = 10.0

type poly = {
  p_vdd : float;
  p_lo : float;
  p_hi : float;
  mono : float array;  (* monomial coefficients in u = scaled Lgate *)
}

type batch = {
  bt : t;
  b_base : float array;
  b_systematic : float array;
  b_vdd : float array;
  b_poly : int array;  (* per cell: index into [polys], -1 = exact eval *)
  polys : poly array;
}

(* Chebyshev interpolation of [f] on [lo, hi] at [degree + 1] nodes,
   converted to monomial coefficients in u = (2x - lo - hi)/(hi - lo).
   The conversion loses ~2^degree worth of conditioning in the worst
   case, but the coefficients decay geometrically here, so the observed
   end-to-end error stays at a few ULPs (pinned by the tests). *)
let fit_poly ~degree ~lo ~hi f =
  let n = degree + 1 in
  let fx =
    Array.init n (fun j ->
        let u = cos (Float.pi *. (float_of_int j +. 0.5) /. float_of_int n) in
        f (((lo +. hi) /. 2.0) +. ((hi -. lo) /. 2.0 *. u)))
  in
  let c =
    Array.init n (fun k ->
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          s :=
            !s
            +. fx.(j)
               *. cos
                    (Float.pi *. float_of_int k
                    *. (float_of_int j +. 0.5)
                    /. float_of_int n)
        done;
        2.0 /. float_of_int n *. !s)
  in
  c.(0) <- c.(0) /. 2.0;
  let mono = Array.make n 0.0 in
  let tprev = Array.make n 0.0 and tcur = Array.make n 0.0 in
  tprev.(0) <- 1.0;
  mono.(0) <- c.(0);
  if n > 1 then begin
    tcur.(1) <- 1.0;
    for i = 0 to n - 1 do
      mono.(i) <- mono.(i) +. (c.(1) *. tcur.(i))
    done;
    let tnext = Array.make n 0.0 in
    for k = 2 to degree do
      Array.fill tnext 0 n 0.0;
      for i = 0 to n - 2 do
        tnext.(i + 1) <- 2.0 *. tcur.(i)
      done;
      for i = 0 to n - 1 do
        tnext.(i) <- tnext.(i) -. tprev.(i)
      done;
      Array.blit tcur 0 tprev 0 n;
      Array.blit tnext 0 tcur 0 n;
      for i = 0 to n - 1 do
        mono.(i) <- mono.(i) +. (c.(k) *. tcur.(i))
      done
    done
  end;
  mono

(* Cap on distinct supply values given their own interpolant; a design
   with more (no current caller has > 2) evaluates the extras exactly. *)
let max_polys = 16

let batch t ~base ~systematic ~vdd =
  let n = Array.length base in
  assert (Array.length systematic = n);
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun s ->
      if s < !lo then lo := s;
      if s > !hi then hi := s)
    systematic;
  let margin = fit_margin_sigmas *. t.sigma_rnd_nm in
  let lo = !lo -. margin and hi = !hi +. margin in
  let b_vdd = Array.init n vdd in
  let polys = ref [] and n_polys = ref 0 in
  let b_poly =
    Array.map
      (fun v ->
        match List.assoc_opt v !polys with
        | Some i -> i
        | None ->
          if !n_polys >= max_polys then -1
          else begin
            let i = !n_polys in
            polys := (v, i) :: !polys;
            incr n_polys;
            i
          end)
      b_vdd
  in
  let polys =
    Array.init !n_polys (fun i ->
        let v, _ = List.find (fun (_, j) -> j = i) !polys in
        {
          p_vdd = v;
          p_lo = lo;
          p_hi = hi;
          mono =
            fit_poly ~degree:poly_degree ~lo ~hi (fun lg ->
                delay_scale t ~lgate_nm:lg ~vdd:v);
        })
  in
  { bt = t; b_base = base; b_systematic = systematic; b_vdd; b_poly; polys }

let batch_scale b i ~lgate_nm =
  let pi = b.b_poly.(i) in
  if pi < 0 then delay_scale b.bt ~lgate_nm ~vdd:b.b_vdd.(i)
  else begin
    let p = b.polys.(pi) in
    if lgate_nm < p.p_lo || lgate_nm > p.p_hi then
      delay_scale b.bt ~lgate_nm ~vdd:p.p_vdd
    else begin
      let u = ((2.0 *. lgate_nm) -. p.p_lo -. p.p_hi) /. (p.p_hi -. p.p_lo) in
      let mono = p.mono in
      let acc = ref mono.(poly_degree) in
      for k = poly_degree - 1 downto 0 do
        acc := (!acc *. u) +. mono.(k)
      done;
      !acc
    end
  end

let scale_delays_batch b ~gauss ~samples ~stride ~out =
  let n = Array.length b.b_base in
  assert (samples >= 1 && samples <= stride);
  assert (Array.length gauss >= samples * n);
  assert (Array.length out >= n * stride);
  let sigma = b.bt.sigma_rnd_nm in
  (* Cell-outer, lane-inner: the per-cell constants (base, systematic,
     coefficient row) are hoisted once per row of [stride] lanes, the
     output row is contiguous, and the strided reads of [gauss] stay
     within [samples] cache lines that are reused across consecutive
     cells.  Unsafe accesses are sound: the asserts above bound every
     index ([k * n + i < samples * n <= length gauss],
     [row + k < n * stride <= length out]). *)
  for i = 0 to n - 1 do
    let sys = Array.unsafe_get b.b_systematic i in
    let base = Array.unsafe_get b.b_base i in
    let row = i * stride in
    let pi = Array.unsafe_get b.b_poly i in
    if pi < 0 then
      for k = 0 to samples - 1 do
        let lg = sys +. (sigma *. Array.unsafe_get gauss ((k * n) + i)) in
        out.(row + k) <- base *. delay_scale b.bt ~lgate_nm:lg ~vdd:b.b_vdd.(i)
      done
    else begin
      let p = Array.unsafe_get b.polys pi in
      let mono = p.mono in
      let lo = p.p_lo and hi = p.p_hi in
      let mid = (lo +. hi) /. 2.0 in
      let inv_half = 2.0 /. (hi -. lo) in
      for k = 0 to samples - 1 do
        let lg = sys +. (sigma *. Array.unsafe_get gauss ((k * n) + i)) in
        if lg < lo || lg > hi then
          out.(row + k) <- base *. delay_scale b.bt ~lgate_nm:lg ~vdd:p.p_vdd
        else begin
          let u = (lg -. mid) *. inv_half in
          let acc = ref (Array.unsafe_get mono poly_degree) in
          for j = poly_degree - 1 downto 0 do
            acc := (!acc *. u) +. Array.unsafe_get mono j
          done;
          Array.unsafe_set out (row + k) (base *. !acc)
        end
      done
    end
  done
