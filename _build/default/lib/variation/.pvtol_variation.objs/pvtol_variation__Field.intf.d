lib/variation/field.mli:
