lib/util/fit.mli:
