lib/core/flow.mli: Island Level_shifter Netlist Pvtol_netlist Pvtol_place Pvtol_power Pvtol_ssta Pvtol_timing Pvtol_variation Pvtol_vex Pvtol_vexsim Slicing
