(* Classical numerical expansions; see interface for accuracy notes. *)

let ln_gamma x =
  (* Lanczos approximation, g = 5, n = 6. *)
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  for j = 0 to 5 do
    y := !y +. 1.0;
    ser := !ser +. (cof.(j) /. !y)
  done;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let gamma_p_series a x =
  (* Series representation of P(a,x), converges quickly for x < a+1. *)
  let gln = ln_gamma a in
  if x <= 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    let result = ref nan in
    (try
       for _ = 1 to 200 do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. 3e-12 then begin
           result := !sum *. exp ((-.x) +. (a *. log x) -. gln);
           raise Exit
         end
       done
     with Exit -> ());
    if Float.is_nan !result then !sum *. exp ((-.x) +. (a *. log x) -. gln)
    else !result
  end

let gamma_q_cf a x =
  (* Continued fraction (modified Lentz), for x >= a+1. *)
  let gln = ln_gamma a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 200 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 3e-12 then raise Exit
     done
   with Exit -> ());
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  assert (a > 0.0 && x >= 0.0);
  if x < a +. 1.0 then gamma_p_series a x else 1.0 -. gamma_q_cf a x

let gamma_q a x =
  assert (a > 0.0 && x >= 0.0);
  if x < a +. 1.0 then 1.0 -. gamma_p_series a x else gamma_q_cf a x

let erf x =
  if x >= 0.0 then gamma_p 0.5 (x *. x) else -.gamma_p 0.5 (x *. x)

let erfc x = 1.0 -. erf x

let normal_cdf ~mu ~sigma x =
  assert (sigma > 0.0);
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt 2.0))

(* Acklam's inverse normal CDF approximation. *)
let std_normal_quantile p =
  assert (p > 0.0 && p < 1.0);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  let rational_tail q =
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
    *. q +. c.(5)
  and rational_tail_den q =
    ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0
  in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    rational_tail q /. rational_tail_den q
  else if p <= p_high then begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
      *. r +. a.(5)
    and den =
      ((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)
    in
    num *. q /. ((den *. r) +. 1.0)
  end
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(rational_tail q /. rational_tail_den q)

let normal_quantile ~mu ~sigma p =
  assert (sigma > 0.0);
  mu +. (sigma *. std_normal_quantile p)

let chi2_cdf ~dof x =
  assert (dof > 0);
  if x <= 0.0 then 0.0 else gamma_p (float_of_int dof /. 2.0) (x /. 2.0)

let chi2_critical ~dof ~alpha =
  assert (alpha > 0.0 && alpha < 1.0);
  (* Bisection on the CDF: monotone, so this is robust. *)
  let target = 1.0 -. alpha in
  let rec widen hi = if chi2_cdf ~dof hi < target then widen (hi *. 2.0) else hi in
  let hi = widen (float_of_int dof +. 10.0) in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if chi2_cdf ~dof mid < target then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
  in
  bisect 0.0 hi 200
