(** Die position of the processor core on the exposure field.

    The paper studies how violations relax as the core moves from the
    chip's lower-left corner (point A, worst systematic corner of
    Fig. 2) toward the upper-right along the diagonal (points B, C, D).
    A position maps core-local placement coordinates (um) to field
    coordinates (mm). *)

type t = {
  label : string;
  origin_x_mm : float;  (** field coordinate of the core's (0,0) *)
  origin_y_mm : float;
}

val chip_mm : float
(** Chip edge length within the exposure field (14 mm, Fig. 2). *)

val at_xy : ?label:string -> x_frac:float -> y_frac:float -> unit -> t
(** Core origin at an arbitrary point of the chip — the general form
    behind wafer-scale 2D sweeps.  [x_frac]/[y_frac] are fractions of
    the chip edge; nothing downstream (sampling, SSTA, scenario
    classification) assumes the die sits on the A-D diagonal.  The
    default label encodes both fractions injectively, since keyed
    stages memoize per position label. *)

val at_fraction : ?label:string -> float -> t
(** Core origin at the given fraction of the chip diagonal
    (0 = lower-left corner, 1 = upper-right corner).  Equivalent to
    [at_xy ~x_frac:frac ~y_frac:frac ()] up to the label. *)

val x_frac : t -> float
val y_frac : t -> float
(** Origin back in chip-edge fractions. *)

val point_a : t
val point_b : t
val point_c : t
val point_d : t
(** The paper's four named positions: A at the corner (0.0), and B, C,
    D at increasing diagonal fractions (0.25, 0.55, 0.80) where the
    violation scenarios relax one stage at a time. *)

val named : t list

val to_field : t -> x_um:float -> y_um:float -> float * float
(** Field coordinates (mm) of a core-local placement point. *)
