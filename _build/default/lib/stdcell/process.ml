type t = {
  l_nominal_nm : float;
  vdd_low : float;
  vdd_high : float;
  vth0 : float;
  alpha : float;
  alpha_dibl : float;
  subthreshold_swing : float;
}

let default =
  {
    l_nominal_nm = 65.0;
    vdd_low = 1.0;
    vdd_high = 1.2;
    vth0 = 0.32;
    alpha = 1.3;
    alpha_dibl = 0.08;
    subthreshold_swing = 0.035;
  }

let paper_literal = { default with alpha_dibl = 0.15 }

let vth_eff t ~vdd ~lgate_nm = t.vth0 -. (vdd *. exp (-.t.alpha_dibl *. lgate_nm))

let raw_delay t ~vdd ~lgate_nm =
  let vth = vth_eff t ~vdd ~lgate_nm in
  (lgate_nm ** 1.5) *. vdd /. ((vdd -. vth) ** t.alpha)

let delay_scale t ~vdd ~lgate_nm =
  raw_delay t ~vdd ~lgate_nm /. raw_delay t ~vdd:t.vdd_low ~lgate_nm:t.l_nominal_nm

let leakage_scale t ~vdd ~lgate_nm =
  let vth = vth_eff t ~vdd ~lgate_nm in
  let vth_nom = vth_eff t ~vdd:t.vdd_low ~lgate_nm:t.l_nominal_nm in
  exp ((vth_nom -. vth) /. t.subthreshold_swing) *. ((vdd /. t.vdd_low) ** 2.0)

let speedup_high_vdd t =
  delay_scale t ~vdd:t.vdd_low ~lgate_nm:t.l_nominal_nm
  /. delay_scale t ~vdd:t.vdd_high ~lgate_nm:t.l_nominal_nm

(* --- adaptive body bias --- *)

let body_factor = 0.12

let raw_delay_vth t ~vdd ~lgate_nm ~dvth =
  let vth = vth_eff t ~vdd ~lgate_nm +. dvth in
  (lgate_nm ** 1.5) *. vdd /. ((vdd -. vth) ** t.alpha)

let abb_delay_scale t ~vbb ~lgate_nm =
  raw_delay_vth t ~vdd:t.vdd_low ~lgate_nm ~dvth:(-.body_factor *. vbb)
  /. raw_delay t ~vdd:t.vdd_low ~lgate_nm:t.l_nominal_nm

let abb_leakage_scale t ~vbb ~lgate_nm =
  let dvth = -.body_factor *. vbb in
  let vth = vth_eff t ~vdd:t.vdd_low ~lgate_nm +. dvth in
  let vth_nom = vth_eff t ~vdd:t.vdd_low ~lgate_nm:t.l_nominal_nm in
  exp ((vth_nom -. vth) /. t.subthreshold_swing)

let abb_for_speedup t ~speedup =
  assert (speedup >= 1.0);
  let target = 1.0 /. speedup in
  let at vbb = abb_delay_scale t ~vbb ~lgate_nm:t.l_nominal_nm in
  if at 1.0 > target then
    invalid_arg "abb_for_speedup: target beyond 1V forward bias";
  let lo = ref 0.0 and hi = ref 1.0 in
  for _ = 1 to 60 do
    let mid = (!lo +. !hi) /. 2.0 in
    if at mid > target then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.0
