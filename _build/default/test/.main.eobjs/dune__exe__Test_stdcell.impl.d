test/test_stdcell.ml: Alcotest Array Float List Printf Pvtol_stdcell
