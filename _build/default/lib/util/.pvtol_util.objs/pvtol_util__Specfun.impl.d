lib/util/specfun.ml: Array Float
