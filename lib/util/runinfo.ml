type t = {
  lock : Mutex.t;
  argv : string list;
  started_at : float;
  t0_wall : float;
  t0_times : Unix.process_times;
  g0 : Gc.stat;
  mutable config : (string * Json.t) list;  (* insertion order *)
  mutable artifacts : (string * string * int) list;  (* reverse order *)
}

let schema = 1
let version = "1.1.0"

(* Pin the exact build when the tool runs inside its own checkout; a
   missing git binary, a non-checkout working directory or any other
   failure degrades to None rather than a hard error. *)
let git_describe () =
  match
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    (line, status)
  with
  | line, Unix.WEXITED 0 when String.trim line <> "" -> Some (String.trim line)
  | _ -> None
  | exception _ -> None

let version_string () =
  match git_describe () with
  | Some g -> Printf.sprintf "%s (git %s)" version g
  | None -> version

let create ?argv () =
  let argv =
    match argv with Some a -> a | None -> Array.to_list Sys.argv
  in
  {
    lock = Mutex.create ();
    argv;
    started_at = Unix.gettimeofday ();
    t0_wall = Unix.gettimeofday ();
    t0_times = Unix.times ();
    g0 = Gc.quick_stat ();
    config = [];
    artifacts = [];
  }

let add_config t key v =
  Mutex.lock t.lock;
  t.config <- List.remove_assoc key t.config @ [ (key, v) ];
  Mutex.unlock t.lock

let digest_hex s = Digest.to_hex (Digest.string s)

let add_artifact t ~name content =
  let entry = (name, digest_hex content, String.length content) in
  Mutex.lock t.lock;
  t.artifacts <- entry :: t.artifacts;
  Mutex.unlock t.lock

let iso8601 epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let span_json (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("deps", Json.List (List.map (fun d -> Json.Str d) s.Trace.deps));
      ("start_s", Json.Float s.Trace.start_s);
      ("dur_s", Json.Float s.Trace.dur_s);
      ("self_s", Json.Float s.Trace.self_s);
      ("minor_words", Json.Float s.Trace.minor_words);
      ("major_words", Json.Float s.Trace.major_words);
      ("promoted_words", Json.Float s.Trace.promoted_words);
      ("minor_collections", Json.Int s.Trace.minor_collections);
      ("major_collections", Json.Int s.Trace.major_collections);
      ("compactions", Json.Int s.Trace.compactions);
      ("ok", Json.Bool s.Trace.ok);
      ("domain", Json.Int s.Trace.domain);
    ]

(* Pool attribution: queue-wait and job-latency totals recovered from
   the metrics histograms (zero when metrics were disabled or the pool
   never ran a parallel job). *)
let pool_json (snap : Metrics.snapshot) =
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Counter c) -> c
    | _ -> 0
  in
  let histo name =
    match List.assoc_opt name snap with
    | Some (Metrics.Histogram h) -> (h.Metrics.sum, h.Metrics.count)
    | _ -> (0.0, 0)
  in
  let qw_sum, qw_count = histo "pool_queue_wait_seconds" in
  let job_sum, job_count = histo "pool_job_seconds" in
  Json.Obj
    [
      ("jobs", Json.Int (counter "pool_jobs_total"));
      ("chunks", Json.Int (counter "pool_chunks_total"));
      ("queue_wait_s", Json.Float qw_sum);
      ("queue_waits", Json.Int qw_count);
      ("job_s", Json.Float job_sum);
      ("jobs_timed", Json.Int job_count);
    ]

let to_json ?trace ?metrics t =
  let wall = Unix.gettimeofday () -. t.t0_wall in
  let times = Unix.times () in
  let g1 = Gc.quick_stat () in
  Mutex.lock t.lock;
  let config = t.config in
  let artifacts = List.rev t.artifacts in
  Mutex.unlock t.lock;
  let stages =
    match trace with
    | None -> []
    | Some tr -> List.map span_json (Trace.sort_by_start tr)
  in
  let metrics_fields =
    match metrics with
    | None -> []
    | Some snap ->
      [ ("pool", pool_json snap); ("metrics", Metrics.to_value snap) ]
  in
  Json.Obj
    ([
       ("schema", Json.Int schema);
       ("tool", Json.Str "pvtol");
       ("version", Json.Str version);
       ( "git",
         match git_describe () with Some g -> Json.Str g | None -> Json.Null );
       ("argv", Json.List (List.map (fun a -> Json.Str a) t.argv));
       ("started_at", Json.Str (iso8601 t.started_at));
       ("started_at_epoch_s", Json.Float t.started_at);
       ("config", Json.Obj config);
       ("wall_s", Json.Float wall);
       ( "cpu_user_s",
         Json.Float (times.Unix.tms_utime -. t.t0_times.Unix.tms_utime) );
       ( "cpu_sys_s",
         Json.Float (times.Unix.tms_stime -. t.t0_times.Unix.tms_stime) );
       ( "gc",
         Json.Obj
           [
             ("minor_words", Json.Float (g1.Gc.minor_words -. t.g0.Gc.minor_words));
             ("major_words", Json.Float (g1.Gc.major_words -. t.g0.Gc.major_words));
             ( "promoted_words",
               Json.Float (g1.Gc.promoted_words -. t.g0.Gc.promoted_words) );
             ( "minor_collections",
               Json.Int (g1.Gc.minor_collections - t.g0.Gc.minor_collections) );
             ( "major_collections",
               Json.Int (g1.Gc.major_collections - t.g0.Gc.major_collections) );
             ("compactions", Json.Int (g1.Gc.compactions - t.g0.Gc.compactions));
           ] );
       ("stages", Json.List stages);
     ]
    @ metrics_fields
    @ [
        ( "artifacts",
          Json.List
            (List.map
               (fun (name, md5, bytes) ->
                 Json.Obj
                   [
                     ("name", Json.Str name);
                     ("md5", Json.Str md5);
                     ("bytes", Json.Int bytes);
                   ])
               artifacts) );
      ])

let write ?trace ?metrics t ~file = Json.write_file file (to_json ?trace ?metrics t)

(* ------------------------------------------------------------------ *)
(* Markdown rendering (pvtol report)                                    *)

let getf j path default =
  match Option.bind (Json.member path j) Json.to_float with
  | Some f -> f
  | None -> default

let gets j path default =
  match Option.bind (Json.member path j) Json.to_str with
  | Some s -> s
  | None -> default

let mwords w = w /. 1_000_000.0

let render j =
  match (Json.member "schema" j, Json.member "tool" j) with
  | Some (Json.Int s), Some (Json.Str "pvtol") when s <> schema ->
    Error
      (Printf.sprintf "unsupported run-ledger schema %d (this build reads %d)"
         s schema)
  | Some (Json.Int _), Some (Json.Str "pvtol") ->
    let buf = Buffer.create 2048 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let argv =
      match Option.bind (Json.member "argv" j) Json.to_list with
      | Some items ->
        String.concat " "
          (List.filter_map Json.to_str items)
      | None -> "?"
    in
    add "# pvtol run ledger\n\n";
    add "- **version:** %s" (gets j "version" "?");
    (match Option.bind (Json.member "git" j) Json.to_str with
    | Some g -> add " (git %s)\n" g
    | None -> add "\n");
    add "- **command:** `%s`\n" argv;
    add "- **started:** %s\n" (gets j "started_at" "?");
    add "- **wall:** %.3f s — **cpu:** %.3f s user + %.3f s sys\n"
      (getf j "wall_s" 0.0) (getf j "cpu_user_s" 0.0) (getf j "cpu_sys_s" 0.0);
    (match Json.member "gc" j with
    | Some gc ->
      add
        "- **GC:** %.1f MW minor, %.1f MW major, %.1f MW promoted; %.0f \
         minor / %.0f major collections, %.0f compactions\n"
        (mwords (getf gc "minor_words" 0.0))
        (mwords (getf gc "major_words" 0.0))
        (mwords (getf gc "promoted_words" 0.0))
        (getf gc "minor_collections" 0.0)
        (getf gc "major_collections" 0.0)
        (getf gc "compactions" 0.0)
    | None -> ());
    (* Config table *)
    (match Option.bind (Json.member "config" j) Json.to_obj with
    | Some [] | None -> ()
    | Some fields ->
      add "\n## Config\n\n| key | value |\n|---|---|\n";
      List.iter
        (fun (k, v) ->
          let s =
            match v with
            | Json.Str s -> s
            | Json.Int i -> string_of_int i
            | Json.Float f -> Printf.sprintf "%g" f
            | Json.Bool b -> string_of_bool b
            | Json.Null -> "-"
            | _ -> "…"
          in
          add "| %s | %s |\n" k s)
        fields);
    (* Stage table *)
    (match Option.bind (Json.member "stages" j) Json.to_list with
    | Some [] | None -> add "\n(no stages recorded)\n"
    | Some stages ->
      add
        "\n## Stages\n\n| stage | dur (s) | self (s) | minor (MW) | major \
         (MW) | gcs | domain |\n|---|---:|---:|---:|---:|---:|---:|\n";
      List.iter
        (fun s ->
          add "| %s%s | %.3f | %.3f | %.2f | %.2f | %.0f/%.0f | %.0f |\n"
            (gets s "name" "?")
            (match Json.member "ok" s with
            | Some (Json.Bool false) -> " **[FAILED]**"
            | _ -> "")
            (getf s "dur_s" 0.0) (getf s "self_s" 0.0)
            (mwords (getf s "minor_words" 0.0))
            (mwords (getf s "major_words" 0.0))
            (getf s "minor_collections" 0.0)
            (getf s "major_collections" 0.0)
            (getf s "domain" 0.0))
        stages;
      let total_self =
        List.fold_left (fun acc s -> acc +. getf s "self_s" 0.0) 0.0 stages
      in
      add "\n%d stages, %.3f s total stage self-time.\n" (List.length stages)
        total_self);
    (* Pool attribution *)
    (match Json.member "pool" j with
    | None -> ()
    | Some p ->
      add "\n## Pool\n\n";
      add "- jobs: %.0f (%.0f chunks)\n" (getf p "jobs" 0.0)
        (getf p "chunks" 0.0);
      add "- queue wait: %.3f s total over %.0f waits\n"
        (getf p "queue_wait_s" 0.0) (getf p "queue_waits" 0.0);
      add "- job latency: %.3f s total over %.0f timed jobs\n"
        (getf p "job_s" 0.0) (getf p "jobs_timed" 0.0));
    (* Metrics highlights: the biggest nonzero counters. *)
    (match
       Option.bind (Json.member "metrics" j) (Json.member "counters")
       |> Fun.flip Option.bind Json.to_obj
     with
    | None | Some [] -> ()
    | Some counters ->
      let nonzero =
        List.filter_map
          (fun (k, v) ->
            match Json.to_float v with
            | Some f when f > 0.0 -> Some (k, f)
            | _ -> None)
          counters
      in
      if nonzero <> [] then begin
        add "\n## Metrics highlights\n\n";
        let sorted =
          List.sort (fun (_, a) (_, b) -> Float.compare b a) nonzero
        in
        let top = List.filteri (fun i _ -> i < 12) sorted in
        List.iter (fun (k, v) -> add "- `%s` = %.0f\n" k v) top;
        if List.length sorted > List.length top then
          add "- … %d more nonzero counters in the ledger\n"
            (List.length sorted - List.length top)
      end);
    (* Artifacts *)
    (match Option.bind (Json.member "artifacts" j) Json.to_list with
    | Some [] | None -> ()
    | Some arts ->
      add "\n## Artifacts\n\n| artifact | bytes | md5 |\n|---|---:|---|\n";
      List.iter
        (fun a ->
          add "| %s | %.0f | `%s` |\n" (gets a "name" "?")
            (getf a "bytes" 0.0) (gets a "md5" "?"))
        arts);
    Ok (Buffer.contents buf)
  | _ -> Error "not a pvtol run ledger (missing schema/tool fields)"
