(** Minimal JSON tree: one shared emitter and parser for every report
    the tools write or read (the run ledger, [BENCH_ssta.json], the
    [pvtol report] / [pvtol bench compare] readers).

    The emitter escapes strings correctly and {e rejects} non-finite
    floats — a NaN or infinity in a benchmark estimate or a ledger
    field is a measurement bug, and silently writing [nan] would
    produce a file no JSON parser accepts.  The parser is a plain
    recursive-descent reader of standard JSON (objects, arrays,
    strings with escapes incl. [\uXXXX] surrogate pairs, numbers,
    booleans, null); it exists because the repo deliberately carries
    no third-party JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** key order is preserved on output *)

val to_string : t -> string
(** Pretty-printed (2-space indent, stable key order) JSON text ending
    in a newline.  Raises [Invalid_argument] if the tree contains a
    NaN or infinite float. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the failure.  Numbers without [.], [e] or [E] that
    fit in an OCaml [int] parse as {!Int}, everything else as
    {!Float}. *)

val write_file : string -> t -> unit
val read_file : string -> (t, string) result
(** [Error] for unreadable files as well as parse failures. *)

(** {2 Accessors (total, for report readers)} *)

val member : string -> t -> t option
(** Field of an {!Obj}; [None] for missing fields and non-objects. *)

val to_float : t -> float option
(** {!Int} and {!Float} both convert. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
