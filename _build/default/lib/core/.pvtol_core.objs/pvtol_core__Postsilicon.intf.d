lib/core/postsilicon.mli: Flow Format
