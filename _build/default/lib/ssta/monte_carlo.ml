open Pvtol_netlist
module Sta = Pvtol_timing.Sta
module Sampler = Pvtol_variation.Sampler
module Position = Pvtol_variation.Position
module Srng = Pvtol_util.Srng
module Stats = Pvtol_util.Stats
module Fit = Pvtol_util.Fit

type config = { samples : int; seed : int }

let default_config = { samples = 400; seed = 2024 }

type stage_stats = {
  stage : Stage.t;
  samples : float array;
  summary : Stats.summary;
  fit : Fit.normal;
  gof : Fit.gof;
}

type result = {
  position : Position.t;
  stages : stage_stats list;
  worst_samples : float array;
  endpoint_critical_count : (Netlist.cell_id, int) Hashtbl.t;
}

let run ?(config = default_config) ?vdd ~sampler ~sta ~placement ~position () =
  let nl = Sta.netlist sta in
  let vdd =
    match vdd with
    | Some f -> f
    | None ->
      let low = nl.Netlist.lib.Pvtol_stdcell.Cell.process.Pvtol_stdcell.Process.vdd_low in
      fun _ -> low
  in
  let n = Netlist.cell_count nl in
  let rng = Srng.create config.seed in
  let systematic = Sampler.systematic_lgates sampler placement position in
  let base = Sta.nominal_delays sta in
  let lgates = Array.make n 0.0 in
  let delays = Array.make n 0.0 in
  let stage_samples =
    List.filter_map
      (fun s ->
        if Sta.endpoints_of_stage sta s <> [] then
          Some (s, Array.make config.samples 0.0)
        else None)
      Stage.all
  in
  let worst_samples = Array.make config.samples 0.0 in
  let critical_count = Hashtbl.create 256 in
  for k = 0 to config.samples - 1 do
    Sampler.sample_lgates sampler ~systematic rng lgates;
    Sampler.scale_delays sampler ~base ~lgates ~vdd ~out:delays;
    let r = Sta.analyze sta ~delays in
    worst_samples.(k) <- r.Sta.worst;
    List.iter
      (fun (s, arr) ->
        match Sta.stage_delay r s with
        | Some d -> arr.(k) <- d
        | None -> ())
      stage_samples;
    (* Endpoint criticality: flops within 2% of their stage's worst. *)
    List.iter
      (fun (s, _) ->
        match Sta.stage_delay r s with
        | None -> ()
        | Some stage_worst ->
          List.iter
            (fun cid ->
              if r.Sta.endpoint_delay.(cid) >= 0.98 *. stage_worst then
                Hashtbl.replace critical_count cid
                  (1 + Option.value (Hashtbl.find_opt critical_count cid) ~default:0))
            (Sta.endpoints_of_stage sta s))
      stage_samples
  done;
  let stages =
    List.map
      (fun (stage, samples) ->
        let fit, gof = Fit.fit_and_test samples in
        { stage; samples; summary = Stats.summarize samples; fit; gof })
      stage_samples
  in
  { position; stages; worst_samples; endpoint_critical_count = critical_count }

let stage_stats r s =
  List.find_opt (fun ss -> Stage.equal ss.stage s) r.stages

let three_sigma_delay ss = Stats.three_sigma ss.summary
