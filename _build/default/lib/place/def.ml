open Pvtol_netlist
module Geom = Pvtol_util.Geom
module Cell_lib = Pvtol_stdcell.Cell

exception Parse_error of string

let units = 1000.0

let to_string (p : Placement.t) =
  let b = Buffer.create (Netlist.cell_count p.Placement.netlist * 48) in
  let fp = p.Placement.floorplan in
  let core = fp.Floorplan.core in
  let i_of f = int_of_float (Float.round (f *. units)) in
  Buffer.add_string b "VERSION 5.8 ;\n";
  Buffer.add_string b
    (Printf.sprintf "DESIGN %s ;\n" p.Placement.netlist.Netlist.design_name);
  Buffer.add_string b "UNITS DISTANCE MICRONS 1000 ;\n";
  Buffer.add_string b
    (Printf.sprintf "DIEAREA ( %d %d ) ( %d %d ) ;\n" (i_of core.Geom.llx)
       (i_of core.Geom.lly) (i_of core.Geom.urx) (i_of core.Geom.ury));
  Buffer.add_string b
    (Printf.sprintf "ROWDEFS %d %d %d ;\n" fp.Floorplan.n_rows
       (i_of fp.Floorplan.row_height) (i_of fp.Floorplan.site_width));
  Buffer.add_string b
    (Printf.sprintf "COMPONENTS %d ;\n" (Netlist.cell_count p.Placement.netlist));
  Array.iter
    (fun (c : Netlist.cell) ->
      Buffer.add_string b
        (Printf.sprintf "- %s %s + PLACED ( %d %d ) N ;\n" c.Netlist.name
           (Cell_lib.cell_name c.Netlist.cell)
           (i_of p.Placement.xs.(c.Netlist.id))
           (i_of p.Placement.ys.(c.Netlist.id))))
    p.Placement.netlist.Netlist.cells;
  Buffer.add_string b "END COMPONENTS\nEND DESIGN\n";
  Buffer.contents b

let write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

let of_string nl src =
  let by_name = Hashtbl.create (Netlist.cell_count nl) in
  Array.iter (fun (c : Netlist.cell) -> Hashtbl.replace by_name c.Netlist.name c) nl.Netlist.cells;
  let lines = String.split_on_char '\n' src in
  let die = ref None and rowdefs = ref None in
  let xs = Array.make (Netlist.cell_count nl) nan in
  let ys = Array.make (Netlist.cell_count nl) nan in
  let f_of s =
    match int_of_string_opt s with
    | Some i -> float_of_int i /. units
    | None -> raise (Parse_error (Printf.sprintf "bad coordinate %S" s))
  in
  List.iter
    (fun line ->
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | "DIEAREA" :: "(" :: x1 :: y1 :: ")" :: "(" :: x2 :: y2 :: ")" :: _ ->
        die := Some (f_of x1, f_of y1, f_of x2, f_of y2)
      | "ROWDEFS" :: n :: rh :: sw :: _ ->
        rowdefs :=
          Some
            ( (match int_of_string_opt n with
              | Some v -> v
              | None -> raise (Parse_error "bad ROWDEFS count")),
              f_of rh, f_of sw )
      | "-" :: name :: _cellty :: "+" :: "PLACED" :: "(" :: x :: y :: ")" :: _ -> begin
        match Hashtbl.find_opt by_name name with
        | Some c ->
          xs.(c.Netlist.id) <- f_of x;
          ys.(c.Netlist.id) <- f_of y
        | None -> raise (Parse_error (Printf.sprintf "unknown component %s" name))
      end
      | _ -> ())
    lines;
  let llx, lly, urx, ury =
    match !die with
    | Some d -> d
    | None -> raise (Parse_error "missing DIEAREA")
  in
  let n_rows, row_height, site_width =
    match !rowdefs with
    | Some r -> r
    | None -> raise (Parse_error "missing ROWDEFS")
  in
  Array.iteri
    (fun i x ->
      if Float.is_nan x then
        raise (Parse_error (Printf.sprintf "cell %d missing placement" i)))
    xs;
  let fp =
    {
      Floorplan.core = Geom.rect ~llx ~lly ~urx ~ury;
      row_height;
      site_width;
      n_rows;
      utilization =
        Netlist.area nl /. ((urx -. llx) *. (ury -. lly));
    }
  in
  { Placement.netlist = nl; floorplan = fp; xs; ys }

let read_file nl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string nl (really_input_string ic (in_channel_length ic)))
