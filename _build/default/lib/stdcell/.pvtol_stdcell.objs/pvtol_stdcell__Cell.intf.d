lib/stdcell/cell.mli: Kind Process
