(* Observability: the shared JSON tree, trace edge cases, the run
   ledger and the bench-compare regression gate.  The end-to-end cases
   drive the installed pvtol binary (a dune dep of this test) so the
   exit codes the CI gate relies on are pinned here. *)

module Json = Pvtol_util.Json
module Trace = Pvtol_util.Trace
module Runinfo = Pvtol_util.Runinfo
module BC = Pvtol_util.Bench_compare

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- Json ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\" \\ line\nwith\ttabs and caf\xc3\xa9");
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("null", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Str "x"; Json.Obj [] ]);
        ("empty", Json.List []);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok v' ->
    Alcotest.(check string) "round-trip" (Json.to_string v) (Json.to_string v')

let test_json_rejects_nonfinite () =
  List.iter
    (fun f ->
      match Json.to_string (Json.Obj [ ("x", Json.Float f) ]) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "non-finite float emitted as %s" s)
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_parse_escapes () =
  (match Json.of_string {|"café 😀 \n\t\\"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "escapes decode"
      "caf\xc3\xa9 \xf0\x9f\x98\x80 \n\t\\" s
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.failf "escape parse failed: %s" e);
  (match Json.of_string "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.of_string "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated list accepted"

let test_json_members () =
  let j =
    Result.get_ok (Json.of_string {|{"a": {"b": [1, 2.5]}, "s": "x"}|})
  in
  let b = Option.get (Option.bind (Json.member "a" j) (Json.member "b")) in
  (match Json.to_list b with
  | Some [ x; y ] ->
    Alcotest.(check int) "int elt" 1 (Option.get (Json.to_int x));
    Alcotest.(check (float 1e-9)) "float elt" 2.5
      (Option.get (Json.to_float y))
  | _ -> Alcotest.fail "list member lost");
  Alcotest.(check string) "str member" "x"
    (Option.get (Option.bind (Json.member "s" j) Json.to_str));
  Alcotest.(check bool) "missing member" true (Json.member "zz" j = None)

(* --- Trace edge cases ---------------------------------------------- *)

let test_trace_empty () =
  let t = Trace.create () in
  let report = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "pp total renders" true
    (String.length report > 0);
  (match Json.of_string (Trace.to_json t) with
  | Ok (Json.Obj fields) ->
    Alcotest.(check bool) "empty spans list" true
      (List.assoc "spans" fields = Json.List [])
  | Ok _ -> Alcotest.fail "trace JSON is not an object"
  | Error e -> Alcotest.failf "empty trace JSON invalid: %s" e);
  match Json.of_string (Trace.to_chrome_json t) with
  | Ok (Json.List events) ->
    (* Only the process-metadata event: no spans, no domain tracks. *)
    Alcotest.(check int) "metadata only" 1 (List.length events)
  | Ok _ -> Alcotest.fail "chrome JSON is not an array"
  | Error e -> Alcotest.failf "empty chrome JSON invalid: %s" e

let test_trace_gc_fields () =
  let t = Trace.create () in
  let r =
    Trace.span t ~name:"alloc" (fun () ->
        (* Allocate enough to move the minor-words counter for sure. *)
        let acc = ref [] in
        for i = 1 to 10_000 do
          acc := (i, float_of_int i) :: !acc
        done;
        List.length !acc)
  in
  Alcotest.(check int) "span result" 10_000 r;
  let s = Option.get (Trace.find t "alloc") in
  Alcotest.(check bool) "minor words counted" true (s.Trace.minor_words > 0.0);
  Alcotest.(check bool) "gc counters non-negative" true
    (s.Trace.minor_collections >= 0
    && s.Trace.major_collections >= 0
    && s.Trace.compactions >= 0 && s.Trace.promoted_words >= 0.0);
  (* The new fields must survive the JSON exporter. *)
  let j = Result.get_ok (Json.of_string (Trace.to_json t)) in
  let span_j =
    match Option.bind (Json.member "spans" j) Json.to_list with
    | Some [ s ] -> s
    | _ -> Alcotest.fail "expected exactly one exported span"
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " exported") true
        (Json.member field span_j <> None))
    [ "promoted_words"; "minor_collections"; "major_collections";
      "compactions" ]

(* --- Run ledger ---------------------------------------------------- *)

let test_ledger_roundtrip () =
  let ledger = Runinfo.create ~argv:[ "pvtol"; "test" ] () in
  Runinfo.add_config ledger "seed" (Json.Int 7);
  Runinfo.add_config ledger "seed" (Json.Int 9);
  (* later entry wins *)
  Runinfo.add_artifact ledger ~name:"stdout:demo" "demo report\n";
  let trace = Trace.create () in
  ignore (Trace.span trace ~name:"stage-a" (fun () -> 1 + 1));
  let j = Runinfo.to_json ~trace ledger in
  let j' = Result.get_ok (Json.of_string (Json.to_string j)) in
  Alcotest.(check int) "schema" Runinfo.schema
    (Option.get (Option.bind (Json.member "schema" j') Json.to_int));
  Alcotest.(check string) "tool" "pvtol"
    (Option.get (Option.bind (Json.member "tool" j') Json.to_str));
  let config = Option.get (Json.member "config" j') in
  Alcotest.(check int) "config override" 9
    (Option.get (Option.bind (Json.member "seed" config) Json.to_int));
  (match Option.bind (Json.member "artifacts" j') Json.to_list with
  | Some [ a ] ->
    Alcotest.(check string) "artifact digest"
      (Runinfo.digest_hex "demo report\n")
      (Option.get (Option.bind (Json.member "md5" a) Json.to_str));
    Alcotest.(check int) "artifact bytes" 12
      (Option.get (Option.bind (Json.member "bytes" a) Json.to_int))
  | _ -> Alcotest.fail "expected one artifact");
  (match Option.bind (Json.member "stages" j') Json.to_list with
  | Some [ s ] ->
    Alcotest.(check string) "stage name" "stage-a"
      (Option.get (Option.bind (Json.member "name" s) Json.to_str))
  | _ -> Alcotest.fail "expected one stage");
  (* The markdown renderer accepts what the collector wrote... *)
  (match Runinfo.render j' with
  | Ok md ->
    Alcotest.(check bool) "render has stage table" true
      (String.length md > 0 && contains ~sub:"stage-a" md)
  | Error e -> Alcotest.failf "render failed: %s" e);
  (* ...and rejects a value that is not a ledger. *)
  match Runinfo.render (Json.Obj [ ("schema", Json.Int 999) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "render accepted a non-ledger"

(* End-to-end: the same run under PVTOL_DOMAINS 1/2/4 must produce the
   same report bytes, so the ledger's artifact digests are identical —
   the result-first comparison the ledger exists for. *)
let pvtol_exe = Filename.concat (Filename.concat ".." "bin") "pvtol.exe"

let run_ledger_digests ~domains =
  let file =
    Filename.temp_file (Printf.sprintf "pvtol_ledger_%d" domains) ".json"
  in
  let cmd =
    Printf.sprintf "PVTOL_DOMAINS=%d %s validate --quick --run-ledger %s > /dev/null 2>&1"
      domains (Filename.quote pvtol_exe) (Filename.quote file)
  in
  let rc = Sys.command cmd in
  Alcotest.(check int) (Printf.sprintf "exit (domains=%d)" domains) 0 rc;
  let j = Result.get_ok (Json.read_file file) in
  Sys.remove file;
  match Option.bind (Json.member "artifacts" j) Json.to_list with
  | Some arts ->
    List.map
      (fun a ->
        ( Option.get (Option.bind (Json.member "name" a) Json.to_str),
          Option.get (Option.bind (Json.member "md5" a) Json.to_str) ))
      arts
  | None -> Alcotest.fail "ledger has no artifacts"

let test_ledger_domain_stability () =
  let d1 = run_ledger_digests ~domains:1 in
  Alcotest.(check bool) "at least one artifact" true (d1 <> []);
  List.iter
    (fun domains ->
      let d = run_ledger_digests ~domains in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "digests stable at %d domains" domains)
        d1 d)
    [ 2; 4 ]

(* --- bench compare ------------------------------------------------- *)

let bench_file kernels =
  Json.Obj
    [
      ("schema", Json.Int 2);
      ( "kernels",
        Json.Obj
          (List.map
             (fun (name, ns, ci, n) ->
               ( name,
                 Json.Obj
                   [
                     ("ns", Json.Float ns);
                     ("ci", Json.Float ci);
                     ("n", Json.Int n);
                   ] ))
             kernels) );
    ]

let base_kernels =
  [ ("alpha", 100.0, 2.0, 30); ("beta", 2000.0, 30.0, 30);
    ("gamma", 50.0, 1.0, 30) ]

let test_compare_identical () =
  let b = bench_file base_kernels in
  let r = Result.get_ok (BC.compare ~base:b ~next:b ()) in
  Alcotest.(check (list string)) "no regressions" [] (BC.regressions r);
  List.iter
    (fun l ->
      Alcotest.(check bool) (l.BC.name ^ " unchanged") true
        (l.BC.verdict = BC.Unchanged))
    r.BC.lines

(* The acceptance case: one kernel inflated 10%, well past its CI,
   flags exactly that kernel and nothing else. *)
let test_compare_flags_inflated_kernel () =
  let next =
    bench_file
      (List.map
         (fun (name, ns, ci, n) ->
           if name = "beta" then (name, ns *. 1.10, ci, n)
           else (name, ns, ci, n))
         base_kernels)
  in
  let r =
    Result.get_ok (BC.compare ~base:(bench_file base_kernels) ~next ())
  in
  Alcotest.(check (list string)) "exactly beta" [ "beta" ] (BC.regressions r)

(* A delta inside the combined CI half-widths is noise, not a
   regression, even when it clears the relative threshold. *)
let test_compare_ci_gates_noise () =
  let base = bench_file [ ("noisy", 100.0, 20.0, 5) ] in
  let next = bench_file [ ("noisy", 110.0, 20.0, 5) ] in
  let r = Result.get_ok (BC.compare ~base ~next ()) in
  Alcotest.(check (list string)) "within noise" [] (BC.regressions r)

let test_compare_one_sided () =
  let base = bench_file (("old-only", 10.0, 0.5, 9) :: base_kernels) in
  let next = bench_file (("new-only", 10.0, 0.5, 9) :: base_kernels) in
  let r = Result.get_ok (BC.compare ~base ~next ()) in
  Alcotest.(check (list string)) "one-sided never regresses" []
    (BC.regressions r);
  let verdict name =
    (List.find (fun l -> l.BC.name = name) r.BC.lines).BC.verdict
  in
  Alcotest.(check bool) "base only" true (verdict "old-only" = BC.Base_only);
  Alcotest.(check bool) "new only" true (verdict "new-only" = BC.New_only)

let test_compare_schema1_fallback () =
  let legacy =
    Result.get_ok
      (Json.of_string
         {|{"kernels_ns_per_run": {"alpha": 100.0, "beta": 2000.0}}|})
  in
  let r = Result.get_ok (BC.compare ~base:legacy ~next:legacy ()) in
  Alcotest.(check int) "both kernels read" 2 (List.length r.BC.lines);
  Alcotest.(check (list string)) "self-compare clean" [] (BC.regressions r);
  match BC.compare ~base:(Json.Obj []) ~next:legacy () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "kernel-free file accepted"

(* The CLI exit codes CI gates on: 0 on a clean compare, 1 on a
   significant regression. *)
let test_compare_cli_exit_codes () =
  let write name j =
    let file = Filename.temp_file name ".json" in
    Json.write_file file j;
    file
  in
  let base = write "bench_base" (bench_file base_kernels) in
  let next =
    write "bench_next"
      (bench_file
         (List.map
            (fun (name, ns, ci, n) ->
              if name = "alpha" then (name, ns *. 1.10, ci, n)
              else (name, ns, ci, n))
            base_kernels))
  in
  let run a b =
    Sys.command
      (Printf.sprintf "%s bench compare %s %s > /dev/null 2>&1"
         (Filename.quote pvtol_exe) (Filename.quote a) (Filename.quote b))
  in
  Alcotest.(check int) "self-compare exits 0" 0 (run base base);
  Alcotest.(check int) "regression exits 1" 1 (run base next);
  Sys.remove base;
  Sys.remove next

let suite =
  ( "observability",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json rejects nan/inf" `Quick
        test_json_rejects_nonfinite;
      Alcotest.test_case "json escape parsing" `Quick test_json_parse_escapes;
      Alcotest.test_case "json member access" `Quick test_json_members;
      Alcotest.test_case "empty trace exports" `Quick test_trace_empty;
      Alcotest.test_case "span gc deltas" `Quick test_trace_gc_fields;
      Alcotest.test_case "ledger round-trip" `Quick test_ledger_roundtrip;
      Alcotest.test_case "ledger digests vs PVTOL_DOMAINS" `Slow
        test_ledger_domain_stability;
      Alcotest.test_case "compare: identical files" `Quick
        test_compare_identical;
      Alcotest.test_case "compare: inflated kernel flagged" `Quick
        test_compare_flags_inflated_kernel;
      Alcotest.test_case "compare: CI gates noise" `Quick
        test_compare_ci_gates_noise;
      Alcotest.test_case "compare: one-sided kernels" `Quick
        test_compare_one_sided;
      Alcotest.test_case "compare: schema-1 fallback" `Quick
        test_compare_schema1_fallback;
      Alcotest.test_case "compare: cli exit codes" `Slow
        test_compare_cli_exit_codes;
    ] )
