(** Standard-cell characterisation and the dual-Vdd cell library.

    Each cell is characterised at the nominal corner (low Vdd, nominal
    Lgate); {!Process} scale factors retarget delay and leakage to any
    (Vdd, Lgate) operating point, which is exactly how the paper's SDF
    rewriting flow injects variability. *)

type drive = X0 | X1 | X2 | X4
(** Drive strengths.  [X0] is the half-drive variant used by the
    area-recovery / downsizing pass that consumes positive slack after
    timing closure (mirroring what a commercial synthesis flow does,
    and producing the paper's "all stages near-critical" starting
    point). *)

type t = {
  kind : Kind.t;
  drive : drive;
  area : float;         (** um^2 *)
  input_cap : float;    (** fF, per input pin *)
  d0 : float;           (** intrinsic delay, ns, at nominal corner *)
  drive_res : float;    (** load-dependent delay slope, ns/fF *)
  e_internal : float;   (** internal energy per output toggle, fJ, at vdd_low *)
  leak : float;         (** leakage power, nW, at nominal corner *)
}

type library = {
  name : string;
  process : Process.t;
  cells : t list;
  wire_cap_per_um : float;    (** fF/um, for HPWL-based loads *)
  wire_delay_per_um : float;  (** ns/um, lumped linear wire delay *)
  clk_to_q : float;           (** DFF clock-to-output delay, ns *)
  setup : float;              (** DFF setup time, ns *)
}

val drive_factor : drive -> float
val drive_name : drive -> string
val drive_of_name : string -> drive option

val cell_name : t -> string
(** ["NAND2_X1"]-style name, as used by the Liberty and netlist layers. *)

val default_library : library
(** The 65nm-class low-power dual-Vdd (1.0V / 1.2V) library the whole
    reproduction runs on. *)

val find : library -> Kind.t -> drive -> t
(** Raises [Not_found] if the library lacks the combination. *)

val find_by_name : library -> string -> t option

(** {2 Operating-point evaluation} *)

val delay : library -> t -> vdd:float -> lgate_nm:float -> load_ff:float -> float
(** Pin-to-output delay in ns: [(d0 + drive_res * load) * delay_scale]. *)

val leakage_nw : library -> t -> vdd:float -> lgate_nm:float -> float
(** Leakage power in nW at the operating point. *)

val switching_energy_fj : library -> t -> vdd:float -> load_ff:float -> float
(** Energy per output toggle in fJ: internal + 0.5 * C_load * Vdd^2
    (with the internal part rescaled by (Vdd/vdd_low)^2). *)
