# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-quick bench-mc bench-compare \
	trace-quick telemetry-quick fmt-check clean

all: build

build:
	dune build

test:
	dune build && dune runtest

# Full benchmark/reproduction suite (slow: full-size design flow).
bench:
	dune exec bench/main.exe -- kernels --json

# CI smoke test for the parallel SSTA path: scaled-down design, kernel
# micro-benchmarks, serial-vs-parallel Monte-Carlo throughput, and a
# fresh BENCH_ssta.json in the working directory.
bench-quick:
	dune exec bench/main.exe -- --quick kernels --json

# Golden-vs-batched Monte-Carlo engine comparison only: the per-sample
# MC kernels and their speedup ratio (scaled-down design).
bench-mc:
	dune exec bench/main.exe -- --quick kernels-mc

# Perf-regression observatory: regenerate a quick bench into
# BENCH_new.json and compare it against the committed BENCH_ssta.json
# baseline (CI-gated comparison, ±10% beyond the combined CIs; exits
# nonzero on a significant regression and leaves bench-compare.md).
bench-compare:
	dune exec bench/main.exe -- --quick kernels --json --out BENCH_new.json
	dune exec bin/pvtol.exe -- bench compare BENCH_ssta.json \
	  BENCH_new.json --threshold 10 --out bench-compare.md

# Quick stage-graph trace: runs the scaled-down flow and prints the
# span report (stage, wall clock, allocation, dependencies) to stderr,
# leaving trace.json in the working directory.
trace-quick:
	dune exec bin/pvtol.exe -- --quick --trace

# Telemetry smoke: run the scaled-down scenarios exhibit with metrics
# on, leaving metrics.json and a Chrome trace (chrome://tracing /
# Perfetto) in the working directory.
telemetry-quick:
	dune exec bin/pvtol.exe -- scenarios --quick \
	  --metrics-out metrics.json --trace-chrome trace-chrome.json

# `dune build @fmt` needs the ocamlformat binary; skip gracefully where
# it isn't installed (see .ocamlformat).
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

clean:
	dune clean
