examples/quickstart.mli:
