(* Lazy memoized stage graph.  See stage.mli for the contract. *)

module Trace = Pvtol_util.Trace
module Metrics = Pvtol_util.Metrics

(* Memo hits vs. computes: hit = the cell was already Done/Failed when
   forced; compute = this force ran the stage function.  Waiting on a
   Running cell counts as neither (the computing force owns it). *)
let m_memo_hits = Metrics.counter "stage_memo_hits_total"
let m_computes = Metrics.counter "stage_computes_total"

type error = {
  stage : string;
  chain : string list;
  message : string;
}

exception Stage_error of error

let error_message e =
  Printf.sprintf "stage %S failed (forced via %s): %s" e.stage
    (String.concat " -> " e.chain)
    e.message

let () =
  Printexc.register_printer (function
    | Stage_error e -> Some (error_message e)
    | _ -> None)

type graph = {
  trace : Trace.t;
  registry : Mutex.t;
  mutable names : string list;
}

let create ?trace () =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { trace; registry = Mutex.create (); names = [] }

let trace g = g.trace

let register g name =
  Mutex.lock g.registry;
  let dup = List.mem name g.names in
  if not dup then g.names <- name :: g.names;
  Mutex.unlock g.registry;
  if dup then invalid_arg (Printf.sprintf "Stage: duplicate node name %S" name)

(* The chain of node names the current domain is forcing, innermost
   first.  Per-domain, so keyed nodes computed on pool workers get
   their own (short) chains. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

type 'a state = Pending | Running | Done of 'a | Failed of error

type 'a cell = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

let new_cell () =
  { lock = Mutex.create (); cond = Condition.create (); state = Pending }

(* Force one cell: memoized value or error; computes at most once.  A
   concurrent forcing domain blocks until the computing domain stores a
   result; re-entrant forcing from the same domain is a dependency
   cycle. *)
let force_cell g cell ~name ~deps compute =
  let rec await ~first =
    match cell.state with
    | Done v ->
      if first then Metrics.incr m_memo_hits;
      Mutex.unlock cell.lock;
      v
    | Failed e ->
      if first then Metrics.incr m_memo_hits;
      Mutex.unlock cell.lock;
      raise (Stage_error e)
    | Running ->
      let stack = Domain.DLS.get stack_key in
      if List.mem name !stack then begin
        Mutex.unlock cell.lock;
        let chain = List.rev (name :: !stack) in
        raise (Stage_error { stage = name; chain; message = "dependency cycle" })
      end;
      Condition.wait cell.cond cell.lock;
      await ~first:false
    | Pending ->
      Metrics.incr m_computes;
      cell.state <- Running;
      Mutex.unlock cell.lock;
      let stack = Domain.DLS.get stack_key in
      stack := name :: !stack;
      let finish st =
        stack := List.tl !stack;
        Mutex.lock cell.lock;
        cell.state <- st;
        Condition.broadcast cell.cond;
        Mutex.unlock cell.lock
      in
      (match Trace.span g.trace ~name ~deps compute with
      | v ->
        finish (Done v);
        v
      | exception Stage_error e ->
        (* Already attributed to the stage that actually failed. *)
        finish (Failed e);
        raise (Stage_error e)
      | exception exn ->
        let e =
          {
            stage = name;
            chain = List.rev !stack;
            message = Printexc.to_string exn;
          }
        in
        finish (Failed e);
        raise (Stage_error e))
  in
  Mutex.lock cell.lock;
  await ~first:true

type 'a node = {
  graph : graph;
  name : string;
  deps : string list;
  compute : unit -> 'a;
  cell : 'a cell;
}

let node g ~name ?(deps = []) compute =
  register g name;
  { graph = g; name; deps; compute; cell = new_cell () }

let name n = n.name
let get n = force_cell n.graph n.cell ~name:n.name ~deps:n.deps n.compute

let result n =
  match get n with v -> Ok v | exception Stage_error e -> Error e

let peek n =
  Mutex.lock n.cell.lock;
  let v = match n.cell.state with Done v -> Some v | _ -> None in
  Mutex.unlock n.cell.lock;
  v

type ('k, 'a) keyed = {
  kgraph : graph;
  kname : string;
  kdeps : 'k -> string list;
  key_label : 'k -> string;
  kcompute : 'k -> 'a;
  table : (string, 'a cell) Hashtbl.t;
  table_lock : Mutex.t;
}

let keyed g ~name ?(deps = fun _ -> []) ~key_label compute =
  register g name;
  {
    kgraph = g;
    kname = name;
    kdeps = deps;
    key_label;
    kcompute = compute;
    table = Hashtbl.create 8;
    table_lock = Mutex.create ();
  }

let instance_name k key = k.kname ^ "[" ^ k.key_label key ^ "]"

let get_keyed k key =
  let label = k.key_label key in
  Mutex.lock k.table_lock;
  let cell =
    match Hashtbl.find_opt k.table label with
    | Some c -> c
    | None ->
      let c = new_cell () in
      Hashtbl.add k.table label c;
      c
  in
  Mutex.unlock k.table_lock;
  force_cell k.kgraph cell ~name:(instance_name k key) ~deps:(k.kdeps key)
    (fun () -> k.kcompute key)

let result_keyed k key =
  match get_keyed k key with v -> Ok v | exception Stage_error e -> Error e

let computed_keys k =
  Mutex.lock k.table_lock;
  let keys =
    Hashtbl.fold
      (fun label cell acc ->
        match cell.state with Done _ -> label :: acc | _ -> acc)
      k.table []
  in
  Mutex.unlock k.table_lock;
  List.sort String.compare keys
