lib/stdcell/process.ml:
