lib/place/placer.mli: Floorplan Netlist Placement Pvtol_netlist
